# Convenience targets; `make check` is what CI runs.

.PHONY: all check test bench clean

all:
	dune build @all

# The tier-1 gate: full build (executables included) plus every suite.
check:
	dune build @all
	dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
