# Convenience targets; `make check` is what CI runs.

.PHONY: all check test bench baseline benchdiff crashtest faulttest \
  shardtest stresstest report shardreport walsmoke metricsdoc metricsdoc-check golden \
  walformatdoc walformatdoc-check clean

all:
	dune build @all

# The tier-1 gate: full build (executables included) plus every suite.
check:
	dune build @all
	dune runtest

test:
	dune runtest

# Crash-injection torture: recover at every WAL append point across the
# scenario matrix and fail on any recovery-invariant violation.
# Recovery runs through the partitioned replay path (4 worker domains),
# which must be observationally identical to serial replay.
crashtest:
	dune exec bin/crashtest.exe -- --replay-workers 4

# Storage-fault torture with a fixed seed: byte-granularity crash cuts,
# bit-flip corruption sweeps, batch-prefix cuts inside group-commit
# batches, crash cuts inside a checkpoint-truncation journal (must roll
# back or redo atomically), and a fault-injected storage run that must
# match the fault-free one (torn writes / transient errors absorbed by
# the WAL retry loop).  Also through the 4-worker parallel replay path.
faulttest:
	dune exec bin/crashtest.exe -- --fault --seed 11 --group-commit 4 --replay-workers 4

# Cross-shard 2PC torture: drive a 4-shard engine (30% and 100%
# cross-shard mixes), then crash it at every forced-frontier state and
# at every byte offset of every shard's log — no shard may ever install
# a cross-shard transaction another shard aborted, and no commit
# acknowledged after the forced decision may be lost.  Runs clean and
# with injected storage faults.
shardtest:
	dune exec bin/crashtest.exe -- --shards 4 --replay-workers 2
	dune exec bin/crashtest.exe -- --shards 4 --fault --seed 11 -n 10 --replay-workers 2

# Threaded group-commit stress with a pinned seed: OS threads against
# the durable engine over slow storage; fails if any transaction is
# lost, the balance diverges from the serial expectation, batching does
# not form (fsyncs >= commits), or the persisted log replays wrong.
stresstest:
	dune exec bin/stresstest.exe -- --seed 7 --verbose

# Trace analytics over a pinned simulate run: dump trace + metrics,
# then render the text report and the Perfetto (Chrome trace-event)
# JSON with obsreport.  Fails if obsreport exits non-zero or either
# artifact comes out empty.
report:
	dune build @all
	dune exec bin/simulate.exe -- bank-hotspot --seed 7 --txns 60 \
	  --trace _report/trace.jsonl --metrics _report/metrics.prom
	dune exec bin/obsreport.exe -- --trace _report/trace.jsonl \
	  --metrics _report/metrics.prom --format text -o _report/report.txt
	dune exec bin/obsreport.exe -- --trace _report/trace.jsonl \
	  --format perfetto -o _report/perfetto.json
	test -s _report/report.txt
	test -s _report/perfetto.json
	@echo "report: _report/report.txt and _report/perfetto.json"

bench:
	dune exec bench/main.exe

# Machine-readable bench baseline: BENCH_<rev>.json with named series
# (includes the MB-scale recovery benchmark).  Use `--quick` sizes so
# the run stays interactive; drop it for publication numbers.
baseline:
	dune exec bench/main.exe -- --json --quick

# Compare a fresh quick run against the checked-in baseline and GATE on
# the serial restart and commit-rate series: a >25% move against a gated
# series' direction fails the build.  Everything else — including the
# multi-worker restart walls, which swing ~30% between identical runs at
# quick sizes — is printed as advisory only.  If a regression is
# intentional, rerun with the documented escape hatch and refresh the
# baseline in the same change:
#   make benchdiff BENCHDIFF_FLAGS=--allow-regression
#   make baseline   # then copy the BENCH_<rev>.json over bench/BASELINE.json
BENCHDIFF_FLAGS ?=
benchdiff:
	dune exec bench/main.exe -- --json _report/bench.json --quick
	dune exec bin/benchdiff.exe -- bench/BASELINE.json _report/bench.json \
	  --tolerance 25 --gate recovery.restart.records_per_sec \
	  --gate recovery.restart.seconds \
	  --gate wal.group_commit.commits_per_sec \
	  --gate sharded.commit_rate.s1.disjoint \
	  --gate sharded.commit_rate.s4.disjoint \
	  --gate sharded.recovery_resolution.s4 $(BENCHDIFF_FLAGS)

# Distributed-tracing report: two traced 4-shard stress runs merged into
# one text report and one Perfetto timeline (per-shard tracks + flow
# events from each coordinator Decision to its participant Prepares),
# plus the 2PC in-doubt audit trail.  Crashtest harvests a real in-doubt
# multi-shard image (cut after the forced Decision, before phase 2),
# recovery emits the tm-2pc audit artifact, walinspect --two-phase names
# every unresolved prepare and its evidence, and shardmon renders one
# dashboard frame from the last monitor snapshot and exports its
# tm-series rings.
shardreport:
	dune build @all
	dune exec bin/stresstest.exe -- --shards 4 --seed 7 -n 40 \
	  --trace _report/shard_trace_a.jsonl --metrics _report/shard_metrics.prom \
	  --monitor _report/shard_monitor.prom
	dune exec bin/stresstest.exe -- --shards 4 --seed 8 -n 40 \
	  --trace _report/shard_trace_b.jsonl
	dune exec bin/crashtest.exe -- --shards 4 -n 5 \
	  --keep-log _report/shard_wal.img --audit _report/shard_audit.jsonl
	dune exec bin/obsreport.exe -- --trace _report/shard_trace_a.jsonl \
	  --trace _report/shard_trace_b.jsonl --metrics _report/shard_metrics.prom \
	  --audit _report/shard_audit.jsonl --format text -o _report/shard_report.txt
	dune exec bin/obsreport.exe -- --trace _report/shard_trace_a.jsonl \
	  --trace _report/shard_trace_b.jsonl --audit _report/shard_audit.jsonl \
	  --format perfetto -o _report/shard_perfetto.json
	dune exec bin/walinspect.exe -- _report/shard_wal.img --two-phase \
	  | grep -q "evidence"
	dune exec bin/shardmon.exe -- _report/shard_monitor.prom --once --no-clear \
	  --snapshot _report/shard_series.jsonl
	grep -q '"ph":"s"' _report/shard_perfetto.json
	test -s _report/shard_report.txt
	test -s _report/shard_audit.jsonl
	test -s _report/shard_series.jsonl
	@echo "shardreport: _report/shard_report.txt and _report/shard_perfetto.json"

# WAL forensics smoke: persist a crashtest-driven log image, inspect it
# (record histogram, checkpoint coverage, corruption diagnosis), then
# --verify replays it under the restart profiler.
walsmoke:
	dune exec bin/crashtest.exe -- --keep-log _report/wal.img
	dune exec bin/walinspect.exe -- _report/wal.img --verify

# Regenerate the metrics catalog doc from the declarative inventory.
metricsdoc:
	dune exec bin/metricsdoc.exe -- -o docs/METRICS.md

# Fail if docs/METRICS.md drifted from the inventory (CI runs this).
metricsdoc-check:
	dune exec bin/metricsdoc.exe | diff - docs/METRICS.md

# Regenerate the golden WAL frames (test/golden/) after an intentional
# on-disk format change; the test suite fails on any byte drift until
# these are refreshed and committed.
golden:
	dune exec bin/walformatdoc.exe -- --golden test/golden

# Regenerate the on-disk format spec from the codec itself.
walformatdoc:
	dune exec bin/walformatdoc.exe -- -o docs/WAL_FORMAT.md

# Fail if docs/WAL_FORMAT.md drifted from the codec (CI runs this).
walformatdoc-check:
	dune exec bin/walformatdoc.exe | diff - docs/WAL_FORMAT.md

clean:
	dune clean
