# Convenience targets; `make check` is what CI runs.

.PHONY: all check test bench crashtest clean

all:
	dune build @all

# The tier-1 gate: full build (executables included) plus every suite.
check:
	dune build @all
	dune runtest

test:
	dune runtest

# Crash-injection torture: recover at every WAL append point across the
# scenario matrix and fail on any recovery-invariant violation.
crashtest:
	dune exec bin/crashtest.exe

bench:
	dune exec bench/main.exe

clean:
	dune clean
