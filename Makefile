# Convenience targets; `make check` is what CI runs.

.PHONY: all check test bench crashtest faulttest stresstest clean

all:
	dune build @all

# The tier-1 gate: full build (executables included) plus every suite.
check:
	dune build @all
	dune runtest

test:
	dune runtest

# Crash-injection torture: recover at every WAL append point across the
# scenario matrix and fail on any recovery-invariant violation.
crashtest:
	dune exec bin/crashtest.exe

# Storage-fault torture with a fixed seed: byte-granularity crash cuts,
# bit-flip corruption sweeps, batch-prefix cuts inside group-commit
# batches, and a fault-injected storage run that must match the
# fault-free one (torn writes / transient errors absorbed by the WAL
# retry loop).
faulttest:
	dune exec bin/crashtest.exe -- --fault --seed 11 --group-commit 4

# Threaded group-commit stress with a pinned seed: OS threads against
# the durable engine over slow storage; fails if any transaction is
# lost, the balance diverges from the serial expectation, batching does
# not form (fsyncs >= commits), or the persisted log replays wrong.
stresstest:
	dune exec bin/stresstest.exe -- --seed 7 --verbose

bench:
	dune exec bench/main.exe

clean:
	dune clean
