(** A multi-object transactional database.

    Objects are independent atomic objects (dynamic atomicity is a local
    property — Theorem 2 — so different objects may even use different
    recovery methods and conflict relations); the database adds
    transaction bookkeeping, atomic commitment across the objects a
    transaction touched, waits-for tracking and an optional global event
    history for offline verification with {!Tm_core.Atomicity}.

    Every database owns a {!Tm_obs.Metrics} registry: transaction counts
    are backed by it ({!committed_count} reads a counter) and every
    managed object is attached to it at {!create}/{!add_object} time.  A
    {!Tm_obs.Trace} recorder can additionally be attached with
    {!set_trace}; without one, tracing costs a single branch per event
    site. *)

open Tm_core

type t

(** [create ?record_history ?first_tid objs] — [first_tid] (default 0)
    seeds the transaction-id allocator; recovery passes the WAL's tid
    high-water mark so post-crash transactions never reuse an id that may
    still appear in the log. *)
val create : ?record_history:bool -> ?first_tid:int -> Atomic_object.t list -> t
val add_object : t -> Atomic_object.t -> unit
val objects : t -> Atomic_object.t list
val find_object : t -> string -> Atomic_object.t

(** The database's metrics registry (always present). *)
val metrics : t -> Tm_obs.Metrics.t

(** The transaction-id allocator's current position (the next id
    {!begin_txn} will issue) — the high-water mark recorded by fuzzy
    checkpoints. *)
val next_tid : t -> int

(** Attach a trace recorder; subsequent engine activity emits
    begin/invoke/executed/blocked/woken/validated/commit/abort spans. *)
val set_trace : t -> Tm_obs.Trace.t -> unit

val trace : t -> Tm_obs.Trace.t option

(** [emit_trace t ~tid kind] — emit a span into the attached recorder
    (no-op without one).  Used by the layers above the database
    (scheduler, WAL wrapper, threaded front end) for events only they can
    see, e.g. deadlock victims and WAL forces. *)
val emit_trace : t -> tid:Tid.t -> Tm_obs.Trace.kind -> unit

(** [begin_txn t] allocates a fresh transaction id. *)
val begin_txn : t -> Tid.t

(** [adopt_txn t tid] registers an externally allocated transaction id
    as running here and bumps the local allocator above it — how each
    shard's database joins a transaction whose id was issued by
    {!Sharded_database}'s global allocator.  Raises [Invalid_argument]
    if [tid] is negative or already known to this database. *)
val adopt_txn : t -> Tid.t -> unit

(** [invoke t tid ~obj inv] — attempt an operation; records the waits-for
    edges on [Blocked].  Raises [Invalid_argument] for an unknown object
    or a transaction that already finished. *)
val invoke :
  ?choose:(Value.t list -> Value.t) ->
  t ->
  Tid.t ->
  obj:string ->
  Op.invocation ->
  Atomic_object.outcome

(** [commit t tid] commits at every object the transaction touched
    (atomic commitment, Section 2).  For optimistic objects use
    {!try_commit}, which validates first. *)
val commit : t -> Tid.t -> unit

val abort : t -> Tid.t -> unit

(** [try_commit t tid] validates at every touched object (a no-op for
    locking objects) and commits at all of them; on a validation failure
    the transaction is aborted everywhere and the conflicting object and
    operation pair are returned. *)
val try_commit : t -> Tid.t -> (unit, string * Op.t * Op.t) result

(** [deadlock t] — current waits-for cycle, if any. *)
val deadlock : t -> Tid.t list option

(** The global event history (empty unless [record_history] was set). *)
val history : t -> History.t

(** Committed transactions count / aborted count (read from the
    [tm_txn_committed_total] / [tm_txn_aborted_total] registry
    counters). *)
val committed_count : t -> int

val aborted_count : t -> int

(** Total blocked invocation attempts across objects. *)
val total_blocks : t -> int
