(* Forensic log inspection: everything that can be said about an
   on-disk log's bytes WITHOUT replaying them.  The walker decodes frame
   by frame ({!Wal.Codec.decode_frame}) so each record is attributed to
   its byte extent, and classifies damage exactly as recovery would —
   torn tail (dropped as crash loss) vs interior corruption (refused) —
   using the same resynchronisation scan, so what walinspect prints is
   what a restart will do. *)

open Tm_core
module Json = Tm_obs.Json

type kind_stat = { count : int; bytes : int }

type checkpoint_info = {
  cp_lsn : int;  (* 1-based record position in the decoded log *)
  cp_offset : int;  (* byte offset of its frame *)
  cp_committed_ops : int;
  cp_live : (Tid.t * int) list;  (* live txn -> ops carried in the snapshot *)
  cp_next_tid : int;
}

type damage =
  | Clean
  | Torn_tail of Wal.Codec.corruption
  | Interior of Wal.Codec.corruption

type t = {
  total_bytes : int;
  clean_bytes : int;
  records : int;
  by_kind : (string * kind_stat) list;  (* fixed kind order, zeros included *)
  by_version : (int * int) list;  (* frame-format version -> frame count *)
  by_shard : (int * int) list;  (* frame shard id -> frame count (v1 = 0) *)
  foreign_version : (int * int) option;  (* first foreign frame: offset, version *)
  lsn_range : (int * int) option;  (* 1-based positions, None when empty *)
  tids_seen : int;
  committed_txns : int;
  aborted_txns : int;
  max_tid : Tid.t option;
  checkpoints : checkpoint_info list;
  records_after_last_checkpoint : int;
  damage : damage;
}

let kinds =
  [
    "begin";
    "operation";
    "commit";
    "abort";
    "checkpoint";
    "truncate_intent";
    "prepare";
    "decision";
  ]

let inspect bytes =
  let len = String.length bytes in
  (* Walk the frames, keeping each record's offset and size. *)
  let rec walk acc pos =
    if pos >= len then (List.rev acc, pos, Clean)
    else
      match Wal.Codec.decode_frame bytes pos with
      | Ok (r, next) -> walk ((r, pos, next - pos) :: acc) next
      | Error c ->
          if Wal.Codec.valid_frame_after bytes (pos + 1) then
            (List.rev acc, pos, Interior c)
          else (List.rev acc, pos, Torn_tail c)
  in
  let framed, clean_bytes, damage = walk [] 0 in
  (* Per-frame format-version histogram: each decoded frame's header is
     re-read (cheap, no CRC) so mixed-version logs — v1 frames persisted
     by an older binary with v2 appends after them — are visible. *)
  let by_version, by_shard =
    let vt = Hashtbl.create 4 in
    let st = Hashtbl.create 4 in
    let bump tbl k =
      Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0)
    in
    List.iter
      (fun (_, pos, _) ->
        match Wal.Codec.read_header bytes pos with
        | Ok h ->
            bump vt h.Wal.Codec.h_version;
            bump st h.Wal.Codec.h_shard
        | Error _ -> ())
      framed;
    let sorted tbl =
      List.sort compare (Hashtbl.fold (fun v n acc -> (v, n) :: acc) tbl [])
    in
    (sorted vt, sorted st)
  in
  (* A frame whose header is intact up to a version byte this binary
     does not support: report exactly where and what, instead of a bare
     decode failure. *)
  let foreign_version =
    match damage with
    | Clean -> None
    | Torn_tail c | Interior c -> (
        match c.Wal.Codec.version with
        | Some v when not (Wal.Codec.is_supported v) ->
            Some (c.Wal.Codec.offset, v)
        | _ -> None)
  in
  let stat = Hashtbl.create 8 in
  List.iter
    (fun (r, _, size) ->
      let k = Wal.record_kind r in
      let s =
        Option.value (Hashtbl.find_opt stat k) ~default:{ count = 0; bytes = 0 }
      in
      Hashtbl.replace stat k { count = s.count + 1; bytes = s.bytes + size })
    framed;
  let by_kind =
    List.map
      (fun k ->
        ( k,
          Option.value (Hashtbl.find_opt stat k)
            ~default:{ count = 0; bytes = 0 } ))
      kinds
  in
  let seen = Hashtbl.create 16 in
  let committed = Hashtbl.create 16 in
  let aborted = Hashtbl.create 16 in
  let note_tid tid = Hashtbl.replace seen tid () in
  List.iter
    (fun (r, _, _) ->
      match r with
      | Wal.Begin tid -> note_tid tid
      | Wal.Operation (tid, _) -> note_tid tid
      | Wal.Commit tid ->
          note_tid tid;
          Hashtbl.replace committed tid ()
      | Wal.Abort tid ->
          note_tid tid;
          Hashtbl.replace aborted tid ()
      | Wal.Checkpoint cp -> List.iter (fun (tid, _) -> note_tid tid) cp.Wal.live
      | Wal.Truncate_intent _ -> ()
      | Wal.Prepare tid -> note_tid tid
      | Wal.Decision { tid; _ } -> note_tid tid)
    framed;
  let checkpoints =
    List.mapi (fun i (r, off, _) -> (i + 1, r, off)) framed
    |> List.filter_map (fun (lsn, r, off) ->
           match r with
           | Wal.Checkpoint cp ->
               Some
                 {
                   cp_lsn = lsn;
                   cp_offset = off;
                   cp_committed_ops = List.length cp.Wal.committed;
                   cp_live =
                     List.map
                       (fun (tid, ops) -> (tid, List.length ops))
                       cp.Wal.live;
                   cp_next_tid = cp.Wal.next_tid;
                 }
           | _ -> None)
  in
  let records = List.length framed in
  let records_after_last_checkpoint =
    match List.rev checkpoints with
    | [] -> records
    | last :: _ -> records - last.cp_lsn
  in
  {
    total_bytes = len;
    clean_bytes;
    records;
    by_kind;
    by_version;
    by_shard;
    foreign_version;
    lsn_range = (if records = 0 then None else Some (1, records));
    tids_seen = Hashtbl.length seen;
    committed_txns = Hashtbl.length committed;
    aborted_txns = Hashtbl.length aborted;
    max_tid = Wal.max_tid (List.map (fun (r, _, _) -> r) framed);
    checkpoints;
    records_after_last_checkpoint;
    damage;
  }

let select_shard bytes shard =
  let len = String.length bytes in
  let buf = Buffer.create len in
  let rec walk pos =
    if pos < len then
      match Wal.Codec.decode_frame bytes pos with
      | Ok (_, next) ->
          (match Wal.Codec.read_header bytes pos with
          | Ok h when h.Wal.Codec.h_shard = shard ->
              Buffer.add_string buf (String.sub bytes pos (next - pos))
          | _ -> ());
          walk next
      | Error _ -> ()
  in
  walk 0;
  Buffer.contents buf

let damage_kind = function
  | Clean -> "clean"
  | Torn_tail _ -> "torn_tail"
  | Interior _ -> "interior_corruption"

(* ------------------------------------------------------------------ *)
(* 2PC forensics                                                       *)

type tp_prepare = {
  tpp_tid : Tid.t;
  tpp_offset : int;  (* byte offset of the first Prepare frame *)
  tpp_commit : bool;
  tpp_evidence : string;
}

type tp_shard = {
  tp_shard : int;
  tp_prepares : int;
  tp_decisions : int;
  tp_completions : int;
  tp_in_doubt : tp_prepare list;
}

let two_phase bytes =
  let len = String.length bytes in
  (* (record, offset, shard) in log order; damaged tails dropped, as
     recovery would. *)
  let rec walk acc pos =
    if pos >= len then List.rev acc
    else
      match Wal.Codec.decode_frame bytes pos with
      | Ok (r, next) ->
          let shard =
            match Wal.Codec.read_header bytes pos with
            | Ok h -> h.Wal.Codec.h_shard
            | Error _ -> 0
          in
          walk ((r, pos, shard) :: acc) next
      | Error _ -> List.rev acc
  in
  let framed = walk [] 0 in
  let max_shard = List.fold_left (fun m (_, _, s) -> max m s) 0 framed in
  let n = max_shard + 1 in
  let logs = Array.make n [] in
  let present = Array.make n false in
  (* First-Prepare byte offset per (shard, tid): the address walinspect
     reports for an in-doubt vote. *)
  let prep_offset : (int * Tid.t, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r, off, s) ->
      present.(s) <- true;
      logs.(s) <- r :: logs.(s);
      match r with
      | Wal.Prepare tid ->
          if not (Hashtbl.mem prep_offset (s, tid)) then
            Hashtbl.add prep_offset (s, tid) off
      | _ -> ())
    framed;
  let logs = Array.map List.rev logs in
  let a = Two_phase.analyze logs in
  List.filter_map
    (fun s ->
      if not (present.(s)) then None
      else begin
        let count p = List.length (List.filter p logs.(s)) in
        let ever = Hashtbl.create 8 in
        List.iter
          (function Wal.Prepare tid -> Hashtbl.replace ever tid () | _ -> ())
          logs.(s);
        Some
          {
            tp_shard = s;
            tp_prepares = count (function Wal.Prepare _ -> true | _ -> false);
            tp_decisions = count (function Wal.Decision _ -> true | _ -> false);
            tp_completions =
              count (function
                | Wal.Commit tid | Wal.Abort tid -> Hashtbl.mem ever tid
                | _ -> false);
            tp_in_doubt =
              List.map
                (fun tid ->
                  {
                    tpp_tid = tid;
                    tpp_offset =
                      Option.value
                        (Hashtbl.find_opt prep_offset (s, tid))
                        ~default:0;
                    tpp_commit = Tid.Set.mem tid a.Two_phase.commit_evidence;
                    tpp_evidence =
                      Two_phase.evidence_name
                        (if Tid.Set.mem tid a.Two_phase.decision_evidence then
                           Two_phase.Decision_record
                         else if Tid.Set.mem tid a.Two_phase.phase2_evidence
                         then Two_phase.Phase2_record
                         else Two_phase.Presumed);
                  })
                a.Two_phase.in_doubt.(s);
          }
      end)
    (List.init n (fun s -> s))

let pp_two_phase ppf shards =
  if shards = [] then Fmt.pf ppf "two-phase: no intact frames@."
  else begin
    Fmt.pf ppf "%-6s %9s %10s %12s %9s@." "shard" "prepares" "decisions"
      "completions" "in-doubt";
    List.iter
      (fun tp ->
        Fmt.pf ppf "%-6d %9d %10d %12d %9d@." tp.tp_shard tp.tp_prepares
          tp.tp_decisions tp.tp_completions
          (List.length tp.tp_in_doubt))
      shards;
    let in_doubt =
      List.concat_map (fun tp -> List.map (fun p -> (tp.tp_shard, p)) tp.tp_in_doubt) shards
    in
    if in_doubt = [] then
      Fmt.pf ppf "no prepares in doubt: every vote has a local outcome@."
    else begin
      Fmt.pf ppf "in-doubt prepares (what recovery will append):@.";
      List.iter
        (fun (s, p) ->
          Fmt.pf ppf "  shard %d: %a prepared @@ byte %d -> %s (evidence: %s)@."
            s Tid.pp p.tpp_tid p.tpp_offset
            (if p.tpp_commit then "commit" else "abort")
            p.tpp_evidence)
        in_doubt
    end
  end

let two_phase_to_json shards =
  Json.List
    (List.map
       (fun tp ->
         Json.Obj
           [
             ("shard", Json.Int tp.tp_shard);
             ("prepares", Json.Int tp.tp_prepares);
             ("decisions", Json.Int tp.tp_decisions);
             ("completions", Json.Int tp.tp_completions);
             ( "in_doubt",
               Json.List
                 (List.map
                    (fun p ->
                      Json.Obj
                        [
                          ("tid", Json.Int (Tid.to_int p.tpp_tid));
                          ("offset", Json.Int p.tpp_offset);
                          ( "outcome",
                            Json.Str (if p.tpp_commit then "commit" else "abort")
                          );
                          ("evidence", Json.Str p.tpp_evidence);
                        ])
                    tp.tp_in_doubt) );
           ])
       shards)

let pp ppf t =
  Fmt.pf ppf "log: %d bytes, %d intact, %d records@." t.total_bytes
    t.clean_bytes t.records;
  (match t.lsn_range with
  | None -> Fmt.pf ppf "lsn range: (empty)@."
  | Some (lo, hi) -> Fmt.pf ppf "lsn range: %d..%d@." lo hi);
  Fmt.pf ppf "records by kind:@.";
  List.iter
    (fun (k, s) ->
      if s.count > 0 then Fmt.pf ppf "  %-10s %8d  %10d bytes@." k s.count s.bytes)
    t.by_kind;
  (match t.by_version with
  | [] -> ()
  | vs ->
      Fmt.pf ppf "frame versions:%a  (writes are v%d)@."
        (fun ppf -> List.iter (fun (v, n) -> Fmt.pf ppf " v%d x %d" v n))
        vs Wal.Codec.write_version);
  (match t.by_shard with
  | [] | [ (0, _) ] -> ()  (* unsharded logs stay quiet *)
  | ss ->
      Fmt.pf ppf "frame shards:%a@."
        (fun ppf -> List.iter (fun (s, n) -> Fmt.pf ppf " shard %d x %d" s n))
        ss);
  (match t.foreign_version with
  | None -> ()
  | Some (off, v) ->
      Fmt.pf ppf
        "first foreign-version frame: byte %d carries format version %d \
         (this binary reads%a)@."
        off v
        (fun ppf -> List.iter (Fmt.pf ppf " v%d"))
        Wal.Codec.supported_versions);
  Fmt.pf ppf "transactions: %d seen, %d committed, %d aborted%a@." t.tids_seen
    t.committed_txns t.aborted_txns
    (fun ppf -> function
      | None -> ()
      | Some m -> Fmt.pf ppf ", max tid %a" Tid.pp m)
    t.max_tid;
  (match t.checkpoints with
  | [] -> Fmt.pf ppf "checkpoints: none@."
  | cps ->
      Fmt.pf ppf "checkpoints: %d@." (List.length cps);
      List.iter
        (fun cp ->
          Fmt.pf ppf
            "  lsn %d @@ byte %d: %d committed ops, next tid %d, live:%a@."
            cp.cp_lsn cp.cp_offset cp.cp_committed_ops cp.cp_next_tid
            (fun ppf -> function
              | [] -> Fmt.pf ppf " (none)"
              | live ->
                  List.iter
                    (fun (tid, n) -> Fmt.pf ppf " %a(%d ops)" Tid.pp tid n)
                    live)
            cp.cp_live)
        cps);
  Fmt.pf ppf "records after last checkpoint: %d@."
    t.records_after_last_checkpoint;
  match t.damage with
  | Clean -> Fmt.pf ppf "damage: none (clean tail)@."
  | Torn_tail c ->
      Fmt.pf ppf
        "damage: torn tail at %a — %d trailing bytes will be dropped as \
         crash loss@."
        Wal.Codec.pp_corruption c (t.total_bytes - t.clean_bytes)
  | Interior c ->
      Fmt.pf ppf
        "damage: INTERIOR CORRUPTION at %a — intact frames follow the \
         damage; recovery will refuse this log@."
        Wal.Codec.pp_corruption c

let replay_digest bytes =
  match Wal.Codec.decode_all bytes with
  | Error c -> Error c
  | Ok { Wal.Codec.records; _ } ->
      let committed, losers = Wal.replay records in
      let buf = Buffer.create 256 in
      List.iter
        (fun op -> Buffer.add_string buf (Fmt.str "%a\n" Op.pp op))
        committed;
      Buffer.add_string buf
        (Fmt.str "losers:%a\n"
           Fmt.(list ~sep:comma Tid.pp)
           (Tid.Set.elements losers));
      Ok (Digest.to_hex (Digest.string (Buffer.contents buf)))

let to_json t =
  let corruption_json (c : Wal.Codec.corruption) =
    Json.Obj
      ([ ("offset", Json.Int c.Wal.Codec.offset) ]
      @ (match c.Wal.Codec.version with
        | None -> []
        | Some v -> [ ("version", Json.Int v) ])
      @ [ ("reason", Json.Str c.Wal.Codec.reason) ])
  in
  Json.Obj
    [
      ("total_bytes", Json.Int t.total_bytes);
      ("clean_bytes", Json.Int t.clean_bytes);
      ("records", Json.Int t.records);
      ( "by_kind",
        Json.Obj
          (List.map
             (fun (k, s) ->
               ( k,
                 Json.Obj
                   [ ("count", Json.Int s.count); ("bytes", Json.Int s.bytes) ]
               ))
             t.by_kind) );
      ( "by_version",
        Json.Obj
          (List.map
             (fun (v, n) -> (string_of_int v, Json.Int n))
             t.by_version) );
      ( "by_shard",
        Json.Obj
          (List.map (fun (s, n) -> (string_of_int s, Json.Int n)) t.by_shard) );
      ( "foreign_version",
        match t.foreign_version with
        | None -> Json.Null
        | Some (off, v) ->
            Json.Obj [ ("offset", Json.Int off); ("version", Json.Int v) ] );
      ( "lsn_range",
        match t.lsn_range with
        | None -> Json.Null
        | Some (lo, hi) -> Json.List [ Json.Int lo; Json.Int hi ] );
      ("tids_seen", Json.Int t.tids_seen);
      ("committed_txns", Json.Int t.committed_txns);
      ("aborted_txns", Json.Int t.aborted_txns);
      ( "max_tid",
        match t.max_tid with
        | None -> Json.Null
        | Some m -> Json.Int (Tid.to_int m) );
      ( "checkpoints",
        Json.List
          (List.map
             (fun cp ->
               Json.Obj
                 [
                   ("lsn", Json.Int cp.cp_lsn);
                   ("offset", Json.Int cp.cp_offset);
                   ("committed_ops", Json.Int cp.cp_committed_ops);
                   ( "live",
                     Json.List
                       (List.map
                          (fun (tid, n) ->
                            Json.Obj
                              [
                                ("tid", Json.Int (Tid.to_int tid));
                                ("ops", Json.Int n);
                              ])
                          cp.cp_live) );
                   ("next_tid", Json.Int cp.cp_next_tid);
                 ])
             t.checkpoints) );
      ( "records_after_last_checkpoint",
        Json.Int t.records_after_last_checkpoint );
      ( "damage",
        match t.damage with
        | Clean -> Json.Obj [ ("kind", Json.Str "clean") ]
        | Torn_tail c ->
            Json.Obj
              [ ("kind", Json.Str "torn_tail"); ("at", corruption_json c) ]
        | Interior c ->
            Json.Obj
              [
                ("kind", Json.Str "interior_corruption");
                ("at", corruption_json c);
              ] );
    ]
