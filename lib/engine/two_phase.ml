open Tm_core

type analysis = {
  in_doubt : Tid.t list array;
  commit_evidence : Tid.Set.t;
  abort_evidence : Tid.Set.t;
}

let analyze logs =
  let n = Array.length logs in
  let in_doubt = Array.make n [] in
  let commit_ev = ref Tid.Set.empty in
  let abort_ev = ref Tid.Set.empty in
  for s = 0 to n - 1 do
    (* [pending]: prepared on this shard, no local outcome record yet.
       [ever]: prepared on this shard at any point — a later [Commit] /
       [Abort] of such a transaction is a surviving phase-2 record and
       therefore global evidence (participants only log the outcome the
       coordinator decided).  A [Commit] of a {e never-prepared}
       transaction is just a local single-shard commit and says nothing
       about any other shard. *)
    let pending = Hashtbl.create 8 in
    let ever = Hashtbl.create 8 in
    List.iter
      (fun r ->
        match r with
        | Wal.Prepare tid ->
            Hashtbl.replace pending tid ();
            Hashtbl.replace ever tid ()
        | Wal.Commit tid ->
            if Hashtbl.mem ever tid then commit_ev := Tid.Set.add tid !commit_ev;
            Hashtbl.remove pending tid
        | Wal.Abort tid ->
            if Hashtbl.mem ever tid then abort_ev := Tid.Set.add tid !abort_ev;
            Hashtbl.remove pending tid
        | Wal.Decision { tid; commit } ->
            if commit then commit_ev := Tid.Set.add tid !commit_ev
            else abort_ev := Tid.Set.add tid !abort_ev
        | Wal.Begin _ | Wal.Operation _ | Wal.Truncate_intent _ -> ()
        | Wal.Checkpoint _ ->
            (* Checkpoints never intersect 2PC: {!Sharded_database.checkpoint}
               refuses to run while any cross-shard transaction is between
               prepare and completion, so no [Prepare] can be live here. *)
            ())
      logs.(s);
    (* In-doubt set in deterministic first-[Prepare] order, so the
       resolution records recovery appends land in a reproducible order. *)
    let listed = Hashtbl.create 8 in
    in_doubt.(s) <-
      List.filter_map
        (function
          | Wal.Prepare tid
            when Hashtbl.mem pending tid && not (Hashtbl.mem listed tid) ->
              Hashtbl.add listed tid ();
              Some tid
          | _ -> None)
        logs.(s)
  done;
  { in_doubt; commit_evidence = !commit_ev; abort_evidence = !abort_ev }

type resolution = { tid : Tid.t; commit : bool }

let resolutions a ~shard =
  List.map
    (fun tid -> { tid; commit = Tid.Set.mem tid a.commit_evidence })
    a.in_doubt.(shard)

let pp_resolution ppf { tid; commit } =
  Fmt.pf ppf "%a->%s" Tid.pp tid (if commit then "commit" else "abort")
