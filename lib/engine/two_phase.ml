open Tm_core

type analysis = {
  in_doubt : Tid.t list array;
  commit_evidence : Tid.Set.t;
  abort_evidence : Tid.Set.t;
  decision_evidence : Tid.Set.t;
  phase2_evidence : Tid.Set.t;
}

let analyze logs =
  let n = Array.length logs in
  let in_doubt = Array.make n [] in
  let commit_ev = ref Tid.Set.empty in
  let abort_ev = ref Tid.Set.empty in
  let decision_ev = ref Tid.Set.empty in
  let phase2_ev = ref Tid.Set.empty in
  for s = 0 to n - 1 do
    (* [pending]: prepared on this shard, no local outcome record yet.
       [ever]: prepared on this shard at any point — a later [Commit] /
       [Abort] of such a transaction is a surviving phase-2 record and
       therefore global evidence (participants only log the outcome the
       coordinator decided).  A [Commit] of a {e never-prepared}
       transaction is just a local single-shard commit and says nothing
       about any other shard. *)
    let pending = Hashtbl.create 8 in
    let ever = Hashtbl.create 8 in
    List.iter
      (fun r ->
        match r with
        | Wal.Prepare tid ->
            Hashtbl.replace pending tid ();
            Hashtbl.replace ever tid ()
        | Wal.Commit tid ->
            if Hashtbl.mem ever tid then begin
              commit_ev := Tid.Set.add tid !commit_ev;
              phase2_ev := Tid.Set.add tid !phase2_ev
            end;
            Hashtbl.remove pending tid
        | Wal.Abort tid ->
            if Hashtbl.mem ever tid then begin
              abort_ev := Tid.Set.add tid !abort_ev;
              phase2_ev := Tid.Set.add tid !phase2_ev
            end;
            Hashtbl.remove pending tid
        | Wal.Decision { tid; commit } ->
            decision_ev := Tid.Set.add tid !decision_ev;
            if commit then commit_ev := Tid.Set.add tid !commit_ev
            else abort_ev := Tid.Set.add tid !abort_ev
        | Wal.Begin _ | Wal.Operation _ | Wal.Truncate_intent _ -> ()
        | Wal.Checkpoint _ ->
            (* Checkpoints never intersect 2PC: {!Sharded_database.checkpoint}
               refuses to run while any cross-shard transaction is between
               prepare and completion, so no [Prepare] can be live here. *)
            ())
      logs.(s);
    (* In-doubt set in deterministic first-[Prepare] order, so the
       resolution records recovery appends land in a reproducible order. *)
    let listed = Hashtbl.create 8 in
    in_doubt.(s) <-
      List.filter_map
        (function
          | Wal.Prepare tid
            when Hashtbl.mem pending tid && not (Hashtbl.mem listed tid) ->
              Hashtbl.add listed tid ();
              Some tid
          | _ -> None)
        logs.(s)
  done;
  {
    in_doubt;
    commit_evidence = !commit_ev;
    abort_evidence = !abort_ev;
    decision_evidence = !decision_ev;
    phase2_evidence = !phase2_ev;
  }

type resolution = { tid : Tid.t; commit : bool }

let resolutions a ~shard =
  List.map
    (fun tid -> { tid; commit = Tid.Set.mem tid a.commit_evidence })
    a.in_doubt.(shard)

let pp_resolution ppf { tid; commit } =
  Fmt.pf ppf "%a->%s" Tid.pp tid (if commit then "commit" else "abort")

(* ------------------------------------------------------------------ *)
(* Audit trail                                                         *)

type evidence = Decision_record | Phase2_record | Presumed

let evidence_name = function
  | Decision_record -> "decision"
  | Phase2_record -> "phase2"
  | Presumed -> "presumed"

type resolution_event = {
  ev_shard : int;
  ev_tid : Tid.t;
  ev_commit : bool;
  ev_evidence : evidence;
}

let evidence_of a tid =
  (* A surviving [Decision] frame is the strongest witness; a phase-2
     outcome record proves the decision existed even if the decision
     frame itself was on a lost shard; no witness at all is the
     presumed-abort default. *)
  if Tid.Set.mem tid a.decision_evidence then Decision_record
  else if Tid.Set.mem tid a.phase2_evidence then Phase2_record
  else Presumed

let resolution_events a =
  List.concat
    (List.init (Array.length a.in_doubt) (fun shard ->
         List.map
           (fun tid ->
             {
               ev_shard = shard;
               ev_tid = tid;
               ev_commit = Tid.Set.mem tid a.commit_evidence;
               ev_evidence = evidence_of a tid;
             })
           a.in_doubt.(shard)))

let pp_resolution_event ppf ev =
  Fmt.pf ppf "shard %d: %a -> %s (evidence: %s)" ev.ev_shard Tid.pp ev.ev_tid
    (if ev.ev_commit then "commit" else "abort")
    (evidence_name ev.ev_evidence)

let event_to_json ev =
  Tm_obs.Json.Obj
    [
      ("shard", Tm_obs.Json.Int ev.ev_shard);
      ("tid", Tm_obs.Json.Int (Tid.to_int ev.ev_tid));
      ("outcome", Tm_obs.Json.Str (if ev.ev_commit then "commit" else "abort"));
      ("evidence", Tm_obs.Json.Str (evidence_name ev.ev_evidence));
    ]

let events_to_jsonl evs =
  String.concat ""
    (List.map (fun ev -> Tm_obs.Json.to_string (event_to_json ev) ^ "\n") evs)
