open Tm_core

type t = { edges : (Tid.t, Tid.t list) Hashtbl.t }

let create () = { edges = Hashtbl.create 16 }
let set_waiting t tid ~on = Hashtbl.replace t.edges tid (List.sort_uniq Tid.compare on)

let clear t tid =
  Hashtbl.remove t.edges tid;
  (* Mutating a table during Hashtbl.iter over it is unspecified: collect
     the sources whose edge lists mention [tid] first, then update. *)
  let affected =
    Hashtbl.fold
      (fun src dsts acc -> if List.exists (Tid.equal tid) dsts then (src, dsts) :: acc else acc)
      t.edges []
  in
  List.iter
    (fun (src, dsts) ->
      Hashtbl.replace t.edges src (List.filter (fun d -> not (Tid.equal d tid)) dsts))
    affected

let waiting t tid = Option.value (Hashtbl.find_opt t.edges tid) ~default:[]

let find_cycle t =
  (* Depth-first search with an explicit path; the first back-edge found
     yields the cycle. *)
  let visited = Hashtbl.create 16 in
  let exception Found of Tid.t list in
  let rec dfs path tid =
    match List.find_index (Tid.equal tid) path with
    | Some i ->
        (* path is newest-first: the cycle is the first i+1 entries. *)
        let rec take n = function
          | x :: rest when n > 0 -> x :: take (n - 1) rest
          | _ -> []
        in
        raise (Found (List.rev (take (i + 1) path)))
    | None ->
        if not (Hashtbl.mem visited tid) then begin
          Hashtbl.add visited tid ();
          List.iter (dfs (tid :: path)) (waiting t tid)
        end
  in
  match Hashtbl.iter (fun tid _ -> dfs [] tid) t.edges with
  | () -> None
  | exception Found cycle -> Some cycle

let victim cycle =
  match cycle with
  | [] -> invalid_arg "Deadlock.victim: empty cycle"
  | first :: rest -> List.fold_left (fun acc tid -> if Tid.compare tid acc > 0 then tid else acc) first rest
