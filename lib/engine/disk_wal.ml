module Metrics = Tm_obs.Metrics

type retry = {
  max_attempts : int;
  backoff : int -> unit;
}

let default_retry = { max_attempts = 8; backoff = (fun _ -> ()) }

exception Storage_unavailable of { attempts : int; last : string }

type t = {
  storage : Storage.t;
  wal : Wal.t;
  retry : retry;
  shard : int;  (* stamped into every v2 frame this log appends *)
  mutable end_off : int;  (* logical end: bytes of intact, persisted log *)
  mutable bytes_written : int;
  mutable retries : int;
  mutable metrics : Metrics.t option;
}

let wal t = t.wal
let storage t = t.storage
let shard t = t.shard
let bytes_written t = t.bytes_written
let retries t = t.retries

let count t name by =
  match t.metrics with
  | None -> ()
  | Some reg -> Metrics.Counter.incr ~by (Metrics.counter reg name)

(* Run [f] through the retry budget.  A torn write persists a prefix,
   but every attempt rewrites from the same offset, so the torn bytes
   are overwritten rather than accumulated. *)
let with_retry t f =
  let rec go attempt =
    match f () with
    | v -> v
    | exception Storage.Transient last ->
        if attempt >= t.retry.max_attempts then
          raise (Storage_unavailable { attempts = attempt; last })
        else begin
          t.retries <- t.retries + 1;
          count t "tm_storage_retries_total" 1;
          t.retry.backoff attempt;
          go (attempt + 1)
        end
  in
  go 1

let persist t record =
  let frame = Wal.Codec.encode ~shard:t.shard record in
  with_retry t (fun () -> Storage.write_at t.storage ~pos:t.end_off frame);
  t.end_off <- t.end_off + String.length frame;
  t.bytes_written <- t.bytes_written + String.length frame;
  count t "tm_wal_bytes_total" (String.length frame)

let install_sink t =
  Wal.set_sink t.wal
    {
      Wal.sink_append = (fun r -> persist t r);
      sink_force = (fun () -> with_retry t (fun () -> Storage.force t.storage));
      sink_attach =
        (fun reg ->
          t.metrics <- Some reg;
          Storage.attach_metrics t.storage reg);
    }

let make ?(retry = default_retry) ?(shard = 0) storage wal ~end_off =
  if shard < 0 || shard > 0xFFFF then
    invalid_arg (Fmt.str "Disk_wal: shard %d out of range" shard);
  let t =
    {
      storage;
      wal;
      retry;
      shard;
      end_off;
      bytes_written = 0;
      retries = 0;
      metrics = None;
    }
  in
  install_sink t;
  t

let create ?retry ?shard storage =
  let t = make ?retry ?shard storage (Wal.create ()) ~end_off:0 in
  (* A fresh log owns the backend from byte 0; stale contents (a
     previous incarnation's log) would otherwise replay after ours.
     The truncation is forced immediately: without the barrier a crash
     before this log's first commit flush could resurrect the stale
     log on reload. *)
  if Storage.size storage > 0 then begin
    with_retry t (fun () -> Storage.write_at storage ~pos:0 "");
    with_retry t (fun () -> Storage.force storage)
  end;
  t

(* ------------------------------------------------------------------ *)
(* Crash-atomic log compaction.

   [checkpoint_truncate] must replace the whole backend image with a
   shorter one, but {!Storage.write_at} is not atomic: the file backend
   writes the data and only then shrinks the file, and a crash between
   the two leaves intact stale frames beyond the new log — which reload
   would either misclassify as interior corruption or, frame-aligned,
   silently replay as pre-checkpoint records.

   The fix is a journal + redo protocol, every step of which is a plain
   forced write:

   {ol
   {- {b journal}: append a [Truncate_intent { old_len; new_len }]
      frame followed by the complete compacted image {e after} the live
      log (at [old_len]), and force.  The old log is untouched; a crash
      anywhere up to here leaves at worst a torn journal after an
      intact log, and reload rolls the compaction back (it never
      committed).}
   {- {b install}: write the image at position 0 — [write_at]'s
      trailing truncation removes the journal in the same call — and
      force.  The journal survives (before its own intent frame byte
      for byte, after it geometrically) until the shrink lands, so a
      crash anywhere inside the install finds the intent and {e redoes}
      the install from the journaled image.}}

   The intent frame is self-locating: it must sit exactly at
   [old_len] and the file must end exactly [new_len] bytes after it,
   which a torn journal write can never satisfy.  *)

type journal_state =
  | No_journal
  | Complete of { image : string }
  | Damaged of Wal.Codec.corruption

(* Locate a complete compaction journal in [bytes].  The scan anchors on
   the frame magic and pays for a decode only on an exact candidate:
   intent-sized payload, intent tag, and the self-locating geometry
   above.  At most one journal can exist (the install erases it and the
   image never contains an intent). *)
let find_journal bytes =
  let total = String.length bytes in
  (* tag byte + two 8-byte lengths *)
  let intent_payload = 17 in
  (* The smallest frame an intent can occupy (v1 header); an intent
     written by any supported version is at least this long. *)
  let min_intent_frame = Wal.Codec.min_header_size + intent_payload in
  (* An intent frame of either version: the header parses, the payload
     is intent-sized and the tag byte is the intent's.  [read_header]
     is the version dispatch, so a journal written by a v1 binary is
     found by a v2 one and vice versa. *)
  let plausible p =
    match Wal.Codec.read_header bytes p with
    | Error _ -> false
    | Ok h ->
        h.Wal.Codec.h_payload_len = intent_payload
        && bytes.[p + h.Wal.Codec.h_size] = '\005'
  in
  let rec scan pos =
    if pos + min_intent_frame > total then No_journal
    else
      match String.index_from_opt bytes pos Wal.Codec.magic0 with
      | None -> No_journal
      | Some p when not (plausible p) -> scan (p + 1)
      | Some p -> (
          match Wal.Codec.decode_frame bytes p with
          | Ok (Wal.Truncate_intent { old_len; new_len }, next)
            when p = old_len && next + new_len = total -> (
              (* The journal committed; its image must verify in full
                 before we are allowed to destroy the old log. *)
              let image = String.sub bytes next new_len in
              match Wal.Codec.decode_all image with
              | Ok { Wal.Codec.torn = None; clean_bytes; _ }
                when clean_bytes = new_len ->
                  Complete { image }
              | Ok _ ->
                  Damaged
                    {
                      Wal.Codec.offset = next;
                      version = None;
                      reason = "truncation journal image is torn";
                    }
              | Error c ->
                  Damaged
                    {
                      Wal.Codec.offset = next + c.Wal.Codec.offset;
                      version = c.Wal.Codec.version;
                      reason =
                        "truncation journal image unreadable: "
                        ^ c.Wal.Codec.reason;
                    })
          | Ok _ | Error _ -> scan (p + 1))
  in
  scan 0

(* A retry loop for recovery-path writes, before any [t] exists. *)
let retry_loop retry f =
  let rec go attempt =
    match f () with
    | v -> v
    | exception Storage.Transient last ->
        if attempt >= retry.max_attempts then
          raise (Storage_unavailable { attempts = attempt; last })
        else begin
          retry.backoff attempt;
          go (attempt + 1)
        end
  in
  go 1

let load ?(retry = default_retry) ?shard ?profile ?workers storage =
  (* Reads are not retried on content grounds — a short or bit-flipped
     read is silent, and it is the decoder's job to catch it. *)
  let module Profile = Tm_obs.Recovery_profile in
  let bytes =
    match profile with
    | None -> Storage.read_all storage
    | Some p ->
        let bytes =
          Profile.time p Profile.Storage_scan (fun () ->
              Storage.read_all storage)
        in
        Profile.note_bytes_scanned p (String.length bytes);
        bytes
  in
  (* Resolve an interrupted compaction first: a half-installed image
     makes the raw bytes look arbitrarily damaged, so the journal — not
     the plain decode — is the authority on what the log is. *)
  let resolved =
    match find_journal bytes with
    | Damaged c -> Error c
    | Complete { image } ->
        (* Redo the install (idempotent: re-running after any crash
           inside it converges to the same image).  Charged to the
           storage-scan phase: it is restart I/O, not decoding. *)
        let install () =
          retry_loop retry (fun () -> Storage.write_at storage ~pos:0 image);
          retry_loop retry (fun () -> Storage.force storage)
        in
        (match profile with
        | None -> install ()
        | Some p -> Profile.time p Profile.Storage_scan install);
        Ok image
    | No_journal -> Ok bytes
  in
  match resolved with
  | Error _ as e -> e
  | Ok bytes -> (
      match Wal.Codec.decode_all ?profile ?workers bytes with
      | Error _ as e -> e
      | Ok { Wal.Codec.records; clean_bytes; torn = _ } ->
          (* An intent surviving in the decoded stream means the journal
             write itself was cut short (a complete journal was resolved
             above): the compaction never committed, so the log is
             exactly the records before the intent — roll it back by
             ignoring the rest.  [end_off] must point at the intent's
             byte offset, which is recovered by walking the actual
             on-disk frame headers — never by re-encoding the kept
             records, whose byte length differs from the disk's once
             the log mixes frame versions (v1 frames persisted by an
             older binary, v2 appends after them). *)
          let offset_of_frame n =
            let rec go pos i =
              if i = n then pos
              else
                match Wal.Codec.read_header bytes pos with
                | Ok h -> go (pos + h.Wal.Codec.h_size + h.Wal.Codec.h_payload_len) (i + 1)
                | Error _ -> pos (* unreachable: these frames just decoded *)
            in
            go 0 0
          in
          let records, clean_bytes =
            let rec split n kept = function
              | [] -> (records, clean_bytes)
              | Wal.Truncate_intent _ :: _ -> (List.rev kept, offset_of_frame n)
              | r :: rest -> split (n + 1) (r :: kept) rest
            in
            split 0 [] records
          in
          (* The mirror is rebuilt before the sink is installed, so the
             replayed records are not re-persisted; a torn tail is
             dropped logically — [end_off] points at the intact prefix,
             and the next append overwrites the debris. *)
          let wal = Wal.of_records records in
          Ok (make ~retry ?shard storage wal ~end_off:clean_bytes))

let checkpoint_truncate t =
  let dropped = Wal.truncate_to_checkpoint t.wal in
  if dropped > 0 then begin
    let image = Wal.Codec.encode_all ~shard:t.shard (Wal.records t.wal) in
    let old_len = t.end_off in
    let intent =
      Wal.Codec.encode ~shard:t.shard
        (Wal.Truncate_intent { old_len; new_len = String.length image })
    in
    (* 1. Journal: intent + full image after the live log, forced.  The
       old log is still intact, so a crash up to here rolls back. *)
    with_retry t (fun () ->
        Storage.write_at t.storage ~pos:old_len (intent ^ image));
    with_retry t (fun () -> Storage.force t.storage);
    (* 2. Install: the image replaces the log from byte 0; [write_at]'s
       trailing truncation erases the journal in the same call.  A crash
       inside this step finds the journal and redoes the install. *)
    with_retry t (fun () -> Storage.write_at t.storage ~pos:0 image);
    with_retry t (fun () -> Storage.force t.storage);
    (* The rewrite forced the whole log through the side door, so the
       pipeline's watermark can advance without another barrier. *)
    Wal.mark_all_flushed t.wal;
    t.end_off <- String.length image
  end;
  dropped
