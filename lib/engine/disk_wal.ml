module Metrics = Tm_obs.Metrics

type retry = {
  max_attempts : int;
  backoff : int -> unit;
}

let default_retry = { max_attempts = 8; backoff = (fun _ -> ()) }

exception Storage_unavailable of { attempts : int; last : string }

type t = {
  storage : Storage.t;
  wal : Wal.t;
  retry : retry;
  mutable end_off : int;  (* logical end: bytes of intact, persisted log *)
  mutable bytes_written : int;
  mutable retries : int;
  mutable metrics : Metrics.t option;
}

let wal t = t.wal
let storage t = t.storage
let bytes_written t = t.bytes_written
let retries t = t.retries

let count t name by =
  match t.metrics with
  | None -> ()
  | Some reg -> Metrics.Counter.incr ~by (Metrics.counter reg name)

(* Run [f] through the retry budget.  A torn write persists a prefix,
   but every attempt rewrites from the same offset, so the torn bytes
   are overwritten rather than accumulated. *)
let with_retry t f =
  let rec go attempt =
    match f () with
    | v -> v
    | exception Storage.Transient last ->
        if attempt >= t.retry.max_attempts then
          raise (Storage_unavailable { attempts = attempt; last })
        else begin
          t.retries <- t.retries + 1;
          count t "tm_storage_retries_total" 1;
          t.retry.backoff attempt;
          go (attempt + 1)
        end
  in
  go 1

let persist t record =
  let frame = Wal.Codec.encode record in
  with_retry t (fun () -> Storage.write_at t.storage ~pos:t.end_off frame);
  t.end_off <- t.end_off + String.length frame;
  t.bytes_written <- t.bytes_written + String.length frame;
  count t "tm_wal_bytes_total" (String.length frame)

let install_sink t =
  Wal.set_sink t.wal
    {
      Wal.sink_append = (fun r -> persist t r);
      sink_force = (fun () -> with_retry t (fun () -> Storage.force t.storage));
      sink_attach =
        (fun reg ->
          t.metrics <- Some reg;
          Storage.attach_metrics t.storage reg);
    }

let make ?(retry = default_retry) storage wal ~end_off =
  let t =
    { storage; wal; retry; end_off; bytes_written = 0; retries = 0; metrics = None }
  in
  install_sink t;
  t

let create ?retry storage =
  let t = make ?retry storage (Wal.create ()) ~end_off:0 in
  (* A fresh log owns the backend from byte 0; stale contents (a
     previous incarnation's log) would otherwise replay after ours. *)
  if Storage.size storage > 0 then
    with_retry t (fun () -> Storage.write_at storage ~pos:0 "");
  t

let load ?retry ?profile storage =
  (* Reads are not retried on content grounds — a short or bit-flipped
     read is silent, and it is the decoder's job to catch it. *)
  let module Profile = Tm_obs.Recovery_profile in
  let bytes =
    match profile with
    | None -> Storage.read_all storage
    | Some p ->
        let bytes =
          Profile.time p Profile.Storage_scan (fun () ->
              Storage.read_all storage)
        in
        Profile.note_bytes_scanned p (String.length bytes);
        bytes
  in
  match Wal.Codec.decode_all ?profile bytes with
  | Error _ as e -> e
  | Ok { Wal.Codec.records; clean_bytes; torn = _ } ->
      (* The mirror is rebuilt before the sink is installed, so the
         replayed records are not re-persisted; a torn tail is dropped
         logically — [end_off] points at the intact prefix, and the next
         append overwrites the debris. *)
      let wal = Wal.of_records records in
      Ok (make ?retry storage wal ~end_off:clean_bytes)

let checkpoint_truncate t =
  let dropped = Wal.truncate_to_checkpoint t.wal in
  if dropped > 0 then begin
    let bytes = Wal.Codec.encode_all (Wal.records t.wal) in
    with_retry t (fun () -> Storage.write_at t.storage ~pos:0 bytes);
    with_retry t (fun () -> Storage.force t.storage);
    (* The rewrite forced the whole log through the side door, so the
       pipeline's watermark can advance without another barrier. *)
    Wal.mark_all_flushed t.wal;
    t.end_off <- String.length bytes
  end;
  dropped
