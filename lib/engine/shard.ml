type t = {
  index : int;
  wal : Wal.t;
  db : Durable_database.t;
  lock : Mutex.t;  (* serialises engine calls; never held across a force *)
}

let create ?first_tid ~index ~wal objs =
  { index; wal; db = Durable_database.create ?first_tid ~wal objs; lock = Mutex.create () }

let of_db ~index ~wal db = { index; wal; db; lock = Mutex.create () }
let index t = t.index
let wal t = t.wal
let db t = t.db
let database t = Durable_database.database t.db
let metrics t = Database.metrics (database t)

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f
