open Tm_core
module Metrics = Tm_obs.Metrics

type policy =
  | Locking
  | Optimistic

let pp_policy ppf = function
  | Locking -> Fmt.string ppf "locking"
  | Optimistic -> Fmt.string ppf "optimistic"

type t = {
  name : string;
  spec : Spec.t;
  policy : policy;
  conflict : Conflict.t;
  locks : Lock_table.t;
  recovery : Recovery.t;
  mutable blocks : int;
  mutable metrics : Metrics.t option;
  (* Optimistic bookkeeping: committed operations in commit order (for
     backward validation), each transaction's ops and its start point in
     that log. *)
  mutable committed_rev : Op.t list;
  mutable committed_len : int;
  opt_start : (Tid.t, int) Hashtbl.t;
  opt_ops : (Tid.t, Op.t list) Hashtbl.t;  (* newest first *)
}

type outcome =
  | Executed of Op.t
  | Blocked of Tid.t list
  | No_response

let pp_outcome ppf = function
  | Executed op -> Fmt.pf ppf "executed %a" Op.pp op
  | Blocked tids -> Fmt.pf ppf "blocked on %a" Fmt.(list ~sep:(any ",") Tid.pp) tids
  | No_response -> Fmt.string ppf "no legal response"

let make ?inverse ~spec ~conflict ~policy ~recovery () =
  {
    name = Spec.name spec;
    spec;
    policy;
    conflict;
    locks = Lock_table.create conflict;
    recovery = Recovery.create ?inverse recovery spec;
    blocks = 0;
    metrics = None;
    committed_rev = [];
    committed_len = 0;
    opt_start = Hashtbl.create 16;
    opt_ops = Hashtbl.create 16;
  }

let create ?inverse ~spec ~conflict ~recovery () =
  make ?inverse ~spec ~conflict ~policy:Locking ~recovery ()

(* Optimistic execution must not publish uncommitted effects, so it is
   tied to deferred-update recovery (the single current state of
   update-in-place publishes by construction). *)
let create_optimistic ~spec ~conflict =
  make ~spec ~conflict ~policy:Optimistic ~recovery:Recovery.DU ()

let name t = t.name
let spec t = t.spec
let policy t = t.policy
let recovery_kind t = Recovery.kind t.recovery

let attach_metrics t reg =
  t.metrics <- Some reg;
  Lock_table.attach_metrics t.locks ~obj:t.name reg;
  Recovery.attach_metrics t.recovery reg

(* Per-operation counters run only on contention/failure paths (blocks,
   stalls, validation failures) — never on a plain executed invocation. *)
let count_event t metric inv_name =
  match t.metrics with
  | None -> ()
  | Some reg ->
      Metrics.Counter.incr
        (Metrics.counter reg metric ~labels:[ ("obj", t.name); ("op", inv_name) ])

let choose_op t ?choose inv enabled_ops =
  match choose, enabled_ops with
  | None, first :: _ -> first
  | Some pick, ops ->
      let res = pick (List.map (fun (o : Op.t) -> o.res) ops) in
      { Op.obj = t.name; inv; res }
  | None, [] -> assert false

let invoke_locking ?choose t tid inv candidates =
  (* Result-dependent locking: find a legal response whose operation is
     not blocked; only if all legal responses are blocked does the
     transaction wait. *)
  let enabled, blocked_on =
    List.fold_left
      (fun (enabled, blockers) res ->
        let op = { Op.obj = t.name; inv; res } in
        match Lock_table.blockers t.locks ~requested:op ~tid with
        | [] -> (op :: enabled, blockers)
        | bs -> (enabled, bs @ blockers))
      ([], []) candidates
  in
  match List.rev enabled with
  | [] ->
      t.blocks <- t.blocks + 1;
      count_event t "tm_object_blocked_total" inv.Op.name;
      Blocked (List.sort_uniq Tid.compare blocked_on)
  | enabled_ops ->
      let op = choose_op t ?choose inv enabled_ops in
      Recovery.record t.recovery tid op;
      Lock_table.add t.locks tid op;
      Executed op

let invoke_optimistic ?choose t tid inv candidates =
  (* No locks taken, nothing ever blocks; conflicts are paid at commit
     time (backward validation).  Remember where the committed log stood
     when the transaction first touched this object. *)
  if not (Hashtbl.mem t.opt_start tid) then Hashtbl.add t.opt_start tid t.committed_len;
  let ops = List.map (fun res -> { Op.obj = t.name; inv; res }) candidates in
  let op = choose_op t ?choose inv ops in
  Recovery.record t.recovery tid op;
  Hashtbl.replace t.opt_ops tid
    (op :: Option.value (Hashtbl.find_opt t.opt_ops tid) ~default:[]);
  Executed op

let invoke ?choose t tid inv =
  match Recovery.responses t.recovery tid inv with
  | [] ->
      count_event t "tm_object_no_response_total" inv.Op.name;
      No_response
  | candidates -> (
      match t.policy with
      | Locking -> invoke_locking ?choose t tid inv candidates
      | Optimistic -> invoke_optimistic ?choose t tid inv candidates)

(* Operations committed after position [start], oldest first. *)
let committed_since t start =
  let rec take n l = if n <= 0 then [] else match l with [] -> [] | x :: r -> x :: take (n - 1) r in
  List.rev (take (t.committed_len - start) t.committed_rev)

let validate t tid =
  match t.policy with
  | Locking -> Ok ()
  | Optimistic -> (
      match Hashtbl.find_opt t.opt_start tid with
      | None -> Ok ()  (* executed nothing here *)
      | Some start ->
          let mine = List.rev (Option.value (Hashtbl.find_opt t.opt_ops tid) ~default:[]) in
          let interleaved = committed_since t start in
          let bad =
            List.find_map
              (fun op ->
                List.find_map
                  (fun c ->
                    if Conflict.conflicts t.conflict ~requested:op ~held:c then
                      Some (op, c)
                    else None)
                  interleaved)
              mine
          in
          (match bad with
          | Some ((mine_op, _) as p) ->
              count_event t "tm_validation_failures_total" mine_op.Op.inv.Op.name;
              Error p
          | None -> Ok ()))

let forget_optimistic t tid =
  Hashtbl.remove t.opt_start tid;
  Hashtbl.remove t.opt_ops tid

let commit t tid =
  (match Hashtbl.find_opt t.opt_ops tid with
  | Some ops ->
      t.committed_rev <- ops @ t.committed_rev;
      t.committed_len <- t.committed_len + List.length ops
  | None ->
      (* Locking policy (or an optimistic transaction that executed
         nothing here): the validation log is only consulted by
         [validate], which runs solely for optimistic transactions of
         this same object, so there is nothing to record. *)
      ());
  forget_optimistic t tid;
  Recovery.commit t.recovery tid;
  Lock_table.release t.locks tid

let abort t tid =
  forget_optimistic t tid;
  Recovery.abort t.recovery tid;
  Lock_table.release t.locks tid

let committed_ops t = Recovery.committed_ops t.recovery
let holds t = Lock_table.holds t.locks
let block_count t = t.blocks

let restore t ops =
  if committed_ops t <> [] then
    Error { Recovery.obj = t.name; reason = "restore: object not fresh" }
  else Recovery.restore t.recovery ops
