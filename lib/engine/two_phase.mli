(** Presumed-abort two-phase-commit log analysis.

    A cross-shard transaction leaves its outcome scattered across the
    participants' write-ahead logs: a forced [Prepare] on every
    participant (the phase-1 yes vote), a forced [Decision] on the
    coordinator's shard (the global commit point), and a lazy [Commit]
    or [Abort] on each participant (phase 2, may be lost by a crash).
    This module reads the per-shard record lists after a crash and
    answers the only question recovery needs: for every transaction a
    shard prepared but never locally finished, did the system as a
    whole commit it?

    The protocol is {e presumed abort}: absence of commit evidence is an
    abort.  Commit evidence for a transaction is either a
    [Decision { commit = true }] frame anywhere, or — because
    transaction ids are allocated globally and never reused — a phase-2
    [Commit] record on any shard where the transaction was prepared
    (a participant only logs [Commit] after the coordinator decided
    commit, so a surviving phase-2 record is as good as the decision
    itself). *)

open Tm_core

type analysis = {
  in_doubt : Tid.t list array;
      (** Per shard, in first-[Prepare] order: transactions prepared on
          that shard with no later local [Commit]/[Abort] — the ones
          whose locks recovery may not release without consulting the
          other shards. *)
  commit_evidence : Tid.Set.t;
      (** Transactions proven committed somewhere: a
          [Decision { commit = true }] on any shard, or a [Commit] of a
          transaction some shard prepared. *)
  abort_evidence : Tid.Set.t;
      (** Transactions with an explicit abort outcome somewhere
          (a [Decision { commit = false }], or an [Abort] of a prepared
          transaction).  Informational — presumed abort never needs it
          — but useful for forensics and metrics. *)
  decision_evidence : Tid.Set.t;
      (** Transactions whose [Decision] frame itself survived on some
          shard (either outcome). *)
  phase2_evidence : Tid.Set.t;
      (** Ever-prepared transactions witnessed by a surviving phase-2
          [Commit]/[Abort] record on some shard. *)
}

(** [analyze logs] scans every shard's record list once.  [logs.(s)] is
    shard [s]'s log in append order (as returned by {!Wal.records}). *)
val analyze : Wal.record list array -> analysis

(** The outcome recovery must append for one in-doubt transaction. *)
type resolution = { tid : Tid.t; commit : bool }

(** [resolutions a ~shard] — the in-doubt transactions of [shard] paired
    with their resolved outcomes ([commit = true] iff the transaction is
    in [a.commit_evidence]; everything else is presumed aborted), in
    first-[Prepare] order.  {!Sharded_database.recover} appends a real
    [Commit]/[Abort] record per entry to the shard's log and forces it,
    completing the interrupted protocol before ordinary replay. *)
val resolutions : analysis -> shard:int -> resolution list

val pp_resolution : Format.formatter -> resolution -> unit

(** {1 Audit trail}

    Recovery's in-doubt resolutions, as structured events naming the
    evidence each rested on — the raw material of the 2PC audit
    artifact ({!Tm_obs.Artifact.audit_schema}), the Report audit
    section and the [tm_2pc_resolved_total{evidence,outcome}]
    metrics. *)

type evidence =
  | Decision_record  (** the coordinator's [Decision] frame survived *)
  | Phase2_record
      (** a phase-2 [Commit]/[Abort] of the prepared transaction
          survived on some shard *)
  | Presumed  (** no surviving witness: the presumed-abort default *)

val evidence_name : evidence -> string
(** ["decision"], ["phase2"] or ["presumed"] — the label values of
    [tm_2pc_resolved_total] and the [evidence] field of the audit
    JSONL. *)

type resolution_event = {
  ev_shard : int;
  ev_tid : Tid.t;
  ev_commit : bool;  (** the outcome record recovery appends *)
  ev_evidence : evidence;
}

val resolution_events : analysis -> resolution_event list
(** One event per in-doubt prepare, in shard order then first-[Prepare]
    order — exactly the records {!Sharded_database.recover} appends.  A
    log with nothing in doubt (in particular: one already resolved by a
    previous recovery) yields [[]], so re-analysis is idempotent. *)

val pp_resolution_event : Format.formatter -> resolution_event -> unit

val event_to_json : resolution_event -> Tm_obs.Json.t

val events_to_jsonl : resolution_event list -> string
(** Newline-terminated JSONL body lines
    ([{"shard":..,"tid":..,"outcome":..,"evidence":..}]); callers
    prepend an {!Tm_obs.Artifact.audit_schema} header line. *)
