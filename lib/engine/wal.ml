open Tm_core
module Metrics = Tm_obs.Metrics

type record =
  | Begin of Tid.t
  | Operation of Tid.t * Op.t
  | Commit of Tid.t
  | Abort of Tid.t
  | Checkpoint of Op.t list

let pp_record ppf = function
  | Begin tid -> Fmt.pf ppf "BEGIN %a" Tid.pp tid
  | Operation (tid, op) -> Fmt.pf ppf "OP %a %a" Tid.pp tid Op.pp op
  | Commit tid -> Fmt.pf ppf "COMMIT %a" Tid.pp tid
  | Abort tid -> Fmt.pf ppf "ABORT %a" Tid.pp tid
  | Checkpoint ops -> Fmt.pf ppf "CHECKPOINT (%d ops)" (List.length ops)

type t = {
  mutable records_rev : record list;
  mutable count : int;
  mutable metrics : Metrics.t option;
}

let create () = { records_rev = []; count = 0; metrics = None }
let attach_metrics t reg = t.metrics <- Some reg

let record_kind = function
  | Begin _ -> "begin"
  | Operation _ -> "operation"
  | Commit _ -> "commit"
  | Abort _ -> "abort"
  | Checkpoint _ -> "checkpoint"

let append t r =
  t.records_rev <- r :: t.records_rev;
  t.count <- t.count + 1;
  match t.metrics with
  | None -> ()
  | Some reg -> (
      Metrics.Counter.incr
        (Metrics.counter reg "tm_wal_appends_total" ~labels:[ ("kind", record_kind r) ]);
      match r with
      | Checkpoint ops ->
          Metrics.Histogram.observe_int
            (Metrics.histogram reg "tm_wal_checkpoint_ops")
            (List.length ops)
      | Begin _ | Operation _ | Commit _ | Abort _ -> ())

let records t = List.rev t.records_rev
let length t = t.count

let prefix t n =
  let rec take n l = if n <= 0 then [] else match l with [] -> [] | x :: r -> x :: take (n - 1) r in
  let kept = take n (records t) in
  { records_rev = List.rev kept; count = List.length kept; metrics = None }

let replay recs =
  (* Start after the latest checkpoint: its operation sequence already
     reflects every transaction committed before it. *)
  let after_checkpoint =
    let rec latest acc pending = function
      | [] -> (acc, List.rev pending)
      | Checkpoint ops :: rest -> latest ops [] rest
      | r :: rest -> latest acc (r :: pending) rest
    in
    latest [] [] recs
  in
  let base, tail = after_checkpoint in
  (* Scan: collect per-transaction operations; redo at commit records. *)
  let ops_of : (Tid.t, Op.t list) Hashtbl.t = Hashtbl.create 16 in
  let seen : (Tid.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let committed_rev = ref (List.rev base) in
  let finished : (Tid.t, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match r with
      | Begin tid -> Hashtbl.replace seen tid ()
      | Operation (tid, op) ->
          Hashtbl.replace seen tid ();
          Hashtbl.replace ops_of tid
            (op :: Option.value (Hashtbl.find_opt ops_of tid) ~default:[])
      | Commit tid ->
          committed_rev :=
            Option.value (Hashtbl.find_opt ops_of tid) ~default:[] @ !committed_rev;
          Hashtbl.remove ops_of tid;
          Hashtbl.replace finished tid ()
      | Abort tid ->
          Hashtbl.remove ops_of tid;
          Hashtbl.replace finished tid ()
      | Checkpoint _ -> ())
    tail;
  let losers =
    Hashtbl.fold
      (fun tid () acc -> if Hashtbl.mem finished tid then acc else Tid.Set.add tid acc)
      seen Tid.Set.empty
  in
  (List.rev !committed_rev, losers)
