open Tm_core
module Metrics = Tm_obs.Metrics

type checkpoint = {
  committed : Op.t list;
  live : (Tid.t * Op.t list) list;
  next_tid : int;
}

type record =
  | Begin of Tid.t
  | Operation of Tid.t * Op.t
  | Commit of Tid.t
  | Abort of Tid.t
  | Checkpoint of checkpoint

let pp_record ppf = function
  | Begin tid -> Fmt.pf ppf "BEGIN %a" Tid.pp tid
  | Operation (tid, op) -> Fmt.pf ppf "OP %a %a" Tid.pp tid Op.pp op
  | Commit tid -> Fmt.pf ppf "COMMIT %a" Tid.pp tid
  | Abort tid -> Fmt.pf ppf "ABORT %a" Tid.pp tid
  | Checkpoint cp ->
      Fmt.pf ppf "CHECKPOINT (%d ops, %d live txns, next tid %d)"
        (List.length cp.committed) (List.length cp.live) cp.next_tid

type t = {
  mutable records_rev : record list;
  mutable count : int;
  mutable truncated : int;
  mutable metrics : Metrics.t option;
}

let create () = { records_rev = []; count = 0; truncated = 0; metrics = None }
let attach_metrics t reg = t.metrics <- Some reg

let record_kind = function
  | Begin _ -> "begin"
  | Operation _ -> "operation"
  | Commit _ -> "commit"
  | Abort _ -> "abort"
  | Checkpoint _ -> "checkpoint"

let append t r =
  t.records_rev <- r :: t.records_rev;
  t.count <- t.count + 1;
  match t.metrics with
  | None -> ()
  | Some reg -> (
      Metrics.Counter.incr
        (Metrics.counter reg "tm_wal_appends_total" ~labels:[ ("kind", record_kind r) ]);
      match r with
      | Checkpoint cp ->
          Metrics.Histogram.observe_int
            (Metrics.histogram reg "tm_wal_checkpoint_ops")
            (List.length cp.committed)
      | Begin _ | Operation _ | Commit _ | Abort _ -> ())

let records t = List.rev t.records_rev
let length t = t.count
let truncated t = t.truncated

let prefix t n =
  let rec take n l = if n <= 0 then [] else match l with [] -> [] | x :: r -> x :: take (n - 1) r in
  let kept = take n (records t) in
  (* The rebuilt log keeps the metrics attachment: a crash loses volatile
     state, not the accounting of the log that survived it.  (Recovery
     re-attaches the new database's registry anyway.) *)
  { records_rev = List.rev kept; count = List.length kept; truncated = 0; metrics = t.metrics }

let truncate_to_checkpoint t =
  (* [records_rev] is newest first, so the first [Checkpoint] found is the
     latest one; everything older is summarised by it (the fuzzy snapshot
     carries live transactions' logs) and can be dropped. *)
  let rec split kept_rev = function
    | [] -> None
    | (Checkpoint _ as c) :: older -> Some (kept_rev, c, older)
    | r :: older -> split (r :: kept_rev) older
  in
  match split [] t.records_rev with
  | None -> 0
  | Some (newer_rev, c, older) ->
      let dropped = List.length older in
      if dropped > 0 then begin
        t.records_rev <- List.rev_append newer_rev [ c ];
        t.count <- t.count - dropped;
        t.truncated <- t.truncated + dropped;
        match t.metrics with
        | None -> ()
        | Some reg ->
            Metrics.Counter.incr ~by:dropped
              (Metrics.counter reg "tm_wal_truncated_records_total")
      end;
      dropped

(* One pass shared by [replay], [fuzzy_checkpoint] and [max_tid]: fold the
   log into committed operations (commit order), the per-transaction logs
   of unfinished transactions, and the tid high-water mark.  A checkpoint
   record summarises its whole prefix, so scanning restarts from its
   snapshot (only the high-water mark is carried monotonically through). *)
type scan = {
  mutable committed_rev : Op.t list;
  ops_of : (Tid.t, Op.t list) Hashtbl.t;  (* newest first; unfinished txns *)
  seen : (Tid.t, unit) Hashtbl.t;
  finished : (Tid.t, unit) Hashtbl.t;
  mutable hwm : int;  (* first tid strictly above every tid in the log *)
}

let scan recs =
  let st =
    {
      committed_rev = [];
      ops_of = Hashtbl.create 16;
      seen = Hashtbl.create 16;
      finished = Hashtbl.create 16;
      hwm = 0;
    }
  in
  let note tid = st.hwm <- max st.hwm (Tid.to_int tid + 1) in
  List.iter
    (fun r ->
      match r with
      | Begin tid ->
          note tid;
          Hashtbl.replace st.seen tid ()
      | Operation (tid, op) ->
          note tid;
          Hashtbl.replace st.seen tid ();
          Hashtbl.replace st.ops_of tid
            (op :: Option.value (Hashtbl.find_opt st.ops_of tid) ~default:[])
      | Commit tid ->
          note tid;
          st.committed_rev <-
            Option.value (Hashtbl.find_opt st.ops_of tid) ~default:[] @ st.committed_rev;
          Hashtbl.remove st.ops_of tid;
          Hashtbl.replace st.finished tid ()
      | Abort tid ->
          note tid;
          Hashtbl.remove st.ops_of tid;
          Hashtbl.replace st.finished tid ()
      | Checkpoint cp ->
          (* The snapshot stands for the whole prefix: committed operations
             and the logs of transactions that were in flight when it was
             taken.  Everything else about the prefix is forgotten. *)
          st.committed_rev <- List.rev cp.committed;
          Hashtbl.reset st.ops_of;
          Hashtbl.reset st.seen;
          Hashtbl.reset st.finished;
          List.iter
            (fun (tid, ops) ->
              note tid;
              Hashtbl.replace st.seen tid ();
              if ops <> [] then Hashtbl.replace st.ops_of tid (List.rev ops))
            cp.live;
          st.hwm <- max st.hwm cp.next_tid)
    recs;
  st

let replay recs =
  let st = scan recs in
  let losers =
    Hashtbl.fold
      (fun tid () acc -> if Hashtbl.mem st.finished tid then acc else Tid.Set.add tid acc)
      st.seen Tid.Set.empty
  in
  (List.rev st.committed_rev, losers)

let max_tid recs =
  let st = scan recs in
  if st.hwm = 0 then None else Some (Tid.of_int (st.hwm - 1))

let fuzzy_checkpoint ?(next_tid = 0) recs =
  let st = scan recs in
  let live =
    Hashtbl.fold
      (fun tid () acc ->
        if Hashtbl.mem st.finished tid then acc
        else
          (tid, List.rev (Option.value (Hashtbl.find_opt st.ops_of tid) ~default:[]))
          :: acc)
      st.seen []
    |> List.sort (fun (a, _) (b, _) -> Tid.compare a b)
  in
  { committed = List.rev st.committed_rev; live; next_tid = max next_tid st.hwm }
