open Tm_core
module Metrics = Tm_obs.Metrics
module Profile = Tm_obs.Recovery_profile

type checkpoint = {
  committed : Op.t list;
  live : (Tid.t * Op.t list) list;
  next_tid : int;
}

type record =
  | Begin of Tid.t
  | Operation of Tid.t * Op.t
  | Commit of Tid.t
  | Abort of Tid.t
  | Checkpoint of checkpoint
  | Truncate_intent of { old_len : int; new_len : int }
  | Prepare of Tid.t
  | Decision of { tid : Tid.t; commit : bool }

let pp_record ppf = function
  | Begin tid -> Fmt.pf ppf "BEGIN %a" Tid.pp tid
  | Operation (tid, op) -> Fmt.pf ppf "OP %a %a" Tid.pp tid Op.pp op
  | Commit tid -> Fmt.pf ppf "COMMIT %a" Tid.pp tid
  | Abort tid -> Fmt.pf ppf "ABORT %a" Tid.pp tid
  | Checkpoint cp ->
      Fmt.pf ppf "CHECKPOINT (%d ops, %d live txns, next tid %d)"
        (List.length cp.committed) (List.length cp.live) cp.next_tid
  | Truncate_intent { old_len; new_len } ->
      Fmt.pf ppf "TRUNCATE-INTENT (%d -> %d bytes)" old_len new_len
  | Prepare tid -> Fmt.pf ppf "PREPARE %a" Tid.pp tid
  | Decision { tid; commit } ->
      Fmt.pf ppf "DECISION %a %s" Tid.pp tid (if commit then "COMMIT" else "ABORT")

let equal_checkpoint a b =
  List.equal Op.equal a.committed b.committed
  && List.equal
       (fun (t1, o1) (t2, o2) -> Tid.equal t1 t2 && List.equal Op.equal o1 o2)
       a.live b.live
  && a.next_tid = b.next_tid

let equal_record a b =
  match a, b with
  | Begin x, Begin y | Commit x, Commit y | Abort x, Abort y | Prepare x, Prepare y
    ->
      Tid.equal x y
  | Operation (x, p), Operation (y, q) -> Tid.equal x y && Op.equal p q
  | Checkpoint x, Checkpoint y -> equal_checkpoint x y
  | Truncate_intent x, Truncate_intent y ->
      x.old_len = y.old_len && x.new_len = y.new_len
  | Decision x, Decision y -> Tid.equal x.tid y.tid && x.commit = y.commit
  | ( ( Begin _ | Operation _ | Commit _ | Abort _ | Checkpoint _
      | Truncate_intent _ | Prepare _ | Decision _ ),
      _ ) ->
      false

(* A sink mirrors the in-memory log onto stable storage ({!Disk_wal}):
   appends are persisted as they happen, [force] is the durability
   barrier, and a metrics attachment is forwarded so storage counters
   land in the same registry as the log's own. *)
type sink = {
  sink_append : record -> unit;
  sink_force : unit -> unit;
  sink_attach : Metrics.t -> unit;
}

type t = {
  mutable records_rev : record list;
  mutable count : int;
  mutable truncated : int;
  mutable metrics : Metrics.t option;
  mutable sink : sink option;
  (* --- durability pipeline state (group commit) ---
     Appends are assigned monotone LSNs (1-based, counting every append
     since creation — truncation does not rewind them); [flushed] is the
     watermark below which the sink has certified durability.  The
     combiner fields serialise flushing across OS threads: exactly one
     waiter runs [sink_force] per round while later arrivals park on
     [flush_done] and piggyback on the result. *)
  mutable appended : int;  (* lsn of the newest fully-appended record *)
  mutable flushed : int;  (* durability watermark (meaningful with a sink) *)
  mutable commits_appended : int;  (* Commit records appended so far *)
  mutable commits_flushed : int;  (* Commit records covered by a force *)
  flush_lock : Mutex.t;
  flush_done : Condition.t;
  mutable flusher_busy : bool;
}

let make_log records_rev count =
  let commits =
    List.fold_left
      (fun n r -> match r with Commit _ -> n + 1 | _ -> n)
      0 records_rev
  in
  {
    records_rev;
    count;
    truncated = 0;
    metrics = None;
    sink = None;
    appended = count;
    flushed = 0;
    commits_appended = commits;
    commits_flushed = 0;
    flush_lock = Mutex.create ();
    flush_done = Condition.create ();
    flusher_busy = false;
  }

let create () = make_log [] 0
let of_records recs = make_log (List.rev recs) (List.length recs)

(* On-disk format versions.  The byte-level contract lives in {!Codec}
   (and docs/WAL_FORMAT.md); the constants sit up here so the metrics
   attachment below can export the written version without a forward
   reference into the codec. *)
let format_v1 = 1
let format_v2 = 2
let write_format_version = format_v2

let set_sink t sink =
  t.sink <- Some sink;
  (* Everything already present predates the sink (e.g. records decoded
     from the backend by {!Disk_wal.load}); it is exactly what stable
     storage holds, so the watermark starts there. *)
  t.flushed <- max t.flushed t.appended;
  t.commits_flushed <- max t.commits_flushed t.commits_appended;
  match t.metrics with None -> () | Some reg -> sink.sink_attach reg

let attach_metrics t reg =
  t.metrics <- Some reg;
  Metrics.Gauge.set
    (Metrics.gauge reg "tm_wal_format_version")
    (float_of_int write_format_version);
  match t.sink with None -> () | Some s -> s.sink_attach reg

let last_lsn t = t.appended

let flushed_lsn t =
  (* Without a sink, stable storage is modelled in-memory: an append is
     durable by fiat the instant it returns. *)
  match t.sink with None -> t.appended | Some _ -> t.flushed

(* Accounting for one actual barrier: [batch] is the number of commit
   records whose durability this single [sink_force] certified. *)
let note_force t batch =
  match t.metrics with
  | None -> ()
  | Some reg ->
      Metrics.Counter.incr (Metrics.counter reg "tm_wal_forces_total");
      Metrics.Counter.incr (Metrics.counter reg "tm_wal_group_commits_total");
      Metrics.Histogram.observe_int
        (Metrics.histogram reg "tm_wal_group_commit_batch")
        batch

let force_upto t lsn =
  match t.sink with
  | None -> ()
  | Some s ->
      Mutex.lock t.flush_lock;
      let rec await () =
        if t.flushed >= lsn then Ok ()
        else if t.flusher_busy then begin
          (* Piggyback: a batch is in flight; park on the group-commit
             condition and re-check when its round completes. *)
          Condition.wait t.flush_done t.flush_lock;
          await ()
        end
        else begin
          t.flusher_busy <- true;
          (* Snapshot under the lock: records with lsn <= target finished
             their sink append before being numbered, so the barrier below
             provably covers their bytes. *)
          let target = t.appended in
          let commits_target = t.commits_appended in
          Mutex.unlock t.flush_lock;
          let result = try Ok (s.sink_force ()) with e -> Error e in
          Mutex.lock t.flush_lock;
          t.flusher_busy <- false;
          match result with
          | Ok () ->
              if target > t.flushed then begin
                t.flushed <- target;
                let batch = commits_target - t.commits_flushed in
                t.commits_flushed <- max t.commits_flushed commits_target;
                note_force t batch
              end;
              Condition.broadcast t.flush_done;
              await ()
          | Error e ->
              (* The flusher died.  Hand the round over — a parked waiter
                 wakes, finds the combiner free and retries the flush
                 itself — and surface the failure to this caller (no
                 thread is left blocked on a dead flusher). *)
              Condition.broadcast t.flush_done;
              Error e
        end
      in
      let result = await () in
      Mutex.unlock t.flush_lock;
      (match result with Ok () -> () | Error e -> raise e)

let force t = force_upto t t.appended

let mark_all_flushed t =
  Mutex.lock t.flush_lock;
  t.flushed <- max t.flushed t.appended;
  t.commits_flushed <- max t.commits_flushed t.commits_appended;
  Mutex.unlock t.flush_lock

let record_kind = function
  | Begin _ -> "begin"
  | Operation _ -> "operation"
  | Commit _ -> "commit"
  | Abort _ -> "abort"
  | Checkpoint _ -> "checkpoint"
  | Truncate_intent _ -> "truncate_intent"
  | Prepare _ -> "prepare"
  | Decision _ -> "decision"

let append t r =
  t.records_rev <- r :: t.records_rev;
  t.count <- t.count + 1;
  (match t.sink with None -> () | Some s -> s.sink_append r);
  (* Publish the LSN only after the sink has the bytes: a flusher that
     snapshots [appended] and forces is then guaranteed to have covered
     every numbered record.  Counter updates are taken under [flush_lock]
     so a concurrent flusher's snapshot is consistent. *)
  Mutex.lock t.flush_lock;
  t.appended <- t.appended + 1;
  (match r with Commit _ -> t.commits_appended <- t.commits_appended + 1 | _ -> ());
  Mutex.unlock t.flush_lock;
  match t.metrics with
  | None -> ()
  | Some reg -> (
      Metrics.Counter.incr
        (Metrics.counter reg "tm_wal_appends_total" ~labels:[ ("kind", record_kind r) ]);
      match r with
      | Checkpoint cp ->
          Metrics.Histogram.observe_int
            (Metrics.histogram reg "tm_wal_checkpoint_ops")
            (List.length cp.committed)
      | Begin _ | Operation _ | Commit _ | Abort _ | Truncate_intent _
      | Prepare _ | Decision _ ->
          ())

let records t = List.rev t.records_rev
let length t = t.count
let truncated t = t.truncated

let prefix t n =
  let rec take n l = if n <= 0 then [] else match l with [] -> [] | x :: r -> x :: take (n - 1) r in
  let kept = take n (records t) in
  (* The rebuilt log keeps the metrics attachment: a crash loses volatile
     state, not the accounting of the log that survived it.  (Recovery
     re-attaches the new database's registry anyway.)  The sink is NOT
     carried over — a prefix is a volatile recovery artifact, and
     appending to it must not touch the stable storage it came from. *)
  let log = make_log (List.rev kept) (List.length kept) in
  log.metrics <- t.metrics;
  log

let truncate_to_checkpoint t =
  (* [records_rev] is newest first, so the first [Checkpoint] found is the
     latest one; everything older is summarised by it (the fuzzy snapshot
     carries live transactions' logs) and can be dropped. *)
  let rec split kept_rev = function
    | [] -> None
    | (Checkpoint _ as c) :: older -> Some (kept_rev, c, older)
    | r :: older -> split (r :: kept_rev) older
  in
  match split [] t.records_rev with
  | None -> 0
  | Some (newer_rev, c, older) ->
      let dropped = List.length older in
      if dropped > 0 then begin
        t.records_rev <- List.rev_append newer_rev [ c ];
        t.count <- t.count - dropped;
        t.truncated <- t.truncated + dropped;
        match t.metrics with
        | None -> ()
        | Some reg ->
            Metrics.Counter.incr ~by:dropped
              (Metrics.counter reg "tm_wal_truncated_records_total")
      end;
      dropped

(* One pass shared by [replay], [fuzzy_checkpoint] and [max_tid]: fold the
   log into committed operations (commit order), the per-transaction logs
   of unfinished transactions, and the tid high-water mark.  A checkpoint
   record summarises its whole prefix, so scanning restarts from its
   snapshot (only the high-water mark is carried monotonically through). *)
type scan = {
  mutable committed_rev : Op.t list;
  ops_of : (Tid.t, Op.t list) Hashtbl.t;  (* newest first; unfinished txns *)
  seen : (Tid.t, unit) Hashtbl.t;
  finished : (Tid.t, unit) Hashtbl.t;
  mutable hwm : int;  (* first tid strictly above every tid in the log *)
}

let scan ?profile recs =
  let st =
    {
      committed_rev = [];
      ops_of = Hashtbl.create 16;
      seen = Hashtbl.create 16;
      finished = Hashtbl.create 16;
      hwm = 0;
    }
  in
  let note tid = st.hwm <- max st.hwm (Tid.to_int tid + 1) in
  List.iter
    (fun r ->
      match r with
      | Begin tid ->
          note tid;
          Hashtbl.replace st.seen tid ()
      | Operation (tid, op) ->
          note tid;
          Hashtbl.replace st.seen tid ();
          Hashtbl.replace st.ops_of tid
            (op :: Option.value (Hashtbl.find_opt st.ops_of tid) ~default:[])
      | Commit tid ->
          note tid;
          st.committed_rev <-
            Option.value (Hashtbl.find_opt st.ops_of tid) ~default:[] @ st.committed_rev;
          Hashtbl.remove st.ops_of tid;
          Hashtbl.replace st.finished tid ()
      | Abort tid ->
          note tid;
          Hashtbl.remove st.ops_of tid;
          Hashtbl.replace st.finished tid ()
      | Truncate_intent _ ->
          (* A compaction journal marker; {!Disk_wal.load} resolves it
             before the log reaches replay, but a decoded stray is
             harmless — it carries no transaction state. *)
          ()
      | Prepare tid ->
          (* A prepared transaction voted yes in a cross-shard commit but
             this shard's log alone cannot tell the outcome.  Plain
             replay treats it exactly like any other unfinished
             transaction — presumed abort — so a participant whose
             coordinator never decided loses nothing it was entitled to
             keep.  {!Sharded_database.recover} resolves in-doubt
             transactions against the other shards' logs {e before}
             replay by appending the real outcome record. *)
          note tid;
          Hashtbl.replace st.seen tid ()
      | Decision { tid; commit = _ } ->
          (* The coordinator's 2PC outcome record.  It is pure
             coordination state: it must NOT mark the transaction as
             locally begun — on the coordinator's own shard the
             transaction also logs its local Prepare/Commit records, and
             a shard that only coordinated (no local ops) must not grow
             a phantom loser. *)
          note tid
      | Checkpoint cp ->
          (* The snapshot stands for the whole prefix: committed operations
             and the logs of transactions that were in flight when it was
             taken.  Everything else about the prefix is forgotten. *)
          let seed () =
            st.committed_rev <- List.rev cp.committed;
            Hashtbl.reset st.ops_of;
            Hashtbl.reset st.seen;
            Hashtbl.reset st.finished;
            List.iter
              (fun (tid, ops) ->
                note tid;
                Hashtbl.replace st.seen tid ();
                if ops <> [] then Hashtbl.replace st.ops_of tid (List.rev ops))
              cp.live;
            st.hwm <- max st.hwm cp.next_tid
          in
          (match profile with
          | None -> seed ()
          | Some p ->
              Profile.note_checkpoint_seed p ~ops:(List.length cp.committed);
              Profile.time p Profile.Checkpoint_seed seed))
    recs;
  st

let replay ?profile recs =
  let st =
    match profile with
    | None -> scan recs
    | Some p ->
        Profile.note_records_scanned p (List.length recs);
        Profile.time_excluding p Profile.Log_scan ~minus:Profile.Checkpoint_seed
          (fun () -> scan ~profile:p recs)
  in
  let compute_losers () =
    Hashtbl.fold
      (fun tid () acc -> if Hashtbl.mem st.finished tid then acc else Tid.Set.add tid acc)
      st.seen Tid.Set.empty
  in
  let losers =
    match profile with
    | None -> compute_losers ()
    | Some p ->
        (* Redo-only log: "undoing" a loser is resolving that it never
           took effect — nothing to roll back, so this phase is pure
           set computation. *)
        let losers = Profile.time p Profile.Loser_undo compute_losers in
        Profile.note_losers p (Tid.Set.cardinal losers);
        losers
  in
  (List.rev st.committed_rev, losers)

let max_tid recs =
  let st = scan recs in
  if st.hwm = 0 then None else Some (Tid.of_int (st.hwm - 1))

(* ------------------------------------------------------------------ *)
(* Partitioned replay plan.                                            *)

type partition = {
  part_index : int;
  part_objects : (string * Op.t list) list;
  part_ops : int;
  part_losers : Tid.Set.t;
}

type plan = {
  partitions : partition array;
  plan_ops : int;
  plan_records : int;
  plan_from : int;
  plan_to : int;
  plan_next_tid : int;
}

let partition_of_object ~workers name = Hashtbl.hash name mod workers
let partition_of_tid ~workers tid = Tid.to_int tid land max_int mod workers

let plan ?profile ~workers recs =
  if workers < 1 then invalid_arg "Wal.plan: workers must be >= 1";
  (* One bucketing pass: the same fold as [scan], but committed
     operations land directly in per-object buckets (commit order,
     newest first) instead of one global list — killing the
     per-object filter recovery used to run over the whole committed
     list — and the seen/finished tables are sharded by
     [partition_of_tid] so each partition owns its slice of the loser
     set.  [plan_from]/[plan_to] bound the records the plan covers:
     replay semantically starts at the latest checkpoint (its snapshot
     stands for everything before it) and ends at the last record. *)
  let by_obj : (string, Op.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let ops_of : (Tid.t, Op.t list) Hashtbl.t = Hashtbl.create 16 in
  let seen = Array.init workers (fun _ -> Hashtbl.create 16) in
  let finished = Array.init workers (fun _ -> Hashtbl.create 16) in
  let hwm = ref 0 in
  let total_ops = ref 0 in
  let from = ref 1 in
  let n_records = List.length recs in
  let shard tid = partition_of_tid ~workers tid in
  let note tid = hwm := max !hwm (Tid.to_int tid + 1) in
  let bucket (op : Op.t) =
    incr total_ops;
    match Hashtbl.find_opt by_obj op.Op.obj with
    | Some r -> r := op :: !r
    | None -> Hashtbl.add by_obj op.Op.obj (ref [ op ])
  in
  let step pos r =
    match r with
    | Begin tid ->
        note tid;
        Hashtbl.replace seen.(shard tid) tid ()
    | Operation (tid, op) ->
        note tid;
        Hashtbl.replace seen.(shard tid) tid ();
        Hashtbl.replace ops_of tid
          (op :: Option.value (Hashtbl.find_opt ops_of tid) ~default:[])
    | Commit tid ->
        note tid;
        List.iter bucket
          (List.rev (Option.value (Hashtbl.find_opt ops_of tid) ~default:[]));
        Hashtbl.remove ops_of tid;
        Hashtbl.replace finished.(shard tid) tid ()
    | Abort tid ->
        note tid;
        Hashtbl.remove ops_of tid;
        Hashtbl.replace finished.(shard tid) tid ()
    | Truncate_intent _ -> ()
    | Prepare tid ->
        (* Same presumed-abort reading as [scan]: prepared-but-undecided
           is a loser until a resolution record says otherwise. *)
        note tid;
        Hashtbl.replace seen.(shard tid) tid ()
    | Decision { tid; commit = _ } -> note tid
    | Checkpoint cp ->
        let seed () =
          from := pos;
          Hashtbl.reset by_obj;
          total_ops := 0;
          List.iter bucket cp.committed;
          Hashtbl.reset ops_of;
          Array.iter Hashtbl.reset seen;
          Array.iter Hashtbl.reset finished;
          List.iter
            (fun (tid, ops) ->
              note tid;
              Hashtbl.replace seen.(shard tid) tid ();
              if ops <> [] then Hashtbl.replace ops_of tid (List.rev ops))
            cp.live;
          hwm := max !hwm cp.next_tid
        in
        (match profile with
        | None -> seed ()
        | Some p ->
            Profile.note_checkpoint_seed p ~ops:(List.length cp.committed);
            Profile.time p Profile.Checkpoint_seed seed)
  in
  let build_objects () =
    (* Finalise the buckets into partitions.  Hashtbl iteration order is
       unspecified, so each partition's object list is sorted by name:
       the plan is a pure function of the records. *)
    let objs = Array.make workers [] in
    let ops = Array.make workers 0 in
    Hashtbl.iter
      (fun name ops_rev ->
        let p = partition_of_object ~workers name in
        objs.(p) <- (name, List.rev !ops_rev) :: objs.(p);
        ops.(p) <- ops.(p) + List.length !ops_rev)
      by_obj;
    Array.iteri
      (fun p l ->
        objs.(p) <- List.sort (fun (a, _) (b, _) -> compare a b) l)
      objs;
    (objs, ops)
  in
  let fold () =
    List.iteri (fun i r -> step (i + 1) r) recs;
    build_objects ()
  in
  let objs, ops =
    match profile with
    | None -> fold ()
    | Some p ->
        Profile.note_records_scanned p n_records;
        Profile.time_excluding p Profile.Log_scan ~minus:Profile.Checkpoint_seed
          fold
  in
  let compute_losers () =
    Array.init workers (fun p ->
        Hashtbl.fold
          (fun tid () acc ->
            if Hashtbl.mem finished.(p) tid then acc else Tid.Set.add tid acc)
          seen.(p) Tid.Set.empty)
  in
  let losers =
    match profile with
    | None -> compute_losers ()
    | Some p ->
        let losers = Profile.time p Profile.Loser_undo compute_losers in
        Profile.note_losers p
          (Array.fold_left (fun n s -> n + Tid.Set.cardinal s) 0 losers);
        losers
  in
  {
    partitions =
      Array.init workers (fun p ->
          {
            part_index = p;
            part_objects = objs.(p);
            part_ops = ops.(p);
            part_losers = losers.(p);
          });
    plan_ops = !total_ops;
    plan_records = n_records;
    plan_from = !from;
    plan_to = n_records;
    plan_next_tid = !hwm;
  }

let plan_losers plan =
  Array.fold_left
    (fun acc part -> Tid.Set.union acc part.part_losers)
    Tid.Set.empty plan.partitions

(* ------------------------------------------------------------------ *)
(* Binary framing for the on-disk log.                                 *)

module Codec = struct
  let v1 = format_v1
  let v2 = format_v2
  let write_version = write_format_version
  let supported_versions = [ v1; v2 ]
  let is_supported v = List.mem v supported_versions

  (* The frame header is versioned; the payload encoding (record tag +
     body) is byte-identical across versions, so version negotiation is
     purely a header concern and old payload bytes replay bit-for-bit.

       v1: magic0 magic1 0x01 | payload_len LE32 | crc32 LE32 | payload
       v2: magic0 magic1 0x02 | shard LE16 | payload_len LE32 | crc32 LE32 | payload

     v2 adds a 16-bit shard id (written as 0 until the sharded engine
     lands; any value is accepted on decode) and, with the version byte,
     reserves room for record-kind growth: new record tags arrive only
     under v2 frames, so a v1-only binary can never misparse them — it
     reports a typed foreign-version corruption with the exact offset.
     The magic gives the decoder a resynchronization anchor: after a
     corrupt frame it can scan for the next intact one to tell interior
     corruption from a torn tail. *)
  let magic0 = '\xd7'
  let magic1 = 'W'

  let header_size = function
    | 1 -> 11
    | 2 -> 13
    | v -> invalid_arg (Fmt.str "Wal.Codec.header_size: unsupported version %d" v)

  (* The smallest supported header — how many bytes a scanner needs
     before it can even read the version byte and dispatch. *)
  let min_header_size = 11

  (* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). *)
  let crc_table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref (Int32.of_int n) in
           for _ = 0 to 7 do
             c :=
               if Int32.logand !c 1l <> 0l then
                 Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
               else Int32.shift_right_logical !c 1
           done;
           !c))

  let crc32 s =
    let table = Lazy.force crc_table in
    let c = ref 0xFFFFFFFFl in
    String.iter
      (fun ch ->
        c :=
          Int32.logxor
            table.(Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl))
            (Int32.shift_right_logical !c 8))
      s;
    Int32.logxor !c 0xFFFFFFFFl

  (* --- payload writer --- *)

  let put_int b i = Buffer.add_int64_le b (Int64.of_int i)
  let put_string b s = put_int b (String.length s); Buffer.add_string b s
  let put_list put b l = put_int b (List.length l); List.iter (put b) l
  let put_tid b tid = put_int b (Tid.to_int tid)

  let rec put_value b = function
    | Value.Unit -> Buffer.add_char b '\000'
    | Value.Bool false -> Buffer.add_char b '\001'
    | Value.Bool true -> Buffer.add_char b '\002'
    | Value.Int i -> Buffer.add_char b '\003'; put_int b i
    | Value.Str s -> Buffer.add_char b '\004'; put_string b s
    | Value.List l -> Buffer.add_char b '\005'; put_list put_value b l

  let put_op b (op : Op.t) =
    put_string b op.obj;
    put_string b op.inv.Op.name;
    put_list put_value b op.inv.Op.args;
    put_value b op.res

  let put_record b = function
    | Begin tid -> Buffer.add_char b '\000'; put_tid b tid
    | Operation (tid, op) -> Buffer.add_char b '\001'; put_tid b tid; put_op b op
    | Commit tid -> Buffer.add_char b '\002'; put_tid b tid
    | Abort tid -> Buffer.add_char b '\003'; put_tid b tid
    | Checkpoint cp ->
        Buffer.add_char b '\004';
        put_list put_op b cp.committed;
        put_list (fun b (tid, ops) -> put_tid b tid; put_list put_op b ops) b cp.live;
        put_int b cp.next_tid
    | Truncate_intent { old_len; new_len } ->
        Buffer.add_char b '\005';
        put_int b old_len;
        put_int b new_len
    | Prepare tid -> Buffer.add_char b '\006'; put_tid b tid
    | Decision { tid; commit } ->
        Buffer.add_char b '\007';
        put_tid b tid;
        Buffer.add_char b (if commit then '\001' else '\000')

  (* Record kinds that postdate the v1 header: they may only travel
     under v2 frames, so a v1-only binary refuses them as a typed
     foreign-version corruption instead of misparsing the payload. *)
  let v2_only_record = function
    | Prepare _ | Decision _ -> true
    | Begin _ | Operation _ | Commit _ | Abort _ | Checkpoint _
    | Truncate_intent _ ->
        false

  let encode ?(version = write_version) ?(shard = 0) r =
    if not (is_supported version) then
      invalid_arg (Fmt.str "Wal.Codec.encode: unsupported version %d" version);
    if version = v1 && v2_only_record r then
      invalid_arg
        (Fmt.str "Wal.Codec.encode: %s records require v2 frames"
           (record_kind r));
    if version = v1 && shard <> 0 then
      invalid_arg "Wal.Codec.encode: v1 frames carry no shard id";
    if shard < 0 || shard > 0xFFFF then
      invalid_arg (Fmt.str "Wal.Codec.encode: shard %d out of range" shard);
    let payload = Buffer.create 64 in
    put_record payload r;
    let payload = Buffer.contents payload in
    let b = Buffer.create (header_size version + String.length payload) in
    Buffer.add_char b magic0;
    Buffer.add_char b magic1;
    Buffer.add_char b (Char.chr version);
    if version = v2 then Buffer.add_uint16_le b shard;
    Buffer.add_int32_le b (Int32.of_int (String.length payload));
    Buffer.add_int32_le b (crc32 payload);
    Buffer.add_string b payload;
    Buffer.contents b

  let encode_all ?version ?shard recs =
    String.concat "" (List.map (fun r -> encode ?version ?shard r) recs)

  (* --- payload reader --- *)

  exception Bad of string

  type reader = { src : string; mutable pos : int; stop : int }

  let need r n = if r.stop - r.pos < n then raise (Bad "truncated payload")

  let get_byte r = need r 1; let c = r.src.[r.pos] in r.pos <- r.pos + 1; Char.code c

  let get_int r =
    need r 8;
    let v = Int64.to_int (String.get_int64_le r.src r.pos) in
    r.pos <- r.pos + 8;
    v

  let get_len r =
    let n = get_int r in
    if n < 0 || n > r.stop - r.pos then raise (Bad "implausible length") else n

  let get_string r = let n = get_len r in
    let s = String.sub r.src r.pos n in r.pos <- r.pos + n; s

  let get_list get r = List.init (get_len r) (fun _ -> get r)
  let get_tid r = Tid.of_int (get_int r)

  let rec get_value r =
    match get_byte r with
    | 0 -> Value.Unit
    | 1 -> Value.Bool false
    | 2 -> Value.Bool true
    | 3 -> Value.Int (get_int r)
    | 4 -> Value.Str (get_string r)
    | 5 -> Value.List (get_list get_value r)
    | n -> raise (Bad (Fmt.str "bad value tag %d" n))

  let get_op r =
    let obj = get_string r in
    let name = get_string r in
    let args = get_list get_value r in
    let res = get_value r in
    { Op.obj; inv = { Op.name; args }; res }

  let get_record r =
    match get_byte r with
    | 0 -> Begin (get_tid r)
    | 1 -> let tid = get_tid r in Operation (tid, get_op r)
    | 2 -> Commit (get_tid r)
    | 3 -> Abort (get_tid r)
    | 4 ->
        let committed = get_list get_op r in
        let live = get_list (fun r -> let tid = get_tid r in (tid, get_list get_op r)) r in
        let next_tid = get_int r in
        Checkpoint { committed; live; next_tid }
    | 5 ->
        let old_len = get_int r in
        let new_len = get_int r in
        if old_len < 0 || new_len < 0 then
          raise (Bad "negative truncate-intent length");
        Truncate_intent { old_len; new_len }
    | 6 -> Prepare (get_tid r)
    | 7 ->
        let tid = get_tid r in
        (match get_byte r with
        | 0 -> Decision { tid; commit = false }
        | 1 -> Decision { tid; commit = true }
        | n -> raise (Bad (Fmt.str "bad decision flag %d" n)))
    | n -> raise (Bad (Fmt.str "bad record tag %d" n))

  type corruption = {
    offset : int;
    version : int option;
    reason : string;
  }

  let pp_corruption ppf c =
    match c.version with
    | None -> Fmt.pf ppf "byte %d: %s" c.offset c.reason
    | Some v -> Fmt.pf ppf "byte %d (v%d frame): %s" c.offset v c.reason

  type header = {
    h_version : int;
    h_shard : int;  (* 0 for v1 frames *)
    h_payload_len : int;
    h_size : int;  (* header bytes before the payload *)
  }

  (* Parse and validate one frame header at [pos] — the single
     version-negotiation point every reader (decode, resync scan,
     parallel extent walk, journal search, forensics) dispatches
     through.  No CRC is paid.  The corruption carries the frame's
     version byte whenever it was readable — including a foreign
     version, so a reader can report exactly which format it refused
     and where. *)
  let read_header s pos =
    let len = String.length s in
    let bad ?version reason = Error { offset = pos; version; reason } in
    if len - pos < 3 then bad "truncated header"
    else if s.[pos] <> magic0 || s.[pos + 1] <> magic1 then bad "bad magic"
    else
      let v = Char.code s.[pos + 2] in
      if not (is_supported v) then
        bad ~version:v (Fmt.str "unsupported format version %d" v)
      else
        let h_size = header_size v in
        if len - pos < h_size then bad ~version:v "truncated header"
        else
          let h_shard =
            if v = v1 then 0 else String.get_uint16_le s (pos + 3)
          in
          let len_off = if v = v1 then pos + 3 else pos + 5 in
          let payload_len = Int32.to_int (String.get_int32_le s len_off) in
          if payload_len < 0 || payload_len > len - pos - h_size then
            bad ~version:v "truncated payload"
          else Ok { h_version = v; h_shard; h_payload_len = payload_len; h_size }

  (* Decode the frame starting at [pos]; [Ok (record, next_pos)] or the
     reason it is unreadable.  With a profile, CRC verification is
     charged to its own phase (the rest of the frame work is the
     caller's to account). *)
  let decode_frame ?profile s pos =
    match read_header s pos with
    | Error c -> Error c
    | Ok h -> (
        try
          let expected = String.get_int32_le s (pos + h.h_size - 4) in
          let payload = String.sub s (pos + h.h_size) h.h_payload_len in
          let actual =
            match profile with
            | None -> crc32 payload
            | Some p ->
                Profile.time p Profile.Checksum_verify (fun () -> crc32 payload)
          in
          if actual <> expected then raise (Bad "crc mismatch");
          let r = { src = payload; pos = 0; stop = h.h_payload_len } in
          let record = get_record r in
          if r.pos <> r.stop then raise (Bad "trailing bytes in payload");
          Ok (record, pos + h.h_size + h.h_payload_len)
        with Bad reason ->
          Error { offset = pos; version = Some h.h_version; reason })

  (* Is there an intact frame anywhere at or after [pos]?  Used to
     classify a decode failure: damage followed by provably-written data
     is interior corruption; damage extending to the end of the log is a
     torn tail.

     The resync cursor anchors on the magic bytes ([String.index_from]
     skips damage at memchr speed) and rejects implausible headers
     before paying for a CRC, so a heavily damaged log costs one cheap
     header check per 0xd7 byte rather than a full decode per byte
     offset.  [budget] caps the payload bytes spent on CRC probes of
     plausible-looking candidates (adversarially structured damage can
     synthesise many): an exhausted budget returns [true] — the
     conservative verdict, interior corruption — so a refusal can never
     degrade into silently dropping records as a torn tail. *)
  let default_probe_budget = 1 lsl 24

  let valid_frame_after ?(budget = default_probe_budget) s pos =
    let len = String.length s in
    let budget = ref budget in
    let rec resync pos =
      if pos + min_header_size > len then false
      else
        match String.index_from_opt s pos magic0 with
        | None -> false
        | Some p ->
            if p + min_header_size > len then false
            else (
              match read_header s p with
              | Error _ -> resync (p + 1)
              | Ok h ->
                  if !budget <= 0 then true
                  else begin
                    budget := !budget - h.h_size - h.h_payload_len;
                    match decode_frame s p with
                    | Ok _ -> true
                    | Error _ -> resync (p + 1)
                  end)
    in
    resync pos

  type decoded = {
    records : record list;
    clean_bytes : int;  (** length of the intact prefix *)
    torn : corruption option;
        (** a trailing torn/corrupt frame that was dropped as crash loss *)
  }

  (* The serial decode loop (also the fallback for the parallel path). *)
  let decode_serial ?profile s =
    let len = String.length s in
    let rec go acc pos =
      if pos = len then Ok { records = List.rev acc; clean_bytes = pos; torn = None }
      else
        match decode_frame ?profile s pos with
        | Ok (r, next) ->
            (match profile with None -> () | Some p -> Profile.note_frame p);
            go (r :: acc) next
        | Error c ->
            (* Tail or interior?  A later intact frame proves bytes past
               the damage were durably written, so the damage cannot be
               an interrupted final append. *)
            if valid_frame_after s (pos + 1) then Error c
            else Ok { records = List.rev acc; clean_bytes = pos; torn = Some c }
    in
    go [] 0

  (* A cheap header-only walk: the byte offset of every frame, provided
     the walk covers the image exactly (no gap, no trailing bytes) with
     plausible headers throughout.  No CRC is paid; any anomaly returns
     [None] and the caller falls back to the serial decoder, which is
     the sole authority on torn tails and interior corruption. *)
  let frame_extents s =
    let len = String.length s in
    let rec go acc pos =
      if pos = len then Some (List.rev acc)
      else
        match read_header s pos with
        | Error _ -> None
        | Ok h -> go (pos :: acc) (pos + h.h_size + h.h_payload_len)
    in
    go [] 0

  (* Below this many frames the domain spawn/join overhead dwarfs the
     CRC work; the threshold is fixed so a given image always takes the
     same path. *)
  let parallel_decode_min_frames = 256

  let decode_parallel ~workers s =
    match frame_extents s with
    | None -> None
    | Some extents ->
        let n = List.length extents in
        if n < parallel_decode_min_frames then None
        else begin
          let offsets = Array.of_list extents in
          let nw = min workers n in
          let chunk = (n + nw - 1) / nw in
          let results = Array.make n None in
          let run w () =
            (* Each worker owns a disjoint slice of [results]. *)
            let lo = w * chunk and hi = min n ((w + 1) * chunk) in
            for i = lo to hi - 1 do
              match decode_frame s offsets.(i) with
              | Ok (r, _) -> results.(i) <- Some r
              | Error _ -> ()
            done
          in
          let domains =
            Array.init nw (fun w -> Domain.spawn (run w))
          in
          Array.iter Domain.join domains;
          if Array.for_all Option.is_some results then
            Some
              {
                records =
                  Array.to_list (Array.map Option.get results);
                clean_bytes = String.length s;
                torn = None;
              }
          else None
        end

  let decode_all ?profile ?(workers = 1) s =
    let len = String.length s in
    let decode () =
      if workers <= 1 then decode_serial ?profile s
      else
        (* The parallel path only accepts a fully intact image (every
           frame verified by some worker); anything less — a torn tail,
           a corrupt frame, an implausible header — falls back to the
           serial decoder so the torn/interior verdicts are produced by
           exactly the same code as the serial path. *)
        match decode_parallel ~workers s with
        | Some decoded ->
            (match profile with
            | None -> ()
            | Some p -> Profile.note_frames p (List.length decoded.records));
            Ok decoded
        | None -> decode_serial ?profile s
    in
    match profile with
    | None -> decode ()
    | Some p ->
        (* In the parallel case the CRC work happens inside worker
           domains (the profile is not shared across domains), so the
           whole barrier is charged to [Frame_decode] and
           [Checksum_verify] stays at zero — the phases still tile. *)
        let result =
          Profile.time_excluding p Profile.Frame_decode
            ~minus:Profile.Checksum_verify decode
        in
        (match result with
        | Ok { clean_bytes; _ } -> Profile.note_torn_bytes p (len - clean_bytes)
        | Error _ -> ());
        result
end

let fuzzy_checkpoint ?(next_tid = 0) recs =
  let st = scan recs in
  let live =
    Hashtbl.fold
      (fun tid () acc ->
        if Hashtbl.mem st.finished tid then acc
        else
          (tid, List.rev (Option.value (Hashtbl.find_opt st.ops_of tid) ~default:[]))
          :: acc)
      st.seen []
    |> List.sort (fun (a, _) (b, _) -> Tid.compare a b)
  in
  { committed = List.rev st.committed_rev; live; next_tid = max next_tid st.hwm }
