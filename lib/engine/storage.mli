(** Pluggable byte storage for the on-disk write-ahead log.

    {!Wal} up to PR 2 modelled stable storage in-memory with an append
    that is atomic and incorruptible.  Real logs live on real devices
    that tear writes, rot bits, return short reads and fail transiently;
    this module is the seam where those behaviours enter the system.  A
    backend is a flat byte store with WAL-shaped positional writes:
    {!write_at} replaces everything from a position onward, which is how
    {!Disk_wal} retries a torn append — rewriting from the last
    known-good offset instead of appending garbage after a torn prefix.

    Three backends: {!memory} (tests, sweeps), {!file} (a real
    fsync-able file via [Unix]), and {!faulty}, a wrapper that deals
    storage faults from a seeded RNG so every failure mode is
    reproducible. *)

(** A retryable I/O failure.  A torn write may have persisted a prefix
    of the data before raising; the caller must re-issue the {e whole}
    write at the {e same} position (which overwrites the torn prefix),
    not append. *)
exception Transient of string

type t

val name : t -> string

(** [write_at t ~pos data] — the contents become the old contents up to
    [pos] followed by [data]; anything previously beyond [pos + length
    data] is discarded (WAL semantics: writes happen only at or before
    the logical end, never leaving stale bytes after the tail).  Raises
    [Invalid_argument] if [pos] exceeds the current size, {!Transient}
    on a retryable fault. *)
val write_at : t -> pos:int -> string -> unit

(** Barrier: data from every completed {!write_at} is durable when
    [force] returns.  Raises {!Transient} on a retryable fault. *)
val force : t -> unit

(** The full contents.  Under {!faulty} the result may be corrupted
    (flipped bit) or short — decoding, not this module, is responsible
    for detecting that. *)
val read_all : t -> string

val size : t -> int
val close : t -> unit

(** In-memory backend (volatile; for tests and corruption sweeps). *)
val memory : ?name:string -> unit -> t

(** In-memory backend pre-seeded with [contents]. *)
val of_string : ?name:string -> string -> t

(** File backend: [write_at] is pwrite + ftruncate, [force] is fsync.
    The file is created if missing.  [EINTR]/[EAGAIN] surface as
    {!Transient}; other I/O errors propagate as [Unix.Unix_error]. *)
val file : string -> t

(** {1 Simulated device latency} *)

(** [slow ?write_delay ?force_delay inner] sleeps before delegating each
    {!write_at} (default 0) and {!force} (default 1ms) — a stand-in for
    a device whose barrier dominates, so group-commit batching actually
    forms in benchmarks and threaded tests over {!memory}. *)
val slow : ?write_delay:float -> ?force_delay:float -> t -> t

(** {1 Observation hooks} *)

(** [probe ?on_write ?on_force inner] — a transparent wrapper that calls
    [on_write ~pos len] before each {!write_at} and [on_force] before
    each {!force}, then delegates.  For tests that assert the {e order}
    of writes and barriers (e.g. that {!Disk_wal.create} forces the
    truncation of a stale log before anything else relies on it). *)
val probe :
  ?on_write:(pos:int -> int -> unit) -> ?on_force:(unit -> unit) -> t -> t

(** {1 Fault injection} *)

(** Per-call fault probabilities, all in [0,1].  Write-side faults are
    retryable ({!Transient}); read-side faults are {e silent} — they
    return damaged data and let recovery find out. *)
type fault_config = {
  torn_write : float;
      (** a strict prefix of the data is persisted, then {!Transient} *)
  write_error : float;  (** nothing persisted, {!Transient} *)
  force_error : float;  (** barrier fails with {!Transient} *)
  bit_flip : float;  (** {!read_all} returns data with one flipped bit *)
  short_read : float;  (** {!read_all} returns a strict prefix *)
}

val no_faults : fault_config

(** Moderate write-side faults only (torn writes + transient errors);
    reads are clean.  The configuration used by [crashtest --fault]. *)
val write_faults : fault_config

(** [faulty ~seed cfg inner] wraps [inner] with seeded fault injection.
    Each injected fault is counted as
    [tm_storage_faults_total{backend,kind}] once {!attach_metrics} has
    been called (kinds: [torn_write], [write_error], [force_error],
    [bit_flip], [short_read]). *)
val faulty : seed:int -> fault_config -> t -> t

(** Total faults injected so far (0 for non-faulty backends). *)
val fault_count : t -> int

val attach_metrics : t -> Tm_obs.Metrics.t -> unit
