(** The WAL wire-format contract: fixture records covering every record
    kind, the golden frame set derived from them, and the generated
    docs/WAL_FORMAT.md spec.

    The fixtures are {e frozen}: [test/golden/] pins their exact frame
    bytes per format version, and the test suite fails on any byte
    drift, so a codec change that alters the wire format is loud.
    [bin/walformatdoc.exe] renders {!to_markdown} (drift-checked in CI)
    and rewrites the golden files ([make golden]). *)

(** Supported format versions, ascending (= {!Wal.Codec.supported_versions}). *)
val versions : int list

(** One named fixture per record kind (plus a rich-value operation and
    both decision outcomes); deterministic and frozen. *)
val fixtures : (string * Wal.record) list

(** [fixture_supported ~version r] — can [r] be encoded at [version]?
    False exactly for v2-only record kinds under v1 (see
    {!Wal.Codec.v2_only_record}). *)
val fixture_supported : version:int -> Wal.record -> bool

(** [golden_file ~version name] — the golden file name for a fixture,
    e.g. ["v2_checkpoint.bin"]. *)
val golden_file : version:int -> string -> string

(** [golden_frames ~version] — (file name, exact frame bytes) for every
    fixture encodable at [version] (v2-only kinds are absent from the
    v1 set). *)
val golden_frames : version:int -> (string * string) list

(** The generated docs/WAL_FORMAT.md: frame layouts, record and value
    tags, version-negotiation rules, and the golden-frame table (sizes
    and CRCs double as a drift tripwire for the document). *)
val to_markdown : unit -> string
