(** A thread-safe blocking front end for the transactional engine.

    {!Database} and the simulation scheduler are deterministic and
    single-threaded (for reproducible measurements); this module is the
    interface a real application uses: operations issued from OS threads
    {e block} — on the calling thread, under a monitor — until the
    conflict-based locking admits them, deadlocks are detected and broken
    by aborting the youngest transaction in the cycle, and aborted
    transactions are retried transparently by {!with_txn}.

    {[
      let account = Atomic_object.create ~spec ~conflict ~recovery () in
      let db = Concurrent.create [ account ] in
      match
        Concurrent.with_txn db (fun h ->
            let _ = Concurrent.invoke h ~obj:"BA"
                      (Op.invocation ~args:[ Value.int 5 ] "deposit") in
            Concurrent.invoke h ~obj:"BA" (Op.invocation "balance"))
      with
      | Ok balance -> ...
      | Error (`Gave_up attempts) -> ...
    ]} *)

open Tm_core

type t

val create : ?record_history:bool -> Atomic_object.t list -> t

(** [create_durable ?record_history ~wal objs] — the same front end over
    a {!Durable_database}: operations, commits and aborts reach [wal],
    and commit follows the staged pipeline — validate / append / apply
    under the monitor, then park on the flushed-LSN watermark {e
    outside} it, so invokers and deadlock detection proceed while a
    group-commit batch fsyncs ({!Durable_database.try_commit_nowait} /
    {!Durable_database.wait_durable}).  [with_txn] acknowledges [Ok]
    only after the transaction's commit record is durable. *)
val create_durable : ?record_history:bool -> wal:Wal.t -> Atomic_object.t list -> t

(** A handle on a running transaction; only valid within the callback of
    {!with_txn} and on the thread that owns it. *)
type handle

val tid : handle -> Tid.t

exception Aborted
(** Raised inside the callback when this transaction was chosen as a
    deadlock victim (or failed optimistic validation at commit).
    {!with_txn} catches it and retries; re-raise it if caught. *)

(** [invoke h ~obj inv] executes the invocation, blocking while it
    conflicts with other active transactions or (for a partial operation)
    while it has no legal response.  Raises {!Aborted} if the transaction
    is selected as a deadlock victim while waiting or doomed by another
    thread's detection. *)
val invoke : ?choose:(Value.t list -> Value.t) -> handle -> obj:string ->
  Op.invocation -> Value.t

(** [with_txn db f] begins a transaction, runs [f], and commits (with
    optimistic validation where applicable).  On {!Aborted} the
    transaction is rolled back and [f] retried from scratch, for at most
    [max_attempts] attempts in total (default 50).  Before each retry the
    [backoff] hook is called — outside the monitor — with the number of
    the attempt that just failed (1-based); the default is no delay, since
    the monitor wakes waiters on every completion.  When the attempt
    budget is exhausted the transaction {e gives up}: the result is
    [Error (`Gave_up attempts)] and [tm_txn_gave_up_total] is bumped. *)
val with_txn :
  ?max_attempts:int -> ?backoff:(int -> unit) -> t -> (handle -> 'a) ->
  ('a, [ `Gave_up of int ]) result

(** [default_backoff ?base ?cap ()] builds a backoff hook for
    {!with_txn}: capped exponential (starting at [base] seconds,
    doubling per attempt, clamped to [cap]) with {e deterministic}
    jitter derived from the attempt number alone — threads that abort
    in lockstep spread out, yet a run's delays are reproducible.
    Defaults: [base = 0.0002], [cap = 0.02]. *)
val default_backoff : ?base:float -> ?cap:float -> unit -> int -> unit

(** Run statistics. *)

val committed_count : t -> int
val aborted_count : t -> int

(** Transactions aborted as deadlock victims (read from the
    [tm_deadlock_victims_total] registry counter; previously this was
    swallowed by the transparent-retry machinery). *)
val deadlock_victim_count : t -> int

(** Transparent {!with_txn} retries: deadlock-victim restarts plus
    optimistic validation failures ([tm_txn_retries_total]). *)
val retry_count : t -> int

(** Transactions that exhausted their attempt budget
    ([tm_txn_gave_up_total]). *)
val gave_up_count : t -> int

(** Broadcast wake-ups after which the woken waiter was still blocked
    (or still had no legal response) and re-blocked without progress
    ([tm_futile_wakeups_total]) — the price of the monitor's broadcast
    discipline. *)
val futile_wakeup_count : t -> int

(** The recorded global history (empty unless [record_history]). *)
val history : t -> History.t

val database : t -> Database.t

(** The durable backend, when built by {!create_durable}. *)
val durable_database : t -> Durable_database.t option
