open Tm_core

type violation = {
  cut : int;
  invariant : string;
  detail : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "cut %d [%s]: %s" v.cut v.invariant v.detail

type report = {
  cuts : int;
  atomicity_checked : int;
  violations : violation list;
}

let ok r = r.violations = []

let pp_report ppf r =
  if ok r then
    Fmt.pf ppf "%d crash points, 0 violations (%d atomicity-checked)" r.cuts
      r.atomicity_checked
  else
    Fmt.pf ppf "%d crash points, %d VIOLATIONS (%d atomicity-checked)@,%a" r.cuts
      (List.length r.violations) r.atomicity_checked
      (Fmt.list ~sep:Fmt.cut pp_violation)
      r.violations

(* ------------------------------------------------------------------ *)
(* Log → history: the history "as replayed" after a crash.             *)

(* Reconstruct the post-crash history a recovered prefix stands for:
   committed transactions' operations in log (execution) order with their
   commit events in commit-record order, and every unfinished transaction
   — a crash loser — explicitly aborted (recovery implicitly aborts it).
   The latest checkpoint's committed base is installed as one synthetic
   committed transaction at the head (it is the initial state of the
   post-checkpoint world); its live snapshot seeds the in-flight
   transactions.  The result feeds the paper's dynamic-atomicity checker:
   the logged interleaving of transactions must serialize in every order
   consistent with commit precedence. *)
let history_of_records recs =
  let fresh_tid =
    match Wal.max_tid recs with Some m -> Tid.to_int m + 1 | None -> 0
  in
  (* Split at the latest checkpoint; the scan restarts there. *)
  let base_cp, tail =
    let rec latest acc pending = function
      | [] -> (acc, List.rev pending)
      | Wal.Checkpoint cp :: rest -> latest (Some cp) [] rest
      | r :: rest -> latest acc (r :: pending) rest
    in
    latest None [] recs
  in
  let h = ref History.empty in
  let touched : (Tid.t, string list) Hashtbl.t = Hashtbl.create 16 in
  let finished : (Tid.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let touch tid (op : Op.t) =
    let objs = Option.value (Hashtbl.find_opt touched tid) ~default:[] in
    if not (List.mem op.Op.obj objs) then Hashtbl.replace touched tid (op.Op.obj :: objs)
  in
  let exec tid op =
    touch tid op;
    h := History.exec tid op !h
  in
  let complete at tid =
    List.iter
      (fun obj -> h := at tid obj !h)
      (List.rev (Option.value (Hashtbl.find_opt touched tid) ~default:[]));
    Hashtbl.replace finished tid ()
  in
  (match base_cp with
  | None -> ()
  | Some cp ->
      let base = Tid.of_int fresh_tid in
      List.iter (exec base) cp.Wal.committed;
      if cp.Wal.committed <> [] then complete History.commit_at base;
      List.iter (fun (tid, ops) -> List.iter (exec tid) ops) cp.Wal.live);
  List.iter
    (fun r ->
      match r with
      | Wal.Begin _ | Wal.Checkpoint _ | Wal.Truncate_intent _
      | Wal.Prepare _ | Wal.Decision _ ->
          (* Prepare/Decision are 2PC coordination records: they change
             no object state and carry no operations, so the replayed
             history sees through them (the transaction's outcome is its
             local Commit/Abort record, appended by the protocol or by
             recovery's in-doubt resolution). *)
          ()
      | Wal.Operation (tid, op) -> exec tid op
      | Wal.Commit tid -> complete History.commit_at tid
      | Wal.Abort tid -> complete History.abort_at tid)
    tail;
  (* Crash losers: recovery implicitly aborts every unfinished txn. *)
  Hashtbl.iter
    (fun tid _ -> if not (Hashtbl.mem finished tid) then complete History.abort_at tid)
    (Hashtbl.copy touched);
  !h

(* ------------------------------------------------------------------ *)
(* The torture loop.                                                   *)

(* The exact checker enumerates serialization orders, so it only runs on
   histories with at most this many transactions (crashtest workloads are
   sized to stay under it). *)
let default_max_atomicity_txns = 8

let is_prefix ~equal xs ys =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> equal x y && go (xs, ys)
  in
  go (xs, ys)

let pp_ops = Fmt.(list ~sep:(any "; ") Op.pp)

let committed_by_object db =
  List.map
    (fun o -> (Atomic_object.name o, Atomic_object.committed_ops o))
    (Database.objects (Durable_database.database db))

(* One crash point: recover [log] (a private copy — the idempotence leg
   mutates it) and check all invariants.  [prev_committed] threads the
   prefix-stability state between successive cuts of one torture run. *)
let check_cut ?workers ~env ~max_atomicity_txns ~atomicity_checked ~prev_committed
    ~rebuild ~cut log =
  let recs = Wal.records log in
  let bad invariant detail = Some { cut; invariant; detail } in
  match Durable_database.recover ?workers ~wal:log ~rebuild () with
  | exception exn ->
      [
        {
          cut;
          invariant = "replay-legality";
          detail = Fmt.str "recovery raised %s" (Printexc.to_string exn);
        };
      ]
  | Error e ->
      [
        {
          cut;
          invariant = "replay-legality";
          detail = Fmt.str "recovery failed: %a" Recovery.pp_error e;
        };
      ]
  | Ok (db, losers) ->
      let committed, _ = Wal.replay recs in
      (* Invariant 1a: every object's restored sequence is legal. *)
      let legality =
          List.filter_map
            (fun (name, ops) ->
              let o = Database.find_object (Durable_database.database db) name in
              if Spec.legal (Atomic_object.spec o) ops then None
              else bad "replay-legality" (Fmt.str "%s replays illegally: [%a]" name pp_ops ops))
            (committed_by_object db)
        in
        (* Invariant 1b: the replayed history is dynamically atomic. *)
        let atomicity =
          let h = history_of_records recs in
          if not (History.is_well_formed h) then
            Option.to_list (bad "dynamic-atomicity" "replayed history not well-formed")
          else if Tid.Set.cardinal (History.transactions h) > max_atomicity_txns then []
          else begin
            incr atomicity_checked;
            match Atomicity.dynamic_atomic env h with
            | Atomicity.Ok -> []
            | Atomicity.Counterexample order ->
                Option.to_list
                  (bad "dynamic-atomicity"
                     (Fmt.str "not serializable in %a"
                        Fmt.(list ~sep:(any "-") Tid.pp)
                        order))
          end
        in
        (* Invariant 2: committed work is prefix-stable across crash points —
           one more surviving record can only extend it (this is also what
           makes a checkpoint record a faithful snapshot of its prefix). *)
        let stability =
          if is_prefix ~equal:Op.equal !prev_committed committed then begin
            prev_committed := committed;
            []
          end
          else
            Option.to_list
              (bad "prefix-stability"
                 (Fmt.str "committed [%a] does not extend previous cut's [%a]" pp_ops
                    committed pp_ops !prev_committed))
        in
        (* Invariant 3: a second crash-recover is idempotent, through a
           post-recovery fuzzy checkpoint and log truncation. *)
        let idempotence =
          Durable_database.checkpoint db;
          ignore (Wal.truncate_to_checkpoint log);
          match Durable_database.recover ?workers ~wal:log ~rebuild () with
          | exception exn ->
              Option.to_list
                (bad "idempotence"
                   (Fmt.str "second recovery raised %s" (Printexc.to_string exn)))
          | Error e ->
              Option.to_list
                (bad "idempotence"
                   (Fmt.str "second recovery failed: %a" Recovery.pp_error e))
          | Ok (db2, losers2) ->
              let diffs =
                List.filter_map
                  (fun ((name, ops1), (_, ops2)) ->
                    if List.equal Op.equal ops1 ops2 then None
                    else
                      bad "idempotence"
                        (Fmt.str "%s: [%a] after first recovery, [%a] after second" name
                           pp_ops ops1 pp_ops ops2))
                  (List.combine (committed_by_object db) (committed_by_object db2))
              in
              if Tid.Set.equal losers losers2 then diffs
              else
                diffs
                @ Option.to_list
                    (bad "idempotence"
                       (Fmt.str "losers {%a} became {%a}"
                          Fmt.(list ~sep:comma Tid.pp)
                          (Tid.Set.elements losers)
                          Fmt.(list ~sep:comma Tid.pp)
                          (Tid.Set.elements losers2)))
        in
        legality @ atomicity @ stability @ idempotence

let torture ?(max_atomicity_txns = default_max_atomicity_txns) ?workers ~rebuild
    wal =
  let env = Atomicity.env_of_list (List.map Atomic_object.spec (rebuild ())) in
  let atomicity_checked = ref 0 in
  let prev_committed = ref [] in
  let check cut =
    check_cut ?workers ~env ~max_atomicity_txns ~atomicity_checked ~prev_committed
      ~rebuild ~cut (Wal.prefix wal cut)
  in
  let cuts = Wal.length wal + 1 in
  let violations = List.concat_map check (List.init cuts Fun.id) in
  { cuts; atomicity_checked = !atomicity_checked; violations }

(* ------------------------------------------------------------------ *)
(* Byte-granularity torture and corruption sweeps over the encoded log. *)

let torture_bytes ?(max_atomicity_txns = default_max_atomicity_txns) ?workers
    ~rebuild wal =
  let env = Atomicity.env_of_list (List.map Atomic_object.spec (rebuild ())) in
  let atomicity_checked = ref 0 in
  let prev_committed = ref [] in
  let bytes = Wal.Codec.encode_all (Wal.records wal) in
  let len = String.length bytes in
  (* Only cuts that change the decoded record list need the full invariant
     battery; intermediate byte positions inside a frame decode to the same
     records (the torn frame is dropped) and would re-check identical state. *)
  let prev_count = ref (-1) in
  let check cut =
    match Wal.Codec.decode_all (String.sub bytes 0 cut) with
    | Error c ->
        (* A pure prefix of a well-formed log can only tear the tail —
           there is no later intact frame to resynchronise on — so an
           interior-corruption verdict here is itself a bug. *)
        [
          {
            cut;
            invariant = "torn-tail";
            detail =
              Fmt.str "prefix cut misclassified as interior corruption: %a"
                Wal.Codec.pp_corruption c;
          };
        ]
    | Ok decoded ->
        let n = List.length decoded.Wal.Codec.records in
        if n = !prev_count then []
        else begin
          prev_count := n;
          check_cut ?workers ~env ~max_atomicity_txns ~atomicity_checked
            ~prev_committed ~rebuild ~cut
            (Wal.of_records decoded.Wal.Codec.records)
        end
  in
  let cuts = len + 1 in
  let violations = List.concat_map check (List.init cuts Fun.id) in
  { cuts; atomicity_checked = !atomicity_checked; violations }

(* ------------------------------------------------------------------ *)
(* Batch-prefix torture: crash cuts inside a group commit.             *)

type batch_report = {
  byte_cuts : int;
  frontiers : int;
  acked_max : int;
  batch_violations : violation list;
}

let batch_ok r = r.batch_violations = []

let pp_batch_report ppf r =
  if batch_ok r then
    Fmt.pf ppf "%d byte cuts over %d ack frontiers (%d commits acked), 0 violations"
      r.byte_cuts r.frontiers r.acked_max
  else
    Fmt.pf ppf "%d byte cuts over %d ack frontiers, %d VIOLATIONS@,%a" r.byte_cuts
      r.frontiers
      (List.length r.batch_violations)
      (Fmt.list ~sep:Fmt.cut pp_violation)
      r.batch_violations

let commit_tids recs =
  List.filter_map (function Wal.Commit tid -> Some tid | _ -> None) recs

(* The log was driven with a durability barrier after every
   [group_every]-th commit (plus a final one), so commits are
   acknowledged in batches: at the byte offset of each barrier, every
   commit record before it is acked.  Cut the encoded log at every byte
   and check the two group-commit guarantees: (1) the recovered commit
   order is a {e prefix} of the full commit order — a crash inside a
   batch admits some leading part of it, never a subset with holes —
   and (2) at least the commits acked at the last barrier at or before
   the cut survive: once the watermark passed a commit's LSN and the
   client was told [Ok], no crash may lose it. *)
let torture_batched ~group_every wal =
  if group_every < 1 then invalid_arg "Crash.torture_batched: group_every < 1";
  let recs = Wal.records wal in
  let frontiers_rev = ref [] in
  let off = ref 0 in
  let commits = ref 0 in
  List.iter
    (fun r ->
      off := !off + String.length (Wal.Codec.encode r);
      match r with
      | Wal.Commit _ ->
          incr commits;
          if !commits mod group_every = 0 then
            frontiers_rev := (!off, !commits) :: !frontiers_rev
      | _ -> ())
    recs;
  (* The run's final flush acks everything appended. *)
  (match !frontiers_rev with
  | (o, n) :: _ when o = !off && n = !commits -> ()
  | _ -> frontiers_rev := (!off, !commits) :: !frontiers_rev);
  let frontiers = List.rev !frontiers_rev in
  let acked_at cut =
    List.fold_left (fun acc (b, n) -> if b <= cut then max acc n else acc) 0 frontiers
  in
  let all_commits = commit_tids recs in
  let bytes = Wal.Codec.encode_all recs in
  let len = String.length bytes in
  let prev = ref (-1, -1) in
  let check cut =
    let acked = acked_at cut in
    match Wal.Codec.decode_all (String.sub bytes 0 cut) with
    | Error c ->
        [
          {
            cut;
            invariant = "torn-tail";
            detail =
              Fmt.str "prefix cut misclassified as interior corruption: %a"
                Wal.Codec.pp_corruption c;
          };
        ]
    | Ok decoded ->
        let n = List.length decoded.Wal.Codec.records in
        if (n, acked) = !prev then []
        else begin
          prev := (n, acked);
          let recovered = commit_tids decoded.Wal.Codec.records in
          let prefix_bad =
            if is_prefix ~equal:Tid.equal recovered all_commits then []
            else
              [
                {
                  cut;
                  invariant = "batch-prefix";
                  detail =
                    Fmt.str
                      "recovered commit order [%a] is not a prefix of [%a]"
                      Fmt.(list ~sep:comma Tid.pp)
                      recovered
                      Fmt.(list ~sep:comma Tid.pp)
                      all_commits;
                };
              ]
          in
          let acked_bad =
            if List.length recovered >= acked then []
            else
              [
                {
                  cut;
                  invariant = "acked-durability";
                  detail =
                    Fmt.str
                      "cut at byte %d recovers %d commits but %d were \
                       acknowledged at the last flush frontier"
                      cut (List.length recovered) acked;
                };
              ]
          in
          prefix_bad @ acked_bad
        end
  in
  let batch_violations = List.concat_map check (List.init (len + 1) Fun.id) in
  {
    byte_cuts = len + 1;
    frontiers = List.length frontiers;
    acked_max = !commits;
    batch_violations;
  }

type sweep_report = {
  flips : int;  (** single-bit corruptions injected *)
  interior_detected : int;  (** flips reported as interior [Corrupt_log] *)
  tail_losses : int;  (** flips absorbed as a torn tail (records lost) *)
  harmless : int;  (** flips that left the decoded records identical *)
  sweep_violations : violation list;
}

let sweep_ok r = r.sweep_violations = []

let pp_sweep_report ppf r =
  if sweep_ok r then
    Fmt.pf ppf
      "%d bit flips: %d detected as interior corruption, %d torn-tail losses, \
       %d harmless, 0 silent corruptions"
      r.flips r.interior_detected r.tail_losses r.harmless
  else
    Fmt.pf ppf "%d bit flips, %d SILENT CORRUPTIONS@,%a" r.flips
      (List.length r.sweep_violations)
      (Fmt.list ~sep:Fmt.cut pp_violation)
      r.sweep_violations

(* Flip one bit in every byte of the encoded log (bit index rotates with
   the offset, so all eight positions are exercised) and demand that every
   corruption is either {e detected} — an interior [Corrupt_log] — or
   {e contained} — decoded as a torn tail whose records are a prefix of
   the originals.  Any decode that silently yields different records is a
   violation: checksummed framing failed. *)
let corruption_sweep wal =
  let original = Wal.records wal in
  let bytes = Wal.Codec.encode_all original in
  let len = String.length bytes in
  let interior_detected = ref 0 in
  let tail_losses = ref 0 in
  let harmless = ref 0 in
  let check off =
    let b = Bytes.of_string bytes in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl (off mod 8))));
    match Wal.Codec.decode_all (Bytes.to_string b) with
    | Error _ ->
        incr interior_detected;
        None
    | Ok decoded ->
        let recs = decoded.Wal.Codec.records in
        if List.equal Wal.equal_record recs original then begin
          incr harmless;
          None
        end
        else if is_prefix ~equal:Wal.equal_record recs original then begin
          incr tail_losses;
          None
        end
        else
          Some
            {
              cut = off;
              invariant = "corruption-detection";
              detail =
                Fmt.str
                  "bit flip at offset %d decoded silently to a non-prefix \
                   record list (%d records vs %d original)"
                  off (List.length recs) (List.length original);
            }
  in
  let sweep_violations = List.filter_map check (List.init len Fun.id) in
  {
    flips = len;
    interior_detected = !interior_detected;
    tail_losses = !tail_losses;
    harmless = !harmless;
    sweep_violations;
  }

(* ------------------------------------------------------------------ *)
(* Truncation torture: crash cuts inside a crash-atomic log compaction. *)

(* [Disk_wal.checkpoint_truncate] promises that no byte offset of its
   journal + install sequence can make reload misclassify the log or
   change the recovered state.  Sweep that promise exhaustively: build
   every intermediate backend image the protocol can leave behind —
   {ol
   {- {b journal phase}: the old log followed by the first [k] bytes of
      the intent + compacted-image journal, for every [k];}
   {- {b install phase}: the first [k] bytes of the new image spliced
      over the full journaled file, for every [k] (the memory backend's
      [write_at] is atomic, so the torn states of the file backend's
      write-then-shrink are constructed explicitly);}
   {- {b done}: the installed image alone.}}
   — reload each through {!Disk_wal.load} (which must never refuse:
   every such state is a legal crash point, violations are reported as
   ["truncate-atomicity"]) and demand that recovery reproduces exactly
   the pre-compaction committed state (per object) and loser set. *)
(* The shared journal+install byte sweep behind [torture_truncation] and
   [torture_upgrade]: given the pre-rewrite on-disk bytes and the
   compacted image that is to replace them, construct every intermediate
   backend state the protocol can leave behind, reload each through
   {!Disk_wal.load} and demand recovery reproduces exactly what [recs]
   (the pre-rewrite log) replays to. *)
let sweep_rewrite ?workers ~invariant ~rebuild ~recs ~old_bytes ~image () =
  let new_len = String.length image in
  let intent =
    Wal.Codec.encode
      (Wal.Truncate_intent { old_len = String.length old_bytes; new_len })
  in
  let journal = intent ^ image in
  (* Expected outcome: whatever the pre-rewrite log replays to. *)
  let exp_committed, exp_losers = Wal.replay recs in
  let expected_for name =
    List.filter (fun (op : Op.t) -> String.equal op.Op.obj name) exp_committed
  in
  let states =
    (* Journal phase: old log + k bytes of the journal. *)
    List.init
      (String.length journal + 1)
      (fun k -> ("journal", k, old_bytes ^ String.sub journal 0 k))
    (* Install phase: k bytes of the image over the journaled file.
       (k = new_len is the shrink itself still pending: image bytes
       followed by the stale remainder of the journaled file.) *)
    @ (let full = old_bytes ^ journal in
       let flen = String.length full in
       List.init (new_len + 1) (fun k ->
           ( "install",
             k,
             String.sub image 0 k ^ String.sub full k (flen - k) )))
    @ [ ("done", 0, image) ]
  in
  let check i (phase, k, state) =
    let cut = i in
    let bad detail = { cut; invariant; detail } in
    let where = Fmt.str "%s phase, byte %d" phase k in
    match Disk_wal.load ?workers (Storage.of_string state) with
    | exception exn ->
        [ bad (Fmt.str "%s: reload raised %s" where (Printexc.to_string exn)) ]
    | Error c ->
        [
          bad
            (Fmt.str "%s: reload refused a legal crash state: %a" where
               Wal.Codec.pp_corruption c);
        ]
    | Ok dw -> (
        match
          Durable_database.recover ?workers ~wal:(Disk_wal.wal dw) ~rebuild ()
        with
        | exception exn ->
            [
              bad
                (Fmt.str "%s: recovery raised %s" where
                   (Printexc.to_string exn));
            ]
        | Error e ->
            [ bad (Fmt.str "%s: recovery failed: %a" where Recovery.pp_error e) ]
        | Ok (db, losers) ->
            let state_bad =
              List.filter_map
                (fun (name, ops) ->
                  let want = expected_for name in
                  if List.equal Op.equal ops want then None
                  else
                    Some
                      (bad
                         (Fmt.str "%s: %s recovered [%a], expected [%a]" where
                            name pp_ops ops pp_ops want)))
                (committed_by_object db)
            in
            let loser_bad =
              if Tid.Set.equal losers exp_losers then []
              else
                [
                  bad
                    (Fmt.str "%s: losers {%a}, expected {%a}" where
                       Fmt.(list ~sep:comma Tid.pp)
                       (Tid.Set.elements losers)
                       Fmt.(list ~sep:comma Tid.pp)
                       (Tid.Set.elements exp_losers));
                ]
            in
            state_bad @ loser_bad)
  in
  let violations = List.concat (List.mapi check states) in
  { cuts = List.length states; atomicity_checked = 0; violations }

let torture_truncation ?workers ~rebuild wal =
  let recs = Wal.records wal in
  let mirror = Wal.of_records recs in
  let dropped = Wal.truncate_to_checkpoint mirror in
  if dropped = 0 then { cuts = 0; atomicity_checked = 0; violations = [] }
  else
    sweep_rewrite ?workers ~invariant:"truncate-atomicity" ~rebuild ~recs
      ~old_bytes:(Wal.Codec.encode_all recs)
      ~image:(Wal.Codec.encode_all (Wal.records mirror))
      ()

(* Upgrade torture: the incremental v1→v2 migration is "checkpoint +
   truncate under the new binary" — the old log sits on disk as pure v1
   frames, and [Disk_wal.checkpoint_truncate] journals and installs a
   pure-v2 image over it.  Sweep every byte state of that rewrite,
   exactly as [torture_truncation] does, but with the pre-rewrite bytes
   encoded as v1: a crash at any offset leaves either the readable v1
   log (with torn v2 journal debris the loader rolls back over), a
   committed journal to redo, or the installed v2 image — and recovery
   must always reproduce the pre-upgrade committed state and loser set,
   so no acknowledged commit is ever lost to the format migration.
   Unlike truncation, the sweep runs even when nothing would be dropped
   (the rewrite is then a pure v1→v2 re-encode of the same records). *)
let torture_upgrade ?workers ~rebuild wal =
  let recs = Wal.records wal in
  let mirror = Wal.of_records recs in
  ignore (Wal.truncate_to_checkpoint mirror);
  sweep_rewrite ?workers ~invariant:"upgrade-atomicity" ~rebuild ~recs
    ~old_bytes:(Wal.Codec.encode_all ~version:Wal.Codec.v1 recs)
    ~image:(Wal.Codec.encode_all (Wal.records mirror))
    ()

(* ------------------------------------------------------------------ *)
(* Sharded torture: crash states across the WALs of a sharded engine.  *)

type sharded_report = {
  shard_count : int;
  byte_cuts : int;
  forced_states : int;
  cross_txns : int;
  cross_checked : int;
  sharded_violations : violation list;
}

let sharded_ok r = r.sharded_violations = []

let pp_sharded_report ppf r =
  if sharded_ok r then
    Fmt.pf ppf
      "%d shards: %d byte cuts + %d forced-frontier states, %d cross-shard \
       txns (%d evidence checks), 0 violations"
      r.shard_count r.byte_cuts r.forced_states r.cross_txns r.cross_checked
  else
    Fmt.pf ppf "%d shards: %d byte cuts + %d forced-frontier states, %d VIOLATIONS@,%a"
      r.shard_count r.byte_cuts r.forced_states
      (List.length r.sharded_violations)
      (Fmt.list ~sep:Fmt.cut pp_violation)
      r.sharded_violations

let ops_of_tid tid recs =
  List.filter_map
    (function
      | Wal.Operation (t, op) when Tid.equal t tid -> Some op | _ -> None)
    recs

let sharded_committed db =
  List.map
    (fun o -> (Atomic_object.name o, Atomic_object.committed_ops o))
    (Sharded_database.objects db)

let take k l = List.filteri (fun i _ -> i < k) l

let torture_sharded ?workers ~shards:n ~rebuild ~drive () =
  if n < 1 then invalid_arg "Crash.torture_sharded: shards < 1";
  (* Drive the workload over recording in-memory WALs.  Every append and
     every completed force is stamped with one global clock under a
     single lock, so both the true cross-shard append order and each
     shard's durability frontier over time are known exactly — the two
     ingredients every legal crash state is made of. *)
  let glock = Mutex.create () in
  let clock = ref 0 in
  let append_log = Array.init n (fun _ -> ref []) in
  let force_log = Array.init n (fun _ -> ref []) in
  let appended = Array.make n 0 in
  let wals =
    Array.init n (fun i ->
        let w = Wal.create () in
        Wal.set_sink w
          {
            Wal.sink_append =
              (fun r ->
                Mutex.lock glock;
                incr clock;
                appended.(i) <- appended.(i) + 1;
                append_log.(i) := (!clock, r) :: !(append_log.(i));
                Mutex.unlock glock);
            sink_force =
              (fun () ->
                Mutex.lock glock;
                incr clock;
                force_log.(i) := (!clock, appended.(i)) :: !(force_log.(i));
                Mutex.unlock glock);
            sink_attach = (fun _ -> ());
          };
        w)
  in
  let db0 = Sharded_database.create ~wals (rebuild ()) in
  drive db0;
  let indexed = Array.map (fun r -> List.rev !r) append_log in
  let full = Array.map (List.map snd) indexed in
  let forces = Array.map (fun r -> List.rev !r) force_log in
  let prepared_tids =
    Array.fold_left
      (fun acc recs ->
        List.fold_left
          (fun acc -> function Wal.Prepare t -> Tid.Set.add t acc | _ -> acc)
          acc recs)
      Tid.Set.empty full
  in
  let cross_checked = ref 0 in
  let cut_no = ref 0 in
  (* One crash state: [cut_recs.(p)] is what shard [p]'s log holds after
     the crash.  The invariant battery is evidence-driven: whether the
     state carries commit evidence for a cross-shard transaction decides
     what recovery must do with it — no reference to what the full run
     "intended", only to what the logs prove. *)
  let check ~where cut_recs =
    incr cut_no;
    let cut = !cut_no in
    let bad invariant detail =
      { cut; invariant; detail = Fmt.str "%s: %s" where detail }
    in
    let analysis = Two_phase.analyze cut_recs in
    let evidence = analysis.Two_phase.commit_evidence in
    (* (i) Evidence implies complete survival: every participant's
       operations and Prepare are forced before the coordinator's
       Decision is even appended, so no legal crash state can hold
       commit evidence while missing any committed operation. *)
    let survival =
      Tid.Set.fold
        (fun tid acc ->
          if not (Tid.Set.mem tid evidence) then acc
          else begin
            incr cross_checked;
            let probs = ref [] in
            Array.iteri
              (fun p recs ->
                let got = ops_of_tid tid recs in
                let want = ops_of_tid tid full.(p) in
                if not (List.equal Op.equal got want) then
                  probs :=
                    bad "global-atomicity"
                      (Fmt.str
                         "txn %a has commit evidence but shard %d retains \
                          %d/%d of its operations"
                         Tid.pp tid p (List.length got) (List.length want))
                    :: !probs)
              cut_recs;
            !probs @ acc
          end)
        prepared_tids []
    in
    let rwals = Array.map Wal.of_records cut_recs in
    match Sharded_database.recover ?workers ~wals:rwals ~rebuild () with
    | exception exn ->
        survival
        @ [
            bad "replay-legality"
              (Fmt.str "recovery raised %s" (Printexc.to_string exn));
          ]
    | Error e ->
        survival
        @ [
            bad "replay-legality"
              (Fmt.str "recovery failed: %a" Recovery.pp_error e);
          ]
    | Ok (db, losers) ->
        let post = Array.map Wal.records rwals in
        (* (ii) Global atomicity of outcomes: with evidence, every shard
           whose Prepare survived must end with the transaction
           committed; without evidence (presumed abort) no shard
           anywhere may commit it.  "No shard installs a cross-shard
           transaction another shard aborted" is this check. *)
        let shard_ids = List.init n Fun.id in
        let outcome_bad =
          Tid.Set.fold
            (fun tid acc ->
              let committed_on p =
                List.exists
                  (function Wal.Commit t -> Tid.equal t tid | _ -> false)
                  post.(p)
              in
              let prepared_on p =
                List.exists
                  (function Wal.Prepare t -> Tid.equal t tid | _ -> false)
                  cut_recs.(p)
              in
              (if Tid.Set.mem tid evidence then
                 List.filter_map
                   (fun p ->
                     if prepared_on p && not (committed_on p) then
                       Some
                         (bad "global-atomicity"
                            (Fmt.str
                               "txn %a has commit evidence but participant \
                                shard %d did not install it"
                               Tid.pp tid p))
                     else None)
                   shard_ids
               else
                 List.filter_map
                   (fun p ->
                     if committed_on p then
                       Some
                         (bad "global-atomicity"
                            (Fmt.str
                               "txn %a has no commit evidence (presumed \
                                abort) but shard %d installed it"
                               Tid.pp tid p))
                     else None)
                   shard_ids)
              @ acc)
            prepared_tids []
        in
        (* (iii) Per-object legality, and recovered state == replay of
           the resolved logs (ties the outcome records recovery appended
           to the state it actually installed). *)
        let legality =
          List.filter_map
            (fun o ->
              let ops = Atomic_object.committed_ops o in
              if Spec.legal (Atomic_object.spec o) ops then None
              else
                Some
                  (bad "replay-legality"
                     (Fmt.str "%s replays illegally: [%a]"
                        (Atomic_object.name o) pp_ops ops)))
            (Sharded_database.objects db)
        in
        let consistency =
          List.concat_map
            (fun p ->
              let committed, _ = Wal.replay post.(p) in
              let sh = (Sharded_database.shards db).(p) in
              List.filter_map
                (fun o ->
                  let name = Atomic_object.name o in
                  let want =
                    List.filter
                      (fun (op : Op.t) -> String.equal op.Op.obj name)
                      committed
                  in
                  let got = Atomic_object.committed_ops o in
                  if List.equal Op.equal got want then None
                  else
                    Some
                      (bad "replay-consistency"
                         (Fmt.str
                            "shard %d %s recovered [%a] but its resolved \
                             log replays [%a]"
                            p name pp_ops got pp_ops want)))
                (Database.objects (Shard.database sh)))
            shard_ids
        in
        (* (iv) A second crash-recover over the resolved logs reproduces
           the same state, losers, and appends nothing new: recovery
           completed the protocol, it did not merely patch state. *)
        let idempotence =
          let rwals2 = Array.map Wal.of_records post in
          match Sharded_database.recover ?workers ~wals:rwals2 ~rebuild () with
          | exception exn ->
              [
                bad "idempotence"
                  (Fmt.str "second recovery raised %s" (Printexc.to_string exn));
              ]
          | Error e ->
              [
                bad "idempotence"
                  (Fmt.str "second recovery failed: %a" Recovery.pp_error e);
              ]
          | Ok (db2, losers2) ->
              let diffs =
                List.filter_map
                  (fun ((name, ops1), (_, ops2)) ->
                    if List.equal Op.equal ops1 ops2 then None
                    else
                      Some
                        (bad "idempotence"
                           (Fmt.str
                              "%s: [%a] after first recovery, [%a] after \
                               second"
                              name pp_ops ops1 pp_ops ops2)))
                  (List.combine (sharded_committed db) (sharded_committed db2))
              in
              let stability =
                if
                  Array.for_all2
                    (List.equal Wal.equal_record)
                    (Array.map Wal.records rwals2)
                    post
                then []
                else
                  [
                    bad "idempotence"
                      "second recovery appended further resolution records";
                  ]
              in
              let loser_bad =
                if Tid.Set.equal losers losers2 then []
                else
                  [
                    bad "idempotence"
                      (Fmt.str "losers {%a} became {%a}"
                         Fmt.(list ~sep:comma Tid.pp)
                         (Tid.Set.elements losers)
                         Fmt.(list ~sep:comma Tid.pp)
                         (Tid.Set.elements losers2));
                  ]
              in
              diffs @ stability @ loser_bad
        in
        survival @ outcome_bad @ legality @ consistency @ idempotence
  in
  let violations = ref [] in
  (* Leg A — forced-frontier states: at every global clock tick, every
     shard retains exactly what its last completed force covered (all
     unforced appends lost everywhere at once — the adversarial power
     cut).  This sweeps the protocol's force ordering itself: a decision
     forced before its participants' prepares, or a completion trusted
     before the decision, shows up here as surviving evidence with
     missing operations. *)
  let forced_states = ref 0 in
  let seen = Hashtbl.create 64 in
  for tau = 0 to !clock + 1 do
    let counts =
      Array.init n (fun i ->
          List.fold_left
            (fun acc (t, k) -> if t < tau then max acc k else acc)
            0 forces.(i))
    in
    let key = Array.to_list counts in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      incr forced_states;
      let cut_recs = Array.mapi (fun i k -> take k full.(i)) counts in
      violations :=
        !violations
        @ check
            ~where:
              (Fmt.str "forced frontier at tick %d [%a]" tau
                 Fmt.(array ~sep:comma int)
                 counts)
            cut_recs
    end
  done;
  (* Leg B — byte-granularity cuts: for every shard and every byte
     offset of its encoded log, the shard crashes with exactly that byte
     prefix (torn frame dropped by the codec — a misclassification is a
     violation as in {!torture_bytes}); the other shards retain their
     maximal consistent prefixes — every record appended before the
     first record this shard lost. *)
  let byte_cuts = ref 0 in
  for s = 0 to n - 1 do
    let bytes =
      String.concat "" (List.map (Wal.Codec.encode ~shard:s) full.(s))
    in
    let times = Array.of_list (List.map fst indexed.(s)) in
    let prev_count = ref (-1) in
    for cutb = 0 to String.length bytes do
      incr byte_cuts;
      match Wal.Codec.decode_all (String.sub bytes 0 cutb) with
      | Error c ->
          violations :=
            !violations
            @ [
                {
                  cut = cutb;
                  invariant = "torn-tail";
                  detail =
                    Fmt.str
                      "shard %d: prefix cut at byte %d misclassified as \
                       interior corruption: %a"
                      s cutb Wal.Codec.pp_corruption c;
                };
              ]
      | Ok d ->
          let k = List.length d.Wal.Codec.records in
          if k <> !prev_count then begin
            prev_count := k;
            let tau = if k = Array.length times then max_int else times.(k) in
            let cut_recs =
              Array.mapi
                (fun p ixs ->
                  if p = s then d.Wal.Codec.records
                  else
                    List.filter_map
                      (fun (t, r) -> if t < tau then Some r else None)
                      ixs)
                indexed
            in
            violations :=
              !violations
              @ check ~where:(Fmt.str "shard %d cut at byte %d" s cutb) cut_recs
          end
    done
  done;
  {
    shard_count = n;
    byte_cuts = !byte_cuts;
    forced_states = !forced_states;
    cross_txns = Tid.Set.cardinal prepared_tids;
    cross_checked = !cross_checked;
    sharded_violations = !violations;
  }

let run ?max_atomicity_txns ?workers ~rebuild ~drive () =
  let wal = Wal.create () in
  let db = Durable_database.create ~wal (rebuild ()) in
  drive db;
  torture ?max_atomicity_txns ?workers ~rebuild wal
