(** One shard of a {!Sharded_database}: a complete single-shard durable
    engine — its own {!Durable_database} (lock tables, atomic objects),
    its own {!Wal} (and therefore its own group-commit flusher), and the
    mutex that serialises engine calls into it.  A shard knows nothing
    about the others; all cross-shard coordination lives in
    {!Sharded_database}. *)

type t

(** [create ~index ~wal objs] wraps a fresh {!Durable_database} over
    [objs] and [wal].  [index] is the shard's position in the router's
    table — it is also the shard id {!Disk_wal} stamps into v2 frames
    when [wal] is disk-backed. *)
val create : ?first_tid:int -> index:int -> wal:Wal.t -> Atomic_object.t list -> t

(** [of_db ~index ~wal db] wraps an already-built engine — how
    {!Sharded_database.recover} assembles shards from per-shard
    {!Durable_database.recover} results. *)
val of_db : index:int -> wal:Wal.t -> Durable_database.t -> t

val index : t -> int
val wal : t -> Wal.t
val db : t -> Durable_database.t

(** The shard's underlying {!Database} (transaction table, objects,
    metrics registry). *)
val database : t -> Database.t

val metrics : t -> Tm_obs.Metrics.t

(** [with_lock t f] runs [f] holding the shard's engine mutex.  The
    durability wait ({!Wal.force_upto}) must happen {e outside} it. *)
val with_lock : t -> (unit -> 'a) -> 'a
