(** A {!Wal} persisted through a {!Storage} backend.

    The in-memory log stays the source of truth for replay and the
    crash-torture harness; this module mirrors every append onto stable
    storage as a {!Wal.Codec} frame, makes {!Wal.force} a real backend
    barrier, and reloads a log from the backend's bytes after a crash —
    truncating a torn tail, refusing interior corruption.

    Transient storage faults ({!Storage.Transient}) are absorbed by a
    bounded retry loop: a torn append is re-issued at the same offset
    (overwriting the torn prefix — the backend's {!Storage.write_at}
    contract), with a deterministic backoff hook between attempts.
    Faults that outlive the budget surface as {!Storage_unavailable}. *)

(** Retry policy for transient faults.  [backoff n] is called after the
    [n]th failed attempt (n = 1, 2, ...) before retrying; the default
    does nothing (deterministic tests) — a production caller can sleep
    exponentially here. *)
type retry = {
  max_attempts : int;
  backoff : int -> unit;
}

val default_retry : retry

(** A write or force still failing after [attempts] tries. *)
exception Storage_unavailable of { attempts : int; last : string }

type t

(** [create ?retry storage] starts a fresh, empty log on [storage]
    (discarding any previous contents). *)
val create : ?retry:retry -> Storage.t -> t

(** [load ?retry storage] rebuilds the log from the backend's bytes.  A
    torn or corrupt tail is truncated (crash loss; recovery proceeds);
    interior corruption is returned as [Error] with its byte offset —
    never skipped.  With [profile], the storage read is charged to the
    restart profiler's storage-scan phase and decoding to the
    frame-decode / checksum-verify phases. *)
val load :
  ?retry:retry ->
  ?profile:Tm_obs.Recovery_profile.t ->
  Storage.t ->
  (t, Wal.Codec.corruption) result

(** The in-memory mirror.  Appends to it are persisted (with retry) as
    they happen; {!Wal.force} forces the backend. *)
val wal : t -> Wal.t

val storage : t -> Storage.t

(** [checkpoint_truncate t] = {!Wal.truncate_to_checkpoint} on the
    mirror plus a compaction of the backend: the retained records are
    re-encoded, written from offset 0 and forced.  Returns the number of
    records dropped. *)
val checkpoint_truncate : t -> int

(** Bytes appended to the backend so far (also counted as
    [tm_wal_bytes_total]). *)
val bytes_written : t -> int

(** Transient faults absorbed by the retry loop so far (also counted as
    [tm_storage_retries_total]). *)
val retries : t -> int
