(** A {!Wal} persisted through a {!Storage} backend.

    The in-memory log stays the source of truth for replay and the
    crash-torture harness; this module mirrors every append onto stable
    storage as a {!Wal.Codec} frame, makes {!Wal.force} a real backend
    barrier, and reloads a log from the backend's bytes after a crash —
    truncating a torn tail, refusing interior corruption.

    Transient storage faults ({!Storage.Transient}) are absorbed by a
    bounded retry loop: a torn append is re-issued at the same offset
    (overwriting the torn prefix — the backend's {!Storage.write_at}
    contract), with a deterministic backoff hook between attempts.
    Faults that outlive the budget surface as {!Storage_unavailable}. *)

(** Retry policy for transient faults.  [backoff n] is called after the
    [n]th failed attempt (n = 1, 2, ...) before retrying; the default
    does nothing (deterministic tests) — a production caller can sleep
    exponentially here. *)
type retry = {
  max_attempts : int;
  backoff : int -> unit;
}

val default_retry : retry

(** A write or force still failing after [attempts] tries. *)
exception Storage_unavailable of { attempts : int; last : string }

type t

(** [create ?retry ?shard storage] starts a fresh, empty log on
    [storage] (discarding any previous contents; the truncation is
    forced, so a crash before this log's first commit flush cannot
    resurrect a stale previous-incarnation log).  [shard] (default 0)
    is stamped into the v2 header of every frame this log writes —
    {!Sharded_database} gives each shard's log its own id, so a frame
    found on the wrong backend is attributable.  Raises
    [Invalid_argument] outside [0, 0xFFFF]. *)
val create : ?retry:retry -> ?shard:int -> Storage.t -> t

(** [load ?retry storage] rebuilds the log from the backend's bytes.  A
    torn or corrupt tail is truncated (crash loss; recovery proceeds);
    interior corruption is returned as [Error] with its byte offset —
    never skipped.  With [profile], the storage read is charged to the
    restart profiler's storage-scan phase and decoding to the
    frame-decode / checksum-verify phases.  [workers] (default 1) is
    forwarded to {!Wal.Codec.decode_all}: a fully intact image large
    enough to amortise the spawns is decoded by that many domains, with
    automatic fallback to the serial decoder on any damage.

    An interrupted {!checkpoint_truncate} is resolved before decoding:
    a {e complete} compaction journal (intent frame + verified image) is
    redone — the install is idempotent — while an incomplete one is
    rolled back, reloading exactly the pre-compaction log.  A journal
    whose intent committed but whose image no longer verifies is
    refused as corruption (never silently dropped).

    [shard] (default 0) is the id stamped on {e subsequent} appends;
    the decoded frames keep whatever shard their headers carry (decode
    accepts any id — the shard is forensic, not a filter). *)
val load :
  ?retry:retry ->
  ?shard:int ->
  ?profile:Tm_obs.Recovery_profile.t ->
  ?workers:int ->
  Storage.t ->
  (t, Wal.Codec.corruption) result

(** The in-memory mirror.  Appends to it are persisted (with retry) as
    they happen; {!Wal.force} forces the backend. *)
val wal : t -> Wal.t

val storage : t -> Storage.t

(** The shard id this log stamps on appended frames (0 unless given). *)
val shard : t -> int

(** [checkpoint_truncate t] = {!Wal.truncate_to_checkpoint} on the
    mirror plus a {e crash-atomic} compaction of the backend, in two
    forced steps: (1) {b journal} — a [Truncate_intent] frame and the
    complete compacted image are appended after the live log; (2)
    {b install} — the image is rewritten from offset 0, its trailing
    truncation erasing the journal.  A crash during (1) rolls back on
    reload (the old log is untouched); a crash during (2) finds the
    journal and redoes the install.  At no byte offset of the sequence
    can reload misclassify the log or replay pre-checkpoint records —
    swept exhaustively by {!Crash.torture_truncation}.  Returns the
    number of records dropped. *)
val checkpoint_truncate : t -> int

(** Bytes appended to the backend so far (also counted as
    [tm_wal_bytes_total]). *)
val bytes_written : t -> int

(** Transient faults absorbed by the retry loop so far (also counted as
    [tm_storage_retries_total]). *)
val retries : t -> int
