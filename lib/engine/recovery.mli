(** Executable recovery managers for one object: update-in-place and
    deferred-update.

    These are the running-system counterparts of the paper's two [View]
    functions (Section 5), maintained incrementally:

    - {b UIP} keeps a single current state (set — specifications may be
      non-deterministic) reflecting every non-aborted operation in
      execution order, exactly [UIP(H,A)].  Commit is free; abort
      "undoes" the transaction's operations by replaying the surviving
      log from the initial state (the general form of undo; an
      operation-inverse fast path is a per-ADT optimisation with the same
      semantics).
    - {b DU} keeps a committed base state plus one intentions list per
      active transaction; a transaction computes responses against base +
      its own intentions, exactly [DU(H,A)].  Abort discards the
      intentions; commit applies them to the base in commit order.

    A manager only answers {e which responses are legal}; conflict
    checking lives in {!Lock_table} and the two are combined by
    {!Atomic_object}. *)

open Tm_core

type t

type kind =
  | UIP
  | DU

val pp_kind : Format.formatter -> kind -> unit
val kind_of_string : string -> kind option

(** [create kind spec] builds a manager with the object in its initial
    state.  [inverse], if given, enables the update-in-place manager's
    compensation fast path: [inverse op] returns the operations that undo
    [op] when applied at the end of the log ([Some []] for read-only
    operations; [None] when [op] has no position-independent inverse, in
    which case abort falls back to the general replay undo).  Correct
    inverses satisfy: state after [ops · op · inverse op] is equieffective
    to state after [ops] for every legal context — the property tests in
    [test_engine.ml] check the managers agree. *)
val create : ?inverse:(Op.t -> Op.t list option) -> kind -> Spec.t -> t

val kind : t -> kind

(** [responses t tid inv] is every response legal for [inv] according to
    [tid]'s view of the object (deduplicated; empty for a partial
    operation with no legal response yet). *)
val responses : t -> Tid.t -> Op.invocation -> Value.t list

(** [record t tid op] records that [tid] executed [op].  Raises
    [Invalid_argument] if [op.res] is not a legal response in [tid]'s
    current view. *)
val record : t -> Tid.t -> Op.t -> unit

val commit : t -> Tid.t -> unit
val abort : t -> Tid.t -> unit

(** A recovery-path failure: replaying a log into a manager that is not
    fresh, or a replayed sequence that is not legal for the object's
    specification.  Typed (rather than [Invalid_argument]) so recovery
    callers — the crash harness, {!Durable_database.recover} — can
    report the violation with its object instead of catching generic
    exceptions. *)
type error = {
  obj : string;
  reason : string;
}

val pp_error : Format.formatter -> error -> unit

(** [restore t ops] installs [ops] (a commit-order sequence, e.g. the
    outcome of {!Wal.replay}) into a {e fresh} manager as
    already-committed work: UIP seeds its log and current state, DU its
    committed base.  Replayed work belongs to no live transaction, so no
    transaction id is involved.  [Error] if the manager is not fresh or
    the sequence is not legal. *)
val restore : t -> Op.t list -> (unit, error) result

(** Operations executed by non-aborted transactions, in execution order
    (UIP) — or committed operations in commit order followed by nothing
    (DU base).  Exposed for verification in tests. *)
val committed_ops : t -> Op.t list

(** [attach_metrics t reg] makes the manager count recovery work in
    [reg], labelled by the object (spec) name: committed operations
    ([tm_recovery_committed_ops_total{obj}]), operations undone on a UIP
    abort ([tm_recovery_undone_ops_total{obj,mode="inverse"|"replay"}])
    and intentions discarded on a DU abort
    ([tm_recovery_discarded_ops_total{obj}]).  Called by
    {!Database.create}. *)
val attach_metrics : t -> Tm_obs.Metrics.t -> unit
