(** A runnable atomic object: serial specification + conflict relation +
    recovery manager + concurrency-control policy.

    This is the executable counterpart of the paper's
    [I(X, Spec, View, Conflict)].  Two policies are provided:

    - {b Locking} (pessimistic, the paper's model): an invocation executes
      only if some legal response does not conflict with an operation held
      by another active transaction ({e result-dependent locking} —
      different legal responses may conflict differently, and the object
      picks an enabled one).
    - {b Optimistic} (Section 3.4's alternative): invocations never block;
      at commit the transaction {e validates} — it aborts if any of its
      operations conflicts with an operation committed since it started
      (backward validation à la Kung–Robinson, with the same
      commutativity-based conflict relation).  Requires deferred-update
      recovery: update-in-place would publish uncommitted effects. *)

open Tm_core

type policy =
  | Locking
  | Optimistic

val pp_policy : Format.formatter -> policy -> unit

type t

type outcome =
  | Executed of Op.t  (** the chosen operation (invocation + response) *)
  | Blocked of Tid.t list
      (** every legal response conflicts; the holders to wait for *)
  | No_response
      (** the operation is partial and currently has no legal response
          (e.g. dequeue on an empty queue): wait for the state to change *)

val pp_outcome : Format.formatter -> outcome -> unit

(** A pessimistic (locking) object.  [inverse] enables the
    update-in-place compensation fast path (see {!Recovery.create}). *)
val create :
  ?inverse:(Op.t -> Op.t list option) -> spec:Spec.t -> conflict:Conflict.t ->
  recovery:Recovery.kind -> unit -> t

(** An optimistic object.  Optimistic execution must not publish
    uncommitted effects, so the recovery method is necessarily
    deferred-update. *)
val create_optimistic : spec:Spec.t -> conflict:Conflict.t -> t

val name : t -> string

(** The serial specification the object was created with. *)
val spec : t -> Spec.t

val policy : t -> policy
val recovery_kind : t -> Recovery.kind

(** [attach_metrics t reg] wires the object — and its lock table and
    recovery manager — to a metrics registry.  Adds per-operation
    contention counters labelled [{obj; op}]: [tm_object_blocked_total],
    [tm_object_no_response_total] and [tm_validation_failures_total],
    plus the series documented on {!Lock_table.attach_metrics} and
    {!Recovery.attach_metrics}.  {!Database.create} calls this for every
    object; uncontended invocations never touch a metric. *)
val attach_metrics : t -> Tm_obs.Metrics.t -> unit

(** [invoke t tid inv] attempts the invocation for [tid].  When several
    legal responses are enabled the first in the specification's response
    order is chosen (deterministic); pass [~choose] to override (e.g. a
    seeded random pick for non-deterministic types).  Under the
    [Optimistic] policy the call never returns [Blocked]. *)
val invoke : ?choose:(Value.t list -> Value.t) -> t -> Tid.t -> Op.invocation -> outcome

(** [validate t tid] — the optimistic commit test: [Error (mine, theirs)]
    if one of [tid]'s operations conflicts with an operation committed
    since [tid] first touched this object.  Always [Ok ()] under
    [Locking]. *)
val validate : t -> Tid.t -> (unit, Op.t * Op.t) result

(** [commit t tid] releases [tid]'s locks and makes its effects permanent
    under the object's recovery method.  Under [Optimistic] the caller
    must {!validate} first ([Database.try_commit] does).  No-op for a
    transaction that executed nothing here. *)
val commit : t -> Tid.t -> unit

(** [abort t tid] releases locks and undoes (UIP) or discards (DU) the
    transaction's effects. *)
val abort : t -> Tid.t -> unit

(** Committed operations in commit order — replaying these against the
    specification must always succeed for a correctly configured object
    (the key run-time invariant checked by the test suite). *)
val committed_ops : t -> Op.t list

(** Current lock holds (for introspection and deadlock reporting). *)
val holds : t -> (Tid.t * Op.t) list

(** Number of conflict checks that came back "blocked" so far. *)
val block_count : t -> int

(** [restore t ops] installs [ops] (a commit-order sequence, e.g. the
    outcome of {!Wal.replay}) into a freshly created object as
    already-committed work (directly into the recovery manager's
    committed state — no transaction id is consumed).  [Error] if the
    object is not fresh or the sequence is not legal — a typed recovery
    violation the caller can report (see {!Recovery.error}). *)
val restore : t -> Op.t list -> (unit, Recovery.error) result
