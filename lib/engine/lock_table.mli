(** Operation-based lock table for one object.

    Locks are implicit in the operations a transaction has executed
    (Section 4 of the paper): a transaction "holds" every operation it has
    performed at the object, and a new operation can execute only if it
    does not conflict — per the object's {!Tm_core.Conflict.t} — with any
    operation held by another active transaction.  Locks are released all
    at once when the transaction commits or aborts. *)

open Tm_core

type t

val create : Conflict.t -> t

(** [attach_metrics t ~obj reg] makes the table count blocking conflict
    pairs in [reg] as [tm_lock_conflicts_total{obj,requested,held}]
    (labelled by operation names).  Idempotent; called by
    {!Database.create} for every object it manages. *)
val attach_metrics : t -> obj:string -> Tm_obs.Metrics.t -> unit

(** [blockers t ~requested ~tid] is the set of other transactions holding
    an operation that conflicts with [requested] (deduplicated). *)
val blockers : t -> requested:Op.t -> tid:Tid.t -> Tid.t list

(** [add t tid op] records [op] as held by [tid]. *)
val add : t -> Tid.t -> Op.t -> unit

(** [release t tid] drops every operation held by [tid]. *)
val release : t -> Tid.t -> unit

(** All (transaction, operation) holds, oldest first. *)
val holds : t -> (Tid.t * Op.t) list

val conflict : t -> Conflict.t
