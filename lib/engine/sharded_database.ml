open Tm_core
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace

type txn = { mutable touched : int list (* shard ids, first-touch order *) }

type t = {
  shards : Shard.t array;
  txns : (Tid.t, txn) Hashtbl.t;
  mutable next_tid : int;
  mutable next_gtrace : int;
      (* global trace ids: one per cross-shard commit attempt, stamped
         into every 2PC span the attempt emits on any shard so an
         offline viewer can stitch the per-shard fragments together. *)
  mutable committed : int;
  mutable cross_in_flight : int;
      (* cross-shard transactions between first prepare and completion;
         checkpoints are deferred while > 0 (an in-doubt [Prepare] must
         stay visible to recovery, and a fuzzy checkpoint would erase
         it). *)
  lock : Mutex.t;
      (* global: tid allocation, the txn table, [cross_in_flight] and
         [committed].  Always acquired before any shard mutex, never
         after one. *)
  reg : Metrics.t;  (* engine-level 2PC metrics; shards have their own *)
  c_prepares : Metrics.counter;
  c_cross : Metrics.counter;
  c_abort_prepare : Metrics.counter;
  g_flushed : Metrics.gauge array;
  g_inflight : Metrics.gauge;
}

let max_shards = 0x10000 (* shard ids are stamped into u16 frame headers *)

let make_metrics n =
  let reg = Metrics.create () in
  ( reg,
    Metrics.counter reg "tm_2pc_prepares_total",
    Metrics.counter reg "tm_shard_cross_txn_total",
    Metrics.counter reg "tm_2pc_aborts_total" ~labels:[ ("phase", "prepare") ],
    Array.init n (fun i ->
        Metrics.gauge reg "tm_shard_flushed_lsn"
          ~labels:[ ("shard", string_of_int i) ]),
    Metrics.gauge reg "tm_2pc_in_flight" )

let make ?(first_tid = 0) shards =
  let n = Array.length shards in
  let reg, c_prepares, c_cross, c_abort_prepare, g_flushed, g_inflight =
    make_metrics n
  in
  {
    shards;
    txns = Hashtbl.create 64;
    next_tid = first_tid;
    next_gtrace = 0;
    committed = 0;
    cross_in_flight = 0;
    lock = Mutex.create ();
    reg;
    c_prepares;
    c_cross;
    c_abort_prepare;
    g_flushed;
    g_inflight;
  }

let check_shard_count n =
  if n < 1 then invalid_arg "Sharded_database: at least one shard required";
  if n > max_shards then
    invalid_arg (Fmt.str "Sharded_database: %d shards exceed the frame header's %d" n max_shards)

(* Route the object list to per-shard lists, preserving input order
   within each shard — the same assignment {!recover} must reproduce. *)
let partition_objects ~shards:n objs =
  let parts = Array.make n [] in
  List.iter
    (fun o ->
      let s = Wal.partition_of_object ~workers:n (Atomic_object.name o) in
      parts.(s) <- o :: parts.(s))
    objs;
  Array.map List.rev parts

let create ?first_tid ~wals objs =
  let n = Array.length wals in
  check_shard_count n;
  let parts = partition_objects ~shards:n objs in
  let shards =
    Array.init n (fun i -> Shard.create ~index:i ~wal:wals.(i) parts.(i))
  in
  make ?first_tid shards

let shard_count t = Array.length t.shards
let shards t = t.shards

let shard_of_object t name =
  Wal.partition_of_object ~workers:(Array.length t.shards) name

let find_object t name =
  Database.find_object (Shard.database t.shards.(shard_of_object t name)) name

let objects t =
  Array.to_list t.shards
  |> List.concat_map (fun sh -> Database.objects (Shard.database sh))

(* One recorder shared by every shard: a single logical clock totally
   orders all shards' spans, so a participant's prepare always
   timestamps before the coordinator decision that depended on it —
   the causal order the Perfetto flow arrows render. *)
let set_trace t tr =
  Array.iter (fun sh -> Database.set_trace (Shard.database sh) tr) t.shards

let emit_2pc t s ~tid kind =
  Database.emit_trace (Shard.database t.shards.(s)) ~tid kind

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let txn_of t tid =
  match Hashtbl.find_opt t.txns tid with
  | Some x -> x
  | None ->
      invalid_arg (Fmt.str "Sharded_database: unknown transaction %a" Tid.pp tid)

let begin_txn t =
  locked t (fun () ->
      let tid = Tid.of_int t.next_tid in
      t.next_tid <- t.next_tid + 1;
      Hashtbl.replace t.txns tid { touched = [] };
      tid)

let note_flushed t s =
  Metrics.Gauge.set t.g_flushed.(s) (float_of_int (Wal.flushed_lsn (Shard.wal t.shards.(s))))

let invoke ?choose t tid ~obj inv =
  let s = shard_of_object t obj in
  let sh = t.shards.(s) in
  let first =
    locked t (fun () ->
        let txn = txn_of t tid in
        let first = not (List.mem s txn.touched) in
        if first then txn.touched <- txn.touched @ [ s ];
        first)
  in
  Shard.with_lock sh (fun () ->
      if first then Database.adopt_txn (Shard.database sh) tid;
      Durable_database.invoke ?choose (Shard.db sh) tid ~obj inv)

(* Cross-shard commit: prepare every participant in ascending shard
   order (forcing each yes vote), write the forced decision on the
   coordinator, then complete everywhere lazily.  [parts] is sorted and
   has >= 2 elements. *)
let commit_cross t tid ~gtid parts =
  (* Phase 1.  Each prepare runs under its shard's mutex; the forces
     run after all appends so one group-commit flush per shard covers
     its vote. *)
  let rec prep prepared = function
    | [] -> Ok (List.rev prepared)
    | s :: rest -> (
        let sh = t.shards.(s) in
        match Shard.with_lock sh (fun () -> Durable_database.prepare (Shard.db sh) tid) with
        | Ok lsn ->
            Metrics.Counter.incr t.c_prepares;
            emit_2pc t s ~tid (Trace.Prepare_append { shard = s; gtid });
            prep ((s, lsn) :: prepared) rest
        | Error e ->
            (* The failing shard already aborted itself.  Roll back the
               yes-voters (their prepares may even be unforced — an
               aborted vote needs no durability), and plain-abort the
               shards the vote never reached. *)
            List.iter
              (fun (p, _) ->
                let shp = t.shards.(p) in
                ignore
                  (Shard.with_lock shp (fun () ->
                       Durable_database.finish_prepared (Shard.db shp) tid
                         ~commit:false));
                emit_2pc t p ~tid
                  (Trace.Completion { shard = p; gtid; commit = false }))
              prepared;
            List.iter
              (fun p ->
                let shp = t.shards.(p) in
                Shard.with_lock shp (fun () ->
                    Durable_database.abort (Shard.db shp) tid))
              rest;
            Metrics.Counter.incr t.c_abort_prepare;
            Error e)
  in
  match prep [] parts with
  | Error _ as e -> e
  | Ok prepared ->
      List.iter
        (fun (s, lsn) ->
          Wal.force_upto (Shard.wal t.shards.(s)) lsn;
          note_flushed t s;
          emit_2pc t s ~tid (Trace.Prepare_force { shard = s; lsn; gtid }))
        prepared;
      (* The decision: one forced append on the coordinator's own log —
         the global commit point.  The coordinator is the lowest
         participant index, so its id is derivable from the
         transaction's footprint at recovery (not that presumed abort
         ever needs to ask it anything). *)
      let coord = List.hd parts in
      let shc = t.shards.(coord) in
      let dlsn =
        Shard.with_lock shc (fun () ->
            Wal.append (Shard.wal shc) (Wal.Decision { tid; commit = true });
            Database.emit_trace (Shard.database shc) ~tid
              (Trace.Wal_append { record = "decision" });
            Wal.last_lsn (Shard.wal shc))
      in
      Wal.force_upto (Shard.wal shc) dlsn;
      note_flushed t coord;
      emit_2pc t coord ~tid
        (Trace.Decision_force { shard = coord; lsn = dlsn; gtid; commit = true });
      (* Phase 2: complete everywhere.  No force — recovery re-resolves
         a lost completion from the surviving decision evidence. *)
      List.iter
        (fun (s, _) ->
          let sh = t.shards.(s) in
          ignore
            (Shard.with_lock sh (fun () ->
                 Durable_database.finish_prepared (Shard.db sh) tid ~commit:true));
          emit_2pc t s ~tid (Trace.Completion { shard = s; gtid; commit = true }))
        prepared;
      Ok ()

let try_commit t tid =
  let parts, cross, gtid =
    locked t (fun () ->
        let txn = txn_of t tid in
        Hashtbl.remove t.txns tid;
        let parts = List.sort compare txn.touched in
        let cross = List.length parts > 1 in
        let gtid = t.next_gtrace in
        if cross then begin
          t.next_gtrace <- gtid + 1;
          t.cross_in_flight <- t.cross_in_flight + 1;
          Metrics.Gauge.set t.g_inflight (float_of_int t.cross_in_flight);
          Metrics.Counter.incr t.c_cross
        end;
        (parts, cross, gtid))
  in
  let result =
    match parts with
    | [] -> Ok () (* executed nothing anywhere: trivially committed *)
    | [ s ] -> (
        (* Single-shard fast path: exactly the unsharded pipeline —
           stage 1 under the shard mutex, the durability park outside
           it so the group-commit combiner can batch neighbours. *)
        let sh = t.shards.(s) in
        match
          Shard.with_lock sh (fun () ->
              Durable_database.try_commit_nowait (Shard.db sh) tid)
        with
        | Error _ as e -> e
        | Ok lsn ->
            Durable_database.wait_durable (Shard.db sh) tid lsn;
            note_flushed t s;
            Ok ())
    | parts -> commit_cross t tid ~gtid parts
  in
  locked t (fun () ->
      if cross then begin
        t.cross_in_flight <- t.cross_in_flight - 1;
        Metrics.Gauge.set t.g_inflight (float_of_int t.cross_in_flight)
      end;
      if Result.is_ok result then t.committed <- t.committed + 1);
  result

let abort t tid =
  let parts = locked t (fun () ->
      let txn = txn_of t tid in
      Hashtbl.remove t.txns tid;
      List.sort compare txn.touched)
  in
  List.iter
    (fun s ->
      let sh = t.shards.(s) in
      Shard.with_lock sh (fun () -> Durable_database.abort (Shard.db sh) tid))
    parts

let flush t =
  Array.iter (fun sh -> Durable_database.flush (Shard.db sh)) t.shards;
  Array.iteri (fun s _ -> note_flushed t s) t.shards

let checkpoint t =
  locked t (fun () ->
      if t.cross_in_flight > 0 then false
      else begin
        (* Force every shard first: a participant's unforced completion
           record must reach disk before any shard's checkpoint could
           license truncating away the decision evidence that would
           otherwise re-derive it. *)
        Array.iter (fun sh -> Wal.force (Shard.wal sh)) t.shards;
        Array.iteri (fun s _ -> note_flushed t s) t.shards;
        Array.iter
          (fun sh ->
            Shard.with_lock sh (fun () ->
                Durable_database.checkpoint (Shard.db sh)))
          t.shards;
        true
      end)

let committed_count t = locked t (fun () -> t.committed)

let metrics t =
  let out = Metrics.create () in
  Metrics.merge out t.reg;
  Array.iter
    (fun sh ->
      Metrics.merge
        ~extra_labels:[ ("shard", string_of_int (Shard.index sh)) ]
        out (Shard.metrics sh))
    t.shards;
  out

let recover ?workers ?audit ~wals ~rebuild () =
  let n = Array.length wals in
  check_shard_count n;
  (* Complete the interrupted protocol in the logs themselves: one
     real outcome record per in-doubt transaction, forced, so ordinary
     single-shard replay below needs no 2PC awareness — and a crash
     during recovery just re-resolves to the same outcomes. *)
  let analysis = Two_phase.analyze (Array.map Wal.records wals) in
  let resolution_events = Two_phase.resolution_events analysis in
  Option.iter (fun f -> f resolution_events) audit;
  let resolved_aborts = ref 0 in
  Array.iteri
    (fun s wal ->
      match Two_phase.resolutions analysis ~shard:s with
      | [] -> ()
      | rs ->
          List.iter
            (fun { Two_phase.tid; commit } ->
              if not commit then incr resolved_aborts;
              Wal.append wal (if commit then Wal.Commit tid else Wal.Abort tid))
            rs;
          Wal.force wal)
    wals;
  let parts = partition_objects ~shards:n (rebuild ()) in
  let rec go s acc =
    if s = n then Ok (List.rev acc)
    else
      match
        Durable_database.recover ?workers ~wal:wals.(s)
          ~rebuild:(fun () -> parts.(s))
          ()
      with
      | Error _ as e -> e
      | Ok shard_result -> go (s + 1) (shard_result :: acc)
  in
  match go 0 [] with
  | Error e -> Error e
  | Ok results ->
      let shards =
        Array.of_list
          (List.mapi (fun i (db, _) -> Shard.of_db ~index:i ~wal:wals.(i) db) results)
      in
      (* The global allocator restarts above every shard's high-water
         mark — ids are allocated globally, so the max is the mark. *)
      let first_tid =
        Array.fold_left
          (fun m sh -> max m (Database.next_tid (Shard.database sh)))
          0 shards
      in
      let t = make ~first_tid shards in
      Metrics.Counter.incr ~by:!resolved_aborts
        (Metrics.counter t.reg "tm_2pc_aborts_total"
           ~labels:[ ("phase", "recovery") ]);
      List.iter
        (fun (ev : Two_phase.resolution_event) ->
          Metrics.Counter.incr
            (Metrics.counter t.reg "tm_2pc_resolved_total"
               ~labels:
                 [
                   ("evidence", Two_phase.evidence_name ev.ev_evidence);
                   ("outcome", if ev.ev_commit then "commit" else "abort");
                 ]))
        resolution_events;
      let losers =
        List.fold_left
          (fun acc (_, l) -> Tid.Set.union acc l)
          Tid.Set.empty results
      in
      Ok (t, losers)
