(** Write-ahead log for crash recovery.

    The paper restricts itself to recovery from transaction aborts and
    notes that "crash recovery mechanisms are frequently similar to abort
    recovery mechanisms" (Section 1), leaving their analysis as future
    work.  This module and {!Durable_object} implement that extension for
    the engine: a logical redo log of operations, with commit records
    forced before a commit is acknowledged, and optional checkpoints.

    Stable storage is modelled in-memory; a {e crash} loses every
    volatile object state but none of the appended log records (append is
    atomic and forced).  Torn tails are modelled by recovering from a
    {e prefix} of the log: the crash-injection tests recover from every
    prefix. *)

open Tm_core

type record =
  | Begin of Tid.t
  | Operation of Tid.t * Op.t
  | Commit of Tid.t
  | Abort of Tid.t
  | Checkpoint of Op.t list
      (** committed operations so far, in commit order: recovery resumes
          from the latest checkpoint *)

val pp_record : Format.formatter -> record -> unit

type t

val create : unit -> t

(** [attach_metrics t reg] counts appends per record kind as
    [tm_wal_appends_total{kind}] and observes checkpoint sizes in the
    [tm_wal_checkpoint_ops] histogram.  {!Durable_database.create}
    attaches its database registry automatically; a log rebuilt by
    {!prefix} starts detached. *)
val attach_metrics : t -> Tm_obs.Metrics.t -> unit

val append : t -> record -> unit

(** The record kind as a short lower-case string (metric/trace label). *)
val record_kind : record -> string
val records : t -> record list
val length : t -> int

(** [prefix t n] — the stable log as it would read after a crash that
    persisted only the first [n] records. *)
val prefix : t -> int -> t

(** [replay records] folds a log into the durable outcome: the committed
    operations in commit order (starting from the latest checkpoint) and
    the set of transactions that must be considered aborted (begun or
    operating, but with no commit record).  Operations of a transaction
    are redone only if its commit record is present. *)
val replay : record list -> Op.t list * Tid.Set.t
