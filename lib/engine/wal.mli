(** Write-ahead log for crash recovery.

    The paper restricts itself to recovery from transaction aborts and
    notes that "crash recovery mechanisms are frequently similar to abort
    recovery mechanisms" (Section 1), leaving their analysis as future
    work.  This module and {!Durable_object} implement that extension for
    the engine: a logical redo log of operations, with commit records
    forced before a commit is acknowledged, and fuzzy checkpoints.

    Stable storage is modelled in-memory; a {e crash} loses every
    volatile object state but none of the appended log records (append is
    atomic and forced).  Torn tails are modelled by recovering from a
    {e prefix} of the log: the crash-injection tests recover from every
    prefix. *)

open Tm_core

(** A {e fuzzy} checkpoint: a faithful snapshot of the replay state at
    the instant it was taken, valid even with transactions in flight.

    [committed] is every committed operation so far in commit order;
    [live] carries the per-transaction operation log (oldest first,
    possibly empty) of each transaction that had begun but not finished —
    so the log prefix before the checkpoint can be discarded without
    losing a loser or the pre-checkpoint operations of a transaction that
    commits later; [next_tid] is the transaction-id allocator's
    high-water mark, so recovery never reissues a tid that may still
    appear in the log. *)
type checkpoint = {
  committed : Op.t list;
  live : (Tid.t * Op.t list) list;
  next_tid : int;
}

type record =
  | Begin of Tid.t
  | Operation of Tid.t * Op.t
  | Commit of Tid.t
  | Abort of Tid.t
  | Checkpoint of checkpoint
  | Truncate_intent of { old_len : int; new_len : int }
      (** The compaction journal marker written by
          {!Disk_wal.checkpoint_truncate}: the old log ([old_len] bytes)
          is about to be replaced by a compacted image ([new_len]
          bytes).  It lives only in the journal region of the backend —
          never appended to an in-memory log — and {!Disk_wal.load}
          resolves it (redo or roll back the compaction) before the log
          reaches replay; {!replay} and {!plan} ignore a stray one (it
          carries no transaction state). *)
  | Prepare of Tid.t
      (** Two-phase-commit vote record, logged and {e forced} by a
          participant shard before it answers yes: the shard's operations
          for the transaction are all in the log before this record, so
          a recovered shard holding a [Prepare] can install the
          transaction in full if the global decision was commit.
          {!replay}/{!plan} read it as {e presumed abort}: a prepared
          transaction with no later local [Commit]/[Abort] is a loser —
          {!Sharded_database.recover} resolves such in-doubt
          transactions against the other shards' logs first. *)
  | Decision of { tid : Tid.t; commit : bool }
      (** The coordinator's 2PC outcome, logged and forced on the
          coordinator's own shard — the {e global commit point} of a
          cross-shard transaction.  Pure coordination state: it does not
          mark the transaction as begun on the coordinator's shard (a
          shard that only coordinated must not grow a phantom loser);
          recovery consults it to resolve other shards' in-doubt
          prepares. *)

val pp_record : Format.formatter -> record -> unit

(** Structural equality (used by the corruption sweep to check that a
    damaged log is never silently accepted as something new). *)
val equal_record : record -> record -> bool

type t

val create : unit -> t

(** [of_records recs] builds a log holding exactly [recs] (no metrics,
    no sink) — e.g. one decoded from disk by {!Disk_wal.load}. *)
val of_records : record list -> t

(** A stable-storage mirror: {!append} forwards every record,
    {!force} is the durability barrier, and a metrics attachment is
    forwarded so storage counters join the log's registry.  Installed by
    {!Disk_wal}; {!prefix} copies never carry the sink (a recovered
    prefix is a volatile artifact, not the stable log). *)
type sink = {
  sink_append : record -> unit;
  sink_force : unit -> unit;
  sink_attach : Tm_obs.Metrics.t -> unit;
}

(** [set_sink t sink] installs the mirror and moves the durability
    watermark to the current end of the log: whatever the log already
    holds was decoded {e from} stable storage, so it is durable by
    construction. *)
val set_sink : t -> sink -> unit

(** {2 The staged durability pipeline}

    Every {!append} is assigned the next monotone {e log sequence
    number} (1-based over the log's lifetime; {!truncate_to_checkpoint}
    does not rewind it).  [flushed_lsn] is the watermark below which the
    sink has certified durability; a commit may be acknowledged exactly
    when the watermark passes its commit record's LSN.

    {!force_upto} is a {e group-commit combiner}: the first thread to
    need a flush becomes the flusher and forces everything appended so
    far, while threads arriving during the barrier park on a condition
    and piggyback on the result (or on the next round if their record
    landed after the flusher's snapshot).  One [sink_force] thereby
    covers a whole batch of commits.  If the flusher's barrier raises,
    the round is handed over — every parked waiter is woken, one of them
    retries the flush — and the failure propagates to the failed
    flusher's caller only, so no thread is left blocked on a dead
    flusher. *)

(** The LSN of the newest fully-appended record (0 for an empty log). *)
val last_lsn : t -> int

(** The durability watermark.  For a sink-less log stable storage is
    modelled in-memory — every append is durable by fiat, so this equals
    {!last_lsn}. *)
val flushed_lsn : t -> int

(** [force_upto t lsn] blocks until [flushed_lsn t >= lsn], flushing or
    piggybacking as described above.  A no-op for a sink-less log.  Each
    actual barrier bumps [tm_wal_forces_total] and
    [tm_wal_group_commits_total] and records the number of commit
    records it covered in the [tm_wal_group_commit_batch] histogram. *)
val force_upto : t -> int -> unit

(** [force t] is [force_upto t (last_lsn t)]. *)
val force : t -> unit

(** [mark_all_flushed t] moves the watermark to the end of the log
    without a barrier — for callers that have just forced the backend
    through a side channel (e.g. {!Disk_wal.checkpoint_truncate}'s
    rewrite). *)
val mark_all_flushed : t -> unit

(** [attach_metrics t reg] counts appends per record kind as
    [tm_wal_appends_total{kind}], observes checkpoint sizes in the
    [tm_wal_checkpoint_ops] histogram and counts records dropped by
    {!truncate_to_checkpoint} as [tm_wal_truncated_records_total].
    {!Durable_database.create} attaches its database registry
    automatically; a log rebuilt by {!prefix} keeps the attachment. *)
val attach_metrics : t -> Tm_obs.Metrics.t -> unit

val append : t -> record -> unit

(** The record kind as a short lower-case string (metric/trace label). *)
val record_kind : record -> string

(** The retained records, oldest first (truncated records excluded). *)
val records : t -> record list

(** Number of retained records. *)
val length : t -> int

(** Cumulative records dropped by {!truncate_to_checkpoint}. *)
val truncated : t -> int

(** [prefix t n] — the stable log as it would read after a crash that
    persisted only the first [n] retained records.  The metrics
    attachment is carried over (the crash loses volatile object state,
    not the log's accounting); recovery re-attaches the new database's
    registry on top. *)
val prefix : t -> int -> t

(** [truncate_to_checkpoint t] drops every record preceding the latest
    [Checkpoint] in place, bounding log growth; the checkpoint itself and
    its tail are retained.  Returns the number of records dropped (0 when
    there is no checkpoint or nothing precedes it).  Replay of the
    truncated log equals replay of the full log: the fuzzy snapshot
    carries the committed prefix and every in-flight transaction's
    operations. *)
val truncate_to_checkpoint : t -> int

(** [replay records] folds a log into the durable outcome: the committed
    operations in commit order and the set of transactions that must be
    considered aborted (begun or operating — including those known only
    from the latest checkpoint's [live] snapshot — but with no commit
    record).  Operations of a transaction are redone only if its commit
    record is present; a transaction live at the latest checkpoint that
    commits afterwards replays its snapshot operations followed by the
    ones it logged after the checkpoint.

    With [profile], the fold is charged to the restart profiler:
    records scanned, checkpoint seeding (time and seeded ops), the scan
    itself, and loser resolution. *)
val replay :
  ?profile:Tm_obs.Recovery_profile.t -> record list -> Op.t list * Tid.Set.t

(** [max_tid records] is the highest transaction id mentioned anywhere in
    the log — by a record or by a checkpoint's [live]/[next_tid] snapshot
    — or [None] for a log that mentions none.  Recovery seeds tid
    allocation strictly above it. *)
val max_tid : record list -> Tid.t option

(** {2 Partitioned replay}

    {!plan} is the bucketing pass behind parallel recovery
    ({!Durable_database.recover}'s [~workers]): one fold over the log —
    the same fold as {!replay}, checkpoint seeding included — that
    groups committed operations by object instead of producing one
    global list, and shards the loser set by transaction id.  Objects
    are assigned to partitions by {!partition_of_object} (a hash of the
    object name), so every operation of an object lands in exactly one
    partition and partitions can be replayed concurrently with no
    shared state; the loser shards are disjoint by construction and
    their union ({!plan_losers}) equals {!replay}'s loser set.

    The plan covers an explicit record range [[plan_from, plan_to]]
    (1-based): replay semantically starts at the latest checkpoint —
    its fuzzy snapshot stands for every record before it — and ends at
    the last record.  A partition replays {e exactly} the committed
    operations the plan assigned it from that range, no more and no
    less; the coordinator checks the per-partition counts sum back to
    [plan_ops]. *)

type partition = {
  part_index : int;
  part_objects : (string * Op.t list) list;
      (** committed operations per object in commit order, sorted by
          object name (the plan is a pure function of the records) *)
  part_ops : int;  (** total committed operations across [part_objects] *)
  part_losers : Tid.Set.t;  (** this partition's shard of the loser set *)
}

type plan = {
  partitions : partition array;  (** length = [workers] *)
  plan_ops : int;  (** committed operations across all partitions *)
  plan_records : int;  (** records scanned *)
  plan_from : int;
      (** 1-based position replay effectively starts at: the latest
          checkpoint's record, or 1 when there is none *)
  plan_to : int;  (** 1-based position of the last record covered *)
  plan_next_tid : int;
      (** first tid strictly above every tid the log mentions (0 for a
          log that mentions none) — what {!max_tid} + 1 used to be,
          computed in the same pass *)
}

(** [partition_of_object ~workers name] — the partition an object's
    operations are bucketed into ([Hashtbl.hash name mod workers]:
    deterministic across runs and domains). *)
val partition_of_object : workers:int -> string -> int

(** [partition_of_tid ~workers tid] — the shard of the loser set a
    transaction id belongs to. *)
val partition_of_tid : workers:int -> Tid.t -> int

(** [plan ~workers records] — the partitioned replay plan.  [workers]
    must be >= 1; with [workers = 1] the single partition holds every
    object and the full loser set, reproducing serial replay exactly.
    With [profile], the pass charges the same phases as {!replay}
    (records scanned, checkpoint seeding, log scan, loser resolution),
    so a partitioned restart profiles like a serial one plus the
    object-replay phases. *)
val plan :
  ?profile:Tm_obs.Recovery_profile.t -> workers:int -> record list -> plan

(** The union of every partition's loser shard (= {!replay}'s losers). *)
val plan_losers : plan -> Tid.Set.t

(** [fuzzy_checkpoint ?next_tid records] computes the checkpoint snapshot
    of [records]: committed operations in commit order, the operation log
    of every unfinished transaction, and a high-water mark covering both
    every tid in the log and the caller's allocator position [next_tid]
    (default 0 — callers without an allocator rely on the log scan). *)
val fuzzy_checkpoint : ?next_tid:int -> record list -> checkpoint

(** Binary record framing for the on-disk log — a {e versioned},
    forward-compatible contract (docs/WAL_FORMAT.md is the generated
    spec).

    Each record is one frame.  Two frame formats are readable:

    - {b v1}: 2-byte magic, version byte [0x01], 4-byte little-endian
      payload length, 4-byte CRC32 of the payload, payload;
    - {b v2}: 2-byte magic, version byte [0x02], 2-byte little-endian
      shard id, then length/CRC/payload as in v1.

    The payload encoding (record tag + body) is identical across
    versions, so version negotiation is purely per-frame header
    dispatch: a decoded v1 log replays bit-for-bit to the same state it
    always did.  New frames are written as {!write_version} (v2), so a
    log loaded from an old binary grows as a readable mixed-version log
    until {!Disk_wal.checkpoint_truncate} rewrites it pure-v2.

    {!Codec.decode_all} never guesses: a frame that fails its CRC (or
    any other check) with {e no} intact frame after it is a {e torn
    tail} — dropped and reported in [torn], recovery proceeds treating
    it as crash loss — while a failing frame {e followed} by an intact
    one proves bytes beyond the damage were durably written, so it is
    {e interior corruption} and decoding returns an error carrying the
    byte offset and (when readable) the frame's version rather than
    silently skipping records. *)
module Codec : sig
  val v1 : int
  val v2 : int

  (** The version every new frame is encoded with (currently {!v2}). *)
  val write_version : int

  (** Versions this binary decodes ([[v1; v2]], ascending). *)
  val supported_versions : int list

  val is_supported : int -> bool

  (** [header_size v] — frame-header bytes (before the payload) of a
      version-[v] frame: 11 for v1, 13 for v2.  Raises
      [Invalid_argument] on an unsupported version. *)
  val header_size : int -> int

  (** The smallest supported header — what a scanner needs before it can
      read the version byte and dispatch. *)
  val min_header_size : int

  (** The two frame-magic bytes, exposed for forensic scanners
      ({!Wal_inspect}, {!Disk_wal}'s compaction-journal search) that
      anchor on them. *)
  val magic0 : char

  val magic1 : char

  (** CRC-32 (IEEE), exposed for tests. *)
  val crc32 : string -> int32

  (** [encode r] is the full frame (header + payload) for [r], encoded
      as [version] (default {!write_version}).  [shard] (default 0, v2
      only) is the frame's shard id; encoding v1 demands [shard = 0].
      Encoding as {!v1} exists for the migration tests and the v1-log
      harvest — production writes are always {!write_version}.  Record
      kinds that postdate the v1 header ([Prepare], [Decision]) travel
      only under v2 frames; encoding them as v1 raises
      [Invalid_argument]. *)
  val encode : ?version:int -> ?shard:int -> record -> string

  (** [v2_only_record r] — does [r] require a v2 frame?  True exactly
      for the record kinds introduced after the v1 header was frozen
      ([Prepare], [Decision]). *)
  val v2_only_record : record -> bool

  val encode_all : ?version:int -> ?shard:int -> record list -> string

  type corruption = {
    offset : int;  (** byte offset of the unreadable frame *)
    version : int option;
        (** the frame's version byte when it was readable — including a
            foreign (unsupported) version, so a reader can say exactly
            which format it refused; [None] when the damage precedes
            the version byte (bad magic, truncated header) *)
    reason : string;
  }

  val pp_corruption : Format.formatter -> corruption -> unit

  (** A parsed, validated frame header — the per-frame version
      negotiation point every reader dispatches through. *)
  type header = {
    h_version : int;
    h_shard : int;  (** 0 for v1 frames *)
    h_payload_len : int;
    h_size : int;  (** header bytes before the payload *)
  }

  (** [read_header s pos] parses and validates the frame header at
      [pos] (magic, supported version, plausible payload length — no
      CRC).  Exposed for scanners that walk frames by extent
      ({!Wal_inspect}'s histograms, {!Disk_wal}'s journal search and
      mixed-version offset walk). *)
  val read_header : string -> int -> (header, corruption) result

  (** [decode_frame s pos] decodes the single frame starting at byte
      [pos]: [Ok (record, next_pos)] or the corruption that makes it
      unreadable.  The forensic walker ({!Wal_inspect}) uses this to
      attribute each record to its byte extent.  With [profile], CRC
      verification is charged to the [Checksum_verify] phase. *)
  val decode_frame :
    ?profile:Tm_obs.Recovery_profile.t ->
    string ->
    int ->
    (record * int, corruption) result

  (** [valid_frame_after s pos] — is there an intact frame anywhere at or
      after [pos]?  The resynchronisation scan behind the torn-tail /
      interior-corruption distinction.  The cursor anchors on the magic
      bytes and rejects implausible headers before paying for a CRC, so
      damaged regions are skipped at search speed rather than one full
      decode attempt per byte.  [budget] (default 16 MiB) caps the
      payload bytes spent CRC-probing plausible candidates; exhausting
      it returns [true] — the {e conservative} verdict (interior
      corruption, decoding refuses) — never a silent torn-tail drop. *)
  val valid_frame_after : ?budget:int -> string -> int -> bool

  type decoded = {
    records : record list;
    clean_bytes : int;  (** length of the intact prefix *)
    torn : corruption option;
        (** a trailing torn/corrupt frame that was dropped as crash loss *)
  }

  (** [decode_all s] — [Ok] with the decoded records (and possibly a
      truncated torn tail), or [Error] on interior corruption.  With
      [profile], frame decode and CRC verification are charged as
      separate phases, and decoded frames / torn bytes are counted.

      With [workers > 1] and a large enough image, a cheap header-only
      walk first locates every frame; if the walk covers the image
      exactly, the CRC verification and payload decode of the frames is
      spread over that many domains.  Any anomaly — a torn tail, a
      corrupt frame, an implausible header — falls back to the serial
      decoder, so torn/interior verdicts always come from the same code
      path regardless of [workers].  (In the parallel case the whole
      barrier is charged to the frame-decode phase: CRC time is spent
      inside worker domains, which do not share the profile.) *)
  val decode_all :
    ?profile:Tm_obs.Recovery_profile.t ->
    ?workers:int ->
    string ->
    (decoded, corruption) result
end
