module Metrics = Tm_obs.Metrics

exception Transient of string

(* A backend is a record of closures, like {!Recovery}: each constructor
   closes over its own state. *)
type t = {
  name : string;
  write_at : pos:int -> string -> unit;
  force : unit -> unit;
  read_all : unit -> string;
  size : unit -> int;
  close : unit -> unit;
  fault_count : unit -> int;
  attach : Metrics.t -> unit;
}

let name t = t.name
let write_at t ~pos data = t.write_at ~pos data
let force t = t.force ()
let read_all t = t.read_all ()
let size t = t.size ()
let close t = t.close ()
let fault_count t = t.fault_count ()
let attach_metrics t reg = t.attach reg

let check_pos ~who ~pos ~size =
  if pos < 0 || pos > size then
    invalid_arg (Fmt.str "Storage.write_at(%s): pos %d outside [0,%d]" who pos size)

let of_string ?(name = "memory") contents =
  let contents = ref contents in
  {
    name;
    write_at =
      (fun ~pos data ->
        check_pos ~who:name ~pos ~size:(String.length !contents);
        contents := String.sub !contents 0 pos ^ data);
    force = (fun () -> ());
    read_all = (fun () -> !contents);
    size = (fun () -> String.length !contents);
    close = (fun () -> ());
    fault_count = (fun () -> 0);
    attach = (fun _ -> ());
  }

let memory ?name () = of_string ?name ""

let file path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  (* The OS can interrupt any of these mid-call; those are the genuine
     transient errors a production log retries. *)
  let io f =
    try f () with
    | Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), fn, _) ->
        raise (Transient (Fmt.str "%s: interrupted" fn))
  in
  let write_all data =
    let b = Bytes.of_string data in
    let rec go off =
      if off < Bytes.length b then
        go (off + io (fun () -> Unix.write fd b off (Bytes.length b - off)))
    in
    go 0
  in
  let file_size () = (Unix.fstat fd).Unix.st_size in
  {
    name = path;
    write_at =
      (fun ~pos data ->
        check_pos ~who:path ~pos ~size:(file_size ());
        ignore (io (fun () -> Unix.lseek fd pos Unix.SEEK_SET));
        write_all data;
        io (fun () -> Unix.ftruncate fd (pos + String.length data)));
    force = (fun () -> io (fun () -> Unix.fsync fd));
    read_all =
      (fun () ->
        let len = file_size () in
        let b = Bytes.create len in
        ignore (io (fun () -> Unix.lseek fd 0 Unix.SEEK_SET));
        let rec go off =
          if off < len then
            match io (fun () -> Unix.read fd b off (len - off)) with
            | 0 -> Bytes.sub_string b 0 off  (* concurrent truncation *)
            | n -> go (off + n)
          else Bytes.to_string b
        in
        go 0);
    size = file_size;
    close = (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
    fault_count = (fun () -> 0);
    attach = (fun _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Simulated device latency.                                           *)

let slow ?(write_delay = 0.) ?(force_delay = 0.001) inner =
  let pause d = if d > 0. then Thread.delay d in
  {
    inner with
    name = inner.name ^ "+slow";
    write_at = (fun ~pos data -> pause write_delay; inner.write_at ~pos data);
    force = (fun () -> pause force_delay; inner.force ());
  }

(* ------------------------------------------------------------------ *)
(* Observation hooks (tests asserting write/force ordering).           *)

let probe ?(on_write = fun ~pos:_ _ -> ()) ?(on_force = fun () -> ()) inner =
  {
    inner with
    name = inner.name ^ "+probe";
    write_at =
      (fun ~pos data ->
        on_write ~pos (String.length data);
        inner.write_at ~pos data);
    force =
      (fun () ->
        on_force ();
        inner.force ());
  }

(* ------------------------------------------------------------------ *)
(* Fault injection.                                                    *)

type fault_config = {
  torn_write : float;
  write_error : float;
  force_error : float;
  bit_flip : float;
  short_read : float;
}

let no_faults =
  { torn_write = 0.; write_error = 0.; force_error = 0.; bit_flip = 0.; short_read = 0. }

let write_faults = { no_faults with torn_write = 0.1; write_error = 0.08; force_error = 0.08 }

let faulty ~seed cfg inner =
  let rng = Random.State.make [| seed; 0x57a9 |] in
  let metrics = ref None in
  let faults = ref 0 in
  let inject kind =
    incr faults;
    match !metrics with
    | None -> ()
    | Some reg ->
        Metrics.Counter.incr
          (Metrics.counter reg "tm_storage_faults_total"
             ~labels:[ ("backend", inner.name); ("kind", kind) ])
  in
  let hit p = p > 0. && Random.State.float rng 1. < p in
  let flip_bit data =
    let b = Bytes.of_string data in
    let i = Random.State.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Random.State.int rng 8)));
    Bytes.to_string b
  in
  {
    name = inner.name ^ "+faults";
    write_at =
      (fun ~pos data ->
        if hit cfg.write_error then begin
          inject "write_error";
          raise (Transient "injected: write error")
        end
        else if String.length data > 1 && hit cfg.torn_write then begin
          inject "torn_write";
          (* A strict prefix reaches the device before the failure; the
             retry must overwrite it by rewriting at the same position. *)
          let torn = 1 + Random.State.int rng (String.length data - 1) in
          inner.write_at ~pos (String.sub data 0 torn);
          raise (Transient (Fmt.str "injected: torn write (%d/%d bytes)" torn (String.length data)))
        end
        else inner.write_at ~pos data);
    force =
      (fun () ->
        if hit cfg.force_error then begin
          inject "force_error";
          raise (Transient "injected: force error")
        end
        else inner.force ());
    read_all =
      (fun () ->
        let data = inner.read_all () in
        if String.length data > 0 && hit cfg.short_read then begin
          inject "short_read";
          String.sub data 0 (Random.State.int rng (String.length data))
        end
        else if String.length data > 0 && hit cfg.bit_flip then begin
          inject "bit_flip";
          flip_bit data
        end
        else data);
    size = inner.size;
    close = inner.close;
    fault_count = (fun () -> !faults);
    attach =
      (fun reg ->
        metrics := Some reg;
        inner.attach reg);
  }
