open Tm_core
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace

type t = {
  db : Database.t;
  wal : Wal.t;
  begun : (Tid.t, unit) Hashtbl.t;
}

let create ?record_history ?first_tid ~wal objs =
  let db = Database.create ?record_history ?first_tid objs in
  Wal.attach_metrics wal (Database.metrics db);
  { db; wal; begun = Hashtbl.create 16 }

let database t = t.db
let begin_txn t = Database.begin_txn t.db

let log t tid r =
  Wal.append t.wal r;
  Database.emit_trace t.db ~tid (Trace.Wal_append { record = Wal.record_kind r })

let invoke ?choose t tid ~obj inv =
  let outcome = Database.invoke ?choose t.db tid ~obj inv in
  (match outcome with
  | Atomic_object.Executed op ->
      if not (Hashtbl.mem t.begun tid) then begin
        Hashtbl.add t.begun tid ();
        log t tid (Wal.Begin tid)
      end;
      log t tid (Wal.Operation (tid, op))
  | Atomic_object.Blocked _ | Atomic_object.No_response -> ());
  outcome

let emit_system db kind =
  match Database.trace db with Some tr -> Trace.emit_system tr kind | None -> ()

let checkpoint t =
  (* Fuzzy: snapshot the replay state of the log itself — committed
     operations in true global commit order plus the per-transaction logs
     of in-flight transactions — so the pre-checkpoint log segment can be
     truncated without losing losers or the early operations of a
     transaction that commits later.  The allocator position rides along
     as the tid high-water mark. *)
  let cp =
    Wal.fuzzy_checkpoint ~next_tid:(Database.next_tid t.db) (Wal.records t.wal)
  in
  Wal.append t.wal (Wal.Checkpoint cp);
  emit_system t.db (Trace.Checkpoint { ops = List.length cp.Wal.committed })

(* Validate at every object (a no-op for locking objects): the shared
   first step of both the one-shot commit and the 2PC prepare. *)
let validate_all t tid =
  List.find_map
    (fun o ->
      match Atomic_object.validate o tid with
      | Ok () -> None
      | Error (mine, theirs) -> Some (Atomic_object.name o, mine, theirs))
    (Database.objects t.db)

(* Only transactions that logged a Begin have anything to undo in the
   log; an Abort for an unlogged transaction would be noise (and
   inflate tm_wal_appends_total{kind="abort"}). *)
let log_abort_if_begun t tid =
  if Hashtbl.mem t.begun tid then begin
    log t tid (Wal.Abort tid);
    Hashtbl.remove t.begun tid
  end

let try_commit_nowait t tid =
  (* Stage 1 of the commit pipeline: validate first (nothing logged on
     failure), append the single commit record — fixing the
     transaction's place in the durable commit order at every object —
     and apply.  Durability is NOT awaited here: the caller holds
     whatever engine lock serialises this stage and must release it
     before parking on the watermark ({!wait_durable}), so the fsync
     never runs under the lock.  Applying before durability is sound:
     any transaction that reads the applied state commits {e later} in
     the log, so a crash that loses this commit record also loses every
     dependent one (the log's prefix property). *)
  match validate_all t tid with
  | Some _ as e ->
      log_abort_if_begun t tid;
      Database.abort t.db tid;
      (match e with Some x -> Error x | None -> assert false)
  | None ->
      log t tid (Wal.Commit tid);
      let lsn = Wal.last_lsn t.wal in
      Hashtbl.remove t.begun tid;
      Database.commit t.db tid;
      Ok lsn

(* --- 2PC participant half: prepare / finish, split out of the
   one-shot path above for {!Sharded_database}. *)

let prepare t tid =
  (* Phase 1 on a participant shard: validate exactly as a local commit
     would, then log the Prepare — the promise that every operation of
     the transaction on this shard precedes it in the log, so a
     recovered shard holding the Prepare can install the transaction in
     full once the global decision is known.  The caller must force the
     returned LSN before voting yes.  Nothing is applied yet: the
     transaction stays live (locks held, optimistic intentions parked)
     until {!finish_prepared}. *)
  match validate_all t tid with
  | Some _ as e ->
      log_abort_if_begun t tid;
      Database.abort t.db tid;
      (match e with Some x -> Error x | None -> assert false)
  | None ->
      log t tid (Wal.Prepare tid);
      Ok (Wal.last_lsn t.wal)

let finish_prepared t tid ~commit =
  (* Phase 2: the global decision is in — log the local outcome record
     and apply it.  The append is {e lazy} durability: if a crash loses
     it, the shard recovers the transaction as in-doubt (its Prepare
     survives, forced) and {!Sharded_database.recover} re-resolves it
     from the surviving decision evidence, appending the same outcome
     again — this function and recovery are idempotent completions of
     the same protocol. *)
  if commit then begin
    log t tid (Wal.Commit tid);
    let lsn = Wal.last_lsn t.wal in
    Hashtbl.remove t.begun tid;
    Database.commit t.db tid;
    lsn
  end
  else begin
    log_abort_if_begun t tid;
    Database.abort t.db tid;
    Wal.last_lsn t.wal
  end

let wait_durable t tid lsn =
  (* Stage 2: park on the flushed-LSN watermark (the group-commit
     combiner in {!Wal.force_upto}); the commit may be acknowledged
     once the watermark passes the commit record's LSN. *)
  Database.emit_trace t.db ~tid (Trace.Wal_flush_wait { upto = lsn });
  Wal.force_upto t.wal lsn;
  Database.emit_trace t.db ~tid (Trace.Durable { lsn })

let try_commit t tid =
  match try_commit_nowait t tid with
  | Error _ as e -> e
  | Ok lsn ->
      wait_durable t tid lsn;
      Ok ()

let flush t =
  Wal.force t.wal;
  emit_system t.db Trace.Wal_force

let abort t tid =
  if Hashtbl.mem t.begun tid then begin
    log t tid (Wal.Abort tid);
    Hashtbl.remove t.begun tid
  end;
  Database.abort t.db tid

(* One partition's replay outcome.  [po_error] carries the position (in
   [rebuild]'s object order) of the first failing object so the
   coordinator can report the same error a serial replay would have. *)
type partition_outcome = {
  po_objects : int;
  po_ops : int;  (* committed operations actually replayed *)
  po_wall : float;
  po_error : (int * Recovery.error) option;
}

let recover ?trace ?profile ?(workers = 1) ~wal ~rebuild () =
  let module Profile = Tm_obs.Recovery_profile in
  if workers < 1 then
    invalid_arg "Durable_database.recover: workers must be >= 1";
  let recs = Wal.records wal in
  (* One bucketing pass replaces the old replay + per-object filter +
     max_tid rescan: committed operations land pre-grouped by object (so
     restoring is O(committed), not O(objects x committed)), the loser
     set arrives sharded, and the tid high-water mark rides along. *)
  let plan = Wal.plan ?profile ~workers recs in
  let losers = Wal.plan_losers plan in
  (* Post-crash transactions must allocate above every tid the log still
     mentions: a reused tid would merge a new transaction's records with
     a pre-crash loser's on the next replay. *)
  let first_tid = plan.Wal.plan_next_tid in
  let objs = rebuild () in
  (* Assign each rebuilt object to its partition, keeping [objs] order
     within a partition (and remembering global order for error
     selection).  Objects the log never mentions replay empty. *)
  let entries = Array.make workers [] in
  List.iteri
    (fun i o ->
      let name = Atomic_object.name o in
      let p = Wal.partition_of_object ~workers name in
      let ops =
        match
          List.assoc_opt name plan.Wal.partitions.(p).Wal.part_objects
        with
        | Some ops -> ops
        | None -> []
      in
      entries.(p) <- (i, o, name, ops) :: entries.(p))
    objs;
  Array.iteri (fun p l -> entries.(p) <- List.rev l) entries;
  (* Replay one partition: restore its objects in order, stopping at the
     first failure (as the serial loop did).  [prof] is [Some] only on
     the serial path — a profile is never shared across domains. *)
  let replay_partition prof p =
    let started =
      match prof with
      | Some pr -> Profile.now pr
      | None -> Unix.gettimeofday ()
    in
    let elapsed () =
      (match prof with
      | Some pr -> Profile.now pr
      | None -> Unix.gettimeofday ())
      -. started
    in
    let rec go ops_done = function
      | [] ->
          {
            po_objects = List.length entries.(p);
            po_ops = ops_done;
            po_wall = elapsed ();
            po_error = None;
          }
      | (i, o, name, ops) :: rest -> (
          let restore () = Atomic_object.restore o ops in
          let result =
            match prof with
            | None -> restore ()
            | Some pr ->
                Profile.note_object_replay pr ~obj:name (List.length ops);
                Profile.time pr Profile.Object_replay restore
          in
          match result with
          | Ok () -> go (ops_done + List.length ops) rest
          | Error e ->
              {
                po_objects = List.length entries.(p);
                po_ops = ops_done;
                po_wall = elapsed ();
                po_error = Some (i, e);
              })
    in
    go 0 entries.(p)
  in
  let outcomes =
    if workers = 1 then [| replay_partition profile 0 |]
    else begin
      (* The worker pool: one domain per partition, merged at the join
         barrier.  Partitions share no mutable state — each object, its
         operation list and the restore path are confined to one domain
         — so the only synchronisation is the join itself. *)
      let run () =
        let domains =
          Array.init workers (fun p ->
              Domain.spawn (fun () -> replay_partition None p))
        in
        Array.map Domain.join domains
      in
      let outcomes =
        match profile with
        | None -> run ()
        | Some pr -> Profile.time pr Profile.Object_replay run
      in
      (* Per-object accounting happens after the barrier (the profile is
         single-threaded by design). *)
      (match profile with
      | None -> ()
      | Some pr ->
          Array.iter
            (List.iter (fun (_, _, name, ops) ->
                 Profile.note_object_replay pr ~obj:name (List.length ops)))
            entries);
      outcomes
    end
  in
  (match profile with
  | None -> ()
  | Some pr ->
      Profile.note_workers pr workers;
      Array.iteri
        (fun p o ->
          Profile.note_partition pr ~index:p ~objects:o.po_objects
            ~ops:o.po_ops ~wall:o.po_wall)
        outcomes);
  (* Report the failure of the earliest object in [rebuild] order, like
     the serial loop — whichever partition it was replayed in. *)
  let failed =
    Array.fold_left
      (fun acc o ->
        match (o.po_error, acc) with
        | None, acc -> acc
        | (Some _ as e), None -> e
        | Some (i, _), Some (j, _) when i < j -> o.po_error
        | Some _, acc -> acc)
      None outcomes
  in
  match failed with
  | Some (_, e) -> Error e
  | None ->
      (* The LSN-bounded contract: each partition replayed exactly the
         operations the plan assigned it from [plan_from, plan_to] — no
         more, no less — so the per-partition counts must sum back to
         the operations assigned to the rebuilt objects. *)
      let assigned =
        Array.fold_left
          (fun n l ->
            List.fold_left (fun n (_, _, _, ops) -> n + List.length ops) n l)
          0 entries
      in
      let replayed_by_partition =
        Array.fold_left (fun n o -> n + o.po_ops) 0 outcomes
      in
      assert (assigned = replayed_by_partition);
      let t = create ~first_tid ~wal objs in
      (match trace with None -> () | Some tr -> Database.set_trace t.db tr);
      let reg = Database.metrics t.db in
      Metrics.Counter.incr ~by:plan.Wal.plan_ops
        (Metrics.counter reg "tm_recovery_replayed_ops_total");
      Metrics.Counter.incr ~by:(Tid.Set.cardinal losers)
        (Metrics.counter reg "tm_recovery_loser_txns_total");
      (match profile with
      | None -> ()
      | Some p ->
          (* The restart is complete: stamp the end-to-end wall, publish
             the tm_recovery_* family into the recovered database's
             registry, and emit one trace span per profiled phase. *)
          Profile.finish p;
          Profile.export p reg;
          List.iter
            (fun (phase, wall_us, items) ->
              emit_system t.db (Trace.Recovery_phase { phase; wall_us; items }))
            (Profile.spans p));
      emit_system t.db
        (Trace.Crash_recover
           { replayed = plan.Wal.plan_ops; losers = Tid.Set.cardinal losers });
      Ok (t, losers)
