open Tm_core
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace

type t = {
  db : Database.t;
  wal : Wal.t;
  begun : (Tid.t, unit) Hashtbl.t;
}

let create ?record_history ?first_tid ~wal objs =
  let db = Database.create ?record_history ?first_tid objs in
  Wal.attach_metrics wal (Database.metrics db);
  { db; wal; begun = Hashtbl.create 16 }

let database t = t.db
let begin_txn t = Database.begin_txn t.db

let log t tid r =
  Wal.append t.wal r;
  Database.emit_trace t.db ~tid (Trace.Wal_append { record = Wal.record_kind r })

let invoke ?choose t tid ~obj inv =
  let outcome = Database.invoke ?choose t.db tid ~obj inv in
  (match outcome with
  | Atomic_object.Executed op ->
      if not (Hashtbl.mem t.begun tid) then begin
        Hashtbl.add t.begun tid ();
        log t tid (Wal.Begin tid)
      end;
      log t tid (Wal.Operation (tid, op))
  | Atomic_object.Blocked _ | Atomic_object.No_response -> ());
  outcome

let emit_system db kind =
  match Database.trace db with Some tr -> Trace.emit_system tr kind | None -> ()

let checkpoint t =
  (* Fuzzy: snapshot the replay state of the log itself — committed
     operations in true global commit order plus the per-transaction logs
     of in-flight transactions — so the pre-checkpoint log segment can be
     truncated without losing losers or the early operations of a
     transaction that commits later.  The allocator position rides along
     as the tid high-water mark. *)
  let cp =
    Wal.fuzzy_checkpoint ~next_tid:(Database.next_tid t.db) (Wal.records t.wal)
  in
  Wal.append t.wal (Wal.Checkpoint cp);
  emit_system t.db (Trace.Checkpoint { ops = List.length cp.Wal.committed })

let try_commit_nowait t tid =
  (* Stage 1 of the commit pipeline: validate first (nothing logged on
     failure), append the single commit record — fixing the
     transaction's place in the durable commit order at every object —
     and apply.  Durability is NOT awaited here: the caller holds
     whatever engine lock serialises this stage and must release it
     before parking on the watermark ({!wait_durable}), so the fsync
     never runs under the lock.  Applying before durability is sound:
     any transaction that reads the applied state commits {e later} in
     the log, so a crash that loses this commit record also loses every
     dependent one (the log's prefix property). *)
  let failed =
    List.find_map
      (fun o ->
        match Atomic_object.validate o tid with
        | Ok () -> None
        | Error (mine, theirs) -> Some (Atomic_object.name o, mine, theirs))
      (Database.objects t.db)
  in
  match failed with
  | Some _ as e ->
      (* Only transactions that logged a Begin have anything to undo in
         the log; an Abort for an unlogged transaction would be noise
         (and inflate tm_wal_appends_total{kind="abort"}). *)
      if Hashtbl.mem t.begun tid then begin
        log t tid (Wal.Abort tid);
        Hashtbl.remove t.begun tid
      end;
      Database.abort t.db tid;
      (match e with Some x -> Error x | None -> assert false)
  | None ->
      log t tid (Wal.Commit tid);
      let lsn = Wal.last_lsn t.wal in
      Hashtbl.remove t.begun tid;
      Database.commit t.db tid;
      Ok lsn

let wait_durable t tid lsn =
  (* Stage 2: park on the flushed-LSN watermark (the group-commit
     combiner in {!Wal.force_upto}); the commit may be acknowledged
     once the watermark passes the commit record's LSN. *)
  Database.emit_trace t.db ~tid (Trace.Wal_flush_wait { upto = lsn });
  Wal.force_upto t.wal lsn;
  Database.emit_trace t.db ~tid (Trace.Durable { lsn })

let try_commit t tid =
  match try_commit_nowait t tid with
  | Error _ as e -> e
  | Ok lsn ->
      wait_durable t tid lsn;
      Ok ()

let flush t =
  Wal.force t.wal;
  emit_system t.db Trace.Wal_force

let abort t tid =
  if Hashtbl.mem t.begun tid then begin
    log t tid (Wal.Abort tid);
    Hashtbl.remove t.begun tid
  end;
  Database.abort t.db tid

let recover ?trace ?profile ~wal ~rebuild () =
  let module Profile = Tm_obs.Recovery_profile in
  let recs = Wal.records wal in
  let committed, losers = Wal.replay ?profile recs in
  (* Post-crash transactions must allocate above every tid the log still
     mentions: a reused tid would merge a new transaction's records with
     a pre-crash loser's on the next replay. *)
  let first_tid =
    match Wal.max_tid recs with Some m -> Tid.to_int m + 1 | None -> 0
  in
  let objs = rebuild () in
  let failed =
    List.find_map
      (fun o ->
        let mine =
          List.filter
            (fun (op : Op.t) -> String.equal op.obj (Atomic_object.name o))
            committed
        in
        let restore () = Atomic_object.restore o mine in
        let result =
          match profile with
          | None -> restore ()
          | Some p ->
              Profile.note_object_replay p ~obj:(Atomic_object.name o)
                (List.length mine);
              Profile.time p Profile.Object_replay restore
        in
        match result with Ok () -> None | Error e -> Some e)
      objs
  in
  match failed with
  | Some e -> Error e
  | None ->
      let t = create ~first_tid ~wal objs in
      (match trace with None -> () | Some tr -> Database.set_trace t.db tr);
      let reg = Database.metrics t.db in
      Metrics.Counter.incr ~by:(List.length committed)
        (Metrics.counter reg "tm_recovery_replayed_ops_total");
      Metrics.Counter.incr ~by:(Tid.Set.cardinal losers)
        (Metrics.counter reg "tm_recovery_loser_txns_total");
      (match profile with
      | None -> ()
      | Some p ->
          (* The restart is complete: stamp the end-to-end wall, publish
             the tm_recovery_* family into the recovered database's
             registry, and emit one trace span per profiled phase. *)
          Profile.finish p;
          Profile.export p reg;
          List.iter
            (fun (phase, wall_us, items) ->
              emit_system t.db (Trace.Recovery_phase { phase; wall_us; items }))
            (Profile.spans p));
      emit_system t.db
        (Trace.Crash_recover
           { replayed = List.length committed; losers = Tid.Set.cardinal losers });
      Ok (t, losers)
