open Tm_core
module Metrics = Tm_obs.Metrics

type kind =
  | UIP
  | DU

let pp_kind ppf = function
  | UIP -> Fmt.string ppf "update-in-place"
  | DU -> Fmt.string ppf "deferred-update"

let kind_of_string = function
  | "uip" | "UIP" -> Some UIP
  | "du" | "DU" -> Some DU
  | _ -> None

(* Failures on the recovery path (replaying a log into a fresh manager)
   are typed, not [Invalid_argument]: recovery callers — the crash
   harness, the durable database — must be able to report a violation
   with its object rather than pattern-match exception strings. *)
type error = {
  obj : string;
  reason : string;
}

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.obj e.reason

(* The spec's state type is abstract; each manager is a record of closures
   built in a scope where the module is unpacked. *)
type t = {
  kind : kind;
  responses : Tid.t -> Op.invocation -> Value.t list;
  record : Tid.t -> Op.t -> unit;
  commit : Tid.t -> unit;
  abort : Tid.t -> unit;
  restore : Op.t list -> (unit, error) result;
  committed_ops : unit -> Op.t list;
  set_metrics : Metrics.t -> unit;
}

let kind t = t.kind
let responses t = t.responses
let record t = t.record
let commit t = t.commit
let abort t = t.abort
let restore t = t.restore
let committed_ops t = t.committed_ops ()
let attach_metrics t reg = t.set_metrics reg

(* Per-object undo/redo accounting; every call is on a commit/abort path,
   never per recorded operation. *)
let count_ops meta name ~obj ~mode n =
  match !meta with
  | None -> ()
  | Some reg ->
      let labels = ("obj", obj) :: (match mode with None -> [] | Some m -> [ ("mode", m) ]) in
      Metrics.Counter.incr ~by:n (Metrics.counter reg name ~labels)

(* Distinct legal responses to [inv] from a state-set, each of which keeps
   the overall sequence legal by construction. *)
let candidate_responses (type s) (module S : Spec.S with type state = s) states inv =
  List.concat_map (fun st -> List.map fst (S.respond st inv)) states
  |> List.sort_uniq Value.compare

let create_uip ?inverse (Spec.Packed (module S) as spec) : t =
  let module E = Explore.Make (S) in
  let obj = Spec.name spec in
  let meta = ref None in
  let current = ref E.initial_set in
  (* Execution-order log of operations by non-aborted transactions; the
     current state-set always equals the initial set stepped through it. *)
  let log = ref [] (* newest first *) in
  let per_txn : (Tid.t, Op.t list) Hashtbl.t = Hashtbl.create 16 in
  let committed_log = ref [] (* newest first *) in
  let txn_ops tid = Option.value (Hashtbl.find_opt per_txn tid) ~default:[] in
  let responses _tid inv = candidate_responses (module S) (E.States.elements !current) inv in
  let record tid op =
    let next = E.step !current op in
    if E.States.is_empty next then
      invalid_arg (Fmt.str "Recovery.record(UIP): illegal operation %a" Op.pp op);
    current := next;
    log := op :: !log;
    Hashtbl.replace per_txn tid (op :: txn_ops tid)
  in
  let commit tid =
    let mine = txn_ops tid in
    count_ops meta "tm_recovery_committed_ops_total" ~obj ~mode:None (List.length mine);
    committed_log := mine @ !committed_log;
    Hashtbl.remove per_txn tid
  in
  (* Undo by compensation: apply the inverses of the transaction's
     operations, newest first, at the current end of the log.  Only used
     when the type registers inverses (abelian updates); the replay path
     below is the general, always-correct form, and the two are checked
     equivalent by property tests. *)
  let compensation mine =
    match inverse with
    | None -> None
    | Some inverse ->
        List.fold_left
          (fun acc op ->
            match acc, inverse op with
            | Some done_, Some undo -> Some (done_ @ undo)
            | _, _ -> None)
          (Some []) mine
  in
  let abort tid =
    let mine = txn_ops tid in
    Hashtbl.remove per_txn tid;
    log := List.filter (fun op -> not (List.memq op mine)) !log;
    let replayed () = E.after E.initial_set (List.rev !log) in
    let undone mode =
      count_ops meta "tm_recovery_undone_ops_total" ~obj ~mode:(Some mode)
        (List.length mine)
    in
    match compensation mine with
    | None ->
        undone "replay";
        current := replayed ()
    | Some undo ->
        let next = E.after !current undo in
        (* Fall back to replay if a compensating operation is not legal
           here (cannot happen for well-chosen inverses, but safety wins). *)
        if E.States.is_empty next then begin
          undone "replay";
          current := replayed ()
        end
        else begin
          undone "inverse";
          current := next
        end
  in
  (* Install an already-committed sequence into a fresh manager: replayed
     work belongs to no live transaction, so it goes straight into the
     log and committed log (no per-transaction bookkeeping, no tid). *)
  let restore ops =
    if !log <> [] || !committed_log <> [] || Hashtbl.length per_txn > 0 then
      Error { obj; reason = "restore(UIP): manager not fresh" }
    else begin
      let next = E.after E.initial_set ops in
      if ops <> [] && E.States.is_empty next then
        Error { obj; reason = "restore(UIP): replayed sequence not legal" }
      else begin
        current := next;
        log := List.rev ops;
        committed_log := List.rev ops;
        Ok ()
      end
    end
  in
  let committed_ops () = List.rev !committed_log in
  let set_metrics reg = meta := Some reg in
  { kind = UIP; responses; record; commit; abort; restore; committed_ops; set_metrics }

let create_du (Spec.Packed (module S) as spec) : t =
  let module E = Explore.Make (S) in
  let obj = Spec.name spec in
  let meta = ref None in
  let base = ref E.initial_set in
  let intentions : (Tid.t, Op.t list) Hashtbl.t = Hashtbl.create 16 in
  let committed_log = ref [] (* newest first *) in
  let txn_ops tid = Option.value (Hashtbl.find_opt intentions tid) ~default:[] in
  (* A transaction's view is base (committed, in commit order) plus its own
     intentions — recomputed per call because the base advances whenever
     any other transaction commits. *)
  let view tid = E.after !base (List.rev (txn_ops tid)) in
  let responses tid inv = candidate_responses (module S) (E.States.elements (view tid)) inv in
  let record tid op =
    if E.States.is_empty (E.step (view tid) op) then
      invalid_arg (Fmt.str "Recovery.record(DU): illegal operation %a" Op.pp op);
    Hashtbl.replace intentions tid (op :: txn_ops tid)
  in
  let commit tid =
    let ops = List.rev (txn_ops tid) in
    let next = E.after !base ops in
    if ops <> [] && E.States.is_empty next then
      invalid_arg
        (Fmt.str
           "Recovery.commit(DU): intentions list of %a no longer applies \
            (conflict relation too weak)"
           Tid.pp tid);
    base := next;
    count_ops meta "tm_recovery_committed_ops_total" ~obj ~mode:None (List.length ops);
    committed_log := txn_ops tid @ !committed_log;
    Hashtbl.remove intentions tid
  in
  let abort tid =
    count_ops meta "tm_recovery_discarded_ops_total" ~obj ~mode:None
      (List.length (txn_ops tid));
    Hashtbl.remove intentions tid
  in
  let restore ops =
    if !committed_log <> [] || Hashtbl.length intentions > 0 then
      Error { obj; reason = "restore(DU): manager not fresh" }
    else begin
      let next = E.after E.initial_set ops in
      if ops <> [] && E.States.is_empty next then
        Error { obj; reason = "restore(DU): replayed sequence not legal" }
      else begin
        base := next;
        committed_log := List.rev ops;
        Ok ()
      end
    end
  in
  let committed_ops () = List.rev !committed_log in
  let set_metrics reg = meta := Some reg in
  { kind = DU; responses; record; commit; abort; restore; committed_ops; set_metrics }

let create ?inverse kind spec =
  match kind with
  | UIP -> create_uip ?inverse spec
  | DU -> create_du spec
