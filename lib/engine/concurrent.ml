open Tm_core
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace

type t = {
  db : Database.t;
  lock : Mutex.t;
  changed : Condition.t;
  (* Transactions condemned by another thread's deadlock detection; they
     notice at their next wake-up or engine call. *)
  doomed : (Tid.t, unit) Hashtbl.t;
  (* Previously these were swallowed internally: every deadlock victim
     and every transparent [with_txn] retry is now counted in the
     database registry (shared metric names with the sim scheduler, so
     [Experiment] rows read one series regardless of driver). *)
  c_victims : Metrics.counter;
  c_retries : Metrics.counter;
  c_gave_up : Metrics.counter;
}

type handle = {
  sys : t;
  tid : Tid.t;
}

exception Aborted

let create ?record_history objs =
  let db = Database.create ?record_history objs in
  let reg = Database.metrics db in
  {
    db;
    lock = Mutex.create ();
    changed = Condition.create ();
    doomed = Hashtbl.create 8;
    c_victims = Metrics.counter reg "tm_deadlock_victims_total";
    c_retries = Metrics.counter reg "tm_txn_retries_total";
    c_gave_up = Metrics.counter reg "tm_txn_gave_up_total";
  }

let tid h = h.tid

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Must hold the lock.  Abort the transaction, wake everyone, raise. *)
let abort_self t tid =
  Hashtbl.remove t.doomed tid;
  Database.abort t.db tid;
  Condition.broadcast t.changed;
  raise Aborted

let check_doom t tid = if Hashtbl.mem t.doomed tid then abort_self t tid

(* Must hold the lock.  Break any waits-for cycle by dooming its youngest
   member; if that is the caller, abort right here. *)
let break_deadlock t tid =
  match Database.deadlock t.db with
  | None -> ()
  | Some cycle ->
      let victim = Deadlock.victim cycle in
      Metrics.Counter.incr t.c_victims;
      Database.emit_trace t.db ~tid:victim (Trace.Deadlock_victim { cycle });
      if Tid.equal victim tid then abort_self t tid
      else begin
        Hashtbl.replace t.doomed victim ();
        Condition.broadcast t.changed
      end

let invoke ?choose h ~obj inv =
  let t = h.sys in
  locked t (fun () ->
      let rec attempt () =
        check_doom t h.tid;
        match Database.invoke ?choose t.db h.tid ~obj inv with
        | Atomic_object.Executed op ->
            (* state changed: a waiter's partial operation may now have a
               response *)
            Condition.broadcast t.changed;
            op.Op.res
        | Atomic_object.Blocked _ ->
            break_deadlock t h.tid;
            Condition.wait t.changed t.lock;
            attempt ()
        | Atomic_object.No_response ->
            Condition.wait t.changed t.lock;
            attempt ()
      in
      attempt ())

let with_txn ?(max_attempts = 50) ?(backoff = fun _ -> ()) t f =
  if max_attempts < 1 then invalid_arg "Concurrent.with_txn: max_attempts < 1";
  (* [attempt] is the number of the attempt about to run (1-based).  A
     retry first counts the metric, then runs the backoff hook OUTSIDE
     the monitor — a sleeping backoff must not block other threads. *)
  let retry attempt =
    if attempt >= max_attempts then begin
      Metrics.Counter.incr t.c_gave_up;
      None
    end
    else begin
      Metrics.Counter.incr t.c_retries;
      backoff attempt;
      Some (attempt + 1)
    end
  in
  let rec go attempt =
    let tid = locked t (fun () -> Database.begin_txn t.db) in
    let h = { sys = t; tid } in
    let body =
      (* [Aborted] escapes [invoke] only after the transaction has been
         aborted in the database; any other exception leaves it running
         and must roll it back before propagating. *)
      match f h with
      | result -> `Done result
      | exception Aborted -> `Retry
      | exception e ->
          locked t (fun () ->
              (try Database.abort t.db tid with Invalid_argument _ -> ());
              Hashtbl.remove t.doomed tid;
              Condition.broadcast t.changed);
          raise e
    in
    let next () =
      match retry attempt with
      | Some attempt -> go attempt
      | None -> Error (`Gave_up attempt)
    in
    match body with
    | `Retry -> next ()
    | `Done result -> (
        match
          locked t (fun () ->
              check_doom t tid;
              match Database.try_commit t.db tid with
              | Ok () ->
                  Condition.broadcast t.changed;
                  `Committed
              | Error _ ->
                  (* try_commit aborted the transaction *)
                  Hashtbl.remove t.doomed tid;
                  Condition.broadcast t.changed;
                  `Validation_failed)
        with
        | `Committed -> Ok result
        | `Validation_failed -> next ()
        | exception Aborted -> next ())
  in
  go 1

let committed_count t = locked t (fun () -> Database.committed_count t.db)
let aborted_count t = locked t (fun () -> Database.aborted_count t.db)
let deadlock_victim_count t = locked t (fun () -> Metrics.Counter.get t.c_victims)
let retry_count t = locked t (fun () -> Metrics.Counter.get t.c_retries)
let gave_up_count t = locked t (fun () -> Metrics.Counter.get t.c_gave_up)
let history t = locked t (fun () -> Database.history t.db)
let database t = t.db
