open Tm_core
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace

(* Either the plain in-memory database or the write-ahead-logged one.
   The durable backend routes invoke/commit/abort through
   {!Durable_database} so operations and outcomes reach the WAL; both
   share the same [Database.t] underneath for metrics/trace/history. *)
type backend = Plain | Durable of Durable_database.t

type t = {
  db : Database.t;
  backend : backend;
  lock : Mutex.t;
  changed : Condition.t;
  (* Transactions condemned by another thread's deadlock detection; they
     notice at their next wake-up or engine call. *)
  doomed : (Tid.t, unit) Hashtbl.t;
  (* Previously these were swallowed internally: every deadlock victim
     and every transparent [with_txn] retry is now counted in the
     database registry (shared metric names with the sim scheduler, so
     [Experiment] rows read one series regardless of driver). *)
  c_victims : Metrics.counter;
  c_retries : Metrics.counter;
  c_gave_up : Metrics.counter;
  c_futile : Metrics.counter;
}

type handle = {
  sys : t;
  tid : Tid.t;
}

exception Aborted

let make db backend =
  let reg = Database.metrics db in
  {
    db;
    backend;
    lock = Mutex.create ();
    changed = Condition.create ();
    doomed = Hashtbl.create 8;
    c_victims = Metrics.counter reg "tm_deadlock_victims_total";
    c_retries = Metrics.counter reg "tm_txn_retries_total";
    c_gave_up = Metrics.counter reg "tm_txn_gave_up_total";
    c_futile = Metrics.counter reg "tm_futile_wakeups_total";
  }

let create ?record_history objs = make (Database.create ?record_history objs) Plain

let create_durable ?record_history ~wal objs =
  let dd = Durable_database.create ?record_history ~wal objs in
  make (Durable_database.database dd) (Durable dd)

let tid h = h.tid

let backend_invoke ?choose t tid ~obj inv =
  match t.backend with
  | Plain -> Database.invoke ?choose t.db tid ~obj inv
  | Durable dd -> Durable_database.invoke ?choose dd tid ~obj inv

let backend_abort t tid =
  match t.backend with
  | Plain -> Database.abort t.db tid
  | Durable dd -> Durable_database.abort dd tid

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Must hold the lock.  Abort the transaction, wake everyone, raise. *)
let abort_self t tid =
  Hashtbl.remove t.doomed tid;
  backend_abort t tid;
  Condition.broadcast t.changed;
  raise Aborted

let check_doom t tid = if Hashtbl.mem t.doomed tid then abort_self t tid

(* Must hold the lock.  Break any waits-for cycle by dooming its youngest
   member; if that is the caller, abort right here. *)
let break_deadlock t tid =
  match Database.deadlock t.db with
  | None -> ()
  | Some cycle ->
      let victim = Deadlock.victim cycle in
      Metrics.Counter.incr t.c_victims;
      Database.emit_trace t.db ~tid:victim (Trace.Deadlock_victim { cycle });
      if Tid.equal victim tid then abort_self t tid
      else begin
        Hashtbl.replace t.doomed victim ();
        Condition.broadcast t.changed
      end

let invoke ?choose h ~obj inv =
  let t = h.sys in
  locked t (fun () ->
      (* [woken]: this attempt follows a broadcast wake-up.  If it still
         cannot run, the wake-up was futile — the monitor's broadcast
         woke a waiter whose conflict had not actually cleared — and is
         counted so the cost of broadcast (vs. targeted) wake-ups is
         visible. *)
      let rec attempt ~woken () =
        check_doom t h.tid;
        match backend_invoke ?choose t h.tid ~obj inv with
        | Atomic_object.Executed op ->
            (* state changed: a waiter's partial operation may now have a
               response *)
            Condition.broadcast t.changed;
            op.Op.res
        | Atomic_object.Blocked _ ->
            if woken then Metrics.Counter.incr t.c_futile;
            break_deadlock t h.tid;
            Condition.wait t.changed t.lock;
            attempt ~woken:true ()
        | Atomic_object.No_response ->
            if woken then Metrics.Counter.incr t.c_futile;
            Condition.wait t.changed t.lock;
            attempt ~woken:true ()
      in
      attempt ~woken:false ())

let default_backoff ?(base = 0.0002) ?(cap = 0.02) () =
  (* Capped exponential with deterministic jitter: the delay depends
     only on the attempt number (Weyl-sequence hash spreads threads that
     fail in lockstep), so runs stay reproducible. *)
  if not (base > 0. && cap >= base) then
    invalid_arg "Concurrent.default_backoff: need 0 < base <= cap";
  fun attempt ->
    let d = min cap (base *. (2. ** float_of_int (min (attempt - 1) 24))) in
    let h = (attempt * 0x9E3779B1) land 0xFFFF in
    Thread.delay (d *. (0.5 +. (0.5 *. float_of_int h /. 65536.)))

let with_txn ?(max_attempts = 50) ?(backoff = fun _ -> ()) t f =
  if max_attempts < 1 then invalid_arg "Concurrent.with_txn: max_attempts < 1";
  (* [attempt] is the number of the attempt about to run (1-based).  A
     retry first counts the metric, then runs the backoff hook OUTSIDE
     the monitor — a sleeping backoff must not block other threads. *)
  let retry attempt =
    if attempt >= max_attempts then begin
      Metrics.Counter.incr t.c_gave_up;
      None
    end
    else begin
      Metrics.Counter.incr t.c_retries;
      backoff attempt;
      Some (attempt + 1)
    end
  in
  let rec go attempt =
    let tid = locked t (fun () -> Database.begin_txn t.db) in
    let h = { sys = t; tid } in
    let body =
      (* [Aborted] escapes [invoke] only after the transaction has been
         aborted in the database; any other exception leaves it running
         and must roll it back before propagating. *)
      match f h with
      | result -> `Done result
      | exception Aborted -> `Retry
      | exception e ->
          locked t (fun () ->
              (try backend_abort t tid with Invalid_argument _ -> ());
              Hashtbl.remove t.doomed tid;
              Condition.broadcast t.changed);
          raise e
    in
    let next () =
      match retry attempt with
      | Some attempt -> go attempt
      | None -> Error (`Gave_up attempt)
    in
    match body with
    | `Retry -> next ()
    | `Done result -> (
        (* Stage 1 under the monitor: validate, append the commit
           record, apply, wake waiters.  Stage 2 — parking on the
           flushed-LSN watermark — happens OUTSIDE the monitor, so
           invokers and deadlock detection proceed while a group-commit
           batch is in flight.  A committer parked there has already
           left the engine (its commit is applied, its locks released),
           so it can never be a deadlock victim; the only hazard is a
           dying flusher, which {!Wal.force_upto} handles by handing the
           round to a parked waiter. *)
        match
          locked t (fun () ->
              check_doom t tid;
              match t.backend with
              | Plain -> (
                  match Database.try_commit t.db tid with
                  | Ok () ->
                      Condition.broadcast t.changed;
                      `Committed None
                  | Error _ ->
                      (* try_commit aborted the transaction *)
                      Hashtbl.remove t.doomed tid;
                      Condition.broadcast t.changed;
                      `Validation_failed)
              | Durable dd -> (
                  match Durable_database.try_commit_nowait dd tid with
                  | Ok lsn ->
                      Condition.broadcast t.changed;
                      `Committed (Some (dd, lsn))
                  | Error _ ->
                      Hashtbl.remove t.doomed tid;
                      Condition.broadcast t.changed;
                      `Validation_failed))
        with
        | `Committed wait ->
            (match wait with
            | None -> ()
            | Some (dd, lsn) -> Durable_database.wait_durable dd tid lsn);
            Ok result
        | `Validation_failed -> next ()
        | exception Aborted -> next ())
  in
  go 1

let committed_count t = locked t (fun () -> Database.committed_count t.db)
let aborted_count t = locked t (fun () -> Database.aborted_count t.db)
let deadlock_victim_count t = locked t (fun () -> Metrics.Counter.get t.c_victims)
let retry_count t = locked t (fun () -> Metrics.Counter.get t.c_retries)
let gave_up_count t = locked t (fun () -> Metrics.Counter.get t.c_gave_up)
let futile_wakeup_count t = locked t (fun () -> Metrics.Counter.get t.c_futile)
let history t = locked t (fun () -> Database.history t.db)
let database t = t.db
let durable_database t = match t.backend with Plain -> None | Durable dd -> Some dd
