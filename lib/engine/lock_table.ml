open Tm_core
module Metrics = Tm_obs.Metrics

type t = {
  conflict : Conflict.t;
  (* Per-holder index: the operations each transaction holds, newest
     first, each stamped with a global insertion sequence so {!holds}
     can still present the table oldest-first across holders.  Keying by
     tid makes [release] O(1) (one bucket removal) and lets [blockers]
     skip the requester's own holds wholesale, instead of the former
     O(total holds) list scans. *)
  held : (Tid.t, (int * Op.t) list) Hashtbl.t;
  mutable next_seq : int;
  mutable metrics : (string * Metrics.t) option;  (* object name for labels *)
}

let create conflict =
  { conflict; held = Hashtbl.create 16; next_seq = 0; metrics = None }
let attach_metrics t ~obj reg = t.metrics <- Some (obj, reg)

(* Conflict-pair accounting lives here (not in the caller) because only
   the lock table sees which held operation blocked the request.  It runs
   on the contention path only — an uncontended request touches no
   metric. *)
let note_conflict t ~requested ~held =
  match t.metrics with
  | None -> ()
  | Some (obj, reg) ->
      Metrics.Counter.incr
        (Metrics.counter reg "tm_lock_conflicts_total"
           ~labels:
             [
               ("obj", obj);
               ("requested", requested.Op.inv.Op.name);
               ("held", held.Op.inv.Op.name);
             ])

let blockers t ~requested ~tid =
  Hashtbl.fold
    (fun holder ops acc ->
      if Tid.equal holder tid then acc
      else
        (* No short-circuit: every conflicting pair is counted, exactly
           as the former whole-table scan did. *)
        let conflicting =
          List.fold_left
            (fun acc (_, op) ->
              if Conflict.conflicts t.conflict ~requested ~held:op then begin
                note_conflict t ~requested ~held:op;
                true
              end
              else acc)
            false ops
        in
        if conflicting then holder :: acc else acc)
    t.held []
  |> List.sort_uniq Tid.compare

let add t tid op =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Hashtbl.replace t.held tid
    ((seq, op) :: Option.value (Hashtbl.find_opt t.held tid) ~default:[])

let release t tid = Hashtbl.remove t.held tid

let holds t =
  Hashtbl.fold
    (fun tid ops acc -> List.rev_append (List.rev_map (fun (s, op) -> (s, tid, op)) ops) acc)
    t.held []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (_, tid, op) -> (tid, op))
let conflict t = t.conflict
