open Tm_core
module Metrics = Tm_obs.Metrics

type t = {
  conflict : Conflict.t;
  mutable held : (Tid.t * Op.t) list;  (* newest first *)
  mutable metrics : (string * Metrics.t) option;  (* object name for labels *)
}

let create conflict = { conflict; held = []; metrics = None }
let attach_metrics t ~obj reg = t.metrics <- Some (obj, reg)

(* Conflict-pair accounting lives here (not in the caller) because only
   the lock table sees which held operation blocked the request.  It runs
   on the contention path only — an uncontended request touches no
   metric. *)
let note_conflict t ~requested ~held =
  match t.metrics with
  | None -> ()
  | Some (obj, reg) ->
      Metrics.Counter.incr
        (Metrics.counter reg "tm_lock_conflicts_total"
           ~labels:
             [
               ("obj", obj);
               ("requested", requested.Op.inv.Op.name);
               ("held", held.Op.inv.Op.name);
             ])

let blockers t ~requested ~tid =
  List.filter_map
    (fun (holder, op) ->
      if
        (not (Tid.equal holder tid))
        && Conflict.conflicts t.conflict ~requested ~held:op
      then begin
        note_conflict t ~requested ~held:op;
        Some holder
      end
      else None)
    t.held
  |> List.sort_uniq Tid.compare

let add t tid op = t.held <- (tid, op) :: t.held
let release t tid = t.held <- List.filter (fun (h, _) -> not (Tid.equal h tid)) t.held
let holds t = List.rev t.held
let conflict t = t.conflict
