(** Crash-injection torture harness for WAL recovery.

    The paper's thesis is that recovery and concurrency control must be
    designed together; this module adversarially exercises the join.  A
    workload is driven through a {!Durable_database}; then, for {e every}
    append point of the resulting log (every [Wal.prefix], i.e. every
    possible torn tail), the harness crashes, recovers and checks three
    invariants:

    + {b replay legality / dynamic atomicity} — every object's restored
      operation sequence is legal for its specification, and the history
      the recovered prefix stands for (committed transactions in their
      logged interleaving, crash losers aborted) passes the paper's
      dynamic-atomicity checker;
    + {b prefix stability} — the committed operation sequence at each
      crash point extends the one at the previous crash point: one more
      surviving record can never un-commit work (this is also what makes
      a fuzzy checkpoint record a faithful snapshot of its prefix);
    + {b idempotence} — recovering, taking a fuzzy checkpoint, truncating
      the log to it and recovering again reproduces exactly the same
      committed state and loser set.

    The checks follow Börger–Schewe–Wang's discipline (PAPERS.md) of
    verifying recovery against the specification instead of trusting the
    implementation. *)

open Tm_core

type violation = {
  cut : int;  (** how many log records survived the crash *)
  invariant : string;  (** ["replay-legality"], ["dynamic-atomicity"],
                           ["prefix-stability"] or ["idempotence"] *)
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

type report = {
  cuts : int;  (** crash points exercised (log length + 1) *)
  atomicity_checked : int;
      (** cuts on which the exact dynamic-atomicity check ran (it is
          skipped above [max_atomicity_txns] transactions) *)
  violations : violation list;
}

(** [ok r] — no invariant was violated. *)
val ok : report -> bool

val pp_report : Format.formatter -> report -> unit

(** [history_of_records recs] — the post-crash history a recovered log
    stands for: the latest checkpoint's committed base as one synthetic
    committed transaction, then the logged operations in execution order,
    commits in commit-record order, and every unfinished transaction
    aborted (recovery implicitly aborts crash losers).  Exposed for
    tests. *)
val history_of_records : Wal.record list -> History.t

(** [torture ?max_atomicity_txns ?workers ~rebuild wal] crashes at every
    append point of [wal] (which must already contain a driven workload)
    and checks the three invariants; [rebuild] supplies fresh objects
    exactly as for {!Durable_database.recover}.  [max_atomicity_txns]
    (default 8) gates the exponential atomicity check.  [workers] is
    forwarded to every {!Durable_database.recover} call, so the whole
    matrix can be run through the partitioned parallel replay path.
    [wal] itself is never mutated — each cut works on a {!Wal.prefix}
    copy. *)
val torture :
  ?max_atomicity_txns:int -> ?workers:int ->
  rebuild:(unit -> Atomic_object.t list) -> Wal.t -> report

(** [torture_bytes ~rebuild wal] is {!torture} at byte granularity: the
    log is serialised with {!Wal.Codec.encode_all} and the crash is
    injected at {e every byte offset} of the encoding — so cuts land in
    the middle of frames, not just between records.  Each cut is decoded
    with {!Wal.Codec.decode_all}; a prefix cut must always classify as a
    clean log or a torn tail (an interior-corruption verdict on a pure
    prefix is reported as a ["torn-tail"] violation), and the surviving
    records then pass the full invariant battery.  Cuts that decode to
    the same record list as the previous cut are skipped — the recovered
    state cannot differ.  [cuts] in the report counts byte offsets.
    [workers] is forwarded to recovery as in {!torture}. *)
val torture_bytes :
  ?max_atomicity_txns:int -> ?workers:int ->
  rebuild:(unit -> Atomic_object.t list) -> Wal.t -> report

(** [torture_truncation ?workers ~rebuild wal] sweeps the crash-atomic
    log compaction of {!Disk_wal.checkpoint_truncate}: it replays the
    compaction [wal] would perform (journal = [Truncate_intent] frame +
    compacted image appended after the old log; install = image
    rewritten from offset 0) and reconstructs {e every} intermediate
    backend state — each byte prefix of the journal write, each byte
    prefix of the install write over the journaled file, and the final
    image.  Every state is reloaded through {!Disk_wal.load} and
    recovered; a reload refusal, or any difference from the
    pre-compaction committed state / loser set, is a
    ["truncate-atomicity"] violation.  A log whose truncation would drop
    nothing (no checkpoint) reports zero cuts.  [wal] is not mutated. *)
val torture_truncation :
  ?workers:int -> rebuild:(unit -> Atomic_object.t list) -> Wal.t -> report

(** [torture_upgrade ?workers ~rebuild wal] sweeps the incremental
    v1→v2 format migration: the log's records are laid down as pure
    {e v1} frames (what a pre-versioning binary left on disk), the
    compacted replacement image is encoded as v2 (what
    {!Disk_wal.checkpoint_truncate} writes today), and {e every} byte
    state of the journal + install rewrite is reloaded and recovered —
    crash mid-journal leaves the readable v1 log (torn v2 debris rolled
    back), crash mid-install redoes from the journaled image, and every
    state must recover the exact pre-upgrade committed state and loser
    set (zero acknowledged-commit loss across the migration; violations
    are ["upgrade-atomicity"]).  Unlike {!torture_truncation} the sweep
    runs even when no records would be dropped: the rewrite is then a
    pure v1→v2 re-encode.  [wal] is not mutated. *)
val torture_upgrade :
  ?workers:int -> rebuild:(unit -> Atomic_object.t list) -> Wal.t -> report

(** {1 Batch-prefix torture (group commit)} *)

type batch_report = {
  byte_cuts : int;  (** byte offsets exercised (encoded length + 1) *)
  frontiers : int;  (** durability barriers the driven run performed *)
  acked_max : int;  (** commits acknowledged by the final barrier *)
  batch_violations : violation list;
}

(** [batch_ok r] — every cut inside a batch recovered to a prefix of the
    batch's commit order, and no acknowledged commit was lost. *)
val batch_ok : batch_report -> bool

val pp_batch_report : Format.formatter -> batch_report -> unit

(** [torture_batched ~group_every wal] replays the ack discipline of a
    group-commit run over [wal] — a barrier after every
    [group_every]-th commit record plus a final one, as
    {!Tm_sim.Scheduler.run_durable}'s [~group_commit] knob produces —
    and cuts the encoded log at every byte offset.  Each cut must
    decode as a clean log or torn tail (["torn-tail"] violation
    otherwise), recover a commit order that is a {e prefix} of the full
    one (["batch-prefix"]), and retain at least every commit
    acknowledged at the last barrier at or before the cut
    (["acked-durability"] — the no-lost-acked-commit guarantee: a
    commit is acked only once the flushed-LSN watermark passes its
    commit record). *)
val torture_batched : group_every:int -> Wal.t -> batch_report

type sweep_report = {
  flips : int;  (** single-bit corruptions injected (one per byte offset) *)
  interior_detected : int;
      (** flips detected as interior corruption (typed [Corrupt_log]) *)
  tail_losses : int;
      (** flips absorbed as a torn tail — records lost but the survivors
          are a prefix of the original log (crash-equivalent, safe) *)
  harmless : int;  (** flips that decoded to the identical record list *)
  sweep_violations : violation list;
      (** silent corruptions: decode succeeded with a record list that is
          {e not} a prefix of the original — the framing failed *)
}

(** [sweep_ok r] — every injected corruption was detected or contained. *)
val sweep_ok : sweep_report -> bool

val pp_sweep_report : Format.formatter -> sweep_report -> unit

(** [corruption_sweep wal] flips one bit in every byte of the encoded log
    (bit position rotating with the offset) and decodes each corrupted
    copy, classifying the outcome; see {!sweep_report}.  [wal] is not
    mutated. *)
val corruption_sweep : Wal.t -> sweep_report

(** {1 Sharded torture (cross-shard 2PC)} *)

type sharded_report = {
  shard_count : int;
  byte_cuts : int;  (** byte offsets swept, summed over all shard logs *)
  forced_states : int;  (** distinct forced-frontier crash states checked *)
  cross_txns : int;  (** transactions that entered 2PC in the driven run *)
  cross_checked : int;
      (** (state, transaction) pairs on which the evidence-implies-survival
          check ran *)
  sharded_violations : violation list;
}

(** [sharded_ok r] — no invariant was violated at any crash state. *)
val sharded_ok : sharded_report -> bool

val pp_sharded_report : Format.formatter -> sharded_report -> unit

(** [torture_sharded ~shards:n ~rebuild ~drive ()] drives a workload
    through a fresh {!Sharded_database} over [n] recording WALs, then
    checks crash states spanning {e all} the shard logs:

    - {b forced frontiers} — at every global clock tick, every shard
      retains exactly what its last durability barrier covered (all
      unforced appends lost at once).  This sweeps the 2PC force
      ordering itself — participants' operations and [Prepare]s must be
      durable before the coordinator's [Decision] exists, the
      [Decision] durable before any completion is trusted;
    - {b byte cuts} — for every shard and every byte offset of its
      encoded log (frames stamped with the shard's id), the shard keeps
      that byte prefix (a misclassified torn tail is a ["torn-tail"]
      violation) while the others keep their maximal consistent
      prefixes: everything appended before the first record the cut
      shard lost.

    Each state passes an evidence-driven battery: a transaction with
    surviving commit evidence ([Decision{commit}] anywhere, or a
    phase-2 [Commit] of a prepared transaction) must retain {e all} its
    operations and end committed on every participant whose [Prepare]
    survived; one without evidence must end committed {e nowhere}
    (presumed abort) — so no shard ever installs a cross-shard
    transaction another shard aborted, and no acknowledged cross-shard
    commit is ever lost (acknowledgement happens only after the forced
    [Decision]).  Each recovered state must also be legal per object
    specification, equal to a direct replay of its resolved logs, and
    stable under a second recovery (which must append nothing).
    [workers] is forwarded to every per-shard recovery. *)
val torture_sharded :
  ?workers:int ->
  shards:int ->
  rebuild:(unit -> Atomic_object.t list) ->
  drive:(Sharded_database.t -> unit) ->
  unit -> sharded_report

(** [run ~rebuild ~drive ()] builds a fresh durable database over
    [rebuild ()], lets [drive] run a workload against it (including any
    mid-run {!Durable_database.checkpoint} calls), then tortures the
    resulting log. *)
val run :
  ?max_atomicity_txns:int ->
  ?workers:int ->
  rebuild:(unit -> Atomic_object.t list) ->
  drive:(Durable_database.t -> unit) ->
  unit -> report
