open Tm_core

type t = {
  obj : Atomic_object.t;
  wal : Wal.t;
  begun : (Tid.t, unit) Hashtbl.t;
}

let create ~spec ~conflict ~recovery ~wal =
  { obj = Atomic_object.create ~spec ~conflict ~recovery (); wal; begun = Hashtbl.create 16 }

let inner t = t.obj
let name t = Atomic_object.name t.obj

let log_begin t tid =
  if not (Hashtbl.mem t.begun tid) then begin
    Hashtbl.add t.begun tid ();
    Wal.append t.wal (Wal.Begin tid)
  end

let invoke ?choose t tid inv =
  let outcome = Atomic_object.invoke ?choose t.obj tid inv in
  (match outcome with
  | Atomic_object.Executed op ->
      log_begin t tid;
      Wal.append t.wal (Wal.Operation (tid, op))
  | Atomic_object.Blocked _ | Atomic_object.No_response -> ());
  outcome

let commit t tid =
  (* Write-ahead: the commit record reaches stable storage before the
     commit takes effect — a crash between the two redoes the operations
     from the log. *)
  Wal.append t.wal (Wal.Commit tid);
  Hashtbl.remove t.begun tid;
  Atomic_object.commit t.obj tid

let abort t tid =
  if Hashtbl.mem t.begun tid then begin
    Wal.append t.wal (Wal.Abort tid);
    Hashtbl.remove t.begun tid
  end;
  Atomic_object.abort t.obj tid

(* Fuzzy: snapshot the log's own replay state so in-flight transactions
   survive the checkpoint (and later truncation).  There is no tid
   allocator here — callers manage tids — so the high-water mark comes
   from the log scan alone. *)
let checkpoint t = Wal.append t.wal (Wal.Checkpoint (Wal.fuzzy_checkpoint (Wal.records t.wal)))

let recover ~spec ~conflict ~recovery wal =
  let committed, losers = Wal.replay (Wal.records wal) in
  let t = create ~spec ~conflict ~recovery ~wal in
  match Atomic_object.restore t.obj committed with
  | Ok () -> Ok (t, losers)
  | Error e -> Error e

let committed_ops t = Atomic_object.committed_ops t.obj
