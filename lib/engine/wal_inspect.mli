(** Forensic inspection of an on-disk log's bytes — without replay.

    The walker decodes frame by frame with {!Wal.Codec.decode_frame}, so
    every record is attributed to a byte extent, and classifies damage
    with the same resynchronisation scan recovery uses: a failing frame
    with {e no} intact frame after it is a {!Torn_tail} (a restart drops
    it as crash loss), a failing frame {e followed} by an intact one is
    {!Interior} corruption (a restart refuses the log).  What this module
    reports is therefore exactly what {!Disk_wal.load} will do, plus the
    record-kind histogram, bytes by kind, LSN range, checkpoint coverage
    and the live-transaction set at each checkpoint.

    [bin/walinspect.exe] is the thin CLI over this module; keeping the
    summary a library value lets tests assert reported corruption
    offsets against the byte positions a fault injector actually
    damaged. *)

open Tm_core

type kind_stat = { count : int; bytes : int  (** frame bytes incl. header *) }

type checkpoint_info = {
  cp_lsn : int;  (** 1-based record position in the decoded log *)
  cp_offset : int;  (** byte offset of the checkpoint's frame *)
  cp_committed_ops : int;
  cp_live : (Tid.t * int) list;
      (** transactions live at the checkpoint, with the number of
          operations its snapshot carries for each *)
  cp_next_tid : int;
}

type damage =
  | Clean
  | Torn_tail of Wal.Codec.corruption
      (** trailing damage; a restart truncates it *)
  | Interior of Wal.Codec.corruption
      (** damage with intact frames after it; a restart refuses the log *)

type t = {
  total_bytes : int;
  clean_bytes : int;  (** length of the intact prefix *)
  records : int;
  by_kind : (string * kind_stat) list;
      (** every record kind in fixed order, zero entries included *)
  by_version : (int * int) list;
      (** per-frame format-version histogram (version, frame count),
          ascending — a mixed-version log (v1 frames from an older
          binary, v2 appends after them) shows both *)
  by_shard : (int * int) list;
      (** per-frame shard-id histogram (shard, frame count), ascending.
          v1 frames carry no shard and count as shard 0; a log written
          by one shard of {!Sharded_database} shows a single non-zero
          entry, an unsharded log shows [[(0, n)]]. *)
  foreign_version : (int * int) option;
      (** the first frame whose header is intact up to a format version
          this binary does not support: its exact byte offset and the
          version byte found there ([None] when the damage, if any, is
          not a foreign version) *)
  lsn_range : (int * int) option;
      (** 1-based record positions within this file ([None] when empty).
          Compaction ({!Disk_wal.checkpoint_truncate}) rewrites the file
          from its latest checkpoint, so positions restart at 1 after a
          truncation — the range measures {e this} file, not the log's
          lifetime LSNs. *)
  tids_seen : int;  (** distinct transaction ids mentioned by any record *)
  committed_txns : int;
  aborted_txns : int;
  max_tid : Tid.t option;
  checkpoints : checkpoint_info list;
  records_after_last_checkpoint : int;
      (** the replay tail a restart must scan after seeding from the
          latest checkpoint (= [records] when there is none) *)
  damage : damage;
}

(** [inspect bytes] walks the raw log image (e.g.
    [Storage.read_all storage] or a file's contents). *)
val inspect : string -> t

(** Short damage class: ["clean"], ["torn_tail"],
    ["interior_corruption"]. *)
val damage_kind : damage -> string

(** [select_shard bytes shard] — the concatenation of exactly the intact
    frames stamped with [shard] (v1 frames count as shard 0), in log
    order.  The forensic view behind [walinspect --shard]: feeding the
    result back to {!inspect} or {!replay_digest} answers "what did this
    shard contribute / what would its records alone replay to" for a
    mixed-shard dump.  Damaged tail bytes are dropped — run the
    unfiltered {!inspect} for the damage verdict. *)
val select_shard : string -> int -> string

(** [replay_digest bytes] — a stable digest of the recovered state the
    log replays to: the committed operations in commit order plus the
    loser set, rendered canonically and MD5-hashed.  The harvested v1
    logs under [test/golden/logs/] are pinned by this digest — every
    future binary must replay those bytes to the digest recorded at
    harvest time.  [Error] on interior corruption (a torn tail digests
    its intact prefix, exactly as recovery would). *)
val replay_digest : string -> (string, Wal.Codec.corruption) result

val pp : Format.formatter -> t -> unit
val to_json : t -> Tm_obs.Json.t

(** {1 2PC forensics}

    The view behind [walinspect --two-phase]: per-shard counts of the
    2PC record kinds plus every in-doubt prepare — a vote with no later
    local outcome — with its byte offset and the verdict recovery will
    reach for it ({!Two_phase.analyze} over the per-shard record lists
    of the same image). *)

type tp_prepare = {
  tpp_tid : Tid.t;
  tpp_offset : int;  (** byte offset of the (first) [Prepare] frame *)
  tpp_commit : bool;  (** the outcome recovery will append *)
  tpp_evidence : string;
      (** ["decision"], ["phase2"] or ["presumed"]
          ({!Two_phase.evidence_name}) *)
}

type tp_shard = {
  tp_shard : int;
  tp_prepares : int;
  tp_decisions : int;
  tp_completions : int;
      (** phase-2 [Commit]/[Abort] records of ever-prepared
          transactions on this shard *)
  tp_in_doubt : tp_prepare list;  (** first-[Prepare] order *)
}

(** [two_phase bytes] — one entry per shard id appearing in the image's
    intact frames (v1 frames count as shard 0), ascending.  Damaged
    tails are dropped exactly as recovery drops them. *)
val two_phase : string -> tp_shard list

val pp_two_phase : Format.formatter -> tp_shard list -> unit
val two_phase_to_json : tp_shard list -> Tm_obs.Json.t
