(** A write-ahead-logged atomic object: crash recovery for the engine.

    Wraps an {!Atomic_object} so that every executed operation, commit and
    abort is appended to a {!Wal} before taking effect (commit records are
    forced {e before} the in-memory commit — the write-ahead rule).  After
    a crash — which loses all volatile state — {!recover} rebuilds an
    equivalent object from the log: operations of committed transactions
    are redone in commit order; transactions without a commit record are
    the {e losers} and are implicitly aborted (their effects were never in
    the stable state, because both recovery managers externalise only
    committed work to the rebuilt object).

    The same code serves both recovery methods: as the paper observes,
    crash recovery mirrors abort recovery — here it is literally the
    deferred-update view ([committed, in commit order]) replayed into a
    fresh object. *)

open Tm_core

type t

val create :
  spec:Spec.t -> conflict:Conflict.t -> recovery:Recovery.kind -> wal:Wal.t -> t

(** The wrapped object (for inspection; do not mutate around the log). *)
val inner : t -> Atomic_object.t

val name : t -> string

(** Same contract as {!Atomic_object.invoke}, with executed operations
    logged (a [Begin] record is appended at a transaction's first
    operation here). *)
val invoke : ?choose:(Value.t list -> Value.t) -> t -> Tid.t -> Op.invocation ->
  Atomic_object.outcome

(** Logs the commit record (the durability point), then commits. *)
val commit : t -> Tid.t -> unit

val abort : t -> Tid.t -> unit

(** [checkpoint t] appends a checkpoint record summarising the committed
    state, bounding future recovery work. *)
val checkpoint : t -> unit

(** [recover ~spec ~conflict ~recovery wal] rebuilds the object from the
    log: equivalent to the pre-crash object with all in-flight
    transactions aborted.  Returns the object and the loser set, or a
    typed error when the log replays illegally (see {!Recovery.error}). *)
val recover :
  spec:Spec.t -> conflict:Conflict.t -> recovery:Recovery.kind -> Wal.t ->
  (t * Tid.Set.t, Recovery.error) result

val committed_ops : t -> Op.t list
