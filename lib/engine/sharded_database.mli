(** A durable engine partitioned into independent shards with
    cross-shard two-phase commit.

    Each shard is a complete single-shard engine ({!Shard}): its own
    lock tables and atomic objects, its own WAL (stamped with the
    shard's id in every v2 frame when disk-backed — see {!Disk_wal}),
    and its own group-commit flusher.  A router hashes object name to
    home shard ({!Wal.partition_of_object}, the same stable hash the
    parallel-recovery partitioner uses), so a transaction that touches
    one shard commits through the existing fast path —
    {!Durable_database.try_commit_nowait} under that shard's mutex, the
    durability wait outside it — with {e zero} cross-shard
    synchronisation beyond a brief global-table touch.

    {2 Cross-shard commit: presumed-abort 2PC}

    A transaction that touched several shards commits in three steps,
    journaled entirely through the participants' own WALs (no separate
    coordinator log):

    + {b Prepare} — every participant, in ascending shard order,
      validates and logs a [Prepare] record
      ({!Durable_database.prepare}); each prepare LSN is forced before
      the protocol proceeds.  A forced [Prepare] is the shard's durable
      yes vote: all the transaction's operations on that shard precede
      it in the log, so the shard can install the transaction after a
      crash once the decision is known.  Any validation failure aborts
      the transaction everywhere — already-prepared shards via
      {!Durable_database.finish_prepared}[ ~commit:false], the rest via
      plain abort — and {e no} decision record is written (presumed
      abort makes the no-vote free).
    + {b Decide} — the coordinator (the lowest participant shard index)
      appends [Decision { commit = true }] to {e its own} WAL and
      forces it.  That single forced append is the global commit point:
      the transaction is committed iff it survives.
    + {b Complete} — each participant logs its local [Commit] and
      applies ({!Durable_database.finish_prepared}[ ~commit:true]),
      {e without} forcing: if a crash loses a completion record, the
      shard recovers the transaction as in-doubt and re-resolves it
      from the surviving decision evidence.

    {2 Recovery}

    {!recover} first runs {!Two_phase.analyze} over all shard logs,
    appends a real [Commit]/[Abort] per in-doubt transaction to its
    shard's log (commit iff decision evidence survives anywhere;
    otherwise presumed abort) and forces it — completing the
    interrupted protocol {e in the log}, so the subsequent per-shard
    {!Durable_database.recover} (with its parallel partitioned replay)
    needs no 2PC awareness at all, and a second crash during recovery
    re-resolves to the same outcomes.

    {2 Caveats}

    Deadlock detection remains per shard: waits-for cycles threading
    through two shards are not detected (callers avoid them by touching
    shards in a consistent order, or time out).  {!checkpoint} refuses
    to run while any cross-shard commit is in flight — a fuzzy
    checkpoint would otherwise erase a participant's in-doubt status
    from its log. *)

open Tm_core

type t

(** [create ?first_tid ~wals objs] — one shard per element of [wals]
    (their order fixes shard ids); [objs] are partitioned among shards
    by the router.  [first_tid] seeds the {e global} transaction-id
    allocator.  Raises [Invalid_argument] if [wals] is empty or has
    more than 65536 elements (shard ids must fit a v2 frame header). *)
val create : ?first_tid:int -> wals:Wal.t array -> Atomic_object.t list -> t

val shard_count : t -> int

(** The home shard of an object name:
    [Wal.partition_of_object ~workers:(shard_count t) name]. *)
val shard_of_object : t -> string -> int

(** The shards themselves, indexed by shard id — for tests, torture
    harnesses and forensics; engine calls should go through [t]. *)
val shards : t -> Shard.t array

val find_object : t -> string -> Atomic_object.t

(** All objects across all shards (shard order, then each shard's
    object order). *)
val objects : t -> Atomic_object.t list

(** [begin_txn t] allocates a globally unique transaction id.  Each
    shard's database adopts the transaction on first touch
    ({!Database.adopt_txn}). *)
val begin_txn : t -> Tid.t

(** [invoke t tid ~obj inv] routes to [obj]'s home shard. *)
val invoke :
  ?choose:(Value.t list -> Value.t) -> t -> Tid.t -> obj:string -> Op.invocation ->
  Atomic_object.outcome

(** [try_commit t tid] — single-shard transactions take the fast path
    (stage-1 commit under the shard mutex, group-commit durability wait
    outside it); multi-shard transactions run the full 2PC described
    above.  Transactions that executed nothing anywhere commit
    trivially.  On validation failure the transaction is aborted on
    every shard and the conflicting object/operation pair returned. *)
val try_commit : t -> Tid.t -> (unit, string * Op.t * Op.t) result

val abort : t -> Tid.t -> unit

(** Force every shard's WAL. *)
val flush : t -> unit

(** [checkpoint t] appends a fuzzy checkpoint to {e every} shard —
    after forcing {e all} shard WALs, so no shard's checkpoint can
    outlive unflushed completion records its evidence may be needed
    for — and returns [true].  Returns [false] without touching any
    log when a cross-shard commit is in flight (a prepared-undecided
    transaction must keep its [Prepare] visible to recovery; callers
    simply retry later). *)
val checkpoint : t -> bool

(** Globally committed transaction count (each cross-shard transaction
    counted once, not once per participant). *)
val committed_count : t -> int

(** [set_trace t tr] attaches one shared recorder to {e every} shard's
    database: a single logical clock totally orders all shards' spans.
    Cross-shard commits additionally emit the 2PC span kinds
    ({!Tm_obs.Trace.Prepare_append} … {!Tm_obs.Trace.Completion}), each
    stamped with a per-transaction global trace id ([gtid]) so the
    coordinator's decision can be linked to every participant's prepare
    offline. *)
val set_trace : t -> Tm_obs.Trace.t -> unit

(** A fresh registry merging the engine-level 2PC metrics
    ([tm_2pc_prepares_total], [tm_2pc_aborts_total{phase}],
    [tm_2pc_in_flight], [tm_2pc_resolved_total{evidence,outcome}] after
    a recovery, [tm_shard_cross_txn_total],
    [tm_shard_flushed_lsn{shard}]) with
    every shard's registry, each shard's series tagged with an added
    [shard] label. *)
val metrics : t -> Tm_obs.Metrics.t

(** [recover ?workers ~wals ~rebuild ()] — crash recovery across all
    shards: resolve in-doubt transactions (see above), then run
    {!Durable_database.recover} per shard with [workers] replay
    partitions each, [rebuild]'s objects routed to shards exactly as
    {!create} routes them.  The global allocator restarts above every
    shard's tid high-water mark.  Returns the engine and the union of
    the shards' loser sets (a transaction resolved by presumed abort is
    {e finished}, not a loser — recovery completed its protocol), or
    the first shard's replay error in shard order.

    [audit] receives the in-doubt resolution events
    ({!Two_phase.resolution_events}: which prepares were in doubt, the
    evidence that resolved each, the outcome appended) before any
    outcome record is written — the audit trail the CLIs export as a
    [tm-2pc] artifact.  The same events drive the recovered engine's
    [tm_2pc_resolved_total{evidence,outcome}] counters. *)
val recover :
  ?workers:int ->
  ?audit:(Two_phase.resolution_event list -> unit) ->
  wals:Wal.t array ->
  rebuild:(unit -> Atomic_object.t list) ->
  unit -> (t * Tid.Set.t, Recovery.error) result
