open Tm_core
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace

type txn_status =
  | Running
  | Committed
  | Aborted

type t = {
  mutable objs : (string * Atomic_object.t) list;
  record_history : bool;
  mutable events : Event.t list;  (* newest first *)
  status : (Tid.t, txn_status) Hashtbl.t;
  touched : (Tid.t, string list) Hashtbl.t;
  waits : Deadlock.t;
  mutable next_tid : int;
  (* Observability.  The registry always exists — counters are plain
     field bumps, so the uninstrumented cost is negligible — and the
     transaction counts below are *backed* by it ({!committed_count}
     reads the counter).  The trace recorder is optional: [None] (the
     default) costs one branch per event site. *)
  metrics : Metrics.t;
  c_begins : Metrics.counter;
  c_committed : Metrics.counter;
  c_aborted : Metrics.counter;
  c_executed : Metrics.counter;
  c_blocked : Metrics.counter;
  c_no_response : Metrics.counter;
  mutable trace : Trace.t option;
  mutable ticks : int;  (* logical clock: one tick per invocation attempt *)
  blocked_since : (Tid.t, string * int) Hashtbl.t;
}

let attach o reg = Atomic_object.attach_metrics o reg

let create ?(record_history = false) ?(first_tid = 0) objs =
  if first_tid < 0 then invalid_arg "Database.create: negative first_tid";
  let metrics = Metrics.create () in
  List.iter (fun o -> attach o metrics) objs;
  {
    objs = List.map (fun o -> (Atomic_object.name o, o)) objs;
    record_history;
    events = [];
    status = Hashtbl.create 64;
    touched = Hashtbl.create 64;
    waits = Deadlock.create ();
    next_tid = first_tid;
    metrics;
    c_begins = Metrics.counter metrics "tm_txn_begins_total";
    c_committed = Metrics.counter metrics "tm_txn_committed_total";
    c_aborted = Metrics.counter metrics "tm_txn_aborted_total";
    c_executed = Metrics.counter metrics "tm_invocations_total" ~labels:[ ("outcome", "executed") ];
    c_blocked = Metrics.counter metrics "tm_invocations_total" ~labels:[ ("outcome", "blocked") ];
    c_no_response =
      Metrics.counter metrics "tm_invocations_total" ~labels:[ ("outcome", "no_response") ];
    trace = None;
    ticks = 0;
    blocked_since = Hashtbl.create 16;
  }

let add_object t o =
  attach o t.metrics;
  t.objs <- t.objs @ [ (Atomic_object.name o, o) ]

let objects t = List.map snd t.objs

let find_object t name =
  match List.assoc_opt name t.objs with
  | Some o -> o
  | None -> invalid_arg ("Database.find_object: unknown object " ^ name)

let metrics t = t.metrics
let next_tid t = t.next_tid
let set_trace t tr = t.trace <- Some tr
let trace t = t.trace

let emit_trace t ~tid kind =
  match t.trace with None -> () | Some tr -> Trace.emit tr ~tid kind

let begin_txn t =
  let tid = Tid.of_int t.next_tid in
  t.next_tid <- t.next_tid + 1;
  Hashtbl.replace t.status tid Running;
  Metrics.Counter.incr t.c_begins;
  emit_trace t ~tid Trace.Begin;
  tid

let adopt_txn t tid =
  (* Register an externally allocated transaction id as running here —
     the sharded engine allocates tids globally and lets each shard's
     database adopt the transaction on first touch.  The local allocator
     is bumped above the adopted id so a locally begun transaction can
     never collide with a global one. *)
  let n = Tid.to_int tid in
  if n < 0 then invalid_arg "Database.adopt_txn: negative tid";
  if Hashtbl.mem t.status tid then
    invalid_arg (Fmt.str "Database.adopt_txn: %a already known" Tid.pp tid);
  t.next_tid <- max t.next_tid (n + 1);
  Hashtbl.replace t.status tid Running;
  Metrics.Counter.incr t.c_begins;
  emit_trace t ~tid Trace.Begin

let check_running t tid =
  match Hashtbl.find_opt t.status tid with
  | Some Running -> ()
  | Some Committed | Some Aborted ->
      invalid_arg (Fmt.str "Database: transaction %a already finished" Tid.pp tid)
  | None -> invalid_arg (Fmt.str "Database: unknown transaction %a" Tid.pp tid)

let push_event t e = if t.record_history then t.events <- e :: t.events

let touched_objs t tid = Option.value (Hashtbl.find_opt t.touched tid) ~default:[]

(* A transaction executing after an earlier block has been woken: record
   how long (in attempt ticks) it waited, per object. *)
let note_woken t tid =
  match Hashtbl.find_opt t.blocked_since tid with
  | None -> ()
  | Some (obj, since) ->
      Hashtbl.remove t.blocked_since tid;
      let waited = t.ticks - since in
      Metrics.Histogram.observe_int
        (Metrics.histogram t.metrics "tm_lock_wait_ticks" ~labels:[ ("obj", obj) ])
        waited;
      emit_trace t ~tid (Trace.Woken { obj; waited })

let invoke ?choose t tid ~obj inv =
  check_running t tid;
  let o = find_object t obj in
  t.ticks <- t.ticks + 1;
  emit_trace t ~tid (Trace.Invoke { obj; inv });
  let outcome = Atomic_object.invoke ?choose o tid inv in
  (match outcome with
  | Atomic_object.Executed op ->
      Deadlock.clear t.waits tid;
      Metrics.Counter.incr t.c_executed;
      note_woken t tid;
      emit_trace t ~tid (Trace.Executed { op });
      push_event t (Event.invoke ~obj ~tid inv);
      push_event t (Event.respond ~obj ~tid op.Op.res);
      let objs = touched_objs t tid in
      if not (List.mem obj objs) then Hashtbl.replace t.touched tid (obj :: objs)
  | Atomic_object.Blocked holders ->
      Metrics.Counter.incr t.c_blocked;
      if not (Hashtbl.mem t.blocked_since tid) then
        Hashtbl.replace t.blocked_since tid (obj, t.ticks);
      emit_trace t ~tid (Trace.Blocked { obj; inv; holders });
      Deadlock.set_waiting t.waits tid ~on:holders
  | Atomic_object.No_response ->
      Metrics.Counter.incr t.c_no_response;
      emit_trace t ~tid (Trace.No_response { obj; inv }));
  outcome

let finish t tid status per_object =
  check_running t tid;
  List.iter
    (fun obj ->
      per_object (find_object t obj) tid;
      emit_trace t ~tid (Trace.Lock_release { obj });
      push_event t
        (match status with
        | Committed -> Event.commit ~obj ~tid
        | Running | Aborted -> Event.abort ~obj ~tid))
    (List.rev (touched_objs t tid));
  Hashtbl.replace t.status tid status;
  Hashtbl.remove t.touched tid;
  Hashtbl.remove t.blocked_since tid;
  Deadlock.clear t.waits tid

let commit t tid =
  finish t tid Committed Atomic_object.commit;
  Metrics.Counter.incr t.c_committed;
  emit_trace t ~tid Trace.Commit

let abort t tid =
  finish t tid Aborted Atomic_object.abort;
  Metrics.Counter.incr t.c_aborted;
  emit_trace t ~tid Trace.Abort

let try_commit t tid =
  check_running t tid;
  (* Two-phase: validate at every touched object, then commit at all of
     them; a single validation failure aborts everywhere. *)
  let objs = List.rev (touched_objs t tid) in
  let validated =
    t.trace <> None
    && List.exists
         (fun obj ->
           Atomic_object.policy (find_object t obj) = Atomic_object.Optimistic)
         objs
  in
  if validated then emit_trace t ~tid Trace.Validating;
  let failed =
    List.find_map
      (fun obj ->
        match Atomic_object.validate (find_object t obj) tid with
        | Ok () -> None
        | Error (mine, theirs) -> Some (obj, mine, theirs))
      objs
  in
  if validated then emit_trace t ~tid (Trace.Validated { ok = failed = None });
  match failed with
  | None ->
      commit t tid;
      Ok ()
  | Some _ as e ->
      abort t tid;
      (match e with Some x -> Error x | None -> assert false)

let deadlock t = Deadlock.find_cycle t.waits
let history t = History.of_events (List.rev t.events)
let committed_count t = Metrics.Counter.get t.c_committed
let aborted_count t = Metrics.Counter.get t.c_aborted

let total_blocks t =
  List.fold_left (fun acc (_, o) -> acc + Atomic_object.block_count o) 0 t.objs
