(** A write-ahead-logged multi-object database.

    {!Durable_object} logs one object; real transactions touch several,
    and atomic commitment must survive crashes: either every object sees
    the transaction's effects after recovery, or none does.  This wrapper
    shares one {!Wal} across all objects — operations are logged with
    their object name (carried by {!Tm_core.Op.t}), and a transaction's
    {e single} commit record covers all of them, so recovery is
    all-or-nothing by construction (the logging equivalent of the paper's
    atomic-commitment assumption, Section 2). *)

open Tm_core

type t

(** [create ?first_tid ~wal objs] — [first_tid] seeds the database's
    transaction-id allocator (see {!Database.create}); {!recover} passes
    the log's tid high-water mark. *)
val create : ?first_tid:int -> wal:Wal.t -> Atomic_object.t list -> t
val database : t -> Database.t
val begin_txn : t -> Tid.t

val invoke :
  ?choose:(Value.t list -> Value.t) -> t -> Tid.t -> obj:string -> Op.invocation ->
  Atomic_object.outcome

(** Validates (for optimistic objects), forces the commit record, then
    commits at every touched object.  The commit-record append is the
    durability point: it bumps [tm_wal_forces_total] and emits a
    [Wal_force] trace span. *)
val try_commit : t -> Tid.t -> (unit, string * Op.t * Op.t) result

(** Aborts the transaction; the [Abort] record is logged only when the
    transaction logged a [Begin] (i.e. executed at least one operation
    here) — aborts of unlogged transactions leave the WAL untouched. *)
val abort : t -> Tid.t -> unit

(** [checkpoint t] appends a {e fuzzy} [Checkpoint] record: the committed
    operations in global commit order, every in-flight transaction's
    logged operations, and the tid allocator's high-water mark (committed
    size observed in the [tm_wal_checkpoint_ops] histogram).  After a
    checkpoint the preceding log segment may be dropped with
    {!Wal.truncate_to_checkpoint} without changing replay. *)
val checkpoint : t -> unit

(** [recover ~wal ~rebuild ()] reconstructs the database after a crash:
    [rebuild] supplies fresh objects (same specs/conflicts/recovery as
    before the crash); each is restored with the committed operations of
    {e its} object from the log.  Returns the database and the losers,
    or a typed {!Recovery.error} when a replayed sequence violates an
    object's specification (the caller — crash harness, CLI — reports it
    instead of catching exceptions).  Transaction-id allocation restarts
    strictly above every tid the log mentions ({!Wal.max_tid}), so
    post-crash transactions never merge with a pre-crash loser on a
    later replay.  Replay volume is counted as
    [tm_recovery_replayed_ops_total] / [tm_recovery_loser_txns_total] in
    the new database's registry; [trace], if given, is attached to it
    and receives the [Crash_recover] span. *)
val recover :
  ?trace:Tm_obs.Trace.t -> wal:Wal.t -> rebuild:(unit -> Atomic_object.t list) ->
  unit -> (t * Tid.Set.t, Recovery.error) result
