(** A write-ahead-logged multi-object database.

    {!Durable_object} logs one object; real transactions touch several,
    and atomic commitment must survive crashes: either every object sees
    the transaction's effects after recovery, or none does.  This wrapper
    shares one {!Wal} across all objects — operations are logged with
    their object name (carried by {!Tm_core.Op.t}), and a transaction's
    {e single} commit record covers all of them, so recovery is
    all-or-nothing by construction (the logging equivalent of the paper's
    atomic-commitment assumption, Section 2). *)

open Tm_core

type t

(** [create ?record_history ?first_tid ~wal objs] — [record_history]
    and [first_tid] are passed through to {!Database.create}
    ([first_tid] seeds the transaction-id allocator; {!recover} passes
    the log's tid high-water mark). *)
val create :
  ?record_history:bool -> ?first_tid:int -> wal:Wal.t -> Atomic_object.t list -> t
val database : t -> Database.t
val begin_txn : t -> Tid.t

val invoke :
  ?choose:(Value.t list -> Value.t) -> t -> Tid.t -> obj:string -> Op.invocation ->
  Atomic_object.outcome

(** {2 The staged commit pipeline}

    Commit is split into two stages so the durability barrier never
    runs under the engine lock.  {!try_commit_nowait} validates,
    appends the commit record (fixing the transaction's place in the
    durable commit order), applies the commit at every touched object,
    and returns the commit record's LSN — all serialised by the
    caller's engine lock.  {!wait_durable} then parks on the WAL's
    flushed-LSN watermark {e outside} that lock (the group-commit
    combiner amortises one fsync over every commit in the batch; see
    {!Wal.force_upto}).  The commit may be acknowledged only after
    {!wait_durable} returns.  Applying before durability is sound
    because a dependent transaction's commit record necessarily lands
    later in the log: a crash losing this commit also loses every
    dependent one (prefix property), so recovery never exposes an
    effect whose commit record was lost. *)

(** Stage 1: validate (for optimistic objects), append the commit
    record, apply.  [Ok lsn] is the commit record's LSN to pass to
    {!wait_durable}; on validation failure the transaction is aborted
    (and its [Abort] logged if it logged a [Begin]). *)
val try_commit_nowait : t -> Tid.t -> (int, string * Op.t * Op.t) result

(** Stage 2: block until the WAL's flushed watermark covers [lsn]
    (emits a [Wal_flush_wait] trace span).  Call without holding the
    engine lock. *)
val wait_durable : t -> Tid.t -> int -> unit

(** [try_commit t tid] is both stages back to back — the per-commit
    durability discipline (still the default for single-threaded
    drivers). *)
val try_commit : t -> Tid.t -> (unit, string * Op.t * Op.t) result

(** {2 Two-phase-commit participant half}

    {!Sharded_database} commits a cross-shard transaction by running
    this split on every participant shard: {!prepare} is the phase-1
    vote (validate + log a [Prepare] record whose LSN the caller must
    force before answering yes), {!finish_prepared} is the phase-2
    completion once the coordinator's decision is known.  Between the
    two the transaction stays live — locks held, optimistic intentions
    parked — exactly as between {!invoke} and {!try_commit_nowait}. *)

(** Phase 1: validate at every object and log a [Prepare] record.
    [Ok lsn] is the prepare record's LSN — the caller must
    [Wal.force_upto] it before voting yes (a yes vote is a durable
    promise).  On validation failure the transaction is aborted locally
    (its [Abort] logged if it logged a [Begin]) and the conflicting
    object/operation pair returned — a no vote. *)
val prepare : t -> Tid.t -> (int, string * Op.t * Op.t) result

(** Phase 2: log the local outcome record ([Commit] or [Abort]) and
    apply it; returns the outcome record's LSN.  The append is not
    forced here — if a crash loses it, the shard's forced [Prepare]
    survives and {!Sharded_database.recover} re-resolves the in-doubt
    transaction from the coordinator's decision evidence, appending the
    same outcome again (recovery and this function are idempotent
    completions of the same protocol). *)
val finish_prepared : t -> Tid.t -> commit:bool -> int

(** [flush t] forces everything appended so far (a deterministic batch
    boundary for {!Tm_sim.Scheduler.run_durable}'s [~group_commit]
    knob); emits a system [Wal_force] span. *)
val flush : t -> unit

(** Aborts the transaction; the [Abort] record is logged only when the
    transaction logged a [Begin] (i.e. executed at least one operation
    here) — aborts of unlogged transactions leave the WAL untouched. *)
val abort : t -> Tid.t -> unit

(** [checkpoint t] appends a {e fuzzy} [Checkpoint] record: the committed
    operations in global commit order, every in-flight transaction's
    logged operations, and the tid allocator's high-water mark (committed
    size observed in the [tm_wal_checkpoint_ops] histogram).  After a
    checkpoint the preceding log segment may be dropped with
    {!Wal.truncate_to_checkpoint} without changing replay. *)
val checkpoint : t -> unit

(** [recover ~wal ~rebuild ()] reconstructs the database after a crash:
    [rebuild] supplies fresh objects (same specs/conflicts/recovery as
    before the crash); each is restored with the committed operations of
    {e its} object from the log.  Returns the database and the losers,
    or a typed {!Recovery.error} when a replayed sequence violates an
    object's specification (the caller — crash harness, CLI — reports it
    instead of catching exceptions).  Transaction-id allocation restarts
    strictly above every tid the log mentions (the replay plan's tid
    high-water mark), so post-crash transactions never merge with a
    pre-crash loser on a later replay.  Replay volume is counted as
    [tm_recovery_replayed_ops_total] / [tm_recovery_loser_txns_total] in
    the new database's registry; [trace], if given, is attached to it
    and receives the [Crash_recover] span.

    {b Partitioned replay.}  The log is bucketed once into
    per-object committed-operation lists ({!Wal.plan}), each object is
    assigned to one of [workers] partitions by a stable hash of its
    name, and the partitions are replayed by a pool of [workers] domains
    joined at a barrier (losers are merged there too).  [workers = 1]
    (the default) replays everything on the calling domain and is
    observationally identical to the historical serial replay.  Raises
    [Invalid_argument] if [workers < 1].  For every [n], the recovered
    committed state, loser set and [first_tid] are identical to serial
    replay: partitions are disjoint by object, and per-object operation
    order — the only order restore depends on — is preserved by the
    plan.

    With [profile], the restart profiler is threaded through the replay
    (log scan, checkpoint seeding, loser resolution) and the per-object
    restore loop; on success the profile is finished, exported as the
    [tm_recovery_*] metric family into the new registry, and emitted as
    one [Recovery_phase] trace span per phase (plus one
    [object_replay.p<i>] span per partition when parallel).  Callers
    that loaded the log from storage pass the {e same} profile to
    {!Disk_wal.load} first, so the storage-scan / decode / CRC phases
    land in the same profile.  The profile is never shared across
    domains: with [workers > 1] the whole pool is charged to the
    object-replay phase at the barrier and per-partition wall times are
    recorded coordinator-side. *)
val recover :
  ?trace:Tm_obs.Trace.t -> ?profile:Tm_obs.Recovery_profile.t -> ?workers:int ->
  wal:Wal.t ->
  rebuild:(unit -> Atomic_object.t list) ->
  unit -> (t * Tid.Set.t, Recovery.error) result
