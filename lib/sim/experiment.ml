open Tm_core
module Atomic_object = Tm_engine.Atomic_object
module Database = Tm_engine.Database
module Recovery = Tm_engine.Recovery
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace

type conflict_choice =
  | Semantic
  | Read_write
  | Total

type setup = {
  recovery : Recovery.kind;
  choice : conflict_choice;
  occ : bool;
}

let setup ?(occ = false) recovery choice = { recovery; choice; occ }

let label s =
  let r =
    if s.occ then "OCC"
    else match s.recovery with Recovery.UIP -> "UIP" | Recovery.DU -> "DU"
  in
  let c =
    match s.choice with
    | Semantic -> (match s.recovery with Recovery.UIP -> "NRBC" | Recovery.DU -> "NFC")
    | Read_write -> "RW"
    | Total -> "ALL"
  in
  r ^ "+" ^ c

let default_setups =
  [
    setup Recovery.UIP Semantic;
    setup Recovery.DU Semantic;
    setup ~occ:true Recovery.DU Semantic;
    setup Recovery.UIP Read_write;
    setup Recovery.DU Read_write;
    setup Recovery.UIP Total;
  ]

type scenario = {
  name : string;
  workload : Workload.t;
  build : setup -> Atomic_object.t list;
}

(* Conflict relation for one object under a setup, given its per-type
   relations; optimistic objects validate with the same relation they
   would have locked with. *)
let pick_conflict s ~nfc ~nrbc ~rw =
  match s.choice with
  | Semantic -> (match s.recovery with Recovery.UIP -> nrbc | Recovery.DU -> nfc)
  | Read_write -> rw
  | Total -> Conflict.all

let make_object s spec ~nfc ~nrbc ~rw =
  let conflict = pick_conflict s ~nfc ~nrbc ~rw in
  if s.occ then Atomic_object.create_optimistic ~spec ~conflict
  else Atomic_object.create ~spec ~conflict ~recovery:s.recovery ()

let bank_object s spec =
  make_object s spec ~nfc:Tm_adt.Bank_account.nfc_conflict
    ~nrbc:Tm_adt.Bank_account.nrbc_conflict ~rw:Tm_adt.Bank_account.rw_conflict

(* Hot accounts are pre-funded so withdrawals exercise the ok path. *)
let funded_account = Tm_adt.Bank_account.spec_with_initial 100_000

let bank_hotspot =
  {
    name = "bank-hotspot";
    workload = Workload.bank_hotspot ();
    build = (fun s -> [ bank_object s funded_account ]);
  }

let bank_sweep ~withdraw_pct =
  {
    name = Fmt.str "bank-w%d" withdraw_pct;
    workload =
      Workload.bank_hotspot ~deposit:(100 - withdraw_pct) ~withdraw:withdraw_pct
        ~balance:0 ();
    build = (fun s -> [ bank_object s funded_account ]);
  }

let bank_accounts ?(accounts = 8) ?(skew = 0.8) () =
  {
    name = Fmt.str "bank-%d-accounts" accounts;
    workload = Workload.bank_accounts ~accounts ~skew ();
    build =
      (fun s ->
        List.init accounts (fun i ->
            bank_object s (Spec.rename funded_account (Fmt.str "BA%d" i))));
  }

(* A pool roomy enough that workload updates essentially always succeed:
   the interesting conflicts are between successful updates, not failures
   at the bounds. *)
module Pool = Tm_adt.Bounded_counter.Make (struct
  let capacity = 100_000
  let initial = 50_000
  let name = "CTR"
end)

let pool_object s =
  make_object s Pool.spec ~nfc:Pool.nfc_conflict ~nrbc:Pool.nrbc_conflict
    ~rw:Pool.rw_conflict

let inventory =
  {
    name = "inventory-escrow";
    workload = Workload.inventory ();
    build = (fun s -> [ pool_object s ]);
  }

let inventory_sweep ~decr_pct =
  {
    name = Fmt.str "inventory-d%d" decr_pct;
    workload = Workload.inventory ~incr:(100 - decr_pct) ~decr:decr_pct ~read:0 ();
    build = (fun s -> [ pool_object s ]);
  }

let queue_semiqueue =
  {
    name = "queue-broker-semiqueue";
    workload = Workload.queue_broker ~obj:"SQ" ();
    build =
      (fun s ->
        [
          make_object s Tm_adt.Semiqueue.spec ~nfc:Tm_adt.Semiqueue.nfc_conflict
            ~nrbc:Tm_adt.Semiqueue.nrbc_conflict ~rw:Tm_adt.Semiqueue.rw_conflict;
        ]);
  }

let queue_fifo =
  {
    name = "queue-broker-fifo";
    workload = Workload.queue_broker ~obj:"FQ" ();
    build =
      (fun s ->
        [
          make_object s Tm_adt.Fifo_queue.spec ~nfc:Tm_adt.Fifo_queue.nfc_conflict
            ~nrbc:Tm_adt.Fifo_queue.nrbc_conflict ~rw:Tm_adt.Fifo_queue.rw_conflict;
        ]);
  }

let register_baseline =
  {
    name = "register-mix";
    workload = Workload.register_mix ();
    build =
      (fun s ->
        [
          make_object s Tm_adt.Register.spec ~nfc:Tm_adt.Register.nfc_conflict
            ~nrbc:Tm_adt.Register.nrbc_conflict ~rw:Tm_adt.Register.rw_conflict;
        ]);
  }

let kv_store ?(keys = 4) () =
  {
    name = "kv-mix";
    workload = Workload.kv_mix ~keys ();
    build =
      (fun s ->
        [
          make_object s Tm_adt.Kv_store.spec ~nfc:Tm_adt.Kv_store.nfc_conflict
            ~nrbc:Tm_adt.Kv_store.nrbc_conflict ~rw:Tm_adt.Kv_store.rw_conflict;
        ]);
  }

let transfer ?(accounts = 4) () =
  {
    name = "transfer";
    workload = Workload.transfer ~accounts ();
    build =
      (fun s ->
        List.init accounts (fun i ->
            bank_object s (Spec.rename funded_account (Fmt.str "BA%d" i))));
  }

(* Dynamic atomicity is local (Theorem 2): different objects may use
   different recovery methods and conflict relations in one system.  This
   build alternates UIP+NRBC and DU+NFC across the accounts. *)
let transfer_mixed_recovery ?(accounts = 4) () =
  {
    name = "transfer-mixed";
    workload = Workload.transfer ~accounts ();
    build =
      (fun _s ->
        List.init accounts (fun i ->
            let spec = Spec.rename funded_account (Fmt.str "BA%d" i) in
            if i mod 2 = 0 then
              Atomic_object.create ~spec ~conflict:Tm_adt.Bank_account.nrbc_conflict
                ~recovery:Recovery.UIP ()
            else
              Atomic_object.create ~spec ~conflict:Tm_adt.Bank_account.nfc_conflict
                ~recovery:Recovery.DU ()));
  }

let all_scenarios =
  [
    bank_hotspot;
    bank_accounts ();
    inventory;
    queue_semiqueue;
    queue_fifo;
    register_baseline;
    kv_store ();
    transfer ();
  ]

type row = {
  scenario : string;
  setup : string;
  stats : Scheduler.stats;
  consistent : bool;
  deadlock_victims : int;
  retries : int;
  metrics : Metrics.t;
  trace : Trace.t option;
}

let verify_database db =
  List.for_all
    (fun o -> Spec.legal (Atomic_object.spec o) (Atomic_object.committed_ops o))
    (Database.objects db)

let run_db ?(record_trace = false) ~name ~label db workload cfg =
  let trace =
    if record_trace then begin
      let tr = Trace.create () in
      Database.set_trace db tr;
      Some tr
    end
    else None
  in
  let stats = Scheduler.run db workload cfg in
  let reg = Database.metrics db in
  {
    scenario = name;
    setup = label;
    stats;
    consistent = verify_database db;
    deadlock_victims = Metrics.counter_value reg "tm_deadlock_victims_total";
    retries = Metrics.counter_value reg "tm_txn_retries_total";
    metrics = reg;
    trace;
  }

let run ?record_trace scenario s cfg =
  let db = Database.create (scenario.build s) in
  run_db ?record_trace ~name:scenario.name ~label:(label s) db scenario.workload cfg

let run_durable ?(record_trace = false) ?wal ?(checkpoint_every = 0)
    ?(group_commit = 1) scenario s cfg =
  let wal = match wal with Some w -> w | None -> Tm_engine.Wal.create () in
  let dd = Tm_engine.Durable_database.create ~wal (scenario.build s) in
  let trace =
    if record_trace then begin
      let tr = Trace.create () in
      Database.set_trace (Tm_engine.Durable_database.database dd) tr;
      Some tr
    end
    else None
  in
  let stats =
    Scheduler.run_durable ~checkpoint_every ~group_commit dd scenario.workload cfg
  in
  let db = Tm_engine.Durable_database.database dd in
  let reg = Database.metrics db in
  let row =
    {
      scenario = scenario.name;
      setup = label s;
      stats;
      consistent = verify_database db;
      deadlock_victims = Metrics.counter_value reg "tm_deadlock_victims_total";
      retries = Metrics.counter_value reg "tm_txn_retries_total";
      metrics = reg;
      trace;
    }
  in
  (row, wal)

let run_custom ?record_trace ~name ~label ~workload ~build cfg =
  let db = Database.create (build ()) in
  run_db ?record_trace ~name ~label db workload cfg

let run_matrix ?record_trace scenario cfg =
  List.map (fun s -> run ?record_trace scenario s cfg) default_setups

let pp_row ppf r =
  Fmt.pf ppf "%-24s %-10s %a; victims %d; retries %d%s" r.scenario r.setup
    Scheduler.pp_stats r.stats r.deadlock_victims r.retries
    (if r.consistent then "" else "  !! INCONSISTENT")

let pp_table ppf rows =
  Fmt.pf ppf "@[<v>%-24s %-10s %8s %8s %8s %8s %8s %8s %8s %10s %8s@;" "scenario"
    "setup" "commit" "abort" "victims" "retries" "rounds" "exec" "blocked" "avg-act"
    "effcy";
  List.iter
    (fun r ->
      let s = r.stats in
      Fmt.pf ppf "%-24s %-10s %8d %8d %8d %8d %8d %8d %8d %10.2f %8.3f%s@;" r.scenario
        r.setup s.Scheduler.committed
        (s.Scheduler.deadlock_aborts + s.Scheduler.livelock_aborts
       + s.Scheduler.validation_aborts)
        r.deadlock_victims r.retries s.Scheduler.rounds s.Scheduler.executed
        s.Scheduler.blocked (Scheduler.avg_active s) (Scheduler.efficiency s)
        (if r.consistent then "" else "  !! INCONSISTENT"))
    rows;
  Fmt.pf ppf "@]"
