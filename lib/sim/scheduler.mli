(** Deterministic concurrent-transaction scheduler.

    Runs a stream of workload-generated transaction programs against a
    {!Tm_engine.Database} with bounded concurrency, retrying blocked
    invocations, detecting deadlocks (victim: youngest in the cycle) and
    breaking livelocks.  All choices are drawn from a seeded PRNG, so a
    run is a pure function of (database, workload, config) — measurements
    are reproducible.

    Scheduling model: time advances in {e rounds}; in each round every
    active transaction attempts its next invocation once, in random
    order.  An attempt either executes, blocks (conflict — the
    transaction keeps its place and retries next round), or finds no
    legal response yet (partial operation).  A transaction whose program
    is exhausted commits at the end of its round. *)

type config = {
  concurrency : int;  (** max simultaneously active transactions *)
  total_txns : int;  (** programs to admit *)
  seed : int;
  max_rounds : int;  (** safety stop *)
  max_retries : int;  (** per-program restarts after an abort *)
}

val config :
  ?concurrency:int -> ?total_txns:int -> ?seed:int -> ?max_rounds:int ->
  ?max_retries:int -> unit -> config

type stats = {
  committed : int;
  deadlock_aborts : int;  (** abort events due to waits-for cycles *)
  livelock_aborts : int;  (** abort events breaking no-progress rounds *)
  validation_aborts : int;
      (** optimistic transactions that failed commit-time validation *)
  gave_up : int;  (** programs dropped after [max_retries] *)
  rounds : int;
  attempts : int;  (** invocation attempts *)
  executed : int;  (** operations that executed *)
  blocked : int;  (** attempts that hit a conflict *)
  no_response : int;  (** attempts on a partial op with no response *)
  active_sum : int;  (** Σ over rounds of active transactions *)
}

(** Mean active transactions per round. *)
val avg_active : stats -> float

(** Committed transactions per attempt — the work-efficiency measure used
    by the benchmark tables (1.0 = never blocked or retried). *)
val efficiency : stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** [run db workload cfg] drives the database to completion of the
    admitted programs (or [max_rounds]).

    Scheduler-level observability lands in [db]'s metrics registry:
    [tm_sched_rounds_total], the per-round concurrency gauge
    [tm_sched_active_txns] (plus the [.._per_round] histogram),
    [tm_txn_retries_total], [tm_deadlock_victims_total] and
    [tm_txn_gave_up_total].  Victim selection also emits a
    [Deadlock_victim] span when a trace recorder is attached. *)
val run : Tm_engine.Database.t -> Workload.t -> config -> stats

(** [run_durable ?checkpoint_every dd workload cfg] — same scheduling
    loop, but every transaction-facing call goes through the WAL-logged
    {!Tm_engine.Durable_database} surface, so the resulting log is a
    faithful record of a concurrent run (the crash-injection harness
    tortures it).  When [checkpoint_every = n > 0], a fuzzy checkpoint is
    taken after every [n]th commit — deliberately {e mid-run}, while
    other transactions are in flight.  Default [0]: never.

    [group_commit] (default 1) batches durability deterministically:
    commits run stage 1 only ({!Tm_engine.Durable_database.try_commit_nowait})
    and the barrier ({!Tm_engine.Durable_database.flush}) runs after
    every [n]th commit plus once after the loop, so a disk-backed log
    sees one fsync per batch while the record order — and therefore
    replay — is exactly that of a per-commit-force run.  [1] reproduces
    the per-commit discipline. *)
val run_durable :
  ?checkpoint_every:int -> ?group_commit:int -> Tm_engine.Durable_database.t ->
  Workload.t -> config -> stats
