open Tm_core
module Database = Tm_engine.Database
module Atomic_object = Tm_engine.Atomic_object
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace

type config = {
  concurrency : int;
  total_txns : int;
  seed : int;
  max_rounds : int;
  max_retries : int;
}

let config ?(concurrency = 8) ?(total_txns = 100) ?(seed = 42) ?(max_rounds = 100_000)
    ?(max_retries = 20) () =
  { concurrency; total_txns; seed; max_rounds; max_retries }

type stats = {
  committed : int;
  deadlock_aborts : int;
  livelock_aborts : int;
  validation_aborts : int;
  gave_up : int;
  rounds : int;
  attempts : int;
  executed : int;
  blocked : int;
  no_response : int;
  active_sum : int;
}

let avg_active s = if s.rounds = 0 then 0. else float_of_int s.active_sum /. float_of_int s.rounds

let efficiency s =
  if s.attempts = 0 then 0. else float_of_int s.committed /. float_of_int s.attempts

let pp_stats ppf s =
  Fmt.pf ppf
    "committed %d; aborts %d (deadlock) + %d (livelock) + %d (validation); gave up %d; \
     rounds %d; attempts %d (executed %d, blocked %d, no-response %d); avg active %.2f; \
     efficiency %.3f"
    s.committed s.deadlock_aborts s.livelock_aborts s.validation_aborts s.gave_up
    s.rounds s.attempts
    s.executed s.blocked s.no_response (avg_active s) (efficiency s)

type active_txn = {
  tid : Tid.t;
  program : Workload.program;  (* full program, for restarts *)
  mutable remaining : Workload.program;
  retries : int;
}

(* The transaction-facing surface of a database, so one scheduling loop
   drives both the plain {!Tm_engine.Database} and the WAL-backed
   {!Tm_engine.Durable_database} (whose durable runs the crash-injection
   harness tortures).  [db] is the underlying database, used for
   scheduler metrics, deadlock detection and trace spans. *)
type ops = {
  begin_txn : unit -> Tid.t;
  invoke :
    choose:(Value.t list -> Value.t) ->
    Tid.t -> obj:string -> Op.invocation -> Atomic_object.outcome;
  try_commit : Tid.t -> (unit, string * Op.t * Op.t) result;
  abort : Tid.t -> unit;
  on_commit : unit -> unit;  (* post-commit hook: durable checkpoints *)
}

let run_ops db ops (workload : Workload.t) cfg =
  let rng = Random.State.make [| cfg.seed |] in
  (* Scheduler-level series in the database registry; the victim/retry
     counters share their names with [Tm_engine.Concurrent] so consumers
     read one series regardless of driver. *)
  let reg = Database.metrics db in
  let c_rounds = Metrics.counter reg "tm_sched_rounds_total" in
  let c_victims = Metrics.counter reg "tm_deadlock_victims_total" in
  let c_retries = Metrics.counter reg "tm_txn_retries_total" in
  let c_gave_up = Metrics.counter reg "tm_txn_gave_up_total" in
  let g_active = Metrics.gauge reg "tm_sched_active_txns" in
  let h_active = Metrics.histogram reg "tm_sched_active_txns_per_round" in
  let pending = Queue.create () in
  for _ = 1 to cfg.total_txns do
    Queue.add (workload.generate rng, 0) pending
  done;
  let active : active_txn list ref = ref [] in
  let stats =
    ref
      {
        committed = 0;
        deadlock_aborts = 0;
        livelock_aborts = 0;
        validation_aborts = 0;
        gave_up = 0;
        rounds = 0;
        attempts = 0;
        executed = 0;
        blocked = 0;
        no_response = 0;
        active_sum = 0;
      }
  in
  let bump f = stats := f !stats in
  let admit () =
    while List.length !active < cfg.concurrency && not (Queue.is_empty pending) do
      let program, retries = Queue.pop pending in
      let tid = ops.begin_txn () in
      active := !active @ [ { tid; program; remaining = program; retries } ]
    done
  in
  let remove tid = active := List.filter (fun t -> not (Tid.equal t.tid tid)) !active in
  let abort_and_requeue reason t =
    (match reason with
    | `Validation ->
        (* Database.try_commit already aborted the transaction. *)
        bump (fun s -> { s with validation_aborts = s.validation_aborts + 1 })
    | `Deadlock ->
        ops.abort t.tid;
        bump (fun s -> { s with deadlock_aborts = s.deadlock_aborts + 1 })
    | `Livelock ->
        ops.abort t.tid;
        bump (fun s -> { s with livelock_aborts = s.livelock_aborts + 1 }));
    remove t.tid;
    if t.retries < cfg.max_retries then begin
      Metrics.Counter.incr c_retries;
      Queue.add (t.program, t.retries + 1) pending
    end
    else begin
      Metrics.Counter.incr c_gave_up;
      bump (fun s -> { s with gave_up = s.gave_up + 1 })
    end
  in
  let shuffle l =
    let arr = Array.of_list l in
    for i = Array.length arr - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.to_list arr
  in
  let choose values = List.nth values (Random.State.int rng (List.length values)) in
  let find_active tid = List.find_opt (fun t -> Tid.equal t.tid tid) !active in
  let progressed = ref false in
  let step t =
    match t.remaining with
    | [] -> (
        match ops.try_commit t.tid with
        | Ok () ->
            remove t.tid;
            bump (fun s -> { s with committed = s.committed + 1 });
            ops.on_commit ();
            progressed := true
        | Error _ ->
            abort_and_requeue `Validation t;
            progressed := true)
    | (obj, inv) :: rest -> (
        bump (fun s -> { s with attempts = s.attempts + 1 });
        match ops.invoke ~choose t.tid ~obj inv with
        | Atomic_object.Executed _ ->
            t.remaining <- rest;
            bump (fun s -> { s with executed = s.executed + 1 });
            progressed := true
        | Atomic_object.Blocked _ -> (
            bump (fun s -> { s with blocked = s.blocked + 1 });
            match Database.deadlock db with
            | Some cycle -> (
                let victim = Tm_engine.Deadlock.victim cycle in
                match find_active victim with
                | Some v ->
                    Metrics.Counter.incr c_victims;
                    Database.emit_trace db ~tid:victim (Trace.Deadlock_victim { cycle });
                    abort_and_requeue `Deadlock v
                | None -> ())
            | None -> ())
        | Atomic_object.No_response ->
            bump (fun s -> { s with no_response = s.no_response + 1 }))
  in
  let rec loop round =
    admit ();
    if !active = [] || round >= cfg.max_rounds then
      bump (fun s -> { s with rounds = round })
    else begin
      let n_active = List.length !active in
      Metrics.Counter.incr c_rounds;
      Metrics.Gauge.set g_active (float_of_int n_active);
      Metrics.Histogram.observe_int h_active n_active;
      bump (fun s -> { s with active_sum = s.active_sum + n_active });
      progressed := false;
      List.iter (fun t -> if find_active t.tid <> None then step t) (shuffle !active);
      if (not !progressed) && !active <> [] then begin
        (* No transaction advanced and there is no waits-for cycle (else a
           victim would have been taken): some are stalled on partial
           operations and the rest wait behind them — break the livelock
           by aborting the youngest. *)
        match List.rev !active with
        | youngest :: _ -> abort_and_requeue `Livelock youngest
        | [] -> ()
      end;
      loop (round + 1)
    end
  in
  loop 0;
  !stats

let run db workload cfg =
  run_ops db
    {
      begin_txn = (fun () -> Database.begin_txn db);
      invoke = (fun ~choose tid ~obj inv -> Database.invoke ~choose db tid ~obj inv);
      try_commit = (fun tid -> Database.try_commit db tid);
      abort = (fun tid -> Database.abort db tid);
      on_commit = ignore;
    }
    workload cfg

let run_durable ?(checkpoint_every = 0) ?(group_commit = 1) dd workload cfg =
  let module DD = Tm_engine.Durable_database in
  if group_commit < 1 then invalid_arg "Scheduler.run_durable: group_commit < 1";
  let commits = ref 0 in
  (* Committers parked on the durability watermark: committed in the log
     but not yet acknowledged.  Mirrored in the trace as a
     [wal_flush_wait .. durable] span per transaction so timelines show
     the flush-wait phase group commit introduces. *)
  let parked : (Tid.t * int) list ref = ref [] in
  let db = DD.database dd in
  let release_parked () =
    List.iter
      (fun (tid, lsn) ->
        Tm_engine.Database.emit_trace db ~tid (Tm_obs.Trace.Durable { lsn }))
      (List.rev !parked);
    parked := []
  in
  let stats =
    run_ops db
      {
        begin_txn = (fun () -> DD.begin_txn dd);
        invoke = (fun ~choose tid ~obj inv -> DD.invoke ~choose dd tid ~obj inv);
        (* Deterministic group commit: stage 1 only (validate / append /
           apply); durability is awaited at the batch boundary in
           [on_commit], so a disk-backed log sees one barrier per
           [group_commit] commits instead of one per commit.  With the
           default [group_commit = 1] every commit is individually
           forced, reproducing the per-commit discipline exactly. *)
        try_commit =
          (fun tid ->
            match DD.try_commit_nowait dd tid with
            | Ok lsn ->
                Tm_engine.Database.emit_trace db ~tid
                  (Tm_obs.Trace.Wal_flush_wait { upto = lsn });
                parked := (tid, lsn) :: !parked;
                Ok ()
            | Error _ as e -> e);
        abort = (fun tid -> DD.abort dd tid);
        on_commit =
          (fun () ->
            incr commits;
            if !commits mod group_commit = 0 then begin
              DD.flush dd;
              release_parked ()
            end;
            if checkpoint_every > 0 && !commits mod checkpoint_every = 0 then
              DD.checkpoint dd);
      }
      workload cfg
  in
  (* Close the final (possibly partial) batch: nothing the run appended
     is left unforced. *)
  DD.flush dd;
  release_parked ();
  stats
