(** Experiment harness: scenarios × engine setups → comparable rows.

    The paper's Section 8 conclusion — the two recovery methods trade off
    {e incomparable} amounts of concurrency — is qualitative; these
    experiments quantify it.  A {e scenario} fixes a workload and the
    objects it touches; a {e setup} fixes the recovery method and how the
    conflict relation is chosen:

    - [Semantic]: the minimal sound relation for the recovery method per
      Theorems 9/10 — NRBC for update-in-place, NFC for deferred-update;
    - [Read_write]: classical strict two-phase locking (the baseline that
      ignores type semantics);
    - [Total]: everything conflicts (serial execution reference). *)

module Atomic_object = Tm_engine.Atomic_object
module Database = Tm_engine.Database
module Recovery = Tm_engine.Recovery

type conflict_choice =
  | Semantic
  | Read_write
  | Total

type setup = {
  recovery : Recovery.kind;
  choice : conflict_choice;
  occ : bool;
      (** optimistic execution (validation at commit); implies
          deferred-update recovery *)
}

(** [setup ?occ recovery choice] — [occ] defaults to false. *)
val setup : ?occ:bool -> Recovery.kind -> conflict_choice -> setup

val label : setup -> string

(** The comparison run by default benches: UIP+NRBC, DU+NFC, OCC+NFC,
    UIP+RW, DU+RW, UIP+Total. *)
val default_setups : setup list

type scenario = {
  name : string;
  workload : Workload.t;
  build : setup -> Atomic_object.t list;  (** fresh objects per run *)
}

(** {1 Built-in scenarios} *)

val bank_hotspot : scenario

(** Pure-update mix on one funded account: [withdraw_pct]% withdrawals,
    the rest deposits, no balance reads.  Sweeping [withdraw_pct]
    exhibits the paper's incomparability as a crossover: at 100%
    successful withdrawals commute backward (UIP+NRBC runs them
    concurrently) but not forward (DU+NFC serialises them); at moderate
    mixes deposit/withdraw pairs commute forward (DU) but withdrawals do
    not push back over deposits (UIP). *)
val bank_sweep : withdraw_pct:int -> scenario

(** [accounts] objects, Zipf-skewed access. *)
val bank_accounts : ?accounts:int -> ?skew:float -> unit -> scenario

val inventory : scenario

(** Escrow-pool mirror of {!bank_sweep}: [decr_pct]% reservations vs
    restocks on a half-full pool.  Same-direction updates favour UIP;
    mixed directions favour DU (neither ok-update pushes back over the
    other under UIP, by the capacity/zero bounds). *)
val inventory_sweep : decr_pct:int -> scenario
val queue_semiqueue : scenario
val queue_fifo : scenario
val register_baseline : scenario
val kv_store : ?keys:int -> unit -> scenario

(** Multi-object transfers between funded accounts. *)
val transfer : ?accounts:int -> unit -> scenario

(** Transfers over objects that alternate recovery methods — dynamic
    atomicity is local (Theorem 2), so the mix is still correct; the
    build ignores the setup's recovery choice. *)
val transfer_mixed_recovery : ?accounts:int -> unit -> scenario

val all_scenarios : scenario list

(** {1 Running} *)

type row = {
  scenario : string;
  setup : string;
  stats : Scheduler.stats;
  consistent : bool;
      (** post-run invariant: at every object the committed operations
          replay legally in commit order *)
  deadlock_victims : int;  (** [tm_deadlock_victims_total] after the run *)
  retries : int;  (** [tm_txn_retries_total] after the run *)
  metrics : Tm_obs.Metrics.t;  (** the database registry, for exporters *)
  trace : Tm_obs.Trace.t option;  (** populated when [record_trace] *)
}

(** [run ?record_trace scenario setup cfg] — when [record_trace] (default
    false) a {!Tm_obs.Trace} recorder is attached before the run and
    returned in the row for JSONL export or trace→history replay. *)
val run : ?record_trace:bool -> scenario -> setup -> Scheduler.config -> row

(** [run_durable ?wal ?checkpoint_every scenario setup cfg] runs the
    scenario through a WAL-backed {!Tm_engine.Durable_database} and
    returns the row together with the log, ready for the crash-injection
    harness ({!Tm_engine.Crash.torture}).  [wal] defaults to a fresh
    in-memory log; pass a {!Tm_engine.Disk_wal}-backed one to drive the
    workload against real (or fault-injected) storage.  When
    [checkpoint_every = n > 0] a fuzzy checkpoint is appended after every
    [n]th commit, i.e. while other transactions are typically in flight.
    [group_commit] (default 1) is {!Scheduler.run_durable}'s
    deterministic batching knob: the durability barrier runs after every
    [n]th commit instead of every commit.  [record_trace] behaves as in
    {!run}; durable runs additionally emit [wal_flush_wait]/[durable]
    spans around the group-commit watermark. *)
val run_durable :
  ?record_trace:bool -> ?wal:Tm_engine.Wal.t -> ?checkpoint_every:int ->
  ?group_commit:int -> scenario -> setup -> Scheduler.config ->
  row * Tm_engine.Wal.t

(** [run_custom] — for ablations with hand-built objects (custom conflict
    relations, mixed policies); [label] is the setup column text. *)
val run_custom :
  ?record_trace:bool -> name:string -> label:string -> workload:Workload.t ->
  build:(unit -> Atomic_object.t list) -> Scheduler.config -> row

(** [run_matrix scenario cfg] runs {!default_setups}. *)
val run_matrix : ?record_trace:bool -> scenario -> Scheduler.config -> row list

val pp_row : Format.formatter -> row -> unit

(** Render rows as an aligned table (one line per row). *)
val pp_table : Format.formatter -> row list -> unit

(** [verify_database db] — the per-object commit-order replay check. *)
val verify_database : Database.t -> bool
