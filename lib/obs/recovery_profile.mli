(** Restart profiler: per-phase timing and volume accounting for one
    crash recovery.

    A single value is created by the caller that drives a restart and
    threaded through the whole path — {!Tm_engine.Disk_wal.load} charges
    the storage scan and (via {!Tm_engine.Wal.Codec.decode_all}) frame
    decode and CRC verification, {!Tm_engine.Wal.replay} charges the log
    scan, checkpoint seeding and loser resolution, and
    {!Tm_engine.Durable_database.recover} charges per-object replay.
    Each layer also records what it processed (bytes, frames, records,
    per-object operation counts), so a restart is no longer one opaque
    call: the profile says where the time went and what the log
    contained.

    Wall times come from an injectable [clock] (default
    [Unix.gettimeofday]); tests inject a deterministic one.  Phases
    {e tile}: nested work is charged to the inner phase only
    ({!time_excluding}), so phase walls sum to (approximately) the
    instrumented time rather than double counting. *)

type phase =
  | Storage_scan  (** reading the backend's bytes *)
  | Frame_decode  (** frame parsing, excluding CRC verification *)
  | Checksum_verify  (** CRC-32 over each frame payload *)
  | Checkpoint_seed  (** installing a checkpoint snapshot during the scan *)
  | Log_scan  (** folding records into replay state, excluding seeding *)
  | Object_replay  (** re-applying committed operations per object *)
  | Loser_undo
      (** resolving the loser set.  The log is redo-only, so "undo" is
          identifying the transactions that must count as aborted —
          no state is rolled back. *)

val all_phases : phase list
val phase_name : phase -> string

type t

(** [create ?clock ()] — [clock] defaults to [Unix.gettimeofday]. *)
val create : ?clock:(unit -> float) -> unit -> t

(** A reading of the profile's clock, for callers that measure an
    interval themselves (e.g. per-partition replay walls) and want the
    injected clock rather than [Unix.gettimeofday]. *)
val now : t -> float

(** [time t ph f] runs [f], charging its wall time (and one call) to
    [ph]. *)
val time : t -> phase -> (unit -> 'a) -> 'a

(** [time_excluding t ph ~minus f] charges [f]'s wall time to [ph]
    {e minus} whatever [f] itself charged to [minus] — so an outer phase
    and the inner phase it contains stay disjoint. *)
val time_excluding : t -> phase -> minus:phase -> (unit -> 'a) -> 'a

(** Direct accumulation (for callers that measured elsewhere). *)
val add_wall : t -> phase -> float -> unit

(** {1 Volume accounting} *)

val note_bytes_scanned : t -> int -> unit
val note_torn_bytes : t -> int -> unit
val note_frame : t -> unit

(** [note_frames t n] counts [n] frames at once (the parallel decode
    path, which verifies frames in worker domains and accounts for them
    at the barrier). *)
val note_frames : t -> int -> unit

val note_records_scanned : t -> int -> unit
val note_checkpoint_seed : t -> ops:int -> unit

(** [note_object_replay t ~obj n] — [n] committed operations re-applied
    to [obj]. *)
val note_object_replay : t -> obj:string -> int -> unit

val note_losers : t -> int -> unit

(** {1 Partitioned replay}

    A partitioned restart ({!Tm_engine.Durable_database.recover} with
    [~workers]) records its worker count and one outcome per partition.
    The profile is {e not} shared across worker domains: the coordinator
    notes everything after the join barrier, so these mutators are
    single-threaded like the rest of the profile. *)

(** [note_workers t n] — the replay ran with [n] workers (1 = serial). *)
val note_workers : t -> int -> unit

(** [note_partition t ~index ~objects ~ops ~wall] — partition [index]
    restored [objects] objects, replaying [ops] committed operations in
    [wall] seconds. *)
val note_partition :
  t -> index:int -> objects:int -> ops:int -> wall:float -> unit

(** [finish t] stamps the end-to-end wall time (creation to now). *)
val finish : t -> unit

(** {1 Accessors} *)

val phase_wall : t -> phase -> float
val phase_calls : t -> phase -> int

(** End-to-end wall if {!finish} ran, else the sum of phase walls. *)
val total_wall : t -> float

val bytes_scanned : t -> int
val torn_bytes : t -> int
val frames_decoded : t -> int
val records_scanned : t -> int
val checkpoints_seen : t -> int
val checkpoint_seed_ops : t -> int
val replayed_ops : t -> int
val loser_txns : t -> int

(** [(obj, replayed ops)] sorted by object name. *)
val per_object : t -> (string * int) list

(** Worker count noted by the last partitioned replay (0 when the
    restart never went through the partitioned path). *)
val workers : t -> int

(** [(index, objects, replayed ops, wall seconds)] per partition,
    sorted by index; empty for a serial-only profile. *)
val partitions : t -> (int * int * int * float) list

(** {1 Exports} *)

(** [export t reg] publishes the profile as the [tm_recovery_*] metric
    family: [tm_recovery_phase_seconds{phase}] /
    [tm_recovery_phase_calls_total{phase}] per phase,
    [tm_recovery_wall_seconds], the volume counters
    ([tm_recovery_bytes_scanned_total], [tm_recovery_torn_bytes_total],
    [tm_recovery_frames_decoded_total],
    [tm_recovery_records_scanned_total],
    [tm_recovery_checkpoints_seen_total],
    [tm_recovery_checkpoint_seed_ops_total]) and
    [tm_recovery_object_replayed_ops_total{obj}].  A partitioned replay
    additionally exports [tm_recovery_workers],
    [tm_recovery_partition_seconds{partition}] and
    [tm_recovery_partition_replayed_ops_total{partition}]. *)
val export : t -> Metrics.t -> unit

(** The phases as trace-span payloads [(phase, wall microseconds,
    items)], omitting phases that neither ran nor counted anything.
    [items] is the count most characteristic of the phase (bytes for the
    storage scan, frames for decode/verify, records for the log scan,
    operations for seeding/replay, transactions for loser resolution).
    A partitioned replay appends one [object_replay.p<i>] span per
    partition (its wall and replayed-op count). *)
val spans : t -> (string * int * int) list

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
