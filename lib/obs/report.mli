(** Report assembly: one trace (and optionally one metrics snapshot) in,
    three renderings out.

    - {!pp_text} — a human report: per-transaction timeline tables and
      bars, blocking blame, a flame view of where the ticks went, and
      conflict heat maps (with a UIP-vs-DU comparison whenever the
      metrics snapshot carries a [setup] label);
    - {!to_json} — the same aggregates as a machine-readable summary;
    - {!to_perfetto} — Chrome trace-event JSON loadable in Perfetto /
      [chrome://tracing]: each transaction is a track, each phase
      segment a duration slice.

    Traces whose JSONL lines carry extra string fields (the
    [scenario]/[setup] labels the CLIs append when several runs share a
    file) are split into {!group}s, one Perfetto process / report
    section per group. *)

type group = {
  group_labels : (string * string) list;
      (** the extra fields shared by this group's lines; [[]] for a
          plain single-run dump *)
  events : Trace.event list;
}

(** The restart profiler's export, reconstructed from the
    [tm_recovery_*] samples of a metrics snapshot (values summed across
    any extra labels a merged snapshot carries). *)
type recovery = {
  phase_seconds : (string * float) list;
      (** per-phase wall seconds, in profiler phase order *)
  wall_seconds : float option;  (** [tm_recovery_wall_seconds] *)
  counts : (string * int) list;
      (** the label-less [tm_recovery_*_total] volume counters, keyed by
          full metric name *)
  per_object : (string * int) list;  (** object -> replayed operations *)
}

(** One 2PC in-doubt resolution from a [tm-2pc] audit artifact (see
    {!Artifact.audit_schema}): a prepare the crash left undecided, the
    evidence recovery resolved it with, and the outcome appended. *)
type audit_entry = {
  audit_shard : int;
  audit_tid : int;
  audit_commit : bool;
  audit_evidence : string;  (** ["decision"], ["phase2"] or ["presumed"] *)
}

type t = {
  groups : group list;
  heatmaps : Heatmap.t list;
  recovery : recovery option;
      (** present when the metrics snapshot carries [tm_recovery_*]
          samples *)
  audit : audit_entry list;  (** [[]] when no audit artifact was given *)
}

(** [groups_of_jsonl s] parses a {!Trace.to_jsonl} dump and splits it by
    extra-field set, preserving first-appearance order. *)
val groups_of_jsonl : string -> (group list, string) result

(** Build a report from raw file contents.  Every source may be absent;
    all absent (or all empty) yields an [is_empty] report, which the
    CLI treats as failure.  Self-describing {!Artifact} headers are
    validated when present: a metrics dump must carry a metrics-family
    header, an audit dump a [tm-2pc] header (the trace side is
    validated by {!Trace.parse_jsonl}).

    [traces] (and/or the single [trace_jsonl]) may name several dumps —
    e.g. one per shard, or one per run: each is parsed with its own
    header, then groups with identical label sets are coalesced (events
    appended in input order) and distinct label sets stay separate
    report sections / Perfetto processes. *)
val of_sources :
  ?trace_jsonl:string ->
  ?traces:string list ->
  ?metrics_text:string ->
  ?audit_jsonl:string ->
  unit ->
  (t, string) result

val is_empty : t -> bool

(** Threshold annotations — anomalies worth flagging: any in-doubt
    prepare at recovery (threshold 0), presumed-abort resolutions (work
    rolled back with no surviving evidence), loser transactions at
    restart.  Rendered as the [== anomalies ==] section by {!pp_text}
    and the ["annotations"] member by {!to_json}. *)
val annotations : t -> string list

val pp_text : Format.formatter -> t -> unit
val to_text : t -> string

(** Aggregate summary: per group txn counts, outcomes, phase totals, top
    wait objects; heat-map totals. *)
val to_json : t -> Json.t

(** Chrome trace-event JSON ([{"traceEvents":[...]}]).  Events are
    sorted by timestamp; pids number the groups in first-appearance
    order (with [process_name] metadata), tids are transaction ids
    (track 0 is the system track: checkpoints, recovery).  Traces with
    2PC spans additionally get one track per shard (tid
    [1_000_000 + shard], named ["shard N"]) carrying the
    prepare/decision/completion slices, plus flow arrows (cat
    ["2pc-flow"]) from every participant's durable prepare to the
    coordinator's decision — the commit point and the prepare skew,
    visually. *)
val to_perfetto : t -> string
