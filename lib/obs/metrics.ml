type labels = (string * string) list

let normalize labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

type counter = { mutable count : int }
type gauge = { mutable value : float }

type histogram = {
  bounds : float array;  (* strictly increasing upper bounds; +inf implicit *)
  counts : int array;  (* length = Array.length bounds + 1 *)
  mutable sum : float;
  mutable observations : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type key = {
  metric_name : string;
  metric_labels : labels;
}

type t = {
  tbl : (key, metric) Hashtbl.t;
  mutable order : key list;  (* newest first; registration order for export *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register t name labels build check =
  let key = { metric_name = name; metric_labels = normalize labels } in
  match Hashtbl.find_opt t.tbl key with
  | Some m -> check m
  | None ->
      let m = build () in
      Hashtbl.add t.tbl key m;
      t.order <- key :: t.order;
      m

let type_clash name m want =
  invalid_arg
    (Fmt.str "Metrics: %s already registered as a %s, requested as a %s" name
       (kind_name m) want)

let counter t ?(labels = []) name =
  match
    register t name labels
      (fun () -> Counter { count = 0 })
      (function Counter _ as m -> m | m -> type_clash name m "counter")
  with
  | Counter c -> c
  | _ -> assert false

let gauge t ?(labels = []) name =
  match
    register t name labels
      (fun () -> Gauge { value = 0. })
      (function Gauge _ as m -> m | m -> type_clash name m "gauge")
  with
  | Gauge g -> g
  | _ -> assert false

(* Geometric-ish default: fine resolution at the low end (most logical
   durations are a handful of rounds), coarse at the tail. *)
let default_buckets =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 5000. |]

let check_bounds bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Metrics.histogram: empty bucket list";
  for i = 1 to n - 1 do
    if bounds.(i - 1) >= bounds.(i) then
      invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing"
  done

let histogram t ?(labels = []) ?(buckets = default_buckets) name =
  check_bounds buckets;
  match
    register t name labels
      (fun () ->
        Histogram
          {
            bounds = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            sum = 0.;
            observations = 0;
          })
      (function
        | Histogram h as m ->
            if h.bounds <> buckets then
              invalid_arg
                (Fmt.str "Metrics: histogram %s re-registered with different buckets"
                   name);
            m
        | m -> type_clash name m "histogram")
  with
  | Histogram h -> h
  | _ -> assert false

module Counter = struct
  type t = counter

  let incr ?(by = 1) c = c.count <- c.count + by
  let get c = c.count
end

module Gauge = struct
  type t = gauge

  let set g v = g.value <- v
  let add g v = g.value <- g.value +. v
  let get g = g.value
end

module Histogram = struct
  type t = histogram

  let bucket_index h v =
    let n = Array.length h.bounds in
    let rec find i = if i >= n then n else if v <= h.bounds.(i) then i else find (i + 1) in
    find 0

  let observe h v =
    let i = bucket_index h v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.sum <- h.sum +. v;
    h.observations <- h.observations + 1

  let observe_int h v = observe h (float_of_int v)
  let count h = h.observations
  let sum h = h.sum

  (* Quantile estimation by linear interpolation within the bucket that
     holds the q-th observation (the standard Prometheus
     [histogram_quantile] estimator).  The overflow bucket has no upper
     bound; its estimate is clamped to the largest finite bound. *)
  let quantile h q =
    if q < 0. || q > 1. then invalid_arg "Metrics.Histogram.quantile: q outside [0,1]";
    if h.observations = 0 then None
    else begin
      let rank = q *. float_of_int h.observations in
      let n = Array.length h.bounds in
      let rec find i cumulative =
        if i > n then n
        else
          let cumulative = cumulative + h.counts.(i) in
          if float_of_int cumulative >= rank then i else find (i + 1) cumulative
      in
      let i = find 0 0 in
      if i >= n then Some h.bounds.(n - 1)
      else begin
        let lower = if i = 0 then 0. else h.bounds.(i - 1) in
        let upper = h.bounds.(i) in
        let below = ref 0 in
        for j = 0 to i - 1 do
          below := !below + h.counts.(j)
        done;
        let in_bucket = h.counts.(i) in
        if in_bucket = 0 then Some upper
        else
          let frac = (rank -. float_of_int !below) /. float_of_int in_bucket in
          let frac = Float.max 0. (Float.min 1. frac) in
          Some (lower +. ((upper -. lower) *. frac))
      end
    end
end

(* ------------------------------------------------------------------ *)
(* Introspection and aggregation.                                      *)

let fold t f init =
  List.fold_left
    (fun acc key ->
      match Hashtbl.find_opt t.tbl key with
      | Some m -> f acc key.metric_name key.metric_labels m
      | None -> acc)
    init (List.rev t.order)

let counter_value t ?(labels = []) name =
  match
    Hashtbl.find_opt t.tbl { metric_name = name; metric_labels = normalize labels }
  with
  | Some (Counter c) -> c.count
  | _ -> 0

(* Sum of a counter family across all label sets. *)
let counter_total t name =
  fold t
    (fun acc n _ m ->
      match m with Counter c when String.equal n name -> acc + c.count | _ -> acc)
    0

let gauge_value t ?(labels = []) name =
  match
    Hashtbl.find_opt t.tbl { metric_name = name; metric_labels = normalize labels }
  with
  | Some (Gauge g) -> Some g.value
  | _ -> None

let merge ?(extra_labels = []) dst src =
  fold src
    (fun () name labels m ->
      let labels = normalize (labels @ extra_labels) in
      match m with
      | Counter c -> Counter.incr ~by:c.count (counter dst ~labels name)
      | Gauge g -> Gauge.set (gauge dst ~labels name) g.value
      | Histogram h ->
          let into = histogram dst ~labels ~buckets:h.bounds name in
          Array.iteri (fun i n -> into.counts.(i) <- into.counts.(i) + n) h.counts;
          into.sum <- into.sum +. h.sum;
          into.observations <- into.observations + h.observations)
    ()

(* ------------------------------------------------------------------ *)
(* Exporters.                                                          *)

let pp_float ppf v =
  if Float.is_integer v && Float.abs v < 1e15 then Fmt.pf ppf "%.0f" v
  else Fmt.pf ppf "%g" v

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pp_labelset ppf labels =
  if labels <> [] then
    Fmt.pf ppf "{%s}"
      (String.concat ","
         (List.map (fun (k, v) -> Fmt.str "%s=\"%s\"" k (escape_label_value v)) labels))

let sorted_entries t =
  fold t (fun acc name labels m -> (name, labels, m) :: acc) []
  |> List.rev
  |> List.stable_sort (fun (a, la, _) (b, lb, _) ->
         let c = String.compare a b in
         if c <> 0 then c else compare la lb)

(* Prometheus text exposition format (version 0.0.4). *)
let pp_prometheus ppf t =
  let last_typed = ref "" in
  List.iter
    (fun (name, labels, m) ->
      if not (String.equal !last_typed name) then begin
        Fmt.pf ppf "# TYPE %s %s@." name (kind_name m);
        last_typed := name
      end;
      match m with
      | Counter c -> Fmt.pf ppf "%s%a %d@." name pp_labelset labels c.count
      | Gauge g -> Fmt.pf ppf "%s%a %a@." name pp_labelset labels pp_float g.value
      | Histogram h ->
          let cumulative = ref 0 in
          Array.iteri
            (fun i n ->
              cumulative := !cumulative + n;
              let le =
                if i < Array.length h.bounds then Fmt.str "%a" pp_float h.bounds.(i)
                else "+Inf"
              in
              Fmt.pf ppf "%s_bucket%a %d@." name pp_labelset
                (labels @ [ ("le", le) ])
                !cumulative)
            h.counts;
          Fmt.pf ppf "%s_sum%a %a@." name pp_labelset labels pp_float h.sum;
          Fmt.pf ppf "%s_count%a %d@." name pp_labelset labels h.observations)
    (sorted_entries t)

let to_prometheus t = Fmt.str "%a" pp_prometheus t

(* Human-oriented summary: one line per metric, histograms as
   count/mean/p50/p90/p99. *)
let pp_summary ppf t =
  List.iter
    (fun (name, labels, m) ->
      let label_str = Fmt.str "%a" pp_labelset labels in
      match m with
      | Counter c -> Fmt.pf ppf "%-46s %12d@." (name ^ label_str) c.count
      | Gauge g -> Fmt.pf ppf "%-46s %12.2f@." (name ^ label_str) g.value
      | Histogram h ->
          let q p = Option.value (Histogram.quantile h p) ~default:0. in
          let mean =
            if h.observations = 0 then 0. else h.sum /. float_of_int h.observations
          in
          Fmt.pf ppf "%-46s %12d  mean %.1f  p50 %.1f  p90 %.1f  p99 %.1f@."
            (name ^ label_str) h.observations mean (q 0.5) (q 0.9) (q 0.99))
    (sorted_entries t)
