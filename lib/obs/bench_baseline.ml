(* Machine-readable bench baselines: a named-series schema shared by
   bench/main.exe --json (writer), bin/benchdiff.exe (comparator) and
   CI.  One series is one scalar with a direction; the comparator diffs
   two files with a relative tolerance, so perf claims in the repo are
   checkable instead of anecdotal. *)

type series = {
  name : string;
  value : float;
  units : string;
  higher_is_better : bool;
}

type t = {
  rev : string;
  context : (string * string) list;
  series : series list;
}

let schema = Artifact.bench_schema

let make ?(context = []) ~rev series = { rev; context; series }

let find t name = List.find_opt (fun s -> s.name = name) t.series

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("rev", Json.Str t.rev);
      ("context", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) t.context));
      ( "series",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.Str s.name);
                   ("value", Json.Float s.value);
                   ("unit", Json.Str s.units);
                   ("higher_is_better", Json.Bool s.higher_is_better);
                 ])
             t.series) );
    ]

let to_string t = Json.to_string (to_json t) ^ "\n"

let number j =
  match j with
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let of_json j =
  match Option.bind (Json.member "schema" j) Json.to_str with
  | None -> Error "bench baseline: missing \"schema\""
  | Some s when Artifact.family (Artifact.make ~schema:s ()) <> "tm-bench" ->
      Error (Fmt.str "bench baseline: schema %S is not a tm-bench artifact" s)
  | Some _ -> (
      let rev =
        Option.value
          (Option.bind (Json.member "rev" j) Json.to_str)
          ~default:"?"
      in
      let context =
        match Json.member "context" j with
        | Some c ->
            List.filter_map
              (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
              (Json.entries c)
        | None -> []
      in
      match Option.bind (Json.member "series" j) Json.to_list with
      | None -> Error "bench baseline: missing \"series\" array"
      | Some items -> (
          let parse_series item =
            match
              ( Option.bind (Json.member "name" item) Json.to_str,
                Option.bind (Json.member "value" item) number )
            with
            | Some name, Some value ->
                Ok
                  {
                    name;
                    value;
                    units =
                      Option.value
                        (Option.bind (Json.member "unit" item) Json.to_str)
                        ~default:"";
                    higher_is_better =
                      (match Json.member "higher_is_better" item with
                      | Some (Json.Bool b) -> b
                      | _ -> true);
                  }
            | _ -> Error "bench baseline: series needs \"name\" and \"value\""
          in
          let rec all acc = function
            | [] -> Ok (List.rev acc)
            | item :: rest -> (
                match parse_series item with
                | Ok s -> all (s :: acc) rest
                | Error _ as e -> e)
          in
          match all [] items with
          | Ok series -> Ok { rev; context; series }
          | Error e -> Error e))

let of_string s =
  match Json.parse s with Error e -> Error e | Ok j -> of_json j

(* ------------------------------------------------------------------ *)
(* Comparator                                                          *)

type verdict = {
  series_name : string;
  base : float option;
  current : float option;
  delta_pct : float option;  (* signed, relative to base *)
  regression : bool;
  note : string;
}

let diff ?(tolerance_pct = 25.0) ~baseline current =
  let of_base (b : series) =
    match find current b.name with
    | None ->
        {
          series_name = b.name;
          base = Some b.value;
          current = None;
          delta_pct = None;
          regression = true;
          note = "missing in current run";
        }
    | Some c ->
        if b.value = 0.0 then
          {
            series_name = b.name;
            base = Some 0.0;
            current = Some c.value;
            delta_pct = None;
            regression = false;
            note = (if c.value = 0.0 then "unchanged (both 0)" else "baseline is 0");
          }
        else
          let delta = (c.value -. b.value) /. Float.abs b.value *. 100.0 in
          let bad =
            if b.higher_is_better then delta < -.tolerance_pct
            else delta > tolerance_pct
          in
          {
            series_name = b.name;
            base = Some b.value;
            current = Some c.value;
            delta_pct = Some delta;
            regression = bad;
            note =
              (if bad then
                 Fmt.str "REGRESSION: %+.1f%% (tolerance %.0f%%, %s is better)"
                   delta tolerance_pct
                   (if b.higher_is_better then "higher" else "lower")
               else Fmt.str "%+.1f%% within %.0f%%" delta tolerance_pct);
          }
  in
  let new_series =
    List.filter_map
      (fun (c : series) ->
        if find baseline c.name = None then
          Some
            {
              series_name = c.name;
              base = None;
              current = Some c.value;
              delta_pct = None;
              regression = false;
              note = "new series (no baseline)";
            }
        else None)
      current.series
  in
  List.map of_base baseline.series @ new_series

let regressions verdicts = List.filter (fun v -> v.regression) verdicts

let pp_verdict ppf v =
  let num ppf = function
    | None -> Fmt.pf ppf "%12s" "-"
    | Some x -> Fmt.pf ppf "%12.4g" x
  in
  Fmt.pf ppf "%-40s %a %a  %s" v.series_name num v.base num v.current v.note

let pp_diff ppf verdicts =
  Fmt.pf ppf "%-40s %12s %12s@." "series" "baseline" "current";
  List.iter (fun v -> Fmt.pf ppf "%a@." pp_verdict v) verdicts
