open Tm_core

type group = {
  group_labels : (string * string) list;
  events : Trace.event list;
}

(* The restart profiler's export, reconstructed from the tm_recovery_*
   samples of a Prometheus dump (summed across any extra labels a merged
   snapshot carries). *)
type recovery = {
  phase_seconds : (string * float) list;  (* profiler phase order *)
  wall_seconds : float option;
  counts : (string * int) list;  (* label-less tm_recovery_*_total *)
  per_object : (string * int) list;  (* obj -> replayed ops *)
}

(* One 2PC in-doubt resolution from a tm-2pc audit artifact
   (Tm_engine.Two_phase.events_to_jsonl; parsed here independently —
   tm_obs sits below the engine). *)
type audit_entry = {
  audit_shard : int;
  audit_tid : int;
  audit_commit : bool;
  audit_evidence : string;  (* "decision" | "phase2" | "presumed" *)
}

type t = {
  groups : group list;
  heatmaps : Heatmap.t list;
  recovery : recovery option;
  audit : audit_entry list;
}

let groups_of_jsonl s =
  match Trace.parse_jsonl s with
  | Error _ as e -> e
  | Ok lines ->
      let tbl : ((string * string) list, Trace.event list ref) Hashtbl.t =
        Hashtbl.create 4
      in
      let order = ref [] in
      List.iter
        (fun (ev, extras) ->
          let key = List.sort compare extras in
          let slot =
            match Hashtbl.find_opt tbl key with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add tbl key r;
                order := key :: !order;
                r
          in
          slot := ev :: !slot)
        lines;
      Ok
        (List.rev !order
        |> List.map (fun key ->
               { group_labels = key; events = List.rev !(Hashtbl.find tbl key) }))

(* Known phase order for display (unknown phases, e.g. from a newer
   producer, are appended in sample order). *)
let phase_order = List.map Recovery_profile.phase_name Recovery_profile.all_phases

let recovery_of_samples samples =
  let tm_recovery = "tm_recovery_" in
  let is_recovery name =
    String.length name >= String.length tm_recovery
    && String.sub name 0 (String.length tm_recovery) = tm_recovery
  in
  let samples = List.filter (fun (n, _, _) -> is_recovery n) samples in
  if samples = [] then None
  else begin
    let add assoc k v =
      match List.assoc_opt k !assoc with
      | Some prev -> assoc := (k, prev +. v) :: List.remove_assoc k !assoc
      | None -> assoc := !assoc @ [ (k, v) ]
    in
    let phases = ref [] and counts = ref [] and objs = ref [] in
    let wall = ref None in
    List.iter
      (fun (name, labels, v) ->
        match name with
        | "tm_recovery_phase_seconds" -> (
            match List.assoc_opt "phase" labels with
            | Some ph -> add phases ph v
            | None -> ())
        | "tm_recovery_wall_seconds" ->
            wall := Some (Option.value !wall ~default:0.0 +. v)
        | "tm_recovery_object_replayed_ops_total" -> (
            match List.assoc_opt "obj" labels with
            | Some obj -> add objs obj v
            | None -> ())
        | "tm_recovery_phase_calls_total" -> ()
        | _ -> add counts name v)
      samples;
    let ordered =
      List.filter_map
        (fun ph ->
          Option.map (fun v -> (ph, v)) (List.assoc_opt ph !phases))
        phase_order
      @ List.filter (fun (ph, _) -> not (List.mem ph phase_order)) !phases
    in
    Some
      {
        phase_seconds = ordered;
        wall_seconds = !wall;
        counts = List.map (fun (k, v) -> (k, int_of_float v)) !counts;
        per_object = List.map (fun (k, v) -> (k, int_of_float v)) !objs;
      }
  end

(* Merge group lists from several trace files: groups with identical
   label sets coalesce (events appended in file order — each file has
   its own logical clock, so cross-file interleaving would be
   meaningless anyway), first-appearance order otherwise. *)
let merge_groups lists =
  let tbl : ((string * string) list, Trace.event list list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let order = ref [] in
  List.iter
    (List.iter (fun g ->
         match Hashtbl.find_opt tbl g.group_labels with
         | Some r -> r := !r @ [ g.events ]
         | None ->
             Hashtbl.add tbl g.group_labels (ref [ g.events ]);
             order := g.group_labels :: !order))
    lists;
  List.rev !order
  |> List.map (fun key ->
         { group_labels = key; events = List.concat !(Hashtbl.find tbl key) })

let audit_of_jsonl s =
  let ( let* ) r f = Result.bind r f in
  let* docs = Json.parse_lines s in
  let* docs =
    match docs with
    | first :: rest when Artifact.is_header first ->
        Result.map
          (fun _ -> rest)
          (Result.bind (Artifact.of_json first)
             (Artifact.check_schema ~expect:Artifact.audit_schema))
    | docs -> Ok docs
  in
  let entry j =
    match
      ( Option.bind (Json.member "shard" j) Json.to_int,
        Option.bind (Json.member "tid" j) Json.to_int,
        Option.bind (Json.member "outcome" j) Json.to_str,
        Option.bind (Json.member "evidence" j) Json.to_str )
    with
    | Some audit_shard, Some audit_tid, Some outcome, Some audit_evidence ->
        Ok { audit_shard; audit_tid; audit_commit = outcome = "commit"; audit_evidence }
    | _ -> Error "audit line: expected {shard, tid, outcome, evidence}"
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | j :: rest -> (
        match entry j with Ok e -> go (e :: acc) rest | Error _ as e -> e)
  in
  go [] docs

let of_sources ?trace_jsonl ?(traces = []) ?metrics_text ?audit_jsonl () =
  let ( let* ) r f = Result.bind r f in
  let all_traces = Option.to_list trace_jsonl @ traces in
  let* groups =
    let rec go acc = function
      | [] -> Ok (merge_groups (List.rev acc))
      | s :: rest -> (
          match groups_of_jsonl s with
          | Ok gs -> go (gs :: acc) rest
          | Error e -> Error ("trace: " ^ e))
    in
    go [] all_traces
  in
  let* audit =
    match audit_jsonl with
    | None -> Ok []
    | Some s -> (
        match audit_of_jsonl s with
        | Ok es -> Ok es
        | Error e -> Error ("audit: " ^ e))
  in
  let* samples =
    match metrics_text with
    | None -> Ok []
    | Some s ->
        (* Validate the self-describing header, when present: a metrics
           dump must be a metrics-family artifact. *)
        let* _meta =
          match
            Result.bind (Artifact.of_prom s) (function
              | None -> Ok None
              | Some m ->
                  Result.map Option.some
                    (Artifact.check_schema ~expect:Artifact.metrics_schema m))
          with
          | Ok m -> Ok m
          | Error e -> Error ("metrics: " ^ e)
        in
        (match Heatmap.parse_prometheus s with
        | Ok samples -> Ok samples
        | Error e -> Error ("metrics: " ^ e))
  in
  let heatmaps =
    samples
    |> List.filter_map (fun (name, labels, v) ->
           if name = Heatmap.conflicts_metric then
             Some (labels, int_of_float v)
           else None)
    |> Heatmap.of_samples
  in
  Ok { groups; heatmaps; recovery = recovery_of_samples samples; audit }

let is_empty t =
  t.heatmaps = []
  && t.recovery = None
  && t.audit = []
  && List.for_all (fun g -> g.events = []) t.groups

(* ------------------------------------------------------------------ *)
(* Threshold annotations                                               *)

let annotations t =
  let presumed =
    List.length (List.filter (fun a -> a.audit_evidence = "presumed") t.audit)
  in
  let anns = [] in
  let anns =
    if t.audit = [] then anns
    else
      Fmt.str
        "in-doubt prepares at recovery: %d (threshold 0) — a crash cut \
         a cross-shard commit between prepare and completion"
        (List.length t.audit)
      :: anns
  in
  let anns =
    if presumed = 0 then anns
    else
      Fmt.str
        "presumed-abort resolutions: %d — no surviving decision or \
         phase-2 evidence; work acknowledged on those shards was rolled \
         back"
        presumed
      :: anns
  in
  let anns =
    match t.recovery with
    | Some r -> (
        match List.assoc_opt "tm_recovery_loser_txns_total" r.counts with
        | Some n when n > 0 ->
            Fmt.str "loser transactions at restart: %d" n :: anns
        | _ -> anns)
    | None -> anns
  in
  List.rev anns

(* ------------------------------------------------------------------ *)
(* Text                                                                *)

let pp_group_labels ppf = function
  | [] -> Fmt.pf ppf "single run"
  | labels ->
      Fmt.pf ppf "%a"
        Fmt.(list ~sep:(any " ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
        labels

let count_outcomes txns =
  List.fold_left
    (fun (c, a, u) (t : Timeline.txn) ->
      match t.Timeline.outcome with
      | Timeline.Committed -> (c + 1, a, u)
      | Timeline.Aborted -> (c, a + 1, u)
      | Timeline.Unfinished -> (c, a, u + 1))
    (0, 0, 0) txns

let top_wait_objects txns =
  List.fold_left
    (fun acc t ->
      List.fold_left
        (fun acc (obj, d) ->
          match List.assoc_opt obj acc with
          | Some prev -> (obj, prev + d) :: List.remove_assoc obj acc
          | None -> (obj, d) :: acc)
        acc (Timeline.wait_by_obj t))
    [] txns
  |> List.sort (fun (oa, a) (ob, b) -> compare (b, oa) (a, ob))

let pp_text ppf t =
  List.iter
    (fun g ->
      let txns = Timeline.of_events g.events in
      let edges = Blocking.edges g.events in
      let committed, aborted, unfinished = count_outcomes txns in
      Fmt.pf ppf "== %a ==@." pp_group_labels g.group_labels;
      Fmt.pf ppf "%d events, %d transactions (%d committed, %d aborted, %d unfinished)@.@."
        (List.length g.events) (List.length txns) committed aborted unfinished;
      Fmt.pf ppf "-- timelines --@.";
      Timeline.pp ppf txns;
      if txns <> [] && List.length txns <= 32 then begin
        Fmt.pf ppf "@.";
        Timeline.pp_bars ~width:60 ppf txns
      end;
      Fmt.pf ppf "@.-- blocking --@.";
      if edges = [] then Fmt.pf ppf "no blocking observed@."
      else Blocking.pp_blame ppf edges;
      Fmt.pf ppf "@.-- where the ticks went --@.";
      Blocking.pp_flame ppf txns;
      Fmt.pf ppf "@.")
    t.groups;
  if t.heatmaps <> [] then begin
    Fmt.pf ppf "== conflict heat maps ==@.";
    List.iter
      (fun h ->
        Heatmap.pp ppf h;
        Fmt.pf ppf "@.")
      t.heatmaps;
    let comparable =
      List.filter (fun (h : Heatmap.t) -> List.mem_assoc "setup" h.Heatmap.key)
        t.heatmaps
    in
    if List.length comparable >= 2 then begin
      Fmt.pf ppf "== heat-map comparison (by setup) ==@.";
      Heatmap.pp_comparison ~by:"setup" ppf t.heatmaps
    end
  end;
  if t.audit <> [] then begin
    Fmt.pf ppf "== 2PC in-doubt audit ==@.";
    Fmt.pf ppf "%d in-doubt prepare(s) resolved at recovery:@."
      (List.length t.audit);
    List.iter
      (fun a ->
        Fmt.pf ppf "  shard %d: T%d -> %s (evidence: %s)@." a.audit_shard
          a.audit_tid
          (if a.audit_commit then "commit" else "abort")
          a.audit_evidence)
      t.audit;
    Fmt.pf ppf "@."
  end;
  (match annotations t with
  | [] -> ()
  | anns ->
      Fmt.pf ppf "== anomalies ==@.";
      List.iter (fun a -> Fmt.pf ppf "!! %s@." a) anns;
      Fmt.pf ppf "@.");
  match t.recovery with
  | None -> ()
  | Some r ->
      Fmt.pf ppf "== recovery profile ==@.";
      (match r.wall_seconds with
      | Some w -> Fmt.pf ppf "end-to-end: %.3f ms@." (w *. 1e3)
      | None -> ());
      let total =
        List.fold_left (fun acc (_, s) -> acc +. s) 0.0 r.phase_seconds
      in
      List.iter
        (fun (ph, s) ->
          let pct = if total > 0.0 then 100.0 *. s /. total else 0.0 in
          Fmt.pf ppf "  %-16s %10.3f ms %5.1f%%@." ph (s *. 1e3) pct)
        r.phase_seconds;
      List.iter (fun (k, v) -> Fmt.pf ppf "  %-40s %10d@." k v) r.counts;
      match r.per_object with
      | [] -> ()
      | objs ->
          Fmt.pf ppf "  replayed ops by object:%a@."
            Fmt.(list ~sep:nop (fun ppf (o, n) -> Fmt.pf ppf " %s=%d" o n))
            objs

let to_text t = Fmt.str "%a" pp_text t

(* ------------------------------------------------------------------ *)
(* JSON summary                                                        *)

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let to_json t =
  let group_json g =
    let txns = Timeline.of_events g.events in
    let edges = Blocking.edges g.events in
    let committed, aborted, unfinished = count_outcomes txns in
    let phase_ticks =
      Json.Obj
        (List.map
           (fun ph ->
             ( Timeline.phase_name ph,
               Json.Int
                 (List.fold_left
                    (fun acc t -> acc + Timeline.phase_total t ph)
                    0 txns) ))
           Timeline.all_phases)
    in
    Json.Obj
      [
        ("labels", labels_json g.group_labels);
        ("events", Json.Int (List.length g.events));
        ("transactions", Json.Int (List.length txns));
        ("committed", Json.Int committed);
        ("aborted", Json.Int aborted);
        ("unfinished", Json.Int unfinished);
        ("phase_ticks", phase_ticks);
        ( "top_wait_objects",
          Json.List
            (top_wait_objects txns
            |> List.map (fun (obj, d) ->
                   Json.Obj [ ("obj", Json.Str obj); ("ticks", Json.Int d) ])) );
        ( "blocking",
          Json.Obj
            [
              ("edges", Json.Int (List.length edges));
              ( "blocked_ticks",
                Json.Int
                  (List.fold_left (fun acc e -> acc + Blocking.weight e) 0 edges)
              );
            ] );
      ]
  in
  let heatmap_json (h : Heatmap.t) =
    Json.Obj
      [
        ("key", labels_json h.Heatmap.key);
        ("total", Json.Int (Heatmap.total h));
        ( "cells",
          Json.List
            (List.map
               (fun ((r, hd), c) ->
                 Json.Obj
                   [
                     ("requested", Json.Str r);
                     ("held", Json.Str hd);
                     ("count", Json.Int c);
                   ])
               h.Heatmap.cells) );
      ]
  in
  let recovery_json r =
    Json.Obj
      [
        ( "wall_seconds",
          match r.wall_seconds with Some w -> Json.Float w | None -> Json.Null
        );
        ( "phase_seconds",
          Json.Obj (List.map (fun (ph, s) -> (ph, Json.Float s)) r.phase_seconds)
        );
        ("counts", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.counts));
        ( "per_object",
          Json.Obj (List.map (fun (o, n) -> (o, Json.Int n)) r.per_object) );
      ]
  in
  let audit_json a =
    Json.Obj
      [
        ("shard", Json.Int a.audit_shard);
        ("tid", Json.Int a.audit_tid);
        ("outcome", Json.Str (if a.audit_commit then "commit" else "abort"));
        ("evidence", Json.Str a.audit_evidence);
      ]
  in
  Json.Obj
    ([
       ("groups", Json.List (List.map group_json t.groups));
       ("heatmaps", Json.List (List.map heatmap_json t.heatmaps));
     ]
    @ (match t.audit with
      | [] -> []
      | audit -> [ ("audit", Json.List (List.map audit_json audit)) ])
    @ (match annotations t with
      | [] -> []
      | anns ->
          [ ("annotations", Json.List (List.map (fun a -> Json.Str a) anns)) ])
    @
    match t.recovery with
    | None -> []
    | Some r -> [ ("recovery", recovery_json r) ])

(* ------------------------------------------------------------------ *)
(* Chrome trace-event (Perfetto) exporter                              *)

(* Shard tracks live far above any transaction track (tids are dense
   small ints); one track per shard that emitted a 2PC span. *)
let shard_track shard = 1_000_000 + shard

let to_perfetto t =
  let events = ref [] in
  let push ts j = events := (ts, j) :: !events in
  (* Flow bookkeeping: one arrow per (participant prepare -> coordinator
     decision), keyed by the transaction's global trace id within its
     group (gtids restart at 0 per run, so the group index disambiguates
     merged multi-run files). *)
  let flow_prepares : (int * int, (int * int * int) list ref) Hashtbl.t =
    Hashtbl.create 16 (* (pid, gtid) -> [(pid, shard, ts)] *)
  in
  let flow_decisions : (int * int, int * int * int) Hashtbl.t =
    Hashtbl.create 16 (* (pid, gtid) -> (pid, shard, ts) *)
  in
  let meta ~pid ?tid ~name value =
    let base =
      [
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("name", Json.Str name);
        ("args", Json.Obj [ ("name", Json.Str value) ]);
      ]
    in
    push 0
      (Json.Obj
         (match tid with
         | Some tid -> ("tid", Json.Int tid) :: base
         | None -> base))
  in
  List.iteri
    (fun i g ->
      let pid = i + 1 in
      let process_name = Fmt.str "%a" pp_group_labels g.group_labels in
      meta ~pid ~name:"process_name" process_name;
      meta ~pid ~tid:0 ~name:"thread_name" "system";
      let txns = Timeline.of_events g.events in
      (* transaction tracks: one slice per phase segment *)
      List.iter
        (fun (txn : Timeline.txn) ->
          let tid = Tid.to_int txn.Timeline.tid + 1 in
          meta ~pid ~tid ~name:"thread_name"
            (Fmt.str "txn %s" (Tid.to_string txn.Timeline.tid));
          List.iter
            (fun (s : Timeline.segment) ->
              let args =
                match s.Timeline.obj with
                | Some obj -> [ ("obj", Json.Str obj) ]
                | None -> []
              in
              push s.Timeline.start_ts
                (Json.Obj
                   [
                     ("ph", Json.Str "X");
                     ("name", Json.Str (Timeline.phase_name s.Timeline.phase));
                     ("cat", Json.Str "phase");
                     ("ts", Json.Int s.Timeline.start_ts);
                     ("dur", Json.Int (s.Timeline.stop_ts - s.Timeline.start_ts));
                     ("pid", Json.Int pid);
                     ("tid", Json.Int tid);
                     ("args", Json.Obj args);
                   ]))
            txn.Timeline.segments)
        txns;
      (* shard tracks: the 2PC state machine as thin slices, one track
         per shard, so commit-point latency and prepare skew line up
         visually across shards *)
      let shard_named = Hashtbl.create 8 in
      let shard_slice ~shard ~ts name args =
        if not (Hashtbl.mem shard_named shard) then begin
          Hashtbl.add shard_named shard ();
          meta ~pid ~tid:(shard_track shard) ~name:"thread_name"
            (Fmt.str "shard %d" shard)
        end;
        push ts
          (Json.Obj
             [
               ("ph", Json.Str "X");
               ("name", Json.Str name);
               ("cat", Json.Str "2pc");
               ("ts", Json.Int ts);
               ("dur", Json.Int 1);
               ("pid", Json.Int pid);
               ("tid", Json.Int (shard_track shard));
               ("args", Json.Obj args);
             ])
      in
      List.iter
        (fun (e : Trace.event) ->
          let ts = e.Trace.ts in
          match e.Trace.kind with
          | Trace.Prepare_append { shard; gtid } ->
              shard_slice ~shard ~ts "prepare_append" [ ("gtid", Json.Int gtid) ]
          | Trace.Prepare_force { shard; lsn; gtid } ->
              shard_slice ~shard ~ts "prepare_force"
                [ ("gtid", Json.Int gtid); ("lsn", Json.Int lsn) ];
              let key = (pid, gtid) in
              let slot =
                match Hashtbl.find_opt flow_prepares key with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.add flow_prepares key r;
                    r
              in
              slot := (pid, shard, ts) :: !slot
          | Trace.Decision_force { shard; lsn; gtid; commit } ->
              shard_slice ~shard ~ts "decision_force"
                [
                  ("gtid", Json.Int gtid);
                  ("lsn", Json.Int lsn);
                  ("commit", Json.Bool commit);
                ];
              Hashtbl.replace flow_decisions (pid, gtid) (pid, shard, ts)
          | Trace.Completion { shard; gtid; commit } ->
              shard_slice ~shard ~ts "completion"
                [ ("gtid", Json.Int gtid); ("commit", Json.Bool commit) ]
          | _ -> ())
        g.events;
      (* instants: outcomes on the transaction track, system events on
         track 0 *)
      List.iter
        (fun (e : Trace.event) ->
          let instant ~tid ~scope name args =
            push e.Trace.ts
              (Json.Obj
                 [
                   ("ph", Json.Str "i");
                   ("name", Json.Str name);
                   ("cat", Json.Str "event");
                   ("s", Json.Str scope);
                   ("ts", Json.Int e.Trace.ts);
                   ("pid", Json.Int pid);
                   ("tid", Json.Int tid);
                   ("args", Json.Obj args);
                 ])
          in
          match (e.Trace.tid, e.Trace.kind) with
          | Some tid, Trace.Commit ->
              instant ~tid:(Tid.to_int tid + 1) ~scope:"t" "commit" []
          | Some tid, Trace.Abort ->
              instant ~tid:(Tid.to_int tid + 1) ~scope:"t" "abort" []
          | Some tid, Trace.Deadlock_victim { cycle } ->
              instant ~tid:(Tid.to_int tid + 1) ~scope:"t" "deadlock_victim"
                [
                  ( "cycle",
                    Json.List
                      (List.map (fun t -> Json.Str (Tid.to_string t)) cycle) );
                ]
          | None, Trace.Checkpoint { ops } ->
              instant ~tid:0 ~scope:"p" "checkpoint" [ ("ops", Json.Int ops) ]
          | None, Trace.Crash_recover { replayed; losers } ->
              instant ~tid:0 ~scope:"p" "crash_recover"
                [ ("replayed", Json.Int replayed); ("losers", Json.Int losers) ]
          | _ -> ())
        g.events)
    t.groups;
  (* Flow arrows: participant prepare-durable -> coordinator decision.
     Each arrow gets its own id; start and finish share (cat, id). *)
  let flow_id = ref 0 in
  let flow ~ph ~pid ~shard ~ts ~id extra =
    push ts
      (Json.Obj
         ([
            ("ph", Json.Str ph);
            ("name", Json.Str "2pc-commit-point");
            ("cat", Json.Str "2pc-flow");
            ("id", Json.Int id);
            ("ts", Json.Int ts);
            ("pid", Json.Int pid);
            ("tid", Json.Int (shard_track shard));
          ]
         @ extra))
  in
  Hashtbl.iter
    (fun key (dpid, dshard, dts) ->
      match Hashtbl.find_opt flow_prepares key with
      | None -> ()
      | Some prepares ->
          List.iter
            (fun (ppid, pshard, pts) ->
              let id = !flow_id in
              incr flow_id;
              flow ~ph:"s" ~pid:ppid ~shard:pshard ~ts:pts ~id [];
              flow ~ph:"f" ~pid:dpid ~shard:dshard ~ts:dts ~id
                [ ("bp", Json.Str "e") ])
            (List.rev !prepares))
    flow_decisions;
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !events)
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.map snd sorted));
         ("displayTimeUnit", Json.Str "ms");
       ])
