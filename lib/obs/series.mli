(** Ring-buffer time series over metrics samples — the data model of the
    live shard health monitor ([bin/shardmon.exe]).

    A sampler holds one bounded ring per series key (a metric name plus
    its rendered label set); each {!observe} appends a [(time, value)]
    point, evicting the oldest once the ring is full.  Sources are
    either a live {!Metrics.t} registry ({!sample_registry}) or the
    samples of a parsed Prometheus snapshot ({!sample}), so the monitor
    can attach to a running process through nothing more than a
    periodically rewritten metrics file.

    Snapshots export as a [tm-series] JSONL artifact
    ({!Artifact.series_schema}) — one point per line — and re-import
    with {!of_jsonl} for offline diffing of two monitoring sessions. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is the per-key ring size (default 120 — two minutes of
    1 Hz samples).  Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : t -> int

(** {1 Keys}

    A series key is the Prometheus-style rendering
    [name] or [name{k="v",k2="v2"}] with label keys sorted, so the same
    series always lands in the same ring regardless of source. *)

val key : string -> (string * string) list -> string

val keys : t -> string list
(** First-observation order. *)

(** {1 Feeding} *)

val observe : t -> at:float -> key:string -> float -> unit

val sample : t -> at:float -> (string * (string * string) list * float) list -> unit
(** Feed the samples of a parsed Prometheus snapshot
    ({!Heatmap.parse_prometheus}).  Histogram [_bucket] series are
    skipped (the ring would drown in [le] labels); [_sum]/[_count]
    series are kept, so rates and means stay derivable. *)

val sample_registry : t -> at:float -> Metrics.t -> unit
(** Sample a live registry: counters and gauges one point each,
    histograms as [name_count] and [name_sum]. *)

(** {1 Reading} *)

val length : t -> string -> int
val points : t -> string -> (float * float) list  (** oldest first *)

val last : t -> string -> (float * float) option

val delta : t -> string -> float option
(** Newest value minus oldest value in the window; [None] with fewer
    than two points. *)

val rate : t -> string -> float option
(** [delta] per second over the window's time span; [None] with fewer
    than two points or a non-positive span. *)

val sparkline : ?width:int -> t -> string -> string
(** The newest [width] (default 32) points as an ASCII bar, scaled to
    the window's min/max; empty string for an unknown key. *)

(** {1 Snapshots} *)

val to_jsonl : t -> string
(** Body lines only ([{"key":..,"at":..,"value":..}], oldest first per
    key, keys in first-observation order); callers prepend an
    {!Artifact.series_schema} header line. *)

val of_jsonl : string -> (t, string) result
(** Inverse of {!to_jsonl}.  A leading [tm-series] artifact header is
    validated and skipped; the ring capacity is sized to the largest
    per-key point count. *)
