(** Minimal JSON values: a hand-rolled parser and printer.

    The repo deliberately carries no JSON dependency; the trace exporter
    ({!Trace.to_jsonl}) hand-prints its lines.  The analytics side
    ({!Report}, [bin/obsreport.exe]) must read those lines {e back}, and
    the Chrome trace-event exporter must emit JSON a real viewer
    (Perfetto) accepts — this module is the small shared substrate for
    both.

    The value model covers exactly what the telemetry formats use:
    null, booleans, integers, floats, strings, arrays and objects.
    Integers are kept distinct from floats so logical timestamps round
    trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [parse s] parses one JSON document (surrounding whitespace allowed).
    [Error msg] carries a character offset and a reason. *)
val parse : string -> (t, string) result

(** [parse_lines s] parses one document per non-blank line (JSONL); the
    error names the offending 1-based line. *)
val parse_lines : string -> (t list, string) result

(** {1 Printing} *)

(** Compact (no insignificant whitespace), with full string escaping;
    floats print as [%.17g] trimmed, integers bare. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** [escape s] is the body of a JSON string literal for [s] (no
    surrounding quotes). *)
val escape : string -> string

(** {1 Accessors} *)

(** [member key j] — [Some v] if [j] is an object with field [key]. *)
val member : string -> t -> t option

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option

(** Fields of an object ([] for any other constructor). *)
val entries : t -> (string * t) list
