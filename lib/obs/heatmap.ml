type labels = (string * string) list

type t = {
  key : labels;
  cells : ((string * string) * int) list;
}

let conflicts_metric = "tm_lock_conflicts_total"

(* Group a flat [(labels, count)] sample list into matrices: the group
   key is the label set minus the two axis labels. *)
let of_samples samples =
  let tbl : (labels, (string * string, int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (labels, v) ->
      match
        (List.assoc_opt "requested" labels, List.assoc_opt "held" labels)
      with
      | Some requested, Some held ->
          let key =
            List.filter
              (fun (k, _) -> k <> "requested" && k <> "held")
              labels
            |> List.sort compare
          in
          let cells =
            match Hashtbl.find_opt tbl key with
            | Some c -> c
            | None ->
                let c = Hashtbl.create 8 in
                Hashtbl.add tbl key c;
                c
          in
          let cell = (requested, held) in
          Hashtbl.replace cells cell
            (v + Option.value (Hashtbl.find_opt cells cell) ~default:0)
      | _ -> ())
    samples;
  Hashtbl.fold
    (fun key cells acc ->
      let cells =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) cells []
        |> List.sort compare
      in
      { key; cells } :: acc)
    tbl []
  |> List.sort compare

let of_metrics reg =
  Metrics.fold reg
    (fun acc name labels metric ->
      match metric with
      | Metrics.Counter c when name = conflicts_metric ->
          (labels, Metrics.Counter.get c) :: acc
      | _ -> acc)
    []
  |> List.rev |> of_samples

let obj t = List.assoc_opt "obj" t.key
let count t ~requested ~held =
  Option.value (List.assoc_opt (requested, held) t.cells) ~default:0

let total t = List.fold_left (fun acc (_, v) -> acc + v) 0 t.cells

let axes t =
  let dedup_sort l = List.sort_uniq compare l in
  ( dedup_sort (List.map (fun ((r, _), _) -> r) t.cells),
    dedup_sort (List.map (fun ((_, h), _) -> h) t.cells) )

(* ------------------------------------------------------------------ *)
(* Prometheus text-format parsing                                      *)

exception Parse_error of string

let unescape_label_value s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      match s.[i] with
      | '\\' when i + 1 < n ->
          (match s.[i + 1] with
          | '\\' -> Buffer.add_char b '\\'
          | 'n' -> Buffer.add_char b '\n'
          | '"' -> Buffer.add_char b '"'
          | c ->
              (* unknown escape: keep verbatim, like Prometheus does *)
              Buffer.add_char b '\\';
              Buffer.add_char b c);
          go (i + 2)
      | c ->
          Buffer.add_char b c;
          go (i + 1)
  in
  go 0;
  Buffer.contents b

(* One sample line: name{k="v",...} value  (labels optional). *)
let parse_sample_line lineno line =
  let fail msg = raise (Parse_error (Printf.sprintf "line %d: %s" lineno msg)) in
  let n = String.length line in
  let pos = ref 0 in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done
  in
  let ident () =
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail "expected identifier";
    String.sub line start (!pos - start)
  in
  let name = ident () in
  let labels =
    if !pos < n && line.[!pos] = '{' then begin
      incr pos;
      let acc = ref [] in
      let rec loop () =
        skip_ws ();
        if !pos < n && line.[!pos] = '}' then incr pos
        else begin
          let k = ident () in
          if !pos >= n || line.[!pos] <> '=' then fail "expected '='";
          incr pos;
          if !pos >= n || line.[!pos] <> '"' then fail "expected '\"'";
          incr pos;
          let b = Buffer.create 16 in
          let rec value () =
            if !pos >= n then fail "unterminated label value"
            else
              match line.[!pos] with
              | '"' -> incr pos
              | '\\' when !pos + 1 < n ->
                  Buffer.add_char b '\\';
                  Buffer.add_char b line.[!pos + 1];
                  pos := !pos + 2;
                  value ()
              | c ->
                  Buffer.add_char b c;
                  incr pos;
                  value ()
          in
          value ();
          acc := (k, unescape_label_value (Buffer.contents b)) :: !acc;
          skip_ws ();
          if !pos < n && line.[!pos] = ',' then begin
            incr pos;
            loop ()
          end
          else if !pos < n && line.[!pos] = '}' then incr pos
          else fail "expected ',' or '}'"
        end
      in
      loop ();
      List.rev !acc
    end
    else []
  in
  skip_ws ();
  if !pos >= n then fail "missing sample value";
  let value_str = String.sub line !pos (n - !pos) |> String.trim in
  let value =
    match float_of_string_opt value_str with
    | Some v -> v
    | None -> fail (Printf.sprintf "bad sample value %S" value_str)
  in
  (name, List.sort compare labels, value)

let parse_prometheus text =
  let lines = String.split_on_char '\n' text in
  try
    Ok
      (List.concat
         (List.mapi
            (fun i line ->
              let line = String.trim line in
              if line = "" || line.[0] = '#' then []
              else [ parse_sample_line (i + 1) line ])
            lines))
  with Parse_error msg -> Error msg

let of_prometheus text =
  match parse_prometheus text with
  | Error _ as e -> e
  | Ok samples ->
      Ok
        (samples
        |> List.filter_map (fun (name, labels, v) ->
               if name = conflicts_metric then Some (labels, int_of_float v)
               else None)
        |> of_samples)

(* ------------------------------------------------------------------ *)
(* Comparison and rendering                                            *)

let comparison ~by maps =
  let tbl : (labels, (string * t) list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun m ->
      match List.assoc_opt by m.key with
      | None -> ()
      | Some v ->
          let shared = List.filter (fun (k, _) -> k <> by) m.key in
          let slot =
            match Hashtbl.find_opt tbl shared with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add tbl shared r;
                order := shared :: !order;
                r
          in
          slot := (v, m) :: !slot)
    maps;
  List.rev !order
  |> List.filter_map (fun shared ->
         match !(Hashtbl.find tbl shared) with
         | [] | [ _ ] -> None
         | variants -> Some (shared, List.sort compare variants))
  |> List.sort compare

let pp_key ppf key =
  Fmt.pf ppf "%a"
    Fmt.(list ~sep:(any " ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
    key

let pp ppf t =
  let requested, held = axes t in
  let w =
    List.fold_left (fun acc s -> max acc (String.length s)) 9 (requested @ held)
  in
  Fmt.pf ppf "%a (total %d)@." pp_key t.key (total t);
  Fmt.pf ppf "%*s |" w "req\\held";
  List.iter (fun h -> Fmt.pf ppf " %*s" w h) held;
  Fmt.pf ppf "@.";
  List.iter
    (fun r ->
      Fmt.pf ppf "%*s |" w r;
      List.iter
        (fun h ->
          match count t ~requested:r ~held:h with
          | 0 -> Fmt.pf ppf " %*s" w "."
          | c -> Fmt.pf ppf " %*d" w c)
        held;
      Fmt.pf ppf "@.")
    requested

let pp_comparison ~by ppf maps =
  let rows = comparison ~by maps in
  if rows = [] then Fmt.pf ppf "no comparable %s groups@." by
  else
    List.iter
      (fun (shared, variants) ->
        Fmt.pf ppf "=== %a ===@." pp_key shared;
        List.iter
          (fun (v, m) ->
            Fmt.pf ppf "--- %s=%s ---@." by v;
            pp ppf m)
          variants;
        (* cells hot in one variant and absent in the other are the
           conflicts the recovery method itself induces *)
        match variants with
        | (va, a) :: (vb, b) :: _ ->
            let only_in name m other =
              let extra =
                List.filter (fun (cell, _) -> not (List.mem_assoc cell other.cells)) m.cells
              in
              if extra <> [] then begin
                Fmt.pf ppf "only under %s=%s:" by name;
                List.iter
                  (fun ((r, h), c) -> Fmt.pf ppf " %s/%s:%d" r h c)
                  extra;
                Fmt.pf ppf "@."
              end
            in
            only_in va a b;
            only_in vb b a
        | _ -> ())
      rows
