(** The blocking graph: who blocked whom, for how long, and where the
    latency of each commit actually went.

    Edges are reconstructed from [Blocked]/[Woken] spans: a transaction
    that blocks at [t1] on holders [H] and next runs at [t2] contributes
    one edge per holder weighted [t2 - t1] logical ticks.  Aggregations
    turn the edge list into per-holder blame and per-object contention;
    {!flame} folds whole timelines into a text flame view (phase, then
    object within the waiting phases). *)

open Tm_core

type edge = {
  blocked : Tid.t;
  holder : Tid.t;
  obj : string;
  start_ts : int;
  stop_ts : int;  (** exclusive *)
}

(** Events must be in emission order. *)
val edges : Trace.event list -> edge list

val weight : edge -> int

(** {1 Aggregations} *)

(** [(holder, total ticks of others it blocked, distinct block episodes)]
    sorted by blame, heaviest first. *)
val by_holder : edge list -> (Tid.t * int * int) list

(** [(obj, total blocked ticks, episodes)], heaviest first. *)
val by_object : edge list -> (string * int * int) list

(** Per-transaction critical-path attribution: for each transaction, its
    whole span decomposed into the phase totals of its timeline —
    [(txn, [(phase, ticks)])] with zero phases omitted. *)
val critical_paths : Timeline.txn list -> (Timeline.txn * (Timeline.phase * int) list) list

(** {1 Flame view} *)

(** Aggregate phase totals across all given transactions, waiting phases
    further keyed by object: rows are ([path], ticks) where [path] is
    [[phase]] or [[phase; obj]]. *)
val flame : Timeline.txn list -> (string list * int) list

val pp_edges : Format.formatter -> edge list -> unit
val pp_blame : Format.formatter -> edge list -> unit

(** The flame rows of {!flame} with proportional bars. *)
val pp_flame : Format.formatter -> Timeline.txn list -> unit
