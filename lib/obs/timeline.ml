open Tm_core

type phase =
  | Run
  | Lock_wait
  | Stall
  | Validate
  | Flush_wait
  | Prepare
  | Decide
  | Complete

let phase_name = function
  | Run -> "run"
  | Lock_wait -> "lock_wait"
  | Stall -> "stall"
  | Validate -> "validate"
  | Flush_wait -> "flush_wait"
  | Prepare -> "prepare"
  | Decide -> "decide"
  | Complete -> "complete"

let all_phases =
  [ Run; Lock_wait; Stall; Validate; Flush_wait; Prepare; Decide; Complete ]

type segment = {
  phase : phase;
  obj : string option;
  start_ts : int;
  stop_ts : int;
}

type outcome =
  | Committed
  | Aborted
  | Unfinished

let outcome_name = function
  | Committed -> "committed"
  | Aborted -> "aborted"
  | Unfinished -> "unfinished"

type txn = {
  tid : Tid.t;
  begin_ts : int;
  end_ts : int;
  outcome : outcome;
  segments : segment list;
}

(* Mutable per-transaction build state: the phase the transaction has
   been in since [since], plus everything already closed. *)
type building = {
  b_tid : Tid.t;
  b_begin : int;
  mutable b_last : int;
  mutable b_phase : phase;
  mutable b_obj : string option;
  mutable b_since : int;
  mutable b_outcome : outcome;
  mutable b_segments_rev : segment list;
}

let switch b ts phase obj =
  if b.b_phase <> phase || b.b_obj <> obj then begin
    if ts > b.b_since then
      b.b_segments_rev <-
        { phase = b.b_phase; obj = b.b_obj; start_ts = b.b_since; stop_ts = ts }
        :: b.b_segments_rev;
    b.b_phase <- phase;
    b.b_obj <- obj;
    b.b_since <- ts
  end

let of_events events =
  let txns : (Tid.t, building) Hashtbl.t = Hashtbl.create 32 in
  let order : building list ref = ref [] in
  let get tid ts =
    match Hashtbl.find_opt txns tid with
    | Some b -> b
    | None ->
        let b =
          {
            b_tid = tid;
            b_begin = ts;
            b_last = ts;
            b_phase = Run;
            b_obj = None;
            b_since = ts;
            b_outcome = Unfinished;
            b_segments_rev = [];
          }
        in
        Hashtbl.add txns tid b;
        order := b :: !order;
        b
  in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.tid with
      | None -> ()
      | Some tid -> (
          let b = get tid e.Trace.ts in
          b.b_last <- e.Trace.ts;
          match e.Trace.kind with
          | Trace.Begin | Trace.Invoke _ | Trace.Wal_append _ | Trace.Wal_force
          | Trace.Deadlock_victim _ | Trace.Lock_release _
          | Trace.Checkpoint _ | Trace.Crash_recover _ | Trace.Recovery_phase _ ->
              ()
          | Trace.Executed _ | Trace.Woken _ -> switch b e.Trace.ts Run None
          | Trace.Blocked { obj; _ } -> switch b e.Trace.ts Lock_wait (Some obj)
          | Trace.No_response { obj; _ } -> switch b e.Trace.ts Stall (Some obj)
          | Trace.Validating -> switch b e.Trace.ts Validate None
          | Trace.Validated _ -> switch b e.Trace.ts Run None
          | Trace.Wal_flush_wait _ -> switch b e.Trace.ts Flush_wait None
          | Trace.Durable _ -> switch b e.Trace.ts Run None
          (* 2PC decomposition of a cross-shard commit: vote collection
             ([Prepare]), the in-doubt window from the first durable vote
             to the forced decision ([Decide]), then lazy phase-2
             application ([Complete]).  Per-participant Commit/Abort
             events flip briefly back to [Run]; the tiling invariant is
             indifferent to how finely the tail alternates. *)
          | Trace.Prepare_append _ -> switch b e.Trace.ts Prepare None
          | Trace.Prepare_force _ -> switch b e.Trace.ts Decide None
          | Trace.Decision_force _ | Trace.Completion _ ->
              switch b e.Trace.ts Complete None
          | Trace.Commit ->
              switch b e.Trace.ts Run None;
              b.b_outcome <- Committed
          | Trace.Abort ->
              switch b e.Trace.ts Run None;
              b.b_outcome <- Aborted))
    events;
  !order |> List.rev
  |> List.map (fun b ->
         (* close the open segment at the transaction's last event *)
         switch b b.b_last
           (match b.b_phase with Run -> Lock_wait | _ -> Run)
           (Some "\000sentinel");
         {
           tid = b.b_tid;
           begin_ts = b.b_begin;
           end_ts = b.b_last;
           outcome = b.b_outcome;
           segments = List.rev b.b_segments_rev;
         })
  |> List.sort (fun a b -> compare (a.begin_ts, Tid.to_int a.tid) (b.begin_ts, Tid.to_int b.tid))

let duration t = t.end_ts - t.begin_ts

let phase_total t phase =
  List.fold_left
    (fun acc s -> if s.phase = phase then acc + (s.stop_ts - s.start_ts) else acc)
    0 t.segments

let wait_by_obj t =
  List.fold_left
    (fun acc s ->
      match s.phase, s.obj with
      | (Lock_wait | Stall), Some obj ->
          let d = s.stop_ts - s.start_ts in
          (match List.assoc_opt obj acc with
          | Some prev -> (obj, prev + d) :: List.remove_assoc obj acc
          | None -> (obj, d) :: acc)
      | _ -> acc)
    [] t.segments
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let consistent t =
  duration t
  = List.fold_left (fun acc s -> acc + (s.stop_ts - s.start_ts)) 0 t.segments

let pp ppf txns =
  Fmt.pf ppf "%-5s %-10s %6s %6s %6s %9s %6s %8s %6s %6s %6s %10s@." "tid"
    "outcome" "span" "run" "lockw" "stall" "valid" "flushw" "prep" "decide"
    "compl" "check";
  List.iter
    (fun t ->
      Fmt.pf ppf "%-5s %-10s %6d %6d %6d %9d %6d %8d %6d %6d %6d %10s@."
        (Tid.to_string t.tid) (outcome_name t.outcome) (duration t)
        (phase_total t Run) (phase_total t Lock_wait) (phase_total t Stall)
        (phase_total t Validate) (phase_total t Flush_wait)
        (phase_total t Prepare) (phase_total t Decide) (phase_total t Complete)
        (if consistent t then "ok" else "BROKEN"))
    txns

let phase_char = function
  | Run -> '='
  | Lock_wait -> 'x'
  | Stall -> '.'
  | Validate -> 'v'
  | Flush_wait -> '~'
  | Prepare -> 'p'
  | Decide -> 'd'
  | Complete -> 'c'

let pp_bars ~width ppf txns =
  if width < 1 then invalid_arg "Timeline.pp_bars: width < 1";
  match txns with
  | [] -> ()
  | _ ->
      let clock_end =
        List.fold_left (fun acc t -> max acc t.end_ts) 1 txns
      in
      let col ts = min (width - 1) (ts * width / max 1 clock_end) in
      List.iter
        (fun t ->
          let bar = Bytes.make width ' ' in
          List.iter
            (fun s ->
              for i = col s.start_ts to max (col s.start_ts) (col (s.stop_ts - 1)) do
                Bytes.set bar i (phase_char s.phase)
              done)
            t.segments;
          Fmt.pf ppf "%-5s |%s| %s@." (Tid.to_string t.tid)
            (Bytes.to_string bar) (outcome_name t.outcome))
        txns
