(** Conflict heat maps: requested x held operation matrices.

    The engine counts every blocking conflict pair as
    [tm_lock_conflicts_total{obj,requested,held}] (see
    [Lock_table.attach_metrics]).  This module folds those counters into
    one matrix per series group — an object, plus whatever extra labels
    the snapshot carries ([scenario], [setup], ...) — and pairs matrices
    across a chosen label so UIP(NRBC) and DU(NFC) runs of the same
    workload can be compared cell by cell: the extra conflicts a
    recovery method induces show up as hot cells that the other method's
    matrix lacks.

    Matrices can be built live from a {!Metrics.t} or offline from a
    Prometheus text dump ({!of_prometheus}), whose parser reverses the
    exporter's label-value escaping. *)

type labels = (string * string) list

type t = {
  key : labels;  (** identifying labels: [obj] plus any group labels *)
  cells : ((string * string) * int) list;
      (** [(requested, held) -> count], deterministically sorted *)
}

(** The counter family the matrices are folded from
    ([tm_lock_conflicts_total]). *)
val conflicts_metric : string

(** One matrix per distinct label set (minus [requested]/[held]) of the
    [tm_lock_conflicts_total] family; sorted by key. *)
val of_metrics : Metrics.t -> t list

(** [of_samples samples] folds pre-extracted [(labels, count)] conflict
    samples into matrices — for callers that already parsed a snapshot
    with {!parse_prometheus} and select the family themselves. *)
val of_samples : (labels * int) list -> t list

val obj : t -> string option
val count : t -> requested:string -> held:string -> int
val total : t -> int

(** Distinct requested / held operation names, sorted. *)
val axes : t -> string list * string list

(** {1 Offline (Prometheus text) source} *)

(** Generic 0.0.4 text-format parser: [(name, labels, value)] per sample
    line, comments and blanks skipped, label values unescaped
    (backslash, double quote, newline). *)
val parse_prometheus : string -> ((string * labels * float) list, string) result

val of_prometheus : string -> (t list, string) result

(** {1 Comparison} *)

(** [comparison ~by maps] groups matrices that agree on every key label
    except [by] (e.g. [by:"setup"] pairs [UIP+NRBC] with [DU+NFC] for
    the same object and scenario).  Rows: shared key, then
    [(by-value, matrix)] in value order.  Groups with fewer than two
    matrices are dropped. *)
val comparison : by:string -> t list -> (labels * (string * t) list) list

val pp : Format.formatter -> t -> unit
val pp_comparison : by:string -> Format.formatter -> t list -> unit
