open Tm_core

type edge = {
  blocked : Tid.t;
  holder : Tid.t;
  obj : string;
  start_ts : int;
  stop_ts : int;
}

let weight e = e.stop_ts - e.start_ts

(* An open block episode: who [tid] is waiting behind at [obj] since
   [start_ts].  The scheduler re-emits [Blocked] every round a
   transaction stays parked; a repeat with the same object extends the
   same episode (holders may gain members as more of the cycle forms —
   keep the union).  A different object, or any sign of running again,
   closes it. *)
type pending = {
  p_obj : string;
  p_start : int;
  mutable p_holders : Tid.t list;
}

let edges events =
  let open_blocks : (Tid.t, pending) Hashtbl.t = Hashtbl.create 32 in
  let acc = ref [] in
  let close tid ts =
    match Hashtbl.find_opt open_blocks tid with
    | None -> ()
    | Some p ->
        Hashtbl.remove open_blocks tid;
        if ts > p.p_start then
          List.iter
            (fun holder ->
              acc :=
                {
                  blocked = tid;
                  holder;
                  obj = p.p_obj;
                  start_ts = p.p_start;
                  stop_ts = ts;
                }
                :: !acc)
            (List.rev p.p_holders)
  in
  let last_ts = ref 0 in
  List.iter
    (fun (e : Trace.event) ->
      last_ts := e.Trace.ts;
      match e.Trace.tid with
      | None -> ()
      | Some tid -> (
          match e.Trace.kind with
          | Trace.Blocked { obj; holders; _ } -> (
              match Hashtbl.find_opt open_blocks tid with
              | Some p when p.p_obj = obj ->
                  List.iter
                    (fun h ->
                      if not (List.mem h p.p_holders) then
                        p.p_holders <- h :: p.p_holders)
                    holders
              | _ ->
                  close tid e.Trace.ts;
                  Hashtbl.add open_blocks tid
                    { p_obj = obj; p_start = e.Trace.ts; p_holders = List.rev holders }
              )
          | Trace.Executed _ | Trace.Woken _ | Trace.Commit | Trace.Abort
          | Trace.Validating | Trace.Validated _ ->
              close tid e.Trace.ts
          | _ -> ()))
    events;
  (* trace ended with some transactions still parked *)
  Hashtbl.fold (fun tid _ tids -> tid :: tids) open_blocks []
  |> List.sort compare
  |> List.iter (fun tid -> close tid !last_ts);
  List.rev !acc

let tally ~key es =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let k = key e in
      let w, n = Option.value (Hashtbl.find_opt tbl k) ~default:(0, 0) in
      Hashtbl.replace tbl k (w + weight e, n + 1))
    es;
  Hashtbl.fold (fun k (w, n) acc -> (k, w, n) :: acc) tbl []
  |> List.sort (fun (ka, wa, _) (kb, wb, _) -> compare (wb, ka) (wa, kb))

let by_holder es = tally ~key:(fun e -> e.holder) es
let by_object es = tally ~key:(fun e -> e.obj) es

let critical_paths txns =
  List.map
    (fun (t : Timeline.txn) ->
      ( t,
        Timeline.all_phases
        |> List.filter_map (fun ph ->
               match Timeline.phase_total t ph with
               | 0 -> None
               | d -> Some (ph, d)) ))
    txns

let flame txns =
  let tbl : (string list, int) Hashtbl.t = Hashtbl.create 16 in
  let add path d =
    Hashtbl.replace tbl path (d + Option.value (Hashtbl.find_opt tbl path) ~default:0)
  in
  List.iter
    (fun (t : Timeline.txn) ->
      List.iter
        (fun (s : Timeline.segment) ->
          let d = s.Timeline.stop_ts - s.Timeline.start_ts in
          let ph = Timeline.phase_name s.Timeline.phase in
          add [ ph ] d;
          match s.Timeline.obj with
          | Some obj -> add [ ph; obj ] d
          | None -> ())
        t.Timeline.segments)
    txns;
  Hashtbl.fold (fun path d acc -> (path, d) :: acc) tbl []
  |> List.sort (fun (pa, da) (pb, db) ->
         (* phases in name order, each followed by its object children
            heaviest first — deterministic for the golden tests *)
         compare (List.hd pa, List.length pa, -da, pa) (List.hd pb, List.length pb, -db, pb))

let pp_edges ppf es =
  List.iter
    (fun e ->
      Fmt.pf ppf "%s waited %d on %s held by %s  [%d,%d)@." (Tid.to_string e.blocked)
        (weight e) e.obj (Tid.to_string e.holder) e.start_ts e.stop_ts)
    es

let pp_blame ppf es =
  Fmt.pf ppf "by holder:@.";
  List.iter
    (fun (tid, w, n) ->
      Fmt.pf ppf "  %-5s blocked others for %5d ticks over %d episodes@."
        (Tid.to_string tid) w n)
    (by_holder es);
  Fmt.pf ppf "by object:@.";
  List.iter
    (fun (obj, w, n) ->
      Fmt.pf ppf "  %-12s %5d ticks over %d episodes@." obj w n)
    (by_object es)

let pp_flame ppf txns =
  let rows = flame txns in
  let total =
    List.fold_left
      (fun acc (path, d) -> match path with [ _ ] -> acc + d | _ -> acc)
      0 rows
  in
  let widest =
    List.fold_left
      (fun acc (path, _) -> max acc (String.length (String.concat ";" path)))
      0 rows
  in
  List.iter
    (fun (path, d) ->
      let label =
        match path with
        | [ ph ] -> ph
        | ph :: rest -> "  " ^ ph ^ ";" ^ String.concat ";" rest
        | [] -> ""
      in
      let bar_w = if total = 0 then 0 else d * 40 / total in
      Fmt.pf ppf "%-*s %6d %s@." (widest + 2) label d (String.make bar_w '#'))
    rows;
  Fmt.pf ppf "%-*s %6d@." (widest + 2) "total" total
