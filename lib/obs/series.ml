(* Bounded per-key rings of (time, value) points; see series.mli. *)

type ring = {
  times : float array;
  values : float array;
  mutable head : int;  (* next write position *)
  mutable len : int;
}

type t = {
  cap : int;
  rings : (string, ring) Hashtbl.t;
  mutable order_rev : string list;
}

let create ?(capacity = 120) () =
  if capacity < 1 then invalid_arg "Series.create: capacity < 1";
  { cap = capacity; rings = Hashtbl.create 32; order_rev = [] }

let capacity t = t.cap

let key name labels =
  match List.sort compare labels with
  | [] -> name
  | ls ->
      Fmt.str "%s{%s}" name
        (String.concat ","
           (List.map (fun (k, v) -> Fmt.str "%s=%S" k v) ls))

let ring_of t k =
  match Hashtbl.find_opt t.rings k with
  | Some r -> r
  | None ->
      let r =
        {
          times = Array.make t.cap 0.;
          values = Array.make t.cap 0.;
          head = 0;
          len = 0;
        }
      in
      Hashtbl.add t.rings k r;
      t.order_rev <- k :: t.order_rev;
      r

let observe t ~at ~key:k v =
  let r = ring_of t k in
  r.times.(r.head) <- at;
  r.values.(r.head) <- v;
  r.head <- (r.head + 1) mod t.cap;
  if r.len < t.cap then r.len <- r.len + 1

let keys t = List.rev t.order_rev

let has_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let sample t ~at samples =
  List.iter
    (fun (name, labels, v) ->
      if not (has_suffix ~suffix:"_bucket" name) then
        observe t ~at ~key:(key name labels) v)
    samples

let sample_registry t ~at reg =
  Metrics.fold reg
    (fun () name labels metric ->
      match metric with
      | Metrics.Counter c ->
          observe t ~at ~key:(key name labels)
            (float_of_int (Metrics.Counter.get c))
      | Metrics.Gauge g -> observe t ~at ~key:(key name labels) (Metrics.Gauge.get g)
      | Metrics.Histogram h ->
          observe t ~at
            ~key:(key (name ^ "_count") labels)
            (float_of_int (Metrics.Histogram.count h));
          observe t ~at ~key:(key (name ^ "_sum") labels) (Metrics.Histogram.sum h))
    ()

let length t k =
  match Hashtbl.find_opt t.rings k with Some r -> r.len | None -> 0

let points t k =
  match Hashtbl.find_opt t.rings k with
  | None -> []
  | Some r ->
      List.init r.len (fun i ->
          let j = (r.head - r.len + i + (2 * t.cap)) mod t.cap in
          (r.times.(j), r.values.(j)))

let last t k =
  match Hashtbl.find_opt t.rings k with
  | Some r when r.len > 0 ->
      let j = (r.head - 1 + t.cap) mod t.cap in
      Some (r.times.(j), r.values.(j))
  | _ -> None

let ends t k =
  match points t k with
  | [] | [ _ ] -> None
  | (t0, v0) :: rest ->
      let tn, vn = List.nth rest (List.length rest - 1) in
      Some ((t0, v0), (tn, vn))

let delta t k = Option.map (fun ((_, v0), (_, vn)) -> vn -. v0) (ends t k)

let rate t k =
  Option.bind (ends t k) (fun ((t0, v0), (tn, vn)) ->
      if tn -. t0 <= 0. then None else Some ((vn -. v0) /. (tn -. t0)))

let spark_chars = " .:-=+*#%@"

let sparkline ?(width = 32) t k =
  match points t k with
  | [] -> ""
  | pts ->
      let pts =
        let n = List.length pts in
        if n <= width then pts
        else List.filteri (fun i _ -> i >= n - width) pts
      in
      let vs = List.map snd pts in
      let lo = List.fold_left min infinity vs in
      let hi = List.fold_left max neg_infinity vs in
      let levels = String.length spark_chars - 1 in
      String.concat ""
        (List.map
           (fun v ->
             let i =
               if hi <= lo then 0
               else
                 int_of_float
                   (Float.round (float_of_int levels *. ((v -. lo) /. (hi -. lo))))
             in
             String.make 1 spark_chars.[max 0 (min levels i)])
           vs)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun k ->
      List.iter
        (fun (at, v) ->
          Buffer.add_string buf
            (Json.to_string
               (Json.Obj
                  [
                    ("key", Json.Str k);
                    ("at", Json.Float at);
                    ("value", Json.Float v);
                  ]));
          Buffer.add_char buf '\n')
        (points t k))
    (keys t);
  Buffer.contents buf

let num_member name j =
  match Json.member name j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let of_jsonl s =
  match Json.parse_lines s with
  | Error e -> Error e
  | Ok docs -> (
      let docs =
        match docs with
        | first :: rest when Artifact.is_header first -> (
            match
              Result.bind (Artifact.of_json first)
                (Artifact.check_schema ~expect:Artifact.series_schema)
            with
            | Ok _ -> Ok rest
            | Error e -> Error e)
        | docs -> Ok docs
      in
      match docs with
      | Error e -> Error e
      | Ok docs -> (
          let parse j =
            match
              ( Option.bind (Json.member "key" j) Json.to_str,
                num_member "at" j,
                num_member "value" j )
            with
            | Some k, Some at, Some v -> Ok (k, at, v)
            | _ -> Error "series point: expected {key, at, value}"
          in
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | j :: rest -> (
                match parse j with
                | Ok p -> go (p :: acc) rest
                | Error _ as e -> e)
          in
          match go [] docs with
          | Error e -> Error e
          | Ok pts ->
              let counts = Hashtbl.create 16 in
              List.iter
                (fun (k, _, _) ->
                  Hashtbl.replace counts k
                    (1 + Option.value (Hashtbl.find_opt counts k) ~default:0))
                pts;
              let cap = Hashtbl.fold (fun _ n acc -> max n acc) counts 1 in
              let t = create ~capacity:cap () in
              List.iter (fun (k, at, v) -> observe t ~at ~key:k v) pts;
              Ok t))
