(** Self-describing artifact headers.

    Every dump the CLI executables write — trace JSONL, Prometheus
    metrics snapshots, bench baselines — carries a one-line metadata
    header: the schema ("<family>/<version>"), the producing binary, the
    seed and any run configuration.  Readers validate the family (a
    metrics dump handed to the trace parser fails loudly) and then skip
    the line; unknown {e versions} within the right family are skipped
    without complaint, so old readers survive new writers. *)

type t = {
  schema : string;  (** ["<family>/<version>"], e.g. ["tm-trace/1"] *)
  binary : string;  (** producing executable's basename *)
  seed : int option;
  config : (string * string) list;
}

val trace_schema : string  (** ["tm-trace/1"] *)

val metrics_schema : string  (** ["tm-metrics/1"] *)

val bench_schema : string  (** ["tm-bench/1"] *)

val audit_schema : string
(** ["tm-2pc/1"] — the 2PC in-doubt resolution audit trail
    ({!Tm_engine.Two_phase.resolution_events} rendered as JSONL). *)

val series_schema : string
(** ["tm-series/1"] — a {!Series} time-series snapshot (one sampled
    point per line). *)

(** [make ~schema ()] — [binary] defaults to
    [Filename.basename Sys.executable_name]. *)
val make :
  schema:string ->
  ?binary:string ->
  ?seed:int ->
  ?config:(string * string) list ->
  unit ->
  t

(** The part of [schema] before ['/']. *)
val family : t -> string

(** [check_schema ~expect m] — [Ok m] when [m]'s family matches
    [expect]'s family, an explanatory [Error] otherwise. *)
val check_schema : expect:string -> t -> (t, string) result

(** {1 Wire format}

    The header is a JSON object [{"meta":{...}}] — distinguishable from
    every trace event (those carry ["ts"]) and from bench payload
    members. *)

val to_json : t -> Json.t

(** [is_header j] — does [j] look like an artifact header (has a
    ["meta"] member)? *)
val is_header : Json.t -> bool

val of_json : Json.t -> (t, string) result

(** The JSONL header line, newline-terminated. *)
val header_line : t -> string

(** The Prometheus header: [# tm-meta {...}\n] — a comment line, so any
    Prometheus parser skips it even without knowing the convention. *)
val prom_header : t -> string

(** [of_jsonl s] reads the header from the first line of a JSONL dump:
    [Ok None] when the dump has no header (headerless artifacts from
    older writers stay readable), [Error] when a header is present but
    malformed. *)
val of_jsonl : string -> (t option, string) result

(** [of_prom s] finds and parses the [# tm-meta] line of a Prometheus
    dump, if any. *)
val of_prom : string -> (t option, string) result

val pp : Format.formatter -> t -> unit
