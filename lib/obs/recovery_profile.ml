(* Restart profiler: where a recovery spends its time and what it
   processes.  One value accompanies one restart through the whole
   path — storage scan, frame decode, CRC verify, log scan, object
   replay — each layer charging its own phase.  Wall times come from an
   injectable clock so tests can drive the profile deterministically. *)

type phase =
  | Storage_scan
  | Frame_decode
  | Checksum_verify
  | Checkpoint_seed
  | Log_scan
  | Object_replay
  | Loser_undo

let all_phases =
  [
    Storage_scan;
    Frame_decode;
    Checksum_verify;
    Checkpoint_seed;
    Log_scan;
    Object_replay;
    Loser_undo;
  ]

let phase_name = function
  | Storage_scan -> "storage_scan"
  | Frame_decode -> "frame_decode"
  | Checksum_verify -> "checksum_verify"
  | Checkpoint_seed -> "checkpoint_seed"
  | Log_scan -> "log_scan"
  | Object_replay -> "object_replay"
  | Loser_undo -> "loser_undo"

let phase_index = function
  | Storage_scan -> 0
  | Frame_decode -> 1
  | Checksum_verify -> 2
  | Checkpoint_seed -> 3
  | Log_scan -> 4
  | Object_replay -> 5
  | Loser_undo -> 6

let n_phases = List.length all_phases

type t = {
  clock : unit -> float;
  wall : float array;  (* seconds charged to each phase *)
  calls : int array;
  mutable bytes_scanned : int;
  mutable torn_bytes : int;
  mutable frames_decoded : int;
  mutable records_scanned : int;
  mutable checkpoints_seen : int;
  mutable checkpoint_seed_ops : int;
  mutable replayed_ops : int;
  mutable loser_txns : int;
  per_object : (string, int) Hashtbl.t;  (* obj -> committed ops re-applied *)
  (* parallel replay: worker count and per-partition outcomes, recorded
     by the coordinator after the barrier (never from worker domains). *)
  mutable workers : int;  (* 0 until a partitioned replay notes it *)
  mutable partitions_rev : (int * int * int * float) list;
      (* (index, objects, replayed ops, wall seconds) *)
  started : float;
  mutable total : float option;  (* end-to-end wall, stamped by [finish] *)
}

let create ?clock () =
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  {
    clock;
    wall = Array.make n_phases 0.0;
    calls = Array.make n_phases 0;
    bytes_scanned = 0;
    torn_bytes = 0;
    frames_decoded = 0;
    records_scanned = 0;
    checkpoints_seen = 0;
    checkpoint_seed_ops = 0;
    replayed_ops = 0;
    loser_txns = 0;
    per_object = Hashtbl.create 8;
    workers = 0;
    partitions_rev = [];
    started = clock ();
    total = None;
  }

let now t = t.clock ()

let phase_wall t ph = t.wall.(phase_index ph)
let phase_calls t ph = t.calls.(phase_index ph)

let add_wall t ph secs =
  let i = phase_index ph in
  t.wall.(i) <- t.wall.(i) +. Float.max 0.0 secs;
  t.calls.(i) <- t.calls.(i) + 1

let time t ph f =
  let t0 = t.clock () in
  Fun.protect ~finally:(fun () -> add_wall t ph (t.clock () -. t0)) f

(* Charge the elapsed time minus whatever [minus] accumulated inside [f]:
   how nested phases stay non-overlapping (a log scan's checkpoint-seed
   time is the checkpoint's, not the scan's), so the per-phase walls tile
   the restart instead of double counting. *)
let time_excluding t ph ~minus f =
  let before = phase_wall t minus in
  let t0 = t.clock () in
  Fun.protect
    ~finally:(fun () ->
      add_wall t ph (t.clock () -. t0 -. (phase_wall t minus -. before)))
    f

let note_bytes_scanned t n = t.bytes_scanned <- t.bytes_scanned + n
let note_torn_bytes t n = t.torn_bytes <- t.torn_bytes + n
let note_frame t = t.frames_decoded <- t.frames_decoded + 1
let note_frames t n = t.frames_decoded <- t.frames_decoded + n
let note_records_scanned t n = t.records_scanned <- t.records_scanned + n

let note_checkpoint_seed t ~ops =
  t.checkpoints_seen <- t.checkpoints_seen + 1;
  t.checkpoint_seed_ops <- t.checkpoint_seed_ops + ops

let note_object_replay t ~obj n =
  t.replayed_ops <- t.replayed_ops + n;
  Hashtbl.replace t.per_object obj
    (n + Option.value (Hashtbl.find_opt t.per_object obj) ~default:0)

let note_losers t n = t.loser_txns <- t.loser_txns + n
let note_workers t n = t.workers <- n

let note_partition t ~index ~objects ~ops ~wall =
  t.partitions_rev <- (index, objects, ops, wall) :: t.partitions_rev

let finish t = t.total <- Some (t.clock () -. t.started)

let bytes_scanned t = t.bytes_scanned
let torn_bytes t = t.torn_bytes
let frames_decoded t = t.frames_decoded
let records_scanned t = t.records_scanned
let checkpoints_seen t = t.checkpoints_seen
let checkpoint_seed_ops t = t.checkpoint_seed_ops
let replayed_ops t = t.replayed_ops
let loser_txns t = t.loser_txns

let per_object t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.per_object []
  |> List.sort compare

let workers t = t.workers

let partitions t =
  List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) t.partitions_rev

let phases_wall t = Array.fold_left ( +. ) 0.0 t.wall

let total_wall t =
  match t.total with Some s -> s | None -> phases_wall t

(* ------------------------------------------------------------------ *)
(* Exports: metrics, trace-span payloads, text, JSON.                  *)

let export t reg =
  List.iter
    (fun ph ->
      let labels = [ ("phase", phase_name ph) ] in
      Metrics.Gauge.set
        (Metrics.gauge reg "tm_recovery_phase_seconds" ~labels)
        (phase_wall t ph);
      Metrics.Counter.incr
        ~by:(phase_calls t ph)
        (Metrics.counter reg "tm_recovery_phase_calls_total" ~labels))
    all_phases;
  Metrics.Gauge.set (Metrics.gauge reg "tm_recovery_wall_seconds") (total_wall t);
  let count name v = Metrics.Counter.incr ~by:v (Metrics.counter reg name) in
  count "tm_recovery_bytes_scanned_total" t.bytes_scanned;
  count "tm_recovery_torn_bytes_total" t.torn_bytes;
  count "tm_recovery_frames_decoded_total" t.frames_decoded;
  count "tm_recovery_records_scanned_total" t.records_scanned;
  count "tm_recovery_checkpoints_seen_total" t.checkpoints_seen;
  count "tm_recovery_checkpoint_seed_ops_total" t.checkpoint_seed_ops;
  List.iter
    (fun (obj, n) ->
      Metrics.Counter.incr ~by:n
        (Metrics.counter reg "tm_recovery_object_replayed_ops_total"
           ~labels:[ ("obj", obj) ]))
    (per_object t);
  (* Worker/partition families only exist for partitioned replays; a
     bare [Wal.replay] profile exports exactly what it did before. *)
  if t.workers > 0 then
    Metrics.Gauge.set
      (Metrics.gauge reg "tm_recovery_workers")
      (float_of_int t.workers);
  List.iter
    (fun (index, _objects, ops, wall) ->
      let labels = [ ("partition", string_of_int index) ] in
      Metrics.Gauge.set
        (Metrics.gauge reg "tm_recovery_partition_seconds" ~labels)
        wall;
      Metrics.Counter.incr ~by:ops
        (Metrics.counter reg "tm_recovery_partition_replayed_ops_total"
           ~labels))
    (partitions t)

(* Each phase as a trace-span payload: the phase name, its wall time in
   microseconds, and the item count most characteristic of the phase. *)
let span_items t = function
  | Storage_scan -> t.bytes_scanned
  | Frame_decode -> t.frames_decoded
  | Checksum_verify -> t.frames_decoded
  | Checkpoint_seed -> t.checkpoint_seed_ops
  | Log_scan -> t.records_scanned
  | Object_replay -> t.replayed_ops
  | Loser_undo -> t.loser_txns

let us secs = int_of_float (Float.round (secs *. 1e6))

let spans t =
  List.filter_map
    (fun ph ->
      let wall = phase_wall t ph and items = span_items t ph in
      if phase_calls t ph = 0 && items = 0 then None
      else Some (phase_name ph, us wall, items))
    all_phases
  @ List.map
      (fun (index, _objects, ops, wall) ->
        (Fmt.str "object_replay.p%d" index, us wall, ops))
      (partitions t)

let pp ppf t =
  let total = total_wall t in
  Fmt.pf ppf "recovery profile: %.3f ms end-to-end@." (total *. 1e3);
  Fmt.pf ppf "  %-16s %10s %6s %10s@." "phase" "ms" "%" "items";
  List.iter
    (fun ph ->
      let w = phase_wall t ph in
      let pct = if total > 0.0 then 100.0 *. w /. total else 0.0 in
      Fmt.pf ppf "  %-16s %10.3f %5.1f%% %10d@." (phase_name ph) (w *. 1e3)
        pct (span_items t ph))
    all_phases;
  Fmt.pf ppf
    "  scanned %d bytes (%d torn), %d frames, %d records; %d checkpoints \
     (%d seed ops); replayed %d ops; %d losers@."
    t.bytes_scanned t.torn_bytes t.frames_decoded t.records_scanned
    t.checkpoints_seen t.checkpoint_seed_ops t.replayed_ops t.loser_txns;
  (match per_object t with
  | [] -> ()
  | objs ->
      Fmt.pf ppf "  per object:%a@."
        Fmt.(list ~sep:nop (fun ppf (o, n) -> Fmt.pf ppf " %s=%d" o n))
        objs);
  match partitions t with
  | [] -> ()
  | parts ->
      Fmt.pf ppf "  replay workers: %d; partitions:%a@." t.workers
        Fmt.(
          list ~sep:nop (fun ppf (i, objs, ops, wall) ->
              Fmt.pf ppf " p%d=%d objs/%d ops/%.3f ms" i objs ops (wall *. 1e3)))
        parts

let to_json t =
  let base =
    [
      ("total_seconds", Json.Float (total_wall t));
      ( "phases",
        Json.Obj
          (List.map
             (fun ph ->
               ( phase_name ph,
                 Json.Obj
                   [
                     ("seconds", Json.Float (phase_wall t ph));
                     ("calls", Json.Int (phase_calls t ph));
                     ("items", Json.Int (span_items t ph));
                   ] ))
             all_phases) );
      ("bytes_scanned", Json.Int t.bytes_scanned);
      ("torn_bytes", Json.Int t.torn_bytes);
      ("frames_decoded", Json.Int t.frames_decoded);
      ("records_scanned", Json.Int t.records_scanned);
      ("checkpoints_seen", Json.Int t.checkpoints_seen);
      ("checkpoint_seed_ops", Json.Int t.checkpoint_seed_ops);
      ("replayed_ops", Json.Int t.replayed_ops);
      ("loser_txns", Json.Int t.loser_txns);
      ( "per_object",
        Json.Obj (List.map (fun (o, n) -> (o, Json.Int n)) (per_object t)) );
    ]
  in
  (* Only partitioned replays carry these keys, so profiles written by
     the serial path are byte-identical to what they were. *)
  let parallel =
    if t.workers = 0 && t.partitions_rev = [] then []
    else
      [
        ("workers", Json.Int t.workers);
        ( "partitions",
          Json.Obj
            (List.map
               (fun (i, objects, ops, wall) ->
                 ( Fmt.str "p%d" i,
                   Json.Obj
                     [
                       ("objects", Json.Int objects);
                       ("ops", Json.Int ops);
                       ("seconds", Json.Float wall);
                     ] ))
               (partitions t)) );
      ]
  in
  Json.Obj (base @ parallel)
