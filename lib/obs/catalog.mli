(** The metrics catalog: one declarative entry per metric family the
    codebase can register, with its kind, label keys and meaning.

    The catalog is the source of truth for [docs/METRICS.md] (generated
    by [bin/metricsdoc.exe]) and is checked against live registries by
    the test suite, so a metric added to the code without a catalog
    entry fails tests rather than silently shipping undocumented. *)

type kind = Counter | Gauge | Histogram

type entry = {
  name : string;
  kind : kind;
  labels : string list;  (** label keys the registration site attaches *)
  help : string;
  section : string;  (** grouping heading for the generated doc *)
}

val kind_name : kind -> string

(** Every entry, in document order (grouped by section). *)
val all : entry list

val find : string -> entry option

(** [check reg] — every series registered in [reg] must be catalogued
    with a matching kind, and must carry at least the catalogued label
    keys (extra keys are allowed: {!Metrics.merge} adds distinguishing
    labels like [setup]).  Returns the list of violations, one message
    per offending series. *)
val check : Metrics.t -> (unit, string list) result

(** The generated [docs/METRICS.md] body, byte-for-byte. *)
val to_markdown : unit -> string
