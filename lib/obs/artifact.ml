(* Self-describing dump headers.  Every artifact the CLIs write — trace
   JSONL, Prometheus metrics snapshots, bench baselines — starts with a
   small metadata record: schema name/version, the producing binary, the
   seed and any config the run used.  Readers skip it after validating
   that the file is the kind of artifact they expect, so a metrics dump
   fed to the trace parser fails loudly instead of decoding garbage. *)

type t = {
  schema : string;  (* "<family>/<version>", e.g. "tm-trace/1" *)
  binary : string;
  seed : int option;
  config : (string * string) list;
}

let trace_schema = "tm-trace/1"
let metrics_schema = "tm-metrics/1"
let bench_schema = "tm-bench/1"
let audit_schema = "tm-2pc/1"
let series_schema = "tm-series/1"

let make ~schema ?binary ?seed ?(config = []) () =
  let binary =
    match binary with
    | Some b -> b
    | None -> Filename.basename Sys.executable_name
  in
  { schema; binary; seed; config }

let family t =
  match String.index_opt t.schema '/' with
  | Some i -> String.sub t.schema 0 i
  | None -> t.schema

let family_of_schema s =
  match String.index_opt s '/' with Some i -> String.sub s 0 i | None -> s

let to_json t =
  Json.Obj
    [
      ( "meta",
        Json.Obj
          (("schema", Json.Str t.schema)
           :: ("binary", Json.Str t.binary)
           :: (match t.seed with
              | Some s -> [ ("seed", Json.Int s) ]
              | None -> [])
          @ [
              ( "config",
                Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) t.config) );
            ]) );
    ]

let is_header j = Json.member "meta" j <> None

let of_json j =
  match Json.member "meta" j with
  | None -> Error "not an artifact header (no \"meta\" member)"
  | Some m -> (
      match Option.bind (Json.member "schema" m) Json.to_str with
      | None -> Error "artifact header: missing \"schema\""
      | Some schema ->
          let binary =
            Option.value
              (Option.bind (Json.member "binary" m) Json.to_str)
              ~default:"?"
          in
          let seed = Option.bind (Json.member "seed" m) Json.to_int in
          let config =
            match Json.member "config" m with
            | Some c ->
                List.filter_map
                  (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
                  (Json.entries c)
            | None -> []
          in
          Ok { schema; binary; seed; config })

(* [check_schema ~expect m] — the header's family must match; versions
   within a family are forward-compatible for skipping (the reader only
   needs to know it has the right kind of file). *)
let check_schema ~expect m =
  if String.equal (family m) (family_of_schema expect) then Ok m
  else
    Error
      (Fmt.str "artifact schema %S where a %S artifact was expected" m.schema
         expect)

(* ------------------------------------------------------------------ *)
(* Headers on the wire                                                 *)

let header_line t = Json.to_string (to_json t) ^ "\n"

let prom_magic = "# tm-meta "

let prom_header t = prom_magic ^ Json.to_string (to_json t) ^ "\n"

let of_jsonl s =
  let line =
    match String.index_opt s '\n' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let line = String.trim line in
  if line = "" then Ok None
  else
    match Json.parse line with
    | Error _ -> Ok None  (* not even JSON: the event parser will complain *)
    | Ok j ->
        if is_header j then Result.map Option.some (of_json j) else Ok None

let of_prom s =
  let rec first = function
    | [] -> Ok None
    | line :: rest ->
        let line = String.trim line in
        if String.length line >= String.length prom_magic
           && String.sub line 0 (String.length prom_magic) = prom_magic
        then
          let body =
            String.sub line (String.length prom_magic)
              (String.length line - String.length prom_magic)
          in
          match Json.parse body with
          | Error e -> Error ("tm-meta header: " ^ e)
          | Ok j -> Result.map Option.some (of_json j)
        else first rest
  in
  first (String.split_on_char '\n' s)

let pp ppf t =
  Fmt.pf ppf "%s (by %s%a%a)" t.schema t.binary
    (fun ppf -> function None -> () | Some s -> Fmt.pf ppf ", seed %d" s)
    t.seed
    Fmt.(
      list ~sep:nop (fun ppf (k, v) -> Fmt.pf ppf ", %s=%s" k v))
    t.config
