(** Transaction trace spans: structured engine events with monotonic
    logical timestamps.

    A recorder is attached to a {!Tm_engine.Database} (or the durable /
    threaded front ends built on it); the engine emits one event per
    transaction-lifecycle step.  Timestamps are logical — each emitted
    event advances the recorder's clock by one — so traces are
    deterministic whenever the run is.

    The two consumers are {!pp_jsonl} (a JSON-lines dump, one object per
    line, for external tooling) and {!to_history}, which converts a
    recorded trace back into a paper history so the run can be re-checked
    by {!Tm_core.Atomicity}'s dynamic-atomicity checkers — observability
    that double-checks the theory. *)

open Tm_core

type kind =
  | Begin
  | Invoke of { obj : string; inv : Op.invocation }  (** an invocation attempt *)
  | Executed of { op : Op.t }
  | Blocked of { obj : string; inv : Op.invocation; holders : Tid.t list }
  | No_response of { obj : string; inv : Op.invocation }
      (** partial operation with no legal response yet *)
  | Woken of { obj : string; waited : int }
      (** first execution after a block; [waited] in logical ticks *)
  | Validating  (** commit-time validation begins (optimistic objects) *)
  | Validated of { ok : bool }  (** optimistic commit-time validation *)
  | Commit
  | Abort
  | Deadlock_victim of { cycle : Tid.t list }
  | Lock_release of { obj : string }
      (** the transaction's holds at [obj] released (commit or abort) *)
  | Wal_append of { record : string }
  | Wal_force  (** the append that makes a commit durable *)
  | Wal_flush_wait of { upto : int }
      (** a committer parking on the group-commit watermark until
          [flushed_lsn >= upto] *)
  | Durable of { lsn : int }
      (** the watermark passed [lsn]: the commit is acknowledged durable *)
  | Checkpoint of { ops : int }
  | Crash_recover of { replayed : int; losers : int }
  | Recovery_phase of { phase : string; wall_us : int; items : int }
      (** one restart-profiler phase ({!Recovery_profile.phase_name}):
          wall time in microseconds and the phase's item count *)
  | Prepare_append of { shard : int; gtid : int }
      (** a participant shard logged its 2PC yes vote; [gtid] is the
          engine-wide trace id of the distributed transaction *)
  | Prepare_force of { shard : int; lsn : int; gtid : int }
      (** the participant's vote reached disk ([lsn] durable) — from
          here until the decision forces, the prepare is in doubt *)
  | Decision_force of { shard : int; lsn : int; gtid : int; commit : bool }
      (** the coordinator shard's decision record is durable: the
          global commit point of transaction [gtid] *)
  | Completion of { shard : int; gtid : int; commit : bool }
      (** phase 2 applied on a participant (lazy, unforced) *)

type event = {
  ts : int;  (** monotonic logical timestamp, unique per recorder *)
  tid : Tid.t option;  (** [None] for system-wide events (checkpoints, recovery) *)
  kind : kind;
}

type t

val create : unit -> t

val emit : t -> tid:Tid.t -> kind -> unit

(** [emit_system t kind] — an event not attributable to one transaction
    (a checkpoint, a crash recovery); serialized with [tid:null]. *)
val emit_system : t -> kind -> unit

(** Events in emission order. *)
val events : t -> event list

val length : t -> int
val kind_name : kind -> string

(** [of_events es] rebuilds a recorder holding exactly [es] (clock past
    the largest timestamp) — the bridge from {!parse_jsonl} back to the
    trace-consuming analyses ({!to_history}, {!Timeline}). *)
val of_events : event list -> t

(** {1 Exporters} *)

(** One JSON object per line: [{"ts":..,"tid":..,"event":..,...}].
    [extra] appends constant string fields to every line (e.g.
    [("setup", "UIP+NRBC")] when several runs share a file). *)
val pp_jsonl : ?extra:(string * string) list -> Format.formatter -> t -> unit

val to_jsonl : ?extra:(string * string) list -> t -> string
val event_to_json : ?extra:(string * string) list -> event -> string
val pp_event : Format.formatter -> event -> unit

(** {1 Importers} *)

(** [parse_jsonl s] parses a {!to_jsonl} dump back into events, each with
    the extra string fields its line carried (e.g. the [scenario]/[setup]
    labels the CLI appends when several runs share one file).  The exact
    inverse of the exporter on every kind.  A leading {!Artifact} header
    line is validated (it must be a trace-family artifact) and
    skipped. *)
val parse_jsonl :
  string -> ((event * (string * string) list) list, string) result

(** {1 Replay} *)

(** [to_history t] reconstructs the global event history of the traced
    run: each [Executed] operation contributes its invocation/response
    pair, and [Commit]/[Abort] expand into per-object completion events
    for exactly the objects the transaction executed at (mirroring
    [Database]'s own history recording).  The result can be fed to
    {!Tm_core.Atomicity.is_online_dynamic_atomic}. *)
val to_history : t -> History.t
