(** Machine-readable bench baselines.

    [bench/main.exe --json] emits one of these files (named series of
    throughput / latency / recovery-speed scalars, each with a unit and
    a direction); [bin/benchdiff.exe] diffs two of them with a relative
    tolerance.  The schema lives here — in the library, not the
    executables — so the writer, the comparator and the tests share one
    definition.

    A series' [name] is dotted and stable across revisions
    (e.g. ["recovery.serial_replay.records_per_sec"]); renaming one
    breaks comparability and should be treated like renaming a metric. *)

type series = {
  name : string;
  value : float;
  units : string;  (** e.g. ["ops/s"], ["MB/s"], ["s"], ["bytes"] *)
  higher_is_better : bool;
}

type t = {
  rev : string;  (** producing revision (short git hash, or ["dev"]) *)
  context : (string * string) list;  (** e.g. [("quick", "true")] *)
  series : series list;
}

(** The artifact schema tag embedded in the JSON ({!Artifact.bench_schema}). *)
val schema : string

val make : ?context:(string * string) list -> rev:string -> series list -> t
val find : t -> string -> series option

(** {1 JSON} *)

val to_json : t -> Json.t

(** Newline-terminated single-document JSON. *)
val to_string : t -> string

(** Rejects non-[tm-bench] artifacts loudly. *)
val of_json : Json.t -> (t, string) result

val of_string : string -> (t, string) result

(** {1 Comparator} *)

type verdict = {
  series_name : string;
  base : float option;
  current : float option;
  delta_pct : float option;  (** signed, relative to baseline *)
  regression : bool;
  note : string;
}

(** [diff ~tolerance_pct ~baseline current] — one verdict per baseline
    series (a series missing from [current] is a regression) plus an
    informational verdict per series new in [current].  A change is a
    regression when it moves against the series' direction by more than
    [tolerance_pct] percent (default 25).  A zero baseline never
    regresses (no meaningful relative delta). *)
val diff : ?tolerance_pct:float -> baseline:t -> t -> verdict list

val regressions : verdict list -> verdict list

val pp_verdict : Format.formatter -> verdict -> unit
val pp_diff : Format.formatter -> verdict list -> unit
