open Tm_core

type kind =
  | Begin
  | Invoke of { obj : string; inv : Op.invocation }
  | Executed of { op : Op.t }
  | Blocked of { obj : string; inv : Op.invocation; holders : Tid.t list }
  | No_response of { obj : string; inv : Op.invocation }
  | Woken of { obj : string; waited : int }
  | Validating
  | Validated of { ok : bool }
  | Commit
  | Abort
  | Deadlock_victim of { cycle : Tid.t list }
  | Lock_release of { obj : string }
  | Wal_append of { record : string }
  | Wal_force
  | Wal_flush_wait of { upto : int }
  | Durable of { lsn : int }
  | Checkpoint of { ops : int }
  | Crash_recover of { replayed : int; losers : int }
  | Recovery_phase of { phase : string; wall_us : int; items : int }
  | Prepare_append of { shard : int; gtid : int }
  | Prepare_force of { shard : int; lsn : int; gtid : int }
  | Decision_force of { shard : int; lsn : int; gtid : int; commit : bool }
  | Completion of { shard : int; gtid : int; commit : bool }

type event = {
  ts : int;
  tid : Tid.t option;  (* [None] for system-wide events *)
  kind : kind;
}

type t = {
  mutable events_rev : event list;
  mutable clock : int;
  (* The durable commit pipeline emits its flush-wait/ack spans outside
     the engine monitor (stage 2 of the commit runs with no locks held),
     so a threaded run appends concurrently; the recorder serialises its
     own clock.  Single-threaded sims pay one uncontended lock per
     event. *)
  lock : Mutex.t;
}

let create () = { events_rev = []; clock = 0; lock = Mutex.create () }

let emit_opt t tid kind =
  Mutex.lock t.lock;
  let ts = t.clock in
  t.clock <- ts + 1;
  t.events_rev <- { ts; tid; kind } :: t.events_rev;
  Mutex.unlock t.lock

let emit t ~tid kind = emit_opt t (Some tid) kind
let emit_system t kind = emit_opt t None kind

let events t =
  Mutex.lock t.lock;
  let es = t.events_rev in
  Mutex.unlock t.lock;
  List.rev es

let length t = t.clock

let of_events es =
  let clock = List.fold_left (fun c e -> max c (e.ts + 1)) 0 es in
  { events_rev = List.rev es; clock; lock = Mutex.create () }

let kind_name = function
  | Begin -> "begin"
  | Invoke _ -> "invoke"
  | Executed _ -> "executed"
  | Blocked _ -> "blocked"
  | No_response _ -> "no_response"
  | Woken _ -> "woken"
  | Validating -> "validating"
  | Validated _ -> "validated"
  | Commit -> "commit"
  | Abort -> "abort"
  | Deadlock_victim _ -> "deadlock_victim"
  | Lock_release _ -> "lock_release"
  | Wal_append _ -> "wal_append"
  | Wal_force -> "wal_force"
  | Wal_flush_wait _ -> "wal_flush_wait"
  | Durable _ -> "durable"
  | Checkpoint _ -> "checkpoint"
  | Crash_recover _ -> "crash_recover"
  | Recovery_phase _ -> "recovery_phase"
  | Prepare_append _ -> "prepare_append"
  | Prepare_force _ -> "prepare_force"
  | Decision_force _ -> "decision_force"
  | Completion _ -> "completion"

(* ------------------------------------------------------------------ *)
(* JSON-lines export (hand-rolled; the repo deliberately has no JSON
   dependency).                                                        *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec json_of_value = function
  | Value.Unit -> "null"
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Str s -> Fmt.str "\"%s\"" (json_escape s)
  | Value.List l -> Fmt.str "[%s]" (String.concat "," (List.map json_of_value l))

let json_str s = Fmt.str "\"%s\"" (json_escape s)

let json_obj fields =
  Fmt.str "{%s}"
    (String.concat "," (List.map (fun (k, v) -> Fmt.str "\"%s\":%s" k v) fields))

let json_of_inv (inv : Op.invocation) =
  json_obj
    [
      ("name", json_str inv.name);
      ("args", Fmt.str "[%s]" (String.concat "," (List.map json_of_value inv.args)));
    ]

let json_of_tids tids =
  Fmt.str "[%s]" (String.concat "," (List.map (fun t -> string_of_int (Tid.to_int t)) tids))

let kind_fields = function
  | Begin | Commit | Abort | Wal_force | Validating -> []
  | Invoke { obj; inv } -> [ ("obj", json_str obj); ("op", json_of_inv inv) ]
  | Executed { op } ->
      [
        ("obj", json_str op.Op.obj);
        ("op", json_of_inv op.Op.inv);
        ("res", json_of_value op.Op.res);
      ]
  | Blocked { obj; inv; holders } ->
      [ ("obj", json_str obj); ("op", json_of_inv inv); ("holders", json_of_tids holders) ]
  | No_response { obj; inv } -> [ ("obj", json_str obj); ("op", json_of_inv inv) ]
  | Woken { obj; waited } ->
      [ ("obj", json_str obj); ("waited", string_of_int waited) ]
  | Validated { ok } -> [ ("ok", string_of_bool ok) ]
  | Deadlock_victim { cycle } -> [ ("cycle", json_of_tids cycle) ]
  | Lock_release { obj } -> [ ("obj", json_str obj) ]
  | Wal_append { record } -> [ ("record", json_str record) ]
  | Wal_flush_wait { upto } -> [ ("upto", string_of_int upto) ]
  | Durable { lsn } -> [ ("lsn", string_of_int lsn) ]
  | Checkpoint { ops } -> [ ("ops", string_of_int ops) ]
  | Crash_recover { replayed; losers } ->
      [ ("replayed", string_of_int replayed); ("losers", string_of_int losers) ]
  | Recovery_phase { phase; wall_us; items } ->
      [
        ("phase", json_str phase);
        ("wall_us", string_of_int wall_us);
        ("items", string_of_int items);
      ]
  | Prepare_append { shard; gtid } ->
      [ ("shard", string_of_int shard); ("gtid", string_of_int gtid) ]
  | Prepare_force { shard; lsn; gtid } ->
      [
        ("shard", string_of_int shard);
        ("lsn", string_of_int lsn);
        ("gtid", string_of_int gtid);
      ]
  | Decision_force { shard; lsn; gtid; commit } ->
      [
        ("shard", string_of_int shard);
        ("lsn", string_of_int lsn);
        ("gtid", string_of_int gtid);
        ("commit", string_of_bool commit);
      ]
  | Completion { shard; gtid; commit } ->
      [
        ("shard", string_of_int shard);
        ("gtid", string_of_int gtid);
        ("commit", string_of_bool commit);
      ]

let event_to_json ?(extra = []) e =
  json_obj
    (("ts", string_of_int e.ts)
     :: ( "tid",
          match e.tid with
          | Some tid -> string_of_int (Tid.to_int tid)
          | None -> "null" )
     :: ("event", json_str (kind_name e.kind))
     :: kind_fields e.kind
    @ List.map (fun (k, v) -> (k, json_str v)) extra)

let pp_jsonl ?extra ppf t =
  List.iter (fun e -> Fmt.pf ppf "%s@." (event_to_json ?extra e)) (events t)

let to_jsonl ?extra t = Fmt.str "%a" (pp_jsonl ?extra) t

(* ------------------------------------------------------------------ *)
(* JSON-lines import: the exact inverse of the exporter above, so a
   dumped trace can be re-analyzed offline (bin/obsreport.exe).          *)

exception Bad_event of string

let value_of_json j =
  let rec go = function
    | Json.Null -> Value.Unit
    | Json.Bool b -> Value.Bool b
    | Json.Int i -> Value.Int i
    | Json.Str s -> Value.Str s
    | Json.List l -> Value.List (List.map go l)
    | Json.Float _ | Json.Obj _ -> raise (Bad_event "non-trace value")
  in
  go j

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> raise (Bad_event (Fmt.str "missing field %S" name))

let str_field name j =
  match Json.to_str (field name j) with
  | Some s -> s
  | None -> raise (Bad_event (Fmt.str "field %S: expected a string" name))

let int_field name j =
  match Json.to_int (field name j) with
  | Some i -> i
  | None -> raise (Bad_event (Fmt.str "field %S: expected an integer" name))

let inv_of_json j =
  let name = str_field "name" j in
  let args =
    match Json.to_list (field "args" j) with
    | Some l -> List.map value_of_json l
    | None -> raise (Bad_event "field \"args\": expected an array")
  in
  Op.invocation ~args name

let tids_of_json name j =
  match Json.to_list (field name j) with
  | Some l ->
      List.map
        (fun v ->
          match Json.to_int v with
          | Some i -> Tid.of_int i
          | None -> raise (Bad_event (Fmt.str "field %S: expected integers" name)))
        l
  | None -> raise (Bad_event (Fmt.str "field %S: expected an array" name))

let bool_field name j =
  match field name j with
  | Json.Bool b -> b
  | _ -> raise (Bad_event (Fmt.str "field %S: expected a boolean" name))

let op_of_json j =
  { Op.obj = str_field "obj" j; inv = inv_of_json (field "op" j);
    res = value_of_json (field "res" j) }

let kind_of_json name j =
  match name with
  | "begin" -> Begin
  | "invoke" -> Invoke { obj = str_field "obj" j; inv = inv_of_json (field "op" j) }
  | "executed" -> Executed { op = op_of_json j }
  | "blocked" ->
      Blocked
        { obj = str_field "obj" j; inv = inv_of_json (field "op" j);
          holders = tids_of_json "holders" j }
  | "no_response" ->
      No_response { obj = str_field "obj" j; inv = inv_of_json (field "op" j) }
  | "woken" -> Woken { obj = str_field "obj" j; waited = int_field "waited" j }
  | "validating" -> Validating
  | "validated" -> Validated { ok = bool_field "ok" j }
  | "commit" -> Commit
  | "abort" -> Abort
  | "deadlock_victim" -> Deadlock_victim { cycle = tids_of_json "cycle" j }
  | "lock_release" -> Lock_release { obj = str_field "obj" j }
  | "wal_append" -> Wal_append { record = str_field "record" j }
  | "wal_force" -> Wal_force
  | "wal_flush_wait" -> Wal_flush_wait { upto = int_field "upto" j }
  | "durable" -> Durable { lsn = int_field "lsn" j }
  | "checkpoint" -> Checkpoint { ops = int_field "ops" j }
  | "crash_recover" ->
      Crash_recover { replayed = int_field "replayed" j; losers = int_field "losers" j }
  | "recovery_phase" ->
      Recovery_phase
        { phase = str_field "phase" j; wall_us = int_field "wall_us" j;
          items = int_field "items" j }
  | "prepare_append" ->
      Prepare_append { shard = int_field "shard" j; gtid = int_field "gtid" j }
  | "prepare_force" ->
      Prepare_force
        { shard = int_field "shard" j; lsn = int_field "lsn" j;
          gtid = int_field "gtid" j }
  | "decision_force" ->
      Decision_force
        { shard = int_field "shard" j; lsn = int_field "lsn" j;
          gtid = int_field "gtid" j; commit = bool_field "commit" j }
  | "completion" ->
      Completion
        { shard = int_field "shard" j; gtid = int_field "gtid" j;
          commit = bool_field "commit" j }
  | other -> raise (Bad_event (Fmt.str "unknown event kind %S" other))

(* The fields each kind consumes, so whatever else rides on the line
   (e.g. the scenario/setup labels [to_jsonl ~extra] appended) comes
   back out as the event's extra fields. *)
let known_fields = function
  | "invoke" | "no_response" -> [ "obj"; "op" ]
  | "executed" -> [ "obj"; "op"; "res" ]
  | "blocked" -> [ "obj"; "op"; "holders" ]
  | "woken" -> [ "obj"; "waited" ]
  | "validated" -> [ "ok" ]
  | "deadlock_victim" -> [ "cycle" ]
  | "lock_release" -> [ "obj" ]
  | "wal_append" -> [ "record" ]
  | "wal_flush_wait" -> [ "upto" ]
  | "durable" -> [ "lsn" ]
  | "checkpoint" -> [ "ops" ]
  | "crash_recover" -> [ "replayed"; "losers" ]
  | "recovery_phase" -> [ "phase"; "wall_us"; "items" ]
  | "prepare_append" -> [ "shard"; "gtid" ]
  | "prepare_force" -> [ "shard"; "lsn"; "gtid" ]
  | "decision_force" -> [ "shard"; "lsn"; "gtid"; "commit" ]
  | "completion" -> [ "shard"; "gtid"; "commit" ]
  | _ -> []

let event_of_json j =
  let ts = int_field "ts" j in
  let tid =
    match field "tid" j with
    | Json.Null -> None
    | Json.Int i -> Some (Tid.of_int i)
    | _ -> raise (Bad_event "field \"tid\": expected an integer or null")
  in
  let name = str_field "event" j in
  let kind = kind_of_json name j in
  let consumed = "ts" :: "tid" :: "event" :: known_fields name in
  let extra =
    List.filter_map
      (fun (k, v) ->
        if List.mem k consumed then None
        else match v with Json.Str s -> Some (k, s) | _ -> None)
      (Json.entries j)
  in
  ({ ts; tid; kind }, extra)

let parse_jsonl s =
  match Json.parse_lines s with
  | Error e -> Error e
  | Ok docs -> (
      (* A leading artifact header is validated (wrong-family headers —
         e.g. a metrics dump — fail here rather than as a bogus event)
         and then skipped; headerless dumps parse as before. *)
      let docs =
        match docs with
        | first :: rest when Artifact.is_header first -> (
            match
              Result.bind (Artifact.of_json first)
                (Artifact.check_schema ~expect:Artifact.trace_schema)
            with
            | Ok _ -> Ok rest
            | Error e -> Error e)
        | docs -> Ok docs
      in
      match docs with
      | Error e -> Error e
      | Ok docs -> (
          try Ok (List.map event_of_json docs) with Bad_event msg -> Error msg))

(* ------------------------------------------------------------------ *)
(* Replay: a recorded trace as a paper history.                        *)

(* Only [Executed], [Commit] and [Abort] events carry history content;
   the rest is scheduling noise.  The objects a transaction touched are
   reconstructed from its executed operations, mirroring exactly what
   [Database.finish] does when it emits per-object commit/abort
   events. *)
let to_history t =
  let touched : (Tid.t, string list) Hashtbl.t = Hashtbl.create 16 in
  let touch tid obj =
    let objs = Option.value (Hashtbl.find_opt touched tid) ~default:[] in
    if not (List.mem obj objs) then Hashtbl.replace touched tid (obj :: objs)
  in
  let finish h tid per_obj =
    let objs = List.rev (Option.value (Hashtbl.find_opt touched tid) ~default:[]) in
    Hashtbl.remove touched tid;
    List.fold_left (fun h obj -> per_obj tid obj h) h objs
  in
  List.fold_left
    (fun h e ->
      match e.tid, e.kind with
      | Some tid, Executed { op } ->
          touch tid op.Op.obj;
          History.exec tid op h
      | Some tid, Commit -> finish h tid (fun tid obj h -> History.commit_at tid obj h)
      | Some tid, Abort -> finish h tid (fun tid obj h -> History.abort_at tid obj h)
      | _ -> h)
    History.empty (events t)

let pp_event ppf e =
  Fmt.pf ppf "%6d %-4s %-16s" e.ts
    (match e.tid with Some tid -> Tid.to_string tid | None -> "-")
    (kind_name e.kind);
  match e.kind with
  | Executed { op } -> Fmt.pf ppf " %a" Op.pp op
  | Blocked { obj; inv; holders } ->
      Fmt.pf ppf " %s:%a on %a" obj Op.pp_invocation inv
        Fmt.(list ~sep:(any ",") Tid.pp)
        holders
  | _ -> ()
