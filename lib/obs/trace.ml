open Tm_core

type kind =
  | Begin
  | Invoke of { obj : string; inv : Op.invocation }
  | Executed of { op : Op.t }
  | Blocked of { obj : string; inv : Op.invocation; holders : Tid.t list }
  | No_response of { obj : string; inv : Op.invocation }
  | Woken of { obj : string; waited : int }
  | Validated of { ok : bool }
  | Commit
  | Abort
  | Deadlock_victim of { cycle : Tid.t list }
  | Wal_append of { record : string }
  | Wal_force
  | Wal_flush_wait of { upto : int }
  | Checkpoint of { ops : int }
  | Crash_recover of { replayed : int; losers : int }

type event = {
  ts : int;
  tid : Tid.t option;  (* [None] for system-wide events *)
  kind : kind;
}

type t = {
  mutable events_rev : event list;
  mutable clock : int;
}

let create () = { events_rev = []; clock = 0 }

let emit_opt t tid kind =
  let ts = t.clock in
  t.clock <- ts + 1;
  t.events_rev <- { ts; tid; kind } :: t.events_rev

let emit t ~tid kind = emit_opt t (Some tid) kind
let emit_system t kind = emit_opt t None kind

let events t = List.rev t.events_rev
let length t = t.clock

let kind_name = function
  | Begin -> "begin"
  | Invoke _ -> "invoke"
  | Executed _ -> "executed"
  | Blocked _ -> "blocked"
  | No_response _ -> "no_response"
  | Woken _ -> "woken"
  | Validated _ -> "validated"
  | Commit -> "commit"
  | Abort -> "abort"
  | Deadlock_victim _ -> "deadlock_victim"
  | Wal_append _ -> "wal_append"
  | Wal_force -> "wal_force"
  | Wal_flush_wait _ -> "wal_flush_wait"
  | Checkpoint _ -> "checkpoint"
  | Crash_recover _ -> "crash_recover"

(* ------------------------------------------------------------------ *)
(* JSON-lines export (hand-rolled; the repo deliberately has no JSON
   dependency).                                                        *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec json_of_value = function
  | Value.Unit -> "null"
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Str s -> Fmt.str "\"%s\"" (json_escape s)
  | Value.List l -> Fmt.str "[%s]" (String.concat "," (List.map json_of_value l))

let json_str s = Fmt.str "\"%s\"" (json_escape s)

let json_obj fields =
  Fmt.str "{%s}"
    (String.concat "," (List.map (fun (k, v) -> Fmt.str "\"%s\":%s" k v) fields))

let json_of_inv (inv : Op.invocation) =
  json_obj
    [
      ("name", json_str inv.name);
      ("args", Fmt.str "[%s]" (String.concat "," (List.map json_of_value inv.args)));
    ]

let json_of_tids tids =
  Fmt.str "[%s]" (String.concat "," (List.map (fun t -> string_of_int (Tid.to_int t)) tids))

let kind_fields = function
  | Begin | Commit | Abort | Wal_force -> []
  | Invoke { obj; inv } -> [ ("obj", json_str obj); ("op", json_of_inv inv) ]
  | Executed { op } ->
      [
        ("obj", json_str op.Op.obj);
        ("op", json_of_inv op.Op.inv);
        ("res", json_of_value op.Op.res);
      ]
  | Blocked { obj; inv; holders } ->
      [ ("obj", json_str obj); ("op", json_of_inv inv); ("holders", json_of_tids holders) ]
  | No_response { obj; inv } -> [ ("obj", json_str obj); ("op", json_of_inv inv) ]
  | Woken { obj; waited } ->
      [ ("obj", json_str obj); ("waited", string_of_int waited) ]
  | Validated { ok } -> [ ("ok", string_of_bool ok) ]
  | Deadlock_victim { cycle } -> [ ("cycle", json_of_tids cycle) ]
  | Wal_append { record } -> [ ("record", json_str record) ]
  | Wal_flush_wait { upto } -> [ ("upto", string_of_int upto) ]
  | Checkpoint { ops } -> [ ("ops", string_of_int ops) ]
  | Crash_recover { replayed; losers } ->
      [ ("replayed", string_of_int replayed); ("losers", string_of_int losers) ]

let event_to_json ?(extra = []) e =
  json_obj
    (("ts", string_of_int e.ts)
     :: ( "tid",
          match e.tid with
          | Some tid -> string_of_int (Tid.to_int tid)
          | None -> "null" )
     :: ("event", json_str (kind_name e.kind))
     :: kind_fields e.kind
    @ List.map (fun (k, v) -> (k, json_str v)) extra)

let pp_jsonl ?extra ppf t =
  List.iter (fun e -> Fmt.pf ppf "%s@." (event_to_json ?extra e)) (events t)

let to_jsonl ?extra t = Fmt.str "%a" (pp_jsonl ?extra) t

(* ------------------------------------------------------------------ *)
(* Replay: a recorded trace as a paper history.                        *)

(* Only [Executed], [Commit] and [Abort] events carry history content;
   the rest is scheduling noise.  The objects a transaction touched are
   reconstructed from its executed operations, mirroring exactly what
   [Database.finish] does when it emits per-object commit/abort
   events. *)
let to_history t =
  let touched : (Tid.t, string list) Hashtbl.t = Hashtbl.create 16 in
  let touch tid obj =
    let objs = Option.value (Hashtbl.find_opt touched tid) ~default:[] in
    if not (List.mem obj objs) then Hashtbl.replace touched tid (obj :: objs)
  in
  let finish h tid per_obj =
    let objs = List.rev (Option.value (Hashtbl.find_opt touched tid) ~default:[]) in
    Hashtbl.remove touched tid;
    List.fold_left (fun h obj -> per_obj tid obj h) h objs
  in
  List.fold_left
    (fun h e ->
      match e.tid, e.kind with
      | Some tid, Executed { op } ->
          touch tid op.Op.obj;
          History.exec tid op h
      | Some tid, Commit -> finish h tid (fun tid obj h -> History.commit_at tid obj h)
      | Some tid, Abort -> finish h tid (fun tid obj h -> History.abort_at tid obj h)
      | _ -> h)
    History.empty (events t)

let pp_event ppf e =
  Fmt.pf ppf "%6d %-4s %-16s" e.ts
    (match e.tid with Some tid -> Tid.to_string tid | None -> "-")
    (kind_name e.kind);
  match e.kind with
  | Executed { op } -> Fmt.pf ppf " %a" Op.pp op
  | Blocked { obj; inv; holders } ->
      Fmt.pf ppf " %s:%a on %a" obj Op.pp_invocation inv
        Fmt.(list ~sep:(any ",") Tid.pp)
        holders
  | _ -> ()
