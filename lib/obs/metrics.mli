(** Metrics registry: counters, gauges and fixed-bucket histograms keyed
    by [(name, labels)].

    Design goals (see DESIGN.md "Observability"):

    - handles ([Counter.t], [Gauge.t], [Histogram.t]) are resolved once at
      registration and are plain mutable records, so the hot path is a
      single unboxed field update — no hashing, no allocation;
    - registration is idempotent: asking for an existing [(name, labels)]
      pair returns the same handle (a type mismatch raises
      [Invalid_argument]);
    - registries from independent runs can be {!merge}d, optionally adding
      distinguishing labels (e.g. [setup="UIP+NRBC"]), which is how the
      CLI combines a whole comparison matrix into one snapshot. *)

type t

(** Label sets are normalized (sorted by key, deduplicated) so label order
    never distinguishes two series. *)
type labels = (string * string) list

val create : unit -> t

type counter
type gauge
type histogram

(** [counter t name] registers (or finds) a monotonically increasing
    integer counter. *)
val counter : t -> ?labels:labels -> string -> counter

val gauge : t -> ?labels:labels -> string -> gauge

(** [histogram t ~buckets name] — [buckets] are strictly increasing upper
    bounds; an overflow (+Inf) bucket is implicit.  Re-registering with
    different buckets raises [Invalid_argument]. *)
val histogram : t -> ?labels:labels -> ?buckets:float array -> string -> histogram

(** Default latency/size buckets: 1..5000 in roughly geometric steps. *)
val default_buckets : float array

module Counter : sig
  type t = counter

  val incr : ?by:int -> t -> unit
  val get : t -> int
end

module Gauge : sig
  type t = gauge

  val set : t -> float -> unit
  val add : t -> float -> unit
  val get : t -> float
end

module Histogram : sig
  type t = histogram

  val observe : t -> float -> unit
  val observe_int : t -> int -> unit
  val count : t -> int
  val sum : t -> float

  (** [quantile h q] estimates the [q]-quantile by linear interpolation
      inside the bucket containing the rank (the Prometheus
      [histogram_quantile] estimator); [None] when empty.  Estimates in
      the overflow bucket are clamped to the largest finite bound. *)
  val quantile : t -> float -> float option
end

(** {1 Introspection and aggregation} *)

(** [fold t f init] visits every registered series in registration order.
    The visitor receives the name, normalized labels and the metric
    (opaque beyond the accessors above). *)
type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

val fold : t -> ('a -> string -> labels -> metric -> 'a) -> 'a -> 'a

(** [counter_value t name ~labels] — 0 if absent. *)
val counter_value : t -> ?labels:labels -> string -> int

(** [counter_total t name] sums a counter family across all label sets. *)
val counter_total : t -> string -> int

val gauge_value : t -> ?labels:labels -> string -> float option

(** [merge ~extra_labels dst src] adds every series of [src] into [dst]
    under [labels @ extra_labels]: counters and histograms accumulate,
    gauges take the source value.  Raises [Invalid_argument] on a
    name/type or bucket mismatch. *)
val merge : ?extra_labels:labels -> t -> t -> unit

(** {1 Exporters} *)

(** Prometheus text exposition format (0.0.4): [# TYPE] lines, cumulative
    [_bucket{le=...}] series, [_sum] and [_count] per histogram. *)
val pp_prometheus : Format.formatter -> t -> unit

val to_prometheus : t -> string

(** One line per series; histograms as count/mean/p50/p90/p99. *)
val pp_summary : Format.formatter -> t -> unit
