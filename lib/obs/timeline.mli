(** Per-transaction timelines: a recorded trace segmented into phases.

    Every transaction's life [begin..last event] is partitioned into
    contiguous {!segment}s, one per phase the transaction was in:

    - {!Run} — executing operations (including commit bookkeeping);
    - {!Lock_wait} — blocked behind a conflicting lock holder;
    - {!Stall} — a partial operation with no legal response yet
      (blocked on {e state}, not on a lock);
    - {!Validate} — commit-time backward validation (optimistic
      objects);
    - {!Flush_wait} — parked on the group-commit durability watermark;
    - {!Prepare} — a cross-shard commit collecting participant yes
      votes (2PC phase 1);
    - {!Decide} — the in-doubt window: votes durable, decision not yet
      forced;
    - {!Complete} — decision durable, lazy phase-2 application running.

    Durations are logical: the trace clock advances by one per emitted
    event, so a phase's duration measures how much {e global engine
    activity} happened while the transaction sat in it.  By construction
    the segments of a transaction tile its span exactly —
    [sum of durations = end_ts - begin_ts] — which {!pp} re-checks and
    the analytics tests assert. *)

open Tm_core

type phase =
  | Run
  | Lock_wait
  | Stall
  | Validate
  | Flush_wait
  | Prepare
  | Decide
  | Complete

val phase_name : phase -> string
val all_phases : phase list

type segment = {
  phase : phase;
  obj : string option;  (** the object waited at, for [Lock_wait]/[Stall] *)
  start_ts : int;
  stop_ts : int;  (** exclusive; [stop_ts - start_ts] is the duration *)
}

type outcome =
  | Committed
  | Aborted
  | Unfinished  (** still running when the trace ended *)

type txn = {
  tid : Tid.t;
  begin_ts : int;
  end_ts : int;  (** timestamp of the transaction's last event *)
  outcome : outcome;
  segments : segment list;  (** contiguous, oldest first *)
}

val outcome_name : outcome -> string

(** [of_events es] builds one timeline per transaction appearing in
    [es], ordered by begin timestamp.  Events must be in emission order
    (as {!Trace.events} and {!Trace.parse_jsonl} return them). *)
val of_events : Trace.event list -> txn list

val duration : txn -> int

(** Total logical ticks the transaction spent in [phase]. *)
val phase_total : txn -> phase -> int

(** [Lock_wait] (and [Stall]) ticks broken down by object. *)
val wait_by_obj : txn -> (string * int) list

(** The tiling invariant: segment durations sum to {!duration}. *)
val consistent : txn -> bool

(** One line per transaction: outcome, span, per-phase totals. *)
val pp : Format.formatter -> txn list -> unit

(** [pp_bars ~width] renders each transaction as an aligned bar over the
    global clock ([=] run, [x] lock wait, [.] stall, [v] validate,
    [~] flush wait, [p] prepare, [d] decide, [c] complete). *)
val pp_bars : width:int -> Format.formatter -> txn list -> unit
