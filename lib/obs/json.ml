type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the raw string.                     *)

exception Fail of int * string

let parse_sub s pos0 =
  let n = String.length s in
  let pos = ref pos0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when Char.equal c d -> advance ()
    | _ -> fail (Fmt.str "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
      pos := !pos + l;
      v
    end
    else fail (Fmt.str "expected %s" word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'; advance ()
             | '\\' -> Buffer.add_char b '\\'; advance ()
             | '/' -> Buffer.add_char b '/'; advance ()
             | 'n' -> Buffer.add_char b '\n'; advance ()
             | 't' -> Buffer.add_char b '\t'; advance ()
             | 'r' -> Buffer.add_char b '\r'; advance ()
             | 'b' -> Buffer.add_char b '\b'; advance ()
             | 'f' -> Buffer.add_char b '\012'; advance ()
             | 'u' ->
                 advance ();
                 if !pos + 4 > n then fail "truncated \\u escape";
                 let code =
                   (hex_digit s.[!pos] * 4096)
                   + (hex_digit s.[!pos + 1] * 256)
                   + (hex_digit s.[!pos + 2] * 16)
                   + hex_digit s.[!pos + 3]
                 in
                 pos := !pos + 4;
                 (* The exporters only \u-escape control characters; emit
                    the raw byte for the BMP-latin range and '?' beyond
                    (traces never contain the latter). *)
                 if code < 0x100 then Buffer.add_char b (Char.chr code)
                 else Buffer.add_char b '?'
             | c -> fail (Fmt.str "bad escape \\%c" c));
          go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      advance ()
    done;
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
          advance ()
        done
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if String.equal text "" || String.equal text "-" then fail "bad number";
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields (f :: acc)
            | Some '}' -> advance (); Obj (List.rev (f :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
        end
    | Some c -> (
        match c with
        | '-' | '0' .. '9' -> parse_number ()
        | _ -> fail (Fmt.str "unexpected %C" c))
  in
  let v = parse_value () in
  skip_ws ();
  (v, !pos)

let parse s =
  match parse_sub s 0 with
  | v, stop when stop = String.length s -> Ok v
  | _, stop -> Error (Fmt.str "trailing garbage at offset %d" stop)
  | exception Fail (pos, msg) -> Error (Fmt.str "at offset %d: %s" pos msg)

let parse_lines s =
  let lines = String.split_on_char '\n' s in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.equal (String.trim line) "" then go (i + 1) acc rest
        else
          (match parse line with
          | Ok v -> go (i + 1) (v :: acc) rest
          | Error e -> Error (Fmt.str "line %d: %s" i e))
  in
  go 1 [] lines

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Fmt.str "%.0f" v else Fmt.str "%.17g" v

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float v -> Buffer.add_string b (float_repr v)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  write b j;
  Buffer.contents b

let pp ppf j = Fmt.string ppf (to_string j)

(* ------------------------------------------------------------------ *)
(* Accessors.                                                          *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let entries = function Obj fields -> fields | _ -> []
