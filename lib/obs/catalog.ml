(* The metrics catalog: a declarative inventory of every metric family
   the codebase registers.  docs/METRICS.md is generated from this
   (bin/metricsdoc.exe) and the test suite checks live registries
   against it, so code and documentation cannot drift apart. *)

type kind = Counter | Gauge | Histogram

type entry = {
  name : string;
  kind : kind;
  labels : string list;
  help : string;
  section : string;
}

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let e section name kind labels help = { name; kind; labels; help; section }

(* Sections appear in the generated document in first-mention order;
   keep related families adjacent. *)
let all =
  let txn = "Transactions" in
  let obj = "Objects and locking" in
  let sched = "Scheduler" in
  let wal = "Write-ahead log" in
  let storage = "Storage backends" in
  let sharding = "Sharding and cross-shard 2PC" in
  let recovery = "Recovery (logical)" in
  let profiler = "Restart profiler" in
  [
    e txn "tm_txn_begins_total" Counter []
      "Transactions begun.";
    e txn "tm_txn_committed_total" Counter []
      "Transactions committed.";
    e txn "tm_txn_aborted_total" Counter []
      "Transactions aborted (user aborts and deadlock victims alike).";
    e txn "tm_invocations_total" Counter [ "outcome" ]
      "Operation invocations by outcome: `executed`, `blocked` or \
       `no_response`.";
    e txn "tm_txn_retries_total" Counter []
      "Transactions re-submitted after a deadlock abort.";
    e txn "tm_txn_gave_up_total" Counter []
      "Transactions abandoned after exhausting their retry budget.";
    e txn "tm_deadlock_victims_total" Counter []
      "Transactions aborted by the deadlock detector.";
    e txn "tm_futile_wakeups_total" Counter []
      "Blocked transactions woken by a broadcast that still could not \
       run.";
    e obj "tm_lock_conflicts_total" Counter [ "obj"; "requested"; "held" ]
      "Lock conflicts: a requested operation found a non-commuting \
       operation held by another transaction.";
    e obj "tm_lock_wait_ticks" Histogram [ "obj" ]
      "Attempt ticks a transaction spent blocked on an object before \
       being woken.";
    e obj "tm_object_blocked_total" Counter [ "obj"; "op" ]
      "Invocations that blocked because every legal response conflicted.";
    e obj "tm_object_no_response_total" Counter [ "obj"; "op" ]
      "Invocations with no legal response in the current state set.";
    e sched "tm_sched_rounds_total" Counter []
      "Simulated scheduler rounds executed.";
    e sched "tm_sched_active_txns" Gauge []
      "Transactions live in the scheduler at last sample.";
    e sched "tm_sched_active_txns_per_round" Histogram []
      "Live-transaction count observed at each scheduler round.";
    e wal "tm_wal_appends_total" Counter [ "kind" ]
      "Records appended to the log, by record kind (`begin`, \
       `operation`, `commit`, `abort`, `checkpoint`, and the \
       cross-shard 2PC kinds `prepare` and `decision`).";
    e wal "tm_wal_checkpoint_ops" Histogram []
      "Committed operations carried by each checkpoint record.";
    e wal "tm_wal_truncated_records_total" Counter []
      "Records dropped from the prefix by log truncation at a \
       checkpoint.";
    e wal "tm_wal_forces_total" Counter []
      "Log forces (fsync barriers) issued.";
    e wal "tm_wal_group_commits_total" Counter []
      "Group-commit flushes (one force amortised over a batch).";
    e wal "tm_wal_group_commit_batch" Histogram []
      "Transactions riding each group-commit flush.";
    e wal "tm_wal_bytes_total" Counter []
      "Encoded frame bytes written to storage.";
    e wal "tm_wal_format_version" Gauge []
      "On-disk WAL format version this binary writes (reads accept all \
       supported versions; see docs/WAL_FORMAT.md).";
    e storage "tm_storage_retries_total" Counter []
      "Storage writes retried after a transient fault.";
    e storage "tm_storage_faults_total" Counter [ "backend"; "kind" ]
      "Faults injected by the faulty storage wrapper, by kind.";
    e sharding "tm_2pc_prepares_total" Counter []
      "Participant yes votes logged (one `Prepare` record per \
       participant shard of each cross-shard transaction).";
    e sharding "tm_2pc_aborts_total" Counter [ "phase" ]
      "Cross-shard transactions rolled back by the 2PC machinery: \
       `phase=\"prepare\"` counts live transactions whose vote failed \
       validation, `phase=\"recovery\"` counts per-participant \
       presumed-abort resolutions of in-doubt prepares at restart.";
    e sharding "tm_2pc_resolved_total" Counter [ "evidence"; "outcome" ]
      "In-doubt prepares resolved by recovery, by the evidence that \
       decided each (`decision` = the coordinator's Decision frame \
       survived, `phase2` = a participant's phase-2 outcome record \
       survived, `presumed` = no witness, the presumed-abort default) \
       and the outcome appended (`commit` or `abort`).";
    e sharding "tm_2pc_in_flight" Gauge []
      "Cross-shard transactions currently between first prepare and \
       completion (checkpoints are deferred while > 0).";
    e sharding "tm_shard_cross_txn_total" Counter []
      "Transactions whose commit spanned more than one shard (took the \
       two-phase path instead of the single-shard fast path).";
    e sharding "tm_shard_flushed_lsn" Gauge [ "shard" ]
      "Durable (flushed) LSN watermark of each shard's WAL at the last \
       engine-observed flush.";
    e recovery "tm_recovery_committed_ops_total" Counter [ "obj" ]
      "Operations made durable at commit, per object.";
    e recovery "tm_recovery_undone_ops_total" Counter [ "obj"; "mode" ]
      "Operations undone at abort, per object and undo mode \
       (`inverse` or `replay`).";
    e recovery "tm_recovery_discarded_ops_total" Counter [ "obj" ]
      "Loser-transaction operations discarded during restart, per \
       object.";
    e recovery "tm_recovery_replayed_ops_total" Counter []
      "Committed operations replayed during restart.";
    e recovery "tm_recovery_loser_txns_total" Counter []
      "In-flight (loser) transactions resolved during restart.";
    e profiler "tm_recovery_phase_seconds" Gauge [ "phase" ]
      "Wall seconds the last restart spent in each profiler phase \
       (phases tile: they do not overlap).";
    e profiler "tm_recovery_phase_calls_total" Counter [ "phase" ]
      "Times each profiler phase was entered during the last restart.";
    e profiler "tm_recovery_wall_seconds" Gauge []
      "End-to-end wall seconds of the last restart.";
    e profiler "tm_recovery_bytes_scanned_total" Counter []
      "Log-image bytes read back from storage during restart.";
    e profiler "tm_recovery_torn_bytes_total" Counter []
      "Trailing bytes discarded as a torn tail during restart.";
    e profiler "tm_recovery_frames_decoded_total" Counter []
      "Log frames decoded (and checksum-verified) during restart.";
    e profiler "tm_recovery_records_scanned_total" Counter []
      "Log records fed to the redo scan during restart.";
    e profiler "tm_recovery_checkpoints_seen_total" Counter []
      "Checkpoint records encountered by the redo scan.";
    e profiler "tm_recovery_checkpoint_seed_ops_total" Counter []
      "Committed operations seeded from the newest checkpoint.";
    e profiler "tm_recovery_object_replayed_ops_total" Counter [ "obj" ]
      "Committed operations replayed into each object during restart.";
    e profiler "tm_recovery_workers" Gauge []
      "Replay workers used by the last partitioned restart (1 = \
       serial semantics).";
    e profiler "tm_recovery_partition_seconds" Gauge [ "partition" ]
      "Wall seconds each replay partition spent restoring its objects \
       during the last restart.";
    e profiler "tm_recovery_partition_replayed_ops_total" Counter
      [ "partition" ]
      "Committed operations replayed by each partition during restart.";
  ]

let find name = List.find_opt (fun entry -> entry.name = name) all

(* ------------------------------------------------------------------ *)
(* Registry check                                                      *)

let metric_kind = function
  | Metrics.Counter _ -> Counter
  | Metrics.Gauge _ -> Gauge
  | Metrics.Histogram _ -> Histogram

let check reg =
  let problems =
    Metrics.fold reg
      (fun acc name labels metric ->
        match find name with
        | None -> Fmt.str "%s: registered but not in the catalog" name :: acc
        | Some entry ->
            let acc =
              if metric_kind metric <> entry.kind then
                Fmt.str "%s: registered as a %s, catalogued as a %s" name
                  (kind_name (metric_kind metric))
                  (kind_name entry.kind)
                :: acc
              else acc
            in
            (* Extra keys are fine (Metrics.merge adds e.g. [setup]);
               missing a catalogued key means the registration site and
               the catalog disagree. *)
            let keys = List.map fst labels in
            List.fold_left
              (fun acc k ->
                if List.mem k keys then acc
                else
                  Fmt.str "%s: catalogued label %S missing (has {%s})" name
                    k
                    (String.concat ", " keys)
                  :: acc)
              acc entry.labels)
      []
  in
  match problems with
  | [] -> Ok ()
  | ps -> Error (List.sort_uniq compare ps)

(* ------------------------------------------------------------------ *)
(* Markdown generation                                                 *)

let to_markdown () =
  let buf = Buffer.create 4096 in
  let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  pf "# Metrics catalog\n\n";
  pf
    "Generated by `bin/metricsdoc.exe` from `lib/obs/catalog.ml` — do \
     not edit by hand.\nThe test suite checks every live registry \
     against this catalog, so the table\nbelow is exhaustive: a metric \
     the code can register appears here.\n\nCounters are monotonic \
     integers and end in `_total`; gauges are point-in-time\nfloats; \
     histograms export cumulative `_bucket{le=...}` series plus `_sum` \
     and\n`_count`.  Merged snapshots (`Metrics.merge`) may add \
     distinguishing labels\nsuch as `scenario` or `setup` on top of the \
     keys listed.\n";
  let sections =
    List.fold_left
      (fun secs entry ->
        if List.mem entry.section secs then secs else secs @ [ entry.section ])
      [] all
  in
  List.iter
    (fun section ->
      pf "\n## %s\n\n" section;
      pf "| Metric | Kind | Labels | Meaning |\n";
      pf "|---|---|---|---|\n";
      List.iter
        (fun entry ->
          if entry.section = section then
            pf "| `%s` | %s | %s | %s |\n" entry.name (kind_name entry.kind)
              (match entry.labels with
              | [] -> "—"
              | ls ->
                  String.concat ", "
                    (List.map (fun l -> Fmt.str "`%s`" l) ls))
              (String.concat " "
                 (String.split_on_char '\n' entry.help
                 |> List.concat_map (String.split_on_char ' ')
                 |> List.filter (fun w -> w <> ""))))
        all)
    sections;
  Buffer.contents buf
