(* shardmon: live per-shard health monitor.

   Attaches to a running sharded run through the metrics file the
   producer periodically rewrites (stresstest --shards --monitor FILE),
   or reads any Prometheus snapshot once.  Each poll parses the whole
   snapshot, feeds it to a Series ring-buffer sampler, and redraws a
   top-style text dashboard: a per-shard table (flushed LSN and lag
   behind the leader, committed transactions and commit rate, lock
   conflicts, WAL forces), the 2PC counters, commit-rate sparklines
   over the sampling window, and threshold alerts (in-doubt prepares
   resolved at recovery, presumed aborts, storage faults, given-up
   transactions).

   --snapshot exports the accumulated rings as a tm-series JSONL
   artifact on exit, so a monitoring session can be diffed offline. *)

module Artifact = Tm_obs.Artifact
module Heatmap = Tm_obs.Heatmap
module Series = Tm_obs.Series

type sample = string * (string * string) list * float

let value_of (samples : sample list) name labels =
  List.find_map
    (fun (n, ls, v) ->
      if String.equal n name && ls = labels then Some v else None)
    samples

let sum_of (samples : sample list) ?(where = fun _ -> true) name =
  List.fold_left
    (fun acc (n, ls, v) -> if String.equal n name && where ls then acc +. v else acc)
    0. samples

let shard_ids (samples : sample list) =
  List.sort_uniq compare
    (List.filter_map
       (fun ((_, ls, _) : sample) ->
         match List.assoc_opt "shard" ls with
         | Some s -> int_of_string_opt s
         | None -> None)
       samples)

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    string_of_int (int_of_float v)
  else Fmt.str "%.1f" v

(* One poll's parsed snapshot rendered against the sampler's window. *)
let render ~file ~tick ~series (samples : sample list) =
  let shards = shard_ids samples in
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  Fmt.pr "shardmon — %s @@ %02d:%02d:%02d (sample %d, %d shards)@.@." file
    tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec tick (List.length shards);
  let flushed s =
    Option.value ~default:0.
      (value_of samples "tm_shard_flushed_lsn" [ ("shard", string_of_int s) ])
  in
  let lead = List.fold_left (fun m s -> Float.max m (flushed s)) 0. shards in
  Fmt.pr "%5s  %11s  %5s  %9s  %8s  %9s  %6s@." "shard" "flushed-lsn" "lag"
    "committed" "commit/s" "conflicts" "forces";
  List.iter
    (fun s ->
      let lbl = [ ("shard", string_of_int s) ] in
      let committed =
        Option.value ~default:0. (value_of samples "tm_txn_committed_total" lbl)
      in
      let conflicts =
        sum_of samples "tm_lock_conflicts_total" ~where:(fun ls ->
            List.assoc_opt "shard" ls = Some (string_of_int s))
      in
      let forces =
        Option.value ~default:0. (value_of samples "tm_wal_forces_total" lbl)
      in
      let rate =
        match Series.rate series (Series.key "tm_txn_committed_total" lbl) with
        | Some r -> Fmt.str "%.1f" r
        | None -> "-"
      in
      Fmt.pr "%5d  %11s  %5s  %9s  %8s  %9s  %6s@." s
        (fnum (flushed s))
        (fnum (lead -. flushed s))
        (fnum committed) rate (fnum conflicts) (fnum forces))
    shards;
  let cross = sum_of samples "tm_shard_cross_txn_total" in
  let in_flight = sum_of samples "tm_2pc_in_flight" in
  let prepares = sum_of samples "tm_2pc_prepares_total" in
  let resolved = sum_of samples "tm_2pc_resolved_total" in
  Fmt.pr "@.2PC: %s cross-shard commits, %s in flight, %s prepares, %s \
          in-doubt resolved@."
    (fnum cross) (fnum in_flight) (fnum prepares) (fnum resolved);
  (* Sparklines only say something once the window has two points. *)
  List.iter
    (fun s ->
      let k = Series.key "tm_txn_committed_total" [ ("shard", string_of_int s) ] in
      if Series.length series k >= 2 then
        Fmt.pr "commits s%-2d %s@." s (Series.sparkline series k))
    shards;
  (* Threshold alerts. *)
  let alerts = ref [] in
  let alert fmt = Fmt.kstr (fun s -> alerts := s :: !alerts) fmt in
  if resolved > 0. then
    alert "recovery resolved %s in-doubt prepare(s) (threshold 0)"
      (fnum resolved);
  let presumed =
    sum_of samples "tm_2pc_resolved_total" ~where:(fun ls ->
        List.assoc_opt "evidence" ls = Some "presumed")
  in
  if presumed > 0. then
    alert "%s presumed-abort resolution(s): prepared work rolled back with \
           no surviving evidence"
      (fnum presumed);
  let gave_up = sum_of samples "tm_txn_gave_up_total" in
  if gave_up > 0. then
    alert "%s transaction(s) gave up their retry budget" (fnum gave_up);
  let faults = sum_of samples "tm_storage_faults_total" in
  if faults > 0. then alert "%s storage fault(s) injected/absorbed" (fnum faults);
  (match List.rev !alerts with
  | [] -> Fmt.pr "@.alerts: none@."
  | l ->
      Fmt.pr "@.alerts:@.";
      List.iter (fun a -> Fmt.pr "  !! %s@." a) l)

let read_snapshot file =
  match Cli_util.read_file file with
  | exception Sys_error e -> Error e
  | text -> (
      (* The producer writes whole snapshots atomically; a validated
         tm-metrics header proves we are not scraping some other file. *)
      match Artifact.of_prom text with
      | Error e -> Error e
      | Ok (Some meta) -> (
          match Artifact.check_schema ~expect:Artifact.metrics_schema meta with
          | Error e -> Error e
          | Ok _ -> (
              match Heatmap.parse_prometheus text with
              | Error e -> Error e
              | Ok samples -> Ok samples))
      | Ok None -> (
          match Heatmap.parse_prometheus text with
          | Error e -> Error e
          | Ok samples -> Ok samples))

let main file interval iterations once no_clear snapshot_out capacity =
  let iterations = if once then 1 else iterations in
  let series = Series.create ~capacity () in
  let tick = ref 0 in
  let errors = ref 0 in
  let continue () = iterations <= 0 || !tick < iterations in
  while continue () do
    if !tick > 0 then Unix.sleepf interval;
    incr tick;
    (match read_snapshot file with
    | Error e ->
        incr errors;
        (* A missing/half-rotated file is routine while attaching; give
           the producer a few polls before giving up. *)
        if !errors > 5 || once then begin
          Fmt.epr "shardmon: %s: %s@." file e;
          exit 1
        end
        else Fmt.epr "shardmon: waiting for %s (%s)@." file e
    | Ok samples ->
        errors := 0;
        Series.sample series ~at:(Unix.gettimeofday ()) samples;
        if not no_clear then Fmt.pr "\027[2J\027[H%!";
        render ~file ~tick:!tick ~series samples)
  done;
  Option.iter
    (fun out ->
      Cli_util.with_out out (fun oc ->
          output_string oc
            (Artifact.header_line
               (Artifact.make ~schema:Artifact.series_schema
                  ~config:[ ("source", file) ] ()));
          output_string oc (Series.to_jsonl series));
      Fmt.pr "wrote series snapshot to %s@." out)
    snapshot_out

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:
          "Prometheus snapshot to watch — the file a producer rewrites \
           periodically (stresstest --shards --monitor $(docv)).")

let interval_arg =
  Arg.(
    value & opt float 1.0
    & info [ "interval" ] ~docv:"SECONDS" ~doc:"Delay between polls.")

let iterations_arg =
  Arg.(
    value & opt int 0
    & info [ "iterations" ] ~docv:"N"
        ~doc:"Stop after $(docv) polls (0: run until interrupted).")

let once_arg =
  Arg.(
    value & flag
    & info [ "once" ] ~doc:"Read the file once, render, and exit (CI mode).")

let no_clear_arg =
  Arg.(
    value & flag
    & info [ "no-clear" ]
        ~doc:"Do not clear the screen between redraws (append instead).")

let snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ] ~docv:"OUT"
        ~doc:
          "On exit, export the accumulated rings as a tm-series JSONL \
           artifact to $(docv) — one [(key, time, value)] point per line.")

let capacity_arg =
  Arg.(
    value & opt int 120
    & info [ "capacity" ] ~docv:"N" ~doc:"Ring size per series key.")

let cmd =
  let doc = "live per-shard health dashboard over a rewritten metrics file" in
  Cmd.v
    (Cmd.info "shardmon" ~doc)
    Term.(
      const main $ file_arg $ interval_arg $ iterations_arg $ once_arg
      $ no_clear_arg $ snapshot_arg $ capacity_arg)

let () = exit (Cmd.eval cmd)
