(* crashtest: crash-injection torture of WAL recovery.

   For each scenario x setup, a small concurrent workload is driven
   through a Durable_database with a fuzzy checkpoint taken mid-run;
   then Crash.torture crashes at every append point of the resulting
   log and checks the three recovery invariants (replay legality /
   dynamic atomicity, prefix stability, idempotence through a
   post-recovery checkpoint + truncation).  Exits non-zero on any
   violation, so CI can gate on it.

   --fault switches to storage-level torture of the on-disk format:
   byte-granularity crash cuts over the encoded log, a bit-flip
   corruption sweep (every damage must be detected as interior
   corruption or contained as a torn tail), and a fault-injected run —
   the same workload against storage dealing seeded torn writes and
   transient errors — which must commit identical state to the
   fault-free run, with the absorbed faults visible in
   tm_storage_retries_total. *)

module Experiment = Tm_sim.Experiment
module Scheduler = Tm_sim.Scheduler
module Crash = Tm_engine.Crash
module Recovery = Tm_engine.Recovery
module Wal = Tm_engine.Wal
module Wal_inspect = Tm_engine.Wal_inspect
module Storage = Tm_engine.Storage
module Disk_wal = Tm_engine.Disk_wal
module Atomic_object = Tm_engine.Atomic_object
module Sharded_database = Tm_engine.Sharded_database
module Two_phase = Tm_engine.Two_phase
module Metrics = Tm_obs.Metrics
module Artifact = Tm_obs.Artifact
open Tm_core

(* Workloads stay tiny so most cuts fall under the exponential
   dynamic-atomicity checker's transaction gate; the log still contains
   begins, operations, commits, aborts and a mid-run checkpoint. *)
let scenarios () =
  Experiment.all_scenarios @ [ Experiment.transfer_mixed_recovery () ]

let setups =
  [
    Experiment.setup Recovery.UIP Experiment.Semantic;
    Experiment.setup Recovery.DU Experiment.Semantic;
    Experiment.setup ~occ:true Recovery.DU Experiment.Semantic;
    Experiment.setup Recovery.UIP Experiment.Read_write;
  ]

(* Collect report lines so --report can dump the full run even when the
   console only shows failures. *)
let lines : string list ref = ref []

(* Rows of the driving (fault-free) workload runs, for --trace/--metrics
   dumps in the shared artifact formats. *)
let rows : Experiment.row list ref = ref []

(* The last driving run's records, for --keep-log: encoded on exit (in
   the format version --keep-log-version selects) into a real
   crashtest-produced on-disk WAL that walinspect can be pointed at —
   and that, encoded as v1, becomes a checked-in migration fixture. *)
let last_log : Wal.record list option ref = ref None

(* The sharded in-doubt harvest's mixed-shard image (per-shard encoded
   frames concatenated), for --keep-log in --shards mode: a real crash
   state with orphaned prepares for walinspect --two-phase to chew on. *)
let last_image : string option ref = ref None

let say ~verbose fmt =
  Fmt.kstr
    (fun s ->
      lines := s :: !lines;
      if verbose then Fmt.pr "%s@." s)
    fmt

(* ------------------------------------------------------------------ *)
(* Default mode: record-granularity torture.                           *)

let record_mode ~verbose ~record_trace ~workers cfg checkpoint_every scenarios =
  let failures = ref 0 in
  let total_cuts = ref 0 in
  let total_checked = ref 0 in
  List.iter
    (fun (scenario : Experiment.scenario) ->
      List.iter
        (fun setup ->
          let row, wal =
            Experiment.run_durable ~record_trace ~checkpoint_every scenario setup cfg
          in
          rows := row :: !rows;
          last_log := Some (Wal.records wal);
          let rebuild () = scenario.Experiment.build setup in
          let report = Crash.torture ~workers ~rebuild wal in
          total_cuts := !total_cuts + report.Crash.cuts;
          total_checked := !total_checked + report.Crash.atomicity_checked;
          if not (Crash.ok report) then incr failures;
          say ~verbose:(verbose || not (Crash.ok report)) "%-24s %-10s %a"
            scenario.Experiment.name (Experiment.label setup) Crash.pp_report report)
        setups)
    scenarios;
  say ~verbose:true
    "crashtest: %d scenario x setup combinations, %d crash points (%d \
     atomicity-checked), %d with violations"
    (List.length scenarios * List.length setups)
    !total_cuts !total_checked !failures;
  !failures

(* ------------------------------------------------------------------ *)
(* --fault mode: byte-granularity cuts, corruption sweeps, and a
   fault-injected storage run checked against the fault-free one.       *)

let fault_mode ~verbose ~record_trace ~workers cfg checkpoint_every seed
    group_commit scenarios =
  let failures = ref 0 in
  let total_cuts = ref 0 in
  let total_trunc_cuts = ref 0 in
  let total_upgrade_cuts = ref 0 in
  let total_batch_cuts = ref 0 in
  let total_flips = ref 0 in
  let total_retries = ref 0 in
  let total_faults = ref 0 in
  List.iter
    (fun (scenario : Experiment.scenario) ->
      List.iter
        (fun setup ->
          let rebuild () = scenario.Experiment.build setup in
          let combo = Fmt.str "%-24s %-10s" scenario.Experiment.name (Experiment.label setup) in

          (* 1. Drive the workload onto real (in-memory-backed) storage
             through the framing codec, fault-free, batching durability
             every [group_commit] commits. *)
          let clean_store = Storage.memory () in
          let clean_dw = Disk_wal.create clean_store in
          let row, wal =
            Experiment.run_durable ~record_trace ~wal:(Disk_wal.wal clean_dw)
              ~checkpoint_every ~group_commit scenario setup cfg
          in
          rows := row :: !rows;
          last_log := Some (Wal.records wal);

          (* 2. Byte-granularity crash cuts over the encoded log. *)
          let report = Crash.torture_bytes ~workers ~rebuild wal in
          total_cuts := !total_cuts + report.Crash.cuts;
          if not (Crash.ok report) then incr failures;
          say ~verbose:(verbose || not (Crash.ok report)) "%s bytes:  %a" combo
            Crash.pp_report report;

          (* 2a. Truncation torture: crash at every byte offset of the
             crash-atomic log compaction (journal + install) and demand
             the recovered state never changes. *)
          let trunc = Crash.torture_truncation ~workers ~rebuild wal in
          total_trunc_cuts := !total_trunc_cuts + trunc.Crash.cuts;
          if not (Crash.ok trunc) then incr failures;
          say ~verbose:(verbose || not (Crash.ok trunc)) "%s trunc:  %a" combo
            Crash.pp_report trunc;

          (* 2a'. Upgrade torture: the same compaction crash sweep, but
             starting from the log encoded in the previous on-disk format
             (v1) and rewriting it in the current one — every cut must
             leave a readable mixed-version log that recovers to the same
             state, with zero acknowledged commits lost. *)
          let upg = Crash.torture_upgrade ~workers ~rebuild wal in
          total_upgrade_cuts := !total_upgrade_cuts + upg.Crash.cuts;
          if not (Crash.ok upg) then incr failures;
          say ~verbose:(verbose || not (Crash.ok upg)) "%s upgrade: %a" combo
            Crash.pp_report upg;

          (* 2b. Batch-prefix torture: cuts inside a group-commit batch
             must recover a prefix of the batch's commit order and never
             lose a commit acknowledged at a flush frontier. *)
          let batch = Crash.torture_batched ~group_every:group_commit wal in
          total_batch_cuts := !total_batch_cuts + batch.Crash.byte_cuts;
          if not (Crash.batch_ok batch) then incr failures;
          say ~verbose:(verbose || not (Crash.batch_ok batch)) "%s batch:  %a" combo
            Crash.pp_batch_report batch;

          (* 3. Bit-flip corruption sweep: detected or contained, never
             silent. *)
          let sweep = Crash.corruption_sweep wal in
          total_flips := !total_flips + sweep.Crash.flips;
          if not (Crash.sweep_ok sweep) then incr failures;
          say ~verbose:(verbose || not (Crash.sweep_ok sweep)) "%s flips:  %a" combo
            Crash.pp_sweep_report sweep;

          (* 4. The same workload against storage dealing seeded torn
             writes and transient errors: the retry loop must absorb
             them and commit the identical log. *)
          let inner = Storage.memory () in
          let faulty = Storage.faulty ~seed Storage.write_faults inner in
          let faulty_dw = Disk_wal.create faulty in
          let frow, fwal =
            Experiment.run_durable ~wal:(Disk_wal.wal faulty_dw) ~checkpoint_every
              ~group_commit scenario setup cfg
          in
          let retries =
            Metrics.counter_value frow.Experiment.metrics "tm_storage_retries_total"
          in
          total_retries := !total_retries + retries;
          total_faults := !total_faults + Storage.fault_count faulty;
          let identical =
            List.equal Wal.equal_record (Wal.records wal) (Wal.records fwal)
          in
          if not identical then begin
            incr failures;
            say ~verbose:true "%s faults: DIVERGED from fault-free run" combo
          end;
          (* The bytes that actually reached the (clean) inner store must
             reload to the same log — torn prefixes were overwritten. *)
          (match Disk_wal.load inner with
          | Error c ->
              incr failures;
              say ~verbose:true "%s faults: persisted log CORRUPT: %a" combo
                Wal.Codec.pp_corruption c
          | Ok reloaded ->
              if
                not
                  (List.equal Wal.equal_record (Wal.records wal)
                     (Wal.records (Disk_wal.wal reloaded)))
              then begin
                incr failures;
                say ~verbose:true "%s faults: reloaded log DIVERGED" combo
              end);
          say ~verbose:(verbose && identical)
            "%s faults: %d injected, %d retries, committed state identical" combo
            (Storage.fault_count faulty) retries)
        setups)
    scenarios;
  (* The sweep is vacuous if the fault dice never fired: fail loudly so a
     mis-seeded CI run cannot pass by doing nothing. *)
  if !total_retries = 0 then begin
    incr failures;
    say ~verbose:true "crashtest --fault: NO transient faults were injected/retried"
  end;
  say ~verbose:true
    "crashtest --fault: %d combinations, %d byte cuts (+%d truncation cuts, +%d \
     upgrade cuts, +%d batch-prefix cuts, group commit %d), %d bit flips, %d \
     faults injected, %d retries absorbed, %d failures"
    (List.length scenarios * List.length setups)
    !total_cuts !total_trunc_cuts !total_upgrade_cuts !total_batch_cuts
    group_commit !total_flips !total_faults !total_retries !failures;
  !failures

(* ------------------------------------------------------------------ *)
(* --shards mode: multi-WAL torture of the sharded engine's 2PC.       *)

(* Two bank accounts per shard, mixed recovery methods (UIP objects
   validate the undo path, DU objects the deferred-update path) — the
   router spreads them by name hash, so "two per shard" is statistical,
   but every shard ends up owning some. *)
let sharded_rebuild ~shards () =
  let funded = Tm_adt.Bank_account.spec_with_initial 100_000 in
  List.init (2 * shards) (fun i ->
      let spec = Spec.rename funded (Fmt.str "BA%d" i) in
      if i mod 2 = 0 then
        Atomic_object.create ~spec ~conflict:Tm_adt.Bank_account.nrbc_conflict
          ~recovery:Recovery.UIP ()
      else
        Atomic_object.create ~spec ~conflict:Tm_adt.Bank_account.nfc_conflict
          ~recovery:Recovery.DU ())

(* A deterministic sequential workload: deposits/withdrawals on one
   account, escalating to a second account on a different home shard
   [cross_pct]% of the time (the 2PC path), an explicit abort every
   fifth transaction, and a global checkpoint attempt every
   [checkpoint_every] commits. *)
let drive_sharded ~txns ~cross_pct ~checkpoint_every ~seed db =
  let rng = Random.State.make [| seed; 0x5ad |] in
  let names =
    Array.of_list (List.map Atomic_object.name (Sharded_database.objects db))
  in
  let pick () = names.(Random.State.int rng (Array.length names)) in
  let commits = ref 0 in
  for i = 0 to txns - 1 do
    let tid = Sharded_database.begin_txn db in
    let touch o amount =
      let inv =
        if Random.State.int rng 4 = 0 then
          Op.invocation ~args:[ Value.int amount ] "withdraw"
        else Op.invocation ~args:[ Value.int amount ] "deposit"
      in
      ignore (Sharded_database.invoke db tid ~obj:o inv)
    in
    let o1 = pick () in
    let amount = 1 + (i mod 7) in
    touch o1 amount;
    let cross =
      Sharded_database.shard_count db > 1 && Random.State.int rng 100 < cross_pct
    in
    if cross then begin
      let s1 = Sharded_database.shard_of_object db o1 in
      let rec other tries =
        let o = pick () in
        if Sharded_database.shard_of_object db o <> s1 || tries > 8 * Array.length names
        then o
        else other (tries + 1)
      in
      touch (other 0) (amount + 1)
    end;
    if i mod 5 = 4 then Sharded_database.abort db tid
    else
      match Sharded_database.try_commit db tid with
      | Ok () ->
          incr commits;
          if checkpoint_every > 0 && !commits mod checkpoint_every = 0 then
            ignore (Sharded_database.checkpoint db)
      | Error _ -> ()
  done

let sharded_committed db =
  List.map
    (fun o -> (Atomic_object.name o, Atomic_object.committed_ops o))
    (Sharded_database.objects db)

let sharded_mode ~verbose ~workers ~shards ~txns ~seed ~checkpoint_every ~fault
    ~audit_file () =
  let failures = ref 0 in
  let rebuild = sharded_rebuild ~shards in
  (* Torture at two workload mixes: mostly-local (the fast path with
     occasional 2PC) and all-cross (every commit is a 2PC). *)
  List.iter
    (fun cross_pct ->
      let drive =
        drive_sharded ~txns ~cross_pct ~checkpoint_every ~seed
      in
      let report = Crash.torture_sharded ~workers ~shards ~rebuild ~drive () in
      if not (Crash.sharded_ok report) then incr failures;
      say ~verbose:(verbose || not (Crash.sharded_ok report))
        "sharded x%d cross=%d%%: %a" shards cross_pct Crash.pp_sharded_report
        report)
    [ 30; 100 ];
  (* Disk-backed leg: the same workload onto per-shard Disk_wals (every
     frame stamped with its shard id), reloaded and recovered. *)
  let run_disk ~wrap =
    let inners = Array.init shards (fun _ -> Storage.memory ()) in
    let dws =
      Array.init shards (fun i -> Disk_wal.create ~shard:i (wrap inners.(i)))
    in
    let wals = Array.map Disk_wal.wal dws in
    let db = Sharded_database.create ~wals (rebuild ()) in
    drive_sharded ~txns ~cross_pct:50 ~checkpoint_every ~seed db;
    Sharded_database.flush db;
    (inners, wals, db)
  in
  let clean_stores, clean_wals, clean_db = run_disk ~wrap:Fun.id in
  (* Every persisted frame carries its shard's id. *)
  Array.iteri
    (fun i store ->
      let s = Wal_inspect.inspect (Storage.read_all store) in
      match s.Wal_inspect.by_shard with
      | [ (id, _) ] when id = i -> ()
      | got ->
          incr failures;
          say ~verbose:true "sharded x%d: shard %d frames stamped %a, want [(%d,_)]"
            shards i
            Fmt.(list ~sep:comma (pair ~sep:(any ":") int int))
            got i)
    clean_stores;
  (* Reload + recover from the persisted bytes: identical state. *)
  (match
     Array.map
       (fun st ->
         match Disk_wal.load st with
         | Ok dw -> Disk_wal.wal dw
         | Error c -> Fmt.failwith "reload: %a" Wal.Codec.pp_corruption c)
       clean_stores
   with
  | exception Failure msg ->
      incr failures;
      say ~verbose:true "sharded x%d: persisted log CORRUPT: %s" shards msg
  | reloaded -> (
      match Sharded_database.recover ~workers ~wals:reloaded ~rebuild () with
      | Error e ->
          incr failures;
          say ~verbose:true "sharded x%d: recovery from disk failed: %a" shards
            Recovery.pp_error e
      | Ok (rdb, _) ->
          let same =
            List.for_all2
              (fun (n1, o1) (n2, o2) ->
                String.equal n1 n2 && List.equal Op.equal o1 o2)
              (sharded_committed clean_db) (sharded_committed rdb)
          in
          if not same then begin
            incr failures;
            say ~verbose:true
              "sharded x%d: state recovered from disk DIVERGED from the live \
               engine"
              shards
          end));
  (* Fault leg: the identical workload over storage dealing seeded torn
     writes and transient errors must persist the identical per-shard
     logs. *)
  if fault then begin
    let faulties = ref [] in
    let _, fwals, _ =
      run_disk ~wrap:(fun inner ->
          let f = Storage.faulty ~seed Storage.write_faults inner in
          faulties := f :: !faulties;
          f)
    in
    let injected =
      List.fold_left (fun n f -> n + Storage.fault_count f) 0 !faulties
    in
    let identical =
      Array.for_all2
        (fun cw fw -> List.equal Wal.equal_record (Wal.records cw) (Wal.records fw))
        clean_wals fwals
    in
    if not identical then begin
      incr failures;
      say ~verbose:true "sharded x%d faults: DIVERGED from fault-free run" shards
    end;
    if injected = 0 then begin
      incr failures;
      say ~verbose:true "sharded x%d faults: NO faults were injected" shards
    end;
    say ~verbose:(verbose && identical)
      "sharded x%d faults: %d injected across %d shard stores, logs identical"
      shards injected shards
  end;
  (* In-doubt harvest: one explicit cross-shard deposit, then cut every
     shard's log just before its phase-2 [Commit] — the crash state 2PC's
     lazy completion makes routine (participants end at their forced
     [Prepare], the coordinator at its forced [Decision]).  Recovery must
     resolve each orphaned prepare from the surviving decision evidence,
     name it through the audit callback, and reach the pre-crash state. *)
  let stores = Array.init shards (fun _ -> Storage.memory ()) in
  let dws = Array.init shards (fun i -> Disk_wal.create ~shard:i stores.(i)) in
  let wals = Array.map Disk_wal.wal dws in
  let db = Sharded_database.create ~wals (rebuild ()) in
  drive_sharded ~txns ~cross_pct:30 ~checkpoint_every:0 ~seed db;
  let names =
    Array.of_list (List.map Atomic_object.name (Sharded_database.objects db))
  in
  let o1 = names.(0) in
  let s1 = Sharded_database.shard_of_object db o1 in
  let o2 =
    match
      Array.find_opt (fun o -> Sharded_database.shard_of_object db o <> s1) names
    with
    | Some o -> o
    | None -> o1
  in
  let tid = Sharded_database.begin_txn db in
  let deposit n = Op.invocation ~args:[ Value.int n ] "deposit" in
  ignore (Sharded_database.invoke db tid ~obj:o1 (deposit 21));
  ignore (Sharded_database.invoke db tid ~obj:o2 (deposit 34));
  (match Sharded_database.try_commit db tid with
  | Ok () -> ()
  | Error _ ->
      incr failures;
      say ~verbose:true "sharded x%d harvest: cross-shard commit failed" shards);
  Sharded_database.flush db;
  let cut recs =
    let rec go acc = function
      | [] -> List.rev acc
      | Wal.Commit t :: _ when Tid.equal t tid -> List.rev acc
      | r :: rest -> go (r :: acc) rest
    in
    go [] recs
  in
  let cut_recs = Array.map (fun w -> cut (Wal.records w)) wals in
  let image =
    String.concat ""
      (Array.to_list
         (Array.mapi (fun i recs -> Wal.Codec.encode_all ~shard:i recs) cut_recs))
  in
  last_image := Some image;
  let tp = Wal_inspect.two_phase image in
  let in_doubt =
    List.fold_left (fun n s -> n + List.length s.Wal_inspect.tp_in_doubt) 0 tp
  in
  if in_doubt = 0 then begin
    incr failures;
    say ~verbose:true "sharded x%d harvest: cut image has NO in-doubt prepares"
      shards
  end;
  let audit_events = ref [] in
  (match
     Sharded_database.recover ~workers
       ~audit:(fun evs -> audit_events := evs)
       ~wals:(Array.map Wal.of_records cut_recs)
       ~rebuild ()
   with
  | Error e ->
      incr failures;
      say ~verbose:true "sharded x%d harvest: recovery failed: %a" shards
        Recovery.pp_error e
  | Ok (rdb, _) ->
      if
        not
          (List.exists
             (fun (ev : Two_phase.resolution_event) ->
               ev.Two_phase.ev_commit
               && ev.Two_phase.ev_evidence = Two_phase.Decision_record)
             !audit_events)
      then begin
        incr failures;
        say ~verbose:true
          "sharded x%d harvest: audit trail has no decision-evidence commit"
          shards
      end;
      let resolved =
        Metrics.counter_value
          (Sharded_database.metrics rdb)
          ~labels:[ ("evidence", "decision"); ("outcome", "commit") ]
          "tm_2pc_resolved_total"
      in
      if resolved = 0 then begin
        incr failures;
        say ~verbose:true
          "sharded x%d harvest: tm_2pc_resolved_total{decision,commit} is 0"
          shards
      end;
      let same =
        List.for_all2
          (fun (n1, ops1) (n2, ops2) ->
            String.equal n1 n2 && List.equal Op.equal ops1 ops2)
          (sharded_committed db) (sharded_committed rdb)
      in
      if not same then begin
        incr failures;
        say ~verbose:true
          "sharded x%d harvest: recovered state DIVERGED from pre-crash state"
          shards
      end);
  say ~verbose:true
    "sharded x%d harvest: %d in-doubt prepares across %d shards, %d audit \
     events"
    shards in_doubt (List.length tp)
    (List.length !audit_events);
  Option.iter
    (fun file ->
      Cli_util.with_out file (fun oc ->
          output_string oc
            (Artifact.header_line
               (Artifact.make ~schema:Artifact.audit_schema ~seed
                  ~config:[ ("shards", string_of_int shards) ] ()));
          output_string oc (Two_phase.events_to_jsonl !audit_events));
      Fmt.pr "wrote 2PC audit trail to %s@." file)
    audit_file;
  say ~verbose:true "crashtest --shards %d: %d failures" shards !failures;
  !failures

let main filter txns concurrency seed checkpoint_every fault group_commit workers
    report_file trace_file metrics_file audit_file keep_log keep_log_version
    verbose shards =
  if workers < 1 then begin
    Fmt.epr "--replay-workers must be >= 1@.";
    exit 1
  end;
  if not (Wal.Codec.is_supported keep_log_version) then begin
    Fmt.epr "--keep-log-version %d: supported versions are %a@." keep_log_version
      Fmt.(list ~sep:sp int)
      Wal.Codec.supported_versions;
    exit 1
  end;
  let scenarios =
    List.filter
      (fun (s : Experiment.scenario) ->
        match filter with None -> true | Some f -> String.equal s.name f)
      (scenarios ())
  in
  if scenarios = [] then begin
    Fmt.epr "no scenario matches %S@." (Option.value filter ~default:"");
    exit 1
  end;
  let cfg = Scheduler.config ~concurrency ~total_txns:txns ~seed () in
  let record_trace = trace_file <> None in
  if audit_file <> None && shards = 0 then begin
    Fmt.epr "--audit requires --shards (the 2PC audit trail is sharded-only)@.";
    exit 1
  end;
  let failures =
    if shards > 0 then
      sharded_mode ~verbose ~workers ~shards ~txns ~seed ~checkpoint_every ~fault
        ~audit_file ()
    else if fault then
      fault_mode ~verbose ~record_trace ~workers cfg checkpoint_every seed
        group_commit scenarios
    else record_mode ~verbose ~record_trace ~workers cfg checkpoint_every scenarios
  in
  (match report_file with
  | None -> ()
  | Some file ->
      Cli_util.with_out file (fun oc ->
          List.iter (fun l -> output_string oc (l ^ "\n")) (List.rev !lines));
      Fmt.pr "wrote report to %s@." file);
  let dump_rows = List.rev !rows in
  let config =
    [
      ("txns", string_of_int txns);
      ("concurrency", string_of_int concurrency);
      ("checkpoint_every", string_of_int checkpoint_every);
      ("fault", string_of_bool fault);
      ("group_commit", string_of_int group_commit);
      ("replay_workers", string_of_int workers);
    ]
  in
  Option.iter (fun f -> Cli_util.write_traces_rows ~seed ~config f dump_rows) trace_file;
  Option.iter (fun f -> Cli_util.write_metrics_rows ~seed ~config f dump_rows) metrics_file;
  (match keep_log, !last_image, !last_log with
  | Some file, Some bytes, _ ->
      (* Sharded harvest image: already encoded per shard (mixed shard
         stamps are the point), so --keep-log-version does not apply. *)
      Cli_util.with_out file (fun oc -> output_string oc bytes);
      Fmt.pr "wrote sharded in-doubt WAL image (%d bytes) to %s@."
        (String.length bytes) file
  | Some file, None, Some recs ->
      let bytes = Wal.Codec.encode_all ~version:keep_log_version recs in
      Cli_util.with_out file (fun oc -> output_string oc bytes);
      Fmt.pr "wrote on-disk WAL image (%d bytes, format v%d) to %s@."
        (String.length bytes) keep_log_version file
  | Some file, None, None -> Fmt.epr "--keep-log %s: no run produced a log@." file
  | None, _, _ -> ());
  if failures > 0 then exit 1

open Cmdliner

let scenario_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"NAME" ~doc:"Torture only this scenario (default: all).")

let txns_arg =
  Arg.(
    value & opt int 6
    & info [ "txns"; "n" ]
        ~doc:
          "Transactions per run.  Keep small: the exact atomicity check is \
           exponential and skipped on cuts with many transactions.")

let concurrency_arg =
  Arg.(value & opt int 3 & info [ "concurrency"; "c" ] ~doc:"Concurrent transactions.")

let seed_arg =
  Arg.(
    value & opt int 11
    & info [ "seed" ] ~doc:"PRNG seed (workload; also seeds fault injection).")

let checkpoint_arg =
  Arg.(
    value & opt int 2
    & info [ "checkpoint-every" ]
        ~doc:"Fuzzy checkpoint after every Nth commit (0: never).")

let fault_arg =
  Arg.(
    value & flag
    & info [ "fault" ]
        ~doc:
          "Storage-fault mode: byte-granularity crash cuts over the encoded \
           log, a bit-flip corruption sweep, and a run over storage with \
           seeded torn writes and transient errors that must match the \
           fault-free run.")

let group_commit_arg =
  Arg.(
    value & opt int 1
    & info [ "group-commit" ] ~docv:"N"
        ~doc:
          "In --fault mode, batch the durability barrier every $(docv) commits \
           when driving the workloads, and torture byte cuts inside each batch \
           (recovery must admit exactly a prefix of the batch's commit order, \
           and never lose a commit acknowledged at a flush frontier).")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "replay-workers" ] ~docv:"N"
        ~doc:
          "Run every recovery of the torture matrix through the partitioned \
           parallel replay path with $(docv) worker domains (1: serial \
           semantics on the calling domain).  The recovered state must be \
           identical at any worker count — this flag exists so CI can prove \
           it.")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:"Write the full per-combination report to $(docv) (parent \
              directories are created).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record transaction spans of the driving workload runs and write \
           them to $(docv) as JSON lines (rows tagged by scenario/setup).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a merged Prometheus text snapshot of the driving workload \
           runs to $(docv).")

let audit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "audit" ] ~docv:"FILE"
        ~doc:
          "With $(b,--shards): write the in-doubt harvest's 2PC resolution \
           audit trail (which prepares the crash left in doubt, the evidence \
           recovery resolved each with, the outcome appended) to $(docv) as \
           a tm-2pc JSONL artifact, for obsreport --audit.")

let keep_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "keep-log" ] ~docv:"FILE"
        ~doc:
          "Write the last driving run's encoded on-disk WAL image to $(docv) \
           — a real log for walinspect to chew on.")

let keep_log_version_arg =
  Arg.(
    value
    & opt int Tm_engine.Wal.Codec.write_version
    & info [ "keep-log-version" ] ~docv:"V"
        ~doc:
          "Encode the --keep-log image in WAL format version $(docv) \
           (default: the current write version).  Harvesting with the \
           previous version produces the checked-in migration fixtures \
           under test/golden/logs/.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every report, not just failures.")

let shards_arg =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Torture the sharded engine's cross-shard two-phase commit over \
           $(docv) shard WALs instead of the single-log scenarios: \
           byte-granularity cuts of any shard's log, forced-frontier crash \
           states spanning all of them, and a disk-backed leg checking \
           shard-stamped frames reload and recover identically.  With \
           $(b,--fault), the workload additionally runs over per-shard \
           storage with seeded faults and must persist identical logs.")

let cmd =
  let doc = "crash at every WAL append point and check recovery invariants" in
  Cmd.v
    (Cmd.info "crashtest" ~doc)
    Term.(
      const main $ scenario_arg $ txns_arg $ concurrency_arg $ seed_arg
      $ checkpoint_arg $ fault_arg $ group_commit_arg $ workers_arg $ report_arg
      $ trace_arg $ metrics_arg $ audit_arg $ keep_log_arg $ keep_log_version_arg
      $ verbose_arg $ shards_arg)

let () = exit (Cmd.eval cmd)
