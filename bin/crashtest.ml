(* crashtest: crash-injection torture of WAL recovery.

   For each scenario x setup, a small concurrent workload is driven
   through a Durable_database with a fuzzy checkpoint taken mid-run;
   then Crash.torture crashes at every append point of the resulting
   log and checks the three recovery invariants (replay legality /
   dynamic atomicity, prefix stability, idempotence through a
   post-recovery checkpoint + truncation).  Exits non-zero on any
   violation, so CI can gate on it. *)

module Experiment = Tm_sim.Experiment
module Scheduler = Tm_sim.Scheduler
module Crash = Tm_engine.Crash
module Recovery = Tm_engine.Recovery

(* Workloads stay tiny so most cuts fall under the exponential
   dynamic-atomicity checker's transaction gate; the log still contains
   begins, operations, commits, aborts and a mid-run checkpoint. *)
let scenarios () =
  Experiment.all_scenarios @ [ Experiment.transfer_mixed_recovery () ]

let setups =
  [
    Experiment.setup Recovery.UIP Experiment.Semantic;
    Experiment.setup Recovery.DU Experiment.Semantic;
    Experiment.setup ~occ:true Recovery.DU Experiment.Semantic;
    Experiment.setup Recovery.UIP Experiment.Read_write;
  ]

let main filter txns concurrency seed checkpoint_every verbose =
  let scenarios =
    List.filter
      (fun (s : Experiment.scenario) ->
        match filter with None -> true | Some f -> String.equal s.name f)
      (scenarios ())
  in
  if scenarios = [] then begin
    Fmt.epr "no scenario matches %S@." (Option.value filter ~default:"");
    exit 1
  end;
  let cfg = Scheduler.config ~concurrency ~total_txns:txns ~seed () in
  let failures = ref 0 in
  let total_cuts = ref 0 in
  let total_checked = ref 0 in
  List.iter
    (fun (scenario : Experiment.scenario) ->
      List.iter
        (fun setup ->
          let _row, wal = Experiment.run_durable ~checkpoint_every scenario setup cfg in
          let rebuild () = scenario.Experiment.build setup in
          let report = Crash.torture ~rebuild wal in
          total_cuts := !total_cuts + report.Crash.cuts;
          total_checked := !total_checked + report.Crash.atomicity_checked;
          if not (Crash.ok report) then incr failures;
          if verbose || not (Crash.ok report) then
            Fmt.pr "%-24s %-10s %a@." scenario.Experiment.name
              (Experiment.label setup) Crash.pp_report report)
        setups)
    scenarios;
  Fmt.pr "crashtest: %d scenario x setup combinations, %d crash points (%d \
          atomicity-checked), %d with violations@."
    (List.length scenarios * List.length setups)
    !total_cuts !total_checked !failures;
  if !failures > 0 then exit 1

open Cmdliner

let scenario_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"NAME" ~doc:"Torture only this scenario (default: all).")

let txns_arg =
  Arg.(
    value & opt int 6
    & info [ "txns"; "n" ]
        ~doc:
          "Transactions per run.  Keep small: the exact atomicity check is \
           exponential and skipped on cuts with many transactions.")

let concurrency_arg =
  Arg.(value & opt int 3 & info [ "concurrency"; "c" ] ~doc:"Concurrent transactions.")

let seed_arg = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"PRNG seed.")

let checkpoint_arg =
  Arg.(
    value & opt int 2
    & info [ "checkpoint-every" ]
        ~doc:"Fuzzy checkpoint after every Nth commit (0: never).")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every report, not just failures.")

let cmd =
  let doc = "crash at every WAL append point and check recovery invariants" in
  Cmd.v
    (Cmd.info "crashtest" ~doc)
    Term.(
      const main $ scenario_arg $ txns_arg $ concurrency_arg $ seed_arg
      $ checkpoint_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
