(* crashtest: crash-injection torture of WAL recovery.

   For each scenario x setup, a small concurrent workload is driven
   through a Durable_database with a fuzzy checkpoint taken mid-run;
   then Crash.torture crashes at every append point of the resulting
   log and checks the three recovery invariants (replay legality /
   dynamic atomicity, prefix stability, idempotence through a
   post-recovery checkpoint + truncation).  Exits non-zero on any
   violation, so CI can gate on it.

   --fault switches to storage-level torture of the on-disk format:
   byte-granularity crash cuts over the encoded log, a bit-flip
   corruption sweep (every damage must be detected as interior
   corruption or contained as a torn tail), and a fault-injected run —
   the same workload against storage dealing seeded torn writes and
   transient errors — which must commit identical state to the
   fault-free run, with the absorbed faults visible in
   tm_storage_retries_total. *)

module Experiment = Tm_sim.Experiment
module Scheduler = Tm_sim.Scheduler
module Crash = Tm_engine.Crash
module Recovery = Tm_engine.Recovery
module Wal = Tm_engine.Wal
module Storage = Tm_engine.Storage
module Disk_wal = Tm_engine.Disk_wal
module Metrics = Tm_obs.Metrics

(* Workloads stay tiny so most cuts fall under the exponential
   dynamic-atomicity checker's transaction gate; the log still contains
   begins, operations, commits, aborts and a mid-run checkpoint. *)
let scenarios () =
  Experiment.all_scenarios @ [ Experiment.transfer_mixed_recovery () ]

let setups =
  [
    Experiment.setup Recovery.UIP Experiment.Semantic;
    Experiment.setup Recovery.DU Experiment.Semantic;
    Experiment.setup ~occ:true Recovery.DU Experiment.Semantic;
    Experiment.setup Recovery.UIP Experiment.Read_write;
  ]

(* Collect report lines so --report can dump the full run even when the
   console only shows failures. *)
let lines : string list ref = ref []

(* Rows of the driving (fault-free) workload runs, for --trace/--metrics
   dumps in the shared artifact formats. *)
let rows : Experiment.row list ref = ref []

(* The last driving run's records, for --keep-log: encoded on exit (in
   the format version --keep-log-version selects) into a real
   crashtest-produced on-disk WAL that walinspect can be pointed at —
   and that, encoded as v1, becomes a checked-in migration fixture. *)
let last_log : Wal.record list option ref = ref None

let say ~verbose fmt =
  Fmt.kstr
    (fun s ->
      lines := s :: !lines;
      if verbose then Fmt.pr "%s@." s)
    fmt

(* ------------------------------------------------------------------ *)
(* Default mode: record-granularity torture.                           *)

let record_mode ~verbose ~record_trace ~workers cfg checkpoint_every scenarios =
  let failures = ref 0 in
  let total_cuts = ref 0 in
  let total_checked = ref 0 in
  List.iter
    (fun (scenario : Experiment.scenario) ->
      List.iter
        (fun setup ->
          let row, wal =
            Experiment.run_durable ~record_trace ~checkpoint_every scenario setup cfg
          in
          rows := row :: !rows;
          last_log := Some (Wal.records wal);
          let rebuild () = scenario.Experiment.build setup in
          let report = Crash.torture ~workers ~rebuild wal in
          total_cuts := !total_cuts + report.Crash.cuts;
          total_checked := !total_checked + report.Crash.atomicity_checked;
          if not (Crash.ok report) then incr failures;
          say ~verbose:(verbose || not (Crash.ok report)) "%-24s %-10s %a"
            scenario.Experiment.name (Experiment.label setup) Crash.pp_report report)
        setups)
    scenarios;
  say ~verbose:true
    "crashtest: %d scenario x setup combinations, %d crash points (%d \
     atomicity-checked), %d with violations"
    (List.length scenarios * List.length setups)
    !total_cuts !total_checked !failures;
  !failures

(* ------------------------------------------------------------------ *)
(* --fault mode: byte-granularity cuts, corruption sweeps, and a
   fault-injected storage run checked against the fault-free one.       *)

let fault_mode ~verbose ~record_trace ~workers cfg checkpoint_every seed
    group_commit scenarios =
  let failures = ref 0 in
  let total_cuts = ref 0 in
  let total_trunc_cuts = ref 0 in
  let total_upgrade_cuts = ref 0 in
  let total_batch_cuts = ref 0 in
  let total_flips = ref 0 in
  let total_retries = ref 0 in
  let total_faults = ref 0 in
  List.iter
    (fun (scenario : Experiment.scenario) ->
      List.iter
        (fun setup ->
          let rebuild () = scenario.Experiment.build setup in
          let combo = Fmt.str "%-24s %-10s" scenario.Experiment.name (Experiment.label setup) in

          (* 1. Drive the workload onto real (in-memory-backed) storage
             through the framing codec, fault-free, batching durability
             every [group_commit] commits. *)
          let clean_store = Storage.memory () in
          let clean_dw = Disk_wal.create clean_store in
          let row, wal =
            Experiment.run_durable ~record_trace ~wal:(Disk_wal.wal clean_dw)
              ~checkpoint_every ~group_commit scenario setup cfg
          in
          rows := row :: !rows;
          last_log := Some (Wal.records wal);

          (* 2. Byte-granularity crash cuts over the encoded log. *)
          let report = Crash.torture_bytes ~workers ~rebuild wal in
          total_cuts := !total_cuts + report.Crash.cuts;
          if not (Crash.ok report) then incr failures;
          say ~verbose:(verbose || not (Crash.ok report)) "%s bytes:  %a" combo
            Crash.pp_report report;

          (* 2a. Truncation torture: crash at every byte offset of the
             crash-atomic log compaction (journal + install) and demand
             the recovered state never changes. *)
          let trunc = Crash.torture_truncation ~workers ~rebuild wal in
          total_trunc_cuts := !total_trunc_cuts + trunc.Crash.cuts;
          if not (Crash.ok trunc) then incr failures;
          say ~verbose:(verbose || not (Crash.ok trunc)) "%s trunc:  %a" combo
            Crash.pp_report trunc;

          (* 2a'. Upgrade torture: the same compaction crash sweep, but
             starting from the log encoded in the previous on-disk format
             (v1) and rewriting it in the current one — every cut must
             leave a readable mixed-version log that recovers to the same
             state, with zero acknowledged commits lost. *)
          let upg = Crash.torture_upgrade ~workers ~rebuild wal in
          total_upgrade_cuts := !total_upgrade_cuts + upg.Crash.cuts;
          if not (Crash.ok upg) then incr failures;
          say ~verbose:(verbose || not (Crash.ok upg)) "%s upgrade: %a" combo
            Crash.pp_report upg;

          (* 2b. Batch-prefix torture: cuts inside a group-commit batch
             must recover a prefix of the batch's commit order and never
             lose a commit acknowledged at a flush frontier. *)
          let batch = Crash.torture_batched ~group_every:group_commit wal in
          total_batch_cuts := !total_batch_cuts + batch.Crash.byte_cuts;
          if not (Crash.batch_ok batch) then incr failures;
          say ~verbose:(verbose || not (Crash.batch_ok batch)) "%s batch:  %a" combo
            Crash.pp_batch_report batch;

          (* 3. Bit-flip corruption sweep: detected or contained, never
             silent. *)
          let sweep = Crash.corruption_sweep wal in
          total_flips := !total_flips + sweep.Crash.flips;
          if not (Crash.sweep_ok sweep) then incr failures;
          say ~verbose:(verbose || not (Crash.sweep_ok sweep)) "%s flips:  %a" combo
            Crash.pp_sweep_report sweep;

          (* 4. The same workload against storage dealing seeded torn
             writes and transient errors: the retry loop must absorb
             them and commit the identical log. *)
          let inner = Storage.memory () in
          let faulty = Storage.faulty ~seed Storage.write_faults inner in
          let faulty_dw = Disk_wal.create faulty in
          let frow, fwal =
            Experiment.run_durable ~wal:(Disk_wal.wal faulty_dw) ~checkpoint_every
              ~group_commit scenario setup cfg
          in
          let retries =
            Metrics.counter_value frow.Experiment.metrics "tm_storage_retries_total"
          in
          total_retries := !total_retries + retries;
          total_faults := !total_faults + Storage.fault_count faulty;
          let identical =
            List.equal Wal.equal_record (Wal.records wal) (Wal.records fwal)
          in
          if not identical then begin
            incr failures;
            say ~verbose:true "%s faults: DIVERGED from fault-free run" combo
          end;
          (* The bytes that actually reached the (clean) inner store must
             reload to the same log — torn prefixes were overwritten. *)
          (match Disk_wal.load inner with
          | Error c ->
              incr failures;
              say ~verbose:true "%s faults: persisted log CORRUPT: %a" combo
                Wal.Codec.pp_corruption c
          | Ok reloaded ->
              if
                not
                  (List.equal Wal.equal_record (Wal.records wal)
                     (Wal.records (Disk_wal.wal reloaded)))
              then begin
                incr failures;
                say ~verbose:true "%s faults: reloaded log DIVERGED" combo
              end);
          say ~verbose:(verbose && identical)
            "%s faults: %d injected, %d retries, committed state identical" combo
            (Storage.fault_count faulty) retries)
        setups)
    scenarios;
  (* The sweep is vacuous if the fault dice never fired: fail loudly so a
     mis-seeded CI run cannot pass by doing nothing. *)
  if !total_retries = 0 then begin
    incr failures;
    say ~verbose:true "crashtest --fault: NO transient faults were injected/retried"
  end;
  say ~verbose:true
    "crashtest --fault: %d combinations, %d byte cuts (+%d truncation cuts, +%d \
     upgrade cuts, +%d batch-prefix cuts, group commit %d), %d bit flips, %d \
     faults injected, %d retries absorbed, %d failures"
    (List.length scenarios * List.length setups)
    !total_cuts !total_trunc_cuts !total_upgrade_cuts !total_batch_cuts
    group_commit !total_flips !total_faults !total_retries !failures;
  !failures

let main filter txns concurrency seed checkpoint_every fault group_commit workers
    report_file trace_file metrics_file keep_log keep_log_version verbose =
  if workers < 1 then begin
    Fmt.epr "--replay-workers must be >= 1@.";
    exit 1
  end;
  if not (Wal.Codec.is_supported keep_log_version) then begin
    Fmt.epr "--keep-log-version %d: supported versions are %a@." keep_log_version
      Fmt.(list ~sep:sp int)
      Wal.Codec.supported_versions;
    exit 1
  end;
  let scenarios =
    List.filter
      (fun (s : Experiment.scenario) ->
        match filter with None -> true | Some f -> String.equal s.name f)
      (scenarios ())
  in
  if scenarios = [] then begin
    Fmt.epr "no scenario matches %S@." (Option.value filter ~default:"");
    exit 1
  end;
  let cfg = Scheduler.config ~concurrency ~total_txns:txns ~seed () in
  let record_trace = trace_file <> None in
  let failures =
    if fault then
      fault_mode ~verbose ~record_trace ~workers cfg checkpoint_every seed
        group_commit scenarios
    else record_mode ~verbose ~record_trace ~workers cfg checkpoint_every scenarios
  in
  (match report_file with
  | None -> ()
  | Some file ->
      Cli_util.with_out file (fun oc ->
          List.iter (fun l -> output_string oc (l ^ "\n")) (List.rev !lines));
      Fmt.pr "wrote report to %s@." file);
  let dump_rows = List.rev !rows in
  let config =
    [
      ("txns", string_of_int txns);
      ("concurrency", string_of_int concurrency);
      ("checkpoint_every", string_of_int checkpoint_every);
      ("fault", string_of_bool fault);
      ("group_commit", string_of_int group_commit);
      ("replay_workers", string_of_int workers);
    ]
  in
  Option.iter (fun f -> Cli_util.write_traces_rows ~seed ~config f dump_rows) trace_file;
  Option.iter (fun f -> Cli_util.write_metrics_rows ~seed ~config f dump_rows) metrics_file;
  (match keep_log, !last_log with
  | Some file, Some recs ->
      let bytes = Wal.Codec.encode_all ~version:keep_log_version recs in
      Cli_util.with_out file (fun oc -> output_string oc bytes);
      Fmt.pr "wrote on-disk WAL image (%d bytes, format v%d) to %s@."
        (String.length bytes) keep_log_version file
  | Some file, None -> Fmt.epr "--keep-log %s: no run produced a log@." file
  | None, _ -> ());
  if failures > 0 then exit 1

open Cmdliner

let scenario_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"NAME" ~doc:"Torture only this scenario (default: all).")

let txns_arg =
  Arg.(
    value & opt int 6
    & info [ "txns"; "n" ]
        ~doc:
          "Transactions per run.  Keep small: the exact atomicity check is \
           exponential and skipped on cuts with many transactions.")

let concurrency_arg =
  Arg.(value & opt int 3 & info [ "concurrency"; "c" ] ~doc:"Concurrent transactions.")

let seed_arg =
  Arg.(
    value & opt int 11
    & info [ "seed" ] ~doc:"PRNG seed (workload; also seeds fault injection).")

let checkpoint_arg =
  Arg.(
    value & opt int 2
    & info [ "checkpoint-every" ]
        ~doc:"Fuzzy checkpoint after every Nth commit (0: never).")

let fault_arg =
  Arg.(
    value & flag
    & info [ "fault" ]
        ~doc:
          "Storage-fault mode: byte-granularity crash cuts over the encoded \
           log, a bit-flip corruption sweep, and a run over storage with \
           seeded torn writes and transient errors that must match the \
           fault-free run.")

let group_commit_arg =
  Arg.(
    value & opt int 1
    & info [ "group-commit" ] ~docv:"N"
        ~doc:
          "In --fault mode, batch the durability barrier every $(docv) commits \
           when driving the workloads, and torture byte cuts inside each batch \
           (recovery must admit exactly a prefix of the batch's commit order, \
           and never lose a commit acknowledged at a flush frontier).")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "replay-workers" ] ~docv:"N"
        ~doc:
          "Run every recovery of the torture matrix through the partitioned \
           parallel replay path with $(docv) worker domains (1: serial \
           semantics on the calling domain).  The recovered state must be \
           identical at any worker count — this flag exists so CI can prove \
           it.")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:"Write the full per-combination report to $(docv) (parent \
              directories are created).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record transaction spans of the driving workload runs and write \
           them to $(docv) as JSON lines (rows tagged by scenario/setup).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a merged Prometheus text snapshot of the driving workload \
           runs to $(docv).")

let keep_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "keep-log" ] ~docv:"FILE"
        ~doc:
          "Write the last driving run's encoded on-disk WAL image to $(docv) \
           — a real log for walinspect to chew on.")

let keep_log_version_arg =
  Arg.(
    value
    & opt int Tm_engine.Wal.Codec.write_version
    & info [ "keep-log-version" ] ~docv:"V"
        ~doc:
          "Encode the --keep-log image in WAL format version $(docv) \
           (default: the current write version).  Harvesting with the \
           previous version produces the checked-in migration fixtures \
           under test/golden/logs/.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every report, not just failures.")

let cmd =
  let doc = "crash at every WAL append point and check recovery invariants" in
  Cmd.v
    (Cmd.info "crashtest" ~doc)
    Term.(
      const main $ scenario_arg $ txns_arg $ concurrency_arg $ seed_arg
      $ checkpoint_arg $ fault_arg $ group_commit_arg $ workers_arg $ report_arg
      $ trace_arg $ metrics_arg $ keep_log_arg $ keep_log_version_arg
      $ verbose_arg)

let () = exit (Cmd.eval cmd)
