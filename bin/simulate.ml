(* simulate: run an engine scenario from the command line and print the
   comparison matrix (or a single configured run).

   With --metrics FILE the registries of all runs are merged (rows
   distinguished by scenario/setup labels) and written as a Prometheus
   text snapshot; with --trace FILE every run records transaction spans,
   dumped as JSON lines, and each trace is replayed through
   Trace.to_history and re-checked against the paper's dynamic-atomicity
   definition (the full check is exponential, so it only runs on small
   histories — well-formedness is always verified). *)

module Experiment = Tm_sim.Experiment
module Scheduler = Tm_sim.Scheduler
module Recovery = Tm_engine.Recovery
module Atomic_object = Tm_engine.Atomic_object
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace
open Tm_core

let scenarios () =
  Experiment.all_scenarios
  @ List.map (fun w -> Experiment.bank_sweep ~withdraw_pct:w) [ 0; 25; 50; 75; 100 ]
  @ List.map (fun d -> Experiment.inventory_sweep ~decr_pct:d) [ 0; 25; 50; 75; 100 ]

let find_scenario name =
  List.find_opt (fun (s : Experiment.scenario) -> String.equal s.name name) (scenarios ())

let list_scenarios () =
  Fmt.pr "Available scenarios:@.";
  List.iter (fun (s : Experiment.scenario) -> Fmt.pr "  %s@." s.name) (scenarios ())

let with_out = Cli_util.with_out

let prom_of_rows = Cli_util.prom_of_rows
let jsonl_of_rows = Cli_util.jsonl_of_rows
let write_metrics = Cli_util.write_metrics_rows
let write_traces = Cli_util.write_traces_rows

(* --report/--perfetto: run the offline analytics (Tm_obs.Report) in
   process over the rows just produced — same pipeline obsreport runs on
   dumped files. *)
let build_report rows =
  match
    Tm_obs.Report.of_sources ~trace_jsonl:(jsonl_of_rows rows)
      ~metrics_text:(prom_of_rows rows) ()
  with
  | Ok rep -> rep
  | Error e ->
      Fmt.epr "internal report error: %s@." e;
      exit 1

let write_report file rows =
  with_out file (fun oc -> output_string oc (Tm_obs.Report.to_text (build_report rows)));
  Fmt.pr "wrote analytics report to %s@." file

let write_perfetto file rows =
  with_out file (fun oc ->
      output_string oc (Tm_obs.Report.to_perfetto (build_report rows));
      output_char oc '\n');
  Fmt.pr "wrote Perfetto (Chrome trace-event) JSON to %s@." file

(* The exact dynamic-atomicity checkers enumerate serialization orders,
   so replaying a full production-sized trace is infeasible; beyond this
   many transactions we settle for well-formedness. *)
let full_check_txn_limit = 9

let check_traces ~specs rows =
  let env = Atomicity.env_of_list specs in
  List.iter
    (fun (r : Experiment.row) ->
      match r.Experiment.trace with
      | None -> ()
      | Some tr ->
          let h = Trace.to_history tr in
          let verdict =
            if not (History.is_well_formed h) then "history NOT WELL-FORMED"
            else begin
              let txns = Tid.Set.cardinal (History.transactions h) in
              if txns <= full_check_txn_limit then
                if Atomicity.is_online_dynamic_atomic env h then
                  "well-formed, dynamically atomic"
                else "well-formed, NOT DYNAMICALLY ATOMIC"
              else
                Fmt.str "well-formed (%d txns; atomicity check needs <= %d)" txns
                  full_check_txn_limit
            end
          in
          Fmt.pr "trace %-24s %-10s %5d events -> %s@." r.scenario r.setup
            (Trace.length tr) verdict)
    rows

(* --group-commit: the same scenario through the staged commit pipeline
   over a disk-format WAL (in-memory backend, real framing + real
   barrier accounting), batching durability every N commits.  The
   summary reads the pipeline's own metrics: actual fsyncs vs commits
   and the batch-size histogram. *)
let run_group_commit ?record_trace scenario setups cfg n =
  List.map
    (fun s ->
      let dw = Tm_engine.Disk_wal.create (Tm_engine.Storage.memory ()) in
      let row, _wal =
        Experiment.run_durable ?record_trace ~wal:(Tm_engine.Disk_wal.wal dw)
          ~group_commit:n scenario s cfg
      in
      row)
    setups

let pp_group_commit_summary n rows =
  Fmt.pr "group commit (batch every %d commits):@." n;
  List.iter
    (fun (r : Experiment.row) ->
      let reg = r.Experiment.metrics in
      let commits = Metrics.counter_value reg "tm_txn_committed_total" in
      let forces = Metrics.counter_value reg "tm_wal_forces_total" in
      let h = Metrics.histogram reg "tm_wal_group_commit_batch" in
      let batches = Metrics.Histogram.count h in
      let mean =
        if batches = 0 then 0. else Metrics.Histogram.sum h /. float_of_int batches
      in
      Fmt.pr
        "  %-24s %-10s commits %5d  fsyncs %5d  forces/commit %.2f  mean batch %.1f@."
        r.scenario r.setup commits forces
        (if commits = 0 then 0. else float_of_int forces /. float_of_int commits)
        mean)
    rows

let main name list_only recovery choice occ concurrency txns seed rounds group_commit
    metrics_file trace_file report_file perfetto_file =
  if list_only then list_scenarios ()
  else
    match find_scenario name with
    | None ->
        Fmt.epr "unknown scenario %S (try --list)@." name;
        exit 1
    | Some scenario ->
        let cfg =
          Scheduler.config ~concurrency ~total_txns:txns ~seed ~max_rounds:rounds ()
        in
        let record_trace =
          trace_file <> None || report_file <> None || perfetto_file <> None
        in
        let setup_of_flags () =
          let recovery =
            match recovery with
            | Some "du" | Some "DU" -> Recovery.DU
            | None when occ -> Recovery.DU
            | _ -> Recovery.UIP
          in
          let choice =
            match choice with
            | Some "rw" -> Experiment.Read_write
            | Some "all" -> Experiment.Total
            | _ -> Experiment.Semantic
          in
          Experiment.setup ~occ recovery choice
        in
        let rows =
          match group_commit with
          | Some n ->
              let setups =
                match recovery, choice, occ with
                | None, None, false -> Experiment.default_setups
                | _ -> [ setup_of_flags () ]
              in
              run_group_commit ~record_trace scenario setups cfg n
          | None -> (
              match recovery, choice, occ with
              | None, None, false -> Experiment.run_matrix ~record_trace scenario cfg
              | _ -> [ Experiment.run ~record_trace scenario (setup_of_flags ()) cfg ])
        in
        Fmt.pr "%a@." Experiment.pp_table rows;
        Option.iter (fun n -> pp_group_commit_summary n rows) group_commit;
        let config =
          [
            ("scenario", name);
            ("concurrency", string_of_int concurrency);
            ("txns", string_of_int txns);
          ]
          @
          match group_commit with
          | Some n -> [ ("group_commit", string_of_int n) ]
          | None -> []
        in
        Option.iter (fun f -> write_metrics ~seed ~config f rows) metrics_file;
        Option.iter (fun f -> write_report f rows) report_file;
        Option.iter (fun f -> write_perfetto f rows) perfetto_file;
        Option.iter
          (fun f ->
            write_traces ~seed ~config f rows;
            (* Specs don't depend on the setup, so any build serves as the
               checker environment. *)
            let specs =
              List.map Atomic_object.spec
                (scenario.Experiment.build (Experiment.setup Recovery.UIP Semantic))
            in
            check_traces ~specs rows)
          trace_file

open Cmdliner

let name_arg =
  Arg.(
    value
    & pos 0 string "bank-hotspot"
    & info [] ~docv:"SCENARIO" ~doc:"Scenario name (see --list).")

let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List scenarios.")

let recovery_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "recovery" ] ~docv:"uip|du" ~doc:"Recovery method (default: run the full matrix).")

let choice_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "conflict" ] ~docv:"semantic|rw|all" ~doc:"Conflict relation choice.")

let occ_arg =
  Arg.(value & flag & info [ "occ" ] ~doc:"Optimistic execution (implies deferred update).")

let concurrency_arg =
  Arg.(value & opt int 8 & info [ "concurrency"; "c" ] ~doc:"Concurrent transactions.")

let txns_arg = Arg.(value & opt int 200 & info [ "txns"; "n" ] ~doc:"Transactions to run.")
let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"PRNG seed.")
let rounds_arg = Arg.(value & opt int 100_000 & info [ "max-rounds" ] ~doc:"Safety stop.")

let group_commit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "group-commit" ] ~docv:"N"
        ~doc:
          "Run through the staged commit pipeline over a disk-format WAL, \
           batching the durability barrier every $(docv) commits, and print \
           fsyncs-per-commit and batch-size statistics.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write a merged Prometheus text snapshot of all runs to $(docv).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record transaction spans, write them to $(docv) as JSON lines, and \
           re-check each trace against the dynamic-atomicity definition.")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Record transaction spans and write the text analytics report \
           (timelines, blocking, heat maps) to $(docv).")

let perfetto_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "perfetto" ] ~docv:"FILE"
        ~doc:
          "Record transaction spans and write Chrome trace-event JSON \
           (loadable in Perfetto / chrome://tracing) to $(docv).")

let cmd =
  let doc = "run a transaction-engine scenario and print scheduler statistics" in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const main $ name_arg $ list_arg $ recovery_arg $ choice_arg $ occ_arg
      $ concurrency_arg $ txns_arg $ seed_arg $ rounds_arg $ group_commit_arg
      $ metrics_arg $ trace_arg $ report_arg $ perfetto_arg)

let () = exit (Cmd.eval cmd)
