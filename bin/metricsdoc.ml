(* metricsdoc: print (or write) the generated metrics catalog.

   docs/METRICS.md is this program's output checked into the tree; CI
   regenerates and diffs it, so the doc can only change together with
   lib/obs/catalog.ml. *)

let main out =
  let md = Tm_obs.Catalog.to_markdown () in
  match out with
  | None -> print_string md
  | Some file ->
      Cli_util.with_out file (fun oc -> output_string oc md);
      Fmt.pr "wrote %s (%d entries)@." file
        (List.length Tm_obs.Catalog.all)

open Cmdliner

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the catalog to $(docv) instead of stdout.")

let cmd =
  let doc = "generate docs/METRICS.md from the metrics catalog" in
  Cmd.v (Cmd.info "metricsdoc" ~doc) Term.(const main $ out_arg)

let () = exit (Cmd.eval cmd)
