(* obsreport: offline trace analytics.

   Consumes the artifacts the other executables dump — JSONL traces
   (simulate/stresstest/crashtest --trace, repeatable for multi-shard /
   multi-run merges), a Prometheus text snapshot (--metrics) and/or a
   2PC in-doubt audit artifact (crashtest --audit) — and renders
   per-transaction phase timelines, blocking blame, flame views,
   conflict heat maps and the in-doubt resolution trail as text, a JSON
   summary, or Chrome trace-event JSON loadable in Perfetto.  Exits
   non-zero when the inputs parse to nothing: an empty report in CI
   means the producing run is broken. *)

module Report = Tm_obs.Report
module Json = Tm_obs.Json

type format =
  | Text
  | Json_fmt
  | Perfetto

let main trace_files metrics_file audit_file format out_file =
  if trace_files = [] && metrics_file = None && audit_file = None then begin
    Fmt.epr
      "obsreport: nothing to analyse (need --trace, --metrics and/or \
       --audit)@.";
    exit 2
  end;
  let traces = List.map Cli_util.read_file trace_files in
  let metrics_text = Option.map Cli_util.read_file metrics_file in
  let audit_jsonl = Option.map Cli_util.read_file audit_file in
  match Report.of_sources ~traces ?metrics_text ?audit_jsonl () with
  | Error e ->
      Fmt.epr "obsreport: %s@." e;
      exit 1
  | Ok report ->
      if Report.is_empty report then begin
        Fmt.epr "obsreport: inputs contain no events and no conflict samples@.";
        exit 1
      end;
      let body =
        match format with
        | Text -> Report.to_text report
        | Json_fmt -> Json.to_string (Report.to_json report) ^ "\n"
        | Perfetto -> Report.to_perfetto report ^ "\n"
      in
      (match out_file with
      | None -> print_string body
      | Some file ->
          Cli_util.with_out file (fun oc -> output_string oc body);
          Fmt.pr "wrote %s@." file)

open Cmdliner

let trace_arg =
  Arg.(
    value & opt_all string []
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "JSONL trace dump to analyse (as written by simulate --trace).  \
           Repeatable: several dumps — one per shard, or one per run — \
           merge into a single report; groups with identical label sets \
           coalesce, distinct label sets stay separate sections / \
           Perfetto processes.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Prometheus text snapshot; its tm_lock_conflicts_total family \
           becomes the conflict heat maps.")

let audit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "audit" ] ~docv:"FILE"
        ~doc:
          "2PC in-doubt audit artifact (tm-2pc JSONL, as written by \
           crashtest --audit): rendered as the in-doubt resolution \
           section, and any resolution feeds the anomaly annotations.")

let format_arg =
  let fmts = [ ("text", Text); ("json", Json_fmt); ("perfetto", Perfetto) ] in
  Arg.(
    value
    & opt (enum fmts) Text
    & info [ "format"; "f" ] ~docv:"text|json|perfetto"
        ~doc:
          "Output format: a human report, a JSON summary, or Chrome \
           trace-event JSON for Perfetto / chrome://tracing.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")

let cmd =
  let doc = "analyse trace/metrics dumps: timelines, blocking, heat maps, Perfetto" in
  Cmd.v
    (Cmd.info "obsreport" ~doc)
    Term.(
      const main $ trace_arg $ metrics_arg $ audit_arg $ format_arg $ out_arg)

let () = exit (Cmd.eval cmd)
