(* obsreport: offline trace analytics.

   Consumes the artifacts the other executables dump — a JSONL trace
   (simulate/stresstest/crashtest --trace) and/or a Prometheus text
   snapshot (--metrics) — and renders per-transaction phase timelines,
   blocking blame, flame views and conflict heat maps as text, a JSON
   summary, or Chrome trace-event JSON loadable in Perfetto.  Exits
   non-zero when the inputs parse to nothing: an empty report in CI
   means the producing run is broken. *)

module Report = Tm_obs.Report
module Json = Tm_obs.Json

type format =
  | Text
  | Json_fmt
  | Perfetto

let main trace_file metrics_file format out_file =
  if trace_file = None && metrics_file = None then begin
    Fmt.epr "obsreport: nothing to analyse (need --trace and/or --metrics)@.";
    exit 2
  end;
  let trace_jsonl = Option.map Cli_util.read_file trace_file in
  let metrics_text = Option.map Cli_util.read_file metrics_file in
  match Report.of_sources ?trace_jsonl ?metrics_text () with
  | Error e ->
      Fmt.epr "obsreport: %s@." e;
      exit 1
  | Ok report ->
      if Report.is_empty report then begin
        Fmt.epr "obsreport: inputs contain no events and no conflict samples@.";
        exit 1
      end;
      let body =
        match format with
        | Text -> Report.to_text report
        | Json_fmt -> Json.to_string (Report.to_json report) ^ "\n"
        | Perfetto -> Report.to_perfetto report ^ "\n"
      in
      (match out_file with
      | None -> print_string body
      | Some file ->
          Cli_util.with_out file (fun oc -> output_string oc body);
          Fmt.pr "wrote %s@." file)

open Cmdliner

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"JSONL trace dump to analyse (as written by simulate --trace).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Prometheus text snapshot; its tm_lock_conflicts_total family \
           becomes the conflict heat maps.")

let format_arg =
  let fmts = [ ("text", Text); ("json", Json_fmt); ("perfetto", Perfetto) ] in
  Arg.(
    value
    & opt (enum fmts) Text
    & info [ "format"; "f" ] ~docv:"text|json|perfetto"
        ~doc:
          "Output format: a human report, a JSON summary, or Chrome \
           trace-event JSON for Perfetto / chrome://tracing.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")

let cmd =
  let doc = "analyse trace/metrics dumps: timelines, blocking, heat maps, Perfetto" in
  Cmd.v
    (Cmd.info "obsreport" ~doc)
    Term.(const main $ trace_arg $ metrics_arg $ format_arg $ out_arg)

let () = exit (Cmd.eval cmd)
