(* Shared output plumbing for the CLI executables. *)

(* Create every missing directory on the way to [dir]. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* [with_out file f] opens [file] for writing — creating parent
   directories as needed — runs [f] on the channel and closes it; a
   filesystem error prints a diagnostic and exits non-zero (these are
   leaf CLI tools, not a library). *)
let with_out file f =
  mkdir_p (Filename.dirname file);
  match open_out file with
  | oc -> Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
  | exception Sys_error msg ->
      Fmt.epr "cannot write %s: %s@." file msg;
      exit 1
