(* Shared output plumbing for the CLI executables. *)

(* Create every missing directory on the way to [dir]. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* [with_out file f] opens [file] for writing — creating parent
   directories as needed — runs [f] on the channel and closes it; a
   filesystem error prints a diagnostic and exits non-zero (these are
   leaf CLI tools, not a library). *)
let with_out file f =
  mkdir_p (Filename.dirname file);
  match open_out file with
  | oc -> Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
  | exception Sys_error msg ->
      Fmt.epr "cannot write %s: %s@." file msg;
      exit 1

(* [read_file file] reads the whole file; same leaf-CLI error policy as
   {!with_out}. *)
let read_file file =
  match open_in_bin file with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
  | exception Sys_error msg ->
      Fmt.epr "cannot read %s: %s@." file msg;
      exit 1

(* Shared dump formats for experiment rows: every executable that takes
   --metrics/--trace writes the same artifacts, so obsreport can consume
   any of them.  Rows are distinguished by scenario/setup labels (extra
   Prometheus labels; extra JSONL fields). *)

let prom_of_rows rows =
  let module Metrics = Tm_obs.Metrics in
  let all = Metrics.create () in
  List.iter
    (fun (r : Tm_sim.Experiment.row) ->
      Metrics.merge
        ~extra_labels:[ ("scenario", r.scenario); ("setup", r.setup) ]
        all r.metrics)
    rows;
  Metrics.to_prometheus all

let jsonl_of_rows rows =
  String.concat ""
    (List.filter_map
       (fun (r : Tm_sim.Experiment.row) ->
         Option.map
           (Tm_obs.Trace.to_jsonl
              ~extra:[ ("scenario", r.scenario); ("setup", r.setup) ])
           r.Tm_sim.Experiment.trace)
       rows)

(* Dumps are self-describing: a one-line Artifact header (schema, the
   producing binary, seed, run configuration) leads the file.  On the
   Prometheus side it is a comment, on the JSONL side a {"meta":...}
   line; both readers validate the family and skip it. *)

let write_metrics_rows ?seed ?(config = []) file rows =
  let meta =
    Tm_obs.Artifact.make ~schema:Tm_obs.Artifact.metrics_schema ?seed ~config ()
  in
  with_out file (fun oc ->
      output_string oc (Tm_obs.Artifact.prom_header meta);
      output_string oc (prom_of_rows rows));
  Fmt.pr "wrote Prometheus snapshot to %s@." file

let write_traces_rows ?seed ?(config = []) file rows =
  let meta =
    Tm_obs.Artifact.make ~schema:Tm_obs.Artifact.trace_schema ?seed ~config ()
  in
  with_out file (fun oc ->
      output_string oc (Tm_obs.Artifact.header_line meta);
      output_string oc (jsonl_of_rows rows));
  Fmt.pr "wrote trace (JSON lines) to %s@." file
