(* walformatdoc: print (or write) the generated WAL format spec, and
   regenerate the golden frame files.

   docs/WAL_FORMAT.md is this program's output checked into the tree; CI
   regenerates and diffs it, so the doc can only change together with
   lib/engine/wal_format.ml / the codec.  --golden DIR rewrites the
   golden frame files (test/golden/ in the source tree) after an
   intentional format change — the test suite fails on any byte drift
   until they are regenerated. *)

module Wal_format = Tm_engine.Wal_format

let write_golden dir =
  let n = ref 0 in
  List.iter
    (fun version ->
      List.iter
        (fun (file, bytes) ->
          Cli_util.with_out (Filename.concat dir file) (fun oc ->
              output_string oc bytes);
          incr n)
        (Wal_format.golden_frames ~version))
    Wal_format.versions;
  Fmt.pr "wrote %d golden frames to %s@." !n dir

let main out golden =
  (match golden with None -> () | Some dir -> write_golden dir);
  let md = Wal_format.to_markdown () in
  match (out, golden) with
  | None, None -> print_string md
  | None, Some _ -> ()
  | Some file, _ ->
      Cli_util.with_out file (fun oc -> output_string oc md);
      Fmt.pr "wrote %s@." file

open Cmdliner

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the format spec to $(docv) instead of stdout.")

let golden_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "golden" ] ~docv:"DIR"
        ~doc:
          "Rewrite the golden frame files (one per record kind and format \
           version) into $(docv) — point it at test/golden after an \
           intentional format change.")

let cmd =
  let doc = "generate docs/WAL_FORMAT.md and the codec golden frames" in
  Cmd.v (Cmd.info "walformatdoc" ~doc) Term.(const main $ out_arg $ golden_arg)

let () = exit (Cmd.eval cmd)
