(* benchdiff: compare two bench-baseline JSON files.

   A series regresses when it moves against its declared direction by
   more than the tolerance (relative, percent).  Exit status: 0 when no
   gating series regresses (or --report-only / --allow-regression), 1 on
   regressions or unreadable inputs.  By default every series gates;
   --gate PREFIX (repeatable) narrows the gate to matching series — the
   full comparison is still printed, non-gating regressions are noted
   but do not fail the run.  CI gates on the recovery/restart and
   commit-rate series against the checked-in baseline; the Makefile's
   BENCHDIFF_FLAGS=--allow-regression is the documented escape hatch
   when a regression is intentional (update bench/BASELINE.json in the
   same change). *)

module Bench = Tm_obs.Bench_baseline

let load label file =
  match Bench.of_string (Cli_util.read_file file) with
  | Ok b -> b
  | Error e ->
      Fmt.epr "benchdiff: %s %s: %s@." label file e;
      exit 1

let main base_file current_file tolerance gates report_only allow_regression =
  let baseline = load "baseline" base_file in
  let current = load "current" current_file in
  Fmt.pr "baseline %s (rev %s)  vs  current %s (rev %s), tolerance %.0f%%@.@."
    base_file baseline.Bench.rev current_file current.Bench.rev tolerance;
  let verdicts = Bench.diff ~tolerance_pct:tolerance ~baseline current in
  Fmt.pr "%a" Bench.pp_diff verdicts;
  let gating (v : Bench.verdict) =
    gates = []
    || List.exists
         (fun p -> String.starts_with ~prefix:p v.Bench.series_name)
         gates
  in
  match Bench.regressions verdicts with
  | [] -> Fmt.pr "@.no regressions@."
  | rs ->
      let gated, advisory = List.partition gating rs in
      if advisory <> [] then
        Fmt.pr "@.%d regression%s outside the gate (advisory only)@."
          (List.length advisory)
          (if List.length advisory = 1 then "" else "s");
      (match gated with
      | [] -> Fmt.pr "@.no gating regressions@."
      | gs ->
          Fmt.pr "@.%d gating regression%s@." (List.length gs)
            (if List.length gs = 1 then "" else "s");
          if allow_regression then
            Fmt.pr "--allow-regression: not failing the run@."
          else if not report_only then exit 1)

open Cmdliner

let base_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BASELINE" ~doc:"Baseline bench JSON.")

let current_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"CURRENT" ~doc:"Current bench JSON to judge.")

let tolerance_arg =
  Arg.(
    value & opt float 25.0
    & info [ "tolerance" ] ~docv:"PCT"
        ~doc:"Relative tolerance in percent before a change counts as a \
              regression.")

let gate_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "gate" ] ~docv:"PREFIX"
        ~doc:
          "Only regressions in series whose name starts with $(docv) fail \
           the run (repeatable).  Other regressions are still printed, as \
           advisory.  With no --gate, every series gates.")

let report_only_arg =
  Arg.(
    value & flag
    & info [ "report-only" ]
        ~doc:"Print the comparison but always exit 0 (CI visibility \
              without flaking the build).")

let allow_regression_arg =
  Arg.(
    value & flag
    & info [ "allow-regression" ]
        ~doc:
          "Print gating regressions but exit 0 — the documented escape \
           hatch for an intentional perf trade-off.  Pair it with a \
           bench/BASELINE.json update in the same change.")

let cmd =
  let doc = "diff two bench baseline JSON files with a tolerance" in
  Cmd.v
    (Cmd.info "benchdiff" ~doc)
    Term.(
      const main $ base_arg $ current_arg $ tolerance_arg $ gate_arg
      $ report_only_arg $ allow_regression_arg)

let () = exit (Cmd.eval cmd)
