(* benchdiff: compare two bench-baseline JSON files.

   A series regresses when it moves against its declared direction by
   more than the tolerance (relative, percent).  Exit status: 0 when no
   series regresses (or --report-only), 1 on regressions or unreadable
   inputs.  CI runs this report-only against the checked-in baseline so
   perf drift is visible in logs without flaking the build. *)

module Bench = Tm_obs.Bench_baseline

let load label file =
  match Bench.of_string (Cli_util.read_file file) with
  | Ok b -> b
  | Error e ->
      Fmt.epr "benchdiff: %s %s: %s@." label file e;
      exit 1

let main base_file current_file tolerance report_only =
  let baseline = load "baseline" base_file in
  let current = load "current" current_file in
  Fmt.pr "baseline %s (rev %s)  vs  current %s (rev %s), tolerance %.0f%%@.@."
    base_file baseline.Bench.rev current_file current.Bench.rev tolerance;
  let verdicts = Bench.diff ~tolerance_pct:tolerance ~baseline current in
  Fmt.pr "%a" Bench.pp_diff verdicts;
  match Bench.regressions verdicts with
  | [] -> Fmt.pr "@.no regressions@."
  | rs ->
      Fmt.pr "@.%d regression%s@." (List.length rs)
        (if List.length rs = 1 then "" else "s");
      if not report_only then exit 1

open Cmdliner

let base_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BASELINE" ~doc:"Baseline bench JSON.")

let current_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"CURRENT" ~doc:"Current bench JSON to judge.")

let tolerance_arg =
  Arg.(
    value & opt float 25.0
    & info [ "tolerance" ] ~docv:"PCT"
        ~doc:"Relative tolerance in percent before a change counts as a \
              regression.")

let report_only_arg =
  Arg.(
    value & flag
    & info [ "report-only" ]
        ~doc:"Print the comparison but always exit 0 (CI visibility \
              without flaking the build).")

let cmd =
  let doc = "diff two bench baseline JSON files with a tolerance" in
  Cmd.v
    (Cmd.info "benchdiff" ~doc)
    Term.(
      const main $ base_arg $ current_arg $ tolerance_arg $ report_only_arg)

let () = exit (Cmd.eval cmd)
