(* walinspect: forensics for an on-disk WAL image.

   Reads a log file's raw bytes and reports what recovery would see
   without running it: record-kind histogram with byte volumes, LSN
   range, checkpoint coverage (and the live-transaction set carried by
   each checkpoint), and the torn-tail / interior-corruption diagnosis
   with byte offsets — the same resynchronisation scan Disk_wal.load
   uses, so the verdict printed here is the verdict a restart gets.

   --verify goes one step further: it loads the log through the real
   recovery path (Disk_wal.load + Wal.replay) under the restart
   profiler and prints the per-phase profile.

   Exit status: 0 for a clean or torn-tail log (recovery proceeds),
   2 for interior corruption (recovery refuses), 1 on I/O errors. *)

module Wal = Tm_engine.Wal
module Wal_inspect = Tm_engine.Wal_inspect
module Storage = Tm_engine.Storage
module Disk_wal = Tm_engine.Disk_wal
module Profile = Tm_obs.Recovery_profile
module Json = Tm_obs.Json

let verify_profile bytes json =
  let profile = Profile.create () in
  let storage = Storage.of_string bytes in
  match Disk_wal.load ~profile storage with
  | Error c ->
      Fmt.pr "verify: load refused: %a@." Wal.Codec.pp_corruption c;
      `Corrupt
  | Ok dw ->
      let committed, losers =
        Wal.replay ~profile (Wal.records (Disk_wal.wal dw))
      in
      Profile.finish profile;
      if json then
        Fmt.pr "%s@."
          (Json.to_string
             (Json.Obj
                [
                  ("committed_ops", Json.Int (List.length committed));
                  ( "loser_txns",
                    Json.Int (Tm_core.Tid.Set.cardinal losers) );
                  ("profile", Profile.to_json profile);
                ]))
      else begin
        Fmt.pr "verify: replay ok — %d committed ops, %d loser txns@."
          (List.length committed)
          (Tm_core.Tid.Set.cardinal losers);
        Fmt.pr "%a" Profile.pp profile
      end;
      `Ok

let main file json verify =
  let bytes = Cli_util.read_file file in
  let summary = Wal_inspect.inspect bytes in
  if json && not verify then
    Fmt.pr "%s@." (Json.to_string (Wal_inspect.to_json summary))
  else if not verify then Fmt.pr "%a" Wal_inspect.pp summary;
  let verify_status =
    if verify then verify_profile bytes json else `Skipped
  in
  match (summary.Wal_inspect.damage, verify_status) with
  | Wal_inspect.Interior _, _ | _, `Corrupt -> exit 2
  | _ -> ()

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"On-disk WAL image to inspect.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the summary as JSON.")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Additionally load the log through the real recovery path \
           (Disk_wal.load + Wal.replay) under the restart profiler and \
           print the per-phase profile.")

let cmd =
  let doc = "forensics for an on-disk WAL image (no replay required)" in
  Cmd.v
    (Cmd.info "walinspect" ~doc)
    Term.(const main $ file_arg $ json_arg $ verify_arg)

let () = exit (Cmd.eval cmd)
