(* walinspect: forensics for an on-disk WAL image.

   Reads a log file's raw bytes and reports what recovery would see
   without running it: record-kind histogram with byte volumes, LSN
   range, checkpoint coverage (and the live-transaction set carried by
   each checkpoint), and the torn-tail / interior-corruption diagnosis
   with byte offsets — the same resynchronisation scan Disk_wal.load
   uses, so the verdict printed here is the verdict a restart gets.

   --verify goes one step further: it loads the log through the real
   recovery path (Disk_wal.load + Wal.replay) under the restart
   profiler and prints the per-phase profile.

   Exit status: 0 for a clean or torn-tail log (recovery proceeds),
   2 for interior corruption (recovery refuses), 1 on I/O errors. *)

module Wal = Tm_engine.Wal
module Wal_inspect = Tm_engine.Wal_inspect
module Storage = Tm_engine.Storage
module Disk_wal = Tm_engine.Disk_wal
module Profile = Tm_obs.Recovery_profile
module Json = Tm_obs.Json

let verify_profile bytes json workers =
  let profile = Profile.create () in
  let storage = Storage.of_string bytes in
  match Disk_wal.load ~profile ~workers storage with
  | Error c ->
      Fmt.pr "verify: load refused: %a@." Wal.Codec.pp_corruption c;
      `Corrupt
  | Ok dw ->
      (* The partitioned replay plan is what a real restart would build:
         at --workers 1 its committed-op count and loser set are those of
         the historical serial replay, bit for bit. *)
      let plan = Wal.plan ~profile ~workers (Wal.records (Disk_wal.wal dw)) in
      let losers = Wal.plan_losers plan in
      Profile.finish profile;
      if json then
        Fmt.pr "%s@."
          (Json.to_string
             (Json.Obj
                [
                  ("committed_ops", Json.Int plan.Wal.plan_ops);
                  ( "loser_txns",
                    Json.Int (Tm_core.Tid.Set.cardinal losers) );
                  ("profile", Profile.to_json profile);
                ]))
      else begin
        Fmt.pr "verify: replay ok — %d committed ops, %d loser txns@."
          plan.Wal.plan_ops
          (Tm_core.Tid.Set.cardinal losers);
        Fmt.pr "%a" Profile.pp profile
      end;
      `Ok

let main file json verify workers digest shard two_phase =
  if workers < 1 then begin
    Fmt.epr "--workers must be >= 1@.";
    exit 1
  end;
  let bytes = Cli_util.read_file file in
  (* --shard narrows every view (summary, digest, verify) to the frames
     stamped with that shard id — forensic slicing of a mixed-shard
     dump.  The damage verdict below still comes from the full bytes:
     filtering must never hide corruption. *)
  let full_summary = Wal_inspect.inspect bytes in
  let bytes =
    match shard with
    | None -> bytes
    | Some s -> Wal_inspect.select_shard bytes s
  in
  let summary =
    match shard with None -> full_summary | Some _ -> Wal_inspect.inspect bytes
  in
  (* --two-phase swaps the general summary for the 2PC view: per-shard
     prepare/decision/completion counts and every in-doubt prepare with
     its byte offset and the verdict recovery will reach for it. *)
  if two_phase then begin
    let tp = Wal_inspect.two_phase bytes in
    if json then Fmt.pr "%s@." (Json.to_string (Wal_inspect.two_phase_to_json tp))
    else Fmt.pr "%a" Wal_inspect.pp_two_phase tp
  end
  else if json && not verify then
    Fmt.pr "%s@." (Json.to_string (Wal_inspect.to_json summary))
  else if not verify then Fmt.pr "%a" Wal_inspect.pp summary;
  (* The digest pins the recovered state these bytes replay to; the
     harvest workflow records it next to checked-in v1 logs so future
     binaries are held to it. *)
  if digest then begin
    match Wal_inspect.replay_digest bytes with
    | Ok d -> Fmt.pr "replay-digest %s@." d
    | Error c ->
        Fmt.epr "replay digest unavailable: %a@." Wal.Codec.pp_corruption c;
        exit 2
  end;
  let verify_status =
    if verify then verify_profile bytes json workers else `Skipped
  in
  match (full_summary.Wal_inspect.damage, verify_status) with
  | Wal_inspect.Interior _, _ | _, `Corrupt -> exit 2
  | _ -> ()

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"On-disk WAL image to inspect.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the summary as JSON.")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Additionally load the log through the real recovery path \
           (Disk_wal.load + the partitioned replay plan) under the restart \
           profiler and print the per-phase profile.")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "With --verify, decode and plan the replay with $(docv) worker \
           domains (1: serial).  The committed-op count and loser set are \
           identical at any worker count.")

let digest_arg =
  Arg.(
    value & flag
    & info [ "digest" ]
        ~doc:
          "Print the replay digest — a stable hash of the recovered state \
           (committed operations + loser set) these bytes replay to.  The \
           harvest workflow records it next to checked-in old-format logs, \
           pinning their recovery outcome across format versions.")

let shard_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shard" ] ~docv:"N"
        ~doc:
          "Restrict the summary (and --digest / --verify) to frames stamped \
           with shard id $(docv) — forensic slicing of a dump that mixes \
           several shards' frames.  v1 frames carry no shard id and count \
           as shard 0.  The damage verdict and exit status always reflect \
           the full, unfiltered bytes.")

let two_phase_arg =
  Arg.(
    value & flag
    & info [ "two-phase" ]
        ~doc:
          "Print the 2PC forensic view instead of the general summary: \
           per-shard counts of prepare/decision/completion records, plus \
           every in-doubt prepare (a vote with no later local outcome) \
           with its byte offset and the outcome recovery will append — \
           and the evidence (decision frame, surviving phase-2 record, \
           or the presumed-abort default) that outcome rests on.  \
           Composes with --shard and --json.")

let cmd =
  let doc = "forensics for an on-disk WAL image (no replay required)" in
  Cmd.v
    (Cmd.info "walinspect" ~doc)
    Term.(
      const main $ file_arg $ json_arg $ verify_arg $ workers_arg $ digest_arg
      $ shard_arg $ two_phase_arg)

let () = exit (Cmd.eval cmd)
