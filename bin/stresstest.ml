(* stresstest: OS threads against the durable engine with group commit.

   N threads each run M deposit transactions through Concurrent's
   staged commit pipeline over a disk-format WAL whose storage backend
   has a deliberately slow durability barrier — the regime where group
   commit matters.  The run then checks the serial expectation end to
   end:

     - every transaction committed and the final balance equals the sum
       of the committed deposits (the engine lost or duplicated
       nothing);
     - tm_wal_forces_total < committed count (batching actually formed:
       fewer fsyncs than commits);
     - the bytes on storage reload to a log whose replay matches the
       committed state (what was acknowledged is really on disk).

   Exits non-zero on any violation, so CI can gate on it (the seed is
   pinned by the Makefile target). *)

open Tm_core
module Atomic_object = Tm_engine.Atomic_object
module Concurrent = Tm_engine.Concurrent
module Database = Tm_engine.Database
module Disk_wal = Tm_engine.Disk_wal
module Storage = Tm_engine.Storage
module Wal = Tm_engine.Wal
module Metrics = Tm_obs.Metrics
module BA = Tm_adt.Bank_account

let deposit i = Op.invocation ~args:[ Value.int i ] "deposit"
let balance = Op.invocation "balance"

(* ------------------------------------------------------------------ *)
(* --shards mode: OS threads against the sharded engine, a share of the
   transactions crossing shards through 2PC.  Deposits commute (NRBC),
   so with a shared trace recorder attached the run doubles as the
   distributed-tracing producer: every cross-shard commit emits its
   prepare/decision/completion spans under one logical clock.           *)

module Sharded_database = Tm_engine.Sharded_database

let sum_deposits objs =
  List.fold_left
    (fun acc o ->
      List.fold_left
        (fun acc (op : Op.t) ->
          if String.equal op.Op.inv.Op.name "deposit" then
            match op.Op.inv.Op.args with [ Value.Int a ] -> acc + a | _ -> acc
          else acc)
        acc (Atomic_object.committed_ops o))
    0 objs

let sharded_run ~threads ~txns ~seed ~force_delay ~verbose ~trace_file
    ~metrics_file ~shards ~monitor ~monitor_interval =
  let failures = ref 0 in
  let fail fmt =
    Fmt.kstr
      (fun s ->
        incr failures;
        Fmt.pr "FAIL: %s@." s)
      fmt
  in
  let stores = Array.init shards (fun _ -> Storage.memory ()) in
  let dws =
    Array.init shards (fun i ->
        Disk_wal.create ~shard:i (Storage.slow ~force_delay stores.(i)))
  in
  let wals = Array.map Disk_wal.wal dws in
  let objs () =
    List.init (2 * shards) (fun i ->
        Atomic_object.create
          ~spec:(Spec.rename BA.spec (Fmt.str "BA%d" i))
          ~conflict:BA.nrbc_conflict ~recovery:Tm_engine.Recovery.UIP ())
  in
  let db = Sharded_database.create ~wals (objs ()) in
  let trace =
    if trace_file <> None then begin
      let tr = Tm_obs.Trace.create () in
      Sharded_database.set_trace db tr;
      Some tr
    end
    else None
  in
  let names =
    Array.of_list (List.map Atomic_object.name (Sharded_database.objects db))
  in
  let config =
    [
      ("threads", string_of_int threads);
      ("txns", string_of_int txns);
      ("shards", string_of_int shards);
    ]
  in
  let meta schema = Tm_obs.Artifact.make ~schema ~seed ~config () in
  (* The monitor file is what shardmon attaches to: a whole Prometheus
     snapshot, rewritten atomically (tmp + rename) so a reader never
     sees a half-written scrape. *)
  let snapshot file =
    let body =
      Tm_obs.Artifact.prom_header (meta Tm_obs.Artifact.metrics_schema)
      ^ Metrics.to_prometheus (Sharded_database.metrics db)
    in
    let tmp = file ^ ".tmp" in
    Cli_util.with_out tmp (fun oc -> output_string oc body);
    Sys.rename tmp file
  in
  let stop = ref false in
  let monitor_thread =
    Option.map
      (fun file ->
        Thread.create
          (fun () ->
            while not !stop do
              snapshot file;
              Thread.delay monitor_interval
            done)
          ())
      monitor
  in
  let deposited = ref 0 in
  let lock = Mutex.create () in
  let worker i =
    for k = 1 to txns do
      let amount = 1 + ((seed + (i * 31) + (k * 7)) mod 5) in
      let tid = Sharded_database.begin_txn db in
      let o1 = names.((i + k) mod Array.length names) in
      ignore (Sharded_database.invoke db tid ~obj:o1 (deposit amount));
      (* Every fourth transaction escalates to a second object on a
         different home shard: the 2PC path, under thread contention. *)
      let extra =
        if k mod 4 = 0 && shards > 1 then begin
          let n = Array.length names in
          let s1 = Sharded_database.shard_of_object db o1 in
          let rec find j =
            if j >= n then None
            else
              let o = names.((i + k + j) mod n) in
              if Sharded_database.shard_of_object db o <> s1 then Some o
              else find (j + 1)
          in
          match find 1 with
          | Some o2 ->
              ignore (Sharded_database.invoke db tid ~obj:o2 (deposit amount));
              amount
          | None -> 0
        end
        else 0
      in
      match Sharded_database.try_commit db tid with
      | Ok () ->
          Mutex.lock lock;
          deposited := !deposited + amount + extra;
          Mutex.unlock lock
      | Error (obj, _, _) -> fail "thread %d txn %d aborted on %s" i k obj
    done
  in
  let handles = List.init threads (fun i -> Thread.create worker i) in
  List.iter Thread.join handles;
  stop := true;
  Option.iter Thread.join monitor_thread;
  Option.iter snapshot monitor;

  let committed = Sharded_database.committed_count db in
  let reg = Sharded_database.metrics db in
  let cross = Metrics.counter_value reg "tm_shard_cross_txn_total" in
  if committed <> threads * txns then
    fail "committed %d of %d transactions" committed (threads * txns);
  if shards > 1 && cross = 0 then
    fail "no cross-shard transaction ran (2PC path never exercised)";
  let live = sum_deposits (Sharded_database.objects db) in
  if live <> !deposited then
    fail "engine applied deposits summing %d, workers committed %d" live
      !deposited;

  (* What was acknowledged must be on the devices: reload every shard's
     bytes and recover through the real cross-shard path. *)
  Sharded_database.flush db;
  (match
     Array.map
       (fun st ->
         match Disk_wal.load st with
         | Ok dw -> Disk_wal.wal dw
         | Error c -> Fmt.failwith "%a" Wal.Codec.pp_corruption c)
       stores
   with
  | exception Failure msg -> fail "persisted shard log corrupt: %s" msg
  | reloaded -> (
      match Sharded_database.recover ~wals:reloaded ~rebuild:objs () with
      | Error e ->
          fail "recovery from persisted logs failed: %a"
            Tm_engine.Recovery.pp_error e
      | Ok (rdb, _) ->
          let r = sum_deposits (Sharded_database.objects rdb) in
          if r <> !deposited then
            fail "recovered deposits sum %d, workers committed %d" r !deposited)
  );

  if verbose || !failures > 0 then
    Fmt.pr
      "stresstest --shards %d: %d threads x %d txns: %d committed (%d \
       cross-shard 2PC)@."
      shards threads txns committed cross;
  (match (trace_file, trace) with
  | Some file, Some tr ->
      Cli_util.with_out file (fun oc ->
          output_string oc
            (Tm_obs.Artifact.header_line (meta Tm_obs.Artifact.trace_schema));
          output_string oc
            (Tm_obs.Trace.to_jsonl
               ~extra:
                 [
                   ("scenario", "stresstest-sharded");
                   ("shards", string_of_int shards);
                   ("seed", string_of_int seed);
                 ]
               tr));
      Fmt.pr "wrote trace (JSON lines) to %s@." file
  | _ -> ());
  Option.iter
    (fun file ->
      Cli_util.with_out file (fun oc ->
          output_string oc
            (Tm_obs.Artifact.prom_header (meta Tm_obs.Artifact.metrics_schema));
          output_string oc (Metrics.to_prometheus reg));
      Fmt.pr "wrote Prometheus snapshot to %s@." file)
    metrics_file;
  if !failures > 0 then exit 1;
  Fmt.pr "stresstest: OK (%d commits, %d cross-shard)@." committed cross

let rec main threads txns seed force_delay verbose trace_file metrics_file
    shards monitor monitor_interval =
  if monitor <> None && shards = 0 then begin
    Fmt.epr "--monitor requires --shards (shardmon reads sharded metrics)@.";
    exit 1
  end;
  if shards > 0 then
    sharded_run ~threads ~txns ~seed ~force_delay ~verbose ~trace_file
      ~metrics_file ~shards ~monitor ~monitor_interval
  else
  single_run threads txns seed force_delay verbose trace_file metrics_file

and single_run threads txns seed force_delay verbose trace_file metrics_file =
  let failures = ref 0 in
  let fail fmt =
    Fmt.kstr
      (fun s ->
        incr failures;
        Fmt.pr "FAIL: %s@." s)
      fmt
  in
  let store = Storage.memory () in
  let dw = Disk_wal.create (Storage.slow ~force_delay store) in
  let db =
    Concurrent.create_durable ~wal:(Disk_wal.wal dw)
      [
        Atomic_object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
          ~recovery:Tm_engine.Recovery.UIP ();
      ]
  in
  let trace =
    (* Attached before any worker starts; the recorder itself is
       mutex-guarded, so threaded emission (including the flush-wait
       spans emitted outside the engine monitor) is safe. *)
    if trace_file <> None then begin
      let tr = Tm_obs.Trace.create () in
      Database.set_trace (Concurrent.database db) tr;
      Some tr
    end
    else None
  in
  let deposited = ref 0 in
  let lock = Mutex.create () in
  let backoff = Concurrent.default_backoff () in
  let worker i =
    for k = 1 to txns do
      (* Deterministic per-(seed, thread, txn) amount, so the serial
         expectation is reproducible for a pinned seed. *)
      let amount = 1 + ((seed + (i * 31) + (k * 7)) mod 5) in
      match
        Concurrent.with_txn ~max_attempts:1000 ~backoff db (fun h ->
            ignore (Concurrent.invoke h ~obj:"BA" (deposit amount)))
      with
      | Ok () ->
          Mutex.lock lock;
          deposited := !deposited + amount;
          Mutex.unlock lock
      | Error (`Gave_up attempts) -> fail "thread %d txn %d gave up after %d attempts" i k attempts
    done
  in
  let handles = List.init threads (fun i -> Thread.create worker i) in
  List.iter Thread.join handles;

  let committed = Concurrent.committed_count db in
  let reg = Database.metrics (Concurrent.database db) in
  let forces = Metrics.counter_value reg "tm_wal_forces_total" in
  let batches = Metrics.histogram reg "tm_wal_group_commit_batch" in
  let batch_count = Metrics.Histogram.count batches in
  let mean_batch =
    if batch_count = 0 then 0.
    else Metrics.Histogram.sum batches /. float_of_int batch_count
  in

  (* Serial expectation: all deposits commute, so with enough retry
     budget every transaction commits and the balance is their sum. *)
  if committed <> threads * txns then
    fail "committed %d of %d transactions" committed (threads * txns);
  (match Concurrent.with_txn db (fun h -> Concurrent.invoke h ~obj:"BA" balance) with
  | Ok (Value.Int b) ->
      if b <> !deposited then
        fail "balance %d but committed deposits sum to %d" b !deposited
  | Ok v -> fail "unexpected balance %a" Value.pp v
  | Error (`Gave_up _) -> fail "balance transaction gave up");
  let committed = Concurrent.committed_count db in

  (* Group commit must have amortised the barrier. *)
  if forces >= committed then
    fail "%d fsyncs for %d commits: no batching formed" forces committed;

  (* What was acknowledged must be on the device: reload the raw bytes
     and compare replayed state against the log we think we wrote. *)
  (match Disk_wal.load store with
  | Error c -> fail "persisted log corrupt: %a" Wal.Codec.pp_corruption c
  | Ok reloaded ->
      let replayed, _losers = Wal.replay (Wal.records (Disk_wal.wal reloaded)) in
      let total =
        List.fold_left
          (fun acc (op : Op.t) ->
            match op.Op.inv.Op.args with [ Value.Int a ] -> acc + a | _ -> acc)
          0
          (List.filter (fun (op : Op.t) -> String.equal op.Op.inv.Op.name "deposit") replayed)
      in
      if total <> !deposited then
        fail "reloaded log replays %d deposited, engine committed %d" total !deposited);

  if verbose || !failures > 0 then
    Fmt.pr
      "stresstest: %d threads x %d txns: %d committed, %d fsyncs (%.2f \
       commits/fsync, mean batch %.1f), %d futile wakeups, %d retries@."
      threads txns committed forces
      (if forces = 0 then 0. else float_of_int committed /. float_of_int forces)
      mean_batch
      (Concurrent.futile_wakeup_count db)
      (Concurrent.retry_count db);
  (* Dumps use the same artifact formats as simulate, so obsreport can
     analyse a threaded run too.  Threaded timestamps still interleave
     deterministically per event (the recorder's clock is atomic under
     its mutex), though the interleaving itself is scheduling-dependent. *)
  let config =
    [ ("threads", string_of_int threads); ("txns", string_of_int txns) ]
  in
  let meta schema =
    Tm_obs.Artifact.make ~schema ~seed ~config ()
  in
  (match trace_file, trace with
  | Some file, Some tr ->
      Cli_util.with_out file (fun oc ->
          output_string oc
            (Tm_obs.Artifact.header_line (meta Tm_obs.Artifact.trace_schema));
          output_string oc
            (Tm_obs.Trace.to_jsonl
               ~extra:[ ("scenario", "stresstest"); ("setup", "UIP+NRBC") ]
               tr));
      Fmt.pr "wrote trace (JSON lines) to %s@." file
  | _ -> ());
  Option.iter
    (fun file ->
      Cli_util.with_out file (fun oc ->
          output_string oc
            (Tm_obs.Artifact.prom_header (meta Tm_obs.Artifact.metrics_schema));
          output_string oc (Metrics.to_prometheus reg));
      Fmt.pr "wrote Prometheus snapshot to %s@." file)
    metrics_file;
  if !failures > 0 then exit 1;
  Fmt.pr "stresstest: OK (%d commits over %d fsyncs)@." committed forces

open Cmdliner

let threads_arg =
  Arg.(value & opt int 8 & info [ "threads"; "j" ] ~doc:"OS threads.")

let txns_arg =
  Arg.(value & opt int 50 & info [ "txns"; "n" ] ~doc:"Transactions per thread.")

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Seed for the deposit amounts.")

let force_delay_arg =
  Arg.(
    value & opt float 0.0005
    & info [ "force-delay" ] ~docv:"SECONDS"
        ~doc:"Simulated device barrier latency (what makes batching form).")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the run summary even on success.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record transaction spans and write them to $(docv) as JSON lines.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write a Prometheus text snapshot of the run's registry to $(docv).")

let shards_arg =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Run the workload against a sharded engine with $(docv) shard WALs \
           instead of the single durable engine; every fourth transaction \
           per thread touches a second shard and commits through 2PC.  With \
           --trace, one shared recorder spans all shards, so the dump \
           carries the cross-shard prepare/decision/completion spans.")

let monitor_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "monitor" ] ~docv:"FILE"
        ~doc:
          "With --shards: a background thread periodically rewrites $(docv) \
           (atomically) with a whole Prometheus snapshot of the live \
           registry — the file shardmon attaches to while the run is going.")

let monitor_interval_arg =
  Arg.(
    value & opt float 0.2
    & info [ "monitor-interval" ] ~docv:"SECONDS"
        ~doc:"Delay between --monitor snapshot rewrites.")

let cmd =
  let doc = "threaded group-commit stress against the durable engine" in
  Cmd.v
    (Cmd.info "stresstest" ~doc)
    Term.(
      const main $ threads_arg $ txns_arg $ seed_arg $ force_delay_arg $ verbose_arg
      $ trace_arg $ metrics_arg $ shards_arg $ monitor_arg
      $ monitor_interval_arg)

let () = exit (Cmd.eval cmd)
