(* stresstest: OS threads against the durable engine with group commit.

   N threads each run M deposit transactions through Concurrent's
   staged commit pipeline over a disk-format WAL whose storage backend
   has a deliberately slow durability barrier — the regime where group
   commit matters.  The run then checks the serial expectation end to
   end:

     - every transaction committed and the final balance equals the sum
       of the committed deposits (the engine lost or duplicated
       nothing);
     - tm_wal_forces_total < committed count (batching actually formed:
       fewer fsyncs than commits);
     - the bytes on storage reload to a log whose replay matches the
       committed state (what was acknowledged is really on disk).

   Exits non-zero on any violation, so CI can gate on it (the seed is
   pinned by the Makefile target). *)

open Tm_core
module Atomic_object = Tm_engine.Atomic_object
module Concurrent = Tm_engine.Concurrent
module Database = Tm_engine.Database
module Disk_wal = Tm_engine.Disk_wal
module Storage = Tm_engine.Storage
module Wal = Tm_engine.Wal
module Metrics = Tm_obs.Metrics
module BA = Tm_adt.Bank_account

let deposit i = Op.invocation ~args:[ Value.int i ] "deposit"
let balance = Op.invocation "balance"

let main threads txns seed force_delay verbose trace_file metrics_file =
  let failures = ref 0 in
  let fail fmt =
    Fmt.kstr
      (fun s ->
        incr failures;
        Fmt.pr "FAIL: %s@." s)
      fmt
  in
  let store = Storage.memory () in
  let dw = Disk_wal.create (Storage.slow ~force_delay store) in
  let db =
    Concurrent.create_durable ~wal:(Disk_wal.wal dw)
      [
        Atomic_object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
          ~recovery:Tm_engine.Recovery.UIP ();
      ]
  in
  let trace =
    (* Attached before any worker starts; the recorder itself is
       mutex-guarded, so threaded emission (including the flush-wait
       spans emitted outside the engine monitor) is safe. *)
    if trace_file <> None then begin
      let tr = Tm_obs.Trace.create () in
      Database.set_trace (Concurrent.database db) tr;
      Some tr
    end
    else None
  in
  let deposited = ref 0 in
  let lock = Mutex.create () in
  let backoff = Concurrent.default_backoff () in
  let worker i =
    for k = 1 to txns do
      (* Deterministic per-(seed, thread, txn) amount, so the serial
         expectation is reproducible for a pinned seed. *)
      let amount = 1 + ((seed + (i * 31) + (k * 7)) mod 5) in
      match
        Concurrent.with_txn ~max_attempts:1000 ~backoff db (fun h ->
            ignore (Concurrent.invoke h ~obj:"BA" (deposit amount)))
      with
      | Ok () ->
          Mutex.lock lock;
          deposited := !deposited + amount;
          Mutex.unlock lock
      | Error (`Gave_up attempts) -> fail "thread %d txn %d gave up after %d attempts" i k attempts
    done
  in
  let handles = List.init threads (fun i -> Thread.create worker i) in
  List.iter Thread.join handles;

  let committed = Concurrent.committed_count db in
  let reg = Database.metrics (Concurrent.database db) in
  let forces = Metrics.counter_value reg "tm_wal_forces_total" in
  let batches = Metrics.histogram reg "tm_wal_group_commit_batch" in
  let batch_count = Metrics.Histogram.count batches in
  let mean_batch =
    if batch_count = 0 then 0.
    else Metrics.Histogram.sum batches /. float_of_int batch_count
  in

  (* Serial expectation: all deposits commute, so with enough retry
     budget every transaction commits and the balance is their sum. *)
  if committed <> threads * txns then
    fail "committed %d of %d transactions" committed (threads * txns);
  (match Concurrent.with_txn db (fun h -> Concurrent.invoke h ~obj:"BA" balance) with
  | Ok (Value.Int b) ->
      if b <> !deposited then
        fail "balance %d but committed deposits sum to %d" b !deposited
  | Ok v -> fail "unexpected balance %a" Value.pp v
  | Error (`Gave_up _) -> fail "balance transaction gave up");
  let committed = Concurrent.committed_count db in

  (* Group commit must have amortised the barrier. *)
  if forces >= committed then
    fail "%d fsyncs for %d commits: no batching formed" forces committed;

  (* What was acknowledged must be on the device: reload the raw bytes
     and compare replayed state against the log we think we wrote. *)
  (match Disk_wal.load store with
  | Error c -> fail "persisted log corrupt: %a" Wal.Codec.pp_corruption c
  | Ok reloaded ->
      let replayed, _losers = Wal.replay (Wal.records (Disk_wal.wal reloaded)) in
      let total =
        List.fold_left
          (fun acc (op : Op.t) ->
            match op.Op.inv.Op.args with [ Value.Int a ] -> acc + a | _ -> acc)
          0
          (List.filter (fun (op : Op.t) -> String.equal op.Op.inv.Op.name "deposit") replayed)
      in
      if total <> !deposited then
        fail "reloaded log replays %d deposited, engine committed %d" total !deposited);

  if verbose || !failures > 0 then
    Fmt.pr
      "stresstest: %d threads x %d txns: %d committed, %d fsyncs (%.2f \
       commits/fsync, mean batch %.1f), %d futile wakeups, %d retries@."
      threads txns committed forces
      (if forces = 0 then 0. else float_of_int committed /. float_of_int forces)
      mean_batch
      (Concurrent.futile_wakeup_count db)
      (Concurrent.retry_count db);
  (* Dumps use the same artifact formats as simulate, so obsreport can
     analyse a threaded run too.  Threaded timestamps still interleave
     deterministically per event (the recorder's clock is atomic under
     its mutex), though the interleaving itself is scheduling-dependent. *)
  let config =
    [ ("threads", string_of_int threads); ("txns", string_of_int txns) ]
  in
  let meta schema =
    Tm_obs.Artifact.make ~schema ~seed ~config ()
  in
  (match trace_file, trace with
  | Some file, Some tr ->
      Cli_util.with_out file (fun oc ->
          output_string oc
            (Tm_obs.Artifact.header_line (meta Tm_obs.Artifact.trace_schema));
          output_string oc
            (Tm_obs.Trace.to_jsonl
               ~extra:[ ("scenario", "stresstest"); ("setup", "UIP+NRBC") ]
               tr));
      Fmt.pr "wrote trace (JSON lines) to %s@." file
  | _ -> ());
  Option.iter
    (fun file ->
      Cli_util.with_out file (fun oc ->
          output_string oc
            (Tm_obs.Artifact.prom_header (meta Tm_obs.Artifact.metrics_schema));
          output_string oc (Metrics.to_prometheus reg));
      Fmt.pr "wrote Prometheus snapshot to %s@." file)
    metrics_file;
  if !failures > 0 then exit 1;
  Fmt.pr "stresstest: OK (%d commits over %d fsyncs)@." committed forces

open Cmdliner

let threads_arg =
  Arg.(value & opt int 8 & info [ "threads"; "j" ] ~doc:"OS threads.")

let txns_arg =
  Arg.(value & opt int 50 & info [ "txns"; "n" ] ~doc:"Transactions per thread.")

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Seed for the deposit amounts.")

let force_delay_arg =
  Arg.(
    value & opt float 0.0005
    & info [ "force-delay" ] ~docv:"SECONDS"
        ~doc:"Simulated device barrier latency (what makes batching form).")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the run summary even on success.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record transaction spans and write them to $(docv) as JSON lines.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write a Prometheus text snapshot of the run's registry to $(docv).")

let cmd =
  let doc = "threaded group-commit stress against the durable engine" in
  Cmd.v
    (Cmd.info "stresstest" ~doc)
    Term.(
      const main $ threads_arg $ txns_arg $ seed_arg $ force_delay_arg $ verbose_arg
      $ trace_arg $ metrics_arg)

let () = exit (Cmd.eval cmd)
