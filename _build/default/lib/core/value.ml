type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list

let unit = Unit
let bool b = Bool b
let int i = Int i
let str s = Str s
let list l = List l
let ok = Str "ok"
let no = Str "no"

let rec equal v w =
  match v, w with
  | Unit, Unit -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Str a, Str b -> String.equal a b
  | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
  | (Unit | Bool _ | Int _ | Str _ | List _), _ -> false

let tag = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Str _ -> 3
  | List _ -> 4

let rec compare v w =
  match v, w with
  | Unit, Unit -> 0
  | Bool a, Bool b -> Bool.compare a b
  | Int a, Int b -> Int.compare a b
  | Str a, Str b -> String.compare a b
  | List a, List b -> List.compare compare a b
  | (Unit | Bool _ | Int _ | Str _ | List _), _ -> Int.compare (tag v) (tag w)

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.string ppf s
  | List l -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ";") pp) l

let to_string v = Fmt.str "%a" pp v
let get_int = function Int i -> i | v -> invalid_arg ("Value.get_int: " ^ to_string v)
let get_bool = function Bool b -> b | v -> invalid_arg ("Value.get_bool: " ^ to_string v)
let get_str = function Str s -> s | v -> invalid_arg ("Value.get_str: " ^ to_string v)
let get_list = function List l -> l | v -> invalid_arg ("Value.get_list: " ^ to_string v)
