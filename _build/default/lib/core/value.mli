(** Universal value type for operation arguments and results.

    The framework of the paper treats operations on abstract data types
    generically: an operation is an invocation (name and arguments) paired
    with a response.  Arguments and responses are drawn from this small
    universal type so that histories, conflict tables and checkers work
    uniformly across all ADTs. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list

val unit : t
val bool : bool -> t
val int : int -> t
val str : string -> t
val list : t list -> t

(** [ok] is the conventional success response ["ok"], and [no] the
    conventional refusal response ["no"], as used for the paper's bank
    account example. *)
val ok : t

val no : t

val equal : t -> t -> bool
val compare : t -> t -> int

(** [pp] prints values compactly: integers bare, strings bare, lists in
    brackets, so that operations render like the paper's
    [BA:[withdraw(3),ok]]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Partial projections.  Raise [Invalid_argument] when the value has a
    different shape; intended for ADT implementations that know the shape
    of their own arguments. *)

val get_int : t -> int
val get_bool : t -> bool
val get_str : t -> string
val get_list : t -> t list
