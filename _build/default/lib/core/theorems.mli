(** Counterexample engines for Theorems 9 and 10 (Section 7).

    - Theorem 9: [I(X,Spec,UIP,Conflict)] is correct iff
      [NRBC(Spec) ⊆ Conflict].
    - Theorem 10: [I(X,Spec,DU,Conflict)] is correct iff
      [NFC(Spec) ⊆ Conflict].

    The "only if" directions are constructive: from a pair [(P,Q)] in the
    required relation but missing from [Conflict], the proofs build a
    history permitted by the implementation model that is not dynamic
    atomic.  This module executes those constructions, so tests (and the
    benchmark harness) can regenerate the paper's counterexamples for any
    specification and any deficient conflict relation. *)

type cex = {
  requested : Op.t;  (** the operation executed second (P in the proofs) *)
  held : Op.t;  (** the operation executed first (Q) *)
  alpha : Op.t list;  (** context executed and committed by transaction A *)
  rho : Op.t list;  (** distinguishing future executed by transaction D *)
  history : History.t;  (** the non-dynamic-atomic history *)
  failing_order : Tid.t list;
      (** an order consistent with [precedes] in which it does not
          serialize *)
}

val pp_cex : Format.formatter -> cex -> unit

(** [uip_counterexample spec p ~requested ~held] — if [requested] does not
    right-commute-backward with [held] (within bounds [p]), the Theorem 9
    history: A runs α and commits; B runs [held]; C runs [requested];
    B and C commit; D runs ρ and commits.  It is permitted by
    [I(X,Spec,UIP,Conflict)] for any [Conflict] not relating
    [(requested, held)], and is not serializable in the order A-C-B-D. *)
val uip_counterexample :
  Spec.t -> Commutativity.params -> requested:Op.t -> held:Op.t -> cex option

(** [du_counterexample spec p ~requested ~held] — likewise for Theorem 10:
    if the two operations do not commute forward, builds whichever of the
    proof's two cases applies ([α·held·requested ∉ Spec], or an
    equieffectiveness failure with the commits ordered so that the commit
    order is the legal one and the swapped order fails). *)
val du_counterexample :
  Spec.t -> Commutativity.params -> requested:Op.t -> held:Op.t -> cex option

(** [find_missing_pair spec ~required ~given] is the first
    [(requested, held)] generator pair in [required] but not in [given]. *)
val find_missing_pair :
  Spec.t -> required:Conflict.t -> given:Conflict.t -> (Op.t * Op.t) option

(** [uip_refute spec p conflict] — end-to-end "only if" for Theorem 9:
    find a NRBC pair missing from [conflict] and build its counterexample.
    [None] means no generator pair refutes [conflict] (consistent with
    [NRBC ⊆ Conflict] over the sample). *)
val uip_refute : Spec.t -> Commutativity.params -> Conflict.t -> cex option

(** Likewise for Theorem 10 with NFC and DU. *)
val du_refute : Spec.t -> Commutativity.params -> Conflict.t -> cex option

(** {1 Probing arbitrary views}

    Section 5 leaves open "whether there are other View functions that
    place weaker constraints on concurrency control than UIP or DU".
    [probe_required_pairs] attacks the question empirically for any view:
    a pair [(p, q)] is {e required} if, with the total conflict relation
    minus exactly that pair, the bounded enumeration of
    [L(I(X,Spec,View,·))] contains a history that is not online dynamic
    atomic.

    For UIP and DU the probe must rediscover NRBC and NFC restricted to
    the probed sample (the test suite checks it does); for other views the
    result is a lower bound on the required conflicts — pairwise probing
    cannot witness requirements that only show up when several pairs are
    simultaneously permitted. *)
val probe_required_pairs :
  Spec.t -> View.t -> ops:Op.t list -> txns:int -> ops_per_txn:int ->
  max_events:int -> limit:int -> (Op.t * Op.t) list
