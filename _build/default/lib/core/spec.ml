module type S = sig
  type state

  val name : string
  val initial : state
  val equal_state : state -> state -> bool
  val compare_state : state -> state -> int
  val pp_state : Format.formatter -> state -> unit
  val respond : state -> Op.invocation -> (Value.t * state) list
  val generators : Op.t list
end

type t = Packed : (module S with type state = 's) -> t

let pack m = Packed m

let name (Packed (module S)) = S.name
let generators (Packed (module S)) = S.generators

let rename (Packed (module S)) new_name =
  let module R = struct
    include S

    let name = new_name
    let generators = List.map (fun (op : Op.t) -> { op with obj = new_name }) S.generators
  end in
  Packed (module R : S with type state = R.state)

let apply (type s) (module S : S with type state = s) (st : s) (op : Op.t) : s list =
  List.filter_map
    (fun (r, st') -> if Value.equal r op.Op.res then Some st' else None)
    (S.respond st op.Op.inv)

(* Fold an operation sequence over a *set* of states (dedup via sort). *)
let after_states (type s) (module S : S with type state = s) (states : s list) ops =
  let dedup l = List.sort_uniq S.compare_state l in
  List.fold_left
    (fun sts op -> dedup (List.concat_map (fun st -> apply (module S) st op) sts))
    (dedup states) ops

let legal (Packed (module S)) ops = after_states (module S) [ S.initial ] ops <> []

let responses (Packed (module S)) ops inv =
  let reached = after_states (module S) [ S.initial ] ops in
  List.concat_map (fun st -> List.map fst (S.respond st inv)) reached
  |> List.sort_uniq Value.compare
