type t = {
  name : string;
  test : requested:Op.t -> held:Op.t -> bool;
}

let make ~name test = { name; test }
let name t = t.name
let conflicts t = t.test
let none = make ~name:"none" (fun ~requested:_ ~held:_ -> false)
let all = make ~name:"all" (fun ~requested:_ ~held:_ -> true)

let mem_pair pairs ~requested ~held =
  List.exists (fun (r, h) -> Op.equal r requested && Op.equal h held) pairs

let of_pairs ~name pairs = make ~name (mem_pair pairs)

let without rel pairs =
  make ~name:(rel.name ^ "-minus") (fun ~requested ~held ->
      rel.test ~requested ~held && not (mem_pair pairs ~requested ~held))

let union r1 r2 =
  make
    ~name:(r1.name ^ "\xe2\x88\xaa" ^ r2.name)
    (fun ~requested ~held -> r1.test ~requested ~held || r2.test ~requested ~held)

let symmetric_closure rel =
  make
    ~name:(rel.name ^ "-sym")
    (fun ~requested ~held ->
      rel.test ~requested ~held || rel.test ~requested:held ~held:requested)

let invocation_blind spec rel =
  let gens = Spec.generators spec in
  let variants (op : Op.t) =
    match List.filter (fun (g : Op.t) -> Op.equal_invocation g.inv op.inv) gens with
    | [] -> [ op ]  (* invocation outside the alphabet: use the operation itself *)
    | vs -> vs
  in
  make
    ~name:(rel.name ^ "-inv")
    (fun ~requested ~held ->
      List.exists
        (fun r -> List.exists (fun h -> rel.test ~requested:r ~held:h) (variants held))
        (variants requested))

(* Memoise a binary operation relation; the decision procedures behind
   [nfc]/[nrbc] re-explore the specification on every query. *)
let memoize test =
  let table = Hashtbl.create 64 in
  fun ~requested ~held ->
    let key = (requested, held) in
    match Hashtbl.find_opt table key with
    | Some v -> v
    | None ->
        let v = test ~requested ~held in
        Hashtbl.add table key v;
        v

let nfc spec params =
  make ~name:"NFC" (memoize (fun ~requested ~held -> Commutativity.nfc spec params requested held))

let nrbc spec params =
  make ~name:"NRBC"
    (memoize (fun ~requested ~held -> Commutativity.nrbc spec params requested held))

let read_write ~name ~is_read =
  make ~name (fun ~requested ~held -> not (is_read requested && is_read held))

let is_symmetric rel ops =
  List.for_all
    (fun p ->
      List.for_all
        (fun q -> rel.test ~requested:p ~held:q = rel.test ~requested:q ~held:p)
        ops)
    ops

let pairs rel ops =
  List.concat_map
    (fun p ->
      List.filter_map (fun q -> if rel.test ~requested:p ~held:q then Some (p, q) else None) ops)
    ops
