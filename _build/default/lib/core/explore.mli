(** Bounded exploration of a specification's sequence space.

    The relations of Sections 6 and 7 quantify over {e all} operation
    sequences α and all futures γ/ρ.  Two observations make them checkable:

    - the truth of each condition depends on a sequence α only through the
      {e set of states} α can reach (subset semantics), so quantifying over
      α reduces to quantifying over reachable state-sets; and
    - [αγ ∈ Spec] iff stepping the state-set of α through γ stays
      non-empty, so language containment between two state-sets can be
      checked by a joint breadth-first search over pairs of sets.

    State spaces may be infinite (e.g. bank balances), so both searches are
    depth-bounded over the specification's {!Spec.S.generators} alphabet;
    the procedures are semi-decisions whose positive answers read
    "holds for all contexts/futures within the bound".  Each shipped ADT
    also provides a closed-form relation carrying the unbounded claim,
    cross-validated against these procedures by property tests. *)

module Make (S : Spec.S) : sig
  module States : Set.S with type elt = S.state

  val initial_set : States.t

  (** [step sts op] is the set of states reachable from [sts] by the
      operation [op]. *)
  val step : States.t -> Op.t -> States.t

  (** [after sts ops] folds {!step} over the sequence. *)
  val after : States.t -> Op.t list -> States.t

  (** [legal ops] — is [ops ∈ Spec] (from the initial state)? *)
  val legal : Op.t list -> bool

  (** [reachable ~depth ~alphabet] enumerates every distinct state-set
      reachable from [{initial}] by a sequence of at most [depth]
      operations drawn from [alphabet], paired with one representative
      sequence (a shortest one, found breadth-first). *)
  val reachable : depth:int -> alphabet:Op.t list -> (Op.t list * States.t) list

  (** [contained ~depth ~alphabet u t] checks [L(u) ⊆ L(t)] — every
      sequence of at most [depth] alphabet operations executable from [u]
      is executable from [t].  [None] means containment holds to the
      bound; [Some gamma] is a witness sequence executable from [u] but
      not from [t] (possibly the empty sequence, when [u] is non-empty and
      [t] empty). *)
  val contained :
    depth:int -> alphabet:Op.t list -> States.t -> States.t -> Op.t list option
end
