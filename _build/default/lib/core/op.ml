type invocation = {
  name : string;
  args : Value.t list;
}

type t = {
  obj : string;
  inv : invocation;
  res : Value.t;
}

let invocation ?(args = []) name = { name; args }
let make ~obj ?(args = []) name res = { obj; inv = { name; args }; res }

let equal_invocation i j =
  String.equal i.name j.name
  && List.length i.args = List.length j.args
  && List.for_all2 Value.equal i.args j.args

let compare_invocation i j =
  let c = String.compare i.name j.name in
  if c <> 0 then c else List.compare Value.compare i.args j.args

let equal p q =
  String.equal p.obj q.obj && equal_invocation p.inv q.inv && Value.equal p.res q.res

let compare p q =
  let c = String.compare p.obj q.obj in
  if c <> 0 then c
  else
    let c = compare_invocation p.inv q.inv in
    if c <> 0 then c else Value.compare p.res q.res

let pp_invocation ppf { name; args } =
  match args with
  | [] -> Fmt.string ppf name
  | args -> Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ",") Value.pp) args

let pp ppf op = Fmt.pf ppf "%s:[%a,%a]" op.obj pp_invocation op.inv Value.pp op.res
let pp_short ppf op = Fmt.pf ppf "%a\xe2\x86\x92%a" pp_invocation op.inv Value.pp op.res
let to_string op = Fmt.str "%a" pp op

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
