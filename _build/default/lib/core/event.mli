(** Events at the transaction/object interface.

    Section 2 of the paper distinguishes four kinds of events: invocation
    events [<inv,X,A>], response events [<res,X,A>], commit events
    [<commit,X,A>] and abort events [<abort,X,A>].  A computation is a
    finite sequence of such events (a history, once well-formed). *)

type t =
  | Invoke of { obj : string; tid : Tid.t; inv : Op.invocation }
  | Respond of { obj : string; tid : Tid.t; res : Value.t }
  | Commit of { obj : string; tid : Tid.t }
  | Abort of { obj : string; tid : Tid.t }

val invoke : obj:string -> tid:Tid.t -> Op.invocation -> t
val respond : obj:string -> tid:Tid.t -> Value.t -> t
val commit : obj:string -> tid:Tid.t -> t
val abort : obj:string -> tid:Tid.t -> t

(** [obj e] is the object the event involves. *)
val obj : t -> string

(** [tid e] is the transaction the event involves. *)
val tid : t -> Tid.t

val is_invoke : t -> bool
val is_respond : t -> bool
val is_commit : t -> bool
val is_abort : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

(** [pp] renders like the paper, e.g. ["<withdraw(3), BA, B>"]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
