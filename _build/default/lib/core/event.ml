type t =
  | Invoke of { obj : string; tid : Tid.t; inv : Op.invocation }
  | Respond of { obj : string; tid : Tid.t; res : Value.t }
  | Commit of { obj : string; tid : Tid.t }
  | Abort of { obj : string; tid : Tid.t }

let invoke ~obj ~tid inv = Invoke { obj; tid; inv }
let respond ~obj ~tid res = Respond { obj; tid; res }
let commit ~obj ~tid = Commit { obj; tid }
let abort ~obj ~tid = Abort { obj; tid }

let obj = function
  | Invoke { obj; _ } | Respond { obj; _ } | Commit { obj; _ } | Abort { obj; _ } -> obj

let tid = function
  | Invoke { tid; _ } | Respond { tid; _ } | Commit { tid; _ } | Abort { tid; _ } -> tid

let is_invoke = function Invoke _ -> true | Respond _ | Commit _ | Abort _ -> false
let is_respond = function Respond _ -> true | Invoke _ | Commit _ | Abort _ -> false
let is_commit = function Commit _ -> true | Invoke _ | Respond _ | Abort _ -> false
let is_abort = function Abort _ -> true | Invoke _ | Respond _ | Commit _ -> false

let equal e f =
  match e, f with
  | Invoke a, Invoke b ->
      String.equal a.obj b.obj && Tid.equal a.tid b.tid && Op.equal_invocation a.inv b.inv
  | Respond a, Respond b ->
      String.equal a.obj b.obj && Tid.equal a.tid b.tid && Value.equal a.res b.res
  | Commit a, Commit b -> String.equal a.obj b.obj && Tid.equal a.tid b.tid
  | Abort a, Abort b -> String.equal a.obj b.obj && Tid.equal a.tid b.tid
  | (Invoke _ | Respond _ | Commit _ | Abort _), _ -> false

let tag = function Invoke _ -> 0 | Respond _ -> 1 | Commit _ -> 2 | Abort _ -> 3

let compare e f =
  match e, f with
  | Invoke a, Invoke b ->
      let c = String.compare a.obj b.obj in
      if c <> 0 then c
      else
        let c = Tid.compare a.tid b.tid in
        if c <> 0 then c else Op.compare_invocation a.inv b.inv
  | Respond a, Respond b ->
      let c = String.compare a.obj b.obj in
      if c <> 0 then c
      else
        let c = Tid.compare a.tid b.tid in
        if c <> 0 then c else Value.compare a.res b.res
  | Commit a, Commit b ->
      let c = String.compare a.obj b.obj in
      if c <> 0 then c else Tid.compare a.tid b.tid
  | Abort a, Abort b ->
      let c = String.compare a.obj b.obj in
      if c <> 0 then c else Tid.compare a.tid b.tid
  | (Invoke _ | Respond _ | Commit _ | Abort _), _ -> Int.compare (tag e) (tag f)

let pp ppf = function
  | Invoke { obj; tid; inv } -> Fmt.pf ppf "<%a, %s, %a>" Op.pp_invocation inv obj Tid.pp tid
  | Respond { obj; tid; res } -> Fmt.pf ppf "<%a, %s, %a>" Value.pp res obj Tid.pp tid
  | Commit { obj; tid } -> Fmt.pf ppf "<commit, %s, %a>" obj Tid.pp tid
  | Abort { obj; tid } -> Fmt.pf ppf "<abort, %s, %a>" obj Tid.pp tid

let to_string e = Fmt.str "%a" pp e
