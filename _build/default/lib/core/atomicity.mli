(** Atomicity, serializability, and dynamic atomicity (Section 3).

    - A serial failure-free history is {e acceptable} at [X] if
      [Opseq(H|X) ∈ Spec(X)]; acceptable if acceptable at every object.
    - A failure-free [H] is {e serializable in order T} if [Serial(H,T)]
      is acceptable, and {e serializable} if some order works.
    - [H] is {e atomic} if [permanent(H)] is serializable.
    - [H] is {e dynamic atomic} if [permanent(H)] is serializable in
      {e every} total order consistent with [precedes(H)].
    - [H] is {e online dynamic atomic} (Section 7) if for every commit set
      [CS], [H|CS] is serializable in every total order consistent with
      [precedes(H|CS)].  Online dynamic atomicity implies dynamic
      atomicity.

    All checkers are exact (they enumerate the quantified orders), intended
    for the small histories of tests, model checking and counterexample
    validation. *)

(** Maps each object name to its serial specification. *)
type env = string -> Spec.t

(** [env_of_list specs] builds an environment from named specifications
    (names taken from [Spec.name]); raises [Not_found] on lookup of an
    unknown object. *)
val env_of_list : Spec.t list -> env

(** [acceptable env h] — [h] must be serial and failure-free. *)
val acceptable : env -> History.t -> bool

(** [serializable_in env h order] — is failure-free [h] serializable in
    [order]?  [order] must contain every transaction of [h]. *)
val serializable_in : env -> History.t -> Tid.t list -> bool

(** [serializable env h] finds an order in which failure-free [h]
    serializes, if any (searched with prefix pruning). *)
val serializable : env -> History.t -> Tid.t list option

val atomic : env -> History.t -> bool

type verdict =
  | Ok
  | Counterexample of Tid.t list
      (** an order consistent with [precedes] in which the history does
          not serialize *)

val is_ok : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit

val dynamic_atomic : env -> History.t -> verdict

(** [online_dynamic_atomic env h] checks every commit set
    [Committed(h) ⊆ CS ⊆ Committed(h) ∪ Active(h)]. *)
val online_dynamic_atomic : env -> History.t -> verdict

(** Boolean shorthands. *)

val is_dynamic_atomic : env -> History.t -> bool
val is_online_dynamic_atomic : env -> History.t -> bool
