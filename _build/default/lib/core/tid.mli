(** Transaction identifiers.

    The paper ranges over transactions with letters A, B, C; identifiers
    here are integers, pretty-printed as letters for the first 26 so that
    example histories render exactly like the paper's. *)

type t

val of_int : int -> t
val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [pp] renders ids 0..25 as "A".."Z" and larger ids as "T<n>". *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Convenience ids used throughout tests and examples. *)

val a : t
val b : t
val c : t
val d : t
val e : t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
