type t = {
  name : string;
  view : History.t -> Tid.t -> Op.t list;
}

let make ~name view = { name; view }
let name t = t.name
let apply t h a = t.view h a

let uip =
  make ~name:"UIP" (fun h _a ->
      let non_aborted = Tid.Set.diff (History.transactions h) (History.aborted h) in
      History.opseq (History.project_tids h non_aborted))

let du =
  make ~name:"DU" (fun h a ->
      let committed = History.permanent h in
      let in_commit_order = History.serial committed (History.commit_order h) in
      History.opseq in_commit_order @ History.opseq (History.project_tid h a))
