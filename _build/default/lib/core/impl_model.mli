(** The abstract implementation model [I(X, Spec, View, Conflict)]
    (Section 4).

    An implementation of object [X] is the I/O automaton whose state is the
    history of events so far, whose input actions (invocation, commit,
    abort events) are always enabled, and whose response events
    [<R, X, A>] are enabled exactly when:

    + [A] has a pending invocation [I];
    + for every {e other} active transaction [B] and every operation [P]
      in [Opseq(s|B)], [(X:[I,R], P) ∉ Conflict] (locks are implicit in the
      operations a transaction has executed and are released when it
      commits or aborts);
    + [View(s,A) · X:[I,R] ∈ Spec(X)].

    An implementation is {e correct} iff every history in its language is
    dynamic atomic.  Theorems 9 and 10 characterise the conflict relations
    that make [I] correct for the UIP and DU views respectively.

    Beyond the enabledness test the module provides history {e generators}
    — exhaustive, bounded enumeration and seeded random walks over
    [L(I(X,Spec,View,Conflict))] — used to model-check the "if" directions
    of the theorems and to exercise the checkers. *)

type t = {
  spec : Spec.t;
  view : View.t;
  conflict : Conflict.t;
}

val make : spec:Spec.t -> view:View.t -> conflict:Conflict.t -> t

(** [response_enabled i h a r] — are the three response preconditions
    satisfied for transaction [a] responding [r] in state [h]? *)
val response_enabled : t -> History.t -> Tid.t -> Value.t -> bool

(** [enabled_responses i h a] is every response value enabled for [a]'s
    pending invocation (empty when blocked by a conflict, when no response
    is legal after the view, or when nothing is pending). *)
val enabled_responses : t -> History.t -> Tid.t -> Value.t list

(** [blocked i h a] — [a] has a pending invocation with at least one
    response legal after the view, but every such response conflicts with
    an operation of another active transaction. *)
val blocked : t -> History.t -> Tid.t -> bool

(** [valid i h] — is [h ∈ L(I)]?  Checks well-formedness and that each
    response event was enabled when it occurred.  Invocation, commit and
    abort events are inputs and always enabled. *)
val valid : t -> History.t -> bool

(** {1 History generators} *)

(** Shared knobs: [txns] are the transactions allowed to run;
    [ops_per_txn] caps the operations each executes; every generated event
    sequence is well formed and every response is enabled, so every result
    is in [L(I)].  Invocations are drawn from the specification's
    generators (deduplicated). *)

(** [enumerate i ~txns ~ops_per_txn ~max_events ~limit] lists histories of
    [L(I)] breadth-first, including all intermediate prefixes, up to
    [limit] histories of at most [max_events] events. *)
val enumerate :
  t -> txns:Tid.t list -> ops_per_txn:int -> max_events:int -> limit:int -> History.t list

(** [random i ~txns ~ops_per_txn ~steps ~rng] performs a random walk:
    at each step one enabled action (invoke, respond, commit, abort — with
    abort made rarer) is chosen uniformly.  Returns the final history;
    every prefix is in [L(I)]. *)
val random :
  t -> txns:Tid.t list -> ops_per_txn:int -> steps:int -> rng:Random.State.t -> History.t
