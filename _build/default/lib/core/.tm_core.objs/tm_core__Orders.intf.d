lib/core/orders.mli: Tid
