lib/core/history.ml: Event Fmt Hashtbl List Op Option Seq String Tid
