lib/core/equieffect.mli: Format Op Spec
