lib/core/theorems.mli: Commutativity Conflict Format History Op Spec Tid View
