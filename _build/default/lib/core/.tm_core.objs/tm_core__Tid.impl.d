lib/core/tid.ml: Char Fmt Int Map Set
