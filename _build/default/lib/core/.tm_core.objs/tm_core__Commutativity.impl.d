lib/core/commutativity.ml: Array Explore Fmt List Op Option Spec String
