lib/core/explore.mli: Op Set Spec
