lib/core/op.mli: Format Map Set Value
