lib/core/op.ml: Fmt List Map Set String Value
