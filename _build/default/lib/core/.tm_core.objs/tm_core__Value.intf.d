lib/core/value.mli: Format
