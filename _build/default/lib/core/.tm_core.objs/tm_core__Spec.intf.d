lib/core/spec.mli: Format Op Value
