lib/core/atomicity.mli: Format History Spec Tid
