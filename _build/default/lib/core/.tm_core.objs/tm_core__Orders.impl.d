lib/core/orders.ml: List Tid
