lib/core/tid.mli: Format Map Set
