lib/core/event.ml: Fmt Int Op String Tid Value
