lib/core/impl_model.ml: Conflict Event History List Op Queue Random Spec Tid View
