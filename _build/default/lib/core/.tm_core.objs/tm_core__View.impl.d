lib/core/view.ml: History Op Tid
