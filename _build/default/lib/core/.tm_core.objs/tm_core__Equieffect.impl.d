lib/core/equieffect.ml: Explore Fmt Op Option Spec
