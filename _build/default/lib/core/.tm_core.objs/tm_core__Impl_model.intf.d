lib/core/impl_model.mli: Conflict History Random Spec Tid Value View
