lib/core/conflict.ml: Commutativity Hashtbl List Op Spec
