lib/core/event.mli: Format Op Tid Value
