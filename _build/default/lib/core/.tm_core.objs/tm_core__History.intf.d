lib/core/history.mli: Event Format Op Tid Value
