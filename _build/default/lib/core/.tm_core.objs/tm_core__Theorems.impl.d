lib/core/theorems.ml: Atomicity Commutativity Conflict Explore Fmt History Impl_model List Op Option Spec Tid
