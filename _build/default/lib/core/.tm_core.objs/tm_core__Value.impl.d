lib/core/value.ml: Bool Fmt Int List String
