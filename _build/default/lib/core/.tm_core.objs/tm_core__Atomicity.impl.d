lib/core/atomicity.ml: Fmt History List Option Orders Spec String Tid
