lib/core/commutativity.mli: Format Op Spec
