lib/core/view.mli: History Op Tid
