lib/core/explore.ml: Int List Map Set Spec
