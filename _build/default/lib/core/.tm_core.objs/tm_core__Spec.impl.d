lib/core/spec.ml: Format List Op Value
