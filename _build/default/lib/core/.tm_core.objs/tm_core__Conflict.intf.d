lib/core/conflict.mli: Commutativity Op Spec
