type env = string -> Spec.t

let env_of_list specs x =
  match List.find_opt (fun s -> String.equal (Spec.name s) x) specs with
  | Some s -> s
  | None -> raise Not_found

let acceptable env h =
  List.for_all
    (fun x -> Spec.legal (env x) (History.opseq (History.project_obj h x)))
    (History.objects h)

let serializable_in env h order = acceptable env (History.serial h order)

let serializable env h =
  (* Depth-first search over orders, pruning any prefix whose serial
     history is already unacceptable: specifications are prefix-closed, so
     an unacceptable prefix cannot become acceptable by appending. *)
  let ts = Tid.Set.elements (History.transactions h) in
  let prefix_ok acc = acceptable env (History.serial h (List.rev acc)) in
  let rec search acc remaining =
    if not (prefix_ok acc) then None
    else if remaining = [] then Some (List.rev acc)
    else
      List.fold_left
        (fun found x ->
          match found with
          | Some _ -> found
          | None ->
              search (x :: acc) (List.filter (fun y -> not (Tid.equal x y)) remaining))
        None remaining
  in
  search [] ts

let atomic env h = Option.is_some (serializable env (History.permanent h))

type verdict =
  | Ok
  | Counterexample of Tid.t list

let is_ok = function Ok -> true | Counterexample _ -> false

let pp_verdict ppf = function
  | Ok -> Fmt.string ppf "ok"
  | Counterexample order ->
      Fmt.pf ppf "not serializable in order %a" Fmt.(list ~sep:(any "-") Tid.pp) order

(* permanent(h) must serialize in every total order of its transactions
   consistent with precedes(h). *)
let dynamic_atomic_of env ~precedes h =
  let perm = History.permanent h in
  let ts = Tid.Set.elements (History.transactions perm) in
  let orders = Orders.linear_extensions ts precedes in
  let bad = List.find_opt (fun o -> not (serializable_in env perm o)) orders in
  match bad with None -> Ok | Some o -> Counterexample o

let dynamic_atomic env h = dynamic_atomic_of env ~precedes:(History.precedes h) h

let online_dynamic_atomic env h =
  let committed = Tid.Set.elements (History.committed h) in
  let active = Tid.Set.elements (History.active h) in
  let check_cs sub =
    let cs = Tid.Set.of_list (committed @ sub) in
    let hcs = History.project_tids h cs in
    let ts = Tid.Set.elements (History.transactions hcs) in
    let precedes = History.precedes hcs in
    let orders = Orders.linear_extensions ts precedes in
    List.find_opt (fun o -> not (serializable_in env hcs o)) orders
  in
  let rec first_bad = function
    | [] -> Ok
    | sub :: rest -> (
        match check_cs sub with Some o -> Counterexample o | None -> first_bad rest)
  in
  first_bad (Orders.subsets active)

let is_dynamic_atomic env h = is_ok (dynamic_atomic env h)
let is_online_dynamic_atomic env h = is_ok (online_dynamic_atomic env h)
