type t = {
  spec : Spec.t;
  view : View.t;
  conflict : Conflict.t;
}

let make ~spec ~view ~conflict = { spec; view; conflict }

let invocations i =
  List.map (fun (op : Op.t) -> op.inv) (Spec.generators i.spec)
  |> List.sort_uniq Op.compare_invocation

let no_conflict i h a (op : Op.t) =
  let held_ops b = History.opseq (History.project_tid h b) in
  Tid.Set.for_all
    (fun b ->
      Tid.equal a b
      || List.for_all
           (fun p -> not (Conflict.conflicts i.conflict ~requested:op ~held:p))
           (held_ops b))
    (History.active h)

let response_enabled i h a r =
  match History.pending_invocation h a with
  | None -> false
  | Some (obj, inv) ->
      let op = { Op.obj; inv; res = r } in
      no_conflict i h a op
      && Spec.legal i.spec (View.apply i.view h a @ [ op ])

let legal_responses i h a =
  match History.pending_invocation h a with
  | None -> []
  | Some (_obj, inv) -> Spec.responses i.spec (View.apply i.view h a) inv

let enabled_responses i h a =
  match History.pending_invocation h a with
  | None -> []
  | Some (obj, inv) ->
      List.filter
        (fun r -> no_conflict i h a { Op.obj; inv; res = r })
        (legal_responses i h a)

let blocked i h a =
  legal_responses i h a <> [] && enabled_responses i h a = []

let valid i h =
  History.is_well_formed h
  &&
  let step (ok, prefix) e =
    if not ok then (false, prefix)
    else
      let enabled =
        match e with
        | Event.Respond { tid; res; _ } -> response_enabled i prefix tid res
        | Event.Invoke _ | Event.Commit _ | Event.Abort _ -> true
      in
      (enabled, History.snoc prefix e)
  in
  fst (List.fold_left step (true, History.empty) (History.events h))

(* Enabled next events for the generators.  Transactions may commit or
   abort once they have completed at least one operation; each transaction
   executes at most [ops_per_txn] operations. *)
let next_events i ~txns ~ops_per_txn h =
  let obj = Spec.name i.spec in
  let committed = History.committed h and aborted = History.aborted h in
  let finished a = Tid.Set.mem a committed || Tid.Set.mem a aborted in
  let ops_done a = List.length (History.opseq (History.project_tid h a)) in
  let normal, aborts =
    List.fold_left
      (fun (normal, aborts) a ->
        if finished a then (normal, aborts)
        else
          match History.pending_invocation h a with
          | Some (obj', _) ->
              let responses =
                List.map (fun r -> Event.respond ~obj:obj' ~tid:a r) (enabled_responses i h a)
              in
              (responses @ normal, aborts)
          | None ->
              let invokes =
                if ops_done a < ops_per_txn then
                  List.map (fun inv -> Event.invoke ~obj ~tid:a inv) (invocations i)
                else []
              in
              if ops_done a > 0 then
                (Event.commit ~obj ~tid:a :: invokes @ normal,
                 Event.abort ~obj ~tid:a :: aborts)
              else (invokes @ normal, aborts))
      ([], []) txns
  in
  (normal, aborts)

let enumerate i ~txns ~ops_per_txn ~max_events ~limit =
  let results = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  Queue.add History.empty queue;
  while (not (Queue.is_empty queue)) && !count < limit do
    let h = Queue.pop queue in
    results := h :: !results;
    incr count;
    if History.length h < max_events then begin
      let normal, aborts = next_events i ~txns ~ops_per_txn h in
      List.iter (fun e -> Queue.add (History.snoc h e) queue) (normal @ aborts)
    end
  done;
  List.rev !results

let random i ~txns ~ops_per_txn ~steps ~rng =
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let rec go h n =
    if n = 0 then h
    else
      let normal, aborts = next_events i ~txns ~ops_per_txn h in
      match normal, aborts with
      | [], [] -> h
      | [], aborts -> go (History.snoc h (pick aborts)) (n - 1)
      | normal, [] -> go (History.snoc h (pick normal)) (n - 1)
      | normal, aborts ->
          let e = if Random.State.float rng 1.0 < 0.15 then pick aborts else pick normal in
          go (History.snoc h e) (n - 1)
  in
  go History.empty steps
