type params = {
  alpha_depth : int;
  future_depth : int;
  alphabet : Op.t list option;
}

let params ?(alpha_depth = 5) ?(future_depth = 5) ?alphabet () =
  { alpha_depth; future_depth; alphabet }

let default_params = params ()

type failure = {
  alpha : Op.t list;
  future : Op.t list option;
  reason : string;
}

type verdict =
  | Commutes
  | Refuted of failure

let is_commutes = function Commutes -> true | Refuted _ -> false

let pp_ops = Fmt.(list ~sep:(any "; ") Op.pp)

let pp_verdict ppf = function
  | Commutes -> Fmt.string ppf "commutes"
  | Refuted { alpha; future; reason } ->
      Fmt.pf ppf "refuted (%s) in context [%a]%a" reason pp_ops alpha
        Fmt.(option (fun ppf -> pf ppf " with future [%a]" pp_ops))
        future

(* Both relations quantify over all contexts α; the truth of each condition
   depends on α only through the set of states it can reach, so we iterate
   over one representative word per distinct reachable state-set.  The
   per-context check is passed as a rank-2 record so that the state-set
   type of the locally instantiated explorer does not escape. *)
type 's ctx = {
  after : Op.t list -> 's;  (* step the context's state-set *)
  contained : 's -> 's -> Op.t list option;
  empty : 's -> bool;
  alpha : Op.t list;
}

type checker = { check : 's. 's ctx -> verdict }

let over_contexts (Spec.Packed (module S)) p { check } =
  let module E = Explore.Make (S) in
  let alphabet = Option.value p.alphabet ~default:S.generators in
  let contexts = E.reachable ~depth:p.alpha_depth ~alphabet in
  let step acc (alpha, sts) =
    match acc with
    | Refuted _ -> acc
    | Commutes ->
        check
          {
            after = (fun ops -> E.after sts ops);
            contained = (fun u t -> E.contained ~depth:p.future_depth ~alphabet u t);
            empty = E.States.is_empty;
            alpha;
          }
  in
  List.fold_left step Commutes contexts

let commute_forward_seq spec p beta gamma =
  let check (type s) ({ after; contained; empty; alpha } : s ctx) =
    let sb = after beta and sg = after gamma in
    if empty sb || empty sg then Commutes
    else
      let sbg = after (beta @ gamma) in
      if empty sbg then
        Refuted { alpha; future = None; reason = "\xce\xb1\xce\xb2\xce\xb3 \xe2\x88\x89 Spec" }
      else
        let sgb = after (gamma @ beta) in
        match contained sbg sgb with
        | Some f ->
            Refuted
              { alpha; future = Some f; reason = "\xce\xb1\xce\xb2\xce\xb3 does not look like \xce\xb1\xce\xb3\xce\xb2" }
        | None -> (
            match contained sgb sbg with
            | Some f ->
                Refuted
                  { alpha; future = Some f; reason = "\xce\xb1\xce\xb3\xce\xb2 does not look like \xce\xb1\xce\xb2\xce\xb3" }
            | None -> Commutes)
  in
  over_contexts spec p { check }

let right_commutes_backward_seq spec p beta gamma =
  let check (type s) ({ after; contained; empty = _; alpha } : s ctx) =
    match contained (after (gamma @ beta)) (after (beta @ gamma)) with
    | Some f ->
        Refuted
          { alpha; future = Some f; reason = "\xce\xb1\xce\xb3\xce\xb2 does not look like \xce\xb1\xce\xb2\xce\xb3" }
    | None -> Commutes
  in
  over_contexts spec p { check }

let commute_forward spec p b g = commute_forward_seq spec p [ b ] [ g ]
let right_commutes_backward spec p b g = right_commutes_backward_seq spec p [ b ] [ g ]
let fc spec p b g = is_commutes (commute_forward spec p b g)
let nfc spec p b g = not (fc spec p b g)
let rbc spec p b g = is_commutes (right_commutes_backward spec p b g)
let nrbc spec p b g = not (rbc spec p b g)

type table = {
  labels : string list;
  marks : bool array array;
}

let build_table relate classes =
  let n = List.length classes in
  let classes = Array.of_list classes in
  let marks = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let _, row_ops = classes.(i) and _, col_ops = classes.(j) in
      marks.(i).(j) <-
        List.exists (fun b -> List.exists (fun g -> not (relate b g)) col_ops) row_ops
    done
  done;
  { labels = Array.to_list (Array.map fst classes); marks }

let fc_table spec p classes = build_table (fc spec p) classes
let rbc_table spec p classes = build_table (rbc spec p) classes

let pp_table ppf { labels; marks } =
  let width =
    List.fold_left (fun w l -> max w (String.length l)) 1 labels
  in
  let pad s = Fmt.str "%-*s" width s in
  Fmt.pf ppf "@[<v>%s | %a@;%s-+-%s@;" (pad "") Fmt.(list ~sep:(any " | ") string)
    (List.map pad labels)
    (String.make width '-')
    (String.concat "-+-" (List.map (fun _ -> String.make width '-') labels));
  List.iteri
    (fun i l ->
      let cells =
        List.mapi (fun j _ -> pad (if marks.(i).(j) then "X" else "")) labels
      in
      Fmt.pf ppf "%s | %a@;" (pad l) Fmt.(list ~sep:(any " | ") string) cells)
    labels;
  Fmt.pf ppf "@]"

let table_marks { labels; marks } =
  let labels = Array.of_list labels in
  let acc = ref [] in
  for i = Array.length labels - 1 downto 0 do
    for j = Array.length labels - 1 downto 0 do
      if marks.(i).(j) then acc := (labels.(i), labels.(j)) :: !acc
    done
  done;
  !acc

let equal_table t1 t2 =
  List.equal String.equal t1.labels t2.labels
  && table_marks t1 = table_marks t2

let table_of_marks labels pairs =
  let n = List.length labels in
  let idx l =
    match List.find_index (String.equal l) labels with
    | Some i -> i
    | None -> invalid_arg ("Commutativity.table_of_marks: unknown label " ^ l)
  in
  let marks = Array.make_matrix n n false in
  List.iter (fun (r, c) -> marks.(idx r).(idx c) <- true) pairs;
  { labels; marks }
