(** Recovery abstractions: the [View] function (Sections 4 and 5).

    Recovery is modelled by a function from histories and active
    transactions to operation sequences — the "serial state" used to
    determine the legal responses to an invocation.  The two views studied
    by the paper:

    - {b UIP} (update-in-place):
      [UIP(H,A) = Opseq(H | ACT − Aborted(H))] — all operations executed by
      non-aborted transactions (committed {e and} active), in execution
      order.  Abstracts single-current-state systems that undo on abort
      (System R et al.).
    - {b DU} (deferred update):
      [DU(H,A) = Opseq(Serial(H|Committed(H), Commit-order(H))) ·
      Opseq(H|A)] — the committed operations in commit order, then [A]'s
      own.  Abstracts intentions-list / private-workspace systems (XDFS,
      CFS).

    Both are defined here for histories involving a single object, per the
    paper's footnote 3. *)

type t

val make : name:string -> (History.t -> Tid.t -> Op.t list) -> t
val name : t -> string

(** [apply v h a] is the serial state [v] assigns to active transaction
    [a] after history [h]. *)
val apply : t -> History.t -> Tid.t -> Op.t list

val uip : t
val du : t
