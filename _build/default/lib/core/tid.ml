type t = int

let of_int n =
  if n < 0 then invalid_arg "Tid.of_int: negative id";
  n

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash t = t

let pp ppf t =
  if t < 26 then Fmt.char ppf (Char.chr (Char.code 'A' + t))
  else Fmt.pf ppf "T%d" t

let to_string t = Fmt.str "%a" pp t
let a = 0
let b = 1
let c = 2
let d = 3
let e = 4

module Set = Set.Make (Int)
module Map = Map.Make (Int)
