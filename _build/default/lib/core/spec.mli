(** Serial specifications of atomic objects (Section 3.2).

    The paper models [Spec(X)] as a prefix-closed set of operation
    sequences, conveniently presented as the language of an I/O automaton
    whose actions are the operations of [X].  We present specifications as
    transition systems over an abstract state: [respond s inv] enumerates
    every legal (response, next-state) pair for invocation [inv] in state
    [s].  Operations may be {e partial} ([respond] returns no pair for some
    states) and {e non-deterministic} (more than one pair).

    [Spec(X)] — the prefix-closed sequence set — is recovered as the set of
    operation sequences executable from [initial]; with non-determinism a
    sequence denotes the {e set} of states it can reach, which is exactly
    what the analyses in {!Explore} need. *)

module type S = sig
  type state

  (** Object name, e.g. ["BA"]; used as [Op.obj] in rendered operations. *)
  val name : string

  val initial : state
  val equal_state : state -> state -> bool
  val compare_state : state -> state -> int
  val pp_state : Format.formatter -> state -> unit

  (** [respond s inv] is every pair [(r, s')] such that the operation
      [[inv, r]] is legal in state [s] and may leave the object in state
      [s'].  The empty list means [inv] has no legal response in [s]
      (a partial operation). *)
  val respond : state -> Op.invocation -> (Value.t * state) list

  (** A finite sample of the operation alphabet, used by the bounded
      decision procedures and by history generators.  It should exercise
      every behaviourally distinct operation class of the type (each ADT
      documents why its sample is adequate). *)
  val generators : Op.t list
end

type t = Packed : (module S with type state = 's) -> t

val pack : (module S with type state = 's) -> t
val name : t -> string
val generators : t -> Op.t list

(** [rename spec x] is the same specification presented as an object named
    [x] (generators re-tagged); used to instantiate several objects of one
    type, e.g. accounts ["BA0"], ["BA1"], … *)
val rename : t -> string -> t

(** [apply (module S) s op] is the set of states reachable by executing
    operation [op] (invocation {e and} response fixed) from [s]; empty if
    [op] is not legal in [s]. *)
val apply : (module S with type state = 's) -> 's -> Op.t -> 's list

(** [legal spec ops] — is the operation sequence [ops] in [Spec(X)]
    (executable from the initial state)? *)
val legal : t -> Op.t list -> bool

(** [responses spec ops inv] is the set of legal responses to [inv] after
    the sequence [ops] (deduplicated), i.e. all [r] with
    [ops · [inv,r] ∈ Spec]. *)
val responses : t -> Op.t list -> Op.invocation -> Value.t list
