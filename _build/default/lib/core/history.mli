(** Histories: well-formed finite sequences of events (Section 2).

    A computation is modelled as a finite sequence of events.  A
    {e history} is a well-formed such sequence.  This module provides the
    projections ([H|X], [H|A]), derived sets ([Committed], [Aborted],
    [Active]), the [Opseq] function from histories to operation sequences,
    [permanent], the [precedes] relation, [Serial(H,T)] and the commit
    order — all exactly as defined in Sections 2, 3 and 5 of the paper. *)

type t

(** {1 Construction} *)

val empty : t

(** [snoc h e] appends event [e]; no well-formedness check is performed
    (use {!well_formedness_errors} / {!check} to validate). *)
val snoc : t -> Event.t -> t

val of_events : Event.t list -> t
val events : t -> Event.t list
val length : t -> int
val append : t -> t -> t

(** {1 Well-formedness}

    The paper's constraints: a transaction has at most one pending
    invocation and must wait for its response before invoking again; an
    object responds only to a pending invocation at that object; a
    transaction cannot both commit and abort (atomic commitment); it cannot
    commit while an invocation is pending nor invoke anything after it has
    committed (or aborted); commit/abort events are at most one per object
    per transaction. *)

type violation =
  | Invoke_while_pending of Tid.t
  | Response_without_pending of Tid.t * string
  | Commit_while_pending of Tid.t
  | Commit_and_abort of Tid.t
  | Event_after_finish of Tid.t
  | Duplicate_completion of Tid.t * string

val pp_violation : Format.formatter -> violation -> unit

(** [well_formedness_errors h] is the list of violations in [h], in order
    of occurrence; empty iff [h] is well-formed. *)
val well_formedness_errors : t -> violation list

val is_well_formed : t -> bool

(** [check h] is [h] if well-formed, otherwise raises [Invalid_argument]
    naming the first violation. *)
val check : t -> t

(** {1 Transaction status} *)

(** Transactions that commit (at some object) in [h]. *)
val committed : t -> Tid.Set.t

(** Transactions that abort in [h]. *)
val aborted : t -> Tid.Set.t

(** Transactions appearing in [h] that neither commit nor abort.  (The
    paper defines [Active(H) = ACT − Committed(H) − Aborted(H)]; we
    restrict to transactions that actually appear.) *)
val active : t -> Tid.Set.t

(** All transactions appearing in [h]. *)
val transactions : t -> Tid.Set.t

(** Objects appearing in [h], in order of first appearance. *)
val objects : t -> string list

(** {1 Projections} *)

(** [project_obj h x] is [H|X]: the subsequence of events involving
    object [x]. *)
val project_obj : t -> string -> t

(** [project_tid h a] is [H|A]. *)
val project_tid : t -> Tid.t -> t

(** [project_tids h s] is the subsequence of events whose transaction is
    in [s]. *)
val project_tids : t -> Tid.Set.t -> t

(** {1 Operation sequences} *)

(** [pending_invocation h a] is the invocation (and its object) awaiting a
    response for [a] in [h], if any. *)
val pending_invocation : t -> Tid.t -> (string * Op.invocation) option

(** [opseq h] implements the paper's [Opseq]: the operations of [h] in
    the order of their response events; commit and abort events and pending
    invocations are ignored.  Raises [Invalid_argument] if a response has
    no matching pending invocation. *)
val opseq : t -> Op.t list

(** {1 Derived histories and relations} *)

(** [permanent h] is [H|Committed(H)]. *)
val permanent : t -> t

(** [precedes h] is the paper's relation: [(A,B)] iff some operation
    invoked by [B] responds after [A]'s first commit event, with [A ≠ B].
    Returned as a predicate. *)
val precedes : t -> Tid.t -> Tid.t -> bool

(** All [precedes] pairs among the transactions of [h]. *)
val precedes_pairs : t -> (Tid.t * Tid.t) list

(** [serial h order] is [Serial(H,T)] = [H|A1 · … · H|An] for [order =
    A1…An].  Transactions of [h] missing from [order] are dropped;
    ids in [order] not in [h] contribute nothing. *)
val serial : t -> Tid.t list -> t

(** [equivalent h k]: every transaction performs the same steps in both
    ([H|A = K|A] for all [A]). *)
val equivalent : t -> t -> bool

(** [commit_order h] is the paper's [Commit-order(H)]: transactions that
    commit in [h], ordered by their first commit events. *)
val commit_order : t -> Tid.t list

(** A history is serial if events of different transactions do not
    interleave. *)
val is_serial : t -> bool

(** A history is failure-free if no transaction aborts in it. *)
val is_failure_free : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Builder combinators}

    Pipe-friendly helpers for constructing histories in tests and
    examples: [empty |> exec Tid.a op1 |> commit_at Tid.a "BA" |> …]. *)

(** [exec a op h] appends the invocation and response events of operation
    [op] (at [op.obj]) for transaction [a]. *)
val exec : Tid.t -> Op.t -> t -> t

(** [invoke a ~obj inv h] appends just the invocation event. *)
val invoke : Tid.t -> obj:string -> Op.invocation -> t -> t

(** [respond a ~obj res h] appends just the response event. *)
val respond : Tid.t -> obj:string -> Value.t -> t -> t

val commit_at : Tid.t -> string -> t -> t
val abort_at : Tid.t -> string -> t -> t

(** [exec_seq a ops h] executes each operation of [ops] in turn. *)
val exec_seq : Tid.t -> Op.t list -> t -> t
