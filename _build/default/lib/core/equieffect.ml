type verdict =
  | Holds
  | Refuted of Op.t list

let is_holds = function Holds -> true | Refuted _ -> false

let pp_verdict ppf = function
  | Holds -> Fmt.string ppf "holds"
  | Refuted w -> Fmt.pf ppf "refuted by future [%a]" Fmt.(list ~sep:(any "; ") Op.pp) w

let looks_like (Spec.Packed (module S)) ~depth ?alphabet alpha beta =
  let module E = Explore.Make (S) in
  let alphabet = Option.value alphabet ~default:S.generators in
  let u = E.after E.initial_set alpha in
  let t = E.after E.initial_set beta in
  match E.contained ~depth ~alphabet u t with
  | None -> Holds
  | Some gamma -> Refuted gamma

let equieffective spec ~depth ?alphabet alpha beta =
  match looks_like spec ~depth ?alphabet alpha beta with
  | Refuted _ as r -> r
  | Holds -> looks_like spec ~depth ?alphabet beta alpha
