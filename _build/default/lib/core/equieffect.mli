(** Equieffectiveness of operation sequences (Section 6.1).

    [α] {e looks like} [β] (w.r.t. [Spec]) if for every sequence [γ],
    [αγ ∈ Spec] implies [βγ ∈ Spec] — no future observation distinguishes
    having executed [β] from having executed [α].  [α] and [β] are
    {e equieffective} when each looks like the other.  "Looks like" is
    reflexive and transitive but not necessarily symmetric (Lemma 3);
    equieffectiveness is an equivalence (Lemma 4).

    All checks are bounded semi-decisions (see {!Explore}): [depth] bounds
    the length of distinguishing futures, and [alphabet] (default: the
    specification's generators) bounds the operations they may use. *)

type verdict =
  | Holds  (** to the given bound *)
  | Refuted of Op.t list
      (** a witness future [γ] legal after one sequence, not the other *)

val is_holds : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit

(** [looks_like spec ~depth ?alphabet alpha beta] checks that [alpha]
    looks like [beta] with respect to [spec]. *)
val looks_like :
  Spec.t -> depth:int -> ?alphabet:Op.t list -> Op.t list -> Op.t list -> verdict

(** [equieffective spec ~depth ?alphabet alpha beta] checks both
    directions; the witness, if any, distinguishes in one of them. *)
val equieffective :
  Spec.t -> depth:int -> ?alphabet:Op.t list -> Op.t list -> Op.t list -> verdict
