(** Forward and right-backward commutativity (Sections 6.2, 6.3).

    Both notions are defined on sequences and specialise to single
    operations; both are relations {e on operations} (invocation and
    result), so a conflict derived from them may depend on an operation's
    result.

    - [β] and [γ] {e commute forward} iff for every [α] with
      [αβ ∈ Spec] and [αγ ∈ Spec]: [αβγ ∈ Spec] and [αβγ] is
      equieffective to [αγβ].  FC and its complement NFC are symmetric
      (Lemma 8).
    - [β] {e right commutes backward} with [γ] iff for every [α],
      [αγβ] looks like [αβγ] (a [β] executed just after [γ] can be pushed
      back before it).  RBC and NRBC are {e not} necessarily symmetric.

    Decision procedures are bounded (see {!Explore}): [alpha_depth] bounds
    the contexts [α] explored (via distinct reachable state-sets) and
    [future_depth] the distinguishing futures. *)

type params = {
  alpha_depth : int;
  future_depth : int;
  alphabet : Op.t list option;  (** default: the specification's generators *)
}

(** Defaults: [alpha_depth = 5], [future_depth = 5], generator alphabet. *)
val params : ?alpha_depth:int -> ?future_depth:int -> ?alphabet:Op.t list -> unit -> params

val default_params : params

type failure = {
  alpha : Op.t list;  (** context in which the condition fails *)
  future : Op.t list option;
      (** distinguishing future, when the failure is observational *)
  reason : string;
}

type verdict =
  | Commutes  (** to the given bounds *)
  | Refuted of failure

val is_commutes : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Sequence-level relations} *)

val commute_forward_seq : Spec.t -> params -> Op.t list -> Op.t list -> verdict

(** [right_commutes_backward_seq spec p beta gamma]: does [beta] right
    commute backward with [gamma]? *)
val right_commutes_backward_seq : Spec.t -> params -> Op.t list -> Op.t list -> verdict

(** {1 Operation-level relations} *)

val commute_forward : Spec.t -> params -> Op.t -> Op.t -> verdict
val right_commutes_backward : Spec.t -> params -> Op.t -> Op.t -> verdict

(** [fc spec p b g] = [is_commutes (commute_forward spec p b g)]; [nfc] is
    its negation; likewise [rbc]/[nrbc]. *)

val fc : Spec.t -> params -> Op.t -> Op.t -> bool
val nfc : Spec.t -> params -> Op.t -> Op.t -> bool
val rbc : Spec.t -> params -> Op.t -> Op.t -> bool
val nrbc : Spec.t -> params -> Op.t -> Op.t -> bool

(** {1 Relation tables (Figures 6-1 and 6-2)}

    The paper presents the relations as tables over operation {e classes}
    (e.g. all [deposit(i)] operations).  A class pair is marked — the
    paper's "X" — when {e some} pair of member operations is refuted. *)

type table = {
  labels : string list;
  marks : bool array array;  (** [marks.(row).(col)] — row relates-not to col *)
}

(** [fc_table spec p classes] marks [(i,j)] iff some [b ∈ classes_i],
    [g ∈ classes_j] do not commute forward. *)
val fc_table : Spec.t -> params -> (string * Op.t list) list -> table

(** [rbc_table spec p classes] marks [(i,j)] iff some [b ∈ classes_i] does
    not right commute backward with some [g ∈ classes_j]. *)
val rbc_table : Spec.t -> params -> (string * Op.t list) list -> table

val pp_table : Format.formatter -> table -> unit

(** Marked (row-label, col-label) pairs, row-major. *)
val table_marks : table -> (string * string) list

val equal_table : table -> table -> bool

(** [table_of_marks labels pairs] builds the expected table from a list of
    marked label pairs (for comparing against the paper's figures). *)
val table_of_marks : string list -> (string * string) list -> table
