(** Conflict relations on operations (Section 4).

    The conflict relation is the essential variable in conflict-based
    locking: a response event for operation [Q] by transaction [A] is
    enabled only if [(Q, P)] is not in the relation for any operation [P]
    already executed by another active transaction.

    Relations are {e directional} ([requested] vs. [held]) because right
    backward commutativity — and hence the minimal conflict relation for
    update-in-place recovery — is not symmetric (Section 6.3): requiring
    symmetry would force conflicts that are not necessary. *)

type t

val make : name:string -> (requested:Op.t -> held:Op.t -> bool) -> t
val name : t -> string
val conflicts : t -> requested:Op.t -> held:Op.t -> bool

(** The empty relation: nothing conflicts.  (An incorrect concurrency
    control for either recovery method on any interesting type; used in
    negative tests.) *)
val none : t

(** The total relation: everything conflicts — serial execution. *)
val all : t

(** [of_pairs ~name pairs] conflicts exactly on the listed
    [(requested, held)] pairs. *)
val of_pairs : name:string -> (Op.t * Op.t) list -> t

(** [without rel pairs] removes the listed [(requested, held)] pairs from
    [rel] (used to build the "dropped one necessary conflict"
    counterexamples of Theorems 9 and 10). *)
val without : t -> (Op.t * Op.t) list -> t

(** [union r1 r2] conflicts when either does. *)
val union : t -> t -> t

(** {1 Coarsenings (ablations)}

    Section 8 credits the UIP+NRBC algorithm with "fewer conflicts than
    previous algorithms": earlier work assumed symmetric relations, and
    most assumed locks determined by the invocation alone.  These
    coarsenings reconstruct those weaker algorithms for comparison. *)

(** [symmetric_closure rel]: conflicts when [rel] does in either
    direction.  [NRBC]'s symmetric closure is (an over-approximation of)
    the conflict relation of the author's earlier update-in-place locking
    algorithm. *)
val symmetric_closure : t -> t

(** [invocation_blind spec rel]: result-independent locking — two
    operations conflict iff {e some} pair of generator operations of
    [spec] with the same invocations conflicts under [rel].  This is how
    a system that must acquire locks {e before} executing (rather than
    from the chosen response) would coarsen [rel]. *)
val invocation_blind : Spec.t -> t -> t

(** {1 Relations derived from a specification}

    Computed with the bounded decision procedures of {!Commutativity} and
    memoised per operation pair.  Shipped ADTs provide equivalent closed
    forms; these derived relations are the reference the closed forms are
    validated against. *)

(** NFC(Spec): [requested] and [held] do not commute forward.  The minimal
    conflict relation correct for deferred-update recovery (Theorem 10). *)
val nfc : Spec.t -> Commutativity.params -> t

(** NRBC(Spec): [requested] does not right-commute-backward with [held].
    The minimal conflict relation correct for update-in-place recovery
    (Theorem 9). *)
val nrbc : Spec.t -> Commutativity.params -> t

(** {1 Baseline}

    Classical read/write locking: two operations conflict unless both are
    reads.  This ignores type semantics entirely and is the implicit
    comparator for the paper's "permits more concurrency" claims. *)
val read_write : name:string -> is_read:(Op.t -> bool) -> t

(** [is_symmetric rel ops] checks symmetry of [rel] over the given
    operation sample. *)
val is_symmetric : t -> Op.t list -> bool

(** [pairs rel ops] lists all conflicting [(requested, held)] pairs over
    the sample. *)
val pairs : t -> Op.t list -> (Op.t * Op.t) list
