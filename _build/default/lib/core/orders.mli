(** Enumeration of total orders consistent with a partial order.

    Dynamic atomicity quantifies over every total order consistent with
    [precedes(H)]; this module enumerates exactly those (the linear
    extensions of the relation restricted to a given transaction set). *)

(** [linear_extensions elts before] is every permutation [o] of [elts]
    such that whenever [before a b], [a] appears before [b] in [o].
    [before] need not be transitive; only the given pairs are enforced
    (the paper's [precedes] is a partial order on well-formed histories,
    where the two coincide).  Order of results is deterministic. *)
val linear_extensions : Tid.t list -> (Tid.t -> Tid.t -> bool) -> Tid.t list list

(** [permutations elts] is all permutations (linear extensions of the
    empty relation). *)
val permutations : Tid.t list -> Tid.t list list

(** [consistent order before] — does total order [order] respect every
    [before] pair among its elements? *)
val consistent : Tid.t list -> (Tid.t -> Tid.t -> bool) -> bool

(** [subsets elts] is all subsets of [elts] (used to enumerate commit
    sets). *)
val subsets : Tid.t list -> Tid.t list list
