type t = Event.t list
(* Events in occurrence order.  Histories in this development are short
   (checkers and tests); a list keeps every definition a direct
   transliteration of the paper's. *)

let empty = []
let snoc h e = h @ [ e ]
let of_events es = es
let events h = h
let length = List.length
let append = ( @ )

type violation =
  | Invoke_while_pending of Tid.t
  | Response_without_pending of Tid.t * string
  | Commit_while_pending of Tid.t
  | Commit_and_abort of Tid.t
  | Event_after_finish of Tid.t
  | Duplicate_completion of Tid.t * string

let pp_violation ppf = function
  | Invoke_while_pending a ->
      Fmt.pf ppf "%a invokes while an invocation is pending" Tid.pp a
  | Response_without_pending (a, x) ->
      Fmt.pf ppf "response for %a at %s without matching pending invocation" Tid.pp a x
  | Commit_while_pending a ->
      Fmt.pf ppf "%a commits while an invocation is pending" Tid.pp a
  | Commit_and_abort a -> Fmt.pf ppf "%a both commits and aborts" Tid.pp a
  | Event_after_finish a ->
      Fmt.pf ppf "%a invokes or responds after committing or aborting" Tid.pp a
  | Duplicate_completion (a, x) ->
      Fmt.pf ppf "%a commits or aborts twice at %s" Tid.pp a x

(* Per-transaction status while scanning a history front to back. *)
type txn_state = {
  pending : (string * Op.invocation) option;
  committed_at : string list;
  aborted_at : string list;
}

let initial_txn_state = { pending = None; committed_at = []; aborted_at = [] }

let well_formedness_errors h =
  let state = Hashtbl.create 16 in
  let get a = Option.value (Hashtbl.find_opt state a) ~default:initial_txn_state in
  let set a s = Hashtbl.replace state a s in
  let finished s = s.committed_at <> [] || s.aborted_at <> [] in
  let step errs e =
    match e with
    | Event.Invoke { tid; inv; obj } ->
        let s = get tid in
        let errs = if finished s then Event_after_finish tid :: errs else errs in
        let errs = if s.pending <> None then Invoke_while_pending tid :: errs else errs in
        set tid { s with pending = Some (obj, inv) };
        errs
    | Event.Respond { tid; obj; _ } -> (
        let s = get tid in
        let errs = if finished s then Event_after_finish tid :: errs else errs in
        match s.pending with
        | Some (obj', _) when String.equal obj obj' ->
            set tid { s with pending = None };
            errs
        | Some _ | None -> Response_without_pending (tid, obj) :: errs)
    | Event.Commit { tid; obj } ->
        let s = get tid in
        let errs = if s.pending <> None then Commit_while_pending tid :: errs else errs in
        let errs = if s.aborted_at <> [] then Commit_and_abort tid :: errs else errs in
        let errs =
          if List.mem obj s.committed_at then Duplicate_completion (tid, obj) :: errs
          else errs
        in
        set tid { s with committed_at = obj :: s.committed_at };
        errs
    | Event.Abort { tid; obj } ->
        let s = get tid in
        let errs = if s.committed_at <> [] then Commit_and_abort tid :: errs else errs in
        let errs =
          if List.mem obj s.aborted_at then Duplicate_completion (tid, obj) :: errs
          else errs
        in
        set tid { s with aborted_at = obj :: s.aborted_at };
        errs
  in
  List.rev (List.fold_left step [] h)

let is_well_formed h = well_formedness_errors h = []

let check h =
  match well_formedness_errors h with
  | [] -> h
  | v :: _ -> invalid_arg (Fmt.str "History.check: %a" pp_violation v)

let committed h =
  List.fold_left
    (fun s e -> match e with Event.Commit { tid; _ } -> Tid.Set.add tid s | _ -> s)
    Tid.Set.empty h

let aborted h =
  List.fold_left
    (fun s e -> match e with Event.Abort { tid; _ } -> Tid.Set.add tid s | _ -> s)
    Tid.Set.empty h

let transactions h =
  List.fold_left (fun s e -> Tid.Set.add (Event.tid e) s) Tid.Set.empty h

let active h = Tid.Set.diff (transactions h) (Tid.Set.union (committed h) (aborted h))

let objects h =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun e ->
      let x = Event.obj e in
      if Hashtbl.mem seen x then None
      else begin
        Hashtbl.add seen x ();
        Some x
      end)
    h

let project_obj h x = List.filter (fun e -> String.equal (Event.obj e) x) h
let project_tid h a = List.filter (fun e -> Tid.equal (Event.tid e) a) h
let project_tids h s = List.filter (fun e -> Tid.Set.mem (Event.tid e) s) h

let pending_invocation h a =
  let step acc e =
    match e with
    | Event.Invoke { tid; obj; inv } when Tid.equal tid a -> Some (obj, inv)
    | Event.Respond { tid; _ } when Tid.equal tid a -> None
    | Event.Invoke _ | Event.Respond _ | Event.Commit _ | Event.Abort _ -> acc
  in
  List.fold_left step None h

let opseq h =
  let pending = Hashtbl.create 8 in
  let step acc e =
    match e with
    | Event.Invoke { tid; obj; inv } ->
        Hashtbl.replace pending tid (obj, inv);
        acc
    | Event.Respond { tid; res; _ } -> (
        match Hashtbl.find_opt pending tid with
        | Some (obj, inv) ->
            Hashtbl.remove pending tid;
            { Op.obj; inv; res } :: acc
        | None -> invalid_arg "History.opseq: response without pending invocation")
    | Event.Commit _ | Event.Abort _ -> acc
  in
  List.rev (List.fold_left step [] h)

let permanent h = project_tids h (committed h)

(* Index of the first commit event of each transaction. *)
let first_commit_index h =
  let m = Hashtbl.create 8 in
  List.iteri
    (fun i e ->
      match e with
      | Event.Commit { tid; _ } -> if not (Hashtbl.mem m tid) then Hashtbl.add m tid i
      | Event.Invoke _ | Event.Respond _ | Event.Abort _ -> ())
    h;
  m

let precedes h =
  let commits = first_commit_index h in
  (* latest response index per transaction *)
  let last_response = Hashtbl.create 8 in
  List.iteri
    (fun i e ->
      match e with
      | Event.Respond { tid; _ } -> Hashtbl.replace last_response tid i
      | Event.Invoke _ | Event.Commit _ | Event.Abort _ -> ())
    h;
  fun a b ->
    (not (Tid.equal a b))
    &&
    match Hashtbl.find_opt commits a, Hashtbl.find_opt last_response b with
    | Some ci, Some ri -> ri > ci
    | (Some _ | None), _ -> false

let precedes_pairs h =
  let p = precedes h in
  let ts = Tid.Set.elements (transactions h) in
  List.concat_map (fun a -> List.filter_map (fun b -> if p a b then Some (a, b) else None) ts) ts

let serial h order =
  List.concat_map (fun a -> project_tid h a) order

let equivalent h k =
  let ts = Tid.Set.union (transactions h) (transactions k) in
  Tid.Set.for_all
    (fun a -> List.equal Event.equal (project_tid h a) (project_tid k a))
    ts

let commit_order h =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun e ->
      match e with
      | Event.Commit { tid; _ } ->
          if Hashtbl.mem seen tid then None
          else begin
            Hashtbl.add seen tid ();
            Some tid
          end
      | Event.Invoke _ | Event.Respond _ | Event.Abort _ -> None)
    h

let is_serial h =
  (* Once a transaction's events stop, they never resume interleaved with
     another transaction's: the sequence of tids, with adjacent duplicates
     collapsed, has no repeats. *)
  let rec distinct_runs seen = function
    | [] -> true
    | tid :: rest ->
        if List.exists (Tid.equal tid) seen then false
        else
          let rest = List.to_seq rest |> Seq.drop_while (Tid.equal tid) |> List.of_seq in
          distinct_runs (tid :: seen) rest
  in
  distinct_runs [] (List.map Event.tid h)

let is_failure_free h = Tid.Set.is_empty (aborted h)

let pp ppf h =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Event.pp) h

let to_string h = Fmt.str "%a" pp h

let exec a (op : Op.t) h =
  h @ [ Event.invoke ~obj:op.obj ~tid:a op.inv; Event.respond ~obj:op.obj ~tid:a op.res ]

let invoke a ~obj inv h = h @ [ Event.invoke ~obj ~tid:a inv ]
let respond a ~obj res h = h @ [ Event.respond ~obj ~tid:a res ]
let commit_at a x h = h @ [ Event.commit ~obj:x ~tid:a ]
let abort_at a x h = h @ [ Event.abort ~obj:x ~tid:a ]
let exec_seq a ops h = List.fold_left (fun h op -> exec a op h) h ops
