(** Operations: invocation/response pairs.

    Following Section 3.2 of the paper, an {e operation} is a pair of an
    invocation and a response to that invocation, tagged with the object it
    executes on — written [X:[insert(3),ok]].  Serial specifications are
    prefix-closed sets of sequences of operations, and both commutativity
    relations and conflict relations are binary relations {e on operations}
    (so a lock may depend on an operation's result, not just its name and
    arguments). *)

(** An invocation: operation name plus arguments. *)
type invocation = {
  name : string;
  args : Value.t list;
}

type t = {
  obj : string;  (** name of the object the operation executes on *)
  inv : invocation;
  res : Value.t;
}

val invocation : ?args:Value.t list -> string -> invocation

(** [make ~obj name args res] builds the operation [obj:[name(args),res]]. *)
val make : obj:string -> ?args:Value.t list -> string -> Value.t -> t

val equal_invocation : invocation -> invocation -> bool
val compare_invocation : invocation -> invocation -> int
val equal : t -> t -> bool
val compare : t -> t -> int

(** [pp] renders like the paper: ["BA:[withdraw(3),ok]"]. *)
val pp : Format.formatter -> t -> unit

(** [pp_short] omits the object name: ["withdraw(3)→ok"]. *)
val pp_short : Format.formatter -> t -> unit

val pp_invocation : Format.formatter -> invocation -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
