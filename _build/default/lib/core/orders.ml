let linear_extensions elts before =
  (* Standard recursive enumeration: at each step pick any remaining
     element with no remaining predecessor. *)
  let rec extend acc remaining =
    if remaining = [] then [ List.rev acc ]
    else
      let ready =
        List.filter
          (fun x -> not (List.exists (fun y -> (not (Tid.equal x y)) && before y x) remaining))
          remaining
      in
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> not (Tid.equal x y)) remaining in
          extend (x :: acc) rest)
        ready
  in
  extend [] elts

let permutations elts = linear_extensions elts (fun _ _ -> false)

let consistent order before =
  let rec check = function
    | [] -> true
    | x :: rest -> List.for_all (fun y -> not (before y x)) rest && check rest
  in
  check order

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun sub -> x :: sub) s
