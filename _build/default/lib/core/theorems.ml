type cex = {
  requested : Op.t;
  held : Op.t;
  alpha : Op.t list;
  rho : Op.t list;
  history : History.t;
  failing_order : Tid.t list;
}

let pp_cex ppf c =
  Fmt.pf ppf
    "@[<v>requested %a against held %a@;context \xce\xb1 = [%a], future \xcf\x81 = [%a]@;\
     not serializable in %a:@;%a@]"
    Op.pp c.requested Op.pp c.held
    Fmt.(list ~sep:(any "; ") Op.pp)
    c.alpha
    Fmt.(list ~sep:(any "; ") Op.pp)
    c.rho
    Fmt.(list ~sep:(any "-") Tid.pp)
    c.failing_order History.pp c.history

(* Build the proofs' history shape: A runs [alpha] and commits; [first] is
   executed by B, [second] by C (both respond while the other is active);
   then B and C commit in [commit_order]; finally D runs [rho] and
   commits.  Transactions with nothing to execute are omitted. *)
let build_history ~obj ~alpha ~first ~second ~commits ~rho =
  let h = History.empty in
  let h =
    if alpha = [] then h
    else h |> History.exec_seq Tid.a alpha |> History.commit_at Tid.a obj
  in
  let h = h |> History.exec Tid.b first |> History.exec Tid.c second in
  let h = List.fold_left (fun h t -> History.commit_at t obj h) h commits in
  if rho = [] then h
  else h |> History.exec_seq Tid.d rho |> History.commit_at Tid.d obj

let uip_counterexample spec p ~requested ~held =
  match Commutativity.right_commutes_backward spec p requested held with
  | Commutativity.Commutes -> None
  | Commutativity.Refuted { alpha; future; reason = _ } ->
      (* alpha \xc2\xb7 held \xc2\xb7 requested \xc2\xb7 rho \xe2\x88\x88 Spec, but with the two swapped it
         is not: the history serializes as A-B-C-D but not A-C-B-D. *)
      let rho = Option.value future ~default:[] in
      let obj = Spec.name spec in
      let history =
        build_history ~obj ~alpha ~first:held ~second:requested
          ~commits:[ Tid.b; Tid.c ] ~rho
      in
      let failing_order =
        (if alpha = [] then [] else [ Tid.a ])
        @ [ Tid.c; Tid.b ]
        @ if rho = [] then [] else [ Tid.d ]
      in
      Some { requested; held; alpha; rho; history; failing_order }

let du_counterexample spec p ~requested ~held =
  match Commutativity.commute_forward_seq spec p [ held ] [ requested ] with
  | Commutativity.Commutes -> None
  | Commutativity.Refuted { alpha; future; reason = _ } -> (
      let obj = Spec.name spec in
      let prefix_a = if alpha = [] then [] else [ Tid.a ] in
      let case ~commits ~failing ~rho =
        let history =
          build_history ~obj ~alpha ~first:held ~second:requested ~commits ~rho
        in
        let failing_order =
          prefix_a @ failing @ if rho = [] then [] else [ Tid.d ]
        in
        Some { requested; held; alpha; rho; history; failing_order }
      in
      (* The check ran with \xce\xb2 = held, \xce\xb3 = requested. *)
      match future with
      | None ->
          (* Case 1: \xce\xb1\xc2\xb7held\xc2\xb7requested \xe2\x88\x89 Spec; fails in the order B-C. *)
          case ~commits:[ Tid.b; Tid.c ] ~failing:[ Tid.b; Tid.c ] ~rho:[]
      | Some rho ->
          (* Case 2: an equieffectiveness failure.  Commit B and C so that
             the commit order is the order whose extension by \xcf\x81 is legal
             (transaction D's responses must be enabled); the swapped order
             then fails to serialize. *)
          if Spec.legal spec (alpha @ [ held; requested ] @ rho) then
            case ~commits:[ Tid.b; Tid.c ] ~failing:[ Tid.c; Tid.b ] ~rho
          else if Spec.legal spec (alpha @ [ requested; held ] @ rho) then
            case ~commits:[ Tid.c; Tid.b ] ~failing:[ Tid.b; Tid.c ] ~rho
          else None)

let find_missing_pair spec ~required ~given =
  let ops = Spec.generators spec in
  let missing p q =
    Conflict.conflicts required ~requested:p ~held:q
    && not (Conflict.conflicts given ~requested:p ~held:q)
  in
  List.fold_left
    (fun acc p ->
      match acc with
      | Some _ -> acc
      | None -> (
          match List.find_opt (fun q -> missing p q) ops with
          | Some q -> Some (p, q)
          | None -> None))
    None ops

let refute make_cex spec p ~required conflict =
  (* Enumerate generator pairs missing from [conflict] until one yields a
     constructible counterexample. *)
  let ops = Spec.generators spec in
  let candidates =
    List.concat_map
      (fun requested ->
        List.filter_map
          (fun held ->
            if
              Conflict.conflicts required ~requested ~held
              && not (Conflict.conflicts conflict ~requested ~held)
            then Some (requested, held)
            else None)
          ops)
      ops
  in
  List.fold_left
    (fun acc (requested, held) ->
      match acc with Some _ -> acc | None -> make_cex spec p ~requested ~held)
    None candidates

let uip_refute spec p conflict =
  refute uip_counterexample spec p ~required:(Conflict.nrbc spec p) conflict

let du_refute spec p conflict =
  refute du_counterexample spec p ~required:(Conflict.nfc spec p) conflict

(* All sequences over [ops] of length <= n. *)
let rec words ops n =
  if n = 0 then [ [] ]
  else
    let shorter = words ops (n - 1) in
    [] :: List.concat_map (fun w -> List.map (fun o -> o :: w) ops) shorter
    |> List.sort_uniq (List.compare Op.compare)

let probe_required_pairs spec view ~ops ~txns ~ops_per_txn ~max_events ~limit =
  let env = Atomicity.env_of_list [ spec ] in
  let tids = List.init txns Tid.of_int in
  let obj = Spec.name spec in
  (* Candidate contexts: one representative word per distinct reachable
     state-set (every condition depends on the context only through it),
     plus candidate futures up to length 2. *)
  let contexts =
    let (Spec.Packed (module S)) = spec in
    let module E = Explore.Make (S) in
    List.map fst (E.reachable ~depth:3 ~alphabet:ops)
  in
  let futures = words ops 2 in
  (* The proofs' history shape: A runs a context and commits; B executes
     [held]; C executes [requested] concurrently; both commit (in either
     order); D runs a future and commits. *)
  let candidates p q =
    List.concat_map
      (fun alpha ->
        List.concat_map
          (fun rho ->
            List.map
              (fun commits -> build_history ~obj ~alpha ~first:q ~second:p ~commits ~rho)
              [ [ Tid.b; Tid.c ]; [ Tid.c; Tid.b ] ])
          futures)
      contexts
  in
  let required p q =
    let conflict = Conflict.without Conflict.all [ (p, q) ] in
    let i = Impl_model.make ~spec ~view ~conflict in
    let violates h =
      Impl_model.valid i h && not (Atomicity.is_dynamic_atomic env h)
    in
    List.exists violates (candidates p q)
    ||
    (* sweep for shapes outside the proofs' family *)
    let histories = Impl_model.enumerate i ~txns:tids ~ops_per_txn ~max_events ~limit in
    List.exists (fun h -> not (Atomicity.is_online_dynamic_atomic env h)) histories
  in
  List.concat_map
    (fun p -> List.filter_map (fun q -> if required p q then Some (p, q) else None) ops)
    ops
