module Make (S : Spec.S) = struct
  module States = Set.Make (struct
    type t = S.state

    let compare = S.compare_state
  end)

  let initial_set = States.singleton S.initial

  let step sts op =
    States.fold
      (fun st acc -> List.fold_left (fun acc st' -> States.add st' acc) acc (Spec.apply (module S) st op))
      sts States.empty

  let after sts ops = List.fold_left step sts ops
  let legal ops = not (States.is_empty (after initial_set ops))

  module Set_map = Map.Make (States)

  let reachable ~depth ~alphabet =
    (* Breadth-first search over the subset automaton, keeping the first
       (hence shortest) word that reaches each distinct state-set. *)
    let seen = ref (Set_map.singleton initial_set []) in
    let frontier = ref [ (initial_set, []) ] in
    let level = ref 0 in
    while !frontier <> [] && !level < depth do
      incr level;
      let next = ref [] in
      let expand (sts, rev_word) =
        let try_op op =
          let sts' = step sts op in
          if (not (States.is_empty sts')) && not (Set_map.mem sts' !seen) then begin
            let w = op :: rev_word in
            seen := Set_map.add sts' w !seen;
            next := (sts', w) :: !next
          end
        in
        List.iter try_op alphabet
      in
      List.iter expand !frontier;
      frontier := !next
    done;
    Set_map.fold (fun sts rev_word acc -> (List.rev rev_word, sts) :: acc) !seen []
    |> List.sort (fun (w1, _) (w2, _) -> Int.compare (List.length w1) (List.length w2))

  module Pair_map = Map.Make (struct
    type t = States.t * States.t

    let compare (u1, t1) (u2, t2) =
      let c = States.compare u1 u2 in
      if c <> 0 then c else States.compare t1 t2
  end)

  let contained ~depth ~alphabet u t =
    (* Joint BFS over (U, T) pairs of state-sets: a word is executable from
       a set iff the stepped set stays non-empty, so containment fails
       exactly when some reachable pair has U' non-empty and T' empty. *)
    let exception Counterexample of Op.t list in
    let rec search seen frontier level =
      if frontier = [] || level > depth then ()
      else begin
        let next = ref [] in
        let seen = ref seen in
        let expand ((u, t), rev_word) =
          let try_op op =
            let u' = step u op in
            if not (States.is_empty u') then begin
              let t' = step t op in
              let w = op :: rev_word in
              if States.is_empty t' then raise (Counterexample (List.rev w));
              if not (Pair_map.mem (u', t') !seen) then begin
                seen := Pair_map.add (u', t') () !seen;
                next := ((u', t'), w) :: !next
              end
            end
          in
          List.iter try_op alphabet
        in
        List.iter expand frontier;
        search !seen !next (level + 1)
      end
    in
    if States.is_empty u then None
    else if States.is_empty t then Some []
    else
      match search (Pair_map.singleton (u, t) ()) [ ((u, t), []) ] 1 with
      | () -> None
      | exception Counterexample w -> Some w
end
