(** Scheduler for the escrow object (same model and statistics as
    {!Scheduler}, so escrow rows are directly comparable with the
    conflict-based engine's in the benchmark tables).

    Escrow never blocks on other transactions' identities (there is no
    waits-for graph), it {e refuses} operations the interval cannot
    guarantee; refusals are counted in [stats.blocked] and retried the
    next round. *)

val run : Tm_engine.Escrow.t -> Workload.t -> Scheduler.config -> Scheduler.stats

(** [verify ~capacity ~initial e] — the committed operations replay
    legally against the bounded-counter specification with the same
    bounds. *)
val verify : capacity:int -> initial:int -> Tm_engine.Escrow.t -> bool
