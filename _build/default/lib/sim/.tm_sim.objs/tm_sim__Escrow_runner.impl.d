lib/sim/escrow_runner.ml: Array List Queue Random Scheduler Spec Tid Tm_adt Tm_core Tm_engine Workload
