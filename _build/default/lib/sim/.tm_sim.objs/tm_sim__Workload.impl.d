lib/sim/workload.ml: Array Fmt List Op Random Tm_core Value
