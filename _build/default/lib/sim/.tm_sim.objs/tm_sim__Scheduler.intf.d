lib/sim/scheduler.mli: Format Tm_engine Workload
