lib/sim/experiment.ml: Conflict Fmt List Scheduler Spec Tm_adt Tm_core Tm_engine Workload
