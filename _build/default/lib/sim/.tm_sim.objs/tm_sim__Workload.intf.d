lib/sim/workload.mli: Op Random Tm_core
