lib/sim/escrow_runner.mli: Scheduler Tm_engine Workload
