lib/sim/scheduler.ml: Array Fmt List Queue Random Tid Tm_core Tm_engine Workload
