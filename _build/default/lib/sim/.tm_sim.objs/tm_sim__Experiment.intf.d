lib/sim/experiment.mli: Format Scheduler Tm_engine Workload
