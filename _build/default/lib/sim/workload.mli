(** Workload generators.

    A transaction {e program} is the list of invocations it will issue
    (object name + invocation); the engine determines each response.
    Generators are seeded and deterministic. *)

open Tm_core

type program = (string * Op.invocation) list

type t = {
  name : string;
  generate : Random.State.t -> program;
      (** one fresh transaction program per call *)
}

(** [zipf rng ~n ~skew] samples an index in [0, n) with Zipfian skew
    ([skew = 0.] is uniform). *)
val zipf : Random.State.t -> n:int -> skew:float -> int

(** {1 Scenarios}

    Each scenario names the objects it uses; build the matching database
    with {!Experiment} or by hand. *)

(** Hot-spot bank: every transaction does [ops] operations on one account
    object ["BA"], drawn as deposit/withdraw/balance with the given
    weights.  The paper's motivating "hot spot". *)
val bank_hotspot :
  ?ops:int -> ?deposit:int -> ?withdraw:int -> ?balance:int -> unit -> t

(** Multi-account bank: [accounts] objects named ["BA0"…], account picked
    per operation with Zipfian [skew]. *)
val bank_accounts :
  ?ops:int -> ?accounts:int -> ?skew:float -> ?deposit:int -> ?withdraw:int ->
  ?balance:int -> unit -> t

(** Inventory escrow on the bounded counter ["CTR"]: restocks ([incr]) and
    reservations ([decr]) with occasional reads. *)
val inventory : ?ops:int -> ?incr:int -> ?decr:int -> ?read:int -> unit -> t

(** Producer/consumer on a queue object: a transaction either enqueues
    [ops] items (probability [producer_pct]%) or dequeues [ops] items.
    [obj] should be ["SQ"] (semiqueue) or ["FQ"] (FIFO); item values are
    1–3, within the specs' generator alphabets (the derived conflict
    relations are sound over that alphabet). *)
val queue_broker : ?ops:int -> ?producer_pct:int -> obj:string -> unit -> t

(** Money transfers between accounts ["BA0"]…: withdraw from a
    Zipf-chosen source, deposit to another account — the canonical
    multi-object transaction (atomic commitment across objects). *)
val transfer : ?accounts:int -> ?skew:float -> unit -> t

(** Read-heavy register workload on ["REG"] (baseline comparisons). *)
val register_mix : ?ops:int -> ?write_pct:int -> unit -> t

(** Key-value mix on ["KV"] over [keys] keys with Zipfian [skew]. *)
val kv_mix : ?ops:int -> ?keys:int -> ?skew:float -> ?put:int -> ?get:int -> ?del:int -> unit -> t
