open Tm_core
module Escrow = Tm_engine.Escrow

type active_txn = {
  tid : Tid.t;
  program : Workload.program;
  mutable remaining : Workload.program;
  retries : int;
}

let run escrow (workload : Workload.t) (cfg : Scheduler.config) =
  let rng = Random.State.make [| cfg.Scheduler.seed |] in
  let pending = Queue.create () in
  for _ = 1 to cfg.Scheduler.total_txns do
    Queue.add (workload.generate rng, 0) pending
  done;
  let active : active_txn list ref = ref [] in
  let next_tid = ref 0 in
  let stats =
    ref
      {
        Scheduler.committed = 0;
        deadlock_aborts = 0;
        livelock_aborts = 0;
        validation_aborts = 0;
        gave_up = 0;
        rounds = 0;
        attempts = 0;
        executed = 0;
        blocked = 0;
        no_response = 0;
        active_sum = 0;
      }
  in
  let bump f = stats := f !stats in
  let admit () =
    while List.length !active < cfg.Scheduler.concurrency && not (Queue.is_empty pending) do
      let program, retries = Queue.pop pending in
      let tid = Tid.of_int !next_tid in
      incr next_tid;
      active := !active @ [ { tid; program; remaining = program; retries } ]
    done
  in
  let remove tid = active := List.filter (fun t -> not (Tid.equal t.tid tid)) !active in
  let shuffle l =
    let arr = Array.of_list l in
    for i = Array.length arr - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.to_list arr
  in
  let progressed = ref false in
  let step t =
    match t.remaining with
    | [] ->
        Escrow.commit escrow t.tid;
        remove t.tid;
        bump (fun s -> { s with Scheduler.committed = s.Scheduler.committed + 1 });
        progressed := true
    | (_obj, inv) :: rest -> (
        bump (fun s -> { s with Scheduler.attempts = s.Scheduler.attempts + 1 });
        match Escrow.invoke escrow t.tid inv with
        | Escrow.Granted _ ->
            t.remaining <- rest;
            bump (fun s -> { s with Scheduler.executed = s.Scheduler.executed + 1 });
            progressed := true
        | Escrow.Refused ->
            bump (fun s -> { s with Scheduler.blocked = s.Scheduler.blocked + 1 }))
  in
  let abort_and_requeue t =
    Escrow.abort escrow t.tid;
    remove t.tid;
    bump (fun s -> { s with Scheduler.livelock_aborts = s.Scheduler.livelock_aborts + 1 });
    if t.retries < cfg.Scheduler.max_retries then Queue.add (t.program, t.retries + 1) pending
    else bump (fun s -> { s with Scheduler.gave_up = s.Scheduler.gave_up + 1 })
  in
  let rec loop round =
    admit ();
    if !active = [] || round >= cfg.Scheduler.max_rounds then
      bump (fun s -> { s with Scheduler.rounds = round })
    else begin
      bump
        (fun s -> { s with Scheduler.active_sum = s.Scheduler.active_sum + List.length !active });
      progressed := false;
      let alive t = List.exists (fun x -> Tid.equal x.tid t.tid) !active in
      List.iter (fun t -> if alive t then step t) (shuffle !active);
      if (not !progressed) && !active <> [] then begin
        match List.rev !active with
        | youngest :: _ -> abort_and_requeue youngest
        | [] -> ()
      end;
      loop (round + 1)
    end
  in
  loop 0;
  !stats

let verify ~capacity ~initial escrow =
  let module Pool = Tm_adt.Bounded_counter.Make (struct
    let capacity = capacity
    let initial = initial
    let name = Escrow.name escrow
  end) in
  Spec.legal Pool.spec (Escrow.committed_ops escrow)
