open Tm_core

type program = (string * Op.invocation) list

type t = {
  name : string;
  generate : Random.State.t -> program;
}

let zipf rng ~n ~skew =
  if n <= 1 then 0
  else if skew <= 0. then Random.State.int rng n
  else begin
    (* Inverse-CDF sampling over rank weights 1/(k+1)^skew. *)
    let weights = Array.init n (fun k -> 1. /. ((float_of_int k +. 1.) ** skew)) in
    let total = Array.fold_left ( +. ) 0. weights in
    let x = Random.State.float rng total in
    let rec pick k acc =
      if k >= n - 1 then n - 1
      else
        let acc = acc +. weights.(k) in
        if x < acc then k else pick (k + 1) acc
    in
    pick 0 0.
  end

(* Weighted choice among (weight, value) pairs. *)
let weighted rng choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Workload.weighted: no positive weight";
  let x = Random.State.int rng total in
  let rec pick acc = function
    | [] -> invalid_arg "Workload.weighted: unreachable"
    | (w, v) :: rest -> if x < acc + w then v else pick (acc + w) rest
  in
  pick 0 choices

let bank_op rng ~deposit ~withdraw ~balance =
  weighted rng
    [
      (deposit, `Deposit);
      (withdraw, `Withdraw);
      (balance, `Balance);
    ]
  |> function
  | `Deposit -> Op.invocation ~args:[ Value.int (1 + Random.State.int rng 3) ] "deposit"
  | `Withdraw -> Op.invocation ~args:[ Value.int (1 + Random.State.int rng 3) ] "withdraw"
  | `Balance -> Op.invocation "balance"

let bank_hotspot ?(ops = 3) ?(deposit = 45) ?(withdraw = 45) ?(balance = 10) () =
  {
    name = "bank-hotspot";
    generate =
      (fun rng ->
        List.init ops (fun _ -> ("BA", bank_op rng ~deposit ~withdraw ~balance)));
  }

let bank_accounts ?(ops = 4) ?(accounts = 8) ?(skew = 0.8) ?(deposit = 45)
    ?(withdraw = 45) ?(balance = 10) () =
  {
    name = "bank-accounts";
    generate =
      (fun rng ->
        List.init ops (fun _ ->
            let a = zipf rng ~n:accounts ~skew in
            (Fmt.str "BA%d" a, bank_op rng ~deposit ~withdraw ~balance)));
  }

let inventory ?(ops = 3) ?(incr = 30) ?(decr = 50) ?(read = 20) () =
  {
    name = "inventory";
    generate =
      (fun rng ->
        List.init ops (fun _ ->
            let inv =
              match weighted rng [ (incr, `Incr); (decr, `Decr); (read, `Read) ] with
              | `Incr -> Op.invocation ~args:[ Value.int (1 + Random.State.int rng 2) ] "incr"
              | `Decr -> Op.invocation ~args:[ Value.int (1 + Random.State.int rng 2) ] "decr"
              | `Read -> Op.invocation "read"
            in
            ("CTR", inv)));
  }

let queue_broker ?(ops = 2) ?(producer_pct = 60) ~obj () =
  {
    name = Fmt.str "queue-broker(%s)" obj;
    generate =
      (fun rng ->
        if Random.State.int rng 100 < producer_pct then
          List.init ops (fun _ ->
              (obj, Op.invocation ~args:[ Value.int (1 + Random.State.int rng 3) ] "enq"))
        else List.init ops (fun _ -> (obj, Op.invocation "deq")));
  }

let transfer ?(accounts = 4) ?(skew = 0.4) () =
  {
    name = "transfer";
    generate =
      (fun rng ->
        let src = zipf rng ~n:accounts ~skew in
        let dst = (src + 1 + Random.State.int rng (accounts - 1)) mod accounts in
        let amount = 1 + Random.State.int rng 3 in
        [
          (Fmt.str "BA%d" src, Op.invocation ~args:[ Value.int amount ] "withdraw");
          (Fmt.str "BA%d" dst, Op.invocation ~args:[ Value.int amount ] "deposit");
        ]);
  }

let register_mix ?(ops = 3) ?(write_pct = 20) () =
  {
    name = "register-mix";
    generate =
      (fun rng ->
        List.init ops (fun _ ->
            let inv =
              if Random.State.int rng 100 < write_pct then
                Op.invocation ~args:[ Value.int (Random.State.int rng 3) ] "write"
              else Op.invocation "read"
            in
            ("REG", inv)));
  }

let kv_mix ?(ops = 3) ?(keys = 4) ?(skew = 0.8) ?(put = 30) ?(get = 60) ?(del = 10) () =
  {
    name = "kv-mix";
    generate =
      (fun rng ->
        List.init ops (fun _ ->
            let k = Fmt.str "key%d" (zipf rng ~n:keys ~skew) in
            let inv =
              match weighted rng [ (put, `Put); (get, `Get); (del, `Del) ] with
              | `Put ->
                  Op.invocation
                    ~args:[ Value.str k; Value.int (1 + Random.State.int rng 2) ]
                    "put"
              | `Get -> Op.invocation ~args:[ Value.str k ] "get"
              | `Del -> Op.invocation ~args:[ Value.str k ] "del"
            in
            ("KV", inv)));
  }
