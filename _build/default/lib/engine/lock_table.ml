open Tm_core

type t = {
  conflict : Conflict.t;
  mutable held : (Tid.t * Op.t) list;  (* newest first *)
}

let create conflict = { conflict; held = [] }

let blockers t ~requested ~tid =
  List.filter_map
    (fun (holder, op) ->
      if
        (not (Tid.equal holder tid))
        && Conflict.conflicts t.conflict ~requested ~held:op
      then Some holder
      else None)
    t.held
  |> List.sort_uniq Tid.compare

let add t tid op = t.held <- (tid, op) :: t.held
let release t tid = t.held <- List.filter (fun (h, _) -> not (Tid.equal h tid)) t.held
let holds t = List.rev t.held
let conflict t = t.conflict
