(** Waits-for graph and cycle detection.

    Conflict-based locking blocks transactions behind lock holders;
    a cycle in the waits-for relation is a deadlock.  The scheduler
    registers an edge set per blocked transaction and asks for a cycle;
    the conventional victim is the youngest transaction in the cycle. *)

open Tm_core

type t

val create : unit -> t

(** [set_waiting t tid ~on] replaces [tid]'s outgoing edges. *)
val set_waiting : t -> Tid.t -> on:Tid.t list -> unit

(** [clear t tid] removes [tid]'s outgoing edges {e and} every edge
    pointing at it (call on commit/abort). *)
val clear : t -> Tid.t -> unit

(** [find_cycle t] is some cycle [t1 → t2 → … → t1] (listed without the
    closing repeat) if the graph has one. *)
val find_cycle : t -> Tid.t list option

(** [victim cycle] is the youngest (largest-id) transaction. *)
val victim : Tid.t list -> Tid.t

val waiting : t -> Tid.t -> Tid.t list
