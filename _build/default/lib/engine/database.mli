(** A multi-object transactional database.

    Objects are independent atomic objects (dynamic atomicity is a local
    property — Theorem 2 — so different objects may even use different
    recovery methods and conflict relations); the database adds
    transaction bookkeeping, atomic commitment across the objects a
    transaction touched, waits-for tracking and an optional global event
    history for offline verification with {!Tm_core.Atomicity}. *)

open Tm_core

type t

val create : ?record_history:bool -> Atomic_object.t list -> t
val add_object : t -> Atomic_object.t -> unit
val objects : t -> Atomic_object.t list
val find_object : t -> string -> Atomic_object.t

(** [begin_txn t] allocates a fresh transaction id. *)
val begin_txn : t -> Tid.t

(** [invoke t tid ~obj inv] — attempt an operation; records the waits-for
    edges on [Blocked].  Raises [Invalid_argument] for an unknown object
    or a transaction that already finished. *)
val invoke :
  ?choose:(Value.t list -> Value.t) ->
  t ->
  Tid.t ->
  obj:string ->
  Op.invocation ->
  Atomic_object.outcome

(** [commit t tid] commits at every object the transaction touched
    (atomic commitment, Section 2).  For optimistic objects use
    {!try_commit}, which validates first. *)
val commit : t -> Tid.t -> unit

val abort : t -> Tid.t -> unit

(** [try_commit t tid] validates at every touched object (a no-op for
    locking objects) and commits at all of them; on a validation failure
    the transaction is aborted everywhere and the conflicting object and
    operation pair are returned. *)
val try_commit : t -> Tid.t -> (unit, string * Op.t * Op.t) result

(** [deadlock t] — current waits-for cycle, if any. *)
val deadlock : t -> Tid.t list option

(** The global event history (empty unless [record_history] was set). *)
val history : t -> History.t

(** Committed transactions count / aborted count. *)
val committed_count : t -> int

val aborted_count : t -> int

(** Total blocked invocation attempts across objects. *)
val total_blocks : t -> int
