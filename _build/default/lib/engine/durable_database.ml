open Tm_core

type t = {
  db : Database.t;
  wal : Wal.t;
  begun : (Tid.t, unit) Hashtbl.t;
}

let create ~wal objs = { db = Database.create objs; wal; begun = Hashtbl.create 16 }
let database t = t.db
let begin_txn t = Database.begin_txn t.db

let invoke ?choose t tid ~obj inv =
  let outcome = Database.invoke ?choose t.db tid ~obj inv in
  (match outcome with
  | Atomic_object.Executed op ->
      if not (Hashtbl.mem t.begun tid) then begin
        Hashtbl.add t.begun tid ();
        Wal.append t.wal (Wal.Begin tid)
      end;
      Wal.append t.wal (Wal.Operation (tid, op))
  | Atomic_object.Blocked _ | Atomic_object.No_response -> ());
  outcome

let try_commit t tid =
  (* Validate first (nothing logged on failure), then force the single
     commit record — the transaction is durable at every object from
     that instant — then apply. *)
  let failed =
    List.find_map
      (fun o ->
        match Atomic_object.validate o tid with
        | Ok () -> None
        | Error (mine, theirs) -> Some (Atomic_object.name o, mine, theirs))
      (Database.objects t.db)
  in
  match failed with
  | Some _ as e ->
      Wal.append t.wal (Wal.Abort tid);
      Hashtbl.remove t.begun tid;
      Database.abort t.db tid;
      (match e with Some x -> Error x | None -> assert false)
  | None ->
      Wal.append t.wal (Wal.Commit tid);
      Hashtbl.remove t.begun tid;
      Database.commit t.db tid;
      Ok ()

let abort t tid =
  Wal.append t.wal (Wal.Abort tid);
  Hashtbl.remove t.begun tid;
  Database.abort t.db tid

let recover ~wal ~rebuild =
  let committed, losers = Wal.replay (Wal.records wal) in
  let objs = rebuild () in
  List.iter
    (fun o ->
      let mine =
        List.filter
          (fun (op : Op.t) -> String.equal op.obj (Atomic_object.name o))
          committed
      in
      Atomic_object.restore o mine)
    objs;
  (create ~wal objs, losers)
