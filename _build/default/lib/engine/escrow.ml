open Tm_core

(* Per-transaction escrow holdings. *)
type holding = {
  mutable incr_sum : int;
  mutable decr_sum : int;
  mutable reads : bool;
  mutable ops_rev : Op.t list;
}

type t = {
  name : string;
  capacity : int;
  mutable committed : int;
  mutable total_incr : int;  (* Σ uncommitted increments *)
  mutable total_decr : int;  (* Σ uncommitted decrements *)
  holdings : (Tid.t, holding) Hashtbl.t;
  mutable committed_ops_rev : Op.t list;
  mutable refusals : int;
}

type outcome =
  | Granted of Op.t
  | Refused

let pp_outcome ppf = function
  | Granted op -> Fmt.pf ppf "granted %a" Op.pp op
  | Refused -> Fmt.string ppf "refused (escrow interval too wide)"

let create ~capacity ~initial ~name =
  if initial < 0 || initial > capacity then invalid_arg "Escrow.create: initial out of range";
  {
    name;
    capacity;
    committed = initial;
    total_incr = 0;
    total_decr = 0;
    holdings = Hashtbl.create 16;
    committed_ops_rev = [];
    refusals = 0;
  }

let name t = t.name

let holding t tid =
  match Hashtbl.find_opt t.holdings tid with
  | Some h -> h
  | None ->
      let h = { incr_sum = 0; decr_sum = 0; reads = false; ops_rev = [] } in
      Hashtbl.add t.holdings tid h;
      h

(* Conservative bounds on every value the counter can reach, whichever
   subset of active transactions commits. *)
let low t = t.committed - t.total_decr
let high t = t.committed + t.total_incr
let interval t = (low t, high t)

let others_hold_read t tid =
  Hashtbl.fold
    (fun holder h acc -> acc || ((not (Tid.equal holder tid)) && h.reads))
    t.holdings false

let others_hold_updates t tid =
  let own = holding t tid in
  t.total_incr - own.incr_sum > 0 || t.total_decr - own.decr_sum > 0

let grant t tid op =
  let h = holding t tid in
  h.ops_rev <- op :: h.ops_rev;
  Granted op

let refuse t =
  t.refusals <- t.refusals + 1;
  Refused

let invoke t tid (inv : Op.invocation) =
  match inv.name, inv.args with
  | "incr", [ Value.Int i ] when i > 0 ->
      (* Granted only if legal in every reachable state; an active exact
         read pins the value, so updates also wait for readers. *)
      if others_hold_read t tid then refuse t
      else if high t + i <= t.capacity then begin
        let h = holding t tid in
        h.incr_sum <- h.incr_sum + i;
        t.total_incr <- t.total_incr + i;
        grant t tid (Op.make ~obj:t.name ~args:[ Value.int i ] "incr" Value.ok)
      end
      else refuse t
  | "decr", [ Value.Int i ] when i > 0 ->
      if others_hold_read t tid then refuse t
      else if low t - i >= 0 then begin
        let h = holding t tid in
        h.decr_sum <- h.decr_sum + i;
        t.total_decr <- t.total_decr + i;
        grant t tid (Op.make ~obj:t.name ~args:[ Value.int i ] "decr" Value.ok)
      end
      else refuse t
  | "read", [] ->
      (* Exact read: only when no *other* transaction has escrow pending
         (its own updates are deterministic for it); holding the read then
         blocks others' updates until this transaction completes. *)
      if others_hold_updates t tid then refuse t
      else begin
        let h = holding t tid in
        let value = t.committed + h.incr_sum - h.decr_sum in
        h.reads <- true;
        grant t tid (Op.make ~obj:t.name "read" (Value.int value))
      end
  | _ -> invalid_arg (Fmt.str "Escrow.invoke: unsupported invocation %a" Op.pp_invocation inv)

let release t tid =
  match Hashtbl.find_opt t.holdings tid with
  | None -> { incr_sum = 0; decr_sum = 0; reads = false; ops_rev = [] }
  | Some h ->
      Hashtbl.remove t.holdings tid;
      t.total_incr <- t.total_incr - h.incr_sum;
      t.total_decr <- t.total_decr - h.decr_sum;
      h

let commit t tid =
  let h = release t tid in
  t.committed <- t.committed + h.incr_sum - h.decr_sum;
  t.committed_ops_rev <- h.ops_rev @ t.committed_ops_rev

let abort t tid = ignore (release t tid)
let committed_value t = t.committed
let committed_ops t = List.rev t.committed_ops_rev
let refusal_count t = t.refusals
