lib/engine/wal.mli: Format Op Tid Tm_core
