lib/engine/atomic_object.mli: Conflict Format Op Recovery Spec Tid Tm_core Value
