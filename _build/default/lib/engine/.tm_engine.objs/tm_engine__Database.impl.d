lib/engine/database.ml: Atomic_object Deadlock Event Fmt Hashtbl History List Op Option Tid Tm_core
