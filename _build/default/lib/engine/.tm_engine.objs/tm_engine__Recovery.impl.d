lib/engine/recovery.ml: Explore Fmt Hashtbl List Op Option Spec Tid Tm_core Value
