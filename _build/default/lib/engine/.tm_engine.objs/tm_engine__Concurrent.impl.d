lib/engine/concurrent.ml: Atomic_object Condition Database Deadlock Fun Hashtbl Mutex Op Tid Tm_core
