lib/engine/database.mli: Atomic_object History Op Tid Tm_core Value
