lib/engine/durable_object.mli: Atomic_object Conflict Op Recovery Spec Tid Tm_core Value Wal
