lib/engine/durable_database.ml: Atomic_object Database Hashtbl List Op String Tid Tm_core Wal
