lib/engine/durable_database.mli: Atomic_object Database Op Tid Tm_core Value Wal
