lib/engine/escrow.ml: Fmt Hashtbl List Op Tid Tm_core Value
