lib/engine/durable_object.ml: Atomic_object Hashtbl Tid Tm_core Wal
