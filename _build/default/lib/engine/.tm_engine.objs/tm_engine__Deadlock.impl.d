lib/engine/deadlock.ml: Hashtbl List Option Tid Tm_core
