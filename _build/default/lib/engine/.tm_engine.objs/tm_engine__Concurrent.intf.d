lib/engine/concurrent.mli: Atomic_object Database History Op Tid Tm_core Value
