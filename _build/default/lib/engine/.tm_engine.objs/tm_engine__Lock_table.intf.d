lib/engine/lock_table.mli: Conflict Op Tid Tm_core
