lib/engine/escrow.mli: Format Op Tid Tm_core
