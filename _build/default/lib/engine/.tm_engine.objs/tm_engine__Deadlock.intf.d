lib/engine/deadlock.mli: Tid Tm_core
