lib/engine/atomic_object.ml: Conflict Fmt Hashtbl List Lock_table Op Option Recovery Spec Tid Tm_core
