lib/engine/lock_table.ml: Conflict List Op Tid Tm_core
