lib/engine/wal.ml: Fmt Hashtbl List Op Option Tid Tm_core
