lib/engine/recovery.mli: Format Op Spec Tid Tm_core Value
