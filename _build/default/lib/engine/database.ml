open Tm_core

type txn_status =
  | Running
  | Committed
  | Aborted

type t = {
  mutable objs : (string * Atomic_object.t) list;
  record_history : bool;
  mutable events : Event.t list;  (* newest first *)
  status : (Tid.t, txn_status) Hashtbl.t;
  touched : (Tid.t, string list) Hashtbl.t;
  waits : Deadlock.t;
  mutable next_tid : int;
  mutable committed : int;
  mutable aborted : int;
}

let create ?(record_history = false) objs =
  {
    objs = List.map (fun o -> (Atomic_object.name o, o)) objs;
    record_history;
    events = [];
    status = Hashtbl.create 64;
    touched = Hashtbl.create 64;
    waits = Deadlock.create ();
    next_tid = 0;
    committed = 0;
    aborted = 0;
  }

let add_object t o = t.objs <- t.objs @ [ (Atomic_object.name o, o) ]
let objects t = List.map snd t.objs

let find_object t name =
  match List.assoc_opt name t.objs with
  | Some o -> o
  | None -> invalid_arg ("Database.find_object: unknown object " ^ name)

let begin_txn t =
  let tid = Tid.of_int t.next_tid in
  t.next_tid <- t.next_tid + 1;
  Hashtbl.replace t.status tid Running;
  tid

let check_running t tid =
  match Hashtbl.find_opt t.status tid with
  | Some Running -> ()
  | Some Committed | Some Aborted ->
      invalid_arg (Fmt.str "Database: transaction %a already finished" Tid.pp tid)
  | None -> invalid_arg (Fmt.str "Database: unknown transaction %a" Tid.pp tid)

let push_event t e = if t.record_history then t.events <- e :: t.events

let touched_objs t tid = Option.value (Hashtbl.find_opt t.touched tid) ~default:[]

let invoke ?choose t tid ~obj inv =
  check_running t tid;
  let o = find_object t obj in
  let outcome = Atomic_object.invoke ?choose o tid inv in
  (match outcome with
  | Atomic_object.Executed op ->
      Deadlock.clear t.waits tid;
      push_event t (Event.invoke ~obj ~tid inv);
      push_event t (Event.respond ~obj ~tid op.Op.res);
      let objs = touched_objs t tid in
      if not (List.mem obj objs) then Hashtbl.replace t.touched tid (obj :: objs)
  | Atomic_object.Blocked holders -> Deadlock.set_waiting t.waits tid ~on:holders
  | Atomic_object.No_response -> ());
  outcome

let finish t tid status per_object =
  check_running t tid;
  List.iter
    (fun obj ->
      per_object (find_object t obj) tid;
      push_event t
        (match status with
        | Committed -> Event.commit ~obj ~tid
        | Running | Aborted -> Event.abort ~obj ~tid))
    (List.rev (touched_objs t tid));
  Hashtbl.replace t.status tid status;
  Hashtbl.remove t.touched tid;
  Deadlock.clear t.waits tid

let commit t tid =
  finish t tid Committed Atomic_object.commit;
  t.committed <- t.committed + 1

let abort t tid =
  finish t tid Aborted Atomic_object.abort;
  t.aborted <- t.aborted + 1

let try_commit t tid =
  check_running t tid;
  (* Two-phase: validate at every touched object, then commit at all of
     them; a single validation failure aborts everywhere. *)
  let objs = List.rev (touched_objs t tid) in
  let failed =
    List.find_map
      (fun obj ->
        match Atomic_object.validate (find_object t obj) tid with
        | Ok () -> None
        | Error (mine, theirs) -> Some (obj, mine, theirs))
      objs
  in
  match failed with
  | None ->
      commit t tid;
      Ok ()
  | Some _ as e ->
      abort t tid;
      (match e with Some x -> Error x | None -> assert false)

let deadlock t = Deadlock.find_cycle t.waits
let history t = History.of_events (List.rev t.events)
let committed_count t = t.committed
let aborted_count t = t.aborted

let total_blocks t =
  List.fold_left (fun acc (_, o) -> acc + Atomic_object.block_count o) 0 t.objs
