(** The escrow transactional method (O'Neil 1986) for a bounded counter.

    Section 8 of the paper singles this algorithm out as one that its
    conflict-based framework cannot express: "a type-specific concurrency
    control and recovery algorithm in which concurrency control and
    recovery are tightly coupled, and in which the test for conflicts
    depends on the current state of the object".  It is implemented here
    as a comparison point for the benchmarks.

    The object maintains, besides the committed value, the sums of
    uncommitted increments and decrements.  Every state the value could
    reach — whatever subset of active transactions eventually commits —
    lies in the interval

    [[ committed − pending_decr,  committed + pending_incr ]]

    (clipped to [[0, capacity]]).  An update is granted iff it is legal in
    {e every} reachable state: [decr(i)] needs [low ≥ i], [incr(i)] needs
    [high + i ≤ capacity].  Granted updates adjust the pending sums;
    commit folds them into the committed value; abort returns them.  Both
    directions of update can therefore run concurrently — escrow grants
    strictly more than UIP+NRBC and DU+NFC on counter workloads — while
    reads of the exact value are granted only when the interval is a
    point.

    The price is genericity: the algorithm is specific to commutative
    numeric updates, whereas the conflict-relation framework applies to
    arbitrary types. *)

open Tm_core

type t

type outcome =
  | Granted of Op.t
  | Refused
      (** the operation would be illegal in some reachable state — retry
          after other transactions complete *)

val pp_outcome : Format.formatter -> outcome -> unit

val create : capacity:int -> initial:int -> name:string -> t
val name : t -> string

(** [invoke t tid inv] — invocations are [incr(i)], [decr(i)], [read].
    Updates are granted against the escrow interval; [read → n] is
    granted only when the interval is the point [n].  Raises
    [Invalid_argument] on other invocations. *)
val invoke : t -> Tid.t -> Op.invocation -> outcome

val commit : t -> Tid.t -> unit
val abort : t -> Tid.t -> unit

(** Committed value (for verification). *)
val committed_value : t -> int

(** The current escrow interval (low, high). *)
val interval : t -> int * int

(** Committed operations in commit order; replaying them against
    [Bounded_counter]'s specification must succeed. *)
val committed_ops : t -> Op.t list

(** Refused-invocation counter (the escrow analogue of blocking). *)
val refusal_count : t -> int
