lib/adt/append_log.mli: Conflict Op Spec Tm_core
