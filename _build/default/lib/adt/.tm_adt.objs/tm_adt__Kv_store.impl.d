lib/adt/kv_store.ml: Conflict Fmt Int List Map Op Spec String Tm_core Value
