lib/adt/semiqueue.mli: Conflict Op Spec Tm_core
