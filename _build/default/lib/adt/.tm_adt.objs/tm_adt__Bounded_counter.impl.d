lib/adt/bounded_counter.ml: Conflict Fmt Int List Op Spec Tm_core Value
