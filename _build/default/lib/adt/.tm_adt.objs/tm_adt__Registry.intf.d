lib/adt/registry.mli: Conflict Op Spec Tm_core
