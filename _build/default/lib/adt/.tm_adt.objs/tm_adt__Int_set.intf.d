lib/adt/int_set.mli: Conflict Op Set Spec Tm_core
