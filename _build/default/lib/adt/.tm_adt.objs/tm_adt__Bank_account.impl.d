lib/adt/bank_account.ml: Commutativity Conflict Fmt Int List Op Spec Tm_core Value
