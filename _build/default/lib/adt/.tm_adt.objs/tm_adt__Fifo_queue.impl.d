lib/adt/fifo_queue.ml: Conflict Fmt Int List Op Spec Tm_core Value
