lib/adt/ordered_map.ml: Conflict Fmt Int List Map Op Spec Tm_core Value
