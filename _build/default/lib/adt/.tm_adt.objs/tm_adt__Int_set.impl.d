lib/adt/int_set.ml: Conflict Fmt Int List Op Set Spec Tm_core Value
