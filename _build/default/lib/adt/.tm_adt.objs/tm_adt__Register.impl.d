lib/adt/register.ml: Conflict Fmt Int List Op Spec Tm_core Value
