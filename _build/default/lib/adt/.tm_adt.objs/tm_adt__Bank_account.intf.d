lib/adt/bank_account.mli: Commutativity Conflict Op Spec Tm_core
