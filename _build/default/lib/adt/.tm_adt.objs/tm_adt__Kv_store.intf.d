lib/adt/kv_store.mli: Conflict Map Op Spec Tm_core
