lib/adt/registry.ml: Append_log Bank_account Bounded_counter Conflict Fifo_queue Int_set Kv_store List Op Ordered_map Register Semiqueue Spec Stack String Tm_core
