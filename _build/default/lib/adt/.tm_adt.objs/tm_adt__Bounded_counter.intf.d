lib/adt/bounded_counter.mli: Conflict Op Spec Tm_core
