lib/adt/ordered_map.mli: Conflict Map Op Spec Tm_core
