lib/adt/stack.mli: Conflict Op Spec Tm_core
