lib/adt/register.mli: Conflict Op Spec Tm_core
