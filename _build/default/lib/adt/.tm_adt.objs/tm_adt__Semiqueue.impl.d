lib/adt/semiqueue.ml: Conflict Fmt Int List Op Option Spec Tm_core Value
