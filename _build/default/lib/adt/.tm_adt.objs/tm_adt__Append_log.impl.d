lib/adt/append_log.ml: Conflict Fmt Int List Op Spec Tm_core Value
