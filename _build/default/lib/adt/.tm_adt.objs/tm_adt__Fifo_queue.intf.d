lib/adt/fifo_queue.mli: Conflict Op Spec Tm_core
