open Tm_core

type state = int

let obj = "REG"

module S = struct
  type nonrec state = state

  let name = obj
  let initial = 0
  let equal_state = Int.equal
  let compare_state = Int.compare
  let pp_state = Fmt.int

  let respond v (inv : Op.invocation) =
    match inv.name, inv.args with
    | "write", [ Value.Int x ] -> [ (Value.ok, x) ]
    | "read", [] -> [ (Value.Int v, v) ]
    | _ -> []

  let generators =
    List.concat_map
      (fun x ->
        [ Op.make ~obj ~args:[ Value.int x ] "write" Value.ok;
          Op.make ~obj "read" (Value.int x) ])
      [ 0; 1; 2 ]
end

let spec = Spec.pack (module S)
let write x = Op.make ~obj ~args:[ Value.int x ] "write" Value.ok
let read v = Op.make ~obj "read" (Value.int v)

type klass =
  | Write of int
  | Read of int

let classify (op : Op.t) =
  match op.inv.name, op.inv.args, op.res with
  | "write", [ Value.Int x ], _ -> Write x
  | "read", [], Value.Int v -> Read v
  | _ -> invalid_arg ("Register: not a register operation: " ^ Op.to_string op)

(* Derivations:
   - write(x)/write(y): final values differ unless x = y.
   - write(x)/read→v: both legal only when the state is v; the read after
     the write returns x, so the pair is FC exactly when x = v.
   - write(x) pushes back over read→v only when x = v (otherwise the read
     is legal before but returns the wrong value after); read→v pushes
     back over write(x) only when x ≠ v (then "read right after the
     write" is impossible and the condition is vacuous).
   - reads always commute with reads (distinct results never co-legal). *)
let forward_commutes p q =
  match classify p, classify q with
  | Write x, Write y -> x = y
  | Write x, Read v | Read v, Write x -> x = v
  | Read _, Read _ -> true

let right_commutes_backward p q =
  match classify p, classify q with
  | Write x, Write y -> x = y
  | Write x, Read v -> x = v
  | Read v, Write x -> x <> v
  | Read _, Read _ -> true

let nfc_conflict =
  Conflict.make ~name:"REG-NFC" (fun ~requested ~held ->
      not (forward_commutes requested held))

let nrbc_conflict =
  Conflict.make ~name:"REG-NRBC" (fun ~requested ~held ->
      not (right_commutes_backward requested held))

let rw_conflict =
  Conflict.read_write ~name:"REG-RW" ~is_read:(fun op ->
      match classify op with Read _ -> true | Write _ -> false)

let classes =
  [
    ("write", [ write 0; write 1; write 2 ]);
    ("read", [ read 0; read 1; read 2 ]);
  ]
