open Tm_core

type state = int list
(* Most recent entry first. *)

let obj = "LOG"

module S = struct
  type nonrec state = state

  let name = obj
  let initial = []
  let equal_state = List.equal Int.equal
  let compare_state = List.compare Int.compare
  let pp_state ppf s = Fmt.pf ppf "log<%a>" Fmt.(list ~sep:comma int) (List.rev s)

  let respond s (inv : Op.invocation) =
    match inv.name, inv.args, s with
    | "append", [ Value.Int x ], _ -> [ (Value.ok, x :: s) ]
    | "last", [], latest :: _ -> [ (Value.int latest, s) ]
    | "last", [], [] -> []
    | "len", [], _ -> [ (Value.int (List.length s), s) ]
    | _ -> []

  let generators =
    [
      Op.make ~obj ~args:[ Value.int 1 ] "append" Value.ok;
      Op.make ~obj ~args:[ Value.int 2 ] "append" Value.ok;
      Op.make ~obj "last" (Value.int 1);
      Op.make ~obj "last" (Value.int 2);
      Op.make ~obj "len" (Value.int 0);
      Op.make ~obj "len" (Value.int 1);
      Op.make ~obj "len" (Value.int 2);
    ]
end

let spec = Spec.pack (module S)
let append x = Op.make ~obj ~args:[ Value.int x ] "append" Value.ok
let last x = Op.make ~obj "last" (Value.int x)
let len n = Op.make ~obj "len" (Value.int n)

type klass =
  | Append of int
  | Last of int
  | Len of int

let classify (op : Op.t) =
  match op.inv.name, op.inv.args, op.res with
  | "append", [ Value.Int x ], _ -> Append x
  | "last", [], Value.Int v -> Last v
  | "len", [], Value.Int n -> Len n
  | _ -> invalid_arg ("Append_log: not a log operation: " ^ Op.to_string op)

(* Derivations:
   - append/append: the order is observable (by last, or by len after
     removals — here simply by future lasts), except for equal entries,
     which produce identical sequences.
   - last→v vs append(x): after the append the last entry is x, so they
     relate exactly when v = x — in FC (the pinned answer survives the
     append) and in "append pushes back over last"; "last pushes back
     over append" holds in the complementary case, where "last right
     after the append" is impossible.
   - len→n vs append: the count is off by one in every co-legal context,
     so they never commute forward; len pushes back over an append only
     vacuously (n = 0), an append never pushes back over a len.
   - reads (last, len) always commute with each other. *)
let forward_commutes p q =
  match classify p, classify q with
  | Append x, Append y -> x = y
  | Append x, Last v | Last v, Append x -> v = x
  | Append _, Len _ | Len _, Append _ -> false
  | (Last _ | Len _), (Last _ | Len _) -> true

let right_commutes_backward p q =
  match classify p, classify q with
  | Append x, Append y -> x = y
  | Append x, Last v -> v = x
  | Last v, Append x -> v <> x
  | Append _, Len _ -> false
  | Len n, Append _ -> n = 0
  | (Last _ | Len _), (Last _ | Len _) -> true

let nfc_conflict =
  Conflict.make ~name:"LOG-NFC" (fun ~requested ~held ->
      not (forward_commutes requested held))

let nrbc_conflict =
  Conflict.make ~name:"LOG-NRBC" (fun ~requested ~held ->
      not (right_commutes_backward requested held))

let rw_conflict =
  Conflict.read_write ~name:"LOG-RW" ~is_read:(fun op ->
      match op.Op.inv.name with "last" | "len" -> true | _ -> false)

let classes =
  [
    ("append", [ append 1; append 2 ]);
    ("last", [ last 1; last 2 ]);
    ("len", [ len 0; len 1; len 2 ]);
  ]
