(** A read/write register — the classical "uninterpreted data" case.

    State: an integer value.  Operations: [write(x) → ok] and
    [read → v].

    Because the relations of the paper are on {e operations} (results
    included), even this type has result-dependent structure: a
    [write(x)] commutes forward with a [read → v] exactly when [x = v],
    and [read → v] right-commutes-backward with [write(x)] exactly when
    [x ≠ v] (the read is then illegal right after the write, making the
    condition vacuous).  Coarsened to invocations, the relations collapse
    to the familiar read/write conflict table. *)

open Tm_core

type state = int

module S : Spec.S with type state = state

val spec : Spec.t
val write : int -> Op.t
val read : int -> Op.t
val forward_commutes : Op.t -> Op.t -> bool
val right_commutes_backward : Op.t -> Op.t -> bool
val nfc_conflict : Conflict.t
val nrbc_conflict : Conflict.t
val rw_conflict : Conflict.t
val classes : (string * Op.t list) list
