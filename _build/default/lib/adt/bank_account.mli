(** The paper's running example: a bank account (Sections 3.2, 6.2, 6.3).

    State: a non-negative balance.  Operations:
    - [deposit(i) → ok] (any [i > 0]);
    - [withdraw(i) → ok] when the balance is at least [i] (debits it);
    - [withdraw(i) → no] when it is not (leaves it unchanged);
    - [balance → i] returns the current balance.

    The closed-form commutativity relations below are the paper's
    Figures 6-1 and 6-2, derived per operation pair (see the comments in
    the implementation); property tests validate them against the generic
    bounded decision procedures. *)

open Tm_core

type state = int

module S : Spec.S with type state = state

val spec : Spec.t

(** [spec_with_initial b] is the same type with opening balance [b]
    (workloads that must exercise successful withdrawals pre-fund the
    account).  The commutativity relations are initial-state-independent:
    they quantify over reachable contexts. *)
val spec_with_initial : int -> Spec.t

(** {1 Operation constructors} *)

val deposit : int -> Op.t
val withdraw_ok : int -> Op.t
val withdraw_no : int -> Op.t
val balance : int -> Op.t

(** {1 Closed-form relations} *)

(** Figure 6-1.  [forward_commutes p q] — do [p] and [q] commute forward?
    Raises [Invalid_argument] on operations that are not bank-account
    operations. *)
val forward_commutes : Op.t -> Op.t -> bool

(** Figure 6-2.  [right_commutes_backward p q] — does [p] right commute
    backward with [q]?  Not symmetric. *)
val right_commutes_backward : Op.t -> Op.t -> bool

(** [inverse op] — compensating operations for the engine's
    update-in-place undo fast path ({!Tm_core.Spec} is unaffected):
    deposits and successful withdrawals undo each other; failed
    withdrawals and balance reads need nothing. *)
val inverse : Op.t -> Op.t list option

(** {1 Conflict relations for the engine} *)

(** NFC: the minimal conflict relation for deferred-update recovery. *)
val nfc_conflict : Conflict.t

(** NRBC: the minimal conflict relation for update-in-place recovery. *)
val nrbc_conflict : Conflict.t

(** Classical read/write baseline: [balance] is a read; everything else is
    a write. *)
val rw_conflict : Conflict.t

(** {1 Table rendering} *)

(** Operation classes for rendering Figures 6-1/6-2:
    ["deposit"], ["withdraw/ok"], ["withdraw/no"], ["balance"], with small
    representative argument sets. *)
val classes : (string * Op.t list) list

(** The paper's Figure 6-1 as an expected table (marks = pairs that do
    {e not} commute forward). *)
val paper_fc_table : Commutativity.table

(** The paper's Figure 6-2 (marks = row does {e not} right-commute-backward
    with column). *)
val paper_rbc_table : Commutativity.table
