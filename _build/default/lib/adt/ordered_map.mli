(** An ordered map over integer keys with a range aggregate — the
    predicate-locking shape.

    State: a finite map [int → int].  Operations:
    - [put(k, v) → ok], [del(k) → ok] (idempotent);
    - [get(k) → [v]] / [get(k) → []];
    - [count(lo, hi) → n] — the number of bound keys in [[lo, hi]].

    The commutativity relations conflict an update with a [count] only
    when its key lies {e inside} the queried interval — the ADT-level
    analogue of key-range/predicate locks, falling out of the paper's
    definitions with no extra machinery.  The closed forms also carry
    interval-capacity refinements: a [count] that returns the full size
    of its interval pins every key in it as present, so updates of bound
    keys commute vacuously with it (derivations in the implementation,
    validated against the decision procedures by the test suite). *)

open Tm_core

module Int_map : Map.S with type key = int

type state = int Int_map.t

module S : Spec.S with type state = state

val spec : Spec.t
val put : int -> int -> Op.t
val del : int -> Op.t
val get : int -> int option -> Op.t
val count : int -> int -> int -> Op.t

val forward_commutes : Op.t -> Op.t -> bool
val right_commutes_backward : Op.t -> Op.t -> bool
val nfc_conflict : Conflict.t
val nrbc_conflict : Conflict.t

(** [get] and [count] are reads. *)
val rw_conflict : Conflict.t

val classes : (string * Op.t list) list
