(** A LIFO stack with a partial pop.

    State: a sequence (top first).  Operations: [push(x) → ok];
    [pop → x] removes and returns the top — partial on the empty stack.
    The push-then-pop cancellation gives this type an unusual relation:
    [push(x)] and [pop → x] commute forward (they cancel), while a pop of
    any *other* value conflicts. *)

open Tm_core

type state = int list

module S : Spec.S with type state = state

val spec : Spec.t
val push : int -> Op.t
val pop : int -> Op.t
val forward_commutes : Op.t -> Op.t -> bool
val right_commutes_backward : Op.t -> Op.t -> bool
val nfc_conflict : Conflict.t
val nrbc_conflict : Conflict.t
val rw_conflict : Conflict.t
val classes : (string * Op.t list) list
