open Tm_core

type entry = {
  name : string;
  description : string;
  spec : Spec.t;
  classes : (string * Op.t list) list;
  nfc : Conflict.t;
  nrbc : Conflict.t;
  rw : Conflict.t;
}

let all =
  [
    {
      name = "BA";
      description = "bank account (the paper's running example)";
      spec = Bank_account.spec;
      classes = Bank_account.classes;
      nfc = Bank_account.nfc_conflict;
      nrbc = Bank_account.nrbc_conflict;
      rw = Bank_account.rw_conflict;
    };
    {
      name = "CTR";
      description = "bounded counter / escrow pool (capacity 4)";
      spec = Bounded_counter.spec;
      classes = Bounded_counter.classes;
      nfc = Bounded_counter.nfc_conflict;
      nrbc = Bounded_counter.nrbc_conflict;
      rw = Bounded_counter.rw_conflict;
    };
    {
      name = "REG";
      description = "read/write register";
      spec = Register.spec;
      classes = Register.classes;
      nfc = Register.nfc_conflict;
      nrbc = Register.nrbc_conflict;
      rw = Register.rw_conflict;
    };
    {
      name = "SET";
      description = "set of integers with idempotent updates";
      spec = Int_set.spec;
      classes = Int_set.classes;
      nfc = Int_set.nfc_conflict;
      nrbc = Int_set.nrbc_conflict;
      rw = Int_set.rw_conflict;
    };
    {
      name = "KV";
      description = "key/value store";
      spec = Kv_store.spec;
      classes = Kv_store.classes;
      nfc = Kv_store.nfc_conflict;
      nrbc = Kv_store.nrbc_conflict;
      rw = Kv_store.rw_conflict;
    };
    {
      name = "OM";
      description = "ordered map with range counting (key-range conflicts)";
      spec = Ordered_map.spec;
      classes = Ordered_map.classes;
      nfc = Ordered_map.nfc_conflict;
      nrbc = Ordered_map.nrbc_conflict;
      rw = Ordered_map.rw_conflict;
    };
    {
      name = "SQ";
      description = "semiqueue (non-deterministic dequeue)";
      spec = Semiqueue.spec;
      classes = Semiqueue.classes;
      nfc = Semiqueue.nfc_conflict;
      nrbc = Semiqueue.nrbc_conflict;
      rw = Semiqueue.rw_conflict;
    };
    {
      name = "FQ";
      description = "FIFO queue (partial dequeue)";
      spec = Fifo_queue.spec;
      classes = Fifo_queue.classes;
      nfc = Fifo_queue.nfc_conflict;
      nrbc = Fifo_queue.nrbc_conflict;
      rw = Fifo_queue.rw_conflict;
    };
    {
      name = "STK";
      description = "stack (partial pop; push/pop cancellation)";
      spec = Stack.spec;
      classes = Stack.classes;
      nfc = Stack.nfc_conflict;
      nrbc = Stack.nrbc_conflict;
      rw = Stack.rw_conflict;
    };
    {
      name = "LOG";
      description = "append-only log (appends rarely commute)";
      spec = Append_log.spec;
      classes = Append_log.classes;
      nfc = Append_log.nfc_conflict;
      nrbc = Append_log.nrbc_conflict;
      rw = Append_log.rw_conflict;
    };
  ]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun e -> String.equal (String.lowercase_ascii e.name) target) all

let names = List.map (fun e -> e.name) all
