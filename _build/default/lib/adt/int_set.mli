(** A set of integers — the paper's motivating "insert operation on a set
    object" (Section 3.2), with idempotent updates.

    State: a finite set.  Operations:
    - [insert(x) → ok] (idempotent), [remove(x) → ok] (idempotent);
    - [member(x) → b] with [b = (x ∈ s)];
    - [size → n].

    Idempotence gives commutativity structure that neither the bank
    account nor the register has: two inserts of the {e same} element
    commute in every sense, while [insert(x)] and [member(x) → false]
    conflict in both. *)

open Tm_core

module Int_set : Set.S with type elt = int

type state = Int_set.t

module S : Spec.S with type state = state

val spec : Spec.t
val insert : int -> Op.t
val remove : int -> Op.t
val member : int -> bool -> Op.t
val size : int -> Op.t
val forward_commutes : Op.t -> Op.t -> bool
val right_commutes_backward : Op.t -> Op.t -> bool
val nfc_conflict : Conflict.t
val nrbc_conflict : Conflict.t

(** [member] and [size] are reads. *)
val rw_conflict : Conflict.t

val classes : (string * Op.t list) list
