open Tm_core

type state = int

let obj = "BA"

module S = struct
  type nonrec state = state

  let name = obj
  let initial = 0
  let equal_state = Int.equal
  let compare_state = Int.compare
  let pp_state = Fmt.int

  let respond s (inv : Op.invocation) =
    match inv.name, inv.args with
    | "deposit", [ Value.Int i ] when i > 0 -> [ (Value.ok, s + i) ]
    | "withdraw", [ Value.Int i ] when i > 0 ->
        if s >= i then [ (Value.ok, s - i) ] else [ (Value.no, s) ]
    | "balance", [] -> [ (Value.Int s, s) ]
    | _ -> []

  (* Amounts 1-2 and balances 0-3 exhibit every behaviourally distinct
     situation of the type: what matters to legality is only the order
     relation between the balance and the amounts, and at depth >= 4 the
     explorer reaches balances both below and above every generator
     amount and every pairwise sum. *)
  let generators =
    List.concat
      [
        List.map (fun i -> Op.make ~obj ~args:[ Value.int i ] "deposit" Value.ok) [ 1; 2 ];
        List.map (fun i -> Op.make ~obj ~args:[ Value.int i ] "withdraw" Value.ok) [ 1; 2 ];
        List.map (fun i -> Op.make ~obj ~args:[ Value.int i ] "withdraw" Value.no) [ 1; 2 ];
        List.map (fun b -> Op.make ~obj "balance" (Value.int b)) [ 0; 1; 2; 3 ];
      ]
end

let spec = Spec.pack (module S)

let spec_with_initial balance =
  if balance < 0 then invalid_arg "Bank_account.spec_with_initial: negative balance";
  let module Funded = struct
    include S

    let initial = balance
  end in
  Spec.pack (module Funded)

let deposit i = Op.make ~obj ~args:[ Value.int i ] "deposit" Value.ok
let withdraw_ok i = Op.make ~obj ~args:[ Value.int i ] "withdraw" Value.ok
let withdraw_no i = Op.make ~obj ~args:[ Value.int i ] "withdraw" Value.no
let balance i = Op.make ~obj "balance" (Value.int i)

(* Operation classification used by the closed forms, carrying the
   amount (or pinned balance). *)
type klass =
  | Deposit of int
  | Withdraw_ok of int
  | Withdraw_no of int
  | Balance of int

let classify (op : Op.t) =
  match op.inv.name, op.inv.args, op.res with
  | "deposit", [ Value.Int i ], _ -> Deposit i
  | "withdraw", [ Value.Int i ], Value.Str "ok" -> Withdraw_ok i
  | "withdraw", [ Value.Int i ], Value.Str "no" -> Withdraw_no i
  | "balance", [], Value.Int b -> Balance b
  | _ -> invalid_arg ("Bank_account: not a bank account operation: " ^ Op.to_string op)

(* Figure 6-1, derived (s = balance):
   - deposit/deposit, deposit/withdraw-ok: total, add/subtract commute and
     legality is preserved in both orders.
   - deposit/withdraw-no: with balance s = j-1 both are legal, but the
     withdrawal no longer fails after the deposit.
   - deposit/balance→b: the pinned result is wrong after the deposit
     (co-legal at s = b for every b).
   - withdraw-ok(i)/balance→b: co-legal only at s = b >= i; vacuous — and
     hence commuting — when b < i.
   - withdraw-ok(i)/withdraw-ok(j): legal individually whenever
     s >= max(i,j), but the sequence needs s >= i+j.
   - withdraw-no/withdraw-ok: a failed withdrawal leaves the state alone
     and stays failed after a successful one (s-i < s < j).
   - withdraw-no/withdraw-no, balance/balance: read-only / no-ops.

   The paper's class-level Figure 6-1 is the existential image of this
   relation (a class pair is marked when some instance pair conflicts). *)
let forward_commutes p q =
  match classify p, classify q with
  | Deposit _, Deposit _
  | Deposit _, Withdraw_ok _
  | Withdraw_ok _, Deposit _
  | Withdraw_ok _, Withdraw_no _
  | Withdraw_no _, Withdraw_ok _
  | Withdraw_no _, Withdraw_no _
  | Withdraw_no _, Balance _
  | Balance _, Withdraw_no _
  | Balance _, Balance _ -> true
  | Deposit _, Withdraw_no _
  | Withdraw_no _, Deposit _
  | Deposit _, Balance _
  | Balance _, Deposit _
  | Withdraw_ok _, Withdraw_ok _ -> false
  | Withdraw_ok i, Balance b | Balance b, Withdraw_ok i -> b < i

(* Figure 6-2, derived ([p right-commutes-backward q] = whenever p runs
   just after q it could instead have run just before, unobservably):
   - deposit after withdraw-ok: s-j+i = s+i-j and the deposit only makes
     the withdrawal more legal.
   - deposit after withdraw-no (x): the failed withdrawal may succeed once
     moved after the deposit.
   - withdraw-ok after deposit (x): the withdrawal may not be legal before
     the deposit (j-i <= s < j).
   - withdraw-ok after withdraw-ok: legality of the pair is s >= i+j in
     either order.
   - withdraw-no after withdraw-ok (x): before the successful withdrawal
     the balance is i higher and the failure may become a success.
   - withdraw-no after deposit: s+j < i implies s < i, so it fails before
     the deposit too.
   - withdraw-ok(i) after balance→b: needs s = b >= i; vacuous when b < i,
     otherwise the balance answer would change (x).
   - balance→b after deposit(i) / withdraw-ok(i): pushing the balance
     before the update changes its answer — except vacuously, when the
     pinned result b is impossible right after the update (b < i for
     deposit; never for withdraw-ok, whose prior state b + i is always
     reachable).
   - balance and withdraw-no are state-preserving, so each pushes back
     over the other. *)
let right_commutes_backward p q =
  match classify p, classify q with
  | Deposit _, Deposit _
  | Deposit _, Withdraw_ok _
  | Withdraw_ok _, Withdraw_ok _
  | Withdraw_ok _, Withdraw_no _
  | Withdraw_no _, Deposit _
  | Withdraw_no _, Withdraw_no _
  | Withdraw_no _, Balance _
  | Balance _, Withdraw_no _
  | Balance _, Balance _ -> true
  | Deposit _, Withdraw_no _
  | Withdraw_ok _, Deposit _
  | Withdraw_no _, Withdraw_ok _
  | Deposit _, Balance _
  | Balance _, Withdraw_ok _ -> false
  | Withdraw_ok i, Balance b -> b < i
  | Balance b, Deposit i -> b < i

(* Deposits and successful withdrawals form an abelian group action on the
   balance, so each has a position-independent compensating operation;
   failed withdrawals and balance reads change nothing. *)
let inverse op =
  match classify op with
  | Deposit i -> Some [ withdraw_ok i ]
  | Withdraw_ok i -> Some [ deposit i ]
  | Withdraw_no _ | Balance _ -> Some []

let nfc_conflict =
  Conflict.make ~name:"BA-NFC" (fun ~requested ~held ->
      not (forward_commutes requested held))

let nrbc_conflict =
  Conflict.make ~name:"BA-NRBC" (fun ~requested ~held ->
      not (right_commutes_backward requested held))

let rw_conflict =
  Conflict.read_write ~name:"BA-RW" ~is_read:(fun op ->
      match classify op with
      | Balance _ -> true
      | Deposit _ | Withdraw_ok _ | Withdraw_no _ -> false)

let classes =
  [
    ("deposit", [ deposit 1; deposit 2 ]);
    ("withdraw/ok", [ withdraw_ok 1; withdraw_ok 2 ]);
    ("withdraw/no", [ withdraw_no 1; withdraw_no 2 ]);
    ("balance", [ balance 0; balance 1; balance 2 ]);
  ]

let labels = List.map fst classes

let paper_fc_table =
  (* Figure 6-1: X means "do not commute forward". *)
  Commutativity.table_of_marks labels
    [
      ("deposit", "withdraw/no");
      ("deposit", "balance");
      ("withdraw/ok", "withdraw/ok");
      ("withdraw/ok", "balance");
      ("withdraw/no", "deposit");
      ("balance", "deposit");
      ("balance", "withdraw/ok");
    ]

let paper_rbc_table =
  (* Figure 6-2: X means "row does not right commute backward with
     column". *)
  Commutativity.table_of_marks labels
    [
      ("deposit", "withdraw/no");
      ("deposit", "balance");
      ("withdraw/ok", "deposit");
      ("withdraw/ok", "balance");
      ("withdraw/no", "withdraw/ok");
      ("balance", "deposit");
      ("balance", "withdraw/ok");
    ]
