(** Name-indexed registry of the shipped ADTs, for CLI tools and
    examples. *)

open Tm_core

type entry = {
  name : string;  (** object name, e.g. ["BA"] *)
  description : string;
  spec : Spec.t;
  classes : (string * Op.t list) list;  (** for table rendering *)
  nfc : Conflict.t;
  nrbc : Conflict.t;
  rw : Conflict.t;
}

val all : entry list

(** Case-insensitive lookup by object name. *)
val find : string -> entry option

val names : string list
