open Tm_core
module Int_map = Map.Make (Int)

type state = int Int_map.t

let obj = "OM"

let encode_opt = function
  | Some x -> Value.list [ Value.int x ]
  | None -> Value.list []

let count_range lo hi s =
  Int_map.fold (fun k _ acc -> if k >= lo && k <= hi then acc + 1 else acc) s 0

module S = struct
  type nonrec state = state

  let name = obj
  let initial = Int_map.empty
  let equal_state = Int_map.equal Int.equal
  let compare_state = Int_map.compare Int.compare

  let pp_state ppf s =
    Fmt.pf ppf "{%a}"
      Fmt.(list ~sep:comma (pair ~sep:(any "=") int int))
      (Int_map.bindings s)

  let respond s (inv : Op.invocation) =
    match inv.name, inv.args with
    | "put", [ Value.Int k; Value.Int v ] -> [ (Value.ok, Int_map.add k v s) ]
    | "del", [ Value.Int k ] -> [ (Value.ok, Int_map.remove k s) ]
    | "get", [ Value.Int k ] -> [ (encode_opt (Int_map.find_opt k s), s) ]
    | "count", [ Value.Int lo; Value.Int hi ] -> [ (Value.int (count_range lo hi s), s) ]
    | _ -> []

  (* Three keys and two interval shapes: every relevant configuration —
     key inside/outside the interval, interval partially and completely
     filled — is reachable within depth 4. *)
  let keys = [ 1; 2; 3 ]

  let generators =
    List.concat
      [
        List.concat_map
          (fun k ->
            [
              Op.make ~obj ~args:[ Value.int k; Value.int 1 ] "put" Value.ok;
              Op.make ~obj ~args:[ Value.int k; Value.int 2 ] "put" Value.ok;
              Op.make ~obj ~args:[ Value.int k ] "del" Value.ok;
              (* a get observer for *every* storable value, else states
                 differing only in that value are indistinguishable and
                 the derived relations under-approximate *)
              Op.make ~obj ~args:[ Value.int k ] "get" (encode_opt (Some 1));
              Op.make ~obj ~args:[ Value.int k ] "get" (encode_opt (Some 2));
              Op.make ~obj ~args:[ Value.int k ] "get" (encode_opt None);
            ])
          keys;
        List.concat_map
          (fun (lo, hi) ->
            List.map
              (fun n -> Op.make ~obj ~args:[ Value.int lo; Value.int hi ] "count" (Value.int n))
              [ 0; 1; 2 ])
          [ (1, 2); (2, 3) ];
      ]
end

let spec = Spec.pack (module S)
let put k v = Op.make ~obj ~args:[ Value.int k; Value.int v ] "put" Value.ok
let del k = Op.make ~obj ~args:[ Value.int k ] "del" Value.ok
let get k r = Op.make ~obj ~args:[ Value.int k ] "get" (encode_opt r)
let count lo hi n = Op.make ~obj ~args:[ Value.int lo; Value.int hi ] "count" (Value.int n)

type klass =
  | Put of int * int
  | Del of int
  | Get of int * int option
  | Count of int * int * int

let classify (op : Op.t) =
  match op.inv.name, op.inv.args, op.res with
  | "put", [ Value.Int k; Value.Int v ], _ -> Put (k, v)
  | "del", [ Value.Int k ], _ -> Del k
  | "get", [ Value.Int k ], Value.List [ Value.Int v ] -> Get (k, Some v)
  | "get", [ Value.Int k ], Value.List [] -> Get (k, None)
  | "count", [ Value.Int lo; Value.Int hi ], Value.Int n -> Count (lo, hi, n)
  | _ -> invalid_arg ("Ordered_map: not an ordered-map operation: " ^ Op.to_string op)

let in_range k lo hi = k >= lo && k <= hi
let range_size lo hi = max 0 (hi - lo + 1)

(* Key-local derivations match Kv_store; the interesting cases are the
   updates against count(lo,hi)→n (write size = hi-lo+1):
   - key outside the interval: always commute.
   - put inside: a co-legal context where k is absent grows the count —
     exists unless the count already pins the interval full (n = size),
     in which case k is necessarily present and the put is a value
     overwrite that the count cannot see.
   - del inside: dual, with the empty count (n = 0) as the vacuous case.
   - RBC refinements: pushing the update before the count keeps the count
     legal only when the key's presence was forced the right way;
     pushing the count back over the update fails on the contexts where
     the update changed the count — each with its own full/empty vacuity
     (derived in the .mli's terms; validated by the decision
     procedures). *)
let same_key_fc p q =
  match p, q with
  | Put (_, x), Put (_, y) -> x = y
  | Put _, Del _ | Del _, Put _ -> false
  | Del _, Del _ -> true
  | Put (_, x), Get (_, r) | Get (_, r), Put (_, x) -> r = Some x
  | Del _, Get (_, r) | Get (_, r), Del _ -> r = None
  | Get _, Get _ -> true
  | (Put _ | Del _ | Get _ | Count _), _ -> assert false

let same_key_rbc p q =
  match p, q with
  | Put (_, x), Put (_, y) -> x = y
  | Put _, Del _ | Del _, Put _ -> false
  | Del _, Del _ -> true
  | Put (_, x), Get (_, r) -> r = Some x
  | Get (_, r), Put (_, x) -> r <> Some x
  | Del _, Get (_, r) -> r = None
  | Get (_, r), Del _ -> r <> None
  | Get _, Get _ -> true
  | (Put _ | Del _ | Get _ | Count _), _ -> assert false

let key = function Put (k, _) | Del k | Get (k, _) -> Some k | Count _ -> None

let forward_commutes p q =
  let p = classify p and q = classify q in
  match p, q with
  | Count _, Count _ | Count _, Get _ | Get _, Count _ -> true
  | Put (k, _), Count (lo, hi, n) | Count (lo, hi, n), Put (k, _) ->
      (not (in_range k lo hi)) || n = range_size lo hi
  | Del k, Count (lo, hi, n) | Count (lo, hi, n), Del k ->
      (not (in_range k lo hi)) || n = 0
  | (Put _ | Del _ | Get _), (Put _ | Del _ | Get _) -> (
      match key p, key q with
      | Some kp, Some kq -> kp <> kq || same_key_fc p q
      | _, _ -> assert false)

let right_commutes_backward p q =
  let p = classify p and q = classify q in
  match p, q with
  | Count _, Count _ | Count _, Get _ | Get _, Count _ -> true
  | Put (k, _), Count (lo, hi, n) -> (not (in_range k lo hi)) || n = range_size lo hi
  | Count (lo, hi, n), Put (k, _) -> (not (in_range k lo hi)) || n = 0
  | Del k, Count (lo, hi, n) -> (not (in_range k lo hi)) || n = 0
  | Count (lo, hi, n), Del k -> (not (in_range k lo hi)) || n = range_size lo hi
  | (Put _ | Del _ | Get _), (Put _ | Del _ | Get _) -> (
      match key p, key q with
      | Some kp, Some kq -> kp <> kq || same_key_rbc p q
      | _, _ -> assert false)

let nfc_conflict =
  Conflict.make ~name:"OM-NFC" (fun ~requested ~held ->
      not (forward_commutes requested held))

let nrbc_conflict =
  Conflict.make ~name:"OM-NRBC" (fun ~requested ~held ->
      not (right_commutes_backward requested held))

let rw_conflict =
  Conflict.read_write ~name:"OM-RW" ~is_read:(fun op ->
      match classify op with
      | Get _ | Count _ -> true
      | Put _ | Del _ -> false)

let classes =
  [
    ("put", [ put 1 1; put 2 1; put 3 2 ]);
    ("del", [ del 1; del 2 ]);
    ("get/some", [ get 1 (Some 1); get 2 (Some 2) ]);
    ("get/none", [ get 1 None; get 3 None ]);
    ("count", [ count 1 2 0; count 1 2 1; count 2 3 2 ]);
  ]
