(** An append-only log.

    State: the appended sequence.  Operations: [append(x) → ok];
    [last → x] (partial on the empty log: there is no last entry);
    [len → n].  A minimal "history table" type whose appends never
    commute (order is observable), included to give the benchmarks a
    worst case for commutativity-based locking.  Conflicts are the
    derived NFC/NRBC relations. *)

open Tm_core

type state = int list

module S : Spec.S with type state = state

val spec : Spec.t
val append : int -> Op.t
val last : int -> Op.t
val len : int -> Op.t
val forward_commutes : Op.t -> Op.t -> bool
val right_commutes_backward : Op.t -> Op.t -> bool
val nfc_conflict : Conflict.t
val nrbc_conflict : Conflict.t

(** [last] and [len] are reads. *)
val rw_conflict : Conflict.t

val classes : (string * Op.t list) list
