open Tm_core

module type CONFIG = sig
  val capacity : int
  val initial : int
  val name : string
end

module type S_counter = sig
  type state = int

  val capacity : int

  module S : Spec.S with type state = state

  val spec : Spec.t
  val incr_ok : int -> Op.t
  val incr_no : int -> Op.t
  val decr_ok : int -> Op.t
  val decr_no : int -> Op.t
  val read : int -> Op.t
  val forward_commutes : Op.t -> Op.t -> bool
  val right_commutes_backward : Op.t -> Op.t -> bool
  val inverse : Op.t -> Op.t list option
  val nfc_conflict : Conflict.t
  val nrbc_conflict : Conflict.t
  val rw_conflict : Conflict.t
  val classes : (string * Op.t list) list
end

module Make (C : CONFIG) : S_counter = struct
  type state = int

  let capacity = C.capacity
  let obj = C.name

  module S = struct
    type nonrec state = state

    let name = obj
    let initial = C.initial
    let equal_state = Int.equal
    let compare_state = Int.compare
    let pp_state = Fmt.int

    let respond n (inv : Op.invocation) =
      match inv.name, inv.args with
      | "incr", [ Value.Int i ] when i > 0 ->
          if n + i <= capacity then [ (Value.ok, n + i) ] else [ (Value.no, n) ]
      | "decr", [ Value.Int i ] when i > 0 ->
          if n >= i then [ (Value.ok, n - i) ] else [ (Value.no, n) ]
      | "read", [] -> [ (Value.Int n, n) ]
      | _ -> []

    (* Amounts 1-2: with a small capacity the explorer reaches every
       state 0..capacity, covering each side of every legality threshold
       (n vs i, n+i vs capacity, and the pairwise-sum variants).  Read
       generators sample the extremes and middle. *)
    let generators =
      let reads =
        List.sort_uniq Int.compare
          [ 0; 1; 2; capacity / 2; capacity - 1; capacity ]
        |> List.filter (fun n -> n >= 0)
      in
      List.concat_map
        (fun i ->
          [
            Op.make ~obj ~args:[ Value.int i ] "incr" Value.ok;
            Op.make ~obj ~args:[ Value.int i ] "incr" Value.no;
            Op.make ~obj ~args:[ Value.int i ] "decr" Value.ok;
            Op.make ~obj ~args:[ Value.int i ] "decr" Value.no;
          ])
        [ 1; 2 ]
      @ List.map (fun n -> Op.make ~obj "read" (Value.int n)) reads
  end

  let spec = Spec.pack (module S)
  let incr_ok i = Op.make ~obj ~args:[ Value.int i ] "incr" Value.ok
  let incr_no i = Op.make ~obj ~args:[ Value.int i ] "incr" Value.no
  let decr_ok i = Op.make ~obj ~args:[ Value.int i ] "decr" Value.ok
  let decr_no i = Op.make ~obj ~args:[ Value.int i ] "decr" Value.no
  let read n = Op.make ~obj "read" (Value.int n)

  type klass =
    | Incr_ok of int
    | Incr_no of int
    | Decr_ok of int
    | Decr_no of int
    | Read of int

  let classify (op : Op.t) =
    match op.inv.name, op.inv.args, op.res with
    | "incr", [ Value.Int i ], Value.Str "ok" -> Incr_ok i
    | "incr", [ Value.Int i ], Value.Str "no" -> Incr_no i
    | "decr", [ Value.Int i ], Value.Str "ok" -> Decr_ok i
    | "decr", [ Value.Int i ], Value.Str "no" -> Decr_no i
    | "read", [], Value.Int n -> Read n
    | _ -> invalid_arg ("Bounded_counter: not a counter operation: " ^ Op.to_string op)

  (* Derivations (n = state, C = capacity, i/j the two amounts):
     - incr-ok(i)/incr-ok(j): each legal at n <= C-max(i,j); the pair needs
       n+i+j <= C, which fails for n in (C-i-j, C-max] — not FC, but the
       pair's legality is symmetric in the order, so RBC holds both ways.
     - decr-ok/decr-ok: dual.
     - incr-ok/decr-ok: commute forward (net effect and legality agree),
       but moving the incr before the decr can overflow (n+i > C >= n-j+i)
       and moving the decr before the incr can underflow — neither RBC.
     - ok-ops vs the same-direction no-op: FC (the failure stays a failure
       after the other op); the no-op pushes back over nothing that could
       have enabled it, giving the asymmetric RBC entries below.
     - read→n pins the state, so it relates to the ok-updates only on
       contexts where both are legal; outside those (n+i > C for incr,
       n < i for decr) the pair is vacuously commuting. *)
  let forward_commutes p q =
    match classify p, classify q with
    | Incr_ok _, Incr_ok _ | Decr_ok _, Decr_ok _ -> false
    | Incr_ok _, Decr_ok _ | Decr_ok _, Incr_ok _ -> true
    | Incr_ok _, Incr_no _ | Incr_no _, Incr_ok _ -> true
    | Decr_ok _, Decr_no _ | Decr_no _, Decr_ok _ -> true
    | Incr_ok _, Decr_no _ | Decr_no _, Incr_ok _ -> false
    | Incr_no _, Decr_ok _ | Decr_ok _, Incr_no _ -> false
    | Incr_ok i, Read n | Read n, Incr_ok i -> n + i > capacity
    | Decr_ok i, Read n | Read n, Decr_ok i -> n < i
    | Incr_no _, (Incr_no _ | Decr_no _ | Read _) | (Decr_no _ | Read _), Incr_no _ ->
        true
    | Decr_no _, (Decr_no _ | Read _) | Read _, Decr_no _ -> true
    | Read _, Read _ -> true

  let right_commutes_backward p q =
    match classify p, classify q with
    | Incr_ok _, Incr_ok _ | Decr_ok _, Decr_ok _ -> true
    | Incr_ok _, Decr_ok _ | Decr_ok _, Incr_ok _ -> false
    | Incr_ok _, Incr_no _ -> true
    | Incr_no _, Incr_ok _ -> false
    | Decr_ok _, Decr_no _ -> true
    | Decr_no _, Decr_ok _ -> false
    | Incr_ok _, Decr_no _ -> false
    | Decr_no _, Incr_ok _ -> true
    | Incr_no _, Decr_ok _ -> true
    | Decr_ok _, Incr_no _ -> false
    (* An ok-update pushes back over read→n only when "read then update"
       is impossible (vacuous); a read→n pushes back over an ok-update
       only when "update then read→n" is impossible — when the state the
       read would have seen before the update is out of range. *)
    | Incr_ok i, Read n -> n + i > capacity
    | Decr_ok i, Read n -> n < i
    | Read n, Incr_ok i -> n < i
    | Read n, Decr_ok i -> n + i > capacity
    | Incr_no _, (Incr_no _ | Decr_no _ | Read _) -> true
    | Decr_no _, (Incr_no _ | Decr_no _ | Read _) -> true
    | Read _, (Incr_no _ | Decr_no _ | Read _) -> true

  (* Successful updates form an abelian group action within the bounds;
     compensations are legal at the end of the log whenever the sound
     conflict relations were used (and the engine falls back to replay
     otherwise). *)
  let inverse op =
    match classify op with
    | Incr_ok i -> Some [ decr_ok i ]
    | Decr_ok i -> Some [ incr_ok i ]
    | Incr_no _ | Decr_no _ | Read _ -> Some []

  let nfc_conflict =
    Conflict.make
      ~name:(obj ^ "-NFC")
      (fun ~requested ~held -> not (forward_commutes requested held))

  let nrbc_conflict =
    Conflict.make
      ~name:(obj ^ "-NRBC")
      (fun ~requested ~held -> not (right_commutes_backward requested held))

  let rw_conflict =
    Conflict.read_write
      ~name:(obj ^ "-RW")
      ~is_read:(fun op ->
        match classify op with
        | Read _ -> true
        | Incr_ok _ | Incr_no _ | Decr_ok _ | Decr_no _ -> false)

  let classes =
    [
      ("incr/ok", [ incr_ok 1; incr_ok 2 ]);
      ("incr/no", [ incr_no 1; incr_no 2 ]);
      ("decr/ok", [ decr_ok 1; decr_ok 2 ]);
      ("decr/no", [ decr_no 1; decr_no 2 ]);
      ("read", [ read 0; read 1; read 2 ]);
    ]
end

module Default = Make (struct
  let capacity = 4
  let initial = 0
  let name = "CTR"
end)

include Default
