open Tm_core

type state = int list

let obj = "SQ"

(* Multisets as sorted lists. *)
let ms_add x s = List.sort Int.compare (x :: s)

let rec ms_remove x = function
  | [] -> None
  | y :: rest ->
      if x = y then Some rest
      else if y > x then None
      else Option.map (fun r -> y :: r) (ms_remove x rest)

module S = struct
  type nonrec state = state

  let name = obj
  let initial = []
  let equal_state = List.equal Int.equal
  let compare_state = List.compare Int.compare
  let pp_state ppf s = Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) s

  let respond s (inv : Op.invocation) =
    match inv.name, inv.args with
    | "enq", [ Value.Int x ] -> [ (Value.ok, ms_add x s) ]
    | "deq", [] ->
        List.sort_uniq Int.compare s
        |> List.filter_map (fun x ->
               Option.map (fun s' -> (Value.int x, s')) (ms_remove x s))
    | _ -> []

  (* Two item values suffice: the relations depend only on whether the two
     dequeued items are equal and on multiplicities 0/1/2, all reachable
     within depth 4. *)
  let generators =
    [
      Op.make ~obj ~args:[ Value.int 1 ] "enq" Value.ok;
      Op.make ~obj ~args:[ Value.int 2 ] "enq" Value.ok;
      Op.make ~obj "deq" (Value.int 1);
      Op.make ~obj "deq" (Value.int 2);
    ]
end

let spec = Spec.pack (module S)
let enq x = Op.make ~obj ~args:[ Value.int x ] "enq" Value.ok
let deq x = Op.make ~obj "deq" (Value.int x)

type klass =
  | Enq of int
  | Deq of int

let classify (op : Op.t) =
  match op.inv.name, op.inv.args, op.res with
  | "enq", [ Value.Int x ], _ -> Enq x
  | "deq", [], Value.Int x -> Deq x
  | _ -> invalid_arg ("Semiqueue: not a semiqueue operation: " ^ Op.to_string op)

(* Derivations over the multiset state s:
   - enq/enq: multiset union is order-independent.
   - enq(x)/deq→u: the dequeued item is present either way and the final
     multiset is s + x − u in both orders, so they commute forward; but
     when u = x, [deq→x] cannot be pushed {e before} an [enq(x)] from a
     context where x is absent, so deq does not right-commute-backward
     with an enq of the same item (an enq pushes back over anything).
   - deq→u/deq→v: both orders need {u,v} ⊆ s as a multiset, i.e.
     multiplicity 2 when u = v — the requirement is order-symmetric, so
     RBC holds both ways; FC fails for u = v (each deq legal alone at
     multiplicity 1) and holds for u ≠ v. *)
let forward_commutes p q =
  match classify p, classify q with
  | Enq _, Enq _ | Enq _, Deq _ | Deq _, Enq _ -> true
  | Deq u, Deq v -> u <> v

let right_commutes_backward p q =
  match classify p, classify q with
  | Enq _, Enq _ | Enq _, Deq _ -> true
  | Deq u, Enq x -> u <> x
  | Deq _, Deq _ -> true

let nfc_conflict =
  Conflict.make ~name:"SQ-NFC" (fun ~requested ~held ->
      not (forward_commutes requested held))

let nrbc_conflict =
  Conflict.make ~name:"SQ-NRBC" (fun ~requested ~held ->
      not (right_commutes_backward requested held))

let rw_conflict = Conflict.read_write ~name:"SQ-RW" ~is_read:(fun _ -> false)

let classes =
  [ ("enq", [ enq 1; enq 2 ]); ("deq", [ deq 1; deq 2 ]) ]
