open Tm_core
module Int_set = Set.Make (Int)

type state = Int_set.t

let obj = "SET"

module S = struct
  type nonrec state = state

  let name = obj
  let initial = Int_set.empty
  let equal_state = Int_set.equal
  let compare_state = Int_set.compare
  let pp_state ppf s = Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (Int_set.elements s)

  let respond s (inv : Op.invocation) =
    match inv.name, inv.args with
    | "insert", [ Value.Int x ] -> [ (Value.ok, Int_set.add x s) ]
    | "remove", [ Value.Int x ] -> [ (Value.ok, Int_set.remove x s) ]
    | "member", [ Value.Int x ] -> [ (Value.bool (Int_set.mem x s), s) ]
    | "size", [] -> [ (Value.int (Int_set.cardinal s), s) ]
    | _ -> []

  (* Three elements so that for every generator element x and every size
     n <= 2 there is a reachable context of cardinality n avoiding x —
     the contexts that separate insert/remove from size. *)
  let elements = [ 1; 2; 3 ]

  let generators =
    List.concat
      [
        List.map (fun x -> Op.make ~obj ~args:[ Value.int x ] "insert" Value.ok) elements;
        List.map (fun x -> Op.make ~obj ~args:[ Value.int x ] "remove" Value.ok) elements;
        List.concat_map
          (fun x ->
            [
              Op.make ~obj ~args:[ Value.int x ] "member" (Value.bool true);
              Op.make ~obj ~args:[ Value.int x ] "member" (Value.bool false);
            ])
          elements;
        List.map (fun n -> Op.make ~obj "size" (Value.int n)) [ 0; 1; 2 ];
      ]
end

let spec = Spec.pack (module S)
let insert x = Op.make ~obj ~args:[ Value.int x ] "insert" Value.ok
let remove x = Op.make ~obj ~args:[ Value.int x ] "remove" Value.ok
let member x b = Op.make ~obj ~args:[ Value.int x ] "member" (Value.bool b)
let size n = Op.make ~obj "size" (Value.int n)

type klass =
  | Insert of int
  | Remove of int
  | Member of int * bool
  | Size of int

let classify (op : Op.t) =
  match op.inv.name, op.inv.args, op.res with
  | "insert", [ Value.Int x ], _ -> Insert x
  | "remove", [ Value.Int x ], _ -> Remove x
  | "member", [ Value.Int x ], Value.Bool b -> Member (x, b)
  | "size", [], Value.Int n -> Size n
  | _ -> invalid_arg ("Int_set: not a set operation: " ^ Op.to_string op)

(* Derivations (s = state):
   - insert/insert and remove/remove: idempotent and order-independent in
     every sense.
   - insert(x)/remove(x): the final state depends on the order.
   - updates on distinct elements, and reads against reads, always
     commute.
   - insert(x)/member(x)→b: co-legal contexts have (x ∈ s) = b; when
     b = true the insert is a no-op, when b = false the member answer
     flips after the insert.  Remove is dual with b negated.
   - size→n pins the cardinality: inserts may grow it (contexts with
     x ∉ s exist for every n in range) and removes may shrink it except
     at n = 0, where remove is necessarily a no-op. *)
let forward_commutes p q =
  match classify p, classify q with
  | Insert _, Insert _ | Remove _, Remove _ -> true
  | Insert x, Remove y | Remove y, Insert x -> x <> y
  | Insert x, Member (y, b) | Member (y, b), Insert x -> x <> y || b
  | Remove x, Member (y, b) | Member (y, b), Remove x -> x <> y || not b
  | Insert _, Size _ | Size _, Insert _ -> false
  | Remove _, Size n | Size n, Remove _ -> n = 0
  | Member _, Member _ | Member _, Size _ | Size _, Member _ | Size _, Size _ -> true

let right_commutes_backward p q =
  match classify p, classify q with
  | Insert _, Insert _ | Remove _, Remove _ -> true
  | Insert x, Remove y | Remove x, Insert y -> x <> y
  | Insert x, Member (y, b) -> x <> y || b
  | Member (y, b), Insert x -> x <> y || not b
  | Remove x, Member (y, b) -> x <> y || not b
  | Member (y, b), Remove x -> x <> y || b
  | Insert _, Size _ -> false
  | Size n, Insert _ -> n = 0
  | Remove _, Size n -> n = 0
  | Size _, Remove _ -> false
  | Member _, Member _ | Member _, Size _ | Size _, Member _ | Size _, Size _ -> true

let nfc_conflict =
  Conflict.make ~name:"SET-NFC" (fun ~requested ~held ->
      not (forward_commutes requested held))

let nrbc_conflict =
  Conflict.make ~name:"SET-NRBC" (fun ~requested ~held ->
      not (right_commutes_backward requested held))

let rw_conflict =
  Conflict.read_write ~name:"SET-RW" ~is_read:(fun op ->
      match classify op with
      | Member _ | Size _ -> true
      | Insert _ | Remove _ -> false)

let classes =
  [
    ("insert", List.map insert S.elements);
    ("remove", List.map remove S.elements);
    ("member/t", List.map (fun x -> member x true) S.elements);
    ("member/f", List.map (fun x -> member x false) S.elements);
    ("size", [ size 0; size 1; size 2 ]);
  ]
