(** A semiqueue: a bag with non-deterministic removal.

    State: a multiset of items.  Operations: [enq(x) → ok] and
    [deq → x] for {e any} [x] currently in the bag (the choice is
    non-deterministic).  This is the standard example of a
    non-deterministic specification in the atomic-data-type literature —
    weakening FIFO buys concurrency: enqueues commute with everything
    (multiset semantics), and two dequeues conflict only when they
    return the same item (which then needs multiplicity two).

    The paper's analysis explicitly covers non-deterministic operations;
    this type exercises those code paths (state-{e set} exploration in
    {!Tm_core.Explore} is non-singleton here). *)

open Tm_core

type state = int list  (** sorted multiset representation *)

module S : Spec.S with type state = state

val spec : Spec.t
val enq : int -> Op.t
val deq : int -> Op.t

val forward_commutes : Op.t -> Op.t -> bool
val right_commutes_backward : Op.t -> Op.t -> bool
val nfc_conflict : Conflict.t
val nrbc_conflict : Conflict.t

(** Everything mutates: both operations are writes. *)
val rw_conflict : Conflict.t

val classes : (string * Op.t list) list
