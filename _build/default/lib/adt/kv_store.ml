open Tm_core
module Str_map = Map.Make (String)

type state = int Str_map.t

let obj = "KV"

let encode_opt = function
  | Some x -> Value.list [ Value.int x ]
  | None -> Value.list []

module S = struct
  type nonrec state = state

  let name = obj
  let initial = Str_map.empty
  let equal_state = Str_map.equal Int.equal
  let compare_state = Str_map.compare Int.compare

  let pp_state ppf s =
    Fmt.pf ppf "{%a}"
      Fmt.(list ~sep:comma (pair ~sep:(any "=") string int))
      (Str_map.bindings s)

  let respond s (inv : Op.invocation) =
    match inv.name, inv.args with
    | "put", [ Value.Str k; Value.Int x ] -> [ (Value.ok, Str_map.add k x s) ]
    | "del", [ Value.Str k ] -> [ (Value.ok, Str_map.remove k s) ]
    | "get", [ Value.Str k ] -> [ (encode_opt (Str_map.find_opt k s), s) ]
    | _ -> []

  (* Two keys and two values: the relations depend only on key
     (in)equality, value (in)equality and presence, all exercised. *)
  let generators =
    List.concat_map
      (fun k ->
        [
          Op.make ~obj ~args:[ Value.str k; Value.int 1 ] "put" Value.ok;
          Op.make ~obj ~args:[ Value.str k; Value.int 2 ] "put" Value.ok;
          Op.make ~obj ~args:[ Value.str k ] "del" Value.ok;
          Op.make ~obj ~args:[ Value.str k ] "get" (encode_opt (Some 1));
          Op.make ~obj ~args:[ Value.str k ] "get" (encode_opt (Some 2));
          Op.make ~obj ~args:[ Value.str k ] "get" (encode_opt None);
        ])
      [ "j"; "k" ]
end

let spec = Spec.pack (module S)
let put k x = Op.make ~obj ~args:[ Value.str k; Value.int x ] "put" Value.ok
let del k = Op.make ~obj ~args:[ Value.str k ] "del" Value.ok
let get k r = Op.make ~obj ~args:[ Value.str k ] "get" (encode_opt r)

type klass =
  | Put of string * int
  | Del of string
  | Get of string * int option

let classify (op : Op.t) =
  match op.inv.name, op.inv.args, op.res with
  | "put", [ Value.Str k; Value.Int x ], _ -> Put (k, x)
  | "del", [ Value.Str k ], _ -> Del k
  | "get", [ Value.Str k ], Value.List [ Value.Int x ] -> Get (k, Some x)
  | "get", [ Value.Str k ], Value.List [] -> Get (k, None)
  | _ -> invalid_arg ("Kv_store: not a store operation: " ^ Op.to_string op)

let key = function Put (k, _) | Del k | Get (k, _) -> k

(* Same-key derivations (distinct keys always commute):
   - put/put: register writes — commute iff the values agree.
   - put/del: the final binding depends on the order, in every notion.
   - del/del: idempotent.
   - put(x)/get→r: the get answers [x] after the put, so FC iff
     r = Some x; put pushes back over the get iff r = Some x, and the get
     pushes back over the put iff r ≠ Some x (vacuous: the get cannot
     directly follow that put).
   - del/get→r: del forces the answer None, with the same pattern at
     r = None.
   - get/get: distinct answers are never co-legal. *)
let same_key_fc p q =
  match p, q with
  | Put (_, x), Put (_, y) -> x = y
  | Put _, Del _ | Del _, Put _ -> false
  | Del _, Del _ -> true
  | Put (_, x), Get (_, r) | Get (_, r), Put (_, x) -> r = Some x
  | Del _, Get (_, r) | Get (_, r), Del _ -> r = None
  | Get _, Get _ -> true

let same_key_rbc p q =
  match p, q with
  | Put (_, x), Put (_, y) -> x = y
  | Put _, Del _ | Del _, Put _ -> false
  | Del _, Del _ -> true
  | Put (_, x), Get (_, r) -> r = Some x
  | Get (_, r), Put (_, x) -> r <> Some x
  | Del _, Get (_, r) -> r = None
  | Get (_, r), Del _ -> r <> None
  | Get _, Get _ -> true

let forward_commutes p q =
  let p = classify p and q = classify q in
  (not (String.equal (key p) (key q))) || same_key_fc p q

let right_commutes_backward p q =
  let p = classify p and q = classify q in
  (not (String.equal (key p) (key q))) || same_key_rbc p q

let nfc_conflict =
  Conflict.make ~name:"KV-NFC" (fun ~requested ~held ->
      not (forward_commutes requested held))

let nrbc_conflict =
  Conflict.make ~name:"KV-NRBC" (fun ~requested ~held ->
      not (right_commutes_backward requested held))

let rw_conflict =
  Conflict.read_write ~name:"KV-RW" ~is_read:(fun op ->
      match classify op with Get _ -> true | Put _ | Del _ -> false)

let classes =
  [
    ("put", [ put "j" 1; put "j" 2; put "k" 1 ]);
    ("del", [ del "j"; del "k" ]);
    ("get/some", [ get "j" (Some 1); get "j" (Some 2); get "k" (Some 1) ]);
    ("get/none", [ get "j" None; get "k" None ]);
  ]
