open Tm_core

type state = int list

let obj = "STK"

module S = struct
  type nonrec state = state

  let name = obj
  let initial = []
  let equal_state = List.equal Int.equal
  let compare_state = List.compare Int.compare
  let pp_state ppf s = Fmt.pf ppf "<%a]" Fmt.(list ~sep:comma int) s

  let respond s (inv : Op.invocation) =
    match inv.name, inv.args, s with
    | "push", [ Value.Int x ], _ -> [ (Value.ok, x :: s) ]
    | "pop", [], top :: rest -> [ (Value.int top, rest) ]
    | "pop", [], [] -> []
    | _ -> []

  (* Must cover every item value client workloads use — see
     Fifo_queue.S.generators. *)
  let item_values = [ 1; 2; 3 ]

  let generators =
    List.map (fun x -> Op.make ~obj ~args:[ Value.int x ] "push" Value.ok) item_values
    @ List.map (fun x -> Op.make ~obj "pop" (Value.int x)) item_values
end

let spec = Spec.pack (module S)
let push x = Op.make ~obj ~args:[ Value.int x ] "push" Value.ok
let pop x = Op.make ~obj "pop" (Value.int x)

type klass =
  | Push of int
  | Pop of int

let classify (op : Op.t) =
  match op.inv.name, op.inv.args, op.res with
  | "push", [ Value.Int x ], _ -> Push x
  | "pop", [], Value.Int u -> Pop u
  | _ -> invalid_arg ("Stack: not a stack operation: " ^ Op.to_string op)

(* Derivations (s = stack, top first):
   - push/push: distinct values are order-observable; equal values are
     not.
   - push(x)/pop→u: push-then-pop cancels, so the pair commutes forward
     exactly when u = x (then pop-then-push also rebuilds the same
     stack); push pushes back over a pop→x it could have fed (u = x),
     while pop pushes back over a push of a *different* value only
     vacuously (pop right after push must return the pushed value).
   - pop→u/pop→v: distinct results are never co-legal (vacuous FC) but
     cannot be reordered backward; equal results need (u,u) on top either
     way — RBC but not FC. *)
let forward_commutes p q =
  match classify p, classify q with
  | Push x, Push y -> x = y
  | Push x, Pop u | Pop u, Push x -> u = x
  | Pop u, Pop v -> u <> v

let right_commutes_backward p q =
  match classify p, classify q with
  | Push x, Push y -> x = y
  | Push x, Pop u -> u = x
  | Pop u, Push x -> u <> x
  | Pop u, Pop v -> u = v

let nfc_conflict =
  Conflict.make ~name:"STK-NFC" (fun ~requested ~held ->
      not (forward_commutes requested held))

let nrbc_conflict =
  Conflict.make ~name:"STK-NRBC" (fun ~requested ~held ->
      not (right_commutes_backward requested held))
let rw_conflict = Conflict.read_write ~name:"STK-RW" ~is_read:(fun _ -> false)
let classes = [ ("push", [ push 1; push 2 ]); ("pop", [ pop 1; pop 2 ]) ]
