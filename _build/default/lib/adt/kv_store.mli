(** A key/value store: per-key register-with-delete semantics.

    State: a finite map from string keys to integers.  Operations:
    - [put(k, x) → ok] binds [k] to [x];
    - [del(k) → ok] unbinds [k] (idempotent);
    - [get(k) → [x]] when bound, [get(k) → []] when absent (the response
      encodes the option as a value list).

    Operations on distinct keys commute in every sense; on the same key
    the structure refines the register's, with the usual result-dependent
    twists ([put(k,x)] commutes forward with [get(k) → [x]], and a
    [get(k) → r] right-commutes-backward with a [put(k,x)] exactly when
    its answer [r] is {e not} [[x]]). *)

open Tm_core

module Str_map : Map.S with type key = string

type state = int Str_map.t

module S : Spec.S with type state = state

val spec : Spec.t
val put : string -> int -> Op.t
val del : string -> Op.t

(** [get k (Some x)] / [get k None]. *)
val get : string -> int option -> Op.t

val forward_commutes : Op.t -> Op.t -> bool
val right_commutes_backward : Op.t -> Op.t -> bool
val nfc_conflict : Conflict.t
val nrbc_conflict : Conflict.t

(** [get] is the only read. *)
val rw_conflict : Conflict.t

val classes : (string * Op.t list) list
