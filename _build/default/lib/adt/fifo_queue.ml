open Tm_core

type state = int list

let obj = "FQ"

module S = struct
  type nonrec state = state

  let name = obj
  let initial = []
  let equal_state = List.equal Int.equal
  let compare_state = List.compare Int.compare
  let pp_state ppf s = Fmt.pf ppf "<%a>" Fmt.(list ~sep:comma int) s

  let respond s (inv : Op.invocation) =
    match inv.name, inv.args, s with
    | "enq", [ Value.Int x ], _ -> [ (Value.ok, s @ [ x ]) ]
    | "deq", [], front :: rest -> [ (Value.int front, rest) ]
    | "deq", [], [] -> []
    | _ -> []

  (* The derived conflict relations are sound only for operations over
     this alphabet (a value never reachable in an explored context would
     make its conflicts vacuously empty), so it must cover every item
     value client workloads use. *)
  let item_values = [ 1; 2; 3 ]

  let generators =
    List.map (fun x -> Op.make ~obj ~args:[ Value.int x ] "enq" Value.ok) item_values
    @ List.map (fun x -> Op.make ~obj "deq" (Value.int x)) item_values
end

let spec = Spec.pack (module S)
let enq x = Op.make ~obj ~args:[ Value.int x ] "enq" Value.ok
let deq x = Op.make ~obj "deq" (Value.int x)

type klass =
  | Enq of int
  | Deq of int

let classify (op : Op.t) =
  match op.inv.name, op.inv.args, op.res with
  | "enq", [ Value.Int x ], _ -> Enq x
  | "deq", [], Value.Int u -> Deq u
  | _ -> invalid_arg ("Fifo_queue: not a queue operation: " ^ Op.to_string op)

(* Derivations (s = queue, front first):
   - enq/enq: the arrival order of distinct values is observable by
     draining; equal values enqueue to the same sequence.
   - enq(x)/deq→u: co-legal contexts are non-empty with front u, where
     the two orders agree (the enq cannot change the front) — FC; the enq
     also pushes back over the deq unconditionally, while the deq pushes
     back over the enq except when u = x, where "enq then deq" is legal
     from the *empty* queue but "deq first" is not.
   - deq→u/deq→v: distinct fronts are never co-legal (vacuously FC) but
     "v then u" cannot be reordered to "u then v" — the opposite of FC;
     equal values need the front pair (u,u) either way — RBC but not FC. *)
let forward_commutes p q =
  match classify p, classify q with
  | Enq x, Enq y -> x = y
  | Enq _, Deq _ | Deq _, Enq _ -> true
  | Deq u, Deq v -> u <> v

let right_commutes_backward p q =
  match classify p, classify q with
  | Enq x, Enq y -> x = y
  | Enq _, Deq _ -> true
  | Deq u, Enq x -> u <> x
  | Deq u, Deq v -> u = v

let nfc_conflict =
  Conflict.make ~name:"FQ-NFC" (fun ~requested ~held ->
      not (forward_commutes requested held))

let nrbc_conflict =
  Conflict.make ~name:"FQ-NRBC" (fun ~requested ~held ->
      not (right_commutes_backward requested held))
let rw_conflict = Conflict.read_write ~name:"FQ-RW" ~is_read:(fun _ -> false)
let classes = [ ("enq", [ enq 1; enq 2 ]); ("deq", [ deq 1; deq 2 ]) ]
