(** A bounded counter (escrow-style resource pool).

    State: [n ∈ [0, capacity]].  Operations:
    - [incr(i) → ok] when [n + i ≤ capacity] (adds), [incr(i) → no]
      otherwise;
    - [decr(i) → ok] when [n ≥ i] (subtracts), [decr(i) → no] otherwise;
    - [read → n].

    This is the shape of O'Neil-style escrow quantities (inventory,
    quotas): both directions of update are partial.  It enriches the bank
    account's commutativity structure — successful increments and
    successful decrements commute {e forward} but in general {e neither}
    right-commutes-backward with the other (moving an [incr] before a
    [decr] can overflow the bound, and vice versa), so on mixed
    workloads deferred update strictly beats update-in-place on
    concurrency, while same-direction workloads tell the opposite story.

    The type is a functor over capacity, initial value and object name;
    {!Default} (capacity 4, initially 0, named ["CTR"]) is re-exported at
    the top level for the analysis tools and tests, while simulations
    instantiate roomier pools. *)

open Tm_core

module type CONFIG = sig
  val capacity : int
  val initial : int
  val name : string
end

module type S_counter = sig
  type state = int

  val capacity : int

  module S : Spec.S with type state = state

  val spec : Spec.t
  val incr_ok : int -> Op.t
  val incr_no : int -> Op.t
  val decr_ok : int -> Op.t
  val decr_no : int -> Op.t
  val read : int -> Op.t
  val forward_commutes : Op.t -> Op.t -> bool
  val right_commutes_backward : Op.t -> Op.t -> bool

  (** Compensations for the update-in-place undo fast path. *)
  val inverse : Op.t -> Op.t list option

  val nfc_conflict : Conflict.t
  val nrbc_conflict : Conflict.t

  (** [read] is the only read. *)
  val rw_conflict : Conflict.t

  val classes : (string * Op.t list) list
end

module Make (_ : CONFIG) : S_counter

(** Capacity 4, initially 0, named ["CTR"]. *)
module Default : S_counter

include S_counter
(** @inline re-export of {!Default}. *)
