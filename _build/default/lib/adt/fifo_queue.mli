(** A FIFO queue with a partial dequeue.

    State: a sequence (front first).  Operations: [enq(x) → ok] appends at
    the back; [deq → x] removes and returns the front — {e partial}: it
    has no legal response on an empty queue (a caller blocks until an
    element arrives), exercising the paper's treatment of partial
    operations.

    FIFO order makes this type far more conflict-prone than {!Semiqueue}:
    distinct enqueues conflict (arrival order is observable) and two
    dequeues of the same value conflict forward but not backward.
    Closed-form relations are derived in the implementation and
    cross-validated against the decision procedures. *)

open Tm_core

type state = int list

module S : Spec.S with type state = state

val spec : Spec.t
val enq : int -> Op.t
val deq : int -> Op.t

val forward_commutes : Op.t -> Op.t -> bool
val right_commutes_backward : Op.t -> Op.t -> bool
val nfc_conflict : Conflict.t
val nrbc_conflict : Conflict.t
val rw_conflict : Conflict.t
val classes : (string * Op.t list) list
