(* Quickstart: a commutativity-locked bank account.

   Creates one atomic object (the paper's bank account) with
   update-in-place recovery and the minimal sound conflict relation
   (NRBC, Theorem 9), then walks three transactions through it:
   concurrent deposits that never block, a withdrawal that must wait for
   a deposit to commit, and an abort that undoes in place.

   Run with: dune exec examples/quickstart.exe *)

open Tm_core
module BA = Tm_adt.Bank_account
module Object = Tm_engine.Atomic_object
module Database = Tm_engine.Database

let deposit i = Op.invocation ~args:[ Value.int i ] "deposit"
let withdraw i = Op.invocation ~args:[ Value.int i ] "withdraw"
let balance = Op.invocation "balance"

let show tid what outcome =
  Fmt.pr "  %a %-14s -> %a@." Tid.pp tid what Object.pp_outcome outcome

let () =
  Fmt.pr "Quickstart: bank account, update-in-place recovery, NRBC locking@.@.";
  let account =
    Object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict ~recovery:Tm_engine.Recovery.UIP ()
  in
  let db = Database.create ~record_history:true [ account ] in

  (* Two transactions deposit concurrently: deposits commute in every
     sense, so neither blocks. *)
  let t1 = Database.begin_txn db and t2 = Database.begin_txn db in
  Fmt.pr "concurrent deposits:@.";
  show t1 "deposit 50" (Database.invoke db t1 ~obj:"BA" (deposit 50));
  show t2 "deposit 25" (Database.invoke db t2 ~obj:"BA" (deposit 25));

  (* A third transaction tries to withdraw.  A successful withdrawal does
     not right-commute-backward with an uncommitted deposit, so it blocks
     until the deposits commit. *)
  let t3 = Database.begin_txn db in
  Fmt.pr "@.withdrawal against uncommitted deposits blocks:@.";
  show t3 "withdraw 30" (Database.invoke db t3 ~obj:"BA" (withdraw 30));
  Fmt.pr "@.committing the deposits releases the locks:@.";
  Database.commit db t1;
  Database.commit db t2;
  show t3 "withdraw 30" (Database.invoke db t3 ~obj:"BA" (withdraw 30));
  show t3 "balance" (Database.invoke db t3 ~obj:"BA" balance);
  Database.commit db t3;

  (* Abort rolls back in place. *)
  let t4 = Database.begin_txn db in
  Fmt.pr "@.abort undoes update-in-place:@.";
  show t4 "deposit 1000" (Database.invoke db t4 ~obj:"BA" (deposit 1000));
  Database.abort db t4;
  let t5 = Database.begin_txn db in
  show t5 "balance" (Database.invoke db t5 ~obj:"BA" balance);
  Database.commit db t5;

  (* The recorded history passes the paper's correctness criterion. *)
  let env = Atomicity.env_of_list [ BA.spec ] in
  let h = Database.history db in
  Fmt.pr "@.recorded history: %d events; dynamic atomic: %b@." (History.length h)
    (Atomicity.is_dynamic_atomic env h);
  Fmt.pr "committed ops replay legally in commit order: %b@."
    (Spec.legal BA.spec (Object.committed_ops account))
