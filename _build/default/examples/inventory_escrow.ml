(* Inventory escrow: a bounded counter as a reservation pool.

   Models warehouse stock with the bounded-counter ADT: reservations
   decrement, restocks increment, both partial (a reservation fails on
   empty stock, a restock on a full warehouse).  Demonstrates:

   - escrow-style concurrency: many reservations proceed concurrently
     under update-in-place locking without reading the stock level;
   - deferred-update's complementary strength on mixed flows;
   - abort returning reserved stock to the pool.

   Run with: dune exec examples/inventory_escrow.exe *)

open Tm_core
module Object = Tm_engine.Atomic_object
module Database = Tm_engine.Database

module Pool = Tm_adt.Bounded_counter.Make (struct
  let capacity = 100
  let initial = 10
  let name = "STOCK"
end)

let reserve n = Op.invocation ~args:[ Value.int n ] "decr"
let restock n = Op.invocation ~args:[ Value.int n ] "incr"
let level = Op.invocation "read"

let show tid what outcome =
  Fmt.pr "  %a %-12s -> %a@." Tid.pp tid what Object.pp_outcome outcome

let () =
  Fmt.pr "Inventory escrow on a bounded counter (capacity 100, stock 10)@.@.";
  let stock =
    Object.create ~spec:Pool.spec ~conflict:Pool.nrbc_conflict
      ~recovery:Tm_engine.Recovery.UIP ()
  in
  let db = Database.create ~record_history:true [ stock ] in

  (* Three customers reserve concurrently: successful reservations
     right-commute-backward with each other, so none blocks — no one had
     to read the stock level (this is exactly the escrow idea). *)
  Fmt.pr "concurrent reservations (no blocking, no reads):@.";
  let customers = List.init 3 (fun _ -> Database.begin_txn db) in
  List.iteri
    (fun i t -> show t (Fmt.str "reserve %d" (i + 2)) (Database.invoke db t ~obj:"STOCK" (reserve (i + 2))))
    customers;

  (* One customer changes their mind: the abort returns the stock. *)
  (match customers with
  | t :: _ ->
      Fmt.pr "@.customer %a aborts; stock is returned:@." Tid.pp t;
      Database.abort db t
  | [] -> ());
  List.iter (fun t -> Database.commit db t) (List.tl customers);

  let auditor = Database.begin_txn db in
  show auditor "read level" (Database.invoke db auditor ~obj:"STOCK" level);
  Database.commit db auditor;

  (* A restock against an uncommitted reservation: under UIP the incr
     does not push back over the decr (it could have overflowed the
     capacity bound), so it waits; under DU the two commute forward and
     run concurrently. *)
  Fmt.pr "@.mixed flows: restock vs uncommitted reservation@.";
  let t_res = Database.begin_txn db in
  show t_res "reserve 3" (Database.invoke db t_res ~obj:"STOCK" (reserve 3));
  let t_sup = Database.begin_txn db in
  Fmt.pr "  under UIP+NRBC the restock blocks:@.";
  show t_sup "restock 5" (Database.invoke db t_sup ~obj:"STOCK" (restock 5));
  Database.commit db t_res;
  show t_sup "restock 5" (Database.invoke db t_sup ~obj:"STOCK" (restock 5));
  Database.commit db t_sup;

  let du_stock =
    Object.create ~spec:Pool.spec ~conflict:Pool.nfc_conflict ~recovery:Tm_engine.Recovery.DU ()
  in
  let db2 = Database.create [ du_stock ] in
  let t1 = Database.begin_txn db2 and t2 = Database.begin_txn db2 in
  Fmt.pr "  under DU+NFC the same pair runs concurrently:@.";
  show t1 "reserve 3" (Database.invoke db2 t1 ~obj:"STOCK" (reserve 3));
  show t2 "restock 5" (Database.invoke db2 t2 ~obj:"STOCK" (restock 5));
  Database.commit db2 t2;
  Database.commit db2 t1;

  let env = Atomicity.env_of_list [ Pool.spec ] in
  Fmt.pr "@.recorded UIP history dynamic atomic: %b@."
    (Atomicity.is_dynamic_atomic env (Database.history db));
  Fmt.pr "both stores replay committed work legally: %b / %b@."
    (Spec.legal Pool.spec (Object.committed_ops stock))
    (Spec.legal Pool.spec (Object.committed_ops du_stock))
