(* Banking hot-spot: the concurrency trade-off of Section 8, live.

   One hot account, hundreds of transactions.  The same engine runs with
   update-in-place + NRBC locking and with deferred-update + NFC locking;
   sweeping the withdrawal fraction shows each recovery method winning
   where the paper's theory says it must:

   - all deposits: both perfect (deposits commute in every sense);
   - mixed deposits/withdrawals: DU wins (the pairs commute forward, but
     a withdrawal cannot be pushed back over a deposit);
   - all withdrawals: UIP wins (successful withdrawals right-commute
     backward but do not commute forward).

   Run with: dune exec examples/banking_hotspot.exe *)

module Experiment = Tm_sim.Experiment
module Scheduler = Tm_sim.Scheduler

let () =
  Fmt.pr "Hot-spot account: rounds to commit 200 transactions (lower is better)@.@.";
  Fmt.pr "%-12s %10s %10s %10s@." "withdraw%" "UIP+NRBC" "DU+NFC" "serial";
  let cfg = Scheduler.config ~concurrency:8 ~total_txns:200 ~seed:7 () in
  List.iter
    (fun w ->
      let scenario = Experiment.bank_sweep ~withdraw_pct:w in
      let rounds setup =
        let row = Experiment.run scenario setup cfg in
        assert row.Experiment.consistent;
        row.Experiment.stats.Scheduler.rounds
      in
      let uip =
        rounds (Experiment.setup Tm_engine.Recovery.UIP Experiment.Semantic)
      and du =
        rounds (Experiment.setup Tm_engine.Recovery.DU Experiment.Semantic)
      and serial =
        rounds (Experiment.setup Tm_engine.Recovery.UIP Experiment.Total)
      in
      Fmt.pr "%-12d %10d %10d %10d@." w uip du serial)
    [ 0; 25; 50; 75; 100 ];
  Fmt.pr
    "@.Each recovery method admits concurrency the other must forbid \
     (Theorems 9 and 10): the constraint sets are incomparable.@."
