examples/queue_broker.mli:
