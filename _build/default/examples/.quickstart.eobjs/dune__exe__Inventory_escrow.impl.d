examples/inventory_escrow.ml: Atomicity Fmt List Op Spec Tid Tm_adt Tm_core Tm_engine Value
