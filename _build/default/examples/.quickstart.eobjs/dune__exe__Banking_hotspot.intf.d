examples/banking_hotspot.mli:
