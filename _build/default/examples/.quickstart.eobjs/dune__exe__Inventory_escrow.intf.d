examples/inventory_escrow.mli:
