examples/queue_broker.ml: Fmt List Op Tid Tm_adt Tm_core Tm_engine Tm_sim Value
