examples/warehouse.ml: Array Fmt List Mutex Op Random Spec Thread Tm_adt Tm_core Tm_engine Value
