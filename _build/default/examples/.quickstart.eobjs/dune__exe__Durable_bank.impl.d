examples/durable_bank.ml: Fmt List Op Spec Tid Tm_adt Tm_core Tm_engine Value
