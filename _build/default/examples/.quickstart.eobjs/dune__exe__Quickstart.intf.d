examples/quickstart.mli:
