examples/warehouse.mli:
