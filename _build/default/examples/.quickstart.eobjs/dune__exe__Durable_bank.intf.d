examples/durable_bank.mli:
