examples/quickstart.ml: Atomicity Fmt History Op Spec Tid Tm_adt Tm_core Tm_engine Value
