examples/banking_hotspot.ml: Fmt List Tm_engine Tm_sim
