(* Queue broker: the price of FIFO.

   The same producer/consumer workload runs against two message-queue
   specifications: a strict FIFO queue and a semiqueue (dequeue returns
   *some* element — the classic weakened specification).  Weakening the
   spec makes enqueues commute with everything and dequeues conflict only
   on the same item, so commutativity-based locking extracts far more
   concurrency — the paper's "type-specific concurrency control" in one
   table.  The semiqueue's dequeue is also non-deterministic, exercising
   the framework's support for non-deterministic operations.

   Run with: dune exec examples/queue_broker.exe *)

open Tm_core
module Experiment = Tm_sim.Experiment
module Scheduler = Tm_sim.Scheduler
module Object = Tm_engine.Atomic_object
module Database = Tm_engine.Database

let () =
  Fmt.pr "Broker demo: FIFO queue vs semiqueue@.@.";

  (* Micro view: two consumers on a FIFO must serialise (both want the
     front); on a semiqueue they take different items concurrently. *)
  let module SQ = Tm_adt.Semiqueue in
  let sq =
    Object.create ~spec:SQ.spec ~conflict:SQ.nfc_conflict ~recovery:Tm_engine.Recovery.DU ()
  in
  let db = Database.create [ sq ] in
  let producer = Database.begin_txn db in
  ignore (Database.invoke db producer ~obj:"SQ" (Op.invocation ~args:[ Value.int 1 ] "enq"));
  ignore (Database.invoke db producer ~obj:"SQ" (Op.invocation ~args:[ Value.int 2 ] "enq"));
  Database.commit db producer;
  let c1 = Database.begin_txn db and c2 = Database.begin_txn db in
  let show t out = Fmt.pr "  consumer %a deq -> %a@." Tid.pp t Object.pp_outcome out in
  Fmt.pr "semiqueue: two concurrent consumers take different items:@.";
  show c1 (Database.invoke db c1 ~obj:"SQ" (Op.invocation "deq"));
  show c2 (Database.invoke db c2 ~obj:"SQ" (Op.invocation "deq"));
  Database.commit db c1;
  Database.commit db c2;

  (* Macro view: the broker workload end to end. *)
  Fmt.pr "@.broker workload, rounds to commit 200 transactions (lower is better):@.@.";
  Fmt.pr "%-12s %10s %10s %10s@." "queue" "UIP+NRBC" "DU+NFC" "serial";
  let cfg = Scheduler.config ~concurrency:8 ~total_txns:200 ~seed:7 () in
  List.iter
    (fun (label, scenario) ->
      let rounds setup =
        let row = Experiment.run scenario setup cfg in
        row.Experiment.stats.Scheduler.rounds
      in
      Fmt.pr "%-12s %10d %10d %10d@." label
        (rounds (Experiment.setup Tm_engine.Recovery.UIP Experiment.Semantic))
        (rounds (Experiment.setup Tm_engine.Recovery.DU Experiment.Semantic))
        (rounds (Experiment.setup Tm_engine.Recovery.UIP Experiment.Total)))
    [ ("fifo", Experiment.queue_fifo); ("semiqueue", Experiment.queue_semiqueue) ];
  Fmt.pr "@.The weaker specification commutes more, blocks less, and scales.@."
