(* examples_check: replay the paper's worked examples through the
   checkers and report each claim next to the paper's. *)

open Tm_core
module BA = Tm_adt.Bank_account

let env = Atomicity.env_of_list [ BA.spec ]

let claim what paper got =
  Fmt.pr "  %-52s paper: %-5s measured: %b %s@." what paper got
    (if String.equal paper (string_of_bool got) then "\xe2\x9c\x93" else "\xe2\x9c\x97 MISMATCH")

let section_3_2 () =
  Fmt.pr "Section 3.2 — Spec(BA) membership:@.";
  let legal = [ BA.deposit 5; BA.withdraw_ok 3; BA.balance 2; BA.withdraw_no 3 ] in
  let illegal = [ BA.deposit 5; BA.withdraw_ok 3; BA.balance 2; BA.withdraw_ok 3 ] in
  claim "dep(5);w(3)ok;bal=2;w(3)no in Spec" "true" (Spec.legal BA.spec legal);
  claim "dep(5);w(3)ok;bal=2;w(3)ok in Spec" "false" (Spec.legal BA.spec illegal)

let example_history =
  History.empty
  |> History.exec Tid.a (BA.deposit 3)
  |> History.exec Tid.b (BA.withdraw_ok 2)
  |> History.exec Tid.a (BA.balance 3)
  |> History.invoke Tid.b ~obj:"BA" (Op.invocation "balance")
  |> History.commit_at Tid.a "BA"
  |> History.respond Tid.b ~obj:"BA" (Value.int 1)
  |> History.commit_at Tid.b "BA"
  |> History.exec Tid.c (BA.withdraw_no 2)
  |> History.commit_at Tid.c "BA"

let section_3_3 () =
  Fmt.pr "Section 3.3/3.4 — the worked history:@.";
  claim "well-formed" "true" (History.is_well_formed example_history);
  claim "atomic" "true" (Atomicity.atomic env example_history);
  claim "dynamic atomic" "true" (Atomicity.is_dynamic_atomic env example_history);
  claim "serializable in A-B-C" "true"
    (Atomicity.serializable_in env (History.permanent example_history)
       [ Tid.a; Tid.b; Tid.c ]);
  let perturbed =
    History.empty
    |> History.exec Tid.a (BA.deposit 3)
    |> History.exec Tid.b (BA.withdraw_ok 2)
    |> History.exec Tid.a (BA.balance 3)
    |> History.exec Tid.b (BA.balance 1)
    |> History.commit_at Tid.a "BA"
    |> History.commit_at Tid.b "BA"
    |> History.exec Tid.c (BA.withdraw_no 2)
    |> History.commit_at Tid.c "BA"
  in
  claim "perturbed variant dynamic atomic" "false"
    (Atomicity.is_dynamic_atomic env perturbed)

let section_5 () =
  Fmt.pr "Section 5 — UIP and DU views:@.";
  let h =
    History.empty
    |> History.exec Tid.a (BA.deposit 5)
    |> History.commit_at Tid.a "BA"
    |> History.exec Tid.b (BA.withdraw_ok 3)
  in
  let eq a b = List.equal Op.equal a b in
  claim "UIP(H,B) = dep;withdraw" "true"
    (eq (View.apply View.uip h Tid.b) [ BA.deposit 5; BA.withdraw_ok 3 ]);
  claim "UIP(H,C) = UIP(H,B)" "true"
    (eq (View.apply View.uip h Tid.c) (View.apply View.uip h Tid.b));
  claim "DU(H,B) = dep;withdraw" "true"
    (eq (View.apply View.du h Tid.b) [ BA.deposit 5; BA.withdraw_ok 3 ]);
  claim "DU(H,C) = dep only" "true" (eq (View.apply View.du h Tid.c) [ BA.deposit 5 ])

let section_6_3 () =
  Fmt.pr "Section 6.3 — the worked commutativity example:@.";
  let p = Commutativity.default_params in
  claim "withdraw-ok does not RBC with deposit" "false"
    (Commutativity.rbc BA.spec p (BA.withdraw_ok 1) (BA.deposit 1));
  claim "deposit does RBC with withdraw-ok" "true"
    (Commutativity.rbc BA.spec p (BA.deposit 1) (BA.withdraw_ok 1))

let section_7 () =
  Fmt.pr "Section 7 — theorem counterexamples:@.";
  let p = Commutativity.default_params in
  claim "UIP with NFC conflicts refutable" "true"
    (Option.is_some (Theorems.uip_refute BA.spec p BA.nfc_conflict));
  claim "DU with NRBC conflicts refutable" "true"
    (Option.is_some (Theorems.du_refute BA.spec p BA.nrbc_conflict));
  claim "UIP with NRBC conflicts refutable" "false"
    (Option.is_some (Theorems.uip_refute BA.spec p BA.nrbc_conflict));
  claim "DU with NFC conflicts refutable" "false"
    (Option.is_some (Theorems.du_refute BA.spec p BA.nfc_conflict))

let () =
  Fmt.pr "Checking the paper's worked examples against the implementation@.@.";
  section_3_2 ();
  section_3_3 ();
  section_5 ();
  section_6_3 ();
  section_7 ();
  Fmt.pr "@.done.@."
