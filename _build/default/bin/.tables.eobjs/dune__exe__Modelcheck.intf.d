bin/modelcheck.mli:
