bin/explore.mli:
