bin/tables.mli:
