bin/simulate.ml: Arg Cmd Cmdliner Fmt List String Term Tm_engine Tm_sim
