bin/examples_check.ml: Atomicity Commutativity Fmt History List Op Option Spec String Theorems Tid Tm_adt Tm_core Value View
