bin/tables.ml: Arg Cmd Cmdliner Commutativity Fmt List String Term Tm_adt Tm_core
