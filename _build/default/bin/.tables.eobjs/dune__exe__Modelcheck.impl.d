bin/modelcheck.ml: Arg Atomicity Cmd Cmdliner Conflict Fmt History Impl_model List Random Term Tid Tm_adt Tm_core View
