bin/examples_check.mli:
