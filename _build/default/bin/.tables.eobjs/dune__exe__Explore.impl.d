bin/explore.ml: Arg Cmd Cmdliner Commutativity Conflict Explore Fmt List Op Spec String Term Tm_adt Tm_core
