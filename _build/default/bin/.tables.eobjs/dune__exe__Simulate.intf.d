bin/simulate.mli:
