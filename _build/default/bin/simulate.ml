(* simulate: run an engine scenario from the command line and print the
   comparison matrix (or a single configured run). *)

module Experiment = Tm_sim.Experiment
module Scheduler = Tm_sim.Scheduler
module Recovery = Tm_engine.Recovery

let scenarios () =
  Experiment.all_scenarios
  @ List.map (fun w -> Experiment.bank_sweep ~withdraw_pct:w) [ 0; 25; 50; 75; 100 ]
  @ List.map (fun d -> Experiment.inventory_sweep ~decr_pct:d) [ 0; 25; 50; 75; 100 ]

let find_scenario name =
  List.find_opt (fun (s : Experiment.scenario) -> String.equal s.name name) (scenarios ())

let list_scenarios () =
  Fmt.pr "Available scenarios:@.";
  List.iter (fun (s : Experiment.scenario) -> Fmt.pr "  %s@." s.name) (scenarios ())

let main name list_only recovery choice occ concurrency txns seed rounds =
  if list_only then list_scenarios ()
  else
    match find_scenario name with
    | None ->
        Fmt.epr "unknown scenario %S (try --list)@." name;
        exit 1
    | Some scenario -> (
        let cfg =
          Scheduler.config ~concurrency ~total_txns:txns ~seed ~max_rounds:rounds ()
        in
        match recovery, choice, occ with
        | None, None, false ->
            Fmt.pr "%a@." Experiment.pp_table (Experiment.run_matrix scenario cfg)
        | _ ->
            let recovery =
              match recovery with
              | Some "du" | Some "DU" -> Recovery.DU
              | None when occ -> Recovery.DU
              | _ -> Recovery.UIP
            in
            let choice =
              match choice with
              | Some "rw" -> Experiment.Read_write
              | Some "all" -> Experiment.Total
              | _ -> Experiment.Semantic
            in
            let row = Experiment.run scenario (Experiment.setup ~occ recovery choice) cfg in
            Fmt.pr "%a@." Experiment.pp_table [ row ])

open Cmdliner

let name_arg =
  Arg.(
    value
    & pos 0 string "bank-hotspot"
    & info [] ~docv:"SCENARIO" ~doc:"Scenario name (see --list).")

let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List scenarios.")

let recovery_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "recovery" ] ~docv:"uip|du" ~doc:"Recovery method (default: run the full matrix).")

let choice_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "conflict" ] ~docv:"semantic|rw|all" ~doc:"Conflict relation choice.")

let occ_arg =
  Arg.(value & flag & info [ "occ" ] ~doc:"Optimistic execution (implies deferred update).")

let concurrency_arg =
  Arg.(value & opt int 8 & info [ "concurrency"; "c" ] ~doc:"Concurrent transactions.")

let txns_arg = Arg.(value & opt int 200 & info [ "txns"; "n" ] ~doc:"Transactions to run.")
let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"PRNG seed.")
let rounds_arg = Arg.(value & opt int 100_000 & info [ "max-rounds" ] ~doc:"Safety stop.")

let cmd =
  let doc = "run a transaction-engine scenario and print scheduler statistics" in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const main $ name_arg $ list_arg $ recovery_arg $ choice_arg $ occ_arg
      $ concurrency_arg $ txns_arg $ seed_arg $ rounds_arg)

let () = exit (Cmd.eval cmd)
