(* explore: inspect a specification — reachable state-sets, conflict
   relation listings, and refutation witnesses for an operation pair. *)

open Tm_core
module Registry = Tm_adt.Registry

let with_entry type_name f =
  match Registry.find type_name with
  | Some e -> f e
  | None ->
      Fmt.epr "unknown type %S; try one of %a@." type_name
        Fmt.(list ~sep:comma string)
        Registry.names;
      exit 1

let show_reachable (e : Registry.entry) depth =
  let (Spec.Packed (module S)) = e.spec in
  let module E = Explore.Make (S) in
  let reached = E.reachable ~depth ~alphabet:S.generators in
  Fmt.pr "%d distinct reachable state-sets within depth %d:@." (List.length reached) depth;
  List.iter
    (fun (word, sts) ->
      Fmt.pr "  [%a] -> {%a}@."
        Fmt.(list ~sep:(any "; ") Op.pp_short)
        word
        Fmt.(list ~sep:(any ", ") S.pp_state)
        (E.States.elements sts))
    reached

let show_conflicts (e : Registry.entry) =
  let ops = Spec.generators e.spec in
  let show name (rel : Conflict.t) =
    Fmt.pr "%s conflicts (requested / held):@." name;
    List.iter
      (fun p ->
        List.iter
          (fun q ->
            if Conflict.conflicts rel ~requested:p ~held:q then
              Fmt.pr "  %a  vs  %a@." Op.pp_short p Op.pp_short q)
          ops)
      ops
  in
  show "NFC" e.nfc;
  show "NRBC" e.nrbc

let find_op (e : Registry.entry) text =
  let candidates = Spec.generators e.spec in
  match
    List.find_opt (fun op -> String.equal (Fmt.str "%a" Op.pp_short op) text) candidates
  with
  | Some op -> op
  | None ->
      Fmt.epr "unknown operation %S; generator alphabet:@." text;
      List.iter (fun op -> Fmt.epr "  %a@." Op.pp_short op) candidates;
      exit 1

let show_witness (e : Registry.entry) beta gamma depth =
  let b = find_op e beta and g = find_op e gamma in
  let p = Commutativity.params ~alpha_depth:depth ~future_depth:depth () in
  Fmt.pr "forward commutativity of %a and %a: %a@." Op.pp_short b Op.pp_short g
    Commutativity.pp_verdict
    (Commutativity.commute_forward e.spec p b g);
  Fmt.pr "%a right-commutes-backward with %a: %a@." Op.pp_short b Op.pp_short g
    Commutativity.pp_verdict
    (Commutativity.right_commutes_backward e.spec p b g)

let main type_name depth reachable conflicts pair =
  with_entry type_name (fun e ->
      match pair with
      | Some (beta, gamma) -> show_witness e beta gamma depth
      | None ->
          if reachable then show_reachable e depth;
          if conflicts then show_conflicts e;
          if (not reachable) && not conflicts then begin
            show_reachable e (min depth 3);
            show_conflicts e
          end)

open Cmdliner

let type_arg =
  Arg.(value & pos 0 string "BA" & info [] ~docv:"TYPE" ~doc:"Object type.")

let depth_arg = Arg.(value & opt int 5 & info [ "depth" ] ~doc:"Exploration depth.")
let reachable_arg = Arg.(value & flag & info [ "reachable" ] ~doc:"Show reachable state-sets.")
let conflicts_arg = Arg.(value & flag & info [ "conflicts" ] ~doc:"List conflict pairs.")

let pair_arg =
  Arg.(
    value
    & opt (some (pair ~sep:',' string string)) None
    & info [ "pair" ] ~docv:"OP1,OP2"
        ~doc:"Decide commutativity of two operations (pp-short syntax, e.g. \
              'withdraw(1)\xe2\x86\x92ok,deposit(1)\xe2\x86\x92ok').")

let cmd =
  let doc = "explore a serial specification and its conflict relations" in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(const main $ type_arg $ depth_arg $ reachable_arg $ conflicts_arg $ pair_arg)

let () = exit (Cmd.eval cmd)
