(* modelcheck: bounded model checking of I(X, Spec, View, Conflict).

   Enumerates (and randomly samples) the histories the implementation
   model admits for a registered type under a chosen view and conflict
   relation, and checks each for online dynamic atomicity — Theorems 9
   and 10 made push-button: sound combinations report no violation;
   unsound ones print a concrete non-serializable history. *)

open Tm_core
module Registry = Tm_adt.Registry

let pick_view = function
  | "uip" | "UIP" -> View.uip
  | "du" | "DU" -> View.du
  | v ->
      Fmt.epr "unknown view %S (uip|du)@." v;
      exit 1

let pick_conflict (e : Registry.entry) = function
  | "nrbc" -> e.nrbc
  | "nfc" -> e.nfc
  | "rw" -> e.rw
  | "none" -> Conflict.none
  | "all" -> Conflict.all
  | c ->
      Fmt.epr "unknown conflict %S (nrbc|nfc|rw|none|all)@." c;
      exit 1

let main type_name view_name conflict_name txns ops max_events limit random_walks steps seed =
  match Registry.find type_name with
  | None ->
      Fmt.epr "unknown type %S; try one of %a@." type_name
        Fmt.(list ~sep:comma string)
        Registry.names;
      exit 1
  | Some e ->
      let view = pick_view view_name in
      let conflict = pick_conflict e conflict_name in
      let i = Impl_model.make ~spec:e.spec ~view ~conflict in
      let env = Atomicity.env_of_list [ e.spec ] in
      let tids = List.init txns Tid.of_int in
      let violations = ref 0 in
      let checked = ref 0 in
      let check h =
        incr checked;
        match Atomicity.online_dynamic_atomic env h with
        | Atomicity.Ok -> ()
        | Atomicity.Counterexample order ->
            incr violations;
            if !violations = 1 then
              Fmt.pr "@.VIOLATION — not serializable in %a:@.%a@.@."
                Fmt.(list ~sep:(any "-") Tid.pp)
                order History.pp h
      in
      Fmt.pr "model checking I(%s, Spec, %s, %s): %d txns x %d ops, <=%d events@."
        e.name (View.name view) (Conflict.name conflict) txns ops max_events;
      List.iter check
        (Impl_model.enumerate i ~txns:tids ~ops_per_txn:ops ~max_events ~limit);
      Fmt.pr "enumerated: %d histories@." !checked;
      if random_walks > 0 then begin
        let rng = Random.State.make [| seed |] in
        let before = !checked in
        for _ = 1 to random_walks do
          check (Impl_model.random i ~txns:tids ~ops_per_txn:ops ~steps ~rng)
        done;
        Fmt.pr "random walks: %d@." (!checked - before)
      end;
      if !violations = 0 then Fmt.pr "no violations: every history online dynamic atomic@."
      else begin
        Fmt.pr "%d violating histories@." !violations;
        exit 2
      end

open Cmdliner

let type_arg = Arg.(value & pos 0 string "BA" & info [] ~docv:"TYPE" ~doc:"Object type.")
let view_arg = Arg.(value & opt string "uip" & info [ "view" ] ~docv:"uip|du" ~doc:"Recovery view.")

let conflict_arg =
  Arg.(
    value & opt string "nrbc"
    & info [ "conflict" ] ~docv:"nrbc|nfc|rw|none|all" ~doc:"Conflict relation.")

let txns_arg = Arg.(value & opt int 2 & info [ "txns" ] ~doc:"Transactions.")
let ops_arg = Arg.(value & opt int 2 & info [ "ops" ] ~doc:"Operations per transaction.")
let events_arg = Arg.(value & opt int 8 & info [ "max-events" ] ~doc:"History length bound.")
let limit_arg = Arg.(value & opt int 5000 & info [ "limit" ] ~doc:"Enumeration budget.")
let random_arg = Arg.(value & opt int 50 & info [ "random" ] ~doc:"Additional random walks.")
let steps_arg = Arg.(value & opt int 20 & info [ "steps" ] ~doc:"Steps per random walk.")
let seed_arg = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"PRNG seed.")

let cmd =
  let doc = "bounded model checking of the paper's implementation model" in
  Cmd.v
    (Cmd.info "modelcheck" ~doc)
    Term.(
      const main $ type_arg $ view_arg $ conflict_arg $ txns_arg $ ops_arg $ events_arg
      $ limit_arg $ random_arg $ steps_arg $ seed_arg)

let () = exit (Cmd.eval cmd)
