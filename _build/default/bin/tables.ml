(* tables: print the commutativity tables (the paper's Figures 6-1/6-2)
   for any registered ADT, computed from its serial specification. *)

open Tm_core
module Registry = Tm_adt.Registry

let list_types () =
  Fmt.pr "Available types:@.";
  List.iter (fun (e : Registry.entry) -> Fmt.pr "  %-4s %s@." e.name e.description) Registry.all

let print_tables type_name alpha_depth future_depth =
  match Registry.find type_name with
  | None ->
      Fmt.epr "unknown type %S; try one of %a@." type_name
        Fmt.(list ~sep:comma string)
        Registry.names;
      exit 1
  | Some e ->
      let p = Commutativity.params ~alpha_depth ~future_depth () in
      Fmt.pr "Forward commutativity for %s (X = do not commute forward):@.%a@."
        e.name Commutativity.pp_table
        (Commutativity.fc_table e.spec p e.classes);
      Fmt.pr
        "Right backward commutativity for %s (X = row does not right commute \
         backward with column):@.%a@."
        e.name Commutativity.pp_table
        (Commutativity.rbc_table e.spec p e.classes);
      if String.equal e.name "BA" then begin
        let fc = Commutativity.fc_table e.spec p e.classes in
        let rbc = Commutativity.rbc_table e.spec p e.classes in
        Fmt.pr "Figure 6-1 reproduced: %b@."
          (Commutativity.equal_table fc Tm_adt.Bank_account.paper_fc_table);
        Fmt.pr "Figure 6-2 reproduced: %b@."
          (Commutativity.equal_table rbc Tm_adt.Bank_account.paper_rbc_table)
      end

let main type_name list alpha_depth future_depth =
  if list then list_types () else print_tables type_name alpha_depth future_depth

open Cmdliner

let type_arg =
  Arg.(value & pos 0 string "BA" & info [] ~docv:"TYPE" ~doc:"Object type (see --list).")

let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List the registered types.")

let alpha_arg =
  Arg.(value & opt int 5 & info [ "alpha-depth" ] ~doc:"Context exploration depth.")

let future_arg =
  Arg.(value & opt int 5 & info [ "future-depth" ] ~doc:"Distinguishing-future depth.")

let cmd =
  let doc = "print commutativity tables computed from a serial specification" in
  Cmd.v
    (Cmd.info "tables" ~doc)
    Term.(const main $ type_arg $ list_arg $ alpha_arg $ future_arg)

let () = exit (Cmd.eval cmd)
