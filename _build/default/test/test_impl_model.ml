(* The abstract implementation model I(X, Spec, View, Conflict)
   (Section 4): response preconditions, validity, and the generators —
   including bounded model checking of the "if" directions of
   Theorems 9 and 10 (every generated history is online dynamic atomic
   when the conflict relation contains the required one). *)

open Tm_core

let dep = Helpers.dep
let wok = Helpers.wok
let env = Helpers.ba_env
let spec = Helpers.BA.spec
let uip_nrbc = Impl_model.make ~spec ~view:View.uip ~conflict:Helpers.BA.nrbc_conflict
let du_nfc = Impl_model.make ~spec ~view:View.du ~conflict:Helpers.BA.nfc_conflict

let test_response_preconditions () =
  let h = History.empty |> History.invoke Tid.a ~obj:"BA" (Op.invocation "balance") in
  Helpers.check_bool "balance 0 enabled" true
    (Impl_model.response_enabled uip_nrbc h Tid.a (Value.int 0));
  Helpers.check_bool "balance 5 not legal" false
    (Impl_model.response_enabled uip_nrbc h Tid.a (Value.int 5));
  Helpers.check_bool "no pending, no response" false
    (Impl_model.response_enabled uip_nrbc History.empty Tid.a (Value.int 0))

let test_conflict_blocks () =
  (* The paper's §6.3 pair at the implementation model: with a committed
     balance of 2, B holds an active deposit and A requests a successful
     withdrawal.  Under UIP+NRBC the withdrawal does not push back over
     the deposit — blocked; under DU+NFC the two commute forward —
     enabled (A's view is the committed balance plus its own ops). *)
  let h =
    History.empty
    |> History.exec Tid.d (dep 2)
    |> History.commit_at Tid.d "BA"
    |> History.exec Tid.b (dep 1)
    |> History.invoke Tid.a ~obj:"BA" (Op.invocation ~args:[ Value.int 1 ] "withdraw")
  in
  Helpers.check_bool "blocked under UIP+NRBC" false
    (Impl_model.response_enabled uip_nrbc h Tid.a Value.ok);
  Helpers.check_bool "blocked flag" true (Impl_model.blocked uip_nrbc h Tid.a);
  Helpers.check_bool "enabled under DU+NFC" true
    (Impl_model.response_enabled du_nfc h Tid.a Value.ok);
  (* And the mirror image: with B holding a successful withdrawal, a
     second one is enabled under UIP+NRBC but blocked under DU+NFC. *)
  let h' =
    History.empty
    |> History.exec Tid.d (dep 2)
    |> History.commit_at Tid.d "BA"
    |> History.exec Tid.b (wok 1)
    |> History.invoke Tid.a ~obj:"BA" (Op.invocation ~args:[ Value.int 1 ] "withdraw")
  in
  Helpers.check_bool "second withdrawal enabled under UIP+NRBC" true
    (Impl_model.response_enabled uip_nrbc h' Tid.a Value.ok);
  Helpers.check_bool "second withdrawal blocked under DU+NFC" false
    (Impl_model.response_enabled du_nfc h' Tid.a Value.ok)

let test_own_ops_do_not_conflict () =
  let h =
    History.empty
    |> History.exec Tid.a (dep 1)
    |> History.invoke Tid.a ~obj:"BA" (Op.invocation ~args:[ Value.int 1 ] "withdraw")
  in
  Helpers.check_bool "own deposit does not block own withdraw" true
    (Impl_model.response_enabled uip_nrbc h Tid.a Value.ok)

let test_view_gates_response () =
  (* Precondition 3 in isolation (conflict relation emptied): under DU an
     active transaction cannot see another active transaction's deposit;
     under UIP the single current state includes it. *)
  let h =
    History.empty
    |> History.exec Tid.b (dep 5)
    |> History.invoke Tid.a ~obj:"BA" (Op.invocation "balance")
  in
  let du_none = Impl_model.make ~spec ~view:View.du ~conflict:Conflict.none in
  let uip_none = Impl_model.make ~spec ~view:View.uip ~conflict:Conflict.none in
  Helpers.check_bool "DU: balance reads 0" true
    (Impl_model.response_enabled du_none h Tid.a (Value.int 0));
  Helpers.check_bool "DU: balance cannot read 5" false
    (Impl_model.response_enabled du_none h Tid.a (Value.int 5));
  Helpers.check_bool "UIP: balance reads 5" true
    (Impl_model.response_enabled uip_none h Tid.a (Value.int 5));
  Helpers.check_bool "UIP: balance cannot read 0" false
    (Impl_model.response_enabled uip_none h Tid.a (Value.int 0))

let test_valid () =
  (* The §3.3 example is dynamic atomic but lies in *neither*
     implementation's language, even with no conflicts: B's successful
     withdrawal before A commits needs the UIP view (A's uncommitted
     deposit visible), while A's balance reading 3 after B's withdrawal
     needs the DU view (B's operation invisible).  The paper offers it as
     a history example, not an implementation run. *)
  let du_none = Impl_model.make ~spec ~view:View.du ~conflict:Conflict.none in
  Helpers.check_bool "paper example invalid under DU" false
    (Impl_model.valid du_none Helpers.paper_example_history);
  let uip_none = Impl_model.make ~spec ~view:View.uip ~conflict:Conflict.none in
  Helpers.check_bool "paper example invalid under UIP" false
    (Impl_model.valid uip_none Helpers.paper_example_history);
  (* The sound configurations block the overlap outright. *)
  Helpers.check_bool "invalid under UIP+NRBC" false
    (Impl_model.valid uip_nrbc Helpers.paper_example_history);
  (* A history whose response was never legal is invalid. *)
  let bad = History.empty |> History.exec Tid.a (wok 5) in
  Helpers.check_bool "invalid" false (Impl_model.valid uip_nrbc bad);
  (* A serial version of the same work is valid under both. *)
  let serial =
    History.empty
    |> History.exec Tid.a (dep 3)
    |> History.exec Tid.a (Helpers.bal 3)
    |> History.commit_at Tid.a "BA"
    |> History.exec Tid.b (Helpers.wok 2)
    |> History.commit_at Tid.b "BA"
  in
  Helpers.check_bool "serial valid under UIP+NRBC" true (Impl_model.valid uip_nrbc serial);
  Helpers.check_bool "serial valid under DU+NFC" true (Impl_model.valid du_nfc serial)

let test_enumerate_prefix_closed_and_valid () =
  let hs =
    Impl_model.enumerate uip_nrbc ~txns:[ Tid.a; Tid.b ] ~ops_per_txn:1 ~max_events:6
      ~limit:2000
  in
  Helpers.check_bool "nonempty" true (List.length hs > 10);
  Helpers.check_bool "all valid" true (List.for_all (Impl_model.valid uip_nrbc) hs)

(* Bounded model checking of Theorem 9/10 "if" directions. *)
let model_check name i limit =
  Alcotest.test_case name `Slow (fun () ->
      let hs = Impl_model.enumerate i ~txns:[ Tid.a; Tid.b ] ~ops_per_txn:2 ~max_events:8 ~limit in
      Helpers.check_bool "explored some histories" true (List.length hs > 100);
      List.iter
        (fun h ->
          match Atomicity.online_dynamic_atomic env h with
          | Atomicity.Ok -> ()
          | Atomicity.Counterexample order ->
              Alcotest.failf "not online dynamic atomic in %a:@.%a"
                Fmt.(list ~sep:(any "-") Tid.pp)
                order History.pp h)
        hs)

let test_random_walks_dynamic_atomic name i =
  Alcotest.test_case name `Slow (fun () ->
      let rng = Random.State.make [| 2024 |] in
      for _ = 1 to 60 do
        let h = Impl_model.random i ~txns:[ Tid.a; Tid.b; Tid.c ] ~ops_per_txn:3 ~steps:24 ~rng in
        Helpers.check_bool "online dynamic atomic" true
          (Atomicity.is_online_dynamic_atomic env h)
      done)

(* Sanity for the only-if: with an insufficient conflict relation the
   generators *can* produce a non-dynamic-atomic history (checked via the
   Theorems module in test_theorems; here we check the model accepts the
   violating history, i.e. the gate really is the conflict relation). *)
let test_missing_conflict_admits_violation () =
  let weak = Impl_model.make ~spec ~view:View.uip ~conflict:Conflict.none in
  let h =
    History.empty
    |> History.exec Tid.b (dep 1)
    |> History.exec Tid.c (wok 1)
    |> History.commit_at Tid.b "BA"
    |> History.commit_at Tid.c "BA"
  in
  Helpers.check_bool "valid without conflicts" true (Impl_model.valid weak h);
  Helpers.check_bool "but not dynamic atomic" false (Atomicity.is_dynamic_atomic env h);
  Helpers.check_bool "rejected with NRBC" false (Impl_model.valid uip_nrbc h)

let suite =
  [
    Alcotest.test_case "response preconditions" `Quick test_response_preconditions;
    Alcotest.test_case "conflict blocks (§6.3)" `Quick test_conflict_blocks;
    Alcotest.test_case "own ops do not conflict" `Quick test_own_ops_do_not_conflict;
    Alcotest.test_case "view gates response" `Quick test_view_gates_response;
    Alcotest.test_case "validity" `Quick test_valid;
    Alcotest.test_case "enumeration valid" `Quick test_enumerate_prefix_closed_and_valid;
    model_check "model check: UIP+NRBC online dynamic atomic" uip_nrbc 4000;
    model_check "model check: DU+NFC online dynamic atomic" du_nfc 4000;
    test_random_walks_dynamic_atomic "random walks: UIP+NRBC" uip_nrbc;
    test_random_walks_dynamic_atomic "random walks: DU+NFC" du_nfc;
    Alcotest.test_case "missing conflict admits violation" `Quick
      test_missing_conflict_admits_violation;
  ]
