(* History: well-formedness, projections, Opseq, precedes, Serial,
   commit order — Sections 2 and 3 of the paper. *)

open Tm_core

let dep = Helpers.dep
let wok = Helpers.wok
let bal = Helpers.bal

let test_well_formed_example () =
  Helpers.check_bool "paper §3.3 history is well-formed" true
    (History.is_well_formed Helpers.paper_example_history)

let test_violation_invoke_while_pending () =
  let h =
    History.empty
    |> History.invoke Tid.a ~obj:"BA" (Op.invocation "balance")
    |> History.invoke Tid.a ~obj:"BA" (Op.invocation "balance")
  in
  match History.well_formedness_errors h with
  | [ History.Invoke_while_pending a ] -> Alcotest.check Helpers.tid "tid" Tid.a a
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_violation_response_without_pending () =
  let h = History.empty |> History.respond Tid.a ~obj:"BA" Value.ok in
  Helpers.check_bool "ill-formed" false (History.is_well_formed h)

let test_violation_response_wrong_object () =
  let h =
    History.empty
    |> History.invoke Tid.a ~obj:"X" (Op.invocation "f")
    |> History.respond Tid.a ~obj:"Y" Value.ok
  in
  Helpers.check_bool "response at wrong object" false (History.is_well_formed h)

let test_violation_commit_while_pending () =
  let h =
    History.empty
    |> History.invoke Tid.a ~obj:"BA" (Op.invocation "balance")
    |> History.commit_at Tid.a "BA"
  in
  Helpers.check_bool "ill-formed" false (History.is_well_formed h)

let test_violation_commit_and_abort () =
  let h =
    History.empty
    |> History.exec Tid.a (dep 1)
    |> History.commit_at Tid.a "BA"
    |> History.abort_at Tid.a "BA"
  in
  Helpers.check_bool "atomic commitment violated" false (History.is_well_formed h)

let test_violation_event_after_commit () =
  let h =
    History.empty
    |> History.exec Tid.a (dep 1)
    |> History.commit_at Tid.a "BA"
    |> History.exec Tid.a (dep 1)
  in
  Helpers.check_bool "ill-formed" false (History.is_well_formed h)

let test_commit_at_several_objects_ok () =
  let x = Op.make ~obj:"X" "f" Value.ok and y = Op.make ~obj:"Y" "g" Value.ok in
  let h =
    History.empty
    |> History.exec Tid.a x
    |> History.exec Tid.a y
    |> History.commit_at Tid.a "X"
    |> History.commit_at Tid.a "Y"
  in
  Helpers.check_bool "commit at each object" true (History.is_well_formed h)

let test_duplicate_commit_same_object () =
  let h =
    History.empty
    |> History.exec Tid.a (dep 1)
    |> History.commit_at Tid.a "BA"
    |> History.commit_at Tid.a "BA"
  in
  Helpers.check_bool "ill-formed" false (History.is_well_formed h)

let test_status_sets () =
  let h = Helpers.section5_history in
  Helpers.check_bool "A committed" true (Tid.Set.mem Tid.a (History.committed h));
  Helpers.check_bool "B active" true (Tid.Set.mem Tid.b (History.active h));
  Helpers.check_bool "no aborts" true (Tid.Set.is_empty (History.aborted h));
  let h' = History.abort_at Tid.b "BA" h in
  Helpers.check_bool "B aborted" true (Tid.Set.mem Tid.b (History.aborted h'));
  Helpers.check_bool "B no longer active" false (Tid.Set.mem Tid.b (History.active h'))

let test_opseq () =
  Alcotest.check Helpers.ops "§5 opseq" [ dep 5; wok 3 ]
    (History.opseq Helpers.section5_history);
  (* pending invocations are ignored *)
  let h =
    Helpers.section5_history |> History.invoke Tid.b ~obj:"BA" (Op.invocation "balance")
  in
  Alcotest.check Helpers.ops "pending ignored" [ dep 5; wok 3 ] (History.opseq h)

let test_opseq_order_is_response_order () =
  (* A invokes first but B responds first: B's operation comes first. *)
  let h =
    History.empty
    |> History.invoke Tid.a ~obj:"BA" (Op.invocation ~args:[ Value.int 1 ] "deposit")
    |> History.exec Tid.b (dep 2)
    |> History.respond Tid.a ~obj:"BA" Value.ok
  in
  Alcotest.check Helpers.ops "response order" [ dep 2; dep 1 ] (History.opseq h)

let test_projections () =
  let h = Helpers.paper_example_history in
  let ha = History.project_tid h Tid.a in
  Helpers.check_int "H|A events" 5 (History.length ha);
  Alcotest.check Helpers.ops "H|A ops" [ dep 3; bal 3 ] (History.opseq ha);
  let hx = History.project_obj h "BA" in
  Helpers.check_int "H|BA = H" (History.length h) (History.length hx)

let test_permanent () =
  let h = Helpers.section5_history in
  Alcotest.check Helpers.ops "permanent drops active B" [ dep 5 ]
    (History.opseq (History.permanent h));
  let h' = History.abort_at Tid.b "BA" h in
  Alcotest.check Helpers.ops "permanent drops aborted B" [ dep 5 ]
    (History.opseq (History.permanent h'))

let test_precedes () =
  let h = Helpers.paper_example_history in
  let p = History.precedes h in
  Helpers.check_bool "(A,B)" true (p Tid.a Tid.b);
  Helpers.check_bool "(B,C)" true (p Tid.b Tid.c);
  Helpers.check_bool "(A,C)" true (p Tid.a Tid.c);
  Helpers.check_bool "not (B,A)" false (p Tid.b Tid.a);
  Helpers.check_bool "not (C,B)" false (p Tid.c Tid.b);
  Helpers.check_bool "irreflexive" false (p Tid.a Tid.a)

let test_precedes_concurrent () =
  (* B responds before A commits: neither precedes the other. *)
  let h =
    History.empty
    |> History.exec Tid.a (dep 1)
    |> History.exec Tid.b (dep 2)
    |> History.commit_at Tid.a "BA"
    |> History.commit_at Tid.b "BA"
  in
  let p = History.precedes h in
  Helpers.check_bool "not (A,B)" false (p Tid.a Tid.b);
  Helpers.check_bool "not (B,A)" false (p Tid.b Tid.a)

let test_serial_and_equivalent () =
  let h =
    History.empty
    |> History.exec Tid.a (dep 1)
    |> History.exec Tid.b (dep 2)
    |> History.exec Tid.a (dep 3)
  in
  let s = History.serial h [ Tid.a; Tid.b ] in
  Helpers.check_bool "serial" true (History.is_serial s);
  Helpers.check_bool "equivalent" true (History.equivalent h s);
  Alcotest.check Helpers.ops "serial ops" [ dep 1; dep 3; dep 2 ] (History.opseq s);
  Helpers.check_bool "h itself not serial" false (History.is_serial h)

let test_commit_order () =
  let h =
    History.empty
    |> History.exec Tid.b (dep 1)
    |> History.exec Tid.a (dep 2)
    |> History.commit_at Tid.b "BA"
    |> History.commit_at Tid.a "BA"
  in
  Alcotest.check Helpers.tids "commit order" [ Tid.b; Tid.a ] (History.commit_order h)

(* Property: random histories built from exec/commit combinators are
   always well-formed, and opseq length = number of response events. *)
let gen_builder_history =
  let open QCheck2.Gen in
  list_size (int_bound 20)
    (pair (int_bound 2) (oneofl [ `Dep; `Wok; `Bal; `Commit ]))
  >|= fun steps ->
  List.fold_left
    (fun h (t, action) ->
      let tid = Tid.of_int t in
      let finished =
        Tid.Set.mem tid (History.committed h) || Tid.Set.mem tid (History.aborted h)
      in
      if finished then h
      else
        match action with
        | `Dep -> History.exec tid (dep 1) h
        | `Wok -> History.exec tid (wok 1) h
        | `Bal -> History.exec tid (bal 0) h
        | `Commit -> History.commit_at tid "BA" h)
    History.empty steps

let prop_builder_well_formed =
  Helpers.qcheck "builder histories are well-formed" gen_builder_history (fun h ->
      History.is_well_formed h
      && List.length (History.opseq h)
         = List.length (List.filter Event.is_respond (History.events h)))

let prop_precedes_transitive_enough =
  (* precedes(H|X) ⊆ precedes(H) — Lemma 1, single-object instance is
     equality; exercise the subset claim through object projection. *)
  Helpers.qcheck "Lemma 1: precedes(H|X) subset of precedes(H)" gen_builder_history
    (fun h ->
      let px = History.precedes (History.project_obj h "BA") in
      let p = History.precedes h in
      Tid.Set.for_all
        (fun a -> Tid.Set.for_all (fun b -> (not (px a b)) || p a b) (History.transactions h))
        (History.transactions h))

let suite =
  [
    Alcotest.test_case "paper example well-formed" `Quick test_well_formed_example;
    Alcotest.test_case "invoke while pending" `Quick test_violation_invoke_while_pending;
    Alcotest.test_case "response without pending" `Quick test_violation_response_without_pending;
    Alcotest.test_case "response at wrong object" `Quick test_violation_response_wrong_object;
    Alcotest.test_case "commit while pending" `Quick test_violation_commit_while_pending;
    Alcotest.test_case "commit and abort" `Quick test_violation_commit_and_abort;
    Alcotest.test_case "event after commit" `Quick test_violation_event_after_commit;
    Alcotest.test_case "commit at several objects" `Quick test_commit_at_several_objects_ok;
    Alcotest.test_case "duplicate commit" `Quick test_duplicate_commit_same_object;
    Alcotest.test_case "committed/aborted/active" `Quick test_status_sets;
    Alcotest.test_case "opseq" `Quick test_opseq;
    Alcotest.test_case "opseq response order" `Quick test_opseq_order_is_response_order;
    Alcotest.test_case "projections" `Quick test_projections;
    Alcotest.test_case "permanent" `Quick test_permanent;
    Alcotest.test_case "precedes on paper example" `Quick test_precedes;
    Alcotest.test_case "precedes concurrent" `Quick test_precedes_concurrent;
    Alcotest.test_case "serial and equivalent" `Quick test_serial_and_equivalent;
    Alcotest.test_case "commit order" `Quick test_commit_order;
    prop_builder_well_formed;
    prop_precedes_transitive_enough;
  ]
