(* Optimistic concurrency control (Section 3.4's alternative to locking):
   invocations never block, validation at commit aborts transactions whose
   operations conflict with operations committed since they started —
   using the same commutativity-based conflict relations. *)

open Tm_core
module Atomic_object = Tm_engine.Atomic_object
module Database = Tm_engine.Database
module BA = Tm_adt.Bank_account

let deposit_inv i = Op.invocation ~args:[ Value.int i ] "deposit"
let withdraw_inv i = Op.invocation ~args:[ Value.int i ] "withdraw"
let balance_inv = Op.invocation "balance"

let make_occ () =
  Atomic_object.create_optimistic ~spec:(BA.spec_with_initial 100) ~conflict:BA.nfc_conflict

let exec o tid inv =
  match Atomic_object.invoke o tid inv with
  | Atomic_object.Executed op -> op
  | out -> Alcotest.failf "expected execution, got %a" Atomic_object.pp_outcome out

let test_never_blocks () =
  let o = make_occ () in
  (* Two concurrent successful withdrawals: locking DU+NFC would block
     the second; optimistic executes both. *)
  let op1 = exec o Tid.a (withdraw_inv 10) in
  let op2 = exec o Tid.b (withdraw_inv 10) in
  Alcotest.check Helpers.op "first" (BA.withdraw_ok 10) op1;
  Alcotest.check Helpers.op "second" (BA.withdraw_ok 10) op2;
  Helpers.check_int "no blocks counted" 0 (Atomic_object.block_count o)

let test_validation_catches_conflict () =
  let o = make_occ () in
  ignore (exec o Tid.a (withdraw_inv 10));
  ignore (exec o Tid.b (withdraw_inv 10));
  (* A commits first and wins; B must fail validation. *)
  Helpers.check_bool "A validates" true (Atomic_object.validate o Tid.a = Ok ());
  Atomic_object.commit o Tid.a;
  (match Atomic_object.validate o Tid.b with
  | Error (mine, theirs) ->
      Alcotest.check Helpers.op "mine" (BA.withdraw_ok 10) mine;
      Alcotest.check Helpers.op "theirs" (BA.withdraw_ok 10) theirs
  | Ok () -> Alcotest.fail "expected validation failure");
  Atomic_object.abort o Tid.b;
  Helpers.check_bool "committed ops replay" true
    (Spec.legal (Atomic_object.spec o) (Atomic_object.committed_ops o))

let test_commuting_ops_validate () =
  let o = make_occ () in
  ignore (exec o Tid.a (deposit_inv 5));
  ignore (exec o Tid.b (withdraw_inv 10));
  Atomic_object.commit o Tid.a;
  (* deposit/withdraw-ok commute forward: B still validates. *)
  Helpers.check_bool "B validates" true (Atomic_object.validate o Tid.b = Ok ());
  Atomic_object.commit o Tid.b;
  Helpers.check_bool "replay" true
    (Spec.legal (Atomic_object.spec o) (Atomic_object.committed_ops o))

let test_start_point_matters () =
  let o = make_occ () in
  (* A withdraws and commits *before* B starts: no conflict for B. *)
  ignore (exec o Tid.a (withdraw_inv 10));
  Atomic_object.commit o Tid.a;
  ignore (exec o Tid.b (withdraw_inv 10));
  Helpers.check_bool "B validates" true (Atomic_object.validate o Tid.b = Ok ())

let test_occ_reads_are_snapshots () =
  let o = make_occ () in
  let bal_op = exec o Tid.a balance_inv in
  Alcotest.check Helpers.op "A reads 100" (BA.balance 100) bal_op;
  ignore (exec o Tid.b (deposit_inv 5));
  Atomic_object.commit o Tid.b;
  (* A's balance read conflicts with the interleaved committed deposit:
     validation must fail. *)
  Helpers.check_bool "A fails validation" true (Atomic_object.validate o Tid.a <> Ok ());
  Atomic_object.abort o Tid.a

let test_database_try_commit () =
  let o = make_occ () in
  let db = Database.create ~record_history:true [ o ] in
  let a = Database.begin_txn db in
  let b = Database.begin_txn db in
  ignore (Database.invoke db a ~obj:"BA" (withdraw_inv 10));
  ignore (Database.invoke db b ~obj:"BA" (withdraw_inv 10));
  Helpers.check_bool "A commits" true (Database.try_commit db a = Ok ());
  (match Database.try_commit db b with
  | Error (obj, _, _) -> Alcotest.(check string) "failing object" "BA" obj
  | Ok () -> Alcotest.fail "expected validation failure");
  Helpers.check_int "B aborted" 1 (Database.aborted_count db);
  (* the recorded history (with B aborted) is dynamic atomic *)
  let env = Atomicity.env_of_list [ BA.spec_with_initial 100 ] in
  Helpers.check_bool "dynamic atomic" true
    (Atomicity.is_dynamic_atomic env (Database.history db))

let test_random_occ_runs_consistent () =
  (* Seeded random OCC runs: committed ops always replay; recorded
     histories dynamic atomic. *)
  let spec = BA.spec_with_initial 20 in
  let env = Atomicity.env_of_list [ spec ] in
  for seed = 1 to 15 do
    let o = Atomic_object.create_optimistic ~spec ~conflict:BA.nfc_conflict in
    let db = Database.create ~record_history:true [ o ] in
    let rng = Random.State.make [| seed |] in
    let active = ref [] in
    for _ = 1 to 50 do
      if List.length !active < 4 then active := Database.begin_txn db :: !active;
      match !active with
      | [] -> ()
      | ts -> (
          let t = List.nth ts (Random.State.int rng (List.length ts)) in
          if Random.State.int rng 10 < 7 then begin
            let inv =
              match Random.State.int rng 3 with
              | 0 -> deposit_inv (1 + Random.State.int rng 2)
              | 1 -> withdraw_inv (1 + Random.State.int rng 2)
              | _ -> balance_inv
            in
            ignore (Database.invoke db t ~obj:"BA" inv)
          end
          else begin
            ignore (Database.try_commit db t);
            active := List.filter (fun x -> not (Tid.equal x t)) !active
          end)
    done;
    Helpers.check_bool "replay" true
      (Spec.legal spec (Atomic_object.committed_ops o));
    Helpers.check_bool "dynamic atomic" true
      (Atomicity.is_dynamic_atomic env (Database.history db))
  done

let test_occ_scheduler_consistent () =
  let cfg = Tm_sim.Scheduler.config ~concurrency:6 ~total_txns:60 ~seed:13 () in
  List.iter
    (fun scenario ->
      let row =
        Tm_sim.Experiment.run scenario
          (Tm_sim.Experiment.setup ~occ:true Tm_engine.Recovery.DU
             Tm_sim.Experiment.Semantic)
          cfg
      in
      Helpers.check_bool (row.Tm_sim.Experiment.scenario ^ " consistent") true
        row.Tm_sim.Experiment.consistent;
      Helpers.check_int
        (row.Tm_sim.Experiment.scenario ^ " never blocks")
        0 row.Tm_sim.Experiment.stats.Tm_sim.Scheduler.blocked)
    [
      Tm_sim.Experiment.bank_hotspot;
      Tm_sim.Experiment.kv_store ();
      Tm_sim.Experiment.queue_semiqueue;
    ]

let suite =
  [
    Alcotest.test_case "never blocks" `Quick test_never_blocks;
    Alcotest.test_case "validation catches conflict" `Quick test_validation_catches_conflict;
    Alcotest.test_case "commuting ops validate" `Quick test_commuting_ops_validate;
    Alcotest.test_case "start point matters" `Quick test_start_point_matters;
    Alcotest.test_case "reads are snapshots" `Quick test_occ_reads_are_snapshots;
    Alcotest.test_case "database try_commit" `Quick test_database_try_commit;
    Alcotest.test_case "random OCC runs consistent" `Slow test_random_occ_runs_consistent;
    Alcotest.test_case "OCC scheduler consistent" `Slow test_occ_scheduler_consistent;
  ]
