test/test_wal.ml: Alcotest Fmt Helpers List Op Random Spec Tid Tm_adt Tm_core Tm_engine Value
