test/test_value.ml: Alcotest Helpers List Tm_core Value
