test/test_equieffect.ml: Alcotest Equieffect Helpers List QCheck2 Spec Tm_core
