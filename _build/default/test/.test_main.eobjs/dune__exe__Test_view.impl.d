test/test_view.ml: Alcotest Helpers History Tid Tm_core View
