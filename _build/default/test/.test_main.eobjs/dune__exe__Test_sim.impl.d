test/test_sim.ml: Alcotest Array Fmt Helpers List Random String Tm_adt Tm_core Tm_engine Tm_sim
