test/test_adts.ml: Alcotest Commutativity Conflict Fmt Helpers List Op Spec Tm_adt Tm_core
