test/test_theorems.ml: Alcotest Atomicity Commutativity Conflict Helpers History Impl_model List Op Orders Spec Theorems Tm_adt Tm_core View
