test/test_concurrent.ml: Alcotest Atomicity Helpers List Mutex Op Spec Thread Tm_adt Tm_core Tm_engine Value
