test/test_atomicity.ml: Alcotest Atomicity Helpers History List Op Orders Spec Tid Tm_core Value
