test/test_engine.ml: Alcotest Atomicity Event Hashtbl Helpers History List Op Random Spec Tid Tm_adt Tm_core Tm_engine Value
