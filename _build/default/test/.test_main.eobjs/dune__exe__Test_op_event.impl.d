test/test_op_event.ml: Alcotest Event Fmt Helpers List Op Spec Tid Tm_adt Tm_core Value
