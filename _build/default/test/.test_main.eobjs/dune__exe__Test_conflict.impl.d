test/test_conflict.ml: Alcotest Commutativity Conflict Helpers List Spec Theorems Tm_adt Tm_core
