test/test_escrow.ml: Alcotest Fmt Helpers List Op Spec Tid Tm_adt Tm_core Tm_engine Tm_sim Value
