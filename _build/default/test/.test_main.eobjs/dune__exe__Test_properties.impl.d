test/test_properties.ml: Atomicity Commutativity Conflict Event Helpers History Impl_model List Op Orders QCheck2 Random Tid Tm_core View
