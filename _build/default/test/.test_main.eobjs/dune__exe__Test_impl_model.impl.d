test/test_impl_model.ml: Alcotest Atomicity Conflict Fmt Helpers History Impl_model List Op Random Tid Tm_core Value View
