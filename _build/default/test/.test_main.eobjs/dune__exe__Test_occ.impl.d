test/test_occ.ml: Alcotest Atomicity Helpers List Op Random Spec Tid Tm_adt Tm_core Tm_engine Tm_sim Value
