test/test_registry.ml: Alcotest Atomicity Commutativity Fmt Helpers History Impl_model List Op Option Random Spec String Theorems Tid Tm_adt Tm_core Tm_engine View
