test/test_commutativity.ml: Alcotest Commutativity Conflict Fmt Helpers List QCheck2 Spec String Tm_adt Tm_core
