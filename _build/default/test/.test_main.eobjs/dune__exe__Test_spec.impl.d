test/test_spec.ml: Alcotest Explore Helpers List Op Spec String Tm_adt Tm_core Value
