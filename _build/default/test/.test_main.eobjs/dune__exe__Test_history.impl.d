test/test_history.ml: Alcotest Event Helpers History List Op QCheck2 Tid Tm_core Value
