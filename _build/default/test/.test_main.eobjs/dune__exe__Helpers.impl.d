test/helpers.ml: Alcotest Atomicity Event History List Op QCheck2 QCheck_alcotest Spec Tid Tm_adt Tm_core Value
