(* Unit coverage for the small core types: transaction ids, operations and
   events — ordering laws, printing conventions, and the set/map
   instantiations used throughout. *)

open Tm_core

let test_tid () =
  Alcotest.(check string) "letters" "A" (Tid.to_string Tid.a);
  Alcotest.(check string) "letters" "E" (Tid.to_string Tid.e);
  Alcotest.(check string) "beyond letters" "T26" (Tid.to_string (Tid.of_int 26));
  Helpers.check_int "roundtrip" 7 (Tid.to_int (Tid.of_int 7));
  Helpers.check_bool "equal" true (Tid.equal Tid.b (Tid.of_int 1));
  Helpers.check_bool "ordered" true (Tid.compare Tid.a Tid.b < 0);
  Alcotest.check_raises "negative id" (Invalid_argument "Tid.of_int: negative id")
    (fun () -> ignore (Tid.of_int (-1)));
  let s = Tid.Set.of_list [ Tid.a; Tid.b; Tid.a ] in
  Helpers.check_int "set dedups" 2 (Tid.Set.cardinal s)

let test_op () =
  let op = Op.make ~obj:"BA" ~args:[ Value.int 3 ] "withdraw" Value.ok in
  Alcotest.(check string) "paper rendering" "BA:[withdraw(3),ok]" (Op.to_string op);
  Alcotest.(check string) "short rendering" "withdraw(3)\xe2\x86\x92ok"
    (Fmt.str "%a" Op.pp_short op);
  Alcotest.(check string) "no-arg rendering" "BA:[balance,5]"
    (Op.to_string (Op.make ~obj:"BA" "balance" (Value.int 5)));
  (* equality is invocation+result+object *)
  Helpers.check_bool "same" true (Op.equal op (Op.make ~obj:"BA" ~args:[ Value.int 3 ] "withdraw" Value.ok));
  Helpers.check_bool "different result" false
    (Op.equal op (Op.make ~obj:"BA" ~args:[ Value.int 3 ] "withdraw" Value.no));
  Helpers.check_bool "different object" false
    (Op.equal op (Op.make ~obj:"BA2" ~args:[ Value.int 3 ] "withdraw" Value.ok));
  Helpers.check_bool "different args" false
    (Op.equal op (Op.make ~obj:"BA" ~args:[ Value.int 4 ] "withdraw" Value.ok));
  (* compare consistent with equal over a sample *)
  let sample = Spec.generators Tm_adt.Bank_account.spec in
  List.iter
    (fun p ->
      List.iter
        (fun q -> Helpers.check_bool "compare=0 iff equal" (Op.compare p q = 0) (Op.equal p q))
        sample)
    sample;
  Helpers.check_int "set dedups" (List.length sample)
    (Op.Set.cardinal (Op.Set.of_list (sample @ sample)))

let test_event () =
  let inv = Event.invoke ~obj:"BA" ~tid:Tid.b (Op.invocation ~args:[ Value.int 3 ] "withdraw") in
  let res = Event.respond ~obj:"BA" ~tid:Tid.b Value.ok in
  Alcotest.(check string) "paper rendering" "<withdraw(3), BA, B>" (Event.to_string inv);
  Alcotest.(check string) "response rendering" "<ok, BA, B>" (Event.to_string res);
  Alcotest.(check string) "commit rendering" "<commit, BA, A>"
    (Event.to_string (Event.commit ~obj:"BA" ~tid:Tid.a));
  Alcotest.(check string) "abort rendering" "<abort, BA, A>"
    (Event.to_string (Event.abort ~obj:"BA" ~tid:Tid.a));
  Helpers.check_bool "kind predicates" true
    (Event.is_invoke inv && Event.is_respond res
    && Event.is_commit (Event.commit ~obj:"X" ~tid:Tid.a)
    && Event.is_abort (Event.abort ~obj:"X" ~tid:Tid.a));
  Alcotest.(check string) "obj" "BA" (Event.obj inv);
  Alcotest.check Helpers.tid "tid" Tid.b (Event.tid inv);
  let all =
    [ inv; res; Event.commit ~obj:"BA" ~tid:Tid.b; Event.abort ~obj:"BA" ~tid:Tid.c ]
  in
  List.iter
    (fun e ->
      List.iter
        (fun f ->
          Helpers.check_bool "compare=0 iff equal" (Event.compare e f = 0) (Event.equal e f))
        all)
    all

let suite =
  [
    Alcotest.test_case "tid" `Quick test_tid;
    Alcotest.test_case "op" `Quick test_op;
    Alcotest.test_case "event" `Quick test_event;
  ]
