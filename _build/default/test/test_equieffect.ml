(* Equieffectiveness (Section 6.1): looks-like, equieffective, and the
   paper's Lemmas 3-7 as (bounded) properties. *)

open Tm_core

let dep = Helpers.dep
let wok = Helpers.wok
let wno = Helpers.wno
let bal = Helpers.bal
let spec = Helpers.BA.spec
let looks_like = Equieffect.looks_like spec ~depth:5
let equieffective = Equieffect.equieffective spec ~depth:5
let holds = Equieffect.is_holds

let test_same_balance_equieffective () =
  Helpers.check_bool "dep2 ~ dep1;dep1" true
    (holds (equieffective [ dep 2 ] [ dep 1; dep 1 ]));
  Helpers.check_bool "dep1;wok1 ~ empty" true (holds (equieffective [ dep 1; wok 1 ] []));
  Helpers.check_bool "wno leaves state" true
    (holds (equieffective [ dep 1; wno 2 ] [ dep 1 ]))

let test_different_balance_not () =
  Helpers.check_bool "dep1 not~ dep2" false (holds (equieffective [ dep 1 ] [ dep 2 ]));
  match equieffective [ dep 1 ] [ dep 2 ] with
  | Equieffect.Holds -> Alcotest.fail "expected refutation"
  | Equieffect.Refuted w ->
      (* the witness really distinguishes balance 1 from balance 2 *)
      Helpers.check_bool "witness distinguishes" true
        (Spec.legal spec ([ dep 1 ] @ w) <> Spec.legal spec ([ dep 2 ] @ w))

let test_looks_like_asymmetric () =
  (* An illegal sequence looks like anything (vacuously), but a legal one
     does not look like an illegal one. *)
  let illegal = [ wok 1 ] in
  Helpers.check_bool "illegal looks like legal" true (holds (looks_like illegal [ dep 1 ]));
  Helpers.check_bool "legal not looks-like illegal" false
    (holds (looks_like [ dep 1 ] illegal))

let test_balance_observation () =
  (* bal pins the state: dep1 vs dep1;bal(1) are equieffective (observing
     doesn't change state). *)
  Helpers.check_bool "observation is transparent" true
    (holds (equieffective [ dep 1 ] [ dep 1; bal 1 ]))

(* Lemma 5: if α ∈ Spec and α looks like β then β ∈ Spec. *)
let prop_lemma5 =
  let gen = QCheck2.Gen.pair (Helpers.legal_seq_gen spec 5) (Helpers.legal_seq_gen spec 5) in
  Helpers.qcheck ~count:100 "Lemma 5" gen (fun (a, b) ->
      (not (holds (looks_like a b))) || Spec.legal spec b)

(* Lemma 3: looks-like is reflexive; and transitive over sampled triples. *)
let prop_lemma3_reflexive =
  Helpers.qcheck ~count:100 "Lemma 3 (reflexivity)" (Helpers.legal_seq_gen spec 5)
    (fun a -> holds (looks_like a a))

let prop_lemma3_transitive =
  let gen =
    QCheck2.Gen.triple (Helpers.legal_seq_gen spec 4) (Helpers.legal_seq_gen spec 4)
      (Helpers.legal_seq_gen spec 4)
  in
  Helpers.qcheck ~count:60 "Lemma 3 (transitivity)" gen (fun (a, b, c) ->
      (not (holds (looks_like a b) && holds (looks_like b c))) || holds (looks_like a c))

(* Lemma 4: equieffectiveness is symmetric (an equivalence together with
   Lemma 3). *)
let prop_lemma4_symmetric =
  let gen = QCheck2.Gen.pair (Helpers.legal_seq_gen spec 5) (Helpers.legal_seq_gen spec 5) in
  Helpers.qcheck ~count:100 "Lemma 4 (symmetry)" gen (fun (a, b) ->
      holds (equieffective a b) = holds (equieffective b a))

(* Lemma 6/7: looks-like (and equieffectiveness) are right-congruences:
   α ≼ β implies αγ ≼ βγ. *)
let prop_lemma6_right_congruence =
  let gen =
    QCheck2.Gen.triple (Helpers.legal_seq_gen spec 4) (Helpers.legal_seq_gen spec 4)
      (QCheck2.Gen.list_size (QCheck2.Gen.int_bound 2) Helpers.ba_op_gen)
  in
  Helpers.qcheck ~count:60 "Lemmas 6-7 (right congruence)" gen (fun (a, b, g) ->
      (* depth shrinks by |γ| to keep the bounded claims comparable *)
      let depth = max 1 (5 - List.length g) in
      (not (Equieffect.is_holds (Equieffect.looks_like spec ~depth:5 a b)))
      || Equieffect.is_holds (Equieffect.looks_like spec ~depth (a @ g) (b @ g)))

let suite =
  [
    Alcotest.test_case "same balance equieffective" `Quick test_same_balance_equieffective;
    Alcotest.test_case "different balance distinguished" `Quick test_different_balance_not;
    Alcotest.test_case "looks-like asymmetric" `Quick test_looks_like_asymmetric;
    Alcotest.test_case "observation transparent" `Quick test_balance_observation;
    prop_lemma5;
    prop_lemma3_reflexive;
    prop_lemma3_transitive;
    prop_lemma4_symmetric;
    prop_lemma6_right_congruence;
  ]
