(* Simulation layer: workload generators, the deterministic scheduler,
   and the experiment harness (including determinism and the headline
   concurrency shapes the paper predicts). *)

module Workload = Tm_sim.Workload
module Scheduler = Tm_sim.Scheduler
module Experiment = Tm_sim.Experiment

let cfg ?(total_txns = 60) ?(concurrency = 6) ?(seed = 11) () =
  Scheduler.config ~concurrency ~total_txns ~seed ~max_rounds:50_000 ~max_retries:20 ()

let test_zipf_bounds () =
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 500 do
    let i = Workload.zipf rng ~n:7 ~skew:0.9 in
    Helpers.check_bool "in range" true (i >= 0 && i < 7)
  done;
  Helpers.check_int "n=1 always 0" 0 (Workload.zipf rng ~n:1 ~skew:2.0)

let test_zipf_skew_shape () =
  let rng = Random.State.make [| 4 |] in
  let counts = Array.make 8 0 in
  for _ = 1 to 4000 do
    let i = Workload.zipf rng ~n:8 ~skew:1.2 in
    counts.(i) <- counts.(i) + 1
  done;
  Helpers.check_bool "rank 0 most popular" true (counts.(0) > counts.(7) * 2)

let test_workload_deterministic () =
  let w = Workload.bank_hotspot () in
  let p1 = w.Workload.generate (Random.State.make [| 5 |]) in
  let p2 = w.Workload.generate (Random.State.make [| 5 |]) in
  Helpers.check_bool "same seed, same program" true (p1 = p2)

let test_scheduler_completes_all () =
  let row = Experiment.run Experiment.bank_hotspot
      (Experiment.setup Tm_engine.Recovery.UIP Experiment.Semantic)
      (cfg ()) in
  let s = row.Experiment.stats in
  Helpers.check_int "all programs accounted" 60 (s.Scheduler.committed + s.Scheduler.gave_up);
  Helpers.check_bool "consistent" true row.Experiment.consistent

let test_scheduler_deterministic () =
  let run () =
    Experiment.run Experiment.bank_hotspot
      (Experiment.setup Tm_engine.Recovery.DU Experiment.Semantic)
      (cfg ())
  in
  let r1 = run () and r2 = run () in
  Helpers.check_bool "identical stats" true (r1.Experiment.stats = r2.Experiment.stats)

let test_matrix_all_consistent () =
  List.iter
    (fun scenario ->
      List.iter
        (fun row ->
          Helpers.check_bool
            (row.Experiment.scenario ^ "/" ^ row.Experiment.setup ^ " consistent")
            true row.Experiment.consistent)
        (Experiment.run_matrix scenario (cfg ~total_txns:40 ())))
    Experiment.all_scenarios

(* The paper-shaped results (Section 8 quantified): each side of the
   incomparability.  Makespan in rounds; lower is better. *)
let rounds scenario setup =
  let row = Experiment.run scenario setup (cfg ~total_txns:80 ~concurrency:8 ()) in
  Helpers.check_bool "consistent" true row.Experiment.consistent;
  row.Experiment.stats.Scheduler.rounds

let uip = Experiment.setup Tm_engine.Recovery.UIP Experiment.Semantic
let du = Experiment.setup Tm_engine.Recovery.DU Experiment.Semantic

let test_withdraw_heavy_favours_uip () =
  (* All-withdrawal mix: successful withdrawals right-commute-backward
     (UIP runs them concurrently) but do not commute forward (DU
     serialises them). *)
  let scenario = Experiment.bank_sweep ~withdraw_pct:100 in
  let u = rounds scenario uip and d = rounds scenario du in
  Helpers.check_bool (Fmt.str "UIP (%d) at least 2x faster than DU (%d)" u d) true
    (u * 2 < d)

let test_mixed_update_favours_du () =
  (* Deposit/withdraw mix: the pairs commute forward (DU) but withdrawals
     do not push back over deposits (UIP). *)
  let scenario = Experiment.bank_sweep ~withdraw_pct:25 in
  let u = rounds scenario uip and d = rounds scenario du in
  Helpers.check_bool (Fmt.str "DU (%d) at least 2x faster than UIP (%d)" d u) true
    (d * 2 < u)

let test_increment_only_favours_uip () =
  (* Escrow pool, restock-only: bounded increments RBC- but not
     FC-commute. *)
  let scenario = Experiment.inventory_sweep ~decr_pct:0 in
  let u = rounds scenario uip and d = rounds scenario du in
  Helpers.check_bool (Fmt.str "UIP (%d) at least 2x faster than DU (%d)" u d) true
    (u * 2 < d)

let test_semantic_beats_rw_on_multiaccount () =
  let scenario = Experiment.bank_accounts () in
  let rw = Experiment.setup Tm_engine.Recovery.UIP Experiment.Read_write in
  let sem = rounds scenario du and base = rounds scenario rw in
  Helpers.check_bool (Fmt.str "semantic (%d) beats RW 2PL (%d)" sem base) true (sem < base)

let test_deposits_scale_perfectly () =
  (* All-deposit workload: no conflicts at all under either semantic
     relation — every transaction runs unhindered. *)
  let scenario = Experiment.bank_sweep ~withdraw_pct:0 in
  List.iter
    (fun setup ->
      let row = Experiment.run scenario setup (cfg ~total_txns:80 ~concurrency:8 ()) in
      Helpers.check_int (Experiment.label setup ^ " zero blocks") 0
        row.Experiment.stats.Scheduler.blocked)
    [ uip; du ]

let test_transfer_scenario () =
  List.iter
    (fun row ->
      Helpers.check_bool (row.Experiment.setup ^ " consistent") true
        row.Experiment.consistent)
    (Experiment.run_matrix (Experiment.transfer ()) (cfg ~total_txns:60 ()))

(* Theorem 2 in action: objects with different recovery methods and
   conflict relations coexist; the global recorded history is still
   dynamic atomic. *)
let test_mixed_recovery_locality () =
  let scenario = Experiment.transfer_mixed_recovery ~accounts:4 () in
  let row =
    Experiment.run scenario (Experiment.setup Tm_engine.Recovery.UIP Experiment.Semantic)
      (cfg ~total_txns:60 ())
  in
  Helpers.check_bool "mixed-recovery run consistent" true row.Experiment.consistent;
  (* small run with recorded history, checked by the global checker *)
  let db = Tm_engine.Database.create ~record_history:true (scenario.Experiment.build (Experiment.setup Tm_engine.Recovery.UIP Experiment.Semantic)) in
  let small = Scheduler.config ~concurrency:3 ~total_txns:8 ~seed:3 ~max_rounds:5_000 () in
  ignore (Scheduler.run db scenario.Experiment.workload small);
  let funded = Tm_adt.Bank_account.spec_with_initial 100_000 in
  let env =
    Tm_core.Atomicity.env_of_list
      (List.init 4 (fun i -> Tm_core.Spec.rename funded (Fmt.str "BA%d" i)))
  in
  Helpers.check_bool "global history dynamic atomic" true
    (Tm_core.Atomicity.is_dynamic_atomic env (Tm_engine.Database.history db))

let test_scheduler_edges () =
  (* concurrency 1 = serial execution: no blocking, no aborts *)
  let row =
    Experiment.run Experiment.bank_hotspot
      (Experiment.setup Tm_engine.Recovery.UIP Experiment.Semantic)
      (Scheduler.config ~concurrency:1 ~total_txns:20 ~seed:1 ())
  in
  Helpers.check_int "serial: all committed" 20 row.Experiment.stats.Scheduler.committed;
  Helpers.check_int "serial: no blocking" 0 row.Experiment.stats.Scheduler.blocked;
  (* zero transactions *)
  let empty =
    Experiment.run Experiment.bank_hotspot
      (Experiment.setup Tm_engine.Recovery.DU Experiment.Semantic)
      (Scheduler.config ~concurrency:4 ~total_txns:0 ~seed:1 ())
  in
  Helpers.check_int "none committed" 0 empty.Experiment.stats.Scheduler.committed;
  Helpers.check_int "zero rounds" 0 empty.Experiment.stats.Scheduler.rounds;
  (* max_retries 0: deadlock victims give up instead of retrying *)
  let harsh =
    Experiment.run (Experiment.bank_sweep ~withdraw_pct:50)
      (Experiment.setup Tm_engine.Recovery.UIP Experiment.Semantic)
      (Scheduler.config ~concurrency:8 ~total_txns:50 ~seed:1 ~max_retries:0 ())
  in
  let s = harsh.Experiment.stats in
  Helpers.check_int "committed + gave_up = all" 50 (s.Scheduler.committed + s.Scheduler.gave_up);
  Helpers.check_bool "consistent under give-up" true harsh.Experiment.consistent

let test_pp_smoke () =
  let rows = Experiment.run_matrix Experiment.bank_hotspot (cfg ~total_txns:20 ()) in
  let rendered = Fmt.str "%a" Experiment.pp_table rows in
  Helpers.check_bool "renders" true (String.length rendered > 100)

let suite =
  [
    Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
    Alcotest.test_case "zipf skew shape" `Quick test_zipf_skew_shape;
    Alcotest.test_case "workload deterministic" `Quick test_workload_deterministic;
    Alcotest.test_case "scheduler completes all" `Quick test_scheduler_completes_all;
    Alcotest.test_case "scheduler deterministic" `Quick test_scheduler_deterministic;
    Alcotest.test_case "matrix all consistent" `Slow test_matrix_all_consistent;
    Alcotest.test_case "withdraw-heavy favours UIP" `Slow test_withdraw_heavy_favours_uip;
    Alcotest.test_case "mixed updates favour DU" `Slow test_mixed_update_favours_du;
    Alcotest.test_case "increment-only favours UIP" `Slow test_increment_only_favours_uip;
    Alcotest.test_case "semantic beats RW 2PL" `Slow test_semantic_beats_rw_on_multiaccount;
    Alcotest.test_case "deposits scale perfectly" `Slow test_deposits_scale_perfectly;
    Alcotest.test_case "transfer scenario" `Slow test_transfer_scenario;
    Alcotest.test_case "mixed recovery locality (Thm 2)" `Slow test_mixed_recovery_locality;
    Alcotest.test_case "scheduler edge cases" `Quick test_scheduler_edges;
    Alcotest.test_case "table rendering" `Quick test_pp_smoke;
  ]
