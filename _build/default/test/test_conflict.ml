(* Conflict relation combinators, including the Section 8 ablation
   coarsenings (symmetric closure, invocation-blind locking). *)

open Tm_core
module BA = Tm_adt.Bank_account

let wok = BA.withdraw_ok
let wno = BA.withdraw_no
let dep = BA.deposit
let bal = BA.balance
let ops = Spec.generators BA.spec

let test_none_all () =
  Helpers.check_bool "none" false (Conflict.conflicts Conflict.none ~requested:(dep 1) ~held:(dep 1));
  Helpers.check_bool "all" true (Conflict.conflicts Conflict.all ~requested:(dep 1) ~held:(dep 1))

let test_of_pairs_and_without () =
  let rel = Conflict.of_pairs ~name:"test" [ (wok 1, dep 1) ] in
  Helpers.check_bool "listed pair" true (Conflict.conflicts rel ~requested:(wok 1) ~held:(dep 1));
  Helpers.check_bool "direction matters" false
    (Conflict.conflicts rel ~requested:(dep 1) ~held:(wok 1));
  let weakened = Conflict.without rel [ (wok 1, dep 1) ] in
  Helpers.check_bool "removed" false
    (Conflict.conflicts weakened ~requested:(wok 1) ~held:(dep 1))

let test_union () =
  let r1 = Conflict.of_pairs ~name:"r1" [ (wok 1, dep 1) ] in
  let r2 = Conflict.of_pairs ~name:"r2" [ (dep 1, wok 1) ] in
  let u = Conflict.union r1 r2 in
  Helpers.check_bool "left" true (Conflict.conflicts u ~requested:(wok 1) ~held:(dep 1));
  Helpers.check_bool "right" true (Conflict.conflicts u ~requested:(dep 1) ~held:(wok 1))

let test_symmetric_closure () =
  let sym = Conflict.symmetric_closure BA.nrbc_conflict in
  Helpers.check_bool "closure symmetric" true (Conflict.is_symmetric sym ops);
  (* NRBC has (wok, dep) but not (dep, wok); the closure has both. *)
  Helpers.check_bool "nrbc asymmetric" false (Conflict.is_symmetric BA.nrbc_conflict ops);
  Helpers.check_bool "added pair" true
    (Conflict.conflicts sym ~requested:(dep 1) ~held:(wok 1));
  (* contains the original *)
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if Conflict.conflicts BA.nrbc_conflict ~requested:p ~held:q then
            Helpers.check_bool "superset" true (Conflict.conflicts sym ~requested:p ~held:q))
        ops)
    ops

let test_nfc_symmetric_lemma8 () =
  Helpers.check_bool "NFC symmetric (Lemma 8)" true
    (Conflict.is_symmetric BA.nfc_conflict ops)

let test_invocation_blind () =
  let blind = Conflict.invocation_blind BA.spec BA.nrbc_conflict in
  (* wno/wok don't share results but share the withdraw invocation with a
     conflicting pair, so result-blind locking must conflict them all. *)
  Helpers.check_bool "withdraw vs withdraw" true
    (Conflict.conflicts blind ~requested:(wok 1) ~held:(wok 1));
  Helpers.check_bool "wno loses its freedom" true
    (Conflict.conflicts blind ~requested:(wno 1) ~held:(wno 1));
  (* deposits still never conflict with deposits *)
  Helpers.check_bool "deposit vs deposit free" false
    (Conflict.conflicts blind ~requested:(dep 1) ~held:(dep 2));
  (* contains the original *)
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if Conflict.conflicts BA.nrbc_conflict ~requested:p ~held:q then
            Helpers.check_bool "superset" true (Conflict.conflicts blind ~requested:p ~held:q))
        ops)
    ops;
  (* result-blind balance conflicts with any withdraw *)
  Helpers.check_bool "balance vs withdraw" true
    (Conflict.conflicts blind ~requested:(bal 0) ~held:(wok 2))

let test_coarsenings_still_sound () =
  (* Supersets of a sound relation remain sound (Theorems 9/10 are
     monotone in the conflict relation): unrefutable. *)
  let p = Commutativity.default_params in
  Alcotest.(check (option reject)) "sym(NRBC) sound for UIP" None
    (Theorems.uip_refute BA.spec p (Conflict.symmetric_closure BA.nrbc_conflict));
  Alcotest.(check (option reject)) "inv-blind(NRBC) sound for UIP" None
    (Theorems.uip_refute BA.spec p (Conflict.invocation_blind BA.spec BA.nrbc_conflict));
  Alcotest.(check (option reject)) "inv-blind(NFC) sound for DU" None
    (Theorems.du_refute BA.spec p (Conflict.invocation_blind BA.spec BA.nfc_conflict))

let test_pairs_listing () =
  let rel = Conflict.of_pairs ~name:"t" [ (wok 1, dep 1); (bal 0, dep 1) ] in
  Helpers.check_int "two pairs" 2 (List.length (Conflict.pairs rel ops))

let test_names () =
  Alcotest.(check string) "nrbc name" "BA-NRBC" (Conflict.name BA.nrbc_conflict);
  Alcotest.(check string) "sym name" "BA-NRBC-sym"
    (Conflict.name (Conflict.symmetric_closure BA.nrbc_conflict))

let suite =
  [
    Alcotest.test_case "none/all" `Quick test_none_all;
    Alcotest.test_case "of_pairs/without" `Quick test_of_pairs_and_without;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "symmetric closure" `Quick test_symmetric_closure;
    Alcotest.test_case "NFC symmetric (Lemma 8)" `Quick test_nfc_symmetric_lemma8;
    Alcotest.test_case "invocation-blind" `Quick test_invocation_blind;
    Alcotest.test_case "coarsenings still sound" `Quick test_coarsenings_still_sound;
    Alcotest.test_case "pairs listing" `Quick test_pairs_listing;
    Alcotest.test_case "names" `Quick test_names;
  ]
