(* Atomicity, serializability, dynamic atomicity and online dynamic
   atomicity (Sections 3.3, 3.4, 7). *)

open Tm_core

let dep = Helpers.dep
let wok = Helpers.wok
let wno = Helpers.wno
let bal = Helpers.bal
let env = Helpers.ba_env

let test_paper_example_atomic () =
  let h = Helpers.paper_example_history in
  Helpers.check_bool "atomic" true (Atomicity.atomic env h);
  Helpers.check_bool "dynamic atomic" true (Atomicity.is_dynamic_atomic env h);
  Alcotest.(check (option Helpers.tids)) "serializes in A-B-C"
    (Some [ Tid.a; Tid.b; Tid.c ])
    (Atomicity.serializable env (History.permanent h))

let test_paper_example_perturbed () =
  (* Section 3.4: if B's last response occurred before A's commit, (A,B)
     drops out of precedes, the order B-A-C becomes admissible, and the
     history is no longer dynamic atomic (though it is still atomic). *)
  let h =
    History.empty
    |> History.exec Tid.a (dep 3)
    |> History.exec Tid.b (wok 2)
    |> History.exec Tid.a (bal 3)
    |> History.exec Tid.b (bal 1)
    |> History.commit_at Tid.a "BA"
    |> History.commit_at Tid.b "BA"
    |> History.exec Tid.c (wno 2)
    |> History.commit_at Tid.c "BA"
  in
  Helpers.check_bool "still atomic" true (Atomicity.atomic env h);
  (match Atomicity.dynamic_atomic env h with
  | Atomicity.Ok -> Alcotest.fail "expected a counterexample order"
  | Atomicity.Counterexample order ->
      Helpers.check_bool "B before A in the bad order" true
        (match order with b :: _ -> Tid.equal b Tid.b | [] -> false));
  Helpers.check_bool "not dynamic atomic" false (Atomicity.is_dynamic_atomic env h)

let test_not_atomic () =
  (* A committed balance reading 1 fits no serial order against a lone
     committed deposit of 3 (neither 0 nor 3 is 1). *)
  let h =
    History.empty
    |> History.exec Tid.a (dep 3)
    |> History.exec Tid.b (bal 1)
    |> History.commit_at Tid.a "BA"
    |> History.commit_at Tid.b "BA"
  in
  Helpers.check_bool "not atomic" false (Atomicity.atomic env h)

let test_aborted_ignored () =
  (* An aborted transaction's nonsense does not affect atomicity. *)
  let h =
    History.empty
    |> History.exec Tid.a (dep 3)
    |> History.exec Tid.b (wok 100)  (* illegal against any serial order *)
    |> History.abort_at Tid.b "BA"
    |> History.commit_at Tid.a "BA"
  in
  Helpers.check_bool "atomic (B aborted)" true (Atomicity.atomic env h)

let test_serializable_in () =
  let h =
    History.empty
    |> History.exec Tid.a (dep 2)
    |> History.exec Tid.b (wok 2)
    |> History.commit_at Tid.a "BA"
    |> History.commit_at Tid.b "BA"
  in
  Helpers.check_bool "A-B works" true (Atomicity.serializable_in env h [ Tid.a; Tid.b ]);
  Helpers.check_bool "B-A fails" false (Atomicity.serializable_in env h [ Tid.b; Tid.a ])

let test_acceptable_multi_object () =
  let ba0 = Spec.rename Helpers.BA.spec "BA0" and ba1 = Spec.rename Helpers.BA.spec "BA1" in
  let env = Atomicity.env_of_list [ ba0; ba1 ] in
  let op0 = Op.make ~obj:"BA0" ~args:[ Value.int 1 ] "deposit" Value.ok in
  let op1 = Op.make ~obj:"BA1" ~args:[ Value.int 1 ] "withdraw" Value.no in
  let h =
    History.empty |> History.exec Tid.a op0 |> History.exec Tid.a op1
    |> History.commit_at Tid.a "BA0" |> History.commit_at Tid.a "BA1"
  in
  Helpers.check_bool "acceptable across objects" true (Atomicity.acceptable env h);
  let bad = Op.make ~obj:"BA1" ~args:[ Value.int 1 ] "withdraw" Value.ok in
  let h' =
    History.empty |> History.exec Tid.a bad |> History.commit_at Tid.a "BA1"
  in
  Helpers.check_bool "illegal at BA1" false (Atomicity.acceptable env h')

let test_online_dynamic_atomic () =
  (* Online DA quantifies over commit sets: an active transaction that
     *would* break serializability if committed is caught even before any
     commit event.  B executed withdraw-ok concurrently with A's
     withdraw-ok from balance 1 — at most one can commit. *)
  let funded = History.empty |> History.exec Tid.d (dep 1) |> History.commit_at Tid.d "BA" in
  let h = funded |> History.exec Tid.a (wok 1) |> History.exec Tid.b (wok 1) in
  (match Atomicity.online_dynamic_atomic env h with
  | Atomicity.Ok -> Alcotest.fail "expected counterexample"
  | Atomicity.Counterexample _ -> ());
  (* dynamic atomicity alone does not catch it: permanent(H) is just D. *)
  Helpers.check_bool "plain DA blind to active" true (Atomicity.is_dynamic_atomic env h)

let test_online_implies_dynamic () =
  let h = Helpers.paper_example_history in
  Helpers.check_bool "online DA" true (Atomicity.is_online_dynamic_atomic env h)

let test_empty_history () =
  Helpers.check_bool "empty atomic" true (Atomicity.atomic env History.empty);
  Helpers.check_bool "empty DA" true (Atomicity.is_dynamic_atomic env History.empty);
  Helpers.check_bool "empty online DA" true
    (Atomicity.is_online_dynamic_atomic env History.empty)

(* Orders: linear extensions respect the partial order and cover all
   permutations when unconstrained. *)
let test_linear_extensions () =
  let ts = [ Tid.a; Tid.b; Tid.c ] in
  Helpers.check_int "3! permutations" 6 (List.length (Orders.permutations ts));
  let before x y = Tid.equal x Tid.a && Tid.equal y Tid.c in
  let exts = Orders.linear_extensions ts before in
  Helpers.check_int "A before C: 3 extensions" 3 (List.length exts);
  Helpers.check_bool "all consistent" true
    (List.for_all (fun o -> Orders.consistent o before) exts)

let test_subsets () =
  Helpers.check_int "2^3 subsets" 8 (List.length (Orders.subsets [ Tid.a; Tid.b; Tid.c ]))

let suite =
  [
    Alcotest.test_case "paper §3.3 example" `Quick test_paper_example_atomic;
    Alcotest.test_case "paper §3.4 perturbation" `Quick test_paper_example_perturbed;
    Alcotest.test_case "non-atomic history" `Quick test_not_atomic;
    Alcotest.test_case "aborted ignored" `Quick test_aborted_ignored;
    Alcotest.test_case "serializable_in" `Quick test_serializable_in;
    Alcotest.test_case "multi-object acceptability" `Quick test_acceptable_multi_object;
    Alcotest.test_case "online dynamic atomicity" `Quick test_online_dynamic_atomic;
    Alcotest.test_case "online implies dynamic" `Quick test_online_implies_dynamic;
    Alcotest.test_case "empty history" `Quick test_empty_history;
    Alcotest.test_case "linear extensions" `Quick test_linear_extensions;
    Alcotest.test_case "subsets" `Quick test_subsets;
  ]
