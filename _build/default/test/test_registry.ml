(* Registry-wide soundness: for every shipped ADT — closed-form and
   derived relations alike — the NRBC conflict must make UIP unrefutable,
   the NFC conflict must make DU unrefutable (Theorems 9/10), and bounded
   model checking of both sound engines must find only online-dynamic-
   atomic histories.  This covers the non-deterministic semiqueue and the
   partial-operation types through exactly the same criterion as the bank
   account. *)

open Tm_core
module Registry = Tm_adt.Registry

let params = Commutativity.params ~alpha_depth:4 ~future_depth:4 ()

let test_registry_complete () =
  Helpers.check_int "ten types registered" 10 (List.length Registry.all);
  List.iter
    (fun (e : Registry.entry) ->
      Alcotest.(check (option string))
        (e.name ^ " found") (Some e.name)
        (Option.map (fun (x : Registry.entry) -> x.name) (Registry.find e.name));
      Helpers.check_bool (e.name ^ " lookup case-insensitive") true
        (Registry.find (String.lowercase_ascii e.name) <> None);
      Helpers.check_bool (e.name ^ " generators non-empty") true
        (Spec.generators e.spec <> []))
    Registry.all;
  Alcotest.(check (option reject)) "unknown" None (Registry.find "NOPE")

let test_sound_relations_unrefutable () =
  List.iter
    (fun (e : Registry.entry) ->
      (match Theorems.uip_refute e.spec params e.nrbc with
      | None -> ()
      | Some cex ->
          Alcotest.failf "%s: UIP+NRBC refuted by %a/%a" e.name Op.pp cex.requested Op.pp
            cex.held);
      match Theorems.du_refute e.spec params e.nfc with
      | None -> ()
      | Some cex ->
          Alcotest.failf "%s: DU+NFC refuted by %a/%a" e.name Op.pp cex.requested Op.pp
            cex.held)
    Registry.all

let model_check_entry (e : Registry.entry) view conflict =
  let i = Impl_model.make ~spec:e.spec ~view ~conflict in
  let env = Atomicity.env_of_list [ e.spec ] in
  let histories =
    Impl_model.enumerate i ~txns:[ Tid.a; Tid.b ] ~ops_per_txn:2 ~max_events:8 ~limit:800
  in
  Helpers.check_bool (e.name ^ " explored") true (List.length histories > 50);
  List.iter
    (fun h ->
      match Atomicity.online_dynamic_atomic env h with
      | Atomicity.Ok -> ()
      | Atomicity.Counterexample order ->
          Alcotest.failf "%s/%s: violation in order %a:@.%a" e.name (View.name view)
            Fmt.(list ~sep:(any "-") Tid.pp)
            order History.pp h)
    histories

let test_model_check_all_uip () =
  List.iter (fun (e : Registry.entry) -> model_check_entry e View.uip e.nrbc) Registry.all

let test_model_check_all_du () =
  List.iter (fun (e : Registry.entry) -> model_check_entry e View.du e.nfc) Registry.all

let test_engine_runs_all_types () =
  (* a tiny randomized engine run per type and recovery method; committed
     operations must always replay *)
  List.iter
    (fun (e : Registry.entry) ->
      List.iter
        (fun (recovery, conflict) ->
          let o = Tm_engine.Atomic_object.create ~spec:e.spec ~conflict ~recovery () in
          let db = Tm_engine.Database.create [ o ] in
          let rng = Random.State.make [| 77 |] in
          let invocations =
            List.map (fun (op : Op.t) -> op.inv) (Spec.generators e.spec)
            |> List.sort_uniq Op.compare_invocation
          in
          let active = ref [] in
          for _ = 1 to 60 do
            if List.length !active < 3 then active := Tm_engine.Database.begin_txn db :: !active;
            match !active with
            | [] -> ()
            | ts -> (
                let t = List.nth ts (Random.State.int rng (List.length ts)) in
                if Random.State.int rng 10 < 7 then begin
                  let inv =
                    List.nth invocations (Random.State.int rng (List.length invocations))
                  in
                  ignore (Tm_engine.Database.invoke db t ~obj:e.name inv);
                  match Tm_engine.Database.deadlock db with
                  | Some cycle ->
                      let v = Tm_engine.Deadlock.victim cycle in
                      Tm_engine.Database.abort db v;
                      active := List.filter (fun x -> not (Tid.equal x v)) !active
                  | None -> ()
                end
                else begin
                  Tm_engine.Database.commit db t;
                  active := List.filter (fun x -> not (Tid.equal x t)) !active
                end)
          done;
          Helpers.check_bool
            (Fmt.str "%s %s replay" e.name (Fmt.str "%a" Tm_engine.Recovery.pp_kind recovery))
            true
            (Spec.legal e.spec (Tm_engine.Atomic_object.committed_ops o)))
        [ (Tm_engine.Recovery.UIP, e.nrbc); (Tm_engine.Recovery.DU, e.nfc) ])
    Registry.all

let suite =
  [
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "sound relations unrefutable (all types)" `Slow
      test_sound_relations_unrefutable;
    Alcotest.test_case "model check UIP+NRBC (all types)" `Slow test_model_check_all_uip;
    Alcotest.test_case "model check DU+NFC (all types)" `Slow test_model_check_all_du;
    Alcotest.test_case "engine runs (all types)" `Slow test_engine_runs_all_types;
  ]
