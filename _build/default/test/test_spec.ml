(* Serial specifications and the bounded explorer: legality, response
   enumeration, prefix closure, reachability, containment. *)

open Tm_core

let dep = Helpers.dep
let wok = Helpers.wok
let wno = Helpers.wno
let bal = Helpers.bal

let test_legal_paper_sequences () =
  (* The two sequences of Section 3.2. *)
  Helpers.check_bool "legal" true
    (Spec.legal Helpers.BA.spec [ dep 5; wok 3; bal 2; wno 3 ]);
  Helpers.check_bool "illegal" false
    (Spec.legal Helpers.BA.spec [ dep 5; wok 3; bal 2; wok 3 ])

let test_prefix_closed () =
  let seq = [ dep 5; wok 3; bal 2; wno 3 ] in
  let rec prefixes = function
    | [] -> [ [] ]
    | x :: rest -> [] :: List.map (fun p -> x :: p) (prefixes rest)
  in
  List.iter
    (fun p -> Helpers.check_bool "prefix legal" true (Spec.legal Helpers.BA.spec p))
    (prefixes seq)

let test_responses () =
  Alcotest.check (Alcotest.list Helpers.value) "withdraw ok when funded" [ Value.ok ]
    (Spec.responses Helpers.BA.spec [ dep 5 ] (Op.invocation ~args:[ Value.int 3 ] "withdraw"));
  Alcotest.check (Alcotest.list Helpers.value) "withdraw no when broke" [ Value.no ]
    (Spec.responses Helpers.BA.spec [] (Op.invocation ~args:[ Value.int 3 ] "withdraw"));
  Alcotest.check (Alcotest.list Helpers.value) "balance pinned" [ Value.int 5 ]
    (Spec.responses Helpers.BA.spec [ dep 5 ] (Op.invocation "balance"));
  Alcotest.check (Alcotest.list Helpers.value) "unknown op" []
    (Spec.responses Helpers.BA.spec [] (Op.invocation "frobnicate"))

let test_nondeterministic_responses () =
  let module SQ = Tm_adt.Semiqueue in
  let rs =
    Spec.responses SQ.spec [ SQ.enq 1; SQ.enq 2 ] (Op.invocation "deq")
  in
  Alcotest.check (Alcotest.list Helpers.value) "deq offers both items"
    [ Value.int 1; Value.int 2 ] rs

let test_partial_operation () =
  let module FQ = Tm_adt.Fifo_queue in
  Alcotest.check (Alcotest.list Helpers.value) "deq on empty has no response" []
    (Spec.responses FQ.spec [] (Op.invocation "deq"));
  Helpers.check_bool "deq on empty illegal" false (Spec.legal FQ.spec [ FQ.deq 1 ])

let test_rename () =
  let renamed = Spec.rename Helpers.BA.spec "BA7" in
  Alcotest.(check string) "name" "BA7" (Spec.name renamed);
  Helpers.check_bool "generators retagged" true
    (List.for_all (fun (o : Op.t) -> String.equal o.obj "BA7") (Spec.generators renamed));
  Helpers.check_bool "same language" true (Spec.legal renamed [ dep 5; wok 3 ])

module E = Explore.Make (Tm_adt.Bank_account.S)

let test_reachable () =
  let alphabet = [ dep 1 ] in
  let reached = E.reachable ~depth:3 ~alphabet in
  (* balances 0,1,2,3 *)
  Helpers.check_int "4 state-sets" 4 (List.length reached);
  let words = List.map fst reached in
  Helpers.check_bool "empty word first" true (List.hd words = []);
  Helpers.check_bool "shortest representatives" true
    (List.for_all (fun w -> List.length w <= 3) words)

let test_reachable_dedups_state_sets () =
  (* deposit(1);deposit(1) and deposit(2) reach the same balance: one
     state-set, one representative. *)
  let alphabet = [ dep 1; dep 2 ] in
  let reached = E.reachable ~depth:2 ~alphabet in
  (* balances 0,1,2,3,4 *)
  Helpers.check_int "5 distinct sets" 5 (List.length reached)

let test_contained_positive () =
  (* Balance 2 via different routes: same state, mutually contained. *)
  let u = E.after E.initial_set [ dep 2 ] in
  let t = E.after E.initial_set [ dep 1; dep 1 ] in
  Alcotest.(check (option Helpers.ops)) "contained" None
    (E.contained ~depth:5 ~alphabet:(Spec.generators Helpers.BA.spec) u t)

let test_contained_negative_with_witness () =
  (* From balance 1 one can withdraw 1; from balance 0 one cannot. *)
  let u = E.after E.initial_set [ dep 1 ] in
  let t = E.initial_set in
  match E.contained ~depth:5 ~alphabet:(Spec.generators Helpers.BA.spec) u t with
  | None -> Alcotest.fail "expected a witness"
  | Some w ->
      Helpers.check_bool "witness legal from u" true
        (Spec.legal Helpers.BA.spec ([ dep 1 ] @ w));
      Helpers.check_bool "witness illegal from t" false (Spec.legal Helpers.BA.spec w)

let test_contained_empty_cases () =
  let alphabet = Spec.generators Helpers.BA.spec in
  let empty = E.after E.initial_set [ wok 1 ] (* illegal: empty set *) in
  Alcotest.(check (option Helpers.ops)) "empty contained in anything" None
    (E.contained ~depth:3 ~alphabet empty E.initial_set);
  Alcotest.(check (option Helpers.ops)) "nonempty not contained in empty" (Some [])
    (E.contained ~depth:3 ~alphabet E.initial_set empty)

(* Property: for every legal sequence, stepping the state-set never goes
   empty, and every response offered by [Spec.responses] extends legally. *)
let prop_responses_extend_legally =
  Helpers.qcheck "responses extend legally" (Helpers.legal_seq_gen Helpers.BA.spec 6)
    (fun ops ->
      List.for_all
        (fun (inv : Op.invocation) ->
          List.for_all
            (fun r -> Spec.legal Helpers.BA.spec (ops @ [ { Op.obj = "BA"; inv; res = r } ]))
            (Spec.responses Helpers.BA.spec ops inv))
        [ Op.invocation ~args:[ Value.int 1 ] "deposit";
          Op.invocation ~args:[ Value.int 2 ] "withdraw";
          Op.invocation "balance" ])

let suite =
  [
    Alcotest.test_case "paper §3.2 sequences" `Quick test_legal_paper_sequences;
    Alcotest.test_case "prefix closure" `Quick test_prefix_closed;
    Alcotest.test_case "responses" `Quick test_responses;
    Alcotest.test_case "non-deterministic responses" `Quick test_nondeterministic_responses;
    Alcotest.test_case "partial operation" `Quick test_partial_operation;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "reachable dedups" `Quick test_reachable_dedups_state_sets;
    Alcotest.test_case "containment positive" `Quick test_contained_positive;
    Alcotest.test_case "containment witness" `Quick test_contained_negative_with_witness;
    Alcotest.test_case "containment empty cases" `Quick test_contained_empty_cases;
    prop_responses_extend_legally;
  ]
