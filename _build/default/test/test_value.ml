(* Value: equality, ordering, printing, projections. *)

open Tm_core

let test_equal () =
  Helpers.check_bool "int eq" true (Value.equal (Value.int 3) (Value.int 3));
  Helpers.check_bool "int neq" false (Value.equal (Value.int 3) (Value.int 4));
  Helpers.check_bool "cross-kind" false (Value.equal (Value.int 1) (Value.str "1"));
  Helpers.check_bool "list eq" true
    (Value.equal (Value.list [ Value.int 1; Value.ok ]) (Value.list [ Value.int 1; Value.ok ]));
  Helpers.check_bool "list length" false
    (Value.equal (Value.list [ Value.int 1 ]) (Value.list []));
  Helpers.check_bool "unit" true (Value.equal Value.unit Value.unit);
  Helpers.check_bool "bool" true (Value.equal (Value.bool true) (Value.bool true))

let test_compare_consistent () =
  let vs =
    [
      Value.unit;
      Value.bool false;
      Value.bool true;
      Value.int (-1);
      Value.int 7;
      Value.str "a";
      Value.str "b";
      Value.list [];
      Value.list [ Value.int 1 ];
    ]
  in
  List.iter
    (fun v ->
      List.iter
        (fun w ->
          Helpers.check_bool "compare=0 iff equal" (Value.compare v w = 0) (Value.equal v w);
          Helpers.check_int "antisymmetric" (compare (Value.compare v w) 0)
            (compare 0 (Value.compare w v)))
        vs)
    vs

let test_pp () =
  Alcotest.(check string) "ok" "ok" (Value.to_string Value.ok);
  Alcotest.(check string) "int" "42" (Value.to_string (Value.int 42));
  Alcotest.(check string) "unit" "()" (Value.to_string Value.unit);
  Alcotest.(check string) "list" "[1;2]"
    (Value.to_string (Value.list [ Value.int 1; Value.int 2 ]))

let test_projections () =
  Helpers.check_int "get_int" 5 (Value.get_int (Value.int 5));
  Helpers.check_bool "get_bool" true (Value.get_bool (Value.bool true));
  Alcotest.(check string) "get_str" "x" (Value.get_str (Value.str "x"));
  Helpers.check_int "get_list" 2 (List.length (Value.get_list (Value.list [ Value.unit; Value.unit ])));
  Alcotest.check_raises "get_int on str" (Invalid_argument "Value.get_int: x") (fun () ->
      ignore (Value.get_int (Value.str "x")))

let suite =
  [
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "compare consistent with equal" `Quick test_compare_consistent;
    Alcotest.test_case "pretty-printing" `Quick test_pp;
    Alcotest.test_case "projections" `Quick test_projections;
  ]
