(* The View functions (Section 5): UIP and DU on the paper's worked
   example and their structural differences. *)

open Tm_core

let dep = Helpers.dep
let wok = Helpers.wok

(* Section 5's history: A deposits 5 and commits; B withdraws 3, active. *)
let h = Helpers.section5_history

let test_section5_uip () =
  (* UIP(H,B) = UIP(H,C): all non-aborted operations in execution order. *)
  Alcotest.check Helpers.ops "UIP(H,B)" [ dep 5; wok 3 ] (View.apply View.uip h Tid.b);
  Alcotest.check Helpers.ops "UIP(H,C)" [ dep 5; wok 3 ] (View.apply View.uip h Tid.c)

let test_section5_du () =
  (* DU(H,B) sees its own withdrawal; DU(H,C) sees only committed ops. *)
  Alcotest.check Helpers.ops "DU(H,B)" [ dep 5; wok 3 ] (View.apply View.du h Tid.b);
  Alcotest.check Helpers.ops "DU(H,C)" [ dep 5 ] (View.apply View.du h Tid.c)

let test_uip_drops_aborted () =
  let h' =
    History.empty
    |> History.exec Tid.a (dep 5)
    |> History.exec Tid.b (wok 3)
    |> History.abort_at Tid.b "BA"
  in
  Alcotest.check Helpers.ops "aborted ops dropped" [ dep 5 ] (View.apply View.uip h' Tid.c)

let test_du_commit_order_not_execution_order () =
  (* B executes first but commits second: DU orders by commit. *)
  let h =
    History.empty
    |> History.exec Tid.b (dep 1)
    |> History.exec Tid.a (dep 2)
    |> History.commit_at Tid.a "BA"
    |> History.commit_at Tid.b "BA"
  in
  Alcotest.check Helpers.ops "DU commit order" [ dep 2; dep 1 ] (View.apply View.du h Tid.c);
  (* UIP keeps execution order. *)
  Alcotest.check Helpers.ops "UIP execution order" [ dep 1; dep 2 ]
    (View.apply View.uip h Tid.c)

let test_du_excludes_other_active () =
  let h =
    History.empty |> History.exec Tid.a (dep 5) |> History.exec Tid.b (wok 3)
    (* nobody commits *)
  in
  Alcotest.check Helpers.ops "B sees only itself" [ wok 3 ] (View.apply View.du h Tid.b);
  Alcotest.check Helpers.ops "A sees only itself" [ dep 5 ] (View.apply View.du h Tid.a);
  Alcotest.check Helpers.ops "UIP sees both" [ dep 5; wok 3 ] (View.apply View.uip h Tid.a)

let test_names () =
  Alcotest.(check string) "uip" "UIP" (View.name View.uip);
  Alcotest.(check string) "du" "DU" (View.name View.du)

let suite =
  [
    Alcotest.test_case "§5 example, UIP" `Quick test_section5_uip;
    Alcotest.test_case "§5 example, DU" `Quick test_section5_du;
    Alcotest.test_case "UIP drops aborted" `Quick test_uip_drops_aborted;
    Alcotest.test_case "DU commit order" `Quick test_du_commit_order_not_execution_order;
    Alcotest.test_case "DU excludes other active" `Quick test_du_excludes_other_active;
    Alcotest.test_case "names" `Quick test_names;
  ]
