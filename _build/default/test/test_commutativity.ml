(* Forward and right-backward commutativity (Sections 6.2-6.4): the
   paper's Figures 6-1 and 6-2 regenerated from the specification, the
   symmetry lemma, asymmetry of RBC, and the incomparability of NFC and
   NRBC on which the whole paper turns. *)

open Tm_core

let dep = Helpers.dep
let wok = Helpers.wok
let wno = Helpers.wno
let bal = Helpers.bal
let spec = Helpers.BA.spec
let p = Commutativity.params ~alpha_depth:5 ~future_depth:5 ()

let test_figure_6_1 () =
  let computed = Commutativity.fc_table spec p Helpers.BA.classes in
  Helpers.check_bool "computed FC table = paper Figure 6-1" true
    (Commutativity.equal_table computed Helpers.BA.paper_fc_table)

let test_figure_6_2 () =
  let computed = Commutativity.rbc_table spec p Helpers.BA.classes in
  Helpers.check_bool "computed RBC table = paper Figure 6-2" true
    (Commutativity.equal_table computed Helpers.BA.paper_rbc_table)

let test_paper_worked_example_6_3 () =
  (* Section 6.3: P = withdraw(j)→ok does not right commute backward with
     Q = deposit(i)→ok, but Q does right commute backward with P. *)
  Helpers.check_bool "withdraw-ok does not RBC with deposit" false
    (Commutativity.rbc spec p (wok 1) (dep 1));
  Helpers.check_bool "deposit does RBC with withdraw-ok" true
    (Commutativity.rbc spec p (dep 1) (wok 1))

let test_withdrawals_forward () =
  (* Section 6.2's example: successful withdrawals do not commute
     forward... *)
  Helpers.check_bool "wok/wok not FC" false (Commutativity.fc spec p (wok 1) (wok 2));
  (* ...but do right-commute backward with each other (the paper's key
     asymmetry: the pair's legality requirement is order-symmetric). *)
  Helpers.check_bool "wok RBC wok" true (Commutativity.rbc spec p (wok 1) (wok 2))

let test_fc_witness_meaningful () =
  (* For β = γ = wok 1 the two orders are the same sequence, so the only
     possible refutation is "αβγ ∉ Spec" — and the witness context must
     really exhibit it. *)
  match Commutativity.commute_forward spec p (wok 1) (wok 1) with
  | Commutativity.Commutes -> Alcotest.fail "expected refutation"
  | Commutativity.Refuted { alpha; future; reason = _ } ->
      Alcotest.(check (option Helpers.ops)) "no future" None future;
      Helpers.check_bool "alpha;wok legal" true (Spec.legal spec (alpha @ [ wok 1 ]));
      Helpers.check_bool "sequence illegal" false
        (Spec.legal spec (alpha @ [ wok 1; wok 1 ]))

let test_sequence_level () =
  (* β = [dep 1; dep 1] and γ = [dep 2] commute forward as sequences. *)
  Helpers.check_bool "sequences commute" true
    (Commutativity.is_commutes
       (Commutativity.commute_forward_seq spec p [ dep 1; dep 1 ] [ dep 2 ]));
  (* [wok 1; wok 1] vs [wok 2] do not. *)
  Helpers.check_bool "withdraw sequences conflict" false
    (Commutativity.is_commutes
       (Commutativity.commute_forward_seq spec p [ wok 1; wok 1 ] [ wok 2 ]))

(* Lemma 8: FC and NFC are symmetric relations. *)
let prop_lemma8_fc_symmetric =
  let gen = QCheck2.Gen.pair Helpers.ba_op_gen Helpers.ba_op_gen in
  Helpers.qcheck ~count:100 "Lemma 8 (FC symmetric)" gen (fun (b, g) ->
      Commutativity.fc spec p b g = Commutativity.fc spec p g b)

let test_rbc_not_symmetric () =
  (* deposit RBC withdraw-no fails one way only. *)
  Helpers.check_bool "wno RBC dep" true (Commutativity.rbc spec p (wno 1) (dep 1));
  Helpers.check_bool "dep RBC wno fails" false (Commutativity.rbc spec p (dep 1) (wno 1))

let test_incomparability () =
  (* NFC \ NRBC: successful withdrawals. *)
  Helpers.check_bool "wok/wok in NFC" true (Commutativity.nfc spec p (wok 1) (wok 1));
  Helpers.check_bool "wok/wok not in NRBC" false (Commutativity.nrbc spec p (wok 1) (wok 1));
  (* NRBC \ NFC: failed withdrawal vs successful withdrawal. *)
  Helpers.check_bool "wno/wok in NRBC" true (Commutativity.nrbc spec p (wno 1) (wok 1));
  Helpers.check_bool "wno/wok not in NFC" false (Commutativity.nfc spec p (wno 1) (wok 1))

let test_incomparability_all_adts () =
  (* Every closed-form ADT with partial operations exhibits the
     incomparability (Section 6.4 generalised). *)
  let check name (nfc : Conflict.t) (nrbc : Conflict.t) ops =
    let pairs rel =
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b -> if Conflict.conflicts rel ~requested:a ~held:b then Some (a, b) else None)
            ops)
        ops
    in
    let n1 = pairs nfc and n2 = pairs nrbc in
    let diff l1 l2 = List.filter (fun x -> not (List.mem x l2)) l1 in
    Helpers.check_bool (name ^ ": NFC\\NRBC nonempty") true (diff n1 n2 <> []);
    Helpers.check_bool (name ^ ": NRBC\\NFC nonempty") true (diff n2 n1 <> [])
  in
  check "BA" Helpers.BA.nfc_conflict Helpers.BA.nrbc_conflict (Spec.generators spec);
  let module C = Tm_adt.Bounded_counter in
  check "CTR" C.nfc_conflict C.nrbc_conflict (Spec.generators C.spec);
  let module S = Tm_adt.Int_set in
  check "SET" S.nfc_conflict S.nrbc_conflict (Spec.generators S.spec)

let test_counter_tables_shape () =
  (* Spot-check the bounded counter's headline entries. *)
  let module C = Tm_adt.Bounded_counter in
  let cp = Commutativity.params ~alpha_depth:6 ~future_depth:5 () in
  Helpers.check_bool "incr-ok/decr-ok FC" true
    (Commutativity.fc C.spec cp (C.incr_ok 1) (C.decr_ok 1));
  Helpers.check_bool "incr-ok not RBC decr-ok" false
    (Commutativity.rbc C.spec cp (C.incr_ok 1) (C.decr_ok 1));
  Helpers.check_bool "decr-ok not RBC incr-ok" false
    (Commutativity.rbc C.spec cp (C.decr_ok 1) (C.incr_ok 1));
  Helpers.check_bool "incr-ok/incr-ok not FC" false
    (Commutativity.fc C.spec cp (C.incr_ok 1) (C.incr_ok 1));
  Helpers.check_bool "incr-ok RBC incr-ok" true
    (Commutativity.rbc C.spec cp (C.incr_ok 1) (C.incr_ok 1))

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.equal (String.sub haystack i nn) needle || at (i + 1)) in
  at 0

let test_table_rendering () =
  let t = Commutativity.fc_table spec p Helpers.BA.classes in
  let rendered = Fmt.str "%a" Commutativity.pp_table t in
  Helpers.check_bool "mentions labels" true
    (List.for_all (fun (l, _) -> contains_substring rendered l) Helpers.BA.classes);
  Helpers.check_bool "contains marks" true (contains_substring rendered "X")

let suite =
  [
    Alcotest.test_case "Figure 6-1 (FC table)" `Quick test_figure_6_1;
    Alcotest.test_case "Figure 6-2 (RBC table)" `Quick test_figure_6_2;
    Alcotest.test_case "worked example §6.3" `Quick test_paper_worked_example_6_3;
    Alcotest.test_case "withdrawals: FC vs RBC" `Quick test_withdrawals_forward;
    Alcotest.test_case "FC witness meaningful" `Quick test_fc_witness_meaningful;
    Alcotest.test_case "sequence-level relations" `Quick test_sequence_level;
    prop_lemma8_fc_symmetric;
    Alcotest.test_case "RBC not symmetric" `Quick test_rbc_not_symmetric;
    Alcotest.test_case "NFC/NRBC incomparable (BA)" `Quick test_incomparability;
    Alcotest.test_case "incomparability across ADTs" `Quick test_incomparability_all_adts;
    Alcotest.test_case "counter headline entries" `Quick test_counter_tables_shape;
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
  ]
