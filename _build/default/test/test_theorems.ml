(* Theorems 9 and 10 (Section 7): the constructive only-if directions.
   Every counterexample produced must be (a) a well-formed history,
   (b) valid in the corresponding implementation model with the deficient
   conflict relation, and (c) not dynamic atomic — exactly the proofs'
   obligations. *)

open Tm_core

let env = Helpers.ba_env
let spec = Helpers.BA.spec
let p = Commutativity.params ~alpha_depth:5 ~future_depth:5 ()

let wok = Helpers.wok
let wno = Helpers.wno
let dep = Helpers.dep

let assert_is_counterexample ~view ~conflict (cex : Theorems.cex) =
  let i = Impl_model.make ~spec ~view ~conflict in
  Helpers.check_bool "well-formed" true (History.is_well_formed cex.history);
  Helpers.check_bool "valid in I(X,Spec,View,Conflict)" true (Impl_model.valid i cex.history);
  Helpers.check_bool "not dynamic atomic" false (Atomicity.is_dynamic_atomic env cex.history);
  (* the named failing order really is a counterexample consistent with
     precedes *)
  Helpers.check_bool "failing order consistent with precedes" true
    (Orders.consistent cex.failing_order (History.precedes cex.history));
  Helpers.check_bool "fails in the named order" false
    (Atomicity.serializable_in env (History.permanent cex.history) cex.failing_order)

let test_theorem9_pairwise () =
  (* Every NRBC pair outside the given conflict relation yields a valid
     counterexample; here: the empty relation, every generator pair. *)
  let ops = Spec.generators spec in
  let count = ref 0 in
  List.iter
    (fun requested ->
      List.iter
        (fun held ->
          if Commutativity.nrbc spec p requested held then begin
            match Theorems.uip_counterexample spec p ~requested ~held with
            | None -> Alcotest.failf "no cex for %a/%a" Op.pp requested Op.pp held
            | Some cex ->
                incr count;
                assert_is_counterexample ~view:View.uip ~conflict:Conflict.none cex
          end)
        ops)
    ops;
  Helpers.check_bool "found several pairs" true (!count > 10)

let test_theorem10_pairwise () =
  let ops = Spec.generators spec in
  let count = ref 0 in
  List.iter
    (fun requested ->
      List.iter
        (fun held ->
          if Commutativity.nfc spec p requested held then begin
            match Theorems.du_counterexample spec p ~requested ~held with
            | None -> Alcotest.failf "no cex for %a/%a" Op.pp requested Op.pp held
            | Some cex ->
                incr count;
                assert_is_counterexample ~view:View.du ~conflict:Conflict.none cex
          end)
        ops)
    ops;
  Helpers.check_bool "found several pairs" true (!count > 10)

let test_commuting_pairs_yield_no_cex () =
  Alcotest.(check (option reject)) "RBC pair: no UIP cex" None
    (Theorems.uip_counterexample spec p ~requested:(wok 1) ~held:(wok 2));
  Alcotest.(check (option reject)) "FC pair: no DU cex" None
    (Theorems.du_counterexample spec p ~requested:(wok 1) ~held:(dep 1))

let test_incomparability_end_to_end () =
  (* UIP with the NFC relation is refutable (NRBC ⊄ NFC)... *)
  (match Theorems.uip_refute spec p Helpers.BA.nfc_conflict with
  | None -> Alcotest.fail "expected UIP+NFC refutation"
  | Some cex -> assert_is_counterexample ~view:View.uip ~conflict:Helpers.BA.nfc_conflict cex);
  (* ...and DU with the NRBC relation is refutable (NFC ⊄ NRBC). *)
  match Theorems.du_refute spec p Helpers.BA.nrbc_conflict with
  | None -> Alcotest.fail "expected DU+NRBC refutation"
  | Some cex -> assert_is_counterexample ~view:View.du ~conflict:Helpers.BA.nrbc_conflict cex

let test_sound_configs_unrefutable () =
  Alcotest.(check (option reject)) "UIP+NRBC sound" None
    (Theorems.uip_refute spec p Helpers.BA.nrbc_conflict);
  Alcotest.(check (option reject)) "DU+NFC sound" None
    (Theorems.du_refute spec p Helpers.BA.nfc_conflict);
  Alcotest.(check (option reject)) "UIP+total sound" None
    (Theorems.uip_refute spec p Conflict.all);
  Alcotest.(check (option reject)) "DU+total sound" None
    (Theorems.du_refute spec p Conflict.all)

let test_dropping_one_needed_conflict_refutes () =
  (* Take the sound NRBC relation and drop the single (wno, wok) pair:
     exactly that pair must be found. *)
  let weakened = Conflict.without Helpers.BA.nrbc_conflict [ (wno 1, wok 1) ] in
  match Theorems.uip_refute spec p weakened with
  | None -> Alcotest.fail "expected refutation"
  | Some cex ->
      Alcotest.check Helpers.op "requested" (wno 1) cex.requested;
      Alcotest.check Helpers.op "held" (wok 1) cex.held;
      assert_is_counterexample ~view:View.uip ~conflict:weakened cex

let test_find_missing_pair () =
  (match
     Theorems.find_missing_pair spec ~required:Helpers.BA.nrbc_conflict
       ~given:Helpers.BA.nrbc_conflict
   with
  | None -> ()
  | Some _ -> Alcotest.fail "nothing missing from itself");
  match
    Theorems.find_missing_pair spec ~required:Helpers.BA.nrbc_conflict ~given:Conflict.none
  with
  | None -> Alcotest.fail "expected missing pair"
  | Some (r, h) ->
      Helpers.check_bool "pair in NRBC" true
        (Conflict.conflicts Helpers.BA.nrbc_conflict ~requested:r ~held:h)

let test_rw_baseline_sound_for_both () =
  (* Classical read/write locking contains both NFC and NRBC on the bank
     account: unrefutable with either recovery method. *)
  Alcotest.(check (option reject)) "UIP+RW" None
    (Theorems.uip_refute spec p Helpers.BA.rw_conflict);
  Alcotest.(check (option reject)) "DU+RW" None
    (Theorems.du_refute spec p Helpers.BA.rw_conflict)

let test_counter_theorems () =
  (* Same end-to-end story on the bounded counter. *)
  let module C = Tm_adt.Bounded_counter in
  let cp = Commutativity.params ~alpha_depth:6 ~future_depth:5 () in
  let cenv = Atomicity.env_of_list [ C.spec ] in
  (match Theorems.uip_refute C.spec cp C.nfc_conflict with
  | None -> Alcotest.fail "expected counter UIP+NFC refutation"
  | Some cex ->
      Helpers.check_bool "well-formed" true (History.is_well_formed cex.history);
      Helpers.check_bool "not dynamic atomic" false
        (Atomicity.is_dynamic_atomic cenv cex.history));
  match Theorems.du_refute C.spec cp C.nrbc_conflict with
  | None -> Alcotest.fail "expected counter DU+NRBC refutation"
  | Some cex ->
      Helpers.check_bool "not dynamic atomic" false
        (Atomicity.is_dynamic_atomic cenv cex.history)

let test_probe_rediscovers_theorems () =
  (* The empirical probe (structured candidates + bounded enumeration),
     told nothing about commutativity, must rediscover NRBC for UIP and
     NFC for DU on a small operation sample. *)
  let sample = [ dep 1; wok 1; wno 1; Helpers.bal 0; Helpers.bal 1 ] in
  let check name view reference =
    let required =
      Theorems.probe_required_pairs spec view ~ops:sample ~txns:2 ~ops_per_txn:2
        ~max_events:8 ~limit:3000
    in
    List.iter
      (fun p ->
        List.iter
          (fun q ->
            let probed = List.exists (fun (a, b) -> Op.equal a p && Op.equal b q) required in
            let expected = Conflict.conflicts reference ~requested:p ~held:q in
            if probed <> expected then
              Alcotest.failf "%s: %a/%a probed=%b theorem=%b" name Op.pp p Op.pp q probed
                expected)
          sample)
      sample
  in
  check "UIP" View.uip Helpers.BA.nrbc_conflict;
  check "DU" View.du Helpers.BA.nfc_conflict

let suite =
  [
    Alcotest.test_case "Theorem 9 only-if, all NRBC pairs" `Slow test_theorem9_pairwise;
    Alcotest.test_case "Theorem 10 only-if, all NFC pairs" `Slow test_theorem10_pairwise;
    Alcotest.test_case "commuting pairs yield no cex" `Quick test_commuting_pairs_yield_no_cex;
    Alcotest.test_case "incomparability end-to-end" `Quick test_incomparability_end_to_end;
    Alcotest.test_case "sound configs unrefutable" `Quick test_sound_configs_unrefutable;
    Alcotest.test_case "dropping one conflict refutes" `Quick
      test_dropping_one_needed_conflict_refutes;
    Alcotest.test_case "find_missing_pair" `Quick test_find_missing_pair;
    Alcotest.test_case "read/write baseline sound" `Quick test_rw_baseline_sound_for_both;
    Alcotest.test_case "counter theorems" `Quick test_counter_theorems;
    Alcotest.test_case "probe rediscovers theorems" `Slow test_probe_rediscovers_theorems;
  ]
