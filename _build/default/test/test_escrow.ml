(* The escrow method (O'Neil; paper §8): state-dependent conflict
   testing.  Grants must be safe in every reachable state, aborts return
   escrowed quantities, exact reads pin the interval, and committed
   operations always replay against the bounded-counter specification. *)

open Tm_core
module Escrow = Tm_engine.Escrow

let incr i = Op.invocation ~args:[ Value.int i ] "incr"
let decr i = Op.invocation ~args:[ Value.int i ] "decr"
let read = Op.invocation "read"

let make ?(capacity = 10) ?(initial = 5) () =
  Escrow.create ~capacity ~initial ~name:"CTR"

let granted = function Escrow.Granted _ -> true | Escrow.Refused -> false

let test_concurrent_mixed_updates () =
  let e = make () in
  (* incr and decr from different transactions, both granted — neither
     conflict-based relation allows this pair concurrently. *)
  Helpers.check_bool "decr granted" true (granted (Escrow.invoke e Tid.a (decr 3)));
  Helpers.check_bool "incr granted" true (granted (Escrow.invoke e Tid.b (incr 4)));
  Helpers.check_int "low" 2 (fst (Escrow.interval e));
  Helpers.check_int "high" 9 (snd (Escrow.interval e));
  Escrow.commit e Tid.a;
  Escrow.commit e Tid.b;
  Helpers.check_int "value" 6 (Escrow.committed_value e)

let test_refusal_at_bounds () =
  let e = make () in
  Helpers.check_bool "decr 5 granted" true (granted (Escrow.invoke e Tid.a (decr 5)));
  (* the remaining guaranteed quantity is 0 *)
  Helpers.check_bool "decr 1 refused" false (granted (Escrow.invoke e Tid.b (decr 1)));
  Helpers.check_int "refusals counted" 1 (Escrow.refusal_count e);
  (* capacity side: 5 committed + 5 pending... high = 5 + 0 incr = 5; room 5 *)
  Helpers.check_bool "incr 5 granted" true (granted (Escrow.invoke e Tid.b (incr 5)));
  Helpers.check_bool "incr 1 refused" false (granted (Escrow.invoke e Tid.c (incr 1)))

let test_abort_returns_escrow () =
  let e = make () in
  Helpers.check_bool "decr 5" true (granted (Escrow.invoke e Tid.a (decr 5)));
  Helpers.check_bool "refused" false (granted (Escrow.invoke e Tid.b (decr 1)));
  Escrow.abort e Tid.a;
  Helpers.check_bool "granted after abort" true (granted (Escrow.invoke e Tid.b (decr 1)));
  Escrow.commit e Tid.b;
  Helpers.check_int "value" 4 (Escrow.committed_value e)

let test_exact_read () =
  let e = make () in
  (match Escrow.invoke e Tid.a read with
  | Escrow.Granted op -> Alcotest.check Helpers.value "reads 5" (Value.int 5) op.Op.res
  | Escrow.Refused -> Alcotest.fail "read refused");
  (* while A holds the read, B's update is refused *)
  Helpers.check_bool "update refused under read" false
    (granted (Escrow.invoke e Tid.b (incr 1)));
  Escrow.commit e Tid.a;
  Helpers.check_bool "update granted after" true (granted (Escrow.invoke e Tid.b (incr 1)))

let test_read_refused_under_updates () =
  let e = make () in
  Helpers.check_bool "incr" true (granted (Escrow.invoke e Tid.a (incr 1)));
  Helpers.check_bool "other's read refused" false (granted (Escrow.invoke e Tid.b read));
  (* the updater itself reads its own deterministic view *)
  match Escrow.invoke e Tid.a read with
  | Escrow.Granted op -> Alcotest.check Helpers.value "own read 6" (Value.int 6) op.Op.res
  | Escrow.Refused -> Alcotest.fail "own read refused"

let test_replay_legal () =
  let e = make () in
  ignore (Escrow.invoke e Tid.a (decr 2));
  ignore (Escrow.invoke e Tid.b (incr 3));
  ignore (Escrow.invoke e Tid.a (incr 1));
  Escrow.commit e Tid.b;
  Escrow.commit e Tid.a;
  let module Pool = Tm_adt.Bounded_counter.Make (struct
    let capacity = 10
    let initial = 5
    let name = "CTR"
  end) in
  Helpers.check_bool "commit-order replay" true (Spec.legal Pool.spec (Escrow.committed_ops e))

let test_runner_end_to_end () =
  let capacity = 100_000 and initial = 50_000 in
  let cfg = Tm_sim.Scheduler.config ~concurrency:8 ~total_txns:100 ~seed:3 () in
  List.iter
    (fun d ->
      let workload = Tm_sim.Workload.inventory ~incr:(100 - d) ~decr:d ~read:0 () in
      let e = Escrow.create ~capacity ~initial ~name:"CTR" in
      let stats = Tm_sim.Escrow_runner.run e workload cfg in
      Helpers.check_int (Fmt.str "all committed (d=%d)" d) 100 stats.Tm_sim.Scheduler.committed;
      Helpers.check_int (Fmt.str "zero refusals (d=%d)" d) 0 stats.Tm_sim.Scheduler.blocked;
      Helpers.check_bool "verified" true (Tm_sim.Escrow_runner.verify ~capacity ~initial e))
    [ 0; 50; 100 ]

let test_runner_with_reads_consistent () =
  let capacity = 1000 and initial = 500 in
  let cfg = Tm_sim.Scheduler.config ~concurrency:6 ~total_txns:80 ~seed:5 () in
  let workload = Tm_sim.Workload.inventory ~incr:40 ~decr:40 ~read:20 () in
  let e = Escrow.create ~capacity ~initial ~name:"CTR" in
  let stats = Tm_sim.Escrow_runner.run e workload cfg in
  Helpers.check_bool "verified" true (Tm_sim.Escrow_runner.verify ~capacity ~initial e);
  Helpers.check_bool "most committed" true
    (stats.Tm_sim.Scheduler.committed + stats.Tm_sim.Scheduler.gave_up = 80)

let test_invalid_invocation () =
  let e = make () in
  Alcotest.check_raises "bad invocation"
    (Invalid_argument "Escrow.invoke: unsupported invocation frobnicate") (fun () ->
      ignore (Escrow.invoke e Tid.a (Op.invocation "frobnicate")))

let suite =
  [
    Alcotest.test_case "concurrent mixed updates" `Quick test_concurrent_mixed_updates;
    Alcotest.test_case "refusal at bounds" `Quick test_refusal_at_bounds;
    Alcotest.test_case "abort returns escrow" `Quick test_abort_returns_escrow;
    Alcotest.test_case "exact read" `Quick test_exact_read;
    Alcotest.test_case "read refused under updates" `Quick test_read_refused_under_updates;
    Alcotest.test_case "commit-order replay" `Quick test_replay_legal;
    Alcotest.test_case "runner end-to-end" `Slow test_runner_end_to_end;
    Alcotest.test_case "runner with reads" `Slow test_runner_with_reads_consistent;
    Alcotest.test_case "invalid invocation" `Quick test_invalid_invocation;
  ]
