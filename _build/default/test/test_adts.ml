(* The ADT library: per-type serial-spec sanity and cross-validation of
   every closed-form commutativity relation against the generic bounded
   decision procedures, over the full generator alphabet. *)

open Tm_core

(* Exhaustive cross-validation over generator pairs (the alphabets are
   small, so this is exact over the sample rather than randomised). *)
let validate_closed_forms name spec fc_closed rbc_closed ~alpha_depth ~future_depth =
  Alcotest.test_case (name ^ " closed forms = decided relations") `Slow (fun () ->
      let p = Commutativity.params ~alpha_depth ~future_depth () in
      let ops = Spec.generators spec in
      List.iter
        (fun b ->
          List.iter
            (fun g ->
              let fd = Commutativity.fc spec p b g and fc = fc_closed b g in
              if fd <> fc then
                Alcotest.failf "%s FC mismatch %a/%a: closed=%b decided=%b" name Op.pp b
                  Op.pp g fc fd;
              let rd = Commutativity.rbc spec p b g and rc = rbc_closed b g in
              if rd <> rc then
                Alcotest.failf "%s RBC mismatch %a/%a: closed=%b decided=%b" name Op.pp b
                  Op.pp g rc rd)
            ops)
        ops)

(* The engine-facing conflict relations must be exactly the negations of
   the closed forms. *)
let validate_conflicts name (nfc : Conflict.t) (nrbc : Conflict.t) fc_closed rbc_closed ops =
  Alcotest.test_case (name ^ " conflicts = relation complements") `Quick (fun () ->
      List.iter
        (fun b ->
          List.iter
            (fun g ->
              Helpers.check_bool "nfc" (not (fc_closed b g))
                (Conflict.conflicts nfc ~requested:b ~held:g);
              Helpers.check_bool "nrbc" (not (rbc_closed b g))
                (Conflict.conflicts nrbc ~requested:b ~held:g))
            ops)
        ops)

(* NFC must be symmetric (Lemma 8); read/write baselines must contain the
   semantic relations (else the baseline comparison would be unsound). *)
let validate_rw_contains name (rw : Conflict.t) (semantic : Conflict.t) ops =
  Alcotest.test_case (name ^ " RW contains semantic relation") `Quick (fun () ->
      List.iter
        (fun b ->
          List.iter
            (fun g ->
              if Conflict.conflicts semantic ~requested:b ~held:g then
                Helpers.check_bool
                  (Fmt.str "%a/%a" Op.pp b Op.pp g)
                  true
                  (Conflict.conflicts rw ~requested:b ~held:g))
            ops)
        ops)

module BA = Tm_adt.Bank_account
module CTR = Tm_adt.Bounded_counter
module REG = Tm_adt.Register
module SET = Tm_adt.Int_set
module SQ = Tm_adt.Semiqueue
module KV = Tm_adt.Kv_store
module FQ = Tm_adt.Fifo_queue
module STK = Tm_adt.Stack
module LOG = Tm_adt.Append_log
module OM = Tm_adt.Ordered_map

let test_bank_account_spec () =
  Helpers.check_bool "overdraft refused" true
    (Spec.legal BA.spec [ BA.deposit 2; BA.withdraw_no 3 ]);
  Helpers.check_bool "overdraft cannot succeed" false
    (Spec.legal BA.spec [ BA.deposit 2; BA.withdraw_ok 3 ]);
  Helpers.check_bool "funded spec starts at balance" true
    (Spec.legal (BA.spec_with_initial 10) [ BA.withdraw_ok 10; BA.balance 0 ])

let test_counter_spec () =
  Helpers.check_bool "capacity enforced" true
    (Spec.legal CTR.spec [ CTR.incr_ok CTR.capacity; CTR.incr_no 1 ]);
  Helpers.check_bool "cannot exceed capacity" false
    (Spec.legal CTR.spec [ CTR.incr_ok (CTR.capacity + 1) ]);
  Helpers.check_bool "cannot underflow" false (Spec.legal CTR.spec [ CTR.decr_ok 1 ])

let test_counter_functor () =
  let module Big = Tm_adt.Bounded_counter.Make (struct
    let capacity = 10
    let initial = 5
    let name = "POOL"
  end) in
  Alcotest.(check string) "name" "POOL" (Spec.name Big.spec);
  Helpers.check_bool "initial funds decrementable" true
    (Spec.legal Big.spec [ Big.decr_ok 5; Big.decr_no 1 ]);
  Helpers.check_bool "capacity respected" false
    (Spec.legal Big.spec [ Big.incr_ok 6 ])

let test_register_spec () =
  Helpers.check_bool "read initial" true (Spec.legal REG.spec [ REG.read 0 ]);
  Helpers.check_bool "read after write" true
    (Spec.legal REG.spec [ REG.write 2; REG.read 2 ]);
  Helpers.check_bool "stale read illegal" false
    (Spec.legal REG.spec [ REG.write 2; REG.read 0 ])

let test_set_spec () =
  Helpers.check_bool "insert/member" true
    (Spec.legal SET.spec [ SET.insert 1; SET.member 1 true; SET.size 1 ]);
  Helpers.check_bool "insert idempotent for size" true
    (Spec.legal SET.spec [ SET.insert 1; SET.insert 1; SET.size 1 ]);
  Helpers.check_bool "remove" true
    (Spec.legal SET.spec [ SET.insert 1; SET.remove 1; SET.member 1 false ]);
  Helpers.check_bool "wrong member" false (Spec.legal SET.spec [ SET.member 1 true ])

let test_semiqueue_spec () =
  Helpers.check_bool "deq any element" true
    (Spec.legal SQ.spec [ SQ.enq 1; SQ.enq 2; SQ.deq 2; SQ.deq 1 ]);
  Helpers.check_bool "deq absent element" false (Spec.legal SQ.spec [ SQ.enq 1; SQ.deq 2 ]);
  Helpers.check_bool "multiset multiplicity" true
    (Spec.legal SQ.spec [ SQ.enq 1; SQ.enq 1; SQ.deq 1; SQ.deq 1 ]);
  Helpers.check_bool "multiplicity exhausted" false
    (Spec.legal SQ.spec [ SQ.enq 1; SQ.deq 1; SQ.deq 1 ])

let test_kv_spec () =
  Helpers.check_bool "get none initially" true (Spec.legal KV.spec [ KV.get "j" None ]);
  Helpers.check_bool "put/get" true
    (Spec.legal KV.spec [ KV.put "j" 1; KV.get "j" (Some 1); KV.del "j"; KV.get "j" None ]);
  Helpers.check_bool "keys independent" true
    (Spec.legal KV.spec [ KV.put "j" 1; KV.get "k" None ])

let test_fifo_spec () =
  Helpers.check_bool "FIFO order" true
    (Spec.legal FQ.spec [ FQ.enq 1; FQ.enq 2; FQ.deq 1; FQ.deq 2 ]);
  Helpers.check_bool "LIFO order illegal" false
    (Spec.legal FQ.spec [ FQ.enq 1; FQ.enq 2; FQ.deq 2 ])

let test_stack_spec () =
  Helpers.check_bool "LIFO order" true
    (Spec.legal STK.spec [ STK.push 1; STK.push 2; STK.pop 2; STK.pop 1 ]);
  Helpers.check_bool "FIFO order illegal" false
    (Spec.legal STK.spec [ STK.push 1; STK.push 2; STK.pop 1 ])

let test_log_spec () =
  Helpers.check_bool "append/last/len" true
    (Spec.legal LOG.spec [ LOG.append 1; LOG.append 2; LOG.last 2; LOG.len 2 ]);
  Helpers.check_bool "last on empty illegal" false (Spec.legal LOG.spec [ LOG.last 1 ]);
  Helpers.check_bool "wrong last" false (Spec.legal LOG.spec [ LOG.append 1; LOG.last 2 ])

let test_ordered_map_spec () =
  Helpers.check_bool "put/get/count" true
    (Spec.legal OM.spec [ OM.put 1 1; OM.put 2 2; OM.count 1 2 2; OM.get 1 (Some 1) ]);
  Helpers.check_bool "del shrinks count" true
    (Spec.legal OM.spec [ OM.put 1 1; OM.del 1; OM.count 1 2 0 ]);
  Helpers.check_bool "wrong count" false (Spec.legal OM.spec [ OM.put 1 1; OM.count 1 2 0 ])

let test_ordered_map_range_conflicts () =
  (* key-range behaviour: an update conflicts with a count exactly when
     its key can change the answer *)
  Helpers.check_bool "inside conflicts" true
    (Conflict.conflicts OM.nfc_conflict ~requested:(OM.put 1 1) ~held:(OM.count 1 2 1));
  Helpers.check_bool "outside commutes" false
    (Conflict.conflicts OM.nfc_conflict ~requested:(OM.put 3 1) ~held:(OM.count 1 2 1));
  (* a full count pins every key in range as present: overwrites commute *)
  Helpers.check_bool "full range commutes with put" false
    (Conflict.conflicts OM.nfc_conflict ~requested:(OM.put 1 1) ~held:(OM.count 1 2 2));
  Helpers.check_bool "empty range commutes with del" false
    (Conflict.conflicts OM.nfc_conflict ~requested:(OM.del 1) ~held:(OM.count 1 2 0))

let test_fifo_derived_relations_sane () =
  (* enqueues of distinct values must conflict (order observable); a
     dequeue commutes forward with an enqueue. *)
  Helpers.check_bool "enq(1)/enq(2) conflict" true
    (Conflict.conflicts FQ.nfc_conflict ~requested:(FQ.enq 1) ~held:(FQ.enq 2));
  Helpers.check_bool "same-value enq commute" false
    (Conflict.conflicts FQ.nfc_conflict ~requested:(FQ.enq 1) ~held:(FQ.enq 1));
  Helpers.check_bool "deq/enq commute forward" false
    (Conflict.conflicts FQ.nfc_conflict ~requested:(FQ.deq 1) ~held:(FQ.enq 2));
  Helpers.check_bool "same-value deq conflict" true
    (Conflict.conflicts FQ.nfc_conflict ~requested:(FQ.deq 1) ~held:(FQ.deq 1))

(* Semiqueue beats FIFO: its semantic conflict relation is a strict
   subset over the shared alphabet shape (weaker specs buy concurrency —
   the paper's type-specific motivation). *)
let test_semiqueue_weaker_than_fifo () =
  let pairs_conflicting (c : Conflict.t) ops =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if Conflict.conflicts c ~requested:a ~held:b then Some (a.Op.inv, b.Op.inv)
            else None)
          ops)
      ops
  in
  let sq = pairs_conflicting SQ.nfc_conflict (Spec.generators SQ.spec) in
  let fq = pairs_conflicting FQ.nfc_conflict (Spec.generators FQ.spec) in
  Helpers.check_bool "semiqueue has fewer conflicts" true (List.length sq < List.length fq)

let suite =
  [
    Alcotest.test_case "bank account spec" `Quick test_bank_account_spec;
    Alcotest.test_case "counter spec" `Quick test_counter_spec;
    Alcotest.test_case "counter functor" `Quick test_counter_functor;
    Alcotest.test_case "register spec" `Quick test_register_spec;
    Alcotest.test_case "set spec" `Quick test_set_spec;
    Alcotest.test_case "semiqueue spec" `Quick test_semiqueue_spec;
    Alcotest.test_case "kv spec" `Quick test_kv_spec;
    Alcotest.test_case "fifo spec" `Quick test_fifo_spec;
    Alcotest.test_case "stack spec" `Quick test_stack_spec;
    Alcotest.test_case "log spec" `Quick test_log_spec;
    validate_closed_forms "BA" BA.spec BA.forward_commutes BA.right_commutes_backward
      ~alpha_depth:5 ~future_depth:5;
    validate_closed_forms "CTR" CTR.spec CTR.forward_commutes CTR.right_commutes_backward
      ~alpha_depth:6 ~future_depth:5;
    validate_closed_forms "REG" REG.spec REG.forward_commutes REG.right_commutes_backward
      ~alpha_depth:4 ~future_depth:4;
    validate_closed_forms "SET" SET.spec SET.forward_commutes SET.right_commutes_backward
      ~alpha_depth:4 ~future_depth:4;
    validate_closed_forms "SQ" SQ.spec SQ.forward_commutes SQ.right_commutes_backward
      ~alpha_depth:5 ~future_depth:5;
    validate_closed_forms "KV" KV.spec KV.forward_commutes KV.right_commutes_backward
      ~alpha_depth:4 ~future_depth:4;
    validate_closed_forms "OM" OM.spec OM.forward_commutes OM.right_commutes_backward
      ~alpha_depth:4 ~future_depth:4;
    validate_closed_forms "LOG" LOG.spec LOG.forward_commutes LOG.right_commutes_backward
      ~alpha_depth:4 ~future_depth:4;
    validate_closed_forms "FQ" FQ.spec FQ.forward_commutes FQ.right_commutes_backward
      ~alpha_depth:5 ~future_depth:6;
    validate_closed_forms "STK" STK.spec STK.forward_commutes STK.right_commutes_backward
      ~alpha_depth:5 ~future_depth:6;
    validate_conflicts "BA" BA.nfc_conflict BA.nrbc_conflict BA.forward_commutes
      BA.right_commutes_backward (Spec.generators BA.spec);
    validate_conflicts "SQ" SQ.nfc_conflict SQ.nrbc_conflict SQ.forward_commutes
      SQ.right_commutes_backward (Spec.generators SQ.spec);
    validate_rw_contains "BA/NFC" BA.rw_conflict BA.nfc_conflict (Spec.generators BA.spec);
    validate_rw_contains "BA/NRBC" BA.rw_conflict BA.nrbc_conflict (Spec.generators BA.spec);
    validate_rw_contains "CTR/NFC" CTR.rw_conflict CTR.nfc_conflict (Spec.generators CTR.spec);
    validate_rw_contains "CTR/NRBC" CTR.rw_conflict CTR.nrbc_conflict
      (Spec.generators CTR.spec);
    validate_rw_contains "SET/NFC" SET.rw_conflict SET.nfc_conflict (Spec.generators SET.spec);
    validate_rw_contains "REG/NFC" REG.rw_conflict REG.nfc_conflict (Spec.generators REG.spec);
    Alcotest.test_case "ordered map spec" `Quick test_ordered_map_spec;
    Alcotest.test_case "ordered map range conflicts" `Quick test_ordered_map_range_conflicts;
    validate_rw_contains "OM/NFC" OM.rw_conflict OM.nfc_conflict (Spec.generators OM.spec);
    Alcotest.test_case "fifo derived relations" `Quick test_fifo_derived_relations_sane;
    Alcotest.test_case "semiqueue weaker than fifo" `Quick test_semiqueue_weaker_than_fifo;
  ]
