(* Cross-cutting property tests: metamorphic relations between the
   checkers, structural invariants of histories and views, and the
   relations the paper states without numbering.  These complement the
   per-module suites with properties that span modules. *)

open Tm_core

let spec = Helpers.BA.spec
let env = Helpers.ba_env

(* Generator of arbitrary well-formed single-object histories driven by
   the implementation model with a permissive conflict relation (so the
   space is much larger than the sound engines allow; views still gate
   responses, keeping histories meaningful). *)
let history_gen view =
  let i = Impl_model.make ~spec ~view ~conflict:Conflict.none in
  QCheck2.Gen.(
    int_range 0 1000 >|= fun seed ->
    let rng = Random.State.make [| seed |] in
    Impl_model.random i ~txns:[ Tid.a; Tid.b; Tid.c ] ~ops_per_txn:2 ~steps:14 ~rng)

let prop_online_implies_dynamic =
  Helpers.qcheck ~count:120 "online DA implies DA" (history_gen View.uip) (fun h ->
      (not (Atomicity.is_online_dynamic_atomic env h)) || Atomicity.is_dynamic_atomic env h)

let prop_permanent_idempotent =
  Helpers.qcheck ~count:120 "permanent is idempotent" (history_gen View.uip) (fun h ->
      let p = History.permanent h in
      List.equal Event.equal (History.events p) (History.events (History.permanent p)))

let prop_serial_permutation_preserves_wf =
  Helpers.qcheck ~count:120 "Serial(H,T) of permanent is well-formed"
    (history_gen View.du) (fun h ->
      let p = History.permanent h in
      let ts = Tid.Set.elements (History.transactions p) in
      List.for_all
        (fun o -> History.is_well_formed (History.serial p o))
        (Orders.permutations ts))

let prop_precedes_acyclic =
  Helpers.qcheck ~count:120 "precedes is acyclic on well-formed histories"
    (history_gen View.uip) (fun h ->
      let p = History.precedes h in
      let ts = Tid.Set.elements (History.transactions h) in
      (* a partial order has at least one linear extension over any
         finite carrier; emptiness would witness a cycle *)
      Orders.linear_extensions ts p <> [])

let prop_du_view_prefix =
  (* DU(H,A) = committed ++ own: the committed part is shared between all
     active transactions. *)
  Helpers.qcheck ~count:120 "DU views share the committed prefix" (history_gen View.du)
    (fun h ->
      let committed_part a =
        (* DU(H,A) = committed · own by construction *)
        let own = History.opseq (History.project_tid h a) in
        let v = View.apply View.du h a in
        List.filteri (fun i _ -> i < List.length v - List.length own) v
      in
      match Tid.Set.elements (History.active h) with
      | a :: b :: _ -> List.equal Op.equal (committed_part a) (committed_part b)
      | _ -> true)

let prop_uip_view_equals_nonaborted_opseq =
  Helpers.qcheck ~count:120 "UIP view = opseq of non-aborted" (history_gen View.uip)
    (fun h ->
      let non_aborted = Tid.Set.diff (History.transactions h) (History.aborted h) in
      List.equal Op.equal
        (View.apply View.uip h Tid.a)
        (History.opseq (History.project_tids h non_aborted)))

(* Metamorphic: appending an abort for an active transaction never makes
   a dynamic-atomic history non-dynamic-atomic (aborted work is
   invisible to the checker). *)
let prop_abort_preserves_da =
  Helpers.qcheck ~count:100 "aborting an active txn preserves DA" (history_gen View.uip)
    (fun h ->
      match Tid.Set.elements (History.active h) with
      | [] -> true
      | a :: _ ->
          let aborted =
            if History.pending_invocation h a = None then History.abort_at a "BA" h
            else h
          in
          (not (Atomicity.is_dynamic_atomic env h))
          || Atomicity.is_dynamic_atomic env aborted)

(* Committing all active transactions of an online-dynamic-atomic history
   (when none has a pending invocation) keeps it dynamic atomic — that is
   exactly what "every commit set" quantifies over. *)
let prop_online_da_commit_closure =
  Helpers.qcheck ~count:100 "online DA closed under commits" (history_gen View.uip)
    (fun h ->
      let committable =
        Tid.Set.filter (fun a -> History.pending_invocation h a = None) (History.active h)
      in
      let h' =
        Tid.Set.fold (fun a acc -> History.commit_at a "BA" acc) committable h
      in
      (not (Atomicity.is_online_dynamic_atomic env h))
      || Atomicity.is_dynamic_atomic env h')

(* FC of sequences implies FC of each pair cannot hold in general, but
   singleton sequences must agree with the operation-level relation. *)
let prop_seq_singleton_agrees =
  let p = Commutativity.default_params in
  let gen = QCheck2.Gen.pair Helpers.ba_op_gen Helpers.ba_op_gen in
  Helpers.qcheck ~count:60 "sequence FC agrees on singletons" gen (fun (b, g) ->
      Commutativity.is_commutes (Commutativity.commute_forward_seq spec p [ b ] [ g ])
      = Commutativity.fc spec p b g)

let suite =
  [
    prop_online_implies_dynamic;
    prop_permanent_idempotent;
    prop_serial_permutation_preserves_wf;
    prop_precedes_acyclic;
    prop_du_view_prefix;
    prop_uip_view_equals_nonaborted_opseq;
    prop_abort_preserves_da;
    prop_online_da_commit_closure;
    prop_seq_singleton_agrees;
  ]
